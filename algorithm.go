package repro

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/progress"
)

// Observer receives streaming progress events — phase start/end and
// round-batch advances — from the round loops of a running algorithm. Attach
// one through Request.Observer. Implementations must be cheap and, when
// shared across concurrent runs (e.g. one counter for a whole sweep), safe
// for concurrent use. See internal/progress for the event grain.
type Observer = progress.Observer

// ObserverFuncs adapts plain functions into an Observer; nil fields are
// skipped.
type ObserverFuncs = progress.Funcs

// Request carries the per-run inputs of a registered Algorithm. Every
// algorithm reads only the fields its ParamSpecs name (see Algorithm.Params)
// and validates them before touching the network; the zero value asks for
// the default run — BFS from vertex 0 over the whole graph, polling period 4.
type Request struct {
	// Source is the BFS source / base station vertex (default 0).
	Source int32
	// MaxDist bounds the search radius in hops; 0 means the full graph (n).
	MaxDist int
	// Period is the polling period of the poll and alarm applications
	// (0 = the default, 4).
	Period int
	// Origin is the vertex raising the alarm (alarm only; default 0).
	Origin int32
	// Labels supplies an existing BFS labeling to verify, poll or alarm
	// over. When nil, verify computes one with Recursive-BFS and the
	// applications use the reference BFS labeling from Source.
	Labels []int32
	// Observer, when non-nil, streams progress events from the run's round
	// loops. Leaving it nil keeps the hot loops free of observation cost.
	Observer Observer
}

// Result is the structured outcome of one Algorithm run.
type Result struct {
	// Algorithm is the registry name of the algorithm that produced this.
	Algorithm string
	// Labels is the produced labeling for BFS-style algorithms (hop
	// distances, -1 beyond the search radius); nil otherwise. The slice is
	// owned by the caller.
	Labels []int32
	// Estimate is the diameter estimate (diameter algorithms; 0 otherwise).
	Estimate int32
	// Values holds every scalar outcome by metric name — "latency",
	// "delivered", "violations", "estimate", … — plus whatever ground-truth
	// metrics Algorithm.Check added. The experiment harness aggregates
	// these keys directly.
	Values map[string]float64
	// Cost is this run's meter movement, not the network's cumulative
	// meters: additive meters (TotalLBEnergy, LBTime, PhysRounds,
	// MsgViolations) are differenced against the pre-run snapshot, while the
	// per-device maxima (MaxLBEnergy, MaxPhysEnergy) — which cannot be
	// differenced without per-device snapshots — carry the end-of-run value
	// and equal this run's own maxima on a fresh or freshly Reset network.
	Cost Report
}

// ParamSpec documents one Request field an algorithm reads.
type ParamSpec struct {
	// Name is the Request field, lower-cased ("source", "maxdist", …).
	Name string
	// Doc is a one-line description of how the algorithm uses it.
	Doc string
}

// Algorithm is a named, registered workload: everything the paper runs over
// a radio network — searches, approximations, verification sweeps,
// applications — behind one dispatchable surface. Drivers resolve entries by
// name (Get, Algorithms) so a newly registered algorithm appears in the
// sweep CLI, the experiment tables and the benchmark suite without touching
// any of them.
type Algorithm interface {
	// Name is the registry key ("recursive", "decay", "diam2", …).
	Name() string
	// Doc is a one-line description for listings.
	Doc() string
	// Params lists the Request fields this algorithm reads.
	Params() []ParamSpec
	// Run executes the algorithm on nw. It validates the Request fields it
	// reads, polls ctx at phase boundaries (a canceled context stops the
	// round loops within one phase, leaves the network's meters settled and
	// returns ctx's error), and reports the run's own cost in Result.Cost.
	Run(ctx context.Context, nw *Network, req Request) (*Result, error)
	// Check augments res.Values with centralized ground-truth metrics —
	// reference-BFS mismatch counts, the true diameter and approximation
	// band — that the distributed run cannot know. It is what the harness
	// and experiment tables call after Run; latency-sensitive callers skip
	// it, since it may cost a full centralized BFS or diameter computation.
	Check(nw *Network, req Request, res *Result)
}

// registry is the process-wide algorithm table. Built-ins register during
// package init; external packages may Register their own entries (e.g. the
// algorithms of the related energy-complexity papers) and have them show up
// in every registry-driven driver.
var registry = struct {
	sync.RWMutex
	algos   map[string]Algorithm
	aliases map[string]string
}{
	algos:   map[string]Algorithm{},
	aliases: map[string]string{},
}

// Register adds a to the registry. It panics when the name (or an existing
// alias) is already taken: algorithm names are a global namespace and a
// silent overwrite would reroute every driver.
func Register(a Algorithm) {
	name := a.Name()
	registry.Lock()
	defer registry.Unlock()
	if _, dup := registry.algos[name]; dup {
		panic(fmt.Sprintf("repro: algorithm %q registered twice", name))
	}
	if _, dup := registry.aliases[name]; dup {
		panic(fmt.Sprintf("repro: algorithm %q collides with an alias", name))
	}
	registry.algos[name] = a
}

// RegisterAlias makes alias resolve to the algorithm named canonical. It
// panics when the alias collides with an existing name or alias, or when the
// canonical entry does not exist.
func RegisterAlias(alias, canonical string) {
	registry.Lock()
	defer registry.Unlock()
	if _, ok := registry.algos[canonical]; !ok {
		panic(fmt.Sprintf("repro: alias %q targets unregistered algorithm %q", alias, canonical))
	}
	if _, dup := registry.algos[alias]; dup {
		panic(fmt.Sprintf("repro: alias %q collides with an algorithm name", alias))
	}
	if _, dup := registry.aliases[alias]; dup {
		panic(fmt.Sprintf("repro: alias %q registered twice", alias))
	}
	registry.aliases[alias] = canonical
}

// Get resolves an algorithm by name or alias. The error lists every known
// name, so it doubles as the CLI's "unknown algorithm" message.
func Get(name string) (Algorithm, error) {
	registry.RLock()
	defer registry.RUnlock()
	if a, ok := registry.algos[name]; ok {
		return a, nil
	}
	if canon, ok := registry.aliases[name]; ok {
		return registry.algos[canon], nil
	}
	return nil, fmt.Errorf("repro: unknown algorithm %q (known: %s)", name, strings.Join(algorithmNamesLocked(), ", "))
}

// Algorithms returns every registered algorithm, sorted by name.
func Algorithms() []Algorithm {
	registry.RLock()
	defer registry.RUnlock()
	out := make([]Algorithm, 0, len(registry.algos))
	for _, a := range registry.algos {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name() < out[j].Name() })
	return out
}

// AlgorithmNames returns every registered name, sorted.
func AlgorithmNames() []string {
	registry.RLock()
	defer registry.RUnlock()
	return algorithmNamesLocked()
}

func algorithmNamesLocked() []string {
	names := make([]string, 0, len(registry.algos))
	for name := range registry.algos {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Aliases returns the alias → canonical-name map (a copy).
func Aliases() map[string]string {
	registry.RLock()
	defer registry.RUnlock()
	out := make(map[string]string, len(registry.aliases))
	for k, v := range registry.aliases {
		out[k] = v
	}
	return out
}

// mustGet resolves a built-in entry for the deprecated Network wrappers;
// built-ins are registered at init, so failure is a programming error.
func mustGet(name string) Algorithm {
	a, err := Get(name)
	if err != nil {
		panic(err)
	}
	return a
}
