package repro

// The built-in registry entries: every workload of the paper — Recursive-BFS
// (§4), the Decay baseline, gradient verification, both §5.1 diameter
// approximations, and the §1 Poll/Alarm applications — as Algorithm values.
// Each entry validates the Request fields it reads, derives its randomness
// from the network seed with the same tags the original Network methods
// used (so registry runs are byte-identical to the legacy API), threads the
// caller's context and observer into the round loops, and reports the run's
// own cost.

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/decay"
	"repro/internal/diameter"
	"repro/internal/graph"
	"repro/internal/labelcast"
	"repro/internal/progress"
	"repro/internal/rng"
)

func init() {
	Register(&recursiveAlgo{algoMeta{
		name: "recursive",
		doc:  "Recursive-BFS (§4, Theorem 4.1): sub-polynomial-energy BFS labels from Source",
		params: []ParamSpec{
			{Name: "source", Doc: "BFS source vertex"},
			{Name: "maxdist", Doc: "search radius in hops (0 = n)"},
		},
	}})
	Register(&decayAlgo{algoMeta{
		name: "decay",
		doc:  "Decay BFS baseline on the physical channel (Θ(D log² n) energy)",
		params: []ParamSpec{
			{Name: "source", Doc: "BFS source vertex"},
			{Name: "maxdist", Doc: "search radius in hops (0 = n)"},
			{Name: "passes", Doc: "Decay repetitions, via WithDecayPasses (default ⌈log₂ n⌉)"},
		},
	}})
	Register(&verifyAlgo{algoMeta{
		name: "verify",
		doc:  "O(1)-energy gradient verification of a BFS labeling (§1)",
		params: []ParamSpec{
			{Name: "source", Doc: "BFS source when Labels is nil"},
			{Name: "maxdist", Doc: "largest label swept (0 = n)"},
			{Name: "labels", Doc: "labeling to check (nil = run Recursive-BFS first)"},
		},
	}})
	Register(&diamAlgo{algoMeta: algoMeta{
		name:   "diam2",
		doc:    "2-approximate diameter (Theorem 5.3): diam/2 <= D' <= diam",
		params: nil,
	}, tag: 0xd1a2})
	Register(&diamAlgo{algoMeta: algoMeta{
		name:   "diam32",
		doc:    "nearly-3/2-approximate diameter (Theorem 5.4) at n^(1/2+o(1)) energy",
		params: nil,
	}, tag: 0xd32, threeHalves: true})
	Register(&pollAlgo{algoMeta{
		name: "poll",
		doc:  "duty-cycled dissemination over BFS labels (§1): one message from the source",
		params: []ParamSpec{
			{Name: "source", Doc: "base-station vertex (label 0)"},
			{Name: "period", Doc: "polling period (0 = 4)"},
			{Name: "labels", Doc: "labeling to poll over (nil = reference BFS)"},
		},
	}})
	Register(&alarmAlgo{algoMeta{
		name: "alarm",
		doc:  "§1 alarm round trip: gradient ascent from Origin to the source, then dissemination",
		params: []ParamSpec{
			{Name: "source", Doc: "base-station vertex (label 0)"},
			{Name: "origin", Doc: "vertex raising the alarm"},
			{Name: "period", Doc: "polling period (0 = 4)"},
			{Name: "labels", Doc: "labeling to route over (nil = reference BFS)"},
		},
	}})

	// Long names from the papers, and the historical CLI spelling.
	RegisterAlias("recursive-bfs", "recursive")
	RegisterAlias("decay-bfs", "decay")
	RegisterAlias("baseline", "decay")
}

// algoMeta implements the descriptive half of Algorithm.
type algoMeta struct {
	name   string
	doc    string
	params []ParamSpec
}

func (m *algoMeta) Name() string        { return m.name }
func (m *algoMeta) Doc() string         { return m.doc }
func (m *algoMeta) Params() []ParamSpec { return append([]ParamSpec(nil), m.params...) }

// hooksFor bundles the run's cancellation and observation plumbing.
func hooksFor(ctx context.Context, req Request) progress.Hooks {
	return progress.Hooks{Ctx: ctx, Obs: req.Observer}
}

// bfsArgs validates and resolves the (source, maxdist) pair.
func (req Request) bfsArgs(nw *Network) (int32, int, error) {
	n := nw.g.N()
	if req.Source < 0 || int(req.Source) >= n {
		return 0, 0, fmt.Errorf("repro: source %d out of range [0, %d)", req.Source, n)
	}
	switch {
	case req.MaxDist < 0:
		return 0, 0, fmt.Errorf("repro: negative search radius %d", req.MaxDist)
	case req.MaxDist == 0:
		return req.Source, n, nil
	}
	return req.Source, req.MaxDist, nil
}

// pollPeriod validates and resolves the polling period.
func (req Request) pollPeriod() (int, error) {
	switch {
	case req.Period < 0:
		return 0, fmt.Errorf("repro: negative polling period %d", req.Period)
	case req.Period == 0:
		return 4, nil
	}
	return req.Period, nil
}

// labeling resolves the labeling the applications run over: the supplied one
// (validated against the network size) or the reference BFS from src.
func (req Request) labeling(nw *Network, src int32) ([]int32, error) {
	if req.Labels == nil {
		return graph.BFS(nw.g, src), nil
	}
	if len(req.Labels) != nw.g.N() {
		return nil, fmt.Errorf("repro: labeling has %d entries, network has %d", len(req.Labels), nw.g.N())
	}
	return req.Labels, nil
}

// newResult seals a run: it stamps the algorithm name, allocates the Values
// map and snapshots the run's meter movement against before.
func newResult(name string, nw *Network, before Report) *Result {
	return &Result{Algorithm: name, Values: make(map[string]float64, 4), Cost: nw.Report().delta(before)}
}

// boolMetric encodes a predicate as a 0/1 metric so aggregation yields rates.
func boolMetric(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// recursiveAlgo is the paper's headline algorithm.
type recursiveAlgo struct{ algoMeta }

func (a *recursiveAlgo) Run(ctx context.Context, nw *Network, req Request) (*Result, error) {
	src, d, err := req.bfsArgs(nw)
	if err != nil {
		return nil, err
	}
	before := nw.Report()
	st, err := nw.buildStack(hooksFor(ctx, req), 0xbf5, d)
	if err != nil {
		return nil, err
	}
	dist := st.BFS([]int32{src}, d)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	res := newResult(a.name, nw, before)
	res.Labels = dist
	return res, nil
}

func (a *recursiveAlgo) Check(nw *Network, req Request, res *Result) {
	src, d, _ := req.bfsArgs(nw)
	res.Values["mislabeled"] = float64(core.VerifyAgainstReference(nw.g, []int32{src}, res.Labels, d))
}

// decayAlgo is the everyone-awake comparator. It always runs on the physical
// channel: under CostPhysical it shares the network's engine and meters;
// under CostUnit it runs on the pooled external engine (WithEngine) or a
// private one, and its physical meters reach the caller through Result.Cost
// either way.
type decayAlgo struct{ algoMeta }

func (a *decayAlgo) Run(ctx context.Context, nw *Network, req Request) (*Result, error) {
	src, d, err := req.bfsArgs(nw)
	if err != nil {
		return nil, err
	}
	eng := nw.baselineEngine()
	startRounds, startViol := eng.Round(), eng.MsgViolations()
	before := nw.Report()
	r := nw.decayScratch().BFSHooked(hooksFor(ctx, req), eng,
		decay.ParamsFor(nw.g.N(), nw.passes), []int32{src}, d, rng.Derive(nw.seed, 0xd3ca))
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	res := newResult(a.name, nw, before)
	res.Labels = append([]int32(nil), r.Dist...) // r.Dist aliases the scratch
	res.Cost.MaxPhysEnergy = eng.MaxEnergy()
	res.Cost.PhysRounds = eng.Round() - startRounds
	res.Cost.MsgViolations = eng.MsgViolations() - startViol
	return res, nil
}

func (a *decayAlgo) Check(nw *Network, req Request, res *Result) {
	src, d, _ := req.bfsArgs(nw)
	res.Values["mislabeled"] = float64(core.VerifyAgainstReference(nw.g, []int32{src}, res.Labels, d))
}

// verifyAlgo is the cheap labeling check, preceded by Recursive-BFS when no
// labeling is supplied.
type verifyAlgo struct{ algoMeta }

func (a *verifyAlgo) Run(ctx context.Context, nw *Network, req Request) (*Result, error) {
	src, d, err := req.bfsArgs(nw)
	if err != nil {
		return nil, err
	}
	labels := req.Labels
	if labels != nil && len(labels) != nw.g.N() {
		return nil, fmt.Errorf("repro: labeling has %d entries, network has %d", len(labels), nw.g.N())
	}
	before := nw.Report()
	if labels == nil {
		st, err := nw.buildStack(hooksFor(ctx, req), 0xbf5, d)
		if err != nil {
			return nil, err
		}
		labels = st.BFS([]int32{src}, d)
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	viol := core.VerifyGradient(nw.base, labels, d).Violations
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	res := newResult(a.name, nw, before)
	if req.Labels == nil {
		res.Labels = labels
	}
	res.Values["violations"] = float64(viol)
	return res, nil
}

func (a *verifyAlgo) Check(*Network, Request, *Result) {}

// diamAlgo covers both §5.1 approximations; threeHalves selects Theorem 5.4.
type diamAlgo struct {
	algoMeta
	tag         uint64
	threeHalves bool
}

func (a *diamAlgo) Run(ctx context.Context, nw *Network, req Request) (*Result, error) {
	n := nw.g.N()
	before := nw.Report()
	st, err := nw.buildStack(hooksFor(ctx, req), a.tag, n)
	if err != nil {
		return nil, err
	}
	var r diameter.Result
	if a.threeHalves {
		r = diameter.ThreeHalvesApprox(st, diameter.Designated(), n, rng.Derive(nw.seed, 0x5eed))
	} else {
		r = diameter.TwoApprox(st, diameter.Designated(), n)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	res := newResult(a.name, nw, before)
	res.Estimate = r.Estimate
	res.Values["estimate"] = float64(r.Estimate)
	return res, nil
}

func (a *diamAlgo) Check(nw *Network, _ Request, res *Result) {
	diam := graph.Diameter(nw.g)
	lo := diam / 2
	if a.threeHalves {
		lo = diam * 2 / 3
	}
	res.Values["diam"] = float64(diam)
	res.Values["inBand"] = boolMetric(res.Estimate >= lo && res.Estimate <= diam)
}

// pollAlgo is the §1 dissemination over an existing labeling.
type pollAlgo struct{ algoMeta }

func (a *pollAlgo) Run(ctx context.Context, nw *Network, req Request) (*Result, error) {
	src, _, err := req.bfsArgs(nw)
	if err != nil {
		return nil, err
	}
	period, err := req.pollPeriod()
	if err != nil {
		return nil, err
	}
	labels, err := req.labeling(nw, src)
	if err != nil {
		return nil, err
	}
	before := nw.Report()
	var s labelcast.Scratch
	r := s.BroadcastHooked(hooksFor(ctx, req), nw.base, labels, period, pollBudget(nw.g.N(), period))
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	res := newResult(a.name, nw, before)
	res.Values["latency"] = float64(r.MaxLatency)
	res.Values["delivered"] = boolMetric(r.DeliveredAll)
	return res, nil
}

func (a *pollAlgo) Check(*Network, Request, *Result) {}

// alarmAlgo is the full §1 round trip: ascend the gradient, then broadcast.
type alarmAlgo struct{ algoMeta }

func (a *alarmAlgo) Run(ctx context.Context, nw *Network, req Request) (*Result, error) {
	src, _, err := req.bfsArgs(nw)
	if err != nil {
		return nil, err
	}
	period, err := req.pollPeriod()
	if err != nil {
		return nil, err
	}
	if req.Origin < 0 || int(req.Origin) >= nw.g.N() {
		return nil, fmt.Errorf("repro: alarm origin %d out of range [0, %d)", req.Origin, nw.g.N())
	}
	labels, err := req.labeling(nw, src)
	if err != nil {
		return nil, err
	}
	before := nw.Report()
	h := hooksFor(ctx, req)
	budget := pollBudget(nw.g.N(), period)
	var s labelcast.Scratch
	up := s.ToSourceHooked(h, nw.base, labels, req.Origin, period, 3, budget)
	latency, completed := up.Slots, false
	if up.Reached {
		down := s.BroadcastHooked(h, nw.base, labels, period, budget)
		latency, completed = up.Slots+down.MaxLatency, down.DeliveredAll
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	res := newResult(a.name, nw, before)
	res.Values["latency"] = float64(latency)
	res.Values["completed"] = boolMetric(completed)
	return res, nil
}

func (a *alarmAlgo) Check(*Network, Request, *Result) {}

// pollBudget is the slot budget of the §1 applications: enough for every
// layer to be polled a constant number of times even at period-length gaps.
func pollBudget(n, period int) int64 {
	return int64(n) * int64(period+2) * 4
}
