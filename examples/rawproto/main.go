// Rawproto shows the goroutine-per-device API: each radio device runs plain
// sequential Go code (Listen / Transmit / Idle) against the collision
// semantics of the RN model. The protocol here is a token ring relay with a
// duty-cycled listener — a miniature of the energy ideas in the paper,
// written at the lowest level the simulator offers.
package main

import (
	"fmt"
	"log"

	"repro/internal/graph"
	"repro/internal/radio"
)

func main() {
	const n = 24
	g := graph.Cycle(n)
	eng := radio.NewEngine(g)
	sim := radio.NewSim(eng, 7)

	// The token starts at device 0 and must travel around the ring. Each
	// device sleeps until the token is due in its neighborhood (it knows
	// the schedule: one hop per round), listens once, and relays.
	arrival := make([]int64, n)
	sim.Run(func(d *radio.Device) {
		id := int64(d.ID())
		if id == 0 {
			d.Transmit(radio.Msg{Kind: 1, A: 0})
			arrival[0] = 0
			return
		}
		// Wake exactly when the predecessor transmits: round id-1.
		d.IdleUntil(id - 1)
		m, ok := d.Listen()
		if !ok || m.Kind != 1 {
			arrival[d.ID()] = -1
			return
		}
		arrival[d.ID()] = d.Now() - 1
		if int(id) < n-1 { // the last device only receives
			d.Transmit(radio.Msg{Kind: 1, A: uint64(id)})
		}
	})

	fmt.Printf("token ring over %d devices\n", n)
	for v := 0; v < n; v++ {
		if arrival[v] < 0 {
			log.Fatalf("device %d never saw the token", v)
		}
	}
	fmt.Printf("token reached device %d at round %d\n", n-1, arrival[n-1])
	fmt.Printf("total rounds: %d\n", eng.Round())
	fmt.Printf("per-device energy: max %d slots (1 listen + 1 transmit)\n", eng.MaxEnergy())
	fmt.Printf("aggregate energy: %d slots for %d hops\n", eng.TotalEnergy(), n-1)
	if eng.MaxEnergy() > 2 {
		log.Fatal("duty cycling failed: some device stayed awake")
	}
	fmt.Println("\nevery device woke for exactly the rounds it needed — sleeping is free,")
	fmt.Println("which is the premise of the paper's energy model.")
}
