// Clusterdemo reproduces Figure 1 of the paper: a small graph is partitioned
// by the Miller–Peng–Xu process — every vertex draws δ_v ~ Exponential(β)
// and a cluster grows from v starting at time -δ_v — and the resulting
// cluster graph is printed next to it.
package main

import (
	"fmt"
	"log"

	"repro/internal/cluster"
	"repro/internal/graph"
	"repro/internal/lbnet"
)

func main() {
	// A 6×9 grid is small enough to print and rich enough to cut.
	const rows, cols = 6, 9
	g := graph.Grid(rows, cols)
	cfg := cluster.DefaultConfig(g.N(), 4)
	base := lbnet.NewUnitNet(g, 0, 2026)
	cl := cluster.Build(base, cfg, 2026)

	fmt.Printf("MPX clustering of a %dx%d grid, β = 1/%d\n\n", rows, cols, cfg.InvBeta)
	fmt.Println("cluster membership (letters) and centers (uppercase):")
	letter := func(c int32) byte { return byte('a' + c%26) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			v := int32(r*cols + c)
			ch := letter(cl.ClusterOf[v])
			if cl.Center[cl.ClusterOf[v]] == v {
				ch = ch - 'a' + 'A'
			}
			fmt.Printf(" %c", ch)
		}
		fmt.Println()
	}

	fmt.Println("\nrounded start times (iteration at which each vertex would seed a cluster):")
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			fmt.Printf(" %3d", cl.Start[r*cols+c])
		}
		fmt.Println()
	}

	cut := 0
	g.Edges(func(u, v int32) {
		if cl.ClusterOf[u] != cl.ClusterOf[v] {
			cut++
		}
	})
	fmt.Printf("\n%d clusters, radius %d (bound TMax=%d), %d/%d edges cut (%.1f%%, O(β)=%.1f%%)\n",
		cl.NumClusters(), cl.Radius(), cfg.TMax, cut, g.M(),
		100*float64(cut)/float64(g.M()), 100.0/float64(cfg.InvBeta))

	// The cluster graph (right side of Figure 1).
	cg := cl.ClusterGraph(g)
	fmt.Println("\ncluster graph edges:")
	cg.Edges(func(a, b int32) {
		fmt.Printf("  %c -- %c\n", letter(a), letter(b))
	})
	if !graph.IsConnected(cg) {
		log.Fatal("cluster graph of a connected graph must be connected")
	}
	fmt.Println("\nFigure 1's observation: cluster-graph distances are broadly proportional")
	fmt.Println("to original distances (Lemmas 2.2/2.3 quantify this; see experiment E4).")
}
