// Diameterapprox contrasts the paper's §5 diameter results: exact diameter
// needs Ω(n) energy (Theorem 5.1), a 2-approximation is nearly free on top
// of BFS (Theorem 5.3), and √n-ish energy buys a nearly-3/2 approximation
// (Theorem 5.4).
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/graph"
)

func main() {
	fmt.Printf("%-12s %5s %6s %8s %10s %8s %10s\n",
		"family", "n", "diam", "2-approx", "energy", "3/2-apx", "energy")
	for _, family := range []string{"path", "cycle", "grid", "lollipop"} {
		g, err := repro.NewGraph(family, 80, 11)
		if err != nil {
			log.Fatal(err)
		}
		diam := graph.Diameter(g)

		nw2 := repro.NewNetwork(g, 11)
		d2, err := nw2.Diameter2Approx()
		if err != nil {
			log.Fatal(err)
		}
		e2 := nw2.Report().MaxLBEnergy

		nw32 := repro.NewNetwork(g, 11)
		d32, err := nw32.Diameter32Approx()
		if err != nil {
			log.Fatal(err)
		}
		e32 := nw32.Report().MaxLBEnergy

		fmt.Printf("%-12s %5d %6d %8d %10d %8d %10d\n", family, g.N(), diam, d2, e2, d32, e32)
		if d2 < diam/2 || d2 > diam {
			log.Fatalf("%s: 2-approx out of band", family)
		}
		if d32 < diam*2/3 || d32 > diam {
			log.Fatalf("%s: 3/2-approx out of band", family)
		}
	}
	fmt.Println("\nboth estimates always fall inside their proven bands:")
	fmt.Println("  2-approx  in [diam/2, diam]        (Theorem 5.3)")
	fmt.Println("  3/2-approx in [2·diam/3, diam]      (Theorem 5.4)")
	fmt.Println("and by Theorem 5.1, doing better than 2-ε on general graphs costs Ω(n).")
}
