// Sensornet is the paper's opening scenario (§1): tiny sensors scattered
// over a National Park organize themselves with a BFS labeling; when a
// forest fire is detected, the alarm is disseminated with a duty-cycled
// polling schedule — node i wakes at times jP+i — trading latency for
// battery life.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/graph"
	"repro/internal/labelcast"
	"repro/internal/lbnet"
)

func main() {
	// Sensors dropped from a plane: a random geometric (unit-disk) network.
	g, err := repro.NewGraph("geometric", 400, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("national park: %d sensors, %d radio links, max degree %d\n", g.N(), g.M(), g.MaxDegree())

	// Phase 1: self-organization — BFS labeling from the ranger station.
	nw := repro.NewNetwork(g, 7)
	labels, err := nw.BFS(0, g.N())
	if err != nil {
		log.Fatal(err)
	}
	if bad := nw.VerifyLabeling(labels, g.N()); bad != 0 {
		log.Fatalf("labeling invalid at %d sensors", bad)
	}
	setup := nw.Report()
	depth := int32(0)
	for _, l := range labels {
		if l > depth {
			depth = l
		}
	}
	fmt.Printf("setup: BFS labeling to depth %d; max energy %d LB units/sensor\n\n", depth, setup.MaxLBEnergy)

	// Phase 2: steady state — sweep the polling period P.
	fmt.Println("fire alarm dissemination vs polling period P:")
	fmt.Printf("%8s %12s %16s %22s\n", "P", "latency", "max energy", "idle listens/1000 slots")
	for _, period := range []int{1, 2, 4, 8, 16, 32} {
		net := lbnet.NewUnitNet(g, 0, 99)
		res := labelcast.Broadcast(net, labels, period, int64(g.N())*int64(period+2)*4)
		if !res.DeliveredAll {
			log.Fatalf("P=%d: alarm failed to reach %d sensors", period, g.N()-res.Delivered)
		}
		fmt.Printf("%8d %12d %16d %22d\n",
			period, res.MaxLatency, lbnet.MaxLBEnergy(net), labelcast.SteadyStateListens(1000, period))
	}
	fmt.Println("\nhigher P: the alarm arrives later, but sensors wake 1/P as often.")

	// Phase 3: a fire breaks out at the sensor farthest from the station.
	// The alarm climbs the BFS gradient to the station, which disseminates
	// it to the whole park — the complete round trip of §1.
	fire := int32(0)
	for v := int32(0); int(v) < g.N(); v++ {
		if labels[v] > labels[fire] {
			fire = v
		}
	}
	latency, completed := nw.Alarm(labels, fire, 8)
	if !completed {
		log.Fatal("alarm round trip failed")
	}
	fmt.Printf("\nfire at sensor %d (%d hops out): alarm up to the station and back out\n", fire, labels[fire])
	fmt.Printf("to every sensor in %d slots at polling period 8.\n", latency)

	// Phase 4: sanity — the labeling really is the hop distance.
	ref := graph.BFS(g, 0)
	for v := range ref {
		if labels[v] != ref[v] {
			log.Fatalf("sensor %d labeled %d but is %d hops away", v, labels[v], ref[v])
		}
	}
	fmt.Println("labels match true hop distances for all sensors.")
}
