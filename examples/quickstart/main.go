// Quickstart: build a radio network, resolve the paper's Recursive-BFS from
// the algorithm registry, run it, verify the labeling, and inspect the
// per-run cost report.
package main

import (
	"context"
	"fmt"
	"log"

	"repro"
)

func main() {
	// A 16×16 grid of sensors; device 0 (a corner) is the base station.
	g, err := repro.NewGraph("grid", 256, 42)
	if err != nil {
		log.Fatal(err)
	}
	nw, err := repro.NewNetworkE(g, 42)
	if err != nil {
		log.Fatal(err)
	}

	// Every workload is a registered Algorithm; repro.Algorithms() lists
	// them all. Run takes a context (cancelable mid-run) and a Request.
	bfs, err := repro.Get("recursive-bfs")
	if err != nil {
		log.Fatal(err)
	}
	res, err := bfs.Run(context.Background(), nw, repro.Request{Source: 0})
	if err != nil {
		log.Fatal(err)
	}
	labels := res.Labels

	// The O(1)-energy gradient sweep checks the labeling on the same network.
	verify, err := repro.Get("verify")
	if err != nil {
		log.Fatal(err)
	}
	vres, err := verify.Run(context.Background(), nw, repro.Request{Labels: labels})
	if err != nil {
		log.Fatal(err)
	}
	if bad := vres.Values["violations"]; bad != 0 {
		log.Fatalf("labeling failed verification at %.0f vertices", bad)
	}

	maxLabel := int32(0)
	for _, l := range labels {
		if l > maxLabel {
			maxLabel = l
		}
	}
	fmt.Printf("BFS labeling of a %d-device grid\n", g.N())
	fmt.Printf("  deepest label (ecc of base station): %d\n", maxLabel)
	fmt.Printf("  energy (max LB participations/device): %d\n", res.Cost.MaxLBEnergy)
	fmt.Printf("  time (Local-Broadcast units):          %d\n", res.Cost.LBTime)
	fmt.Printf("  labeling verified by the O(1)-energy gradient sweep\n")

	// The first few rows of the grid, as labeled distances.
	fmt.Println("\nlabels (top-left 8x8 corner):")
	for r := 0; r < 8; r++ {
		for c := 0; c < 8; c++ {
			fmt.Printf("%3d", labels[r*16+c])
		}
		fmt.Println()
	}
}
