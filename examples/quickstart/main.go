// Quickstart: build a radio network, run the paper's Recursive-BFS, verify
// the labeling, and inspect the energy meters.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// A 16×16 grid of sensors; device 0 (a corner) is the base station.
	g, err := repro.NewGraph("grid", 256, 42)
	if err != nil {
		log.Fatal(err)
	}
	nw := repro.NewNetwork(g, 42)

	labels, err := nw.BFS(0, g.N())
	if err != nil {
		log.Fatal(err)
	}
	if bad := nw.VerifyLabeling(labels, g.N()); bad != 0 {
		log.Fatalf("labeling failed verification at %d vertices", bad)
	}

	maxLabel := int32(0)
	for _, l := range labels {
		if l > maxLabel {
			maxLabel = l
		}
	}
	rep := nw.Report()
	fmt.Printf("BFS labeling of a %d-device grid\n", g.N())
	fmt.Printf("  deepest label (ecc of base station): %d\n", maxLabel)
	fmt.Printf("  energy (max LB participations/device): %d\n", rep.MaxLBEnergy)
	fmt.Printf("  time (Local-Broadcast units):          %d\n", rep.LBTime)
	fmt.Printf("  labeling verified by the O(1)-energy gradient sweep\n")

	// The first few rows of the grid, as labeled distances.
	fmt.Println("\nlabels (top-left 8x8 corner):")
	for r := 0; r < 8; r++ {
		for c := 0; c < 8; c++ {
			fmt.Printf("%3d", labels[r*16+c])
		}
		fmt.Println()
	}
}
