// Scenario shows programmatic use of the declarative experiment-spec layer
// (internal/spec): parse a spec from JSON, validate it against the live
// algorithm and graph-family registries, compile it onto harness scenarios,
// execute it on the parallel trial runner, and persist the artifact set that
// `radiobfs run` writes. The same code path executes the checked-in library
// under scenarios/ (embedded by the scenarios package).
package main

import (
	"fmt"
	"log"
	"os"
	"strings"

	"repro/internal/harness"
	"repro/internal/spec"
	"repro/scenarios"
)

// A spec is plain JSON: graph instances (or family × size grids), a
// registered algorithm with parameter overrides, a trial count, a cost
// model, and a seed policy. See README.md for the full schema.
const demoSpec = `{
  "name": "demo",
  "doc": "Recursive-BFS vs the Decay baseline on two tiny graphs.",
  "seed": 7,
  "columns": ["maxLB", "timeLB", "mislabeled"],
  "scenarios": [
    {
      "name": "demo-recursive",
      "algorithm": "recursive",
      "trials": 3,
      "grid": {"families": ["cycle", "grid"], "sizes": [64], "maxDistFrac": 0.5}
    },
    {
      "name": "demo-decay",
      "algorithm": "decay",
      "trials": 3,
      "grid": {"families": ["cycle", "grid"], "sizes": [64], "maxDistFrac": 0.5}
    }
  ]
}`

func main() {
	f, err := spec.Parse(strings.NewReader(demoSpec))
	if err != nil {
		log.Fatal(err)
	}
	// Validate resolves names against the registries; a typo in an
	// algorithm, family, or parameter fails here with the known names.
	if err := f.Validate(); err != nil {
		log.Fatal(err)
	}

	// ExecuteFile = Compile + harness.Runner.Run + Aggregate. Trials run on
	// all cores; the output is byte-identical at any worker count.
	out, err := spec.ExecuteFile(f, 0, 0, spec.Options{})
	if err != nil {
		log.Fatal(err)
	}
	harness.WriteTable(os.Stdout, harness.FilterMetrics(out.Summaries, f.Columns))

	// Persist the artifact set `radiobfs run` writes: per-trial JSONL,
	// aggregated CSV, a Markdown table, and a manifest.
	dir, err := out.WriteArtifacts(os.TempDir())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("artifacts in %s: trials.jsonl, aggregate.csv, aggregate.md, manifest.json\n", dir)

	// The checked-in library is embedded: the same Load + ExecuteFile pair
	// runs any of the paper's experiment grids.
	fmt.Println("\nchecked-in specs:", strings.Join(scenarios.Names(), ", "))
	smoke, err := scenarios.Load("smoke.json")
	if err != nil {
		log.Fatal(err)
	}
	smokeOut, err := spec.ExecuteFile(smoke, 0, 0, spec.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ran %s: %d trials, %d errors\n", smoke.Name, len(smokeOut.Results), smokeOut.Errors())
}
