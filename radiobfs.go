// Package repro is an executable reproduction of "The Energy Complexity of
// BFS in Radio Networks" (Yi-Jun Chang, Varsha Dani, Thomas P. Hayes, Seth
// Pettie; PODC 2020, arXiv:2007.09816).
//
// It provides a radio-network simulator faithful to the paper's RN[b] model
// and full implementations of the paper's algorithms:
//
//   - Recursive-BFS (§4), the sub-polynomial-energy breadth-first search
//     built on Miller–Peng–Xu cluster graphs,
//   - the Decay BFS baseline (Θ(D log² n) energy),
//   - the diameter approximations of §5.1 (2-approximation and nearly
//     3/2-approximation),
//   - BFS-labeling verification and the duty-cycled dissemination
//     application that motivates the paper,
//   - the lower-bound constructions of §5 (see internal/lowerbound).
//
// The public API is the algorithm registry: every workload is a registered
// Algorithm resolved by name (Get, Algorithms) and run against a Network
// with Run(ctx, nw, Request) — one composable surface shared by the CLI,
// the experiment harness, and the benchmarks. The Network methods (BFS,
// Diameter2Approx, …) are thin deprecated wrappers over the same entries.
// The packages under internal/ expose every layer (radio physics, Decay,
// clustering, virtual cluster-graph networks) for finer-grained use by the
// examples, the experiment harness (cmd/experiments) and the benchmarks.
package repro

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/decay"
	"repro/internal/graph"
	"repro/internal/lbnet"
	"repro/internal/progress"
	"repro/internal/radio"
	"repro/internal/rng"
)

// Graph re-exports the CSR graph type used throughout.
type Graph = graph.Graph

// NewGraph builds a named workload graph (see graph.FamilyNames) with n
// vertices and the given seed. It returns an error for unknown families.
func NewGraph(family string, n int, seed uint64) (*Graph, error) {
	g, ok := graph.Named(family, n, seed)
	if !ok {
		return nil, fmt.Errorf("repro: unknown graph family %q (known: %v)", family, graph.FamilyNames())
	}
	return g, nil
}

// CostModel selects how Local-Broadcasts are charged.
type CostModel int

const (
	// CostUnit charges one unit of time per Local-Broadcast and one unit of
	// energy per participant — the paper's unit of measurement (§4.3).
	CostUnit CostModel = iota
	// CostPhysical runs every Local-Broadcast as a Decay protocol on the
	// simulated radio channel, charging real listen/transmit slots
	// (Lemma 2.4 makes the two differ by an O(log Δ · log f⁻¹) factor).
	CostPhysical
)

// Option configures a Network. Invalid values surface as errors from
// NewNetworkE (NewNetwork panics on them).
type Option func(*Network)

// WithCostModel selects the cost model (default CostUnit).
func WithCostModel(m CostModel) Option {
	return func(nw *Network) { nw.model = m }
}

// WithDecayPasses sets the Decay repetition count for physical-channel
// Local-Broadcasts (default ⌈log₂ n⌉, giving per-call failure 1/poly(n)).
// Negative values are a configuration error; 0 keeps the default.
func WithDecayPasses(p int) Option {
	return func(nw *Network) {
		if p < 0 {
			nw.optErr = fmt.Errorf("repro: negative Decay pass count %d", p)
			return
		}
		nw.passes = p
	}
}

// WithDecayScratch supplies caller-owned Decay scratch buffers for the
// baseline BFS, so pooled trial runners (see internal/harness) reuse one
// scratch across trials instead of growing a fresh one per Network. The
// scratch must not be used elsewhere while the Network is live.
func WithDecayScratch(s *decay.Scratch) Option {
	return func(nw *Network) { nw.decScr = s }
}

// WithParams overrides the Recursive-BFS parameters (default: the paper's
// formulas via core.DefaultParams for each search radius).
func WithParams(p core.Params) Option {
	return func(nw *Network) { nw.params = &p }
}

// WithEngine supplies a caller-owned radio engine: the network resets and
// reuses it instead of allocating its own, for CostPhysical Local-Broadcasts
// and for the Decay baseline's physical channel in either cost model. The
// engine must not be used elsewhere while the Network is live.
func WithEngine(e *radio.Engine) Option {
	return func(nw *Network) { nw.extEng = e }
}

// WithEngineProvider is the lazy form of WithEngine: provider is invoked —
// at most once per Network — only when a workload actually needs the
// physical channel, and must return an engine already reset onto the
// network's graph. The harness's pooled worker contexts use this so
// unit-cost trials that never touch the radio skip the O(n) engine reset.
// WithEngine wins when both are set.
func WithEngineProvider(provider func() *radio.Engine) Option {
	return func(nw *Network) { nw.engProv = provider }
}

// Network is a radio network ready to run the paper's algorithms. Meters
// accumulate across calls; use Reset or a fresh Network to separate runs
// (per-run costs are also reported in each Result.Cost).
type Network struct {
	g       *Graph
	seed    uint64
	model   CostModel
	passes  int
	params  *core.Params
	extEng  *radio.Engine
	engProv func() *radio.Engine
	decScr  *decay.Scratch
	optErr  error

	base lbnet.Net
	eng  *radio.Engine
}

// NewNetworkE wraps g as a radio network. seed determines every random
// choice; identical seeds give identical runs. It returns an error for a nil
// graph or an invalid option — the registry path (internal/harness, the
// CLIs) uses it; NewNetwork wraps it for callers that prefer panics.
func NewNetworkE(g *Graph, seed uint64, opts ...Option) (*Network, error) {
	if g == nil {
		return nil, fmt.Errorf("repro: nil graph")
	}
	nw := &Network{g: g, seed: seed}
	for _, o := range opts {
		o(nw)
	}
	if nw.optErr != nil {
		return nil, nw.optErr
	}
	if nw.passes == 0 {
		// At least one Decay pass even for the degenerate single-vertex
		// network, where ⌈log₂ n⌉ = 0.
		if nw.passes = log2ceil(g.N()); nw.passes < 1 {
			nw.passes = 1
		}
	}
	nw.Reset()
	return nw, nil
}

// NewNetwork is NewNetworkE for infallible configurations: it panics on a
// nil graph or invalid option instead of returning the error.
func NewNetwork(g *Graph, seed uint64, opts ...Option) *Network {
	nw, err := NewNetworkE(g, seed, opts...)
	if err != nil {
		panic(err)
	}
	return nw
}

// log2ceil returns ⌈log₂ n⌉: the smallest lg with 2^lg >= n (0 for n <= 1).
func log2ceil(n int) int { return graph.Log2Ceil(n) }

// Reset replaces the underlying network, zeroing all meters.
func (nw *Network) Reset() {
	switch nw.model {
	case CostPhysical:
		if nw.extEng == nil && nw.engProv != nil {
			nw.extEng = nw.engProv()
		}
		if nw.extEng != nil {
			nw.extEng.Reset(nw.g)
			nw.eng = nw.extEng
		} else {
			nw.eng = radio.NewEngine(nw.g)
		}
		nw.base = lbnet.NewPhysNet(nw.eng, decay.ParamsFor(nw.g.N(), nw.passes), rng.Derive(nw.seed, 0xba5e))
	default:
		nw.eng = nil
		nw.base = lbnet.NewUnitNet(nw.g, 0, rng.Derive(nw.seed, 0xba5e))
	}
}

// Base exposes the underlying lbnet.Net for advanced use.
func (nw *Network) Base() lbnet.Net { return nw.base }

// Report is a cost summary of everything run on the network so far.
type Report struct {
	// MaxLBEnergy is the paper's energy measure in Local-Broadcast units:
	// the maximum, over devices, of the number of LBs participated in.
	MaxLBEnergy int64
	// TotalLBEnergy sums LB participations over all devices.
	TotalLBEnergy int64
	// LBTime is elapsed time in Local-Broadcast units.
	LBTime int64
	// MaxPhysEnergy and PhysRounds are the physical-slot meters
	// (CostPhysical only; zero otherwise).
	MaxPhysEnergy int64
	PhysRounds    int64
	// MsgViolations counts messages exceeding the RN[O(log n)] budget
	// (CostPhysical only); it should always be zero.
	MsgViolations int64
}

// Report snapshots the meters.
func (nw *Network) Report() Report {
	r := Report{
		MaxLBEnergy:   lbnet.MaxLBEnergy(nw.base),
		TotalLBEnergy: lbnet.TotalLBEnergy(nw.base),
		LBTime:        nw.base.LBTime(),
	}
	if nw.eng != nil {
		r.MaxPhysEnergy = nw.eng.MaxEnergy()
		r.PhysRounds = nw.eng.Round()
		r.MsgViolations = nw.eng.MsgViolations()
	}
	return r
}

// delta returns the meter movement since before: additive meters are
// differenced, while the per-device maxima — which cannot be differenced
// without per-device snapshots — keep the receiver's (end-of-run) value.
func (r Report) delta(before Report) Report {
	r.TotalLBEnergy -= before.TotalLBEnergy
	r.LBTime -= before.LBTime
	r.PhysRounds -= before.PhysRounds
	r.MsgViolations -= before.MsgViolations
	return r
}

// buildStack constructs the cluster-graph stack every stack-based algorithm
// runs on: the configured parameters (or the paper's automatic ones for
// search radius d0), randomness derived from the network seed and the
// algorithm's tag, and the run's hooks attached.
func (nw *Network) buildStack(h progress.Hooks, tag uint64, d0 int) (*core.Stack, error) {
	if err := h.Err(); err != nil {
		return nil, err
	}
	p := core.AutoParams(nw.g.N(), d0)
	if nw.params != nil {
		p = *nw.params
	}
	st, err := core.BuildStack(nw.base, p, rng.Derive(nw.seed, tag))
	if err != nil {
		return nil, err
	}
	st.Hooks = h
	return st, nil
}

// baselineEngine returns the physical engine the Decay baseline runs on: the
// network's own engine under CostPhysical (sharing its meters), else the
// caller-supplied external engine (WithEngine, reset here; or the lazy
// WithEngineProvider, which hands it over already reset), else a private one.
func (nw *Network) baselineEngine() *radio.Engine {
	switch {
	case nw.eng != nil:
		return nw.eng
	case nw.extEng != nil:
		nw.extEng.Reset(nw.g)
		return nw.extEng
	case nw.engProv != nil:
		return nw.engProv()
	default:
		return radio.NewEngine(nw.g)
	}
}

// decayScratch returns the Decay buffer pool the baseline uses: the
// caller-supplied one (WithDecayScratch) or a lazily allocated private one.
func (nw *Network) decayScratch() *decay.Scratch {
	if nw.decScr == nil {
		nw.decScr = new(decay.Scratch)
	}
	return nw.decScr
}

// runNamed dispatches one registered algorithm; the deprecated Network
// wrappers below are one-line delegations through it.
func runNamed(name string, nw *Network, req Request) (*Result, error) {
	return mustGet(name).Run(context.Background(), nw, req)
}

// BFS computes BFS labels from source with the paper's Recursive-BFS,
// searching to radius maxDist (pass g.N() when unknown). Labels are hop
// distances; -1 marks vertices beyond maxDist.
//
// Deprecated: resolve the "recursive" entry from the registry instead
// (Get("recursive-bfs")), which adds cancellation, progress observation and
// per-run cost reporting. This wrapper delegates to it.
func (nw *Network) BFS(source int32, maxDist int) ([]int32, error) {
	res, err := runNamed("recursive", nw, Request{Source: source, MaxDist: maxDist})
	if err != nil {
		return nil, err
	}
	return res.Labels, nil
}

// BFSBaseline computes the same labels with the classic everyone-awake
// Decay BFS — the Θ(D log² n)-energy comparator. It always runs on the
// physical channel: in CostPhysical mode it shares the network's engine and
// meters; in CostUnit mode it runs on the engine supplied via WithEngine (or
// a private one), and the baseline's physical-energy report — which this
// method's return value cannot carry — reaches the caller through the
// registry entry's Result.Cost: Get("decay-bfs").Run(...).
//
// Deprecated: resolve the "decay" entry from the registry instead; this
// wrapper delegates to it and discards everything but the labels.
func (nw *Network) BFSBaseline(source int32, maxDist int) []int32 {
	res, err := runNamed("decay", nw, Request{Source: source, MaxDist: maxDist})
	if err != nil {
		panic(err)
	}
	return res.Labels
}

// VerifyLabeling checks a candidate labeling with the cheap gradient sweep
// (O(1) energy per vertex); it returns the number of violations.
//
// Deprecated: resolve the "verify" entry from the registry instead; this
// wrapper delegates to it.
func (nw *Network) VerifyLabeling(labels []int32, maxLabel int) int {
	if maxLabel <= 0 {
		// Historical behavior: the sweep over labels 1..maxLabel is empty,
		// so nothing can be violated (the registry entry would instead read
		// MaxDist 0 as "the whole graph").
		return 0
	}
	res, err := runNamed("verify", nw, Request{Labels: labels, MaxDist: maxLabel})
	if err != nil {
		panic(err)
	}
	return int(res.Values["violations"])
}

// Diameter2Approx returns D′ with diam/2 <= D′ <= diam (Theorem 5.3).
//
// Deprecated: resolve the "diam2" entry from the registry instead; this
// wrapper delegates to it.
func (nw *Network) Diameter2Approx() (int32, error) {
	res, err := runNamed("diam2", nw, Request{})
	if err != nil {
		return 0, err
	}
	return res.Estimate, nil
}

// Diameter32Approx returns D′ with ⌊2·diam/3⌋ <= D′ <= diam (Theorem 5.4),
// at n^(1/2+o(1)) energy.
//
// Deprecated: resolve the "diam32" entry from the registry instead; this
// wrapper delegates to it.
func (nw *Network) Diameter32Approx() (int32, error) {
	res, err := runNamed("diam32", nw, Request{})
	if err != nil {
		return 0, err
	}
	return res.Estimate, nil
}

// Poll runs the duty-cycled dissemination of §1 over an existing labeling:
// one message from the label-0 vertex with polling period period. It
// returns delivery latency in slots and whether everyone was reached.
//
// Deprecated: resolve the "poll" entry from the registry instead; this
// wrapper delegates to it. Periods below 1 are clamped to 1 (as the
// dissemination loop always did); note the slot budget is now computed from
// the clamped period, where the legacy method used the raw value.
func (nw *Network) Poll(labels []int32, period int) (latency int64, deliveredAll bool) {
	if period < 1 {
		period = 1
	}
	res, err := runNamed("poll", nw, Request{Labels: labels, Period: period})
	if err != nil {
		panic(err)
	}
	return int64(res.Values["latency"]), res.Values["delivered"] == 1
}

// Alarm runs the full §1 scenario over an existing labeling: a message
// raised at origin climbs the BFS gradient to the label-0 vertex and is then
// disseminated to everyone, all on the polling schedule. It returns the
// total latency in slots and whether the round trip completed.
//
// Deprecated: resolve the "alarm" entry from the registry instead; this
// wrapper delegates to it. Periods below 1 are clamped to 1 (as the
// dissemination loop always did); note the slot budget is now computed from
// the clamped period, where the legacy method used the raw value.
func (nw *Network) Alarm(labels []int32, origin int32, period int) (latency int64, completed bool) {
	if period < 1 {
		period = 1
	}
	res, err := runNamed("alarm", nw, Request{Labels: labels, Origin: origin, Period: period})
	if err != nil {
		panic(err)
	}
	return int64(res.Values["latency"]), res.Values["completed"] == 1
}
