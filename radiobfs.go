// Package repro is an executable reproduction of "The Energy Complexity of
// BFS in Radio Networks" (Yi-Jun Chang, Varsha Dani, Thomas P. Hayes, Seth
// Pettie; PODC 2020, arXiv:2007.09816).
//
// It provides a radio-network simulator faithful to the paper's RN[b] model
// and full implementations of the paper's algorithms:
//
//   - Recursive-BFS (§4), the sub-polynomial-energy breadth-first search
//     built on Miller–Peng–Xu cluster graphs,
//   - the Decay BFS baseline (Θ(D log² n) energy),
//   - the diameter approximations of §5.1 (2-approximation and nearly
//     3/2-approximation),
//   - BFS-labeling verification and the duty-cycled dissemination
//     application that motivates the paper,
//   - the lower-bound constructions of §5 (see internal/lowerbound).
//
// The Network type is the high-level entry point; the packages under
// internal/ expose every layer (radio physics, Decay, clustering, virtual
// cluster-graph networks) for finer-grained use by the examples, the
// experiment harness (cmd/experiments) and the benchmarks.
package repro

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/decay"
	"repro/internal/diameter"
	"repro/internal/graph"
	"repro/internal/labelcast"
	"repro/internal/lbnet"
	"repro/internal/radio"
	"repro/internal/rng"
)

// Graph re-exports the CSR graph type used throughout.
type Graph = graph.Graph

// NewGraph builds a named workload graph (see graph.FamilyNames) with n
// vertices and the given seed. It returns an error for unknown families.
func NewGraph(family string, n int, seed uint64) (*Graph, error) {
	g, ok := graph.Named(family, n, seed)
	if !ok {
		return nil, fmt.Errorf("repro: unknown graph family %q (known: %v)", family, graph.FamilyNames())
	}
	return g, nil
}

// CostModel selects how Local-Broadcasts are charged.
type CostModel int

const (
	// CostUnit charges one unit of time per Local-Broadcast and one unit of
	// energy per participant — the paper's unit of measurement (§4.3).
	CostUnit CostModel = iota
	// CostPhysical runs every Local-Broadcast as a Decay protocol on the
	// simulated radio channel, charging real listen/transmit slots
	// (Lemma 2.4 makes the two differ by an O(log Δ · log f⁻¹) factor).
	CostPhysical
)

// Option configures a Network.
type Option func(*Network)

// WithCostModel selects the cost model (default CostUnit).
func WithCostModel(m CostModel) Option {
	return func(nw *Network) { nw.model = m }
}

// WithDecayPasses sets the Decay repetition count used in CostPhysical mode
// (default ⌈log₂ n⌉, giving per-call failure 1/poly(n)).
func WithDecayPasses(p int) Option {
	return func(nw *Network) { nw.passes = p }
}

// WithParams overrides the Recursive-BFS parameters (default: the paper's
// formulas via core.DefaultParams for each search radius).
func WithParams(p core.Params) Option {
	return func(nw *Network) { nw.params = &p }
}

// WithEngine supplies a caller-owned radio engine for CostPhysical mode: the
// network resets and reuses it instead of allocating its own. The harness's
// pooled worker contexts use this to share one engine (and its scratch)
// across trials. The engine must not be used elsewhere while the Network is
// live. Ignored under CostUnit.
func WithEngine(e *radio.Engine) Option {
	return func(nw *Network) { nw.extEng = e }
}

// Network is a radio network ready to run the paper's algorithms. Meters
// accumulate across calls; use Reset or a fresh Network to separate runs.
type Network struct {
	g      *Graph
	seed   uint64
	model  CostModel
	passes int
	params *core.Params
	extEng *radio.Engine

	base lbnet.Net
	eng  *radio.Engine
}

// NewNetwork wraps g as a radio network. seed determines every random
// choice; identical seeds give identical runs.
func NewNetwork(g *Graph, seed uint64, opts ...Option) *Network {
	nw := &Network{g: g, seed: seed}
	for _, o := range opts {
		o(nw)
	}
	if nw.passes == 0 {
		// At least one Decay pass even for the degenerate single-vertex
		// network, where ⌈log₂ n⌉ = 0.
		if nw.passes = log2ceil(g.N()); nw.passes < 1 {
			nw.passes = 1
		}
	}
	nw.Reset()
	return nw
}

// log2ceil returns ⌈log₂ n⌉: the smallest lg with 2^lg >= n (0 for n <= 1).
func log2ceil(n int) int { return graph.Log2Ceil(n) }

// Reset replaces the underlying network, zeroing all meters.
func (nw *Network) Reset() {
	switch nw.model {
	case CostPhysical:
		if nw.extEng != nil {
			nw.extEng.Reset(nw.g)
			nw.eng = nw.extEng
		} else {
			nw.eng = radio.NewEngine(nw.g)
		}
		nw.base = lbnet.NewPhysNet(nw.eng, decay.ParamsFor(nw.g.N(), nw.passes), rng.Derive(nw.seed, 0xba5e))
	default:
		nw.eng = nil
		nw.base = lbnet.NewUnitNet(nw.g, 0, rng.Derive(nw.seed, 0xba5e))
	}
}

// Base exposes the underlying lbnet.Net for advanced use.
func (nw *Network) Base() lbnet.Net { return nw.base }

// Report is a cost summary of everything run on the network so far.
type Report struct {
	// MaxLBEnergy is the paper's energy measure in Local-Broadcast units:
	// the maximum, over devices, of the number of LBs participated in.
	MaxLBEnergy int64
	// TotalLBEnergy sums LB participations over all devices.
	TotalLBEnergy int64
	// LBTime is elapsed time in Local-Broadcast units.
	LBTime int64
	// MaxPhysEnergy and PhysRounds are the physical-slot meters
	// (CostPhysical only; zero otherwise).
	MaxPhysEnergy int64
	PhysRounds    int64
	// MsgViolations counts messages exceeding the RN[O(log n)] budget
	// (CostPhysical only); it should always be zero.
	MsgViolations int64
}

// Report snapshots the meters.
func (nw *Network) Report() Report {
	r := Report{
		MaxLBEnergy:   lbnet.MaxLBEnergy(nw.base),
		TotalLBEnergy: lbnet.TotalLBEnergy(nw.base),
		LBTime:        nw.base.LBTime(),
	}
	if nw.eng != nil {
		r.MaxPhysEnergy = nw.eng.MaxEnergy()
		r.PhysRounds = nw.eng.Round()
		r.MsgViolations = nw.eng.MsgViolations()
	}
	return r
}

// BFS computes BFS labels from source with the paper's Recursive-BFS,
// searching to radius maxDist (pass g.N() when unknown). Labels are hop
// distances; -1 marks vertices beyond maxDist.
func (nw *Network) BFS(source int32, maxDist int) ([]int32, error) {
	p := core.AutoParams(nw.g.N(), maxDist)
	if nw.params != nil {
		p = *nw.params
	}
	st, err := core.BuildStack(nw.base, p, rng.Derive(nw.seed, 0xbf5))
	if err != nil {
		return nil, err
	}
	return st.BFS([]int32{source}, maxDist), nil
}

// BFSBaseline computes the same labels with the classic everyone-awake
// Decay BFS — the Θ(D log² n)-energy comparator. It always runs on the
// physical channel: in CostPhysical mode it shares the network's meters; in
// CostUnit mode it uses a throwaway engine (run CostPhysical to meter it).
func (nw *Network) BFSBaseline(source int32, maxDist int) []int32 {
	eng := nw.eng
	if eng == nil {
		eng = radio.NewEngine(nw.g)
	}
	res := decay.BFS(eng, decay.ParamsFor(nw.g.N(), nw.passes), []int32{source}, maxDist, rng.Derive(nw.seed, 0xd3ca))
	return res.Dist
}

// VerifyLabeling checks a candidate labeling with the cheap gradient sweep
// (O(1) energy per vertex); it returns the number of violations.
func (nw *Network) VerifyLabeling(labels []int32, maxLabel int) int {
	return core.VerifyGradient(nw.base, labels, maxLabel).Violations
}

// Diameter2Approx returns D′ with diam/2 <= D′ <= diam (Theorem 5.3).
func (nw *Network) Diameter2Approx() (int32, error) {
	p := core.AutoParams(nw.g.N(), nw.g.N())
	if nw.params != nil {
		p = *nw.params
	}
	st, err := core.BuildStack(nw.base, p, rng.Derive(nw.seed, 0xd1a2))
	if err != nil {
		return 0, err
	}
	res := diameter.TwoApprox(st, diameter.Designated(), nw.g.N())
	return res.Estimate, nil
}

// Diameter32Approx returns D′ with ⌊2·diam/3⌋ <= D′ <= diam (Theorem 5.4),
// at n^(1/2+o(1)) energy.
func (nw *Network) Diameter32Approx() (int32, error) {
	p := core.AutoParams(nw.g.N(), nw.g.N())
	if nw.params != nil {
		p = *nw.params
	}
	st, err := core.BuildStack(nw.base, p, rng.Derive(nw.seed, 0xd32))
	if err != nil {
		return 0, err
	}
	res := diameter.ThreeHalvesApprox(st, diameter.Designated(), nw.g.N(), rng.Derive(nw.seed, 0x5eed))
	return res.Estimate, nil
}

// Poll runs the duty-cycled dissemination of §1 over an existing labeling:
// one message from the label-0 vertex with polling period period. It
// returns delivery latency in slots and whether everyone was reached.
func (nw *Network) Poll(labels []int32, period int) (latency int64, deliveredAll bool) {
	res := labelcast.Broadcast(nw.base, labels, period, int64(nw.g.N())*int64(period+2)*4)
	return res.MaxLatency, res.DeliveredAll
}

// Alarm runs the full §1 scenario over an existing labeling: a message
// raised at origin climbs the BFS gradient to the label-0 vertex and is then
// disseminated to everyone, all on the polling schedule. It returns the
// total latency in slots and whether the round trip completed.
func (nw *Network) Alarm(labels []int32, origin int32, period int) (latency int64, completed bool) {
	budget := int64(nw.g.N()) * int64(period+2) * 4
	up := labelcast.ToSource(nw.base, labels, origin, period, 3, budget)
	if !up.Reached {
		return up.Slots, false
	}
	down := labelcast.Broadcast(nw.base, labels, period, budget)
	return up.Slots + down.MaxLatency, down.DeliveredAll
}
