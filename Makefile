# Development targets for the radio-network BFS reproduction.

.PHONY: build test bench bench-check experiments fmt vet

build:
	go build ./...

test:
	go build ./... && go test ./...

fmt:
	gofmt -l .

vet:
	go vet ./...

# bench re-records the tracked performance baseline: it runs the full
# benchmark suite and rewrites BENCH_baseline.json, preserving the current
# file's "before" section so historical speedups stay visible. Run on a
# quiet machine and commit the result when performance changes on purpose.
bench:
	go run ./cmd/benchjson -benchtime 20x \
		-before BENCH_baseline.json \
		-out BENCH_baseline.json

# bench-check is the CI smoke comparison: every baseline benchmark must
# still exist, and benchmarks whose committed allocs/op is zero must still
# allocate nothing. Wall-clock numbers are deliberately not compared.
bench-check:
	go run ./cmd/benchjson -check BENCH_baseline.json -benchtime 1x

experiments:
	go run ./cmd/experiments
