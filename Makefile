# Development targets for the radio-network BFS reproduction.

.PHONY: build test bench bench-pr5 bench-pr6 bench-check bench-diff experiments scale-suite chaos-check remote-check resume-check fmt vet

build:
	go build ./...

test:
	go build ./... && go test ./...

fmt:
	gofmt -l .

vet:
	go vet ./...

# bench re-records the tracked performance baseline: it runs the full
# benchmark suite and rewrites BENCH_baseline.json, preserving the current
# file's "before" section so historical speedups stay visible. Run on a
# quiet machine and commit the result when performance changes on purpose.
bench:
	go run ./cmd/benchjson -benchtime 20x \
		-before BENCH_baseline.json \
		-out BENCH_baseline.json

# bench-pr5 re-records the sharded-execution performance report: the full
# suite (including the scale-step benchmarks) against the tracked baseline.
# Run on a quiet multi-core machine; the sharded speedups scale with cores.
bench-pr5:
	go run ./cmd/benchjson -benchtime 20x \
		-before BENCH_baseline.json \
		-note "PR5 sharded execution; GOMAXPROCS-dependent" \
		-out BENCH_pr5.json

# bench-pr6 re-records the dense-kernel performance report: the full suite
# (including the BenchmarkDenseStep crossover family) against the tracked
# baseline. Run on a quiet machine; the dense-vs-CSR spread is the data
# behind the auto-selection threshold.
bench-pr6:
	go run ./cmd/benchjson -benchtime 20x \
		-before BENCH_baseline.json \
		-note "PR6 dense bitmap kernel; crossover family in BenchmarkDenseStep" \
		-out BENCH_pr6.json

# bench-check is the CI smoke comparison: every baseline benchmark must
# still exist, and benchmarks whose committed allocs/op is zero must still
# allocate nothing. Wall-clock numbers are deliberately not compared; the
# bench-diff table that follows makes the tracked baseline transition
# reviewable in the same CI log.
bench-check:
	go run ./cmd/benchjson -check BENCH_baseline.json -benchtime 1x
	@if [ -f BENCH_pr6.json ]; then $(MAKE) --no-print-directory bench-diff; fi

# bench-diff prints per-benchmark ns/op and allocs/op deltas between the
# PR5 report and the PR6 dense-kernel report — the dense-vs-CSR crossover
# table.
bench-diff:
	go run ./cmd/benchjson -diff BENCH_pr5.json BENCH_pr6.json

experiments:
	go run ./cmd/experiments

# scale-suite executes the million-vertex scenario grid end to end and
# persists its artifacts (see scenarios/scale_suite.json; minutes of wall
# time, scales with cores).
scale-suite:
	go run ./cmd/radiobfs run -out results scenarios/scale_suite.json

# chaos-check is the local mirror of the CI chaos job: run the quick scale
# suite across 3 worker processes under deterministic fault injection
# (seeded crashes, then 100% stalls) and byte-diff every artifact against a
# single-process run. Wedged workers cost a heartbeat timeout each, so the
# stall pass takes a few seconds.
chaos-check:
	go build -o /tmp/radiobfs_chaos ./cmd/radiobfs
	rm -rf /tmp/chaos_base /tmp/chaos_kill /tmp/chaos_stall
	/tmp/radiobfs_chaos run -quick -out /tmp/chaos_base -workers 1 scenarios/scale_suite.json > /dev/null
	/tmp/radiobfs_chaos run -quick -out /tmp/chaos_kill -workers 3 -chaos "seed=1,killafter=1" scenarios/scale_suite.json > /dev/null
	/tmp/radiobfs_chaos run -quick -out /tmp/chaos_stall -workers 3 -chaos "seed=1,killafter=1,stall=100" scenarios/scale_suite.json > /dev/null
	diff -r /tmp/chaos_base /tmp/chaos_kill
	diff -r /tmp/chaos_base /tmp/chaos_stall
	@echo "chaos-check: artifacts byte-identical under kills and stalls"

# remote-check is the local mirror of the CI remote-chaos smoke: run the
# quick scale suite with the coordinator listening on loopback, three TCP
# workers (`radiobfs work -connect`) serving it under seeded
# disconnect+delay chaos, a wrong-token worker that must be rejected
# without affecting the run, and every byte diffed against a
# single-process run.
remote-check:
	bash scripts/remote_smoke.sh

# resume-check is the local mirror of the CI resume smoke: run the quick
# scale suite with -checkpoint under coordkill chaos (the coordinator
# SIGKILLs itself after each checkpointed trial), restart until the crash
# loop converges, and byte-diff stdout and every artifact against a
# single-process run.
resume-check:
	bash scripts/resume_smoke.sh

# serve-check is the local mirror of the CI serve smoke: start `radiobfs
# serve` on an ephemeral port, submit the smoke spec twice (the second
# must be a cache hit with the execution counter untouched), and byte-diff
# the fetched artifacts against a direct `radiobfs run` of the same
# binary.
serve-check:
	bash scripts/serve_smoke.sh
