package main

import (
	"fmt"
	"math"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/decay"
	"repro/internal/graph"
	"repro/internal/harness"
	"repro/internal/lbnet"
	"repro/internal/radio"
	"repro/internal/rng"
	"repro/internal/spec"
	"repro/internal/stats"
	"repro/internal/vnet"
)

// trialKey indexes a result by its coordinates for table formatting.
func trialKey(scenario, family string, n, index int) string {
	return fmt.Sprintf("%s|%s|%d|%d", scenario, family, n, index)
}

// byTrial maps results by (scenario, family, n, trial index).
func byTrial(results []harness.Result) map[string]harness.Result {
	m := make(map[string]harness.Result, len(results))
	for _, r := range results {
		m[trialKey(r.Scenario, r.Family, r.N, r.Index)] = r
	}
	return m
}

// coreArgs reads the Recursive-BFS stack parameters a custom scenario's
// args declare (invBeta, depth, w, alpha); fractional values are an error,
// never a silent truncation, and the assembled set is range-checked.
func coreArgs(s *spec.Scenario) (core.Params, error) {
	for _, name := range []string{"invBeta", "depth", "w", "alpha"} {
		if v, ok := s.Args[name]; ok && v != float64(int(v)) {
			return core.Params{}, fmt.Errorf("args.%s = %g, must be an integer", name, v)
		}
	}
	p := core.Params{
		InvBeta: int(s.Args["invBeta"]),
		Depth:   int(s.Args["depth"]),
		W:       int(s.Args["w"]),
		Alpha:   int(s.Args["alpha"]),
	}
	return p, p.Validate()
}

// intArg reads one required integer argument of a custom scenario;
// fractional values are an error, never a silent truncation.
func intArg(s *spec.Scenario, name string) (int, error) {
	v, ok := s.Args[name]
	if !ok || v < 1 || v != float64(int(v)) {
		return 0, fmt.Errorf("args.%s = %g, must be a positive integer", name, v)
	}
	return int(v), nil
}

// runE1 measures Theorem 4.1: Recursive-BFS labels are exact, and its
// energy/time are reported against the everyone-awake baseline in both cost
// models. The grid comes from scenarios/e1_recursive.json — three registry
// scenarios (recursive, the wavefront-parameter ablation, and a physical-
// channel spot check) that also run standalone via `radiobfs run`. The
// paper's asymptotic crossover lies beyond simulable n; what is checked
// here is correctness, the LB-unit scaling fit, and the baseline's strictly
// linear-in-D energy.
func runE1(cfg config) {
	_, scs := cfg.loadSpec("e1_recursive.json", nil)
	results := byTrial(cfg.runAll(scs...))

	insts := scs[0].Instances
	tbl := stats.NewTable("Recursive-BFS vs Decay baseline (unit-cost LBs)",
		"family", "n", "D", "params", "rec maxLB", "rec time(LB)", "base maxLB", "base time(LB)", "mislabeled")
	var ds, recE, baseE []float64
	for _, in := range insts {
		rec := results[trialKey("E1-recursive", in.Family, in.N, 0)]
		bas := results[trialKey("E1-wavefront", in.Family, in.N, 0)]
		if rec.Err != "" || bas.Err != "" {
			fmt.Fprintln(cfg.out, "error:", rec.Err, bas.Err)
			return
		}
		p := core.AutoParams(in.N, in.MaxDist)
		tbl.AddRowf(in.Family, in.N, in.MaxDist, p.String(),
			rec.Get("maxLB"), rec.Get("timeLB"), bas.Get("maxLB"), bas.Get("timeLB"),
			rec.Get("mislabeled"))
		if in.Family == "cycle" {
			ds = append(ds, float64(in.MaxDist))
			recE = append(recE, rec.Get("maxLB"))
			baseE = append(baseE, bas.Get("maxLB"))
		}
	}
	tbl.Render(cfg.out)
	eRec, _ := stats.FitPowerLaw(ds, recE)
	eBase, _ := stats.FitPowerLaw(ds, baseE)
	fmt.Fprintf(cfg.out, "cycle-family scaling fits (energy ~ D^e): recursive e=%.2f, baseline e=%.2f\n", eRec, eBase)
	fmt.Fprintf(cfg.out, "baseline is Θ(D); recursive carries large polylog constants at these n (crossover beyond simulable sizes)\n\n")

	physInst := scs[2].Instances[0]
	phys := results[trialKey("E1-physical", physInst.Family, physInst.N, 0)]
	fmt.Fprintf(cfg.out, "physical channel (n=%d, D=%d): mislabeled=%.0f, max slot energy=%.0f, rounds=%.0f, msg violations=%.0f\n\n",
		physInst.N, physInst.MaxDist,
		phys.Get("mislabeled"), phys.Get("physMax"), phys.Get("physRounds"), phys.Get("msgViolations"))
}

// runE2 measures Lemma 2.4's Local-Broadcast: success probability under
// contention, sender energy O(passes), hearing-receiver energy O(log Δ).
// The degree × passes grid lives in scenarios/e2_localbroadcast.json.
func runE2(cfg config) {
	f, scs := cfg.loadSpec("e2_localbroadcast.json", map[string]spec.CustomFunc{
		"e2/local-broadcast": func(s *spec.Scenario) (harness.TrialCtxFunc, error) {
			passes, err := intArg(s, "passes")
			if err != nil {
				return nil, err
			}
			return func(_ *harness.Context, tr harness.Trial) (harness.Metrics, error) {
				deg := tr.N - 1
				g := graph.Star(tr.N)
				p := decay.ParamsFor(tr.N, passes)
				eng := radio.NewEngine(g)
				senders := make([]radio.TX, 0, deg)
				for v := 1; v <= deg; v++ {
					senders = append(senders, radio.TX{ID: int32(v), Msg: radio.Msg{A: uint64(v)}})
				}
				got := make([]radio.Msg, 1)
				ok := make([]bool, 1)
				decay.LocalBroadcast(eng, p, senders, []int32{0}, rng.Derive(tr.Seed, 0xe2), got, ok)
				m := harness.Metrics{"ok": harness.BoolMetric(ok[0]), "senderE": float64(eng.Energy(1))}
				if ok[0] {
					// Conditional metric: mean hearing energy over the
					// trials in which the center actually heard.
					m["hearE"] = float64(eng.Energy(0))
				}
				return m, nil
			}, nil
		},
	})
	sums := harness.Aggregate(cfg.runAll(scs...))
	cellOf := map[string]harness.Summary{}
	for _, s := range sums {
		cellOf[fmt.Sprintf("%s|%d", s.Scenario, s.N)] = s
	}
	tbl := stats.NewTable("Local-Broadcast under contention (star center listening)",
		"degree", "passes", "success", "sender E", "rx-hear E(mean)", "duration(slots)")
	for _, in := range scs[0].Instances {
		deg := in.N - 1
		for i := range f.Scenarios {
			passes := int(f.Scenarios[i].Args["passes"])
			s := cellOf[fmt.Sprintf("%s|%d", f.Scenarios[i].Name, in.N)]
			tbl.AddRowf(deg, passes, s.Metrics["ok"].Mean, s.Metrics["senderE"].Mean,
				s.Metrics["hearE"].Mean, decay.ParamsFor(in.N, passes).Duration())
		}
	}
	tbl.Render(cfg.out)
}

// runE3 measures Lemma 2.5: clustering runs in TMax Local-Broadcasts with
// O(TMax) energy, radius < TMax, and an O(β) cut fraction. The family × β
// grid lives in scenarios/e3_clustering.json.
func runE3(cfg config) {
	graphSeed := rng.Derive(cfg.seed, 0xe3)
	f, scs := cfg.loadSpec("e3_clustering.json", map[string]spec.CustomFunc{
		"e3/clustering": func(s *spec.Scenario) (harness.TrialCtxFunc, error) {
			invBeta, err := intArg(s, "invBeta")
			if err != nil {
				return nil, err
			}
			return func(_ *harness.Context, tr harness.Trial) (harness.Metrics, error) {
				g, _ := graph.Named(tr.Family, tr.N, graphSeed)
				cl0 := cluster.DefaultConfig(g.N(), invBeta)
				base := lbnet.NewUnitNet(g, 0, tr.Seed)
				cl := cluster.Build(base, cl0, tr.Seed)
				return harness.Metrics{
					"clusters": float64(cl.NumClusters()),
					"radius":   float64(cl.Radius()),
					"cutFrac":  cluster.CutFraction(g, cl.ClusterOf),
					"maxLB":    float64(lbnet.MaxLBEnergy(base)),
					"timeLB":   float64(base.LBTime()),
				}, nil
			}, nil
		},
	})
	results := byTrial(cfg.runAll(scs...))
	tbl := stats.NewTable("MPX clustering (Lemma 2.5)",
		"family", "n", "1/β", "TMax", "clusters", "radius", "cut frac", "β", "maxLB E", "time(LB)")
	for _, in := range scs[0].Instances {
		// graph.Named may round n (e.g. grid side); recover the real size.
		g, _ := graph.Named(in.Family, in.N, graphSeed)
		for i := range f.Scenarios {
			invBeta := int(f.Scenarios[i].Args["invBeta"])
			r := results[trialKey(f.Scenarios[i].Name, in.Family, in.N, 0)]
			tbl.AddRowf(in.Family, g.N(), invBeta, cluster.DefaultConfig(g.N(), invBeta).TMax,
				r.Get("clusters"), r.Get("radius"), r.Get("cutFrac"), 1.0/float64(invBeta),
				r.Get("maxLB"), r.Get("timeLB"))
		}
	}
	tbl.Render(cfg.out)
}

// runE4 measures Lemmas 2.1-2.3 on the ideal (fractional) MPX process. The
// analysis is one deep trial (sized by scenarios/e4_ideal_mpx.json); its
// structured tables are captured through the closure (single-trial
// scenario, so there is no write race).
func runE4(cfg config) {
	var tails, ratios *stats.Table
	_, scs := cfg.loadSpec("e4_ideal_mpx.json", map[string]spec.CustomFunc{
		"e4/ideal-mpx": func(s *spec.Scenario) (harness.TrialCtxFunc, error) {
			invBeta, err := intArg(s, "invBeta")
			if err != nil {
				return nil, err
			}
			return func(_ *harness.Context, tr harness.Trial) (harness.Metrics, error) {
				g := graph.Path(tr.N)
				ideal := cluster.BuildIdeal(g, invBeta, tr.Seed)
				cg := cluster.ClusterGraphOf(g, ideal.ClusterOf, len(ideal.Center))

				// Lemma 2.1: tail of #clusters intersecting Ball(v, 1).
				counts := stats.I64s(intsTo64(cluster.BallClusterCounts(g, ideal.ClusterOf, 1)))
				beta := 1 / float64(invBeta)
				q := 1 - math.Exp(-2*beta)
				tails = stats.NewTable(fmt.Sprintf("Lemma 2.1 tail on path n=%d, 1/β=%d (bound q=%.3f)", tr.N, invBeta, q),
					"j", "P(count > j) observed", "bound q^j")
				for j := 1; j <= 6; j++ {
					exceed := 0
					for _, c := range counts {
						if c > float64(j) {
							exceed++
						}
					}
					tails.AddRowf(j, float64(exceed)/float64(len(counts)), math.Pow(q, float64(j)))
				}

				// Lemmas 2.2/2.3: ratio dist_G*(Cl(0), Cl(v)) / (β·dist_G(0, v)).
				distStar := graph.BFS(cg, ideal.ClusterOf[0])
				ratios = stats.NewTable("Lemmas 2.2/2.3 distance-proxy ratio dist*/(β·d) on the path",
					"d bucket", "samples", "min ratio", "mean ratio", "max ratio", "2.2 band", "2.3 band (large d)")
				lg := math.Log2(float64(tr.N))
				for _, bucket := range [][2]int{{8, 32}, {32, 128}, {128, 512}, {512, tr.N - 1}} {
					lo, hi := bucket[0], bucket[1]
					if lo >= tr.N {
						continue
					}
					var rs []float64
					for v := lo; v < hi && v < tr.N; v += 3 {
						d := float64(v)
						ds := float64(distStar[ideal.ClusterOf[v]])
						rs = append(rs, ds/(beta*d))
					}
					if len(rs) == 0 {
						continue
					}
					minR, maxR := rs[0], rs[0]
					for _, r := range rs {
						minR = math.Min(minR, r)
						maxR = math.Max(maxR, r)
					}
					band22 := fmt.Sprintf("[%.3f, %.1f]", 1/(8*lg), 8*lg)
					band23 := "-"
					if lo >= invBeta*int(lg*lg) {
						band23 = "O(1) factor"
					}
					ratios.AddRowf(fmt.Sprintf("[%d,%d)", lo, hi), len(rs), minR, stats.Mean(rs), maxR, band22, band23)
				}
				return harness.Metrics{"clusters": float64(len(ideal.Center))}, nil
			}, nil
		},
	})
	cfg.runAll(scs...)
	tails.Render(cfg.out)
	ratios.Render(cfg.out)
	fmt.Fprintln(cfg.out, "Lemma 2.2 predicts ratios within a Θ(log n) band for all d; Lemma 2.3 tightens")
	fmt.Fprintln(cfg.out, "it to a constant band once d = Ω(β⁻¹·log² n) — visible as shrinking spread above.")
	fmt.Fprintln(cfg.out)
}

func intsTo64(xs []int) []int64 {
	out := make([]int64, len(xs))
	for i, x := range xs {
		out[i] = int64(x)
	}
	return out
}

// runE5 measures Lemma 3.1/3.2 overheads on a one-level virtual network
// (grid size from scenarios/e5_vnet.json).
func runE5(cfg config) {
	_, scs := cfg.loadSpec("e5_vnet.json", map[string]spec.CustomFunc{
		"e5/vnet-casts": func(s *spec.Scenario) (harness.TrialCtxFunc, error) {
			invBeta, err := intArg(s, "invBeta")
			if err != nil {
				return nil, err
			}
			return func(_ *harness.Context, tr harness.Trial) (harness.Metrics, error) {
				g, _ := graph.Named(tr.Family, tr.N, tr.Seed)
				base := lbnet.NewUnitNet(g, 0, tr.Seed)
				cl0 := cluster.DefaultConfig(g.N(), invBeta)
				cl := cluster.Build(base, cl0, tr.Seed)
				vn := vnet.New(base, cl)
				nc := vn.N()

				// One full Downcast: per-vertex participation vs O(log n).
				pre := snapshot(base)
				part := make([]bool, nc)
				has := make([]bool, nc)
				msgs := make([]radio.Msg, nc)
				for c := range part {
					part[c], has[c] = true, true
				}
				vn.Downcast(part, has, msgs, make([]radio.Msg, g.N()), make([]bool, g.N()))
				spent := make([]float64, g.N())
				for v := int32(0); int(v) < g.N(); v++ {
					spent[v] = float64(base.LBEnergy(v) - pre[v])
				}
				return harness.Metrics{
					"clusters":    float64(nc),
					"contention":  float64(cl0.C),
					"subsetLen":   float64(cl0.SubsetLen),
					"castLBs":     float64(vn.CastLBs()),
					"vlbCost":     float64(vn.VLBCost()),
					"downMean":    stats.Mean(spent),
					"downMax":     stats.Max(spent),
					"subsetFails": float64(cluster.SubsetProperty(g, cl)),
					"castFails":   float64(vn.CastFailures()),
				}, nil
			}, nil
		},
	})
	res := cfg.runAll(scs...)[0]
	if res.Err != "" {
		fmt.Fprintln(cfg.out, "error:", res.Err)
		return
	}
	tbl := stats.NewTable("Cast and virtual-LB costs (Lemmas 3.1, 3.2)",
		"quantity", "value", "paper bound")
	tbl.AddRowf("clusters", res.Get("clusters"), "-")
	tbl.AddRowf("contention bound C", res.Get("contention"), "O(log n / log(1/β))·const")
	tbl.AddRowf("subset universe ℓ", res.Get("subsetLen"), "Θ(C log n)")
	tbl.AddRowf("cast duration (parent LBs)", res.Get("castLBs"), "TMax·ℓ = O(log³n / (β log 1/β))")
	tbl.AddRowf("virtual LB duration", res.Get("vlbCost"), "3 casts + 1")
	tbl.AddRowf("downcast per-vertex LBs (mean)", res.Get("downMean"), "O(|S_C|) = O(log n)")
	tbl.AddRowf("downcast per-vertex LBs (max)", res.Get("downMax"), "O(log n)")
	tbl.AddRowf("subset property (2) failures", res.Get("subsetFails"), "0 w.h.p.")
	tbl.AddRowf("cast divergence events", res.Get("castFails"), "0 w.h.p.")
	tbl.Render(cfg.out)
}

func snapshot(net lbnet.Net) []int64 {
	out := make([]int64, net.N())
	for v := int32(0); int(v) < net.N(); v++ {
		out[v] = net.LBEnergy(v)
	}
	return out
}

// runE6 prints the Z-sequence and its Lemma 4.2 profile. Pure arithmetic —
// no graphs, no trials, nothing for a scenario spec to declare — so it is
// the one experiment that bypasses both the runner and the spec library.
func runE6(cfg config) {
	z := core.NewZSeq(4, 200) // D* = 256
	tbl := stats.NewTable("Z-sequence, α=4, D*=256 (Z[0]=D*)", "i", "Y[i]", "Z[i]")
	for i := 1; i <= 32; i++ {
		tbl.AddRowf(i, core.Y(i), z.At(i))
	}
	tbl.Render(cfg.out)
	fmt.Fprintln(cfg.out, "Lemma 4.2's periodicity properties are verified exhaustively in internal/core tests.")
	fmt.Fprintln(cfg.out)
}

// runE7 measures Claims 1 and 2 on the cycle grid of
// scenarios/e7_participation.json.
func runE7(cfg config) {
	f, scs := cfg.loadSpec("e7_participation.json", map[string]spec.CustomFunc{
		"e7/participation": func(s *spec.Scenario) (harness.TrialCtxFunc, error) {
			p, err := coreArgs(s)
			if err != nil {
				return nil, err
			}
			return func(_ *harness.Context, tr harness.Trial) (harness.Metrics, error) {
				g := graph.Cycle(tr.N)
				base := lbnet.NewUnitNet(g, 0, tr.Seed)
				st, err := core.BuildStack(base, p, tr.Seed)
				if err != nil {
					return nil, err
				}
				st.Inst = core.NewInstrumentation()
				st.BFS([]int32{0}, tr.MaxDist)
				return harness.Metrics{
					"stages":     float64((tr.MaxDist + p.InvBeta - 1) / p.InvBeta),
					"maxXi":      float64(st.Inst.MaxXi(0)),
					"maxSpecial": float64(st.Inst.MaxSpecial(0)),
					"senderViol": float64(st.Inst.SenderViolations),
				}, nil
			}, nil
		},
	})
	results := cfg.runAll(scs...)
	p, _ := coreArgs(&f.Scenarios[0]) // validated by the factory above
	tbl := stats.NewTable(fmt.Sprintf("Claims 1-2: participation counters (cycles, fixed β=1/%d, w=%d)", p.InvBeta, p.W),
		"n", "D", "stages", "max X_i count", "max Special Updates", "sender violations")
	var xs, xis, sps []float64
	for _, r := range results {
		tbl.AddRowf(r.N, r.MaxDist, r.Get("stages"), r.Get("maxXi"), r.Get("maxSpecial"), r.Get("senderViol"))
		xs = append(xs, r.Get("stages"))
		xis = append(xis, r.Get("maxXi"))
		sps = append(sps, r.Get("maxSpecial"))
	}
	tbl.Render(cfg.out)
	eXi, _ := stats.FitPowerLaw(xs, xis)
	eSp, _ := stats.FitPowerLaw(xs, sps)
	fmt.Fprintf(cfg.out, "growth vs stage count: maxXi ~ stages^%.2f, maxSpecial ~ stages^%.2f (both << 1: sublinear,\n", eXi, eSp)
	fmt.Fprintln(cfg.out, "consistent with the polylog bounds of Claims 1-2; the proven bounds O(w²·log D) are far above).")
	fmt.Fprintln(cfg.out)
}

// runE8 runs the expensive Invariant 4.1 reference check across the seeds
// declared by scenarios/e8_invariant.json.
func runE8(cfg config) {
	graphSeed := rng.Derive(cfg.seed, 0xe8)
	_, scs := cfg.loadSpec("e8_invariant.json", map[string]spec.CustomFunc{
		"e8/invariant": func(s *spec.Scenario) (harness.TrialCtxFunc, error) {
			p, err := coreArgs(s)
			if err != nil {
				return nil, err
			}
			return func(_ *harness.Context, tr harness.Trial) (harness.Metrics, error) {
				g, _ := graph.Named(tr.Family, tr.N, graphSeed)
				base := lbnet.NewUnitNet(g, 0, tr.Seed)
				st, err := core.BuildStack(base, p, tr.Seed)
				if err != nil {
					return nil, err
				}
				st.Inst = core.NewInstrumentation()
				st.Inst.CheckInvariant = true
				dist := st.BFS([]int32{0}, tr.MaxDist)
				return harness.Metrics{
					"low":        float64(st.Inst.LowViolations),
					"high":       float64(st.Inst.HighViolations),
					"mislabeled": float64(core.VerifyAgainstReference(g, []int32{0}, dist, tr.MaxDist)),
				}, nil
			}, nil
		},
	})
	results := cfg.runAll(scs...)
	tbl := stats.NewTable("Invariant 4.1 reference check", "graph", "seed", "low violations (dist<L)", "high violations (dist>U)", "mislabeled")
	for _, r := range results {
		tbl.AddRowf(r.Family, r.Index, r.Get("low"), r.Get("high"), r.Get("mislabeled"))
	}
	tbl.Render(cfg.out)
}

// runE9 reproduces Figure 3: the evolution of [L, U] and the true wavefront
// distance for one cluster (instance from scenarios/e9_figure3.json). One
// instrumented trial; the trace is captured through the closure
// (single-trial scenario).
func runE9(cfg config) {
	var trace []core.TracePoint
	_, scs := cfg.loadSpec("e9_figure3.json", map[string]spec.CustomFunc{
		"e9/figure3": func(s *spec.Scenario) (harness.TrialCtxFunc, error) {
			p, err := coreArgs(s)
			if err != nil {
				return nil, err
			}
			return func(_ *harness.Context, tr harness.Trial) (harness.Metrics, error) {
				g := graph.Cycle(tr.N)
				base := lbnet.NewUnitNet(g, 0, tr.Seed)
				st, err := core.BuildStack(base, p, tr.Seed)
				if err != nil {
					return nil, err
				}
				st.Inst = core.NewInstrumentation()
				st.Inst.TraceCluster = st.VNets[0].Clustering().ClusterOf[tr.N/2]
				st.BFS([]int32{0}, tr.MaxDist)
				trace = st.Inst.Trace
				return harness.Metrics{"points": float64(len(trace))}, nil
			}, nil
		},
	})
	if res := cfg.runAll(scs...)[0]; res.Err != "" {
		fmt.Fprintln(cfg.out, "error:", res.Err)
		return
	}

	var lSeries, uSeries, tSeries []float64
	tbl := stats.NewTable("Figure 3 series (cluster of the antipodal vertex)",
		"stage", "Z[i+1]", "L_i", "U_i", "true dist to W_i")
	for _, pt := range trace {
		lv, uv := float64(pt.L), float64(pt.U)
		if pt.L < 0 {
			lv = 0
		}
		if pt.U > float64AsInt64Cap {
			uv = math.NaN()
		}
		lSeries = append(lSeries, lv)
		uSeries = append(uSeries, uv)
		tSeries = append(tSeries, float64(pt.TrueDist))
		uStr := fmt.Sprint(pt.U)
		if pt.U > float64AsInt64Cap {
			uStr = "∞"
		}
		tbl.AddRowf(pt.Stage, pt.Z, pt.L, uStr, pt.TrueDist)
	}
	tbl.Render(cfg.out)
	fmt.Fprintln(cfg.out, stats.Chart(60, 14,
		stats.Series{Name: "U_i (upper bound)", Mark: '#', Points: uSeries},
		stats.Series{Name: "true dist(W_i, C)", Mark: '*', Points: tSeries},
		stats.Series{Name: "L_i (lower bound)", Mark: '.', Points: lSeries},
	))
}

const float64AsInt64Cap = int64(1) << 40
