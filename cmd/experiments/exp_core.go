package main

import (
	"fmt"
	"math"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/decay"
	"repro/internal/graph"
	"repro/internal/lbnet"
	"repro/internal/radio"
	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/vnet"
)

// runE1 measures Theorem 4.1: Recursive-BFS labels are exact, and its
// energy/time are reported against the everyone-awake baseline in both cost
// models. The paper's asymptotic crossover lies beyond simulable n (see
// DESIGN.md §4); what is checked here is correctness, the LB-unit scaling
// fit, and the baseline's strictly linear-in-D energy.
func runE1(cfg config) {
	tbl := stats.NewTable("Recursive-BFS vs Decay baseline (unit-cost LBs)",
		"family", "n", "D", "params", "rec maxLB", "rec time(LB)", "base maxLB", "base time(LB)", "mislabeled", "castFail")
	type inst struct {
		family string
		n, d   int
	}
	insts := []inst{
		{"cycle", 128, 64}, {"cycle", 256, 128}, {"cycle", 512, 256},
		{"grid", 256, 30}, {"geometric", 256, 256},
	}
	if !cfg.quick {
		insts = append(insts, inst{"cycle", 1024, 512}, inst{"grid", 1024, 62}, inst{"geometric", 1024, 1024})
	}
	var ds, recE, baseE []float64
	for _, in := range insts {
		g, _ := graph.Named(in.family, in.n, cfg.seed)
		p := core.DefaultParams(g.N(), in.d)
		base := lbnet.NewUnitNet(g, 0, cfg.seed)
		st, err := core.BuildStack(base, p, cfg.seed)
		if err != nil {
			fmt.Fprintln(cfg.out, "error:", err)
			return
		}
		dist := st.BFS([]int32{0}, in.d)
		bad := core.VerifyAgainstReference(g, []int32{0}, dist, in.d)
		recMax, recTime := lbnet.MaxLBEnergy(base), base.LBTime()

		// Baseline: trivial wavefront BFS (depth 0) = one LB per hop with
		// every unlabeled vertex listening (the Decay baseline in LB units).
		base2 := lbnet.NewUnitNet(g, 0, cfg.seed)
		st2, _ := core.BuildStack(base2, core.Params{InvBeta: 1, Depth: 0, W: 1, Alpha: 4}, cfg.seed)
		st2.BFS([]int32{0}, in.d)
		tbl.AddRowf(in.family, in.n, in.d, p.String(), recMax, recTime,
			lbnet.MaxLBEnergy(base2), base2.LBTime(), bad, st.CastFailures())
		if in.family == "cycle" {
			ds = append(ds, float64(in.d))
			recE = append(recE, float64(recMax))
			baseE = append(baseE, float64(lbnet.MaxLBEnergy(base2)))
		}
	}
	tbl.Render(cfg.out)
	eRec, _ := stats.FitPowerLaw(ds, recE)
	eBase, _ := stats.FitPowerLaw(ds, baseE)
	fmt.Fprintf(cfg.out, "cycle-family scaling fits (energy ~ D^e): recursive e=%.2f, baseline e=%.2f\n", eRec, eBase)
	fmt.Fprintf(cfg.out, "baseline is Θ(D); recursive carries large polylog constants at these n (see DESIGN.md §4)\n\n")

	// Physical-channel spot check: the full stack down to radio slots.
	g, _ := graph.Named("cycle", 64, cfg.seed)
	eng := radio.NewEngine(g)
	phys := lbnet.NewPhysNet(eng, decay.ParamsFor(64, 10), cfg.seed)
	stp, _ := core.BuildStack(phys, core.Params{InvBeta: 4, Depth: 1, W: 20, Alpha: 4}, cfg.seed)
	dist := stp.BFS([]int32{0}, 32)
	bad := core.VerifyAgainstReference(g, []int32{0}, dist, 32)
	fmt.Fprintf(cfg.out, "physical channel (n=64, D=32): mislabeled=%d, max slot energy=%d, rounds=%d, msg violations=%d\n\n",
		bad, eng.MaxEnergy(), eng.Round(), eng.MsgViolations())
}

// runE2 measures Lemma 2.4's Local-Broadcast: success probability under
// contention, sender energy O(passes), hearing-receiver energy O(log Δ).
func runE2(cfg config) {
	tbl := stats.NewTable("Local-Broadcast under contention (star center listening)",
		"degree", "passes", "success", "sender E", "rx-hear E(mean)", "duration(slots)")
	trials := 400
	if cfg.quick {
		trials = 120
	}
	for _, deg := range []int{2, 8, 64, 255} {
		n := deg + 1
		g := graph.Star(n)
		for _, passes := range []int{2, 4, 8} {
			p := decay.ParamsFor(n, passes)
			okCount, hearE := 0, 0.0
			var senderE int64
			for trial := 0; trial < trials; trial++ {
				eng := radio.NewEngine(g)
				senders := make([]radio.TX, 0, deg)
				for v := 1; v <= deg; v++ {
					senders = append(senders, radio.TX{ID: int32(v), Msg: radio.Msg{A: uint64(v)}})
				}
				got := make([]radio.Msg, 1)
				ok := make([]bool, 1)
				decay.LocalBroadcast(eng, p, senders, []int32{0}, rng.Derive(cfg.seed, uint64(deg), uint64(passes), uint64(trial)), got, ok)
				if ok[0] {
					okCount++
					hearE += float64(eng.Energy(0))
				}
				senderE = eng.Energy(1)
			}
			success := float64(okCount) / float64(trials)
			mean := 0.0
			if okCount > 0 {
				mean = hearE / float64(okCount)
			}
			tbl.AddRowf(deg, passes, success, senderE, mean, p.Duration())
		}
	}
	tbl.Render(cfg.out)
}

// runE3 measures Lemma 2.5: clustering runs in TMax Local-Broadcasts with
// O(TMax) energy, radius < TMax, and an O(β) cut fraction.
func runE3(cfg config) {
	tbl := stats.NewTable("MPX clustering (Lemma 2.5)",
		"family", "n", "1/β", "TMax", "clusters", "radius", "cut frac", "β", "maxLB E", "time(LB)")
	n := 1024
	if cfg.quick {
		n = 256
	}
	for _, family := range []string{"cycle", "grid", "gnp"} {
		g, _ := graph.Named(family, n, cfg.seed)
		for _, invBeta := range []int{4, 8, 16} {
			cl0 := cluster.DefaultConfig(g.N(), invBeta)
			base := lbnet.NewUnitNet(g, 0, cfg.seed)
			cl := cluster.Build(base, cl0, cfg.seed)
			tbl.AddRowf(family, g.N(), invBeta, cl0.TMax, cl.NumClusters(), cl.Radius(),
				cluster.CutFraction(g, cl.ClusterOf), 1.0/float64(invBeta),
				lbnet.MaxLBEnergy(base), base.LBTime())
		}
	}
	tbl.Render(cfg.out)
}

// runE4 measures Lemmas 2.1-2.3 on the ideal (fractional) MPX process.
func runE4(cfg config) {
	n := 2048
	if cfg.quick {
		n = 512
	}
	invBeta := 8
	g := graph.Path(n)
	ideal := cluster.BuildIdeal(g, invBeta, cfg.seed)
	cg := cluster.ClusterGraphOf(g, ideal.ClusterOf, len(ideal.Center))

	// Lemma 2.1: tail of #clusters intersecting Ball(v, 1).
	counts := stats.I64s(intsTo64(cluster.BallClusterCounts(g, ideal.ClusterOf, 1)))
	beta := 1 / float64(invBeta)
	q := 1 - math.Exp(-2*beta)
	tbl := stats.NewTable(fmt.Sprintf("Lemma 2.1 tail on path n=%d, 1/β=%d (bound q=%.3f)", n, invBeta, q),
		"j", "P(count > j) observed", "bound q^j")
	for j := 1; j <= 6; j++ {
		exceed := 0
		for _, c := range counts {
			if c > float64(j) {
				exceed++
			}
		}
		tbl.AddRowf(j, float64(exceed)/float64(len(counts)), math.Pow(q, float64(j)))
	}
	tbl.Render(cfg.out)

	// Lemmas 2.2/2.3: ratio dist_G*(Cl(0), Cl(v)) / (β·dist_G(0, v)).
	distStar := graph.BFS(cg, ideal.ClusterOf[0])
	rt := stats.NewTable("Lemmas 2.2/2.3 distance-proxy ratio dist*/(β·d) on the path",
		"d bucket", "samples", "min ratio", "mean ratio", "max ratio", "2.2 band", "2.3 band (large d)")
	lg := math.Log2(float64(n))
	for _, bucket := range [][2]int{{8, 32}, {32, 128}, {128, 512}, {512, n - 1}} {
		lo, hi := bucket[0], bucket[1]
		if lo >= n {
			continue
		}
		var ratios []float64
		for v := lo; v < hi && v < n; v += 3 {
			d := float64(v)
			ds := float64(distStar[ideal.ClusterOf[v]])
			ratios = append(ratios, ds/(beta*d))
		}
		if len(ratios) == 0 {
			continue
		}
		minR, maxR := ratios[0], ratios[0]
		for _, r := range ratios {
			minR = math.Min(minR, r)
			maxR = math.Max(maxR, r)
		}
		band22 := fmt.Sprintf("[%.3f, %.1f]", 1/(8*lg), 8*lg)
		band23 := "-"
		if lo >= invBeta*int(lg*lg) {
			band23 = "O(1) factor"
		}
		rt.AddRowf(fmt.Sprintf("[%d,%d)", lo, hi), len(ratios), minR, stats.Mean(ratios), maxR, band22, band23)
	}
	rt.Render(cfg.out)
	fmt.Fprintln(cfg.out, "Lemma 2.2 predicts ratios within a Θ(log n) band for all d; Lemma 2.3 tightens")
	fmt.Fprintln(cfg.out, "it to a constant band once d = Ω(β⁻¹·log² n) — visible as shrinking spread above.")
	fmt.Fprintln(cfg.out)
}

func intsTo64(xs []int) []int64 {
	out := make([]int64, len(xs))
	for i, x := range xs {
		out[i] = int64(x)
	}
	return out
}

// runE5 measures Lemma 3.1/3.2 overheads on a one-level virtual network.
func runE5(cfg config) {
	n := 400
	if cfg.quick {
		n = 144
	}
	g, _ := graph.Named("grid", n, cfg.seed)
	base := lbnet.NewUnitNet(g, 0, cfg.seed)
	cl0 := cluster.DefaultConfig(g.N(), 4)
	cl := cluster.Build(base, cl0, cfg.seed)
	vn := vnet.New(base, cl)
	nc := vn.N()

	tbl := stats.NewTable("Cast and virtual-LB costs (Lemmas 3.1, 3.2)",
		"quantity", "value", "paper bound")
	tbl.AddRowf("clusters", nc, "-")
	tbl.AddRowf("contention bound C", cl0.C, "O(log n / log(1/β))·const")
	tbl.AddRowf("subset universe ℓ", cl0.SubsetLen, "Θ(C log n)")
	tbl.AddRowf("cast duration (parent LBs)", vn.CastLBs(), "TMax·ℓ = O(log³n / (β log 1/β))")
	tbl.AddRowf("virtual LB duration", vn.VLBCost(), "3 casts + 1")

	// One full Downcast: per-vertex participation vs the O(log n) bound.
	pre := snapshot(base)
	part := make([]bool, nc)
	has := make([]bool, nc)
	msgs := make([]radio.Msg, nc)
	for c := range part {
		part[c], has[c] = true, true
	}
	vn.Downcast(part, has, msgs, make([]radio.Msg, g.N()), make([]bool, g.N()))
	spent := make([]float64, g.N())
	for v := int32(0); int(v) < g.N(); v++ {
		spent[v] = float64(base.LBEnergy(v) - pre[v])
	}
	tbl.AddRowf("downcast per-vertex LBs (mean)", stats.Mean(spent), "O(|S_C|) = O(log n)")
	tbl.AddRowf("downcast per-vertex LBs (max)", stats.Max(spent), "O(log n)")
	tbl.AddRowf("subset property (2) failures", cluster.SubsetProperty(g, cl), "0 w.h.p.")
	tbl.AddRowf("cast divergence events", vn.CastFailures(), "0 w.h.p.")
	tbl.Render(cfg.out)
}

func snapshot(net lbnet.Net) []int64 {
	out := make([]int64, net.N())
	for v := int32(0); int(v) < net.N(); v++ {
		out[v] = net.LBEnergy(v)
	}
	return out
}

// runE6 prints the Z-sequence and its Lemma 4.2 profile.
func runE6(cfg config) {
	z := core.NewZSeq(4, 200) // D* = 256
	tbl := stats.NewTable("Z-sequence, α=4, D*=256 (Z[0]=D*)", "i", "Y[i]", "Z[i]")
	for i := 1; i <= 32; i++ {
		tbl.AddRowf(i, core.Y(i), z.At(i))
	}
	tbl.Render(cfg.out)
	fmt.Fprintln(cfg.out, "Lemma 4.2's periodicity properties are verified exhaustively in internal/core tests.")
	fmt.Fprintln(cfg.out)
}

// runE7 measures Claims 1 and 2.
func runE7(cfg config) {
	tbl := stats.NewTable("Claims 1-2: participation counters (cycles, fixed β=1/8, w=24)",
		"n", "D", "stages", "max X_i count", "max Special Updates", "sender violations")
	ns := []int{256, 512}
	if !cfg.quick {
		ns = append(ns, 1024, 2048)
	}
	var xs, xis, sps []float64
	for _, n := range ns {
		g := graph.Cycle(n)
		d := n / 2
		p := core.Params{InvBeta: 8, Depth: 1, W: 24, Alpha: 4}
		base := lbnet.NewUnitNet(g, 0, cfg.seed)
		st, _ := core.BuildStack(base, p, cfg.seed)
		st.Inst = core.NewInstrumentation()
		st.BFS([]int32{0}, d)
		stages := (d + p.InvBeta - 1) / p.InvBeta
		tbl.AddRowf(n, d, stages, st.Inst.MaxXi(0), st.Inst.MaxSpecial(0), st.Inst.SenderViolations)
		xs = append(xs, float64(stages))
		xis = append(xis, float64(st.Inst.MaxXi(0)))
		sps = append(sps, float64(st.Inst.MaxSpecial(0)))
	}
	tbl.Render(cfg.out)
	eXi, _ := stats.FitPowerLaw(xs, xis)
	eSp, _ := stats.FitPowerLaw(xs, sps)
	fmt.Fprintf(cfg.out, "growth vs stage count: maxXi ~ stages^%.2f, maxSpecial ~ stages^%.2f (both << 1: sublinear,\n", eXi, eSp)
	fmt.Fprintln(cfg.out, "consistent with the polylog bounds of Claims 1-2; the proven bounds O(w²·log D) are far above).")
	fmt.Fprintln(cfg.out)
}

// runE8 runs the expensive Invariant 4.1 reference check across seeds.
func runE8(cfg config) {
	tbl := stats.NewTable("Invariant 4.1 reference check", "graph", "seed", "low violations (dist<L)", "high violations (dist>U)", "mislabeled")
	for _, fam := range []string{"cycle", "grid"} {
		n := 144
		g, _ := graph.Named(fam, n, cfg.seed)
		seeds := 5
		if cfg.quick {
			seeds = 2
		}
		for s := 0; s < seeds; s++ {
			seed := rng.Derive(cfg.seed, uint64(s), 0xe8)
			base := lbnet.NewUnitNet(g, 0, seed)
			st, _ := core.BuildStack(base, core.Params{InvBeta: 4, Depth: 1, W: 24, Alpha: 4}, seed)
			st.Inst = core.NewInstrumentation()
			st.Inst.CheckInvariant = true
			dist := st.BFS([]int32{0}, n/2)
			bad := core.VerifyAgainstReference(g, []int32{0}, dist, n/2)
			tbl.AddRowf(fam, s, st.Inst.LowViolations, st.Inst.HighViolations, bad)
		}
	}
	tbl.Render(cfg.out)
}

// runE9 reproduces Figure 3: the evolution of [L, U] and the true wavefront
// distance for one cluster.
func runE9(cfg config) {
	n := 240
	g := graph.Cycle(n)
	p := core.Params{InvBeta: 4, Depth: 1, W: 24, Alpha: 4}
	base := lbnet.NewUnitNet(g, 0, cfg.seed)
	st, _ := core.BuildStack(base, p, cfg.seed)
	st.Inst = core.NewInstrumentation()
	st.Inst.TraceCluster = st.VNets[0].Clustering().ClusterOf[n/2]
	st.BFS([]int32{0}, n/2)

	var lSeries, uSeries, tSeries []float64
	tbl := stats.NewTable("Figure 3 series (cluster of the antipodal vertex)",
		"stage", "Z[i+1]", "L_i", "U_i", "true dist to W_i")
	for _, pt := range st.Inst.Trace {
		lv, uv := float64(pt.L), float64(pt.U)
		if pt.L < 0 {
			lv = 0
		}
		if pt.U > float64AsInt64Cap {
			uv = math.NaN()
		}
		lSeries = append(lSeries, lv)
		uSeries = append(uSeries, uv)
		tSeries = append(tSeries, float64(pt.TrueDist))
		uStr := fmt.Sprint(pt.U)
		if pt.U > float64AsInt64Cap {
			uStr = "∞"
		}
		tbl.AddRowf(pt.Stage, pt.Z, pt.L, uStr, pt.TrueDist)
	}
	tbl.Render(cfg.out)
	fmt.Fprintln(cfg.out, stats.Chart(60, 14,
		stats.Series{Name: "U_i (upper bound)", Mark: '#', Points: uSeries},
		stats.Series{Name: "true dist(W_i, C)", Mark: '*', Points: tSeries},
		stats.Series{Name: "L_i (lower bound)", Mark: '.', Points: lSeries},
	))
}

const float64AsInt64Cap = int64(1) << 40
