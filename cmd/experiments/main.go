// Command experiments regenerates every experiment table of the
// reproduction (DESIGN.md §5, recorded in EXPERIMENTS.md): one table or
// chart per theorem/lemma/figure of the paper.
//
// Usage:
//
//	experiments [-quick] [-only E1,E7] [-seed 1]
//
// -quick shrinks instance sizes for CI-scale runs; -only selects a subset.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"
)

type experiment struct {
	id    string
	title string
	run   func(cfg config)
}

type config struct {
	quick bool
	seed  uint64
	out   *os.File
}

func main() {
	quick := flag.Bool("quick", false, "run reduced instance sizes")
	only := flag.String("only", "", "comma-separated experiment IDs (e.g. E1,E7)")
	seed := flag.Uint64("seed", 1, "root seed")
	flag.Parse()

	cfg := config{quick: *quick, seed: *seed, out: os.Stdout}
	selected := map[string]bool{}
	for _, id := range strings.Split(*only, ",") {
		if id = strings.TrimSpace(strings.ToUpper(id)); id != "" {
			selected[id] = true
		}
	}
	all := []experiment{
		{"E1", "Theorem 4.1 — Recursive-BFS energy and time", runE1},
		{"E2", "Lemma 2.4 — Local-Broadcast (Decay) costs", runE2},
		{"E3", "Lemma 2.5 — MPX clustering costs and shape", runE3},
		{"E4", "Lemmas 2.1-2.3 — cluster graph as distance proxy", runE4},
		{"E5", "Lemmas 3.1-3.2 — cast and virtual-LB overhead", runE5},
		{"E6", "Z-sequence (§4.1, Lemma 4.2)", runE6},
		{"E7", "Claims 1-2 — participation counters", runE7},
		{"E8", "Invariant 4.1 — reference check", runE8},
		{"E9", "Figure 3 — distance-estimate evolution", runE9},
		{"E10", "Theorem 5.1 — K_n vs K_n-e energy trade-off", runE10},
		{"E11", "Theorem 5.2 — set-disjointness construction", runE11},
		{"E12", "Theorem 5.3 — 2-approximate diameter", runE12},
		{"E13", "Theorem 5.4 — 3/2-approximate diameter", runE13},
		{"E14", "§1 motivation — polling-period dissemination", runE14},
	}
	for _, e := range all {
		if len(selected) > 0 && !selected[e.id] {
			continue
		}
		start := time.Now()
		fmt.Fprintf(cfg.out, "# %s: %s\n\n", e.id, e.title)
		e.run(cfg)
		fmt.Fprintf(cfg.out, "(%s finished in %v)\n\n", e.id, time.Since(start).Round(time.Millisecond))
	}
}

// sortedKeys returns map keys in sorted order for deterministic output.
func sortedKeys[K int | string, V any](m map[K]V) []K {
	ks := make([]K, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
	return ks
}
