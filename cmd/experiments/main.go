// Command experiments regenerates every experiment table of the
// reproduction: one table or chart per theorem/lemma/figure of the paper
// (see the package documentation of the root repro package for the claim
// list, and DESIGN.md for the paper-to-code map).
//
// The experiment grids — instances, trial counts, parameters, quick-mode
// overlays — are NOT defined here: they load from the checked-in spec files
// embedded by the scenarios package (scenarios/eN_*.json), the same files
// `radiobfs run` executes. This command contributes only what a data file
// cannot: the instrumented custom workloads (attached by name through
// spec.Options.Custom) and the per-theorem table rendering. E6 is the one
// exception — a trial-free Z-sequence printout with no grid to declare.
//
// All instance expansion and metering goes through the shared parallel
// trial runner in internal/harness, so tables are reproducible from the
// root seed at any worker count.
//
// Usage:
//
//	experiments [-quick] [-only E1,E7] [-seed 1] [-workers 0]
//
// -quick compiles the specs' reduced-size overlays for CI-scale runs;
// -only selects a subset; -workers bounds trial parallelism (0 = all
// cores); -seed overrides the spec files' seed policy as the runner root.
// Tables go to stdout, per-experiment timing to stderr.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/harness"
	"repro/internal/profiling"
	"repro/internal/spec"
	"repro/scenarios"
)

type experiment struct {
	id    string
	title string
	run   func(cfg config)
}

type config struct {
	quick  bool
	seed   uint64
	out    *os.File
	runner harness.Runner
}

// runAll is cfg sugar: execute scenarios on the shared runner.
func (cfg config) runAll(scs ...*harness.Scenario) []harness.Result {
	return cfg.runner.Run(scs...)
}

// loadSpec loads one embedded spec file and compiles it — honoring -quick —
// with the experiment's custom workloads attached. The spec files are
// checked in and validated by tests, so a failure here is a build defect
// and aborts the run.
func (cfg config) loadSpec(name string, custom map[string]spec.CustomFunc) (*spec.File, []*harness.Scenario) {
	f, err := scenarios.Load(name)
	if err == nil {
		var scs []*harness.Scenario
		if scs, err = spec.Compile(f, spec.Options{Quick: cfg.quick, Custom: custom}); err == nil {
			return f, scs
		}
	}
	fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", name, err)
	os.Exit(1)
	return nil, nil
}

func main() {
	quick := flag.Bool("quick", false, "run reduced instance sizes")
	only := flag.String("only", "", "comma-separated experiment IDs (e.g. E1,E7)")
	seed := flag.Uint64("seed", 1, "root seed")
	workers := flag.Int("workers", 0, "concurrent trials (0 = GOMAXPROCS)")
	denseMin := flag.Int("densemin", 0, "transmitter coverage from which engines use the packed-bitmap dense kernel (0 = default density rule, positive = coverage floor, negative = disable); never changes output bytes")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile taken after the run to this file")
	flag.Parse()

	stopProfiles, err := profiling.Start(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(1)
	}
	defer func() {
		if err := stopProfiles(); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: profile: %v\n", err)
		}
	}()

	cfg := config{
		quick:  *quick,
		seed:   *seed,
		out:    os.Stdout,
		runner: harness.Runner{Workers: *workers, Root: *seed, DenseMin: *denseMin},
	}
	selected := map[string]bool{}
	for _, id := range strings.Split(*only, ",") {
		if id = strings.TrimSpace(strings.ToUpper(id)); id != "" {
			selected[id] = true
		}
	}
	all := []experiment{
		{"E0", "algorithm registry — every registered workload, one smoke table", runE0},
		{"E1", "Theorem 4.1 — Recursive-BFS energy and time", runE1},
		{"E2", "Lemma 2.4 — Local-Broadcast (Decay) costs", runE2},
		{"E3", "Lemma 2.5 — MPX clustering costs and shape", runE3},
		{"E4", "Lemmas 2.1-2.3 — cluster graph as distance proxy", runE4},
		{"E5", "Lemmas 3.1-3.2 — cast and virtual-LB overhead", runE5},
		{"E6", "Z-sequence (§4.1, Lemma 4.2)", runE6},
		{"E7", "Claims 1-2 — participation counters", runE7},
		{"E8", "Invariant 4.1 — reference check", runE8},
		{"E9", "Figure 3 — distance-estimate evolution", runE9},
		{"E10", "Theorem 5.1 — K_n vs K_n-e energy trade-off", runE10},
		{"E11", "Theorem 5.2 — set-disjointness construction", runE11},
		{"E12", "Theorem 5.3 — 2-approximate diameter", runE12},
		{"E13", "Theorem 5.4 — 3/2-approximate diameter", runE13},
		{"E14", "§1 motivation — polling-period dissemination", runE14},
		{"SCALE", "production-scale physics stress — sharded Step at n ≥ 10⁶", runScale},
	}
	// Heavy experiments are opt-in at full size: they run when named in
	// -only, or via their reduced quick overlay, but not in a default full
	// sweep (the scale suite alone is about a minute of wall time).
	heavy := map[string]bool{"SCALE": true}
	for _, e := range all {
		if len(selected) > 0 && !selected[e.id] {
			continue
		}
		if len(selected) == 0 && heavy[e.id] && !*quick {
			fmt.Fprintf(os.Stderr, "%s skipped at full size (run with -only %s, or -quick for the overlay)\n", e.id, e.id)
			continue
		}
		start := time.Now()
		fmt.Fprintf(cfg.out, "# %s: %s\n\n", e.id, e.title)
		e.run(cfg)
		fmt.Fprintf(os.Stderr, "%s finished in %v\n", e.id, time.Since(start).Round(time.Millisecond))
	}
}

// sortedKeys returns map keys in sorted order for deterministic output.
func sortedKeys[K int | string, V any](m map[K]V) []K {
	ks := make([]K, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
	return ks
}
