package main

import (
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/harness"
	"repro/internal/stats"
)

// runScale executes the production-scale suite (scenarios/scale_suite.json):
// Decay BFS on the physical channel at n = 10⁶–4·10⁶, the regime the sharded
// Step path and the Runner's intra-trial scheduling policy exist for. The
// suite is heavy (about a minute of single-core wall time at full size), so
// the driver runs it only under -quick or when explicitly selected with
// -only SCALE. The stdout table carries only the paper metrics — rows are
// byte-identical at any worker or shard count, like every experiment —
// while per-instance wall time, the quantity this experiment exists to
// move, goes to stderr with the rest of the timing.
func runScale(cfg config) {
	_, scs := cfg.loadSpec("scale_suite.json", nil)

	tbl := stats.NewTable("scale suite: Decay BFS on the physical channel",
		"family", "n", "D", "mislabeled", "physMax", "physRounds", "msgViolations")
	for _, sc := range scs {
		for _, in := range sc.Instances {
			one := *sc
			one.Instances = []harness.Instance{in}
			start := time.Now()
			results := cfg.runAll(&one)
			wall := time.Since(start).Round(time.Millisecond)
			fmt.Fprintf(os.Stderr, "SCALE %s n=%d: %v wall (workers=%d, GOMAXPROCS=%d)\n",
				in.Family, in.N, wall, cfg.runner.Workers, runtime.GOMAXPROCS(0))
			for _, r := range results {
				if r.Err != "" {
					tbl.AddRowf(r.Family, r.N, r.MaxDist, "ERROR: "+r.Err, "-", "-", "-")
					continue
				}
				tbl.AddRowf(r.Family, r.N, r.MaxDist,
					r.Get("mislabeled"), r.Get("physMax"), r.Get("physRounds"), r.Get("msgViolations"))
			}
		}
	}
	tbl.Render(cfg.out)
	fmt.Fprintln(cfg.out, "Instances at n >= the shard threshold run one at a time with Step sharded")
	fmt.Fprintln(cfg.out, "across the worker pool (see DESIGN.md, \"Sharded step\"); rows are identical")
	fmt.Fprintln(cfg.out, "at every worker/shard count — only the stderr wall times move.")
	fmt.Fprintln(cfg.out)
}
