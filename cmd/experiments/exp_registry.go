package main

import (
	"fmt"
	"strings"

	"repro"
	"repro/internal/harness"
	"repro/internal/stats"
)

// runE0 drives every registered algorithm through the public registry on a
// shared small workload. The experiment enumerates repro.Algorithms() rather
// than naming workloads, so registering a new algorithm grows this table (and
// only this code decides how to render it) without touching any driver —
// the registry counterpart of the per-theorem experiments below.
func runE0(cfg config) {
	n := 64
	trials := 3
	if cfg.quick {
		n, trials = 36, 2
	}
	algos := repro.Algorithms()
	var scs []*harness.Scenario
	for _, a := range algos {
		scs = append(scs, &harness.Scenario{
			Name:      "E0-" + a.Name(),
			Instances: []harness.Instance{{Family: "grid", N: n}},
			Trials:    trials,
			Algo:      harness.Algo(a.Name()),
		})
	}
	sums := harness.Aggregate(cfg.runAll(scs...))
	byName := map[string]harness.Summary{}
	for _, s := range sums {
		byName[strings.TrimPrefix(s.Scenario, "E0-")] = s
	}

	tbl := stats.NewTable(fmt.Sprintf("registry smoke: every registered algorithm on grid n=%d (%d trials)", n, trials),
		"algorithm", "params", "metric", "mean", "min", "max")
	for _, a := range algos {
		s, ok := byName[a.Name()]
		if !ok || s.Errors > 0 {
			tbl.AddRowf(a.Name(), "-", "ERROR", "-", "-", "-")
			continue
		}
		params := "-"
		if ps := a.Params(); len(ps) > 0 {
			names := make([]string, len(ps))
			for i, p := range ps {
				names[i] = p.Name
			}
			params = strings.Join(names, ",")
		}
		for _, name := range sortedKeys(s.Metrics) {
			m := s.Metrics[name]
			tbl.AddRowf(a.Name(), params, name, m.Mean, m.Min, m.Max)
			params = "" // print the param list once per algorithm block
		}
	}
	tbl.Render(cfg.out)
	fmt.Fprintln(cfg.out, "Rows come from repro.Algorithms(): a newly registered algorithm appears here,")
	fmt.Fprintln(cfg.out, "in `radiobfs sweep -algo=<name>`, and in the benchmark suite automatically.")
	fmt.Fprintln(cfg.out)
}
