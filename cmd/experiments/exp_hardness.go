package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/diameter"
	"repro/internal/graph"
	"repro/internal/labelcast"
	"repro/internal/lbnet"
	"repro/internal/lowerbound"
	"repro/internal/rng"
	"repro/internal/stats"
)

// runE10 measures the Theorem 5.1 trade-off: detection success of K_n vs
// K_n−e scales linearly with the per-vertex energy budget, and the proof's
// counting identity |X_good| <= 2·energy holds on every transcript.
func runE10(cfg config) {
	n := 64
	trials := 80
	if cfg.quick {
		n, trials = 48, 30
	}
	full := lowerbound.RoundRobinProbe(graph.CompleteMinusEdge(n, 1, 2))
	fmt.Fprintf(cfg.out, "round-robin probe on K_%d−e: detected=%v, per-vertex energy=%d (Θ(n)), |X_good|=%d <= 2·E_total=%d: %v\n\n",
		n, full.Detected, full.MaxEnergy, full.Stats.GoodPairs, 2*full.Stats.TotalEnergy, full.Stats.BoundHolds())

	tbl := stats.NewTable("budgeted probe success vs energy (Theorem 5.1 trade-off)",
		"budget E", "E/n", "success", "analytic 1-(1-E/(n-1))²", "bound holds")
	r := rng.New(rng.Derive(cfg.seed, 0xe10))
	for _, budget := range []int{1, 2, 4, 8, 16, 32, 48} {
		if budget >= n {
			continue
		}
		hits := 0
		holds := true
		for trial := 0; trial < trials; trial++ {
			u := int32(r.Intn(n))
			v := int32(r.Intn(n))
			for v == u {
				v = int32(r.Intn(n))
			}
			res := lowerbound.BudgetedProbe(graph.CompleteMinusEdge(n, u, v), budget, rng.Derive(cfg.seed, uint64(trial), uint64(budget)))
			if res.Detected {
				hits++
			}
			holds = holds && res.Stats.BoundHolds()
		}
		p := float64(budget) / float64(n-1)
		tbl.AddRowf(budget, float64(budget)/float64(n), float64(hits)/float64(trials), 1-(1-p)*(1-p), holds)
	}
	tbl.Render(cfg.out)
	fmt.Fprintln(cfg.out, "success grows ∝ energy budget: distinguishing w.p. Ω(1) needs Ω(n) energy (Theorem 5.1).")
	fmt.Fprintln(cfg.out)
}

// runE11 checks the Theorem 5.2 construction: diameter 2 ⟺ disjoint sets,
// diameter 3 otherwise; arboricity O(log k); and the reduction's bit
// accounting.
func runE11(cfg config) {
	tbl := stats.NewTable("set-disjointness lower-bound graphs (Theorem 5.2)",
		"ℓ", "k=2^ℓ", "|V|", "diam disjoint", "diam intersecting", "degeneracy", "O(log n) bound", "bits/listener-round")
	r := rng.New(rng.Derive(cfg.seed, 0xe11))
	ells := []int{3, 5, 7}
	if !cfg.quick {
		ells = append(ells, 8)
	}
	for _, ell := range ells {
		k := 1 << ell
		// Disjoint pair: evens vs odds. Intersecting: evens vs evens+1 elt.
		var evens, odds []uint64
		for x := 0; x < k; x++ {
			if x%2 == 0 {
				evens = append(evens, uint64(x))
			} else {
				odds = append(odds, uint64(x))
			}
		}
		inter := append(append([]uint64(nil), odds...), evens[r.Intn(len(evens))])
		dDisj := lowerbound.BuildDisjointness(evens, odds, ell)
		dInt := lowerbound.BuildDisjointness(evens, inter, ell)
		diamD := graph.Diameter(dDisj.G)
		diamI := graph.Diameter(dInt.G)
		deg := graph.Degeneracy(dDisj.G)
		bits := dDisj.ReductionBits([][]int32{append(append([]int32{dDisj.UStar, dDisj.VStar}, dDisj.VC...), dDisj.VD...)})
		tbl.AddRowf(ell, k, dDisj.G.N(), diamD, diamI, deg, 4*ell, bits)
	}
	tbl.Render(cfg.out)
	fmt.Fprintln(cfg.out, "Each round costs O(|Z(τ)|·log k) bits in the two-party simulation; an")
	fmt.Fprintln(cfg.out, "o(k/log²k)-energy protocol would therefore solve set-disjointness with o(k)")
	fmt.Fprintln(cfg.out, "bits, contradicting its Ω(k) communication lower bound.")
	fmt.Fprintln(cfg.out)
}

// runE12 measures Theorem 5.3: the 2-approximation's band and costs.
func runE12(cfg config) {
	tbl := stats.NewTable("2-approximation of diameter (Theorem 5.3)",
		"family", "n", "diam", "estimate", "in [diam/2, diam]", "maxLB E", "time(LB)")
	ns := []int{64, 128}
	if !cfg.quick {
		ns = append(ns, 256)
	}
	for _, fam := range []string{"path", "cycle", "grid", "gnp", "lollipop"} {
		for _, n := range ns {
			g, _ := graph.Named(fam, n, cfg.seed)
			diam := graph.Diameter(g)
			base := lbnet.NewUnitNet(g, 0, cfg.seed)
			st, err := core.BuildStack(base, core.AutoParams(g.N(), g.N()), cfg.seed)
			if err != nil {
				fmt.Fprintln(cfg.out, "error:", err)
				return
			}
			res := diameter.TwoApprox(st, diameter.Designated(), g.N())
			in := res.Estimate >= diam/2 && res.Estimate <= diam
			tbl.AddRowf(fam, g.N(), diam, res.Estimate, in, lbnet.MaxLBEnergy(base), base.LBTime())
		}
	}
	tbl.Render(cfg.out)
}

// runE13 measures Theorem 5.4: the nearly-3/2 approximation band, on the
// radio stack at small n and via the centralized mirror at larger n.
func runE13(cfg config) {
	radioTbl := stats.NewTable("3/2-approximation on the radio stack (Theorem 5.4)",
		"family", "n", "diam", "estimate", "in [⌊2diam/3⌋, diam]", "|S|", "|R|", "BFS runs", "maxLB E")
	rns := []int{48}
	if !cfg.quick {
		rns = append(rns, 96)
	}
	for _, fam := range []string{"path", "gnp"} {
		for _, n := range rns {
			g, _ := graph.Named(fam, n, cfg.seed)
			diam := graph.Diameter(g)
			base := lbnet.NewUnitNet(g, 0, cfg.seed)
			st, err := core.BuildStack(base, core.Params{InvBeta: 4, Depth: 1, W: 24, Alpha: 4}, cfg.seed)
			if err != nil {
				fmt.Fprintln(cfg.out, "error:", err)
				return
			}
			res := diameter.ThreeHalvesApprox(st, diameter.Designated(), g.N(), cfg.seed)
			in := res.Estimate >= diam*2/3 && res.Estimate <= diam
			radioTbl.AddRowf(fam, g.N(), diam, res.Estimate, in, res.SampleSize, res.RSize, res.BFSRuns, lbnet.MaxLBEnergy(base))
		}
	}
	radioTbl.Render(cfg.out)

	mirror := stats.NewTable("3/2-approximation, centralized mirror at larger n",
		"family", "n", "diam", "min est", "max est", "band low", "all in band", "seeds")
	mns := []int{512, 1024}
	if !cfg.quick {
		mns = append(mns, 2048)
	}
	for _, fam := range []string{"path", "cycle", "grid", "lollipop", "geometric"} {
		for _, n := range mns {
			g, _ := graph.Named(fam, n, cfg.seed)
			diam := graph.Diameter(g)
			seeds := 5
			if cfg.quick {
				seeds = 3
			}
			minE, maxE := int32(1<<30), int32(0)
			allIn := true
			for s := 0; s < seeds; s++ {
				res := diameter.MirrorThreeHalves(g, rng.Derive(cfg.seed, uint64(s)))
				if res.Estimate < minE {
					minE = res.Estimate
				}
				if res.Estimate > maxE {
					maxE = res.Estimate
				}
				allIn = allIn && res.Estimate >= diam*2/3 && res.Estimate <= diam
			}
			mirror.AddRowf(fam, g.N(), diam, minE, maxE, diam*2/3, allIn, seeds)
		}
	}
	mirror.Render(cfg.out)
}

// runE14 measures the §1 motivation: polling period P trades latency for
// steady-state listening energy.
func runE14(cfg config) {
	n := 256
	if cfg.quick {
		n = 100
	}
	g, _ := graph.Named("geometric", n, cfg.seed)
	labels := graph.BFS(g, 0)
	depth := int64(0)
	for _, l := range labels {
		if int64(l) > depth {
			depth = int64(l)
		}
	}
	tbl := stats.NewTable(fmt.Sprintf("duty-cycled dissemination on a geometric network (n=%d, depth=%d)", g.N(), depth),
		"period P", "delivered", "latency (slots)", "max LB energy", "idle listens", "steady listens/1000 slots")
	for _, period := range []int{1, 2, 4, 8, 16, 32} {
		net := lbnet.NewUnitNet(g, 0, cfg.seed)
		res := labelcast.Broadcast(net, labels, period, int64(g.N())*int64(period+2)*4)
		tbl.AddRowf(period, res.DeliveredAll, res.MaxLatency, lbnet.MaxLBEnergy(net),
			res.IdleListens, labelcast.SteadyStateListens(1000, period))
	}
	tbl.Render(cfg.out)
	fmt.Fprintln(cfg.out, "latency grows by ~P while idle listening drops by 1/P — the trade the paper opens with.")
	fmt.Fprintln(cfg.out)
}
