package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/diameter"
	"repro/internal/graph"
	"repro/internal/harness"
	"repro/internal/labelcast"
	"repro/internal/lbnet"
	"repro/internal/lowerbound"
	"repro/internal/rng"
	"repro/internal/spec"
	"repro/internal/stats"
)

// runE10 measures the Theorem 5.1 trade-off: detection success of K_n vs
// K_n−e scales linearly with the per-vertex energy budget, and the proof's
// counting identity |X_good| <= 2·energy holds on every transcript. The
// budget axis lives in scenarios/e10_lowerbound.json (one scenario per
// budget, the missing edge drawn per trial like the theorem's adversary).
func runE10(cfg config) {
	f, scs := cfg.loadSpec("e10_lowerbound.json", map[string]spec.CustomFunc{
		"e10/budgeted-probe": func(s *spec.Scenario) (harness.TrialCtxFunc, error) {
			budget, err := intArg(s, "budget")
			if err != nil {
				return nil, err
			}
			return func(_ *harness.Context, tr harness.Trial) (harness.Metrics, error) {
				// The missing edge is the trial's hidden instance: drawn
				// uniformly from the trial seed, like the adversary of
				// Theorem 5.1.
				r := rng.New(rng.Derive(tr.Seed, 0xe10))
				u := int32(r.Intn(tr.N))
				v := int32(r.Intn(tr.N))
				for v == u {
					v = int32(r.Intn(tr.N))
				}
				res := lowerbound.BudgetedProbe(graph.CompleteMinusEdge(tr.N, u, v), budget, rng.Derive(tr.Seed, 0x9b))
				return harness.Metrics{
					"detected": harness.BoolMetric(res.Detected),
					"holds":    harness.BoolMetric(res.Stats.BoundHolds()),
				}, nil
			}, nil
		},
	})
	n := scs[0].Instances[0].N

	// The round-robin probe is deterministic — one transcript, no trials.
	full := lowerbound.RoundRobinProbe(graph.CompleteMinusEdge(n, 1, 2))
	fmt.Fprintf(cfg.out, "round-robin probe on K_%d−e: detected=%v, per-vertex energy=%d (Θ(n)), |X_good|=%d <= 2·E_total=%d: %v\n\n",
		n, full.Detected, full.MaxEnergy, full.Stats.GoodPairs, 2*full.Stats.TotalEnergy, full.Stats.BoundHolds())

	sums := harness.Aggregate(cfg.runAll(scs...))
	tbl := stats.NewTable("budgeted probe success vs energy (Theorem 5.1 trade-off)",
		"budget E", "E/n", "success", "analytic 1-(1-E/(n-1))²", "bound holds")
	for i, s := range sums {
		budget := int(f.Scenarios[i].Args["budget"])
		p := float64(budget) / float64(n-1)
		tbl.AddRowf(budget, float64(budget)/float64(n), s.Metrics["detected"].Mean,
			1-(1-p)*(1-p), s.Metrics["holds"].Min == 1)
	}
	tbl.Render(cfg.out)
	fmt.Fprintln(cfg.out, "success grows ∝ energy budget: distinguishing w.p. Ω(1) needs Ω(n) energy (Theorem 5.1).")
	fmt.Fprintln(cfg.out)
}

// runE11 checks the Theorem 5.2 construction: diameter 2 ⟺ disjoint sets,
// diameter 3 otherwise; arboricity O(log k); and the reduction's bit
// accounting. The ℓ axis lives in scenarios/e11_setdisj.json (instances
// carry k = 2^ℓ in n and ℓ in maxDist — constructed graphs, not
// graph.Named families).
func runE11(cfg config) {
	_, scs := cfg.loadSpec("e11_setdisj.json", map[string]spec.CustomFunc{
		"e11/set-disjointness": func(*spec.Scenario) (harness.TrialCtxFunc, error) {
			return func(_ *harness.Context, tr harness.Trial) (harness.Metrics, error) {
				ell, k := tr.MaxDist, tr.N
				// Disjoint pair: evens vs odds. Intersecting: odds + one even.
				var evens, odds []uint64
				for x := 0; x < k; x++ {
					if x%2 == 0 {
						evens = append(evens, uint64(x))
					} else {
						odds = append(odds, uint64(x))
					}
				}
				r := rng.New(rng.Derive(tr.Seed, 0xe11))
				inter := append(append([]uint64(nil), odds...), evens[r.Intn(len(evens))])
				dDisj := lowerbound.BuildDisjointness(evens, odds, ell)
				dInt := lowerbound.BuildDisjointness(evens, inter, ell)
				bits := dDisj.ReductionBits([][]int32{append(append([]int32{dDisj.UStar, dDisj.VStar}, dDisj.VC...), dDisj.VD...)})
				return harness.Metrics{
					"vertices":   float64(dDisj.G.N()),
					"diamDisj":   float64(graph.Diameter(dDisj.G)),
					"diamInt":    float64(graph.Diameter(dInt.G)),
					"degeneracy": float64(graph.Degeneracy(dDisj.G)),
					"bits":       float64(bits),
				}, nil
			}, nil
		},
	})
	results := cfg.runAll(scs...)
	tbl := stats.NewTable("set-disjointness lower-bound graphs (Theorem 5.2)",
		"ℓ", "k=2^ℓ", "|V|", "diam disjoint", "diam intersecting", "degeneracy", "O(log n) bound", "bits/listener-round")
	for _, r := range results {
		tbl.AddRowf(r.MaxDist, r.N, r.Get("vertices"), r.Get("diamDisj"), r.Get("diamInt"),
			r.Get("degeneracy"), 4*r.MaxDist, r.Get("bits"))
	}
	tbl.Render(cfg.out)
	fmt.Fprintln(cfg.out, "Each round costs O(|Z(τ)|·log k) bits in the two-party simulation; an")
	fmt.Fprintln(cfg.out, "o(k/log²k)-energy protocol would therefore solve set-disjointness with o(k)")
	fmt.Fprintln(cfg.out, "bits, contradicting its Ω(k) communication lower bound.")
	fmt.Fprintln(cfg.out)
}

// runE12 measures Theorem 5.3: the 2-approximation's band and costs, via
// the registry's diam2 workload on the family grid of
// scenarios/e12_diam2.json (also runnable via `radiobfs run`).
func runE12(cfg config) {
	_, scs := cfg.loadSpec("e12_diam2.json", nil)
	results := cfg.runAll(scs...)
	tbl := stats.NewTable("2-approximation of diameter (Theorem 5.3)",
		"family", "n", "diam", "estimate", "in [diam/2, diam]", "maxLB E", "time(LB)")
	for _, r := range results {
		if r.Err != "" {
			fmt.Fprintln(cfg.out, "error:", r.Err)
			return
		}
		tbl.AddRowf(r.Family, r.N, r.Get("diam"), r.Get("estimate"), r.Get("inBand") == 1,
			r.Get("maxLB"), r.Get("timeLB"))
	}
	tbl.Render(cfg.out)
}

// runE13 measures Theorem 5.4: the nearly-3/2 approximation band, on the
// radio stack at small n and via the centralized mirror at larger n (grids
// from scenarios/e13_diam32.json).
func runE13(cfg config) {
	graphSeed := rng.Derive(cfg.seed, 0xe13)
	_, scs := cfg.loadSpec("e13_diam32.json", map[string]spec.CustomFunc{
		"e13/radio": func(*spec.Scenario) (harness.TrialCtxFunc, error) {
			return func(_ *harness.Context, tr harness.Trial) (harness.Metrics, error) {
				g, _ := graph.Named(tr.Family, tr.N, graphSeed)
				diam := graph.Diameter(g)
				base := lbnet.NewUnitNet(g, 0, tr.Seed)
				st, err := core.BuildStack(base, core.Params{InvBeta: 4, Depth: 1, W: 24, Alpha: 4}, tr.Seed)
				if err != nil {
					return nil, err
				}
				res := diameter.ThreeHalvesApprox(st, diameter.Designated(), g.N(), tr.Seed)
				return harness.Metrics{
					"estimate":   float64(res.Estimate),
					"diam":       float64(diam),
					"inBand":     harness.BoolMetric(res.Estimate >= diam*2/3 && res.Estimate <= diam),
					"sampleSize": float64(res.SampleSize),
					"rSize":      float64(res.RSize),
					"bfsRuns":    float64(res.BFSRuns),
					"maxLB":      float64(lbnet.MaxLBEnergy(base)),
				}, nil
			}, nil
		},
		"e13/mirror": func(*spec.Scenario) (harness.TrialCtxFunc, error) {
			return func(_ *harness.Context, tr harness.Trial) (harness.Metrics, error) {
				// One fixed graph per cell; the trials sample the algorithm's
				// own randomness, as in the theorem's probability statement.
				g, _ := graph.Named(tr.Family, tr.N, graphSeed)
				diam := graph.Diameter(g)
				res := diameter.MirrorThreeHalves(g, tr.Seed)
				return harness.Metrics{
					"estimate": float64(res.Estimate),
					"diam":     float64(diam),
					"bandLow":  float64(diam * 2 / 3),
					"inBand":   harness.BoolMetric(res.Estimate >= diam*2/3 && res.Estimate <= diam),
				}, nil
			}, nil
		},
	})
	results := cfg.runAll(scs...)

	radioTbl := stats.NewTable("3/2-approximation on the radio stack (Theorem 5.4)",
		"family", "n", "diam", "estimate", "in [⌊2diam/3⌋, diam]", "|S|", "|R|", "BFS runs", "maxLB E")
	for _, r := range results {
		if r.Scenario != "E13-radio" {
			continue
		}
		if r.Err != "" {
			fmt.Fprintln(cfg.out, "error:", r.Err)
			return
		}
		radioTbl.AddRowf(r.Family, r.N, r.Get("diam"), r.Get("estimate"), r.Get("inBand") == 1,
			r.Get("sampleSize"), r.Get("rSize"), r.Get("bfsRuns"), r.Get("maxLB"))
	}
	radioTbl.Render(cfg.out)

	mirror := stats.NewTable("3/2-approximation, centralized mirror at larger n",
		"family", "n", "diam", "min est", "max est", "band low", "all in band", "seeds")
	for _, s := range harness.Aggregate(results) {
		if s.Scenario != "E13-mirror" {
			continue
		}
		mirror.AddRowf(s.Family, s.N, s.Metrics["diam"].Mean, s.Metrics["estimate"].Min,
			s.Metrics["estimate"].Max, s.Metrics["bandLow"].Mean, s.Metrics["inBand"].Min == 1, s.Trials)
	}
	mirror.Render(cfg.out)
}

// runE14 measures the §1 motivation: polling period P trades latency for
// steady-state listening energy (period axis from
// scenarios/e14_polling.json).
func runE14(cfg config) {
	graphSeed := rng.Derive(cfg.seed, 0xe14)
	f, scs := cfg.loadSpec("e14_polling.json", map[string]spec.CustomFunc{
		"e14/dissemination": func(s *spec.Scenario) (harness.TrialCtxFunc, error) {
			period, err := intArg(s, "period")
			if err != nil {
				return nil, err
			}
			return func(_ *harness.Context, tr harness.Trial) (harness.Metrics, error) {
				g, _ := graph.Named(tr.Family, tr.N, graphSeed)
				labels := graph.BFS(g, 0)
				net := lbnet.NewUnitNet(g, 0, tr.Seed)
				res := labelcast.Broadcast(net, labels, period, int64(g.N())*int64(period+2)*4)
				return harness.Metrics{
					"delivered": harness.BoolMetric(res.DeliveredAll),
					"latency":   float64(res.MaxLatency),
					"maxLB":     float64(lbnet.MaxLBEnergy(net)),
					"idle":      float64(res.IdleListens),
				}, nil
			}, nil
		},
	})
	results := cfg.runAll(scs...)
	n := scs[0].Instances[0].N
	g, _ := graph.Named("geometric", n, graphSeed)
	labels := graph.BFS(g, 0)
	depth := int64(0)
	for _, l := range labels {
		if int64(l) > depth {
			depth = int64(l)
		}
	}
	tbl := stats.NewTable(fmt.Sprintf("duty-cycled dissemination on a geometric network (n=%d, depth=%d)", g.N(), depth),
		"period P", "delivered", "latency (slots)", "max LB energy", "idle listens", "steady listens/1000 slots")
	for i, r := range results {
		period := int(f.Scenarios[i].Args["period"])
		tbl.AddRowf(period, r.Get("delivered") == 1, r.Get("latency"), r.Get("maxLB"),
			r.Get("idle"), labelcast.SteadyStateListens(1000, period))
	}
	tbl.Render(cfg.out)
	fmt.Fprintln(cfg.out, "latency grows by ~P while idle listening drops by 1/P — the trade the paper opens with.")
	fmt.Fprintln(cfg.out)
}
