package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/diameter"
	"repro/internal/graph"
	"repro/internal/harness"
	"repro/internal/labelcast"
	"repro/internal/lbnet"
	"repro/internal/lowerbound"
	"repro/internal/rng"
	"repro/internal/stats"
)

// runE10 measures the Theorem 5.1 trade-off: detection success of K_n vs
// K_n−e scales linearly with the per-vertex energy budget, and the proof's
// counting identity |X_good| <= 2·energy holds on every transcript.
func runE10(cfg config) {
	n := 64
	trials := 80
	if cfg.quick {
		n, trials = 48, 30
	}
	// The round-robin probe is deterministic — one transcript, no trials.
	full := lowerbound.RoundRobinProbe(graph.CompleteMinusEdge(n, 1, 2))
	fmt.Fprintf(cfg.out, "round-robin probe on K_%d−e: detected=%v, per-vertex energy=%d (Θ(n)), |X_good|=%d <= 2·E_total=%d: %v\n\n",
		n, full.Detected, full.MaxEnergy, full.Stats.GoodPairs, 2*full.Stats.TotalEnergy, full.Stats.BoundHolds())

	var budgets []int
	for _, budget := range []int{1, 2, 4, 8, 16, 32, 48} {
		if budget < n {
			budgets = append(budgets, budget)
		}
	}
	var scs []*harness.Scenario
	for _, budget := range budgets {
		budget := budget
		scs = append(scs, &harness.Scenario{
			Name:      fmt.Sprintf("E10-b%d", budget),
			Instances: []harness.Instance{{Family: "complete-e", N: n}},
			Trials:    trials,
			Run: func(tr harness.Trial) (harness.Metrics, error) {
				// The missing edge is the trial's hidden instance: drawn
				// uniformly from the trial seed, like the adversary of
				// Theorem 5.1.
				r := rng.New(rng.Derive(tr.Seed, 0xe10))
				u := int32(r.Intn(tr.N))
				v := int32(r.Intn(tr.N))
				for v == u {
					v = int32(r.Intn(tr.N))
				}
				res := lowerbound.BudgetedProbe(graph.CompleteMinusEdge(tr.N, u, v), budget, rng.Derive(tr.Seed, 0x9b))
				return harness.Metrics{
					"detected": harness.BoolMetric(res.Detected),
					"holds":    harness.BoolMetric(res.Stats.BoundHolds()),
				}, nil
			},
		})
	}
	sums := harness.Aggregate(cfg.runAll(scs...))
	tbl := stats.NewTable("budgeted probe success vs energy (Theorem 5.1 trade-off)",
		"budget E", "E/n", "success", "analytic 1-(1-E/(n-1))²", "bound holds")
	for i, s := range sums {
		budget := budgets[i]
		p := float64(budget) / float64(n-1)
		tbl.AddRowf(budget, float64(budget)/float64(n), s.Metrics["detected"].Mean,
			1-(1-p)*(1-p), s.Metrics["holds"].Min == 1)
	}
	tbl.Render(cfg.out)
	fmt.Fprintln(cfg.out, "success grows ∝ energy budget: distinguishing w.p. Ω(1) needs Ω(n) energy (Theorem 5.1).")
	fmt.Fprintln(cfg.out)
}

// runE11 checks the Theorem 5.2 construction: diameter 2 ⟺ disjoint sets,
// diameter 3 otherwise; arboricity O(log k); and the reduction's bit
// accounting.
func runE11(cfg config) {
	ells := []int{3, 5, 7}
	if !cfg.quick {
		ells = append(ells, 8)
	}
	insts := make([]harness.Instance, 0, len(ells))
	for _, ell := range ells {
		// N carries k = 2^ℓ; MaxDist carries ℓ (labels for the custom run —
		// these are constructed graphs, not graph.Named families).
		insts = append(insts, harness.Instance{Family: "setdisj", N: 1 << ell, MaxDist: ell})
	}
	sc := &harness.Scenario{
		Name:      "E11",
		Instances: insts,
		Run: func(tr harness.Trial) (harness.Metrics, error) {
			ell, k := tr.MaxDist, tr.N
			// Disjoint pair: evens vs odds. Intersecting: odds + one even.
			var evens, odds []uint64
			for x := 0; x < k; x++ {
				if x%2 == 0 {
					evens = append(evens, uint64(x))
				} else {
					odds = append(odds, uint64(x))
				}
			}
			r := rng.New(rng.Derive(tr.Seed, 0xe11))
			inter := append(append([]uint64(nil), odds...), evens[r.Intn(len(evens))])
			dDisj := lowerbound.BuildDisjointness(evens, odds, ell)
			dInt := lowerbound.BuildDisjointness(evens, inter, ell)
			bits := dDisj.ReductionBits([][]int32{append(append([]int32{dDisj.UStar, dDisj.VStar}, dDisj.VC...), dDisj.VD...)})
			return harness.Metrics{
				"vertices":   float64(dDisj.G.N()),
				"diamDisj":   float64(graph.Diameter(dDisj.G)),
				"diamInt":    float64(graph.Diameter(dInt.G)),
				"degeneracy": float64(graph.Degeneracy(dDisj.G)),
				"bits":       float64(bits),
			}, nil
		},
	}
	results := cfg.runAll(sc)
	tbl := stats.NewTable("set-disjointness lower-bound graphs (Theorem 5.2)",
		"ℓ", "k=2^ℓ", "|V|", "diam disjoint", "diam intersecting", "degeneracy", "O(log n) bound", "bits/listener-round")
	for _, r := range results {
		tbl.AddRowf(r.MaxDist, r.N, r.Get("vertices"), r.Get("diamDisj"), r.Get("diamInt"),
			r.Get("degeneracy"), 4*r.MaxDist, r.Get("bits"))
	}
	tbl.Render(cfg.out)
	fmt.Fprintln(cfg.out, "Each round costs O(|Z(τ)|·log k) bits in the two-party simulation; an")
	fmt.Fprintln(cfg.out, "o(k/log²k)-energy protocol would therefore solve set-disjointness with o(k)")
	fmt.Fprintln(cfg.out, "bits, contradicting its Ω(k) communication lower bound.")
	fmt.Fprintln(cfg.out)
}

// runE12 measures Theorem 5.3: the 2-approximation's band and costs, via
// the harness's built-in diam2 workload.
func runE12(cfg config) {
	ns := []int{64, 128}
	if !cfg.quick {
		ns = append(ns, 256)
	}
	sc := &harness.Scenario{
		Name:      "E12",
		Instances: harness.Cross([]string{"path", "cycle", "grid", "gnp", "lollipop"}, ns, nil),
		Algo:      harness.AlgoDiam2,
	}
	results := cfg.runAll(sc)
	tbl := stats.NewTable("2-approximation of diameter (Theorem 5.3)",
		"family", "n", "diam", "estimate", "in [diam/2, diam]", "maxLB E", "time(LB)")
	for _, r := range results {
		if r.Err != "" {
			fmt.Fprintln(cfg.out, "error:", r.Err)
			return
		}
		tbl.AddRowf(r.Family, r.N, r.Get("diam"), r.Get("estimate"), r.Get("inBand") == 1,
			r.Get("maxLB"), r.Get("timeLB"))
	}
	tbl.Render(cfg.out)
}

// runE13 measures Theorem 5.4: the nearly-3/2 approximation band, on the
// radio stack at small n and via the centralized mirror at larger n.
func runE13(cfg config) {
	rns := []int{48}
	if !cfg.quick {
		rns = append(rns, 96)
	}
	radioSc := &harness.Scenario{
		Name:      "E13-radio",
		Instances: harness.Cross([]string{"path", "gnp"}, rns, nil),
		Run:       e13RadioRun(cfg),
	}
	mns := []int{512, 1024}
	if !cfg.quick {
		mns = append(mns, 2048)
	}
	mirrorTrials := 5
	if cfg.quick {
		mirrorTrials = 3
	}
	graphSeed := rng.Derive(cfg.seed, 0xe13)
	mirrorSc := &harness.Scenario{
		Name:      "E13-mirror",
		Instances: harness.Cross([]string{"path", "cycle", "grid", "lollipop", "geometric"}, mns, nil),
		Trials:    mirrorTrials,
		Run: func(tr harness.Trial) (harness.Metrics, error) {
			// One fixed graph per cell; the trials sample the algorithm's
			// own randomness, as in the theorem's probability statement.
			g, _ := graph.Named(tr.Family, tr.N, graphSeed)
			diam := graph.Diameter(g)
			res := diameter.MirrorThreeHalves(g, tr.Seed)
			return harness.Metrics{
				"estimate": float64(res.Estimate),
				"diam":     float64(diam),
				"bandLow":  float64(diam * 2 / 3),
				"inBand":   harness.BoolMetric(res.Estimate >= diam*2/3 && res.Estimate <= diam),
			}, nil
		},
	}
	results := cfg.runAll(radioSc, mirrorSc)

	radioTbl := stats.NewTable("3/2-approximation on the radio stack (Theorem 5.4)",
		"family", "n", "diam", "estimate", "in [⌊2diam/3⌋, diam]", "|S|", "|R|", "BFS runs", "maxLB E")
	for _, r := range results {
		if r.Scenario != "E13-radio" {
			continue
		}
		if r.Err != "" {
			fmt.Fprintln(cfg.out, "error:", r.Err)
			return
		}
		radioTbl.AddRowf(r.Family, r.N, r.Get("diam"), r.Get("estimate"), r.Get("inBand") == 1,
			r.Get("sampleSize"), r.Get("rSize"), r.Get("bfsRuns"), r.Get("maxLB"))
	}
	radioTbl.Render(cfg.out)

	mirror := stats.NewTable("3/2-approximation, centralized mirror at larger n",
		"family", "n", "diam", "min est", "max est", "band low", "all in band", "seeds")
	for _, s := range harness.Aggregate(results) {
		if s.Scenario != "E13-mirror" {
			continue
		}
		mirror.AddRowf(s.Family, s.N, s.Metrics["diam"].Mean, s.Metrics["estimate"].Min,
			s.Metrics["estimate"].Max, s.Metrics["bandLow"].Mean, s.Metrics["inBand"].Min == 1, s.Trials)
	}
	mirror.Render(cfg.out)
}

// e13RadioRun builds the full-stack 3/2-approximation trial.
func e13RadioRun(cfg config) harness.TrialFunc {
	graphSeed := rng.Derive(cfg.seed, 0xe13)
	return func(tr harness.Trial) (harness.Metrics, error) {
		g, _ := graph.Named(tr.Family, tr.N, graphSeed)
		diam := graph.Diameter(g)
		base := lbnet.NewUnitNet(g, 0, tr.Seed)
		st, err := core.BuildStack(base, core.Params{InvBeta: 4, Depth: 1, W: 24, Alpha: 4}, tr.Seed)
		if err != nil {
			return nil, err
		}
		res := diameter.ThreeHalvesApprox(st, diameter.Designated(), g.N(), tr.Seed)
		return harness.Metrics{
			"estimate":   float64(res.Estimate),
			"diam":       float64(diam),
			"inBand":     harness.BoolMetric(res.Estimate >= diam*2/3 && res.Estimate <= diam),
			"sampleSize": float64(res.SampleSize),
			"rSize":      float64(res.RSize),
			"bfsRuns":    float64(res.BFSRuns),
			"maxLB":      float64(lbnet.MaxLBEnergy(base)),
		}, nil
	}
}

// runE14 measures the §1 motivation: polling period P trades latency for
// steady-state listening energy.
func runE14(cfg config) {
	n := 256
	if cfg.quick {
		n = 100
	}
	periods := []int{1, 2, 4, 8, 16, 32}
	graphSeed := rng.Derive(cfg.seed, 0xe14)
	var scs []*harness.Scenario
	for _, period := range periods {
		period := period
		scs = append(scs, &harness.Scenario{
			Name:      fmt.Sprintf("E14-P%d", period),
			Instances: []harness.Instance{{Family: "geometric", N: n}},
			Run: func(tr harness.Trial) (harness.Metrics, error) {
				g, _ := graph.Named(tr.Family, tr.N, graphSeed)
				labels := graph.BFS(g, 0)
				net := lbnet.NewUnitNet(g, 0, tr.Seed)
				res := labelcast.Broadcast(net, labels, period, int64(g.N())*int64(period+2)*4)
				return harness.Metrics{
					"delivered": harness.BoolMetric(res.DeliveredAll),
					"latency":   float64(res.MaxLatency),
					"maxLB":     float64(lbnet.MaxLBEnergy(net)),
					"idle":      float64(res.IdleListens),
				}, nil
			},
		})
	}
	results := cfg.runAll(scs...)
	g, _ := graph.Named("geometric", n, graphSeed)
	labels := graph.BFS(g, 0)
	depth := int64(0)
	for _, l := range labels {
		if int64(l) > depth {
			depth = int64(l)
		}
	}
	tbl := stats.NewTable(fmt.Sprintf("duty-cycled dissemination on a geometric network (n=%d, depth=%d)", g.N(), depth),
		"period P", "delivered", "latency (slots)", "max LB energy", "idle listens", "steady listens/1000 slots")
	for i, r := range results {
		tbl.AddRowf(periods[i], r.Get("delivered") == 1, r.Get("latency"), r.Get("maxLB"),
			r.Get("idle"), labelcast.SteadyStateListens(1000, periods[i]))
	}
	tbl.Render(cfg.out)
	fmt.Fprintln(cfg.out, "latency grows by ~P while idle listening drops by 1/P — the trade the paper opens with.")
	fmt.Fprintln(cfg.out)
}
