package main

import (
	"flag"
	"os"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata/usage.golden from the live usage text")

// TestUsageGolden pins the top-level usage text byte-for-byte, so any
// registry change is a visible diff (refresh with `go test -run Usage
// -update ./cmd/radiobfs/`).
func TestUsageGolden(t *testing.T) {
	got := usageText()
	const golden = "testdata/usage.golden"
	if *updateGolden {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Errorf("usage text drifted from %s:\n--- got ---\n%s\n--- want ---\n%s", golden, got, want)
	}
}

// TestUsageEnumeratesEveryCommand guards the registry contract: every
// dispatchable subcommand appears in the usage listing, names are unique,
// and each has a synopsis and an entry point.
func TestUsageEnumeratesEveryCommand(t *testing.T) {
	text := usageText()
	seen := map[string]bool{}
	for _, c := range commands() {
		if seen[c.name] {
			t.Errorf("duplicate subcommand %q", c.name)
		}
		seen[c.name] = true
		if c.run == nil {
			t.Errorf("subcommand %q has no entry point", c.name)
		}
		if c.synopsis == "" {
			t.Errorf("subcommand %q has no synopsis", c.name)
		}
		if !strings.Contains(text, "  "+c.name+" ") {
			t.Errorf("usage text does not list %q:\n%s", c.name, text)
		}
	}
	for _, required := range []string{"run", "sweep", "serve", "submit", "work"} {
		if !seen[required] {
			t.Errorf("registry lost the %q subcommand", required)
		}
	}
}
