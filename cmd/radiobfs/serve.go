package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/dist"
	"repro/internal/serve"
	"repro/internal/spec"
)

// runServe implements `radiobfs serve`: a long-lived HTTP daemon that
// executes submitted scenario specs on a shared pooled runner behind
// admission control, streams per-job progress over SSE, and answers repeat
// submissions from a content-addressed artifact cache. See internal/serve
// for the API and DESIGN.md for the serving-layer rationale.
func runServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8370", "listen address (use :0 for an ephemeral port with -addrfile)")
	store := fs.String("store", "serve-store", "content-addressed artifact cache directory")
	workers := fs.Int("workers", 0, "concurrent trials within one job (0 = GOMAXPROCS, 1 = sequential); never changes output bytes")
	execs := fs.Int("execs", 1, "jobs executing concurrently on the shared runner")
	queueCap := fs.Int("queue", 64, "pending-job queue bound; a full queue answers 429")
	maxClient := fs.Int("maxclient", 8, "per-client in-flight job cap; exceeding it answers 429")
	heartbeat := fs.Duration("heartbeat", 15*time.Second, "SSE keep-alive comment interval")
	addrFile := fs.String("addrfile", "", "write the bound address to this file once listening (for scripts using an ephemeral port)")
	shardMinN := fs.Int("shardminn", 0, "instance size from which a trial runs alone with the engine sharded across the pool (0 = default, negative = disable); never changes output bytes")
	denseMin := fs.Int("densemin", 0, "transmitter coverage from which the engine uses the packed-bitmap dense kernel (0 = default, positive = floor, negative = disable); never changes output bytes")
	distListen := fs.String("dist-listen", "", "host:port to accept remote sweep workers on; jobs then execute across `radiobfs work -connect` workers instead of in-process (requires -dist-token)")
	distToken := fs.String("dist-token", "", "shared secret remote workers must prove (required with -dist-listen)")
	distWorkers := fs.Int("dist-workers", 0, "worker slots per job under -dist-listen (0 = GOMAXPROCS)")
	fs.Usage = func() {
		fmt.Fprintln(fs.Output(), "usage: radiobfs serve [flags]")
		fmt.Fprintln(fs.Output(), "Serves spec execution over HTTP/JSON: POST /v1/jobs to submit, GET")
		fmt.Fprintln(fs.Output(), "/v1/jobs/{id}/events for SSE progress, GET /v1/artifacts/{key}/{name}")
		fmt.Fprintln(fs.Output(), "for cached results. Flags:")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		fs.Usage()
		return fmt.Errorf("serve takes no positional arguments (got %q)", fs.Args())
	}

	cfg := serve.Config{
		Store:        *store,
		Workers:      *workers,
		Execs:        *execs,
		QueueCap:     *queueCap,
		MaxPerClient: *maxClient,
		Heartbeat:    *heartbeat,
		ShardMinN:    *shardMinN,
		DenseMin:     *denseMin,
		Log:          os.Stderr,
	}
	if *distListen != "" {
		if *distToken == "" {
			return fmt.Errorf("-dist-listen requires -dist-token")
		}
		// One listener shared across every job: workers started with
		// -persist drain successive jobs, reconnecting after each run's
		// clean shutdown. Each job's coordinator borrows the transport and
		// must not close it; serve owns its lifetime.
		tr, err := dist.Listen(*distListen, dist.ListenConfig{Token: *distToken, Log: os.Stderr})
		if err != nil {
			return err
		}
		defer tr.Close()
		fmt.Fprintf(os.Stderr, "serve: accepting sweep workers on %s\n", tr.Addr())
		dcfg := dist.Config{
			Workers:   *distWorkers,
			Transport: tr,
			Log:       os.Stderr,
			// A worker-less daemon should degrade to in-process execution
			// quickly rather than stall every job for the full minute.
			ConnectWait: 3 * time.Second,
		}
		cfg.Execute = func(f *spec.File, root uint64, opts spec.Options) (*spec.Output, error) {
			return dist.Execute(f, root, opts, dcfg)
		}
	} else if *distToken != "" || *distWorkers != 0 {
		return fmt.Errorf("-dist-token and -dist-workers require -dist-listen")
	}
	srv, err := serve.New(cfg)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		srv.Close()
		return err
	}
	fmt.Fprintf(os.Stderr, "serve: listening on %s, store %s, execs %d, queue %d\n",
		ln.Addr(), *store, *execs, *queueCap)
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(ln.Addr().String()+"\n"), 0o644); err != nil {
			ln.Close()
			srv.Close()
			return err
		}
	}

	httpSrv := &http.Server{Handler: srv.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	select {
	case <-ctx.Done():
		fmt.Fprintln(os.Stderr, "serve: shutting down")
		// Settle the jobs first: canceling them closes their event logs, so
		// in-flight SSE streams end and Shutdown can drain the connections.
		srv.Close()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			return err
		}
		return nil
	case err := <-errc:
		srv.Close()
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	}
}
