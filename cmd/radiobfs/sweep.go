package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"repro"
	"repro/internal/graph"
	"repro/internal/harness"
	"repro/internal/profiling"
)

// roundObserver tallies simulated round batches across every concurrent
// trial of a sweep; the total is reported on stderr with the wall time.
type roundObserver struct {
	rounds atomic.Int64
}

func (o *roundObserver) PhaseStart(string) {}
func (o *roundObserver) PhaseEnd(string)   {}
func (o *roundObserver) RoundBatch(_ string, n int64) {
	o.rounds.Add(n)
}

// runSweep implements `radiobfs sweep`: expand a declarative scenario grid
// into independent trials, execute them on the harness worker pool, and
// print aggregated statistics. Everything written to stdout is a pure
// function of the flags — timing goes to stderr — so sweeps diff cleanly
// across machines and worker counts.
//
// SIGINT/SIGTERM cancels the shared context: in-flight trials settle at
// their next phase boundary, the partial aggregate is NOT printed, and the
// command exits non-zero.
func runSweep(args []string) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	return execSweep(ctx, args, os.Stdout, os.Stderr)
}

// execSweep is runSweep minus the signal plumbing, so interruption behavior
// is testable with a pre-canceled context.
func execSweep(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("sweep", flag.ExitOnError)
	families := fs.String("families", "cycle,grid", "comma-separated graph families: "+strings.Join(graph.FamilyNames(), ", "))
	sizes := fs.String("sizes", "128,256", "comma-separated instance sizes")
	algos := fs.String("algos", "recursive", "comma-separated registered algorithms ('help' lists all): "+strings.Join(repro.AlgorithmNames(), ", "))
	fs.StringVar(algos, "algo", *algos, "alias of -algos")
	trials := fs.Int("trials", 4, "independently-seeded trials per (family, size) cell")
	workers := fs.Int("workers", 0, "concurrent trials (0 = GOMAXPROCS, 1 = sequential)")
	seed := fs.Uint64("seed", 1, "root seed; every trial seed is derived from it")
	maxDistFrac := fs.Float64("maxdistfrac", 1, "search radius as a fraction of n (BFS algorithms)")
	period := fs.Int("period", 4, "polling period for poll/alarm")
	passes := fs.Int("passes", 0, "Decay repetition count for decay (0 = ⌈log₂ n⌉)")
	physical := fs.Bool("physical", false, "charge real radio slots instead of LB units")
	progressFlag := fs.Bool("progress", false, "tally simulated rounds via the Observer hook (reported on stderr)")
	jsonOut := fs.Bool("json", false, "emit aggregated JSON instead of text tables")
	csvOut := fs.Bool("csv", false, "emit aggregated CSV instead of text tables")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile of the sweep to this file")
	memProfile := fs.String("memprofile", "", "write a heap profile taken after the sweep to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	stopProfiles, err := profiling.Start(*cpuProfile, *memProfile)
	if err != nil {
		return err
	}
	defer func() {
		if err := stopProfiles(); err != nil {
			fmt.Fprintf(stderr, "sweep: profile: %v\n", err)
		}
	}()

	fams, err := splitList(*families)
	if err != nil {
		return err
	}
	var ns []int
	for _, s := range strings.Split(*sizes, ",") {
		s = strings.TrimSpace(s)
		if s == "" {
			continue
		}
		n, err := strconv.Atoi(s)
		if err != nil || n < 1 {
			return fmt.Errorf("bad size %q", s)
		}
		ns = append(ns, n)
	}
	if len(fams) == 0 || len(ns) == 0 {
		return fmt.Errorf("need at least one family and one size")
	}

	cost := repro.CostUnit
	if *physical {
		cost = repro.CostPhysical
	}
	maxDist := func(_ string, n int) int {
		d := int(float64(n) * *maxDistFrac)
		if d < 1 {
			d = 1
		}
		return d
	}
	algoNames, err := splitList(*algos)
	if err != nil {
		return err
	}
	for _, a := range algoNames {
		if a == "help" {
			printAlgorithms(stdout)
			return nil
		}
		// Fail on unknown names before any trial runs, with the full listing.
		if _, err := repro.Get(a); err != nil {
			return err
		}
	}

	var observer *roundObserver
	if *progressFlag {
		observer = &roundObserver{}
	}

	var scenarios []*harness.Scenario
	for _, a := range algoNames {
		sc := &harness.Scenario{
			Name:      a,
			Instances: harness.Cross(fams, ns, maxDist),
			Trials:    *trials,
			Algo:      harness.Algo(a),
			Cost:      cost,
			Period:    *period,
			Passes:    *passes,
			Ctx:       ctx,
		}
		if observer != nil {
			sc.Observer = observer
		}
		scenarios = append(scenarios, sc)
	}

	start := time.Now()
	runner := harness.Runner{Workers: *workers, Root: *seed}
	results := runner.Run(scenarios...)
	elapsed := time.Since(start)

	// A canceled sweep settles its in-flight trials and stops; the aggregate
	// would describe a partial grid, so none of it reaches stdout.
	if ctx.Err() != nil {
		return fmt.Errorf("interrupted (%w) — partial aggregate not written", ctx.Err())
	}
	errs := 0
	for _, r := range results {
		if r.Err != "" {
			errs++
			fmt.Fprintf(stderr, "trial %s/%s/n=%d#%d: %s\n", r.Scenario, r.Family, r.N, r.Index, r.Err)
		}
	}
	sums := harness.Aggregate(results)
	switch {
	case *jsonOut:
		if err := harness.WriteJSON(stdout, sums); err != nil {
			return err
		}
	case *csvOut:
		harness.WriteCSV(stdout, sums)
	default:
		harness.WriteTable(stdout, sums)
	}
	fmt.Fprintf(stderr, "sweep: %d trials, %d errors, %v wall\n", len(results), errs, elapsed.Round(time.Millisecond))
	if observer != nil {
		fmt.Fprintf(stderr, "sweep: %d simulated rounds observed\n", observer.rounds.Load())
	}
	if errs > 0 {
		return fmt.Errorf("%d of %d trials failed", errs, len(results))
	}
	return nil
}

func splitList(s string) ([]string, error) {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list %q", s)
	}
	return out, nil
}
