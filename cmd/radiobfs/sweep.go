package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro"
	"repro/internal/graph"
	"repro/internal/harness"
	"repro/internal/profiling"
)

// runSweep implements `radiobfs sweep`: expand a declarative scenario grid
// into independent trials, execute them on the harness worker pool, and
// print aggregated statistics. Everything written to stdout is a pure
// function of the flags — timing goes to stderr — so sweeps diff cleanly
// across machines and worker counts.
func runSweep(args []string) error {
	fs := flag.NewFlagSet("sweep", flag.ExitOnError)
	families := fs.String("families", "cycle,grid", "comma-separated graph families: "+strings.Join(graph.FamilyNames(), ", "))
	sizes := fs.String("sizes", "128,256", "comma-separated instance sizes")
	algos := fs.String("algos", "recursive", "comma-separated algorithms: recursive, decay, diam2, diam32, verify, poll, alarm")
	trials := fs.Int("trials", 4, "independently-seeded trials per (family, size) cell")
	workers := fs.Int("workers", 0, "concurrent trials (0 = GOMAXPROCS, 1 = sequential)")
	seed := fs.Uint64("seed", 1, "root seed; every trial seed is derived from it")
	maxDistFrac := fs.Float64("maxdistfrac", 1, "search radius as a fraction of n (BFS algorithms)")
	period := fs.Int("period", 4, "polling period for poll/alarm")
	physical := fs.Bool("physical", false, "charge real radio slots instead of LB units")
	jsonOut := fs.Bool("json", false, "emit aggregated JSON instead of text tables")
	csvOut := fs.Bool("csv", false, "emit aggregated CSV instead of text tables")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile of the sweep to this file")
	memProfile := fs.String("memprofile", "", "write a heap profile taken after the sweep to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	stopProfiles, err := profiling.Start(*cpuProfile, *memProfile)
	if err != nil {
		return err
	}
	defer func() {
		if err := stopProfiles(); err != nil {
			fmt.Fprintf(os.Stderr, "sweep: profile: %v\n", err)
		}
	}()

	fams, err := splitList(*families)
	if err != nil {
		return err
	}
	var ns []int
	for _, s := range strings.Split(*sizes, ",") {
		s = strings.TrimSpace(s)
		if s == "" {
			continue
		}
		n, err := strconv.Atoi(s)
		if err != nil || n < 1 {
			return fmt.Errorf("bad size %q", s)
		}
		ns = append(ns, n)
	}
	if len(fams) == 0 || len(ns) == 0 {
		return fmt.Errorf("need at least one family and one size")
	}

	cost := repro.CostUnit
	if *physical {
		cost = repro.CostPhysical
	}
	maxDist := func(_ string, n int) int {
		d := int(float64(n) * *maxDistFrac)
		if d < 1 {
			d = 1
		}
		return d
	}
	algoNames, err := splitList(*algos)
	if err != nil {
		return err
	}
	var scenarios []*harness.Scenario
	for _, a := range algoNames {
		scenarios = append(scenarios, &harness.Scenario{
			Name:      a,
			Instances: harness.Cross(fams, ns, maxDist),
			Trials:    *trials,
			Algo:      harness.Algo(a),
			Cost:      cost,
			Period:    *period,
		})
	}

	start := time.Now()
	runner := harness.Runner{Workers: *workers, Root: *seed}
	results := runner.Run(scenarios...)
	elapsed := time.Since(start)

	errs := 0
	for _, r := range results {
		if r.Err != "" {
			errs++
			fmt.Fprintf(os.Stderr, "trial %s/%s/n=%d#%d: %s\n", r.Scenario, r.Family, r.N, r.Index, r.Err)
		}
	}
	sums := harness.Aggregate(results)
	switch {
	case *jsonOut:
		if err := harness.WriteJSON(os.Stdout, sums); err != nil {
			return err
		}
	case *csvOut:
		harness.WriteCSV(os.Stdout, sums)
	default:
		harness.WriteTable(os.Stdout, sums)
	}
	fmt.Fprintf(os.Stderr, "sweep: %d trials, %d errors, %v wall\n", len(results), errs, elapsed.Round(time.Millisecond))
	if errs > 0 {
		return fmt.Errorf("%d of %d trials failed", errs, len(results))
	}
	return nil
}

func splitList(s string) ([]string, error) {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list %q", s)
	}
	return out, nil
}
