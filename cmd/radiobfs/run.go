package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/harness"
	"repro/internal/spec"
)

// runSpecs implements `radiobfs run <spec.json>...`: parse and validate each
// declarative scenario file, execute it on the pooled parallel runner, and
// persist its artifacts — per-trial JSONL, aggregated CSV, a rendered
// Markdown table, and a manifest — under the output directory. Everything
// written to stdout and to the artifact files is a pure function of the spec
// and the root seed: re-running at any -workers value produces identical
// bytes. Specs that reference custom workloads (the instrumented E-series
// measurement code) are rejected here; cmd/experiments executes those.
func runSpecs(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	outDir := fs.String("out", "results", "artifact directory; each spec writes to <out>/<spec name>/")
	workers := fs.Int("workers", 0, "concurrent trials (0 = GOMAXPROCS, 1 = sequential)")
	seed := fs.Uint64("seed", 0, "root seed override (0 = each spec file's own seed policy)")
	quick := fs.Bool("quick", false, "apply the specs' reduced-size quick overlays")
	quiet := fs.Bool("quiet", false, "suppress the aggregated text table on stdout")
	shardMinN := fs.Int("shardminn", 0, "instance size from which a trial runs alone with the engine sharded across the pool (0 = default threshold, negative = disable); never changes output bytes")
	denseMin := fs.Int("densemin", 0, "transmitter coverage from which the engine uses the packed-bitmap dense kernel (0 = default density rule, positive = coverage floor, negative = disable); never changes output bytes")
	fs.Usage = func() {
		fmt.Fprintln(fs.Output(), "usage: radiobfs run [flags] <spec.json>...")
		fmt.Fprintln(fs.Output(), "Executes declarative scenario specs (see scenarios/ and README.md) and")
		fmt.Fprintln(fs.Output(), "persists JSONL/CSV/Markdown artifacts. Flags:")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	paths := fs.Args()
	if len(paths) == 0 {
		fs.Usage()
		return fmt.Errorf("no spec files given")
	}

	// Parse, validate, AND compile everything up front — compiling is what
	// rejects custom-workload specs — so a bad last spec cannot waste the
	// first one's run.
	files := make([]*spec.File, 0, len(paths))
	for _, path := range paths {
		f, err := spec.ParseFile(path)
		if err != nil {
			return err
		}
		if _, err := spec.Compile(f, spec.Options{Quick: *quick}); err != nil {
			return err
		}
		files = append(files, f)
	}

	// Ctrl-C cancels in-flight trials at the next phase boundary.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	opts := spec.Options{Quick: *quick, Ctx: ctx, ShardMinN: *shardMinN, DenseMin: *denseMin}

	failed := 0
	for i, f := range files {
		start := time.Now()
		out, err := spec.ExecuteFile(f, *workers, *seed, opts)
		if err != nil {
			return fmt.Errorf("%s: %w", paths[i], err)
		}
		dir, err := out.WriteArtifacts(*outDir)
		if err != nil {
			return err
		}
		if !*quiet {
			harness.WriteTable(os.Stdout, harness.FilterMetrics(out.Summaries, f.Columns))
		}
		for _, r := range out.Results {
			if r.Err != "" {
				failed++
				fmt.Fprintf(os.Stderr, "trial %s/%s/n=%d#%d: %s\n", r.Scenario, r.Family, r.N, r.Index, r.Err)
			}
		}
		fmt.Fprintf(os.Stderr, "run %s: %d trials, %d errors, seed %d, %v wall → %s\n",
			f.Name, len(out.Results), out.Errors(), out.Root, time.Since(start).Round(time.Millisecond), dir)
	}
	if failed > 0 {
		return fmt.Errorf("%d trials failed", failed)
	}
	return nil
}
