package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"repro/internal/dist"
	"repro/internal/harness"
	"repro/internal/progress"
	"repro/internal/spec"
)

// runSpecs implements `radiobfs run <spec.json>...`: parse and validate each
// declarative scenario file, execute it — on the pooled in-process runner, or
// across worker processes under -dist — and persist its artifacts under the
// output directory. Everything written to stdout and to the artifact files is
// a pure function of the spec and the root seed: re-running at any -workers
// value, in-process or distributed, faulted or not, produces identical bytes.
// Specs that reference custom workloads (the instrumented E-series
// measurement code) are rejected here; cmd/experiments executes those.
//
// SIGINT/SIGTERM cancels the shared context: in-flight trials settle at their
// next phase boundary, no partial artifacts are written, worker processes are
// killed and reaped (no orphans survive the interrupt), and the command exits
// non-zero. Under -checkpoint, journaled progress survives the interrupt and
// the next run against the same directory resumes from it.
func runSpecs(args []string) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	return execSpecs(ctx, args, os.Stdout, os.Stderr)
}

// execSpecs is runSpecs minus the signal plumbing, so interruption behavior
// is testable with a pre-canceled context.
func execSpecs(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	outDir := fs.String("out", "results", "artifact directory; each spec writes to <out>/<spec name>/")
	workers := fs.Int("workers", 0, "concurrent trials, or worker processes under -dist (0 = GOMAXPROCS, 1 = sequential)")
	seed := fs.Uint64("seed", 0, "root seed override (0 = each spec file's own seed policy)")
	quick := fs.Bool("quick", false, "apply the specs' reduced-size quick overlays")
	quiet := fs.Bool("quiet", false, "suppress the aggregated text table on stdout")
	distFlag := fs.Bool("dist", false, "execute each spec across -workers worker processes with lease-based fault-tolerant coordination; bytes are identical to in-process runs")
	chaosFlag := fs.String("chaos", "", "deterministic fault injection for -dist workers, as seed=S,killafter=K,stall=P,disconnect=D,delay=MS,corrupt=P,coordkill=K (implies -dist)")
	checkpointFlag := fs.String("checkpoint", "", "durable checkpoint directory (implies -dist): every acked trial is journaled to <dir>/<spec name>/ before it counts, and re-running with the same directory resumes instead of restarting")
	checkpointSync := fs.Duration("checkpoint-sync", 0, "batch the checkpoint journal's fsyncs at this interval (0 = fsync every trial; with batching, a crash may re-run the unsynced tail but never changes bytes)")
	listenFlag := fs.String("listen", "", "host:port to accept remote workers on instead of spawning local worker processes (implies -dist; requires -token); `radiobfs work -connect <addr> -token T` dials in")
	tokenFlag := fs.String("token", "", "shared secret remote workers must prove during the handshake (required with -listen)")
	addrFile := fs.String("addrfile", "", "write the resolved listen address to this file once the listener is up (for -listen 127.0.0.1:0 in scripts)")
	connectWait := fs.Duration("connect-wait", 60*time.Second, "under -listen, how long to tolerate zero connected workers before finishing the sweep in-process")
	progressFlag := fs.Bool("progress", false, "log lease lifecycle events on stderr under -dist")
	shardMinN := fs.Int("shardminn", 0, "instance size from which a trial runs alone with the engine sharded across the pool (0 = default threshold, negative = disable); never changes output bytes")
	denseMin := fs.Int("densemin", 0, "transmitter coverage from which the engine uses the packed-bitmap dense kernel (0 = default density rule, positive = coverage floor, negative = disable); never changes output bytes")
	fs.Usage = func() {
		fmt.Fprintln(fs.Output(), "usage: radiobfs run [flags] <spec.json>...")
		fmt.Fprintln(fs.Output(), "Executes declarative scenario specs (see scenarios/ and README.md) and")
		fmt.Fprintln(fs.Output(), "persists JSONL/CSV/Markdown artifacts. Flags:")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	paths := fs.Args()
	if len(paths) == 0 {
		fs.Usage()
		return fmt.Errorf("no spec files given")
	}
	chaos, err := dist.ParseChaos(*chaosFlag)
	if err != nil {
		return err
	}
	distributed := *distFlag || chaos.Enabled() || *listenFlag != "" || *checkpointFlag != ""
	if *listenFlag != "" && *tokenFlag == "" {
		return fmt.Errorf("-listen requires -token: remote workers authenticate with a shared secret")
	}
	if *listenFlag == "" && *tokenFlag != "" {
		return fmt.Errorf("-token only makes sense with -listen")
	}
	if chaos.CoordKill > 0 && *checkpointFlag == "" {
		return fmt.Errorf("-chaos coordkill requires -checkpoint: killing the coordinator without a journal just loses the run")
	}
	if *checkpointSync != 0 && *checkpointFlag == "" {
		return fmt.Errorf("-checkpoint-sync only makes sense with -checkpoint")
	}

	// Parse, validate, AND compile everything up front — compiling is what
	// rejects custom-workload specs — so a bad last spec cannot waste the
	// first one's run.
	files := make([]*spec.File, 0, len(paths))
	for _, path := range paths {
		f, err := spec.ParseFile(path)
		if err != nil {
			return err
		}
		if _, err := spec.Compile(f, spec.Options{Quick: *quick}); err != nil {
			return err
		}
		files = append(files, f)
	}

	opts := spec.Options{Quick: *quick, Ctx: ctx, ShardMinN: *shardMinN, DenseMin: *denseMin}
	dcfg := dist.Config{Workers: *workers, Chaos: chaos, Log: stderr, ConnectWait: *connectWait}
	if *progressFlag {
		dcfg.Observer = leaseLogger{w: stderr}
	}
	if *listenFlag != "" {
		tr, err := dist.Listen(*listenFlag, dist.ListenConfig{Token: *tokenFlag, Log: stderr})
		if err != nil {
			return err
		}
		defer tr.Close()
		fmt.Fprintf(stderr, "dist: listening on %s\n", tr.Addr())
		if *addrFile != "" {
			// Written atomically (tmp + rename) so a polling script never
			// reads a half-written address.
			tmp := *addrFile + ".tmp"
			if err := os.WriteFile(tmp, []byte(tr.Addr().String()+"\n"), 0o644); err != nil {
				return err
			}
			if err := os.Rename(tmp, *addrFile); err != nil {
				return err
			}
		}
		dcfg.Transport = tr
	}

	failed := 0
	for i, f := range files {
		start := time.Now()
		var out *spec.Output
		var err error
		if distributed {
			cfg := dcfg
			if *checkpointFlag != "" {
				// One journal per spec, keyed by spec name, so multi-spec runs
				// resume each file independently.
				cfg.CheckpointDir = filepath.Join(*checkpointFlag, f.Name)
				cfg.CheckpointSync = *checkpointSync
			}
			out, err = dist.Execute(f, *seed, opts, cfg)
		} else {
			out, err = spec.ExecuteFile(f, *workers, *seed, opts)
		}
		if err != nil {
			if ctx.Err() != nil {
				if *checkpointFlag != "" {
					return fmt.Errorf("interrupted (%w) — no artifacts written for %s; checkpointed progress is preserved, re-run with the same -checkpoint to resume", ctx.Err(), f.Name)
				}
				return fmt.Errorf("interrupted (%w) — no artifacts written for %s", ctx.Err(), f.Name)
			}
			return fmt.Errorf("%s: %w", paths[i], err)
		}
		// A canceled run settles its in-flight trials and stops; whatever it
		// produced is partial, so nothing may reach the artifact directory.
		if ctx.Err() != nil {
			if *checkpointFlag != "" {
				return fmt.Errorf("interrupted (%w) — no artifacts written for %s; checkpointed progress is preserved, re-run with the same -checkpoint to resume", ctx.Err(), f.Name)
			}
			return fmt.Errorf("interrupted (%w) — no artifacts written for %s", ctx.Err(), f.Name)
		}
		dir, err := out.WriteArtifacts(*outDir)
		if err != nil {
			return err
		}
		if !*quiet {
			harness.WriteTable(stdout, harness.FilterMetrics(out.Summaries, f.Columns))
		}
		for _, r := range out.Results {
			if r.Err != "" {
				failed++
				fmt.Fprintf(stderr, "trial %s/%s/n=%d#%d: %s\n", r.Scenario, r.Family, r.N, r.Index, r.Err)
			}
		}
		fmt.Fprintf(stderr, "run %s: %d trials, %d errors, seed %d, %v wall → %s\n",
			f.Name, len(out.Results), out.Errors(), out.Root, time.Since(start).Round(time.Millisecond), dir)
	}
	if failed > 0 {
		return fmt.Errorf("%d trials failed", failed)
	}
	return nil
}

// leaseLogger narrates lease lifecycle events on stderr for `run -dist
// -progress`. Event timing depends on scheduling, so this output never goes
// to stdout, which stays byte-deterministic.
type leaseLogger struct {
	w io.Writer
}

var _ progress.LeaseObserver = leaseLogger{}

func (l leaseLogger) LeaseGranted(lease, worker, start, end int) {
	fmt.Fprintf(l.w, "dist: lease %d [%d, %d) → worker %d\n", lease, start, end, worker)
}

func (l leaseLogger) LeaseDone(lease int) {
	fmt.Fprintf(l.w, "dist: lease %d done\n", lease)
}

func (l leaseLogger) LeaseRevoked(lease, worker int, reason string) {
	fmt.Fprintf(l.w, "dist: lease %d revoked from worker %d: %s\n", lease, worker, reason)
}

func (l leaseLogger) WorkerStarted(worker int) {
	fmt.Fprintf(l.w, "dist: worker %d ready\n", worker)
}

func (l leaseLogger) WorkerExited(worker int, reason string) {
	fmt.Fprintf(l.w, "dist: worker %d exited: %s\n", worker, reason)
}
