// Command radiobfs runs one of the registered algorithms on a generated
// radio network and prints its structured result and cost meters.
//
// Usage:
//
//	radiobfs -graph cycle -n 256 -algo recursive -source 0 -maxdist 128
//	radiobfs -graph geometric -n 400 -algo diam2
//	radiobfs -algo help            # list every registered algorithm
//
// Algorithms are resolved from the repro registry (repro.Algorithms), so a
// newly registered algorithm is runnable here without touching this file;
// -algo help enumerates them with their parameter names.
//
// The sweep subcommand drives the parallel trial runner (internal/harness)
// over a cross product of families, sizes, algorithms, and seeds, and
// aggregates per-cell statistics:
//
//	radiobfs sweep -families cycle,grid -sizes 128,256 -trials 8 -workers 4
//	radiobfs sweep -families geometric -sizes 256 -algos recursive,decay -json
//
// The run subcommand executes declarative scenario specs (internal/spec;
// the checked-in library lives in scenarios/) and persists their artifacts
// — per-trial JSONL, aggregated CSV, a Markdown table, and a manifest — to
// a results directory:
//
//	radiobfs run scenarios/e1_recursive.json
//	radiobfs run -out results -workers 8 -quick scenarios/smoke.json
//
// With -dist, run executes the spec across -workers worker processes under a
// lease-based fault-tolerant coordinator (internal/dist); -chaos injects
// deterministic worker crashes and stalls to exercise it:
//
//	radiobfs run -dist -workers 4 scenarios/scale_suite.json
//	radiobfs run -workers 3 -chaos seed=7,killafter=2,stall=25 -quick scenarios/smoke.json
//
// The work subcommand is the worker half of that protocol: spawned by the
// coordinator, never run by hand, it serves trial leases over stdin/stdout.
//
// The serve subcommand turns the same spec executor into a long-lived HTTP
// daemon — admission-controlled scheduling, SSE progress streams, and a
// content-addressed result cache — and submit is its client:
//
//	radiobfs serve -addr 127.0.0.1:8370 -store serve-store
//	radiobfs submit -server http://127.0.0.1:8370 scenarios/smoke.json
//
// `radiobfs help` lists every subcommand; the listing is generated from the
// same registry main dispatches through.
//
// Sweep and run output — stdout and artifacts alike — is byte-identical for
// every -workers value, in-process or distributed, faulted or not; wall time
// and coordination logs are reported on stderr. The serve cache relies on
// exactly that property: artifacts are pure functions of (spec, seed, build).
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"

	"repro"
	"repro/internal/graph"
)

func main() {
	if len(os.Args) > 1 {
		name := os.Args[1]
		if name == "help" || name == "-help" || name == "--help" {
			fmt.Print(usageText())
			return
		}
		for _, c := range commands() {
			if c.name == name {
				if err := c.run(os.Args[2:]); err != nil {
					fmt.Fprintf(os.Stderr, "radiobfs %s: %v\n", name, err)
					os.Exit(1)
				}
				return
			}
		}
		// A bare word that is not a registered subcommand is a typo, not a
		// single-shot flag set: fail loudly with the registry listing.
		if !strings.HasPrefix(name, "-") {
			fmt.Fprintf(os.Stderr, "radiobfs: unknown command %q\n\n%s", name, usageText())
			os.Exit(2)
		}
	}
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "radiobfs:", err)
		os.Exit(1)
	}
}

// printAlgorithms renders the registry listing shown by -algo help.
func printAlgorithms(w io.Writer) {
	fmt.Fprintln(w, "registered algorithms:")
	for _, a := range repro.Algorithms() {
		params := "none"
		if ps := a.Params(); len(ps) > 0 {
			names := make([]string, len(ps))
			for i, p := range ps {
				names[i] = p.Name
			}
			params = strings.Join(names, ", ")
		}
		fmt.Fprintf(w, "  %-10s %s\n             params: %s\n", a.Name(), a.Doc(), params)
	}
	aliases := repro.Aliases()
	names := make([]string, 0, len(aliases))
	for alias := range aliases {
		names = append(names, alias)
	}
	sort.Strings(names)
	fmt.Fprintln(w, "aliases:")
	for _, alias := range names {
		fmt.Fprintf(w, "  %-14s → %s\n", alias, aliases[alias])
	}
}

func run() error {
	family := flag.String("graph", "grid", "graph family: "+strings.Join(graph.FamilyNames(), ", "))
	n := flag.Int("n", 256, "number of devices")
	algoName := flag.String("algo", "recursive", "registered algorithm ('help' lists all): "+strings.Join(repro.AlgorithmNames(), ", "))
	source := flag.Int("source", 0, "BFS source / base-station vertex")
	maxDist := flag.Int("maxdist", 0, "search radius (0 = n)")
	origin := flag.Int("origin", -1, "alarm origin vertex (-1 = last vertex)")
	period := flag.Int("period", 0, "polling period for poll/alarm (0 = default)")
	seed := flag.Uint64("seed", 1, "root seed")
	physical := flag.Bool("physical", false, "charge real radio slots instead of LB units")
	showLabels := flag.Bool("labels", false, "print the per-vertex labels")
	flag.Parse()

	if *algoName == "help" {
		printAlgorithms(os.Stdout)
		return nil
	}
	alg, err := repro.Get(*algoName)
	if err != nil {
		return err
	}
	g, err := repro.NewGraph(*family, *n, *seed)
	if err != nil {
		return err
	}
	var opts []repro.Option
	if *physical {
		opts = append(opts, repro.WithCostModel(repro.CostPhysical))
	}
	nw, err := repro.NewNetworkE(g, *seed, opts...)
	if err != nil {
		return err
	}
	if *origin < 0 {
		*origin = g.N() - 1
	}
	req := repro.Request{
		Source:  int32(*source),
		MaxDist: *maxDist,
		Period:  *period,
		Origin:  int32(*origin),
	}

	// Ctrl-C cancels the round loops at the next phase boundary.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	fmt.Printf("graph=%s n=%d m=%d maxdeg=%d algo=%s\n", *family, g.N(), g.M(), g.MaxDegree(), alg.Name())
	res, err := alg.Run(ctx, nw, req)
	if err != nil {
		return err
	}
	alg.Check(nw, req, res)

	if res.Labels != nil {
		labeled, maxLabel := 0, int32(0)
		for _, l := range res.Labels {
			if l >= 0 {
				labeled++
				if l > maxLabel {
					maxLabel = l
				}
			}
		}
		fmt.Printf("labeled %d/%d vertices, eccentricity(source) >= %d\n", labeled, g.N(), maxLabel)
		if *showLabels {
			for v, l := range res.Labels {
				fmt.Printf("%d\t%d\n", v, l)
			}
		}
	}
	keys := make([]string, 0, len(res.Values))
	for k := range res.Values {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Printf("%s: %g\n", k, res.Values[k])
	}
	c := res.Cost
	fmt.Printf("cost: maxLB=%d totalLB=%d timeLB=%d", c.MaxLBEnergy, c.TotalLBEnergy, c.LBTime)
	if c.PhysRounds > 0 {
		fmt.Printf(" physMax=%d physRounds=%d msgViolations=%d", c.MaxPhysEnergy, c.PhysRounds, c.MsgViolations)
	}
	fmt.Println()
	return nil
}
