// Command radiobfs runs one of the paper's algorithms on a generated radio
// network and prints the labels and cost meters.
//
// Usage:
//
//	radiobfs -graph cycle -n 256 -algo recursive -source 0 -maxdist 128
//	radiobfs -graph geometric -n 400 -algo diam2
//
// Algorithms: recursive (Recursive-BFS, §4), baseline (Decay BFS),
// diam2 (Theorem 5.3), diam32 (Theorem 5.4), verify (BFS then gradient
// verification).
//
// The sweep subcommand drives the parallel trial runner (internal/harness)
// over a cross product of families, sizes, algorithms, and seeds, and
// aggregates per-cell statistics:
//
//	radiobfs sweep -families cycle,grid -sizes 128,256 -trials 8 -workers 4
//	radiobfs sweep -families geometric -sizes 256 -algos recursive,decay -json
//
// Sweep output on stdout is byte-identical for every -workers value; wall
// time is reported on stderr.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro"
	"repro/internal/graph"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "sweep" {
		if err := runSweep(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "radiobfs sweep:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "radiobfs:", err)
		os.Exit(1)
	}
}

func run() error {
	family := flag.String("graph", "grid", "graph family: "+strings.Join(graph.FamilyNames(), ", "))
	n := flag.Int("n", 256, "number of devices")
	algo := flag.String("algo", "recursive", "algorithm: recursive, baseline, diam2, diam32, verify")
	source := flag.Int("source", 0, "BFS source vertex")
	maxDist := flag.Int("maxdist", 0, "search radius (0 = n)")
	seed := flag.Uint64("seed", 1, "root seed")
	physical := flag.Bool("physical", false, "charge real radio slots instead of LB units")
	showLabels := flag.Bool("labels", false, "print the per-vertex labels")
	flag.Parse()

	g, err := repro.NewGraph(*family, *n, *seed)
	if err != nil {
		return err
	}
	if *maxDist <= 0 {
		*maxDist = g.N()
	}
	var opts []repro.Option
	if *physical {
		opts = append(opts, repro.WithCostModel(repro.CostPhysical))
	}
	nw := repro.NewNetwork(g, *seed, opts...)
	fmt.Printf("graph=%s n=%d m=%d maxdeg=%d\n", *family, g.N(), g.M(), g.MaxDegree())

	var labels []int32
	switch *algo {
	case "recursive":
		labels, err = nw.BFS(int32(*source), *maxDist)
	case "baseline":
		labels = nw.BFSBaseline(int32(*source), *maxDist)
	case "verify":
		labels, err = nw.BFS(int32(*source), *maxDist)
		if err == nil {
			bad := nw.VerifyLabeling(labels, *maxDist)
			fmt.Printf("gradient verification violations: %d\n", bad)
		}
	case "diam2":
		var d int32
		d, err = nw.Diameter2Approx()
		fmt.Printf("2-approximate diameter: %d (true: %d)\n", d, graph.Diameter(g))
	case "diam32":
		var d int32
		d, err = nw.Diameter32Approx()
		fmt.Printf("3/2-approximate diameter: %d (true: %d)\n", d, graph.Diameter(g))
	default:
		return fmt.Errorf("unknown algorithm %q", *algo)
	}
	if err != nil {
		return err
	}

	if labels != nil {
		labeled, maxLabel := 0, int32(0)
		for _, l := range labels {
			if l >= 0 {
				labeled++
				if l > maxLabel {
					maxLabel = l
				}
			}
		}
		fmt.Printf("labeled %d/%d vertices, eccentricity(source) >= %d\n", labeled, g.N(), maxLabel)
		if *showLabels {
			for v, l := range labels {
				fmt.Printf("%d\t%d\n", v, l)
			}
		}
	}
	rep := nw.Report()
	fmt.Printf("energy: maxLB=%d totalLB=%d timeLB=%d", rep.MaxLBEnergy, rep.TotalLBEnergy, rep.LBTime)
	if *physical {
		fmt.Printf(" physMax=%d physRounds=%d msgViolations=%d", rep.MaxPhysEnergy, rep.PhysRounds, rep.MsgViolations)
	}
	fmt.Println()
	return nil
}
