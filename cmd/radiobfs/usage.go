package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/dist"
)

// command is one radiobfs subcommand: its dispatch name, the one-line
// synopsis shown by the top-level usage text, and its entry point.
type command struct {
	name     string
	synopsis string
	run      func(args []string) error
}

// commands is the subcommand registry, in listing order. main dispatches
// through it and usageText enumerates it, so adding an entry here is all it
// takes for a new subcommand to be both runnable and documented.
func commands() []command {
	return []command{
		{"run", "execute declarative scenario specs and persist their artifacts", runSpecs},
		{"sweep", "run a families×sizes×algorithms×seeds sweep with aggregated statistics", runSweep},
		{"serve", "serve spec execution over HTTP: pooled scheduling, SSE progress, result cache", runServe},
		{"submit", "submit a spec to a serve daemon, follow progress, fetch the artifacts", runSubmit},
		{"work", "distributed-run worker: spawned by run -dist, or dialing a coordinator with -connect", runWork},
	}
}

// runWork is the worker half of the distributed-run protocol. Without flags
// it serves trial leases over stdin/stdout (the mode `run -dist` spawns);
// with -connect it dials a coordinator's -listen address over TCP,
// authenticates with -token, and serves leases until the run completes.
func runWork(args []string) error {
	fs := flag.NewFlagSet("work", flag.ExitOnError)
	connect := fs.String("connect", "", "coordinator host:port to dial (from its run -listen flag); omitted = pipe mode over stdin/stdout")
	token := fs.String("token", "", "shared secret matching the coordinator's -token (required with -connect)")
	persist := fs.Bool("persist", false, "after a run completes, reconnect and wait for the next one (for serve daemons); default is to exit")
	retries := fs.Int("retries", 10, "consecutive failed connection attempts before giving up")
	fs.Usage = func() {
		fmt.Fprintln(fs.Output(), "usage: radiobfs work [-connect host:port -token T [-persist] [-retries N]]")
		fmt.Fprintln(fs.Output(), "Serves trial leases for a distributed run. Without -connect it speaks the")
		fmt.Fprintln(fs.Output(), "protocol over stdin/stdout and is spawned by `radiobfs run -dist`, never by")
		fmt.Fprintln(fs.Output(), "hand. With -connect it is a remote worker dialing a coordinator started")
		fmt.Fprintln(fs.Output(), "with `radiobfs run -dist -listen ... -token ...`. Flags:")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if len(fs.Args()) > 0 {
		return fmt.Errorf("work takes no positional arguments")
	}
	if *connect == "" {
		if *token != "" || *persist {
			return fmt.Errorf("-token and -persist require -connect")
		}
		return dist.ServeWorker(os.Stdin, os.Stdout)
	}
	if *token == "" {
		return fmt.Errorf("-connect requires -token")
	}
	return dist.RemoteWorker{
		Addr:    *connect,
		Token:   *token,
		Persist: *persist,
		Retries: *retries,
		Log:     os.Stderr,
	}.Run()
}

// usageText renders the top-level usage: every registered subcommand plus
// the flag-driven single-shot mode.
func usageText() string {
	var b strings.Builder
	b.WriteString("usage: radiobfs <command> [flags] [args]\n")
	b.WriteString("       radiobfs [flags]           (single-shot: one algorithm on one generated graph)\n")
	b.WriteString("\ncommands:\n")
	for _, c := range commands() {
		fmt.Fprintf(&b, "  %-8s %s\n", c.name, c.synopsis)
	}
	b.WriteString("\nRun 'radiobfs <command> -h' for a command's flags, 'radiobfs -h' for the\n")
	b.WriteString("single-shot flags, and 'radiobfs -algo help' for the algorithm registry.\n")
	return b.String()
}
