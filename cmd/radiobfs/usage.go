package main

import (
	"fmt"
	"os"
	"strings"

	"repro/internal/dist"
)

// command is one radiobfs subcommand: its dispatch name, the one-line
// synopsis shown by the top-level usage text, and its entry point.
type command struct {
	name     string
	synopsis string
	run      func(args []string) error
}

// commands is the subcommand registry, in listing order. main dispatches
// through it and usageText enumerates it, so adding an entry here is all it
// takes for a new subcommand to be both runnable and documented.
func commands() []command {
	return []command{
		{"run", "execute declarative scenario specs and persist their artifacts", runSpecs},
		{"sweep", "run a families×sizes×algorithms×seeds sweep with aggregated statistics", runSweep},
		{"serve", "serve spec execution over HTTP: pooled scheduling, SSE progress, result cache", runServe},
		{"submit", "submit a spec to a serve daemon, follow progress, fetch the artifacts", runSubmit},
		{"work", "distributed-run worker protocol (spawned by run -dist; never run by hand)", runWork},
	}
}

// runWork is the worker half of the distributed-run protocol: it serves
// trial leases over stdin/stdout until shutdown or EOF.
func runWork(args []string) error {
	if len(args) > 0 {
		return fmt.Errorf("work takes no arguments; it is spawned by `radiobfs run -dist`")
	}
	return dist.ServeWorker(os.Stdin, os.Stdout)
}

// usageText renders the top-level usage: every registered subcommand plus
// the flag-driven single-shot mode.
func usageText() string {
	var b strings.Builder
	b.WriteString("usage: radiobfs <command> [flags] [args]\n")
	b.WriteString("       radiobfs [flags]           (single-shot: one algorithm on one generated graph)\n")
	b.WriteString("\ncommands:\n")
	for _, c := range commands() {
		fmt.Fprintf(&b, "  %-8s %s\n", c.name, c.synopsis)
	}
	b.WriteString("\nRun 'radiobfs <command> -h' for a command's flags, 'radiobfs -h' for the\n")
	b.WriteString("single-shot flags, and 'radiobfs -algo help' for the algorithm registry.\n")
	return b.String()
}
