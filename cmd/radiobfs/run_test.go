package main

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/dist"
	"repro/internal/spec"
)

// TestMain lets the coordinator under test spawn this test executable as a
// worker: dist.Config's default command is `<this binary> work`, exactly the
// path `radiobfs run -dist` takes in production.
func TestMain(m *testing.M) {
	if len(os.Args) > 1 && os.Args[1] == "work" {
		if err := dist.ServeWorker(os.Stdin, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// writeTestSpec drops a small registry-only spec into dir and returns its
// path.
func writeTestSpec(t *testing.T, dir string) string {
	t.Helper()
	path := filepath.Join(dir, "cmdtest.json")
	blob := `{
  "name": "cmdtest",
  "seed": 3,
  "scenarios": [
    {
      "name": "ring",
      "algorithm": "recursive",
      "trials": 3,
      "instances": [{"family": "cycle", "n": 48, "maxDist": 12}]
    },
    {
      "name": "diam",
      "algorithm": "diam2",
      "trials": 2,
      "instances": [{"family": "star", "n": 40}]
    }
  ]
}`
	if err := os.WriteFile(path, []byte(blob), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func readArtifacts(t *testing.T, dir string) map[string][]byte {
	t.Helper()
	arts := map[string][]byte{}
	for _, name := range []string{spec.TrialsArtifact, spec.CSVArtifact, spec.MarkdownArtifact, spec.ManifestArtifact} {
		b, err := os.ReadFile(filepath.Join(dir, "cmdtest", name))
		if err != nil {
			t.Fatalf("artifact %s: %v", name, err)
		}
		arts[name] = b
	}
	return arts
}

// TestExecSpecsInterruptedWritesNothing: a canceled run context (the SIGINT/
// SIGTERM path) must settle, exit non-zero with an interruption error, and
// leave NO artifact files behind — partially-executed sweeps never reach the
// results directory.
func TestExecSpecsInterruptedWritesNothing(t *testing.T) {
	dir := t.TempDir()
	specPath := writeTestSpec(t, dir)
	outDir := filepath.Join(dir, "results")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var stdout, stderr bytes.Buffer
	err := execSpecs(ctx, []string{"-out", outDir, specPath}, &stdout, &stderr)
	if err == nil || !strings.Contains(err.Error(), "interrupted") {
		t.Fatalf("execSpecs = %v, want interruption error", err)
	}
	if entries, _ := os.ReadDir(outDir); len(entries) != 0 {
		t.Errorf("interrupted run wrote into %s: %v", outDir, entries)
	}
	if stdout.Len() != 0 {
		t.Errorf("interrupted run wrote a partial table to stdout: %q", stdout.String())
	}
}

// TestExecSweepInterruptedWritesNothing: same contract for `radiobfs sweep` —
// no partial aggregate on stdout, a non-nil interruption error.
func TestExecSweepInterruptedWritesNothing(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var stdout, stderr bytes.Buffer
	err := execSweep(ctx, []string{"-families", "cycle", "-sizes", "48", "-trials", "2"}, &stdout, &stderr)
	if err == nil || !strings.Contains(err.Error(), "interrupted") {
		t.Fatalf("execSweep = %v, want interruption error", err)
	}
	if stdout.Len() != 0 {
		t.Errorf("interrupted sweep wrote a partial aggregate to stdout: %q", stdout.String())
	}
}

// TestExecSpecsDistByteIdentity runs the same spec in-process, distributed,
// and distributed-under-chaos, and requires every artifact file — trials
// JSONL, CSV, Markdown, manifest — byte-identical across all three.
func TestExecSpecsDistByteIdentity(t *testing.T) {
	dir := t.TempDir()
	specPath := writeTestSpec(t, dir)
	runs := []struct {
		name string
		args []string
	}{
		{"inproc", nil},
		{"dist", []string{"-dist", "-workers", "2"}},
		{"chaos", []string{"-workers", "2", "-chaos", "seed=2,killafter=2"}},
	}
	var want map[string][]byte
	for _, run := range runs {
		outDir := filepath.Join(dir, "out-"+run.name)
		var stdout, stderr bytes.Buffer
		args := append(append([]string{"-out", outDir}, run.args...), specPath)
		if err := execSpecs(context.Background(), args, &stdout, &stderr); err != nil {
			t.Fatalf("%s: %v\nstderr: %s", run.name, err, stderr.String())
		}
		got := readArtifacts(t, outDir)
		if want == nil {
			want = got
			continue
		}
		for name, blob := range got {
			if !bytes.Equal(blob, want[name]) {
				t.Errorf("%s: artifact %s differs from the in-process run", run.name, name)
			}
		}
	}
}

// TestExecSpecsRejectsBadChaos: malformed -chaos values fail before any
// trial runs.
func TestExecSpecsRejectsBadChaos(t *testing.T) {
	dir := t.TempDir()
	specPath := writeTestSpec(t, dir)
	var stdout, stderr bytes.Buffer
	err := execSpecs(context.Background(), []string{"-chaos", "seed=x", specPath}, &stdout, &stderr)
	if err == nil || !strings.Contains(err.Error(), "chaos") {
		t.Fatalf("execSpecs = %v, want chaos parse error", err)
	}
}
