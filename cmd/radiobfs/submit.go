package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/serve"
)

// runSubmit implements `radiobfs submit`: post spec files to a running
// `radiobfs serve` daemon, follow each job's SSE progress stream on stderr,
// and download the finished artifacts into the same <out>/<spec name>/
// layout `radiobfs run` writes — byte-identical, whether the server
// executed the job or answered it from its result cache.
func runSubmit(args []string) error {
	fs := flag.NewFlagSet("submit", flag.ExitOnError)
	server := fs.String("server", "http://127.0.0.1:8370", "base URL of the radiobfs serve daemon")
	outDir := fs.String("out", "results", "artifact directory; each spec downloads to <out>/<spec name>/")
	seed := fs.Uint64("seed", 0, "root seed override (0 = the spec file's own seed policy)")
	quick := fs.Bool("quick", false, "request the spec's reduced-size quick overlay")
	follow := fs.Bool("follow", true, "stream SSE progress to stderr until the job settles")
	jsonOut := fs.Bool("json", false, "print each job's final status as JSON on stdout")
	client := fs.String("client", "", "client identity sent as X-Client-ID (default: the connection's host)")
	fs.Usage = func() {
		fmt.Fprintln(fs.Output(), "usage: radiobfs submit [flags] <spec.json>...")
		fmt.Fprintln(fs.Output(), "Submits specs to a radiobfs serve daemon and fetches their artifacts.")
		fmt.Fprintln(fs.Output(), "Flags:")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	paths := fs.Args()
	if len(paths) == 0 {
		fs.Usage()
		return fmt.Errorf("no spec files given")
	}
	base := strings.TrimRight(*server, "/")
	for _, path := range paths {
		if err := submitOne(base, path, *outDir, *seed, *quick, *follow, *jsonOut, *client); err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
	}
	return nil
}

// submitOne drives one spec through the full client lifecycle: submit,
// follow, fetch, report.
func submitOne(base, path, outDir string, seed uint64, quick, follow, jsonOut bool, client string) error {
	doc, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	q := url.Values{}
	if seed != 0 {
		q.Set("seed", fmt.Sprint(seed))
	}
	if quick {
		q.Set("quick", "true")
	}
	submitURL := base + "/v1/jobs"
	if len(q) > 0 {
		submitURL += "?" + q.Encode()
	}
	req, err := http.NewRequest("POST", submitURL, bytes.NewReader(doc))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	if client != "" {
		req.Header.Set("X-Client-ID", client)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return err
	}
	if resp.StatusCode == http.StatusTooManyRequests {
		return fmt.Errorf("server overloaded (retry after %ss): %s",
			resp.Header.Get("Retry-After"), strings.TrimSpace(string(body)))
	}
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
		return fmt.Errorf("submit rejected (%s): %s", resp.Status, strings.TrimSpace(string(body)))
	}
	var st serve.JobStatus
	if err := json.Unmarshal(body, &st); err != nil {
		return fmt.Errorf("decoding submit response: %w", err)
	}
	switch {
	case st.CacheHit:
		fmt.Fprintf(os.Stderr, "submit %s: job %s cache hit (key %s)\n", path, st.ID, st.Key)
	case st.Coalesced:
		fmt.Fprintf(os.Stderr, "submit %s: job %s attached to in-flight duplicate\n", path, st.ID)
	default:
		fmt.Fprintf(os.Stderr, "submit %s: job %s queued, %d trials\n", path, st.ID, st.Trials)
	}

	if follow && !st.State.Terminal() {
		if err := followEvents(base, st.Events, os.Stderr); err != nil {
			return err
		}
	} else if !st.State.Terminal() {
		if err := waitDone(base, st.ID); err != nil {
			return err
		}
	}

	// The SSE stream is narration; the authoritative outcome is the status.
	final, err := fetchStatus(base, st.ID)
	if err != nil {
		return err
	}
	if final.State != serve.StateDone {
		if final.Error != "" {
			return fmt.Errorf("job %s %s: %s", final.ID, final.State, final.Error)
		}
		return fmt.Errorf("job %s %s", final.ID, final.State)
	}
	dir := filepath.Join(outDir, final.Spec)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, artifact := range final.Artifacts {
		if err := fetchArtifact(base, artifact, dir); err != nil {
			return err
		}
	}
	fmt.Fprintf(os.Stderr, "submit %s: %d trials, %d errors, cacheHit=%t → %s\n",
		path, final.Trials, final.Errors, final.CacheHit, dir)
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(final); err != nil {
			return err
		}
	}
	return nil
}

// followEvents streams a job's SSE events to w until the stream ends (the
// server closes it after the complete event). The parser handles exactly
// the frames the server emits: id/event/data lines and comment heartbeats.
func followEvents(base, eventsPath string, w io.Writer) error {
	resp, err := http.Get(base + eventsPath)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("event stream: %s", resp.Status)
	}
	sc := bufio.NewScanner(resp.Body)
	var e serve.Event
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "data: "):
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &e); err != nil {
				continue
			}
		case line == "":
			if e.Type == "" {
				continue
			}
			switch e.Type {
			case "phase":
				fmt.Fprintf(w, "  phase %s %s\n", e.Phase, e.State)
			case "rounds":
				fmt.Fprintf(w, "  rounds %d (%s)\n", e.Rounds, e.Phase)
			case "trial":
				fmt.Fprintf(w, "  trial %s done (%d/%d)\n", e.Trial, e.Done, e.Total)
			case "complete":
				fmt.Fprintf(w, "  complete: %s\n", e.State)
			default:
				fmt.Fprintf(w, "  %s\n", e.Type)
			}
			e = serve.Event{}
		}
	}
	return sc.Err()
}

// waitDone polls a job until it settles, for -follow=false submissions.
func waitDone(base, id string) error {
	for {
		st, err := fetchStatus(base, id)
		if err != nil {
			return err
		}
		if st.State.Terminal() {
			return nil
		}
		time.Sleep(100 * time.Millisecond)
	}
}

func fetchStatus(base, id string) (serve.JobStatus, error) {
	var st serve.JobStatus
	resp, err := http.Get(base + "/v1/jobs/" + id)
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return st, fmt.Errorf("job status: %s", resp.Status)
	}
	return st, json.NewDecoder(resp.Body).Decode(&st)
}

// fetchArtifact downloads one artifact path into dir under its base name.
func fetchArtifact(base, artifactPath, dir string) error {
	resp, err := http.Get(base + artifactPath)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("fetch %s: %s", artifactPath, resp.Status)
	}
	name := artifactPath[strings.LastIndex(artifactPath, "/")+1:]
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return err
	}
	if _, err := io.Copy(f, resp.Body); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
