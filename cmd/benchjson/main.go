// Command benchjson runs the repository benchmark suite and renders it as
// machine-readable JSON — ns/op, B/op, allocs/op and the paper-metric
// columns per benchmark — so performance is tracked in version control
// (BENCH_baseline.json) instead of in scrollback.
//
// Usage:
//
//	benchjson [-bench .] [-benchtime 5x] [-out FILE]   record a run
//	benchjson -input FILE [-out FILE]                  parse an existing
//	                                                   `go test -bench` log
//	benchjson -before FILE ...                         embed FILE (a prior
//	                                                   benchjson output) as
//	                                                   the "before" section
//	                                                   and compute speedups
//	benchjson -check FILE [-benchtime 1x]              CI smoke mode: rerun
//	                                                   the suite and verify
//	                                                   every baseline
//	                                                   benchmark still
//	                                                   exists and that
//	                                                   zero-allocation
//	                                                   benchmarks stayed at
//	                                                   zero
//	benchjson -diff OLD NEW                            print per-benchmark
//	                                                   ns/op and allocs/op
//	                                                   deltas between two
//	                                                   recorded reports
//
// Check mode deliberately compares only benchmark presence and the
// allocs/op of benchmarks whose baseline is exactly zero: wall-clock
// numbers are too machine-dependent for CI, but a steady-state allocation
// regression is deterministic and is precisely the property the
// zero-allocation hot path work established.
//
// Diff mode renders the OLD → NEW movement of every benchmark the two
// reports share, plus the benchmarks only one of them has, so a tracked
// baseline transition (BENCH_baseline.json → BENCH_pr5.json) is reviewable
// in CI output instead of by eyeballing two JSON files.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"text/tabwriter"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	Name     string             `json:"name"`
	Iters    int64              `json:"iters"`
	NsPerOp  float64            `json:"ns_op"`
	BPerOp   float64            `json:"b_op"`
	AllocsOp float64            `json:"allocs_op"`
	Metrics  map[string]float64 `json:"metrics,omitempty"`
}

// Report is the JSON document benchjson reads and writes.
type Report struct {
	Tool       string             `json:"tool"`
	Go         string             `json:"go"`
	Benchtime  string             `json:"benchtime,omitempty"`
	Note       string             `json:"note,omitempty"`
	Benchmarks []Benchmark        `json:"benchmarks"`
	Before     *Report            `json:"before,omitempty"`
	Speedups   map[string]float64 `json:"speedups,omitempty"`
}

func main() {
	bench := flag.String("bench", ".", "benchmark selection regexp passed to go test")
	benchtime := flag.String("benchtime", "5x", "benchtime passed to go test")
	out := flag.String("out", "", "output file (default stdout)")
	input := flag.String("input", "", "parse this go-test bench log instead of running the suite")
	before := flag.String("before", "", "embed this benchjson JSON as the before section and compute speedups")
	check := flag.String("check", "", "smoke-compare a fresh run against this baseline JSON and exit non-zero on regression")
	diff := flag.Bool("diff", false, "diff two recorded reports (positional args: OLD NEW) instead of running the suite")
	note := flag.String("note", "", "free-form note stored in the report")
	flag.Parse()

	if *diff {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "benchjson: -diff needs exactly two report files: OLD NEW")
			os.Exit(2)
		}
		if err := runDiff(os.Stdout, flag.Arg(0), flag.Arg(1)); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *check != "" {
		if err := runCheck(*check, *bench, *benchtime); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("benchjson: baseline check passed")
		return
	}

	var raw []byte
	var err error
	if *input != "" {
		raw, err = os.ReadFile(*input)
	} else {
		raw, err = runSuite(*bench, *benchtime)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	rep := &Report{
		Tool:       "cmd/benchjson",
		Go:         runtime.Version(),
		Benchtime:  *benchtime,
		Note:       *note,
		Benchmarks: parseBench(raw),
	}
	if len(rep.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines found")
		os.Exit(1)
	}
	if *before != "" {
		b, err := readReport(*before)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		// When the given file is itself a combined baseline, keep comparing
		// against its original before section (the oldest recorded run), so
		// re-recording the baseline never erases the historical reference.
		if b.Before != nil {
			b = b.Before
		}
		b.Before = nil // never nest more than one level
		rep.Before = b
		rep.Speedups = speedups(b.Benchmarks, rep.Benchmarks)
	}
	enc, _ := json.MarshalIndent(rep, "", "  ")
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

// runSuite executes the repository benchmarks and returns the raw log.
func runSuite(bench, benchtime string) ([]byte, error) {
	cmd := exec.Command("go", "test", ".", "-run", "^$", "-bench", bench,
		"-benchtime", benchtime, "-benchmem")
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go test -bench failed: %w\n%s", err, out)
	}
	return out, nil
}

// parseBench extracts benchmark lines from a `go test -bench` log.
func parseBench(raw []byte) []Benchmark {
	var res []Benchmark
	sc := bufio.NewScanner(bytes.NewReader(raw))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		b := Benchmark{Name: trimProcs(fields[0]), Iters: iters}
		// The remainder alternates value/unit pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			val, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				b.NsPerOp = val
			case "B/op":
				b.BPerOp = val
			case "allocs/op":
				b.AllocsOp = val
			default:
				if b.Metrics == nil {
					b.Metrics = map[string]float64{}
				}
				b.Metrics[unit] = val
			}
		}
		res = append(res, b)
	}
	sort.Slice(res, func(i, j int) bool { return res[i].Name < res[j].Name })
	return res
}

// trimProcs drops the -N GOMAXPROCS suffix go test appends to names.
func trimProcs(name string) string {
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			return name[:i]
		}
	}
	return name
}

func readReport(path string) (*Report, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(raw, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}

// speedups maps benchmark name to before-ns / after-ns for benchmarks
// present in both runs.
func speedups(before, after []Benchmark) map[string]float64 {
	prev := make(map[string]float64, len(before))
	for _, b := range before {
		prev[b.Name] = b.NsPerOp
	}
	out := map[string]float64{}
	for _, a := range after {
		if p, ok := prev[a.Name]; ok && a.NsPerOp > 0 {
			out[a.Name] = p / a.NsPerOp
		}
	}
	return out
}

// runDiff prints the per-benchmark movement between two recorded reports:
// ns/op with relative delta, allocs/op with absolute delta, and the
// benchmarks present on only one side. Output is a fixed-width table sorted
// by name, so CI logs diff cleanly across runs.
func runDiff(w io.Writer, oldPath, newPath string) error {
	oldRep, err := readReport(oldPath)
	if err != nil {
		return err
	}
	newRep, err := readReport(newPath)
	if err != nil {
		return err
	}
	prev := make(map[string]Benchmark, len(oldRep.Benchmarks))
	for _, b := range oldRep.Benchmarks {
		prev[b.Name] = b
	}
	next := make(map[string]Benchmark, len(newRep.Benchmarks))
	names := make([]string, 0, len(prev))
	for _, b := range newRep.Benchmarks {
		next[b.Name] = b
	}
	for name := range prev {
		names = append(names, name)
	}
	for name := range next {
		if _, ok := prev[name]; !ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)

	tw := tabwriter.NewWriter(w, 2, 0, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintf(tw, "benchmark\tns/op %s\tns/op %s\tΔns/op\tallocs %s\tallocs %s\tΔallocs\t\n",
		filepath.Base(oldPath), filepath.Base(newPath), filepath.Base(oldPath), filepath.Base(newPath))
	shared, added, removed := 0, 0, 0
	for _, name := range names {
		o, hasOld := prev[name]
		n, hasNew := next[name]
		switch {
		case !hasNew:
			removed++
			fmt.Fprintf(tw, "%s\t%.0f\t-\tremoved\t%.0f\t-\t\t\n", name, o.NsPerOp, o.AllocsOp)
		case !hasOld:
			added++
			fmt.Fprintf(tw, "%s\t-\t%.0f\tnew\t-\t%.0f\t\t\n", name, n.NsPerOp, n.AllocsOp)
		default:
			shared++
			rel := "n/a"
			if o.NsPerOp > 0 {
				rel = fmt.Sprintf("%+.1f%%", 100*(n.NsPerOp-o.NsPerOp)/o.NsPerOp)
			}
			fmt.Fprintf(tw, "%s\t%.0f\t%.0f\t%s\t%.0f\t%.0f\t%+g\t\n",
				name, o.NsPerOp, n.NsPerOp, rel, o.AllocsOp, n.AllocsOp, n.AllocsOp-o.AllocsOp)
		}
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	// The suite-shape summary: a reviewer scanning CI output sees coverage
	// drift (benchmarks added or removed between the reports) without
	// reading every table row.
	fmt.Fprintf(w, "%d benchmarks compared, %d added, %d removed\n", shared, added, removed)
	return nil
}

// runCheck reruns the suite and smoke-compares it against the baseline.
func runCheck(path, bench, benchtime string) error {
	base, err := readReport(path)
	if err != nil {
		return err
	}
	raw, err := runSuite(bench, benchtime)
	if err != nil {
		return err
	}
	current := map[string]Benchmark{}
	for _, b := range parseBench(raw) {
		current[b.Name] = b
	}
	var problems []string
	for _, b := range base.Benchmarks {
		cur, ok := current[b.Name]
		if !ok {
			problems = append(problems, fmt.Sprintf("benchmark %s missing from current suite", b.Name))
			continue
		}
		if b.AllocsOp == 0 && cur.AllocsOp != 0 {
			problems = append(problems, fmt.Sprintf("benchmark %s regressed to %v allocs/op (baseline 0)", b.Name, cur.AllocsOp))
		}
	}
	if len(problems) > 0 {
		return fmt.Errorf("baseline regressions:\n  %s", strings.Join(problems, "\n  "))
	}
	return nil
}
