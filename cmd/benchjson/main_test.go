package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseBench(t *testing.T) {
	log := `goos: linux
BenchmarkStep/dense-8     	     100	   1234.5 ns/op	      64 B/op	       2 allocs/op	   17.00 rounds
BenchmarkAlloc-8          	  100000	     10.0 ns/op	       0 B/op	       0 allocs/op
not a benchmark line
BenchmarkNoSuffix 	      50	    99.5 ns/op
`
	bs := parseBench([]byte(log))
	if len(bs) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3: %+v", len(bs), bs)
	}
	// Sorted by name, GOMAXPROCS suffix trimmed.
	if bs[0].Name != "BenchmarkAlloc" || bs[1].Name != "BenchmarkNoSuffix" || bs[2].Name != "BenchmarkStep/dense" {
		t.Fatalf("names = %q, %q, %q", bs[0].Name, bs[1].Name, bs[2].Name)
	}
	dense := bs[2]
	if dense.Iters != 100 || dense.NsPerOp != 1234.5 || dense.BPerOp != 64 || dense.AllocsOp != 2 {
		t.Errorf("dense = %+v", dense)
	}
	if dense.Metrics["rounds"] != 17 {
		t.Errorf("custom metric rounds = %v, want 17", dense.Metrics["rounds"])
	}
}

func TestSpeedups(t *testing.T) {
	before := []Benchmark{{Name: "A", NsPerOp: 100}, {Name: "Gone", NsPerOp: 5}}
	after := []Benchmark{{Name: "A", NsPerOp: 50}, {Name: "New", NsPerOp: 7}}
	s := speedups(before, after)
	if len(s) != 1 || s["A"] != 2 {
		t.Fatalf("speedups = %v, want map[A:2]", s)
	}
}

func writeReport(t *testing.T, dir, name string, benchmarks []Benchmark) string {
	t.Helper()
	path := filepath.Join(dir, name)
	blob, err := json.Marshal(&Report{Tool: "cmd/benchjson", Benchmarks: benchmarks})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestRunDiffReportsAddedAndRemoved: benchmarks present in only one report
// must show up as explicit new/removed rows and be counted in the summary
// footer, never silently dropped from the comparison.
func TestRunDiffReportsAddedAndRemoved(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeReport(t, dir, "old.json", []Benchmark{
		{Name: "BenchmarkShared", NsPerOp: 100, AllocsOp: 2},
		{Name: "BenchmarkRemoved", NsPerOp: 70, AllocsOp: 1},
	})
	newPath := writeReport(t, dir, "new.json", []Benchmark{
		{Name: "BenchmarkShared", NsPerOp: 50, AllocsOp: 2},
		{Name: "BenchmarkAdded", NsPerOp: 30, AllocsOp: 0},
	})
	var buf bytes.Buffer
	if err := runDiff(&buf, oldPath, newPath); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"BenchmarkRemoved", "removed",
		"BenchmarkAdded", "new",
		"-50.0%", // the shared benchmark halved
		"1 benchmarks compared, 1 added, 1 removed",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("diff output missing %q:\n%s", want, out)
		}
	}
	// Row shape: the removed benchmark's NEW columns are dashes, and vice
	// versa — the table never invents numbers for an absent side.
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "BenchmarkRemoved") && strings.Count(line, "-") < 2 {
			t.Errorf("removed row lacks dashes for the new side: %q", line)
		}
		if strings.Contains(line, "BenchmarkAdded") && strings.Count(line, "-") < 2 {
			t.Errorf("added row lacks dashes for the old side: %q", line)
		}
	}
}

func TestRunDiffIdenticalReports(t *testing.T) {
	dir := t.TempDir()
	bs := []Benchmark{{Name: "BenchmarkX", NsPerOp: 10, AllocsOp: 0}}
	oldPath := writeReport(t, dir, "old.json", bs)
	newPath := writeReport(t, dir, "new.json", bs)
	var buf bytes.Buffer
	if err := runDiff(&buf, oldPath, newPath); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "1 benchmarks compared, 0 added, 0 removed") {
		t.Errorf("identical reports summary wrong:\n%s", buf.String())
	}
}
