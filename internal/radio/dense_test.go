package radio

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/rng"
)

// TestDenseStepMatchesSequential is the central byte-identity property test
// for the packed-bitmap kernel: over random graphs × random slot patterns,
// a dense engine — sequential and at every shard count — must produce
// exactly the sequential CSR engine's deliveries, per-device meters, round
// clock and violation counter, including CD engines, tight message budgets,
// and k > n. Together with TestStepParallelMatchesSequential (CSR sharded ≡
// CSR sequential) this pins all three kernels to one another.
func TestDenseStepMatchesSequential(t *testing.T) {
	for _, n := range []int{1, 5, 33, 200} {
		for _, shards := range []int{1, 2, 3, 7, 16, 200 + 5} {
			for _, cd := range []bool{false, true} {
				seed := uint64(n*4000 + shards*2 + 1)
				g := randomShardGraph(n, rng.New(seed))
				opts := []Option{WithMaxMsgBits(40)} // tight: some messages violate
				if cd {
					opts = append(opts, WithCollisionDetection())
				}
				seq := NewEngine(g, append(opts, WithDenseMin(-1))...) // CSR, sequential
				dense := NewEngine(g, append(opts, WithDenseMin(1), WithShards(shards))...)
				r := rng.New(rng.Derive(seed, 0xd5e))
				for round := 0; round < 30; round++ {
					tx, listeners := stepPattern(n, r)
					outSeq := make([]RX, len(listeners))
					outDense := make([]RX, len(listeners))
					seq.Step(tx, listeners, outSeq)
					dense.StepParallel(tx, listeners, outDense)
					for i := range outSeq {
						if outSeq[i] != outDense[i] {
							t.Fatalf("n=%d shards=%d cd=%v round %d: listener %d got %+v, sequential CSR %+v",
								n, shards, cd, round, listeners[i], outDense[i], outSeq[i])
						}
					}
				}
				if seq.Round() != dense.Round() || seq.MsgViolations() != dense.MsgViolations() {
					t.Fatalf("n=%d shards=%d cd=%v: clock/violations (%d, %d) vs sequential CSR (%d, %d)",
						n, shards, cd, dense.Round(), dense.MsgViolations(), seq.Round(), seq.MsgViolations())
				}
				for v := int32(0); int(v) < n; v++ {
					if seq.Energy(v) != dense.Energy(v) || seq.Listens(v) != dense.Listens(v) || seq.Transmits(v) != dense.Transmits(v) {
						t.Fatalf("n=%d shards=%d cd=%v: device %d meters (%d,%d,%d) vs sequential CSR (%d,%d,%d)",
							n, shards, cd, v,
							dense.Energy(v), dense.Listens(v), dense.Transmits(v),
							seq.Energy(v), seq.Listens(v), seq.Transmits(v))
					}
				}
			}
		}
	}
}

// TestKernelDispatchByteIdentity forces each of the three execution paths —
// sequential CSR, sharded CSR, dense bitmap (sequential and sharded) — on
// the same (graph, tx, listeners) inputs via the exported knobs, and
// requires byte-identical RX and meter state across all of them. This is
// the dispatch-level contract Step's self-selection relies on.
func TestKernelDispatchByteIdentity(t *testing.T) {
	defer func(old int) { shardStepMinWork = old }(shardStepMinWork)
	shardStepMinWork = 1

	n := 160
	g := randomShardGraph(n, rng.New(11))
	type path struct {
		name string
		e    *Engine
	}
	paths := []path{
		{"seq-csr", NewEngine(g, WithDenseMin(-1))},
		{"sharded-csr", NewEngine(g, WithDenseMin(-1), WithShards(4))},
		{"seq-dense", NewEngine(g, WithDenseMin(1))},
		{"sharded-dense", NewEngine(g, WithDenseMin(1), WithShards(4))},
	}
	ref := paths[0].e
	r := rng.New(77)
	for round := 0; round < 40; round++ {
		tx, listeners := stepPattern(n, r)
		outs := make([][]RX, len(paths))
		for pi, p := range paths {
			outs[pi] = make([]RX, len(listeners))
			p.e.Step(tx, listeners, outs[pi])
		}
		for pi := 1; pi < len(paths); pi++ {
			for i := range outs[0] {
				if outs[0][i] != outs[pi][i] {
					t.Fatalf("round %d path %s: listener %d got %+v, seq-csr %+v",
						round, paths[pi].name, listeners[i], outs[pi][i], outs[0][i])
				}
			}
		}
	}
	for _, p := range paths[1:] {
		if p.e.Round() != ref.Round() || p.e.MsgViolations() != ref.MsgViolations() {
			t.Fatalf("path %s: clock/violations (%d, %d) vs seq-csr (%d, %d)",
				p.name, p.e.Round(), p.e.MsgViolations(), ref.Round(), ref.MsgViolations())
		}
		for v := int32(0); int(v) < n; v++ {
			if p.e.Energy(v) != ref.Energy(v) || p.e.Listens(v) != ref.Listens(v) || p.e.Transmits(v) != ref.Transmits(v) {
				t.Fatalf("path %s: device %d meters diverge", p.name, v)
			}
		}
	}
}

// recoverFrom runs f and returns the value it panicked with (nil if none).
func recoverFrom(f func()) (v any) {
	defer func() { v = recover() }()
	f()
	return nil
}

// TestDensePanicContracts pins the two programming-error panics — duplicate
// transmitter, transmit+listen — to the exact panic value of the sequential
// CSR kernel, from both the sequential and the sharded dense path.
func TestDensePanicContracts(t *testing.T) {
	g := graph.Path(64)
	dupTX := func(e *Engine) func() {
		return func() { e.StepParallel([]TX{{ID: 5}, {ID: 5}}, nil, nil) }
	}
	txAndListen := func(e *Engine) func() {
		return func() { e.StepParallel([]TX{{ID: 5}}, []int32{5}, make([]RX, 1)) }
	}
	wantDup := recoverFrom(dupTX(NewEngine(g, WithDenseMin(-1))))
	wantBoth := recoverFrom(txAndListen(NewEngine(g, WithDenseMin(-1))))
	if wantDup == nil || wantBoth == nil {
		t.Fatal("CSR kernel did not panic on programming errors")
	}
	for _, shards := range []int{1, 4} {
		if got := recoverFrom(dupTX(NewEngine(g, WithDenseMin(1), WithShards(shards)))); got != wantDup {
			t.Fatalf("shards=%d: duplicate-transmitter panic %v, want %v", shards, got, wantDup)
		}
		if got := recoverFrom(txAndListen(NewEngine(g, WithDenseMin(1), WithShards(shards)))); got != wantBoth {
			t.Fatalf("shards=%d: transmit+listen panic %v, want %v", shards, got, wantBoth)
		}
	}
}

// TestDenseAutoSelection pins Step's default dispatch rule: transmitter
// coverage (Σ deg) at or above n/denseStepMinDensityDiv engages the bitmap
// kernel (observable through its lazily allocated scratch), anything below
// stays on CSR no matter how many listeners, and a negative threshold
// disables the kernel at any density.
func TestDenseAutoSelection(t *testing.T) {
	n := 640 // cycle: every vertex has degree 2; default threshold n/128 = 5
	g := graph.Cycle(n)
	denseTX := []TX{{ID: 0}, {ID: 3}, {ID: 6}} // coverage 6 ≥ 5
	listeners := make([]int32, n/2)
	for i := range listeners {
		listeners[i] = int32(n/2 + i)
	}
	out := make([]RX, len(listeners))

	e := NewEngine(g)
	e.Step([]TX{{ID: 0}}, listeners, out) // coverage 2 < 5, despite n/2 listeners
	if e.txbit != nil {
		t.Fatal("dense kernel engaged below the coverage threshold")
	}
	e.Step(denseTX, listeners, out)
	if e.txbit == nil {
		t.Fatal("dense kernel not engaged at high coverage density")
	}

	off := NewEngine(g, WithDenseMin(-1))
	off.Step(denseTX, listeners, out)
	if off.txbit != nil {
		t.Fatal("disabled dense kernel still engaged")
	}
	off.SetDenseMin(1)
	off.Step([]TX{{ID: 0}}, []int32{2}, make([]RX, 1)) // coverage 2 ≥ 1
	if off.txbit == nil {
		t.Fatal("SetDenseMin(1) did not force the dense kernel")
	}
}

// TestDenseResetMatchesFresh reuses one dense engine across graphs of
// different sizes via Reset — including a shrink, which exercises the
// bitmap-scratch clearing — and requires the trajectory of a fresh engine.
func TestDenseResetMatchesFresh(t *testing.T) {
	graphs := []*graph.Graph{graph.Cycle(100), graph.Grid(16, 16), graph.Star(40)}
	opts := []Option{WithDenseMin(1), WithShards(3)}
	reused := NewEngine(graphs[0], opts...)
	for gi, g := range graphs {
		seed := uint64(500 + gi)
		fresh := NewEngine(g, opts...)
		reused.Reset(g)
		r1, r2 := rng.New(seed), rng.New(seed)
		for round := 0; round < 20; round++ {
			txF, lF := stepPattern(g.N(), r1)
			txR, lR := stepPattern(g.N(), r2)
			outF := make([]RX, len(lF))
			outR := make([]RX, len(lR))
			fresh.StepParallel(txF, lF, outF)
			reused.StepParallel(txR, lR, outR)
			for i := range outF {
				if outF[i] != outR[i] {
					t.Fatalf("graph %d round %d: %+v vs fresh %+v", gi, round, outR[i], outF[i])
				}
			}
		}
		if fresh.MaxEnergy() != reused.MaxEnergy() || fresh.TotalEnergy() != reused.TotalEnergy() {
			t.Fatalf("graph %d: aggregate meters diverge after Reset", gi)
		}
	}
}
