// Package radio implements the RN[b] radio network model of the paper
// (§1.1): synchronized discrete timesteps on an unknown undirected graph
// where, each step, a device idles (free), listens (1 energy) or transmits
// (1 energy), and a listener receives a message iff exactly one of its
// neighbors transmits. There is no collision detection: a listener cannot
// distinguish silence from a collision.
//
// The package provides two front-ends over one physics core:
//
//   - Engine: a vectorized step API used by the protocol layers. It is
//     activity-proportional — the cost of a step is O(Σ deg(transmitters) +
//     #listeners), and rounds in which nobody is awake are skipped in O(1).
//     This mirrors the paper's central concern: sleeping radios are free.
//     Engines built WithShards(k) additionally execute sufficiently large
//     steps as k parallel shards (deterministically: results are
//     byte-identical to sequential execution at every shard count — see
//     StepParallel), which is how million-vertex instances use every core
//     inside a single trial.
//
//   - Sim/Device: a goroutine-per-device blocking API (Listen, Transmit,
//     Idle) on which free-form protocols can be written as ordinary
//     sequential Go code.
//
// Energy is metered per device exactly as the paper defines it: the number of
// timesteps spent listening or transmitting.
package radio

import (
	"fmt"
	"math/bits"
	"sync"

	"repro/internal/graph"
)

// Msg is a radio message. The paper's algorithms need only a handful of
// small integer fields, so messages are fixed-shape rather than raw bytes;
// Bits reports the size charged against the RN[b] message budget.
type Msg struct {
	Kind uint8  // protocol-level tag
	A    uint64 // primary field (IDs, labels, distances)
	B    uint64 // secondary field
	C    uint64 // tertiary field (seeds)
	// Hdr is the transport header used by the cluster-graph simulation
	// (§3): each virtual level pushes its O(log n)-bit cluster ID so that
	// cast receivers can filter out messages from foreign clusters. Levels
	// stack by shifting, so the whole stack costs O(depth · log n) bits.
	Hdr uint64
}

// Bits returns the encoded size of m in bits: an 8-bit kind plus a varint-
// style charge for each field. This is the quantity checked against the
// RN[O(log n)] message-size budget.
func (m Msg) Bits() int {
	return 8 + uintBits(m.A) + uintBits(m.B) + uintBits(m.C) + uintBits(m.Hdr)
}

func uintBits(x uint64) int { return bits.Len64(x) }

// TX is a transmission request: device ID plus message.
type TX struct {
	ID  int32
	Msg Msg
}

// RX is a delivery result for a listener.
type RX struct {
	Msg Msg
	OK  bool // true iff exactly one neighbor transmitted
	// Noise is set only on engines with receiver-side collision detection
	// (WithCollisionDetection): it distinguishes two-or-more transmitters
	// (noise) from zero (silence). Without CD both cases read as
	// OK == false, Noise == false — the paper's default model (§1.1,
	// footnote 2). The §5 lower bounds hold even with CD.
	Noise bool
}

// Engine simulates the physics of one radio network. It is not safe for
// concurrent use; the Sim front-end serializes access.
type Engine struct {
	g     *graph.Graph
	round int64

	energy    []int64
	listens   []int64
	transmits []int64

	maxMsgBits    int
	msgBitsSet    bool // maxMsgBits was fixed by option; Reset keeps it
	msgViolations int64
	cd            bool

	// scratch for Step, sized n, reset between calls via touched list.
	cnt     []int32
	from    []int32
	touched []int32

	// Sharded execution state (see Step and StepParallel). shards is the
	// configured shard count; bounds caches the vertex ownership boundaries
	// for the current graph (recomputed lazily after Reset or SetShards);
	// shardScratch holds one touched list and violation counter per shard.
	shards       int
	bounds       []int32
	shardScratch []shardScratch
}

// shardScratch is the per-shard private state of one sharded step. Entries
// are written only by their owning shard goroutine during a step and read by
// the coordinator after the join, so no field needs atomics.
type shardScratch struct {
	touched    []int32
	violations int64
	panicked   any
}

// Option configures an Engine.
type Option func(*Engine)

// WithMaxMsgBits sets the RN[b] message budget in bits. Oversized messages
// are still delivered (so simulations proceed) but counted; tests assert the
// violation counter stays zero. Zero disables the check (RN[∞]).
func WithMaxMsgBits(b int) Option {
	return func(e *Engine) { e.maxMsgBits, e.msgBitsSet = b, true }
}

// DefaultMsgBits returns the default RN[O(log n)] budget used by protocol
// code: 8·⌈log₂(n+1)⌉ + 80 bits, enough for a kind tag, three O(log n)-bit
// fields and one 64-bit shared-randomness seed.
func DefaultMsgBits(n int) int {
	lg := graph.Log2Ceil(n + 1)
	if lg < 1 {
		lg = 1
	}
	return 8*lg + 80
}

// WithCollisionDetection enables receiver-side CD: listeners can
// distinguish noise (>= 2 transmitting neighbors) from silence. The paper's
// algorithms do not need it (Local-Broadcast recovers the same power within
// polylog factors, §1.1), but the §5 lower bounds are stated to survive it,
// which the lowerbound package exercises.
func WithCollisionDetection() Option {
	return func(e *Engine) { e.cd = true }
}

// WithShards configures the engine to execute sufficiently large steps as k
// parallel shards (see StepParallel). k <= 1 keeps every step sequential.
// Sharded and sequential execution are byte-identical — outputs, meters, the
// round clock and the message-violation counter never depend on the shard
// count — so the option is purely a performance knob.
func WithShards(k int) Option {
	return func(e *Engine) { e.shards = k }
}

// NewEngine builds an engine over graph g.
func NewEngine(g *graph.Graph, opts ...Option) *Engine {
	e := &Engine{}
	for _, o := range opts {
		o(e)
	}
	e.Reset(g)
	return e
}

// Reset re-targets the engine at g, zeroing all meters, the clock and the
// step scratch. It reuses the engine's allocations whenever g is no larger
// than any graph the engine has seen, so one engine can serve many trials of
// same-size instances without allocating; the trial harness relies on this.
// An engine after Reset(g) is indistinguishable from NewEngine(g) with the
// same options.
func (e *Engine) Reset(g *graph.Graph) {
	n := g.N()
	e.g = g
	if cap(e.cnt) < n {
		e.energy = make([]int64, n)
		e.listens = make([]int64, n)
		e.transmits = make([]int64, n)
		e.cnt = make([]int32, n)
		e.from = make([]int32, n)
	} else {
		e.energy = e.energy[:n]
		e.listens = e.listens[:n]
		e.transmits = e.transmits[:n]
		e.cnt = e.cnt[:n]
		e.from = e.from[:n]
		for i := 0; i < n; i++ {
			e.energy[i], e.listens[i], e.transmits[i] = 0, 0, 0
			e.cnt[i], e.from[i] = 0, 0
		}
	}
	e.touched = e.touched[:0]
	e.bounds = e.bounds[:0] // shard ownership is per-graph; recompute lazily
	e.round = 0
	e.msgViolations = 0
	if !e.msgBitsSet {
		e.maxMsgBits = DefaultMsgBits(n)
	}
}

// SetShards reconfigures the shard count of an existing engine (the pooled
// trial contexts use it when switching between trial-parallel and
// intra-trial-parallel scheduling). Like WithShards, it never changes
// results.
func (e *Engine) SetShards(k int) {
	if k == e.shards {
		return
	}
	e.shards = k
	e.bounds = e.bounds[:0]
}

// Shards returns the configured shard count (1 when sharding is off).
func (e *Engine) Shards() int {
	if e.shards < 1 {
		return 1
	}
	return e.shards
}

// Graph returns the underlying topology.
func (e *Engine) Graph() *graph.Graph { return e.g }

// N returns the number of devices.
func (e *Engine) N() int { return e.g.N() }

// Round returns the current global time.
func (e *Engine) Round() int64 { return e.round }

// SkipRounds advances the clock by k rounds in which every device idles.
func (e *Engine) SkipRounds(k int64) {
	if k < 0 {
		panic("radio: negative round skip")
	}
	e.round += k
}

// Energy returns the energy spent so far by device v.
func (e *Engine) Energy(v int32) int64 { return e.energy[v] }

// Listens returns the number of listen steps of device v.
func (e *Engine) Listens(v int32) int64 { return e.listens[v] }

// Transmits returns the number of transmit steps of device v.
func (e *Engine) Transmits(v int32) int64 { return e.transmits[v] }

// MaxEnergy returns the maximum per-device energy — the paper's energy cost
// of an algorithm.
func (e *Engine) MaxEnergy() int64 {
	var m int64
	for _, v := range e.energy {
		if v > m {
			m = v
		}
	}
	return m
}

// TotalEnergy returns the aggregate energy over all devices.
func (e *Engine) TotalEnergy() int64 {
	var s int64
	for _, v := range e.energy {
		s += v
	}
	return s
}

// EnergySnapshot copies the per-device energy vector.
func (e *Engine) EnergySnapshot() []int64 {
	out := make([]int64, len(e.energy))
	copy(out, e.energy)
	return out
}

// ResetMeters zeroes energy counters and the clock (topology unchanged).
func (e *Engine) ResetMeters() {
	for i := range e.energy {
		e.energy[i], e.listens[i], e.transmits[i] = 0, 0, 0
	}
	e.round = 0
	e.msgViolations = 0
}

// MsgViolations returns how many transmitted messages exceeded the RN[b]
// budget. Protocol tests assert this is zero.
func (e *Engine) MsgViolations() int64 { return e.msgViolations }

// shardStepMinWork is the activity threshold (Σ deg(transmitters) +
// #listeners) below which Step stays sequential even on a sharded engine:
// under it, the fixed cost of waking the shard goroutines exceeds the work
// being split. A var, not a const, so tests can force either path.
var shardStepMinWork = 1 << 16

// Step executes one physical round. tx lists the transmitting devices with
// their messages; listeners lists the listening devices. All other devices
// idle. Results are written to out (which must have len(listeners)):
// out[i] corresponds to listeners[i] and has OK set iff exactly one neighbor
// of that listener transmitted. A device must not both transmit and listen
// in the same round, and must not appear twice in tx; both are programming
// errors that panic. Listeners must be duplicate-free (caller contract).
//
// On an engine configured with WithShards(k > 1), steps whose activity
// reaches shardStepMinWork execute as k parallel shards; results are
// byte-identical either way (see StepParallel).
func (e *Engine) Step(tx []TX, listeners []int32, out []RX) {
	if len(out) != len(listeners) {
		panic(fmt.Sprintf("radio: out length %d != listeners length %d", len(out), len(listeners)))
	}
	// The sequential body lives here, not behind a call: one bare step is
	// ~50ns and the sub-threshold path must not pay a function call for the
	// sharding feature it is not using.
	if e.shards > 1 && e.stepWork(tx, listeners) >= shardStepMinWork {
		e.stepSharded(tx, listeners, out)
		return
	}
	// Mark transmissions into neighbor counters, recording every counter the
	// first time it is touched so teardown never re-walks a neighborhood.
	for i := range tx {
		t := &tx[i]
		if e.cnt[t.ID] == -1 {
			panic(fmt.Sprintf("radio: device %d transmits twice in round %d", t.ID, e.round))
		}
		if e.maxMsgBits > 0 && t.Msg.Bits() > e.maxMsgBits {
			e.msgViolations++
		}
		e.energy[t.ID]++
		e.transmits[t.ID]++
		for _, u := range e.g.Neighbors(t.ID) {
			if e.cnt[u] >= 0 {
				if e.cnt[u] == 0 {
					e.touched = append(e.touched, u)
				}
				e.cnt[u]++
				e.from[u] = int32(i)
			}
		}
		e.touched = append(e.touched, t.ID)
		e.cnt[t.ID] = -1 // transmitter marker; also catches transmit+listen
	}
	for i, v := range listeners {
		c := e.cnt[v]
		if c == -1 {
			panic(fmt.Sprintf("radio: device %d both transmits and listens in round %d", v, e.round))
		}
		e.energy[v]++
		e.listens[v]++
		switch {
		case c == 1:
			out[i] = RX{Msg: tx[e.from[v]].Msg, OK: true}
		case c >= 2 && e.cd:
			out[i] = RX{Noise: true} // collision detected
		default:
			out[i] = RX{} // silence, or collision without CD: no feedback
		}
	}
	// Reset scratch: exactly the counters recorded during the mark phase.
	for _, t := range e.touched {
		e.cnt[t] = 0
	}
	e.touched = e.touched[:0]
	e.round++
}

// StepParallel is Step with the activity threshold bypassed: it always runs
// the sharded path when the engine has more than one shard configured (and
// falls back to the sequential path otherwise). Outputs, energy/listen/
// transmit meters, the round clock and the message-violation counter are
// byte-identical to Step's at any shard count — pinned by the property tests
// in shard_test.go — so callers choose between them on performance grounds
// only.
func (e *Engine) StepParallel(tx []TX, listeners []int32, out []RX) {
	if len(out) != len(listeners) {
		panic(fmt.Sprintf("radio: out length %d != listeners length %d", len(out), len(listeners)))
	}
	if e.shards > 1 {
		e.stepSharded(tx, listeners, out)
		return
	}
	e.Step(tx, listeners, out) // shards <= 1: Step's dispatch stays sequential
}

// stepWork estimates the activity of one step — the quantity the model
// charges for: Σ deg(transmitters) + #listeners.
func (e *Engine) stepWork(tx []TX, listeners []int32) int {
	w := len(listeners)
	for i := range tx {
		w += e.g.Degree(tx[i].ID)
	}
	return w
}

// stepSharded executes one physical round as e.shards parallel shards, in
// three barrier-separated phases:
//
//   - Mark: vertex IDs are partitioned into contiguous ranges balanced by
//     CSR arc count (graph.ShardBounds). Shard s owns the IDs in
//     [bounds[s], bounds[s+1]) exclusively: it alone writes their cnt/from
//     counters and transmitter meters, so marking needs no atomics. Each
//     shard scans the tx slice in index order — exactly the sequential
//     order — and marks, per transmitter, only the sub-range of its sorted
//     adjacency list the shard owns (graph.NeighborsRange): per-shard mark
//     work is O(Σdeg/k + |tx|·(1 + log deg)).
//
//   - Listen: listeners are partitioned by position, |listeners|/k
//     contiguous slots per shard, so resolution is balanced and scan-free.
//     Listeners are duplicate-free (Step's caller contract), so position
//     ownership gives every listener's meters and out slot exactly one
//     writer; the phase only reads the counters the mark phase settled,
//     which is why the barrier sits between them.
//
//   - Teardown: each shard resets exactly the counters it recorded during
//     its mark phase, after every reader is done.
//
// Because ownership is exclusive within every phase and the mark scan order
// matches the sequential path, every counter, winner index, meter and
// delivery is byte-identical to stepSeq's.
//
// Programming-error panics (duplicate transmitter, transmit+listen) are
// recovered inside the shard, joined, and re-raised here — first shard wins
// — so they surface on the caller's goroutine just as in the sequential
// path. As with stepSeq, engine state after such a panic is unspecified.
func (e *Engine) stepSharded(tx []TX, listeners []int32, out []RX) {
	k := e.shards
	if len(e.bounds) != k+1 {
		e.bounds = e.g.ShardBounds(k, e.bounds)
	}
	if len(e.shardScratch) < k {
		e.shardScratch = append(e.shardScratch, make([]shardScratch, k-len(e.shardScratch))...)
	}
	e.parallelShards(k, func(s int) { e.shardMark(s, tx) })
	if !e.shardsPanicked(k) {
		e.parallelShards(k, func(s int) { e.shardListen(s, k, tx, listeners, out) })
	}
	e.parallelShards(k, func(s int) { e.shardTeardown(s) })
	var panicked any
	for s := 0; s < k; s++ {
		st := &e.shardScratch[s]
		e.msgViolations += st.violations
		st.violations = 0
		if st.panicked != nil && panicked == nil {
			panicked = st.panicked
		}
		st.panicked = nil
	}
	if panicked != nil {
		panic(panicked)
	}
	e.round++
}

// parallelShards runs phase(s) for every shard s in [0, k), shard 0 on the
// calling goroutine, and joins. A shard panic is captured into its scratch
// slot (first one per shard wins) rather than crashing the process.
func (e *Engine) parallelShards(k int, phase func(s int)) {
	run := func(s int) {
		defer func() {
			if r := recover(); r != nil && e.shardScratch[s].panicked == nil {
				e.shardScratch[s].panicked = r
			}
		}()
		phase(s)
	}
	var wg sync.WaitGroup
	wg.Add(k - 1)
	for s := 1; s < k; s++ {
		go func(s int) {
			defer wg.Done()
			run(s)
		}(s)
	}
	run(0)
	wg.Wait()
}

// shardsPanicked reports whether any shard has captured a panic — the
// signal to skip the listen phase, whose reads would be meaningless over a
// half-marked round.
func (e *Engine) shardsPanicked(k int) bool {
	for s := 0; s < k; s++ {
		if e.shardScratch[s].panicked != nil {
			return true
		}
	}
	return false
}

// shardMark is the mark phase of one shard: transmitter accounting for the
// IDs it owns and counter updates for the owned sub-range of every
// transmitter's adjacency.
func (e *Engine) shardMark(s int, tx []TX) {
	st := &e.shardScratch[s]
	lo, hi := e.bounds[s], e.bounds[s+1]
	touched := st.touched[:0]
	// The deferred store keeps the full list — the teardown phase walks it —
	// and survives a mid-mark panic, so teardown still resets what was
	// marked before the abort.
	defer func() { st.touched = touched }()
	for i := range tx {
		t := &tx[i]
		own := t.ID >= lo && t.ID < hi
		if own {
			if e.cnt[t.ID] == -1 {
				panic(fmt.Sprintf("radio: device %d transmits twice in round %d", t.ID, e.round))
			}
			if e.maxMsgBits > 0 && t.Msg.Bits() > e.maxMsgBits {
				st.violations++
			}
			e.energy[t.ID]++
			e.transmits[t.ID]++
		}
		for _, u := range e.g.NeighborsRange(t.ID, lo, hi) {
			if e.cnt[u] >= 0 {
				if e.cnt[u] == 0 {
					touched = append(touched, u)
				}
				e.cnt[u]++
				e.from[u] = int32(i)
			}
		}
		if own {
			touched = append(touched, t.ID)
			e.cnt[t.ID] = -1
		}
	}
}

// shardListen resolves the contiguous position range of listeners shard s
// owns, identically to the sequential listener loop.
func (e *Engine) shardListen(s, k int, tx []TX, listeners []int32, out []RX) {
	plo, phi := s*len(listeners)/k, (s+1)*len(listeners)/k
	for i := plo; i < phi; i++ {
		v := listeners[i]
		c := e.cnt[v]
		if c == -1 {
			panic(fmt.Sprintf("radio: device %d both transmits and listens in round %d", v, e.round))
		}
		e.energy[v]++
		e.listens[v]++
		switch {
		case c == 1:
			out[i] = RX{Msg: tx[e.from[v]].Msg, OK: true}
		case c >= 2 && e.cd:
			out[i] = RX{Noise: true}
		default:
			out[i] = RX{}
		}
	}
}

// shardTeardown resets exactly the counters shard s recorded while marking.
func (e *Engine) shardTeardown(s int) {
	st := &e.shardScratch[s]
	for _, t := range st.touched {
		e.cnt[t] = 0
	}
	st.touched = st.touched[:0]
}
