// Package radio implements the RN[b] radio network model of the paper
// (§1.1): synchronized discrete timesteps on an unknown undirected graph
// where, each step, a device idles (free), listens (1 energy) or transmits
// (1 energy), and a listener receives a message iff exactly one of its
// neighbors transmits. There is no collision detection: a listener cannot
// distinguish silence from a collision.
//
// The package provides two front-ends over one physics core:
//
//   - Engine: a vectorized step API used by the protocol layers. It is
//     activity-proportional — the cost of a step is O(Σ deg(transmitters) +
//     #listeners), and rounds in which nobody is awake are skipped in O(1).
//     This mirrors the paper's central concern: sleeping radios are free.
//
//   - Sim/Device: a goroutine-per-device blocking API (Listen, Transmit,
//     Idle) on which free-form protocols can be written as ordinary
//     sequential Go code.
//
// Energy is metered per device exactly as the paper defines it: the number of
// timesteps spent listening or transmitting.
package radio

import (
	"fmt"
	"math/bits"

	"repro/internal/graph"
)

// Msg is a radio message. The paper's algorithms need only a handful of
// small integer fields, so messages are fixed-shape rather than raw bytes;
// Bits reports the size charged against the RN[b] message budget.
type Msg struct {
	Kind uint8  // protocol-level tag
	A    uint64 // primary field (IDs, labels, distances)
	B    uint64 // secondary field
	C    uint64 // tertiary field (seeds)
	// Hdr is the transport header used by the cluster-graph simulation
	// (§3): each virtual level pushes its O(log n)-bit cluster ID so that
	// cast receivers can filter out messages from foreign clusters. Levels
	// stack by shifting, so the whole stack costs O(depth · log n) bits.
	Hdr uint64
}

// Bits returns the encoded size of m in bits: an 8-bit kind plus a varint-
// style charge for each field. This is the quantity checked against the
// RN[O(log n)] message-size budget.
func (m Msg) Bits() int {
	return 8 + uintBits(m.A) + uintBits(m.B) + uintBits(m.C) + uintBits(m.Hdr)
}

func uintBits(x uint64) int { return bits.Len64(x) }

// TX is a transmission request: device ID plus message.
type TX struct {
	ID  int32
	Msg Msg
}

// RX is a delivery result for a listener.
type RX struct {
	Msg Msg
	OK  bool // true iff exactly one neighbor transmitted
	// Noise is set only on engines with receiver-side collision detection
	// (WithCollisionDetection): it distinguishes two-or-more transmitters
	// (noise) from zero (silence). Without CD both cases read as
	// OK == false, Noise == false — the paper's default model (§1.1,
	// footnote 2). The §5 lower bounds hold even with CD.
	Noise bool
}

// Engine simulates the physics of one radio network. It is not safe for
// concurrent use; the Sim front-end serializes access.
type Engine struct {
	g     *graph.Graph
	round int64

	energy    []int64
	listens   []int64
	transmits []int64

	maxMsgBits    int
	msgBitsSet    bool // maxMsgBits was fixed by option; Reset keeps it
	msgViolations int64
	cd            bool

	// scratch for Step, sized n, reset between calls via touched list.
	cnt     []int32
	from    []int32
	touched []int32
}

// Option configures an Engine.
type Option func(*Engine)

// WithMaxMsgBits sets the RN[b] message budget in bits. Oversized messages
// are still delivered (so simulations proceed) but counted; tests assert the
// violation counter stays zero. Zero disables the check (RN[∞]).
func WithMaxMsgBits(b int) Option {
	return func(e *Engine) { e.maxMsgBits, e.msgBitsSet = b, true }
}

// DefaultMsgBits returns the default RN[O(log n)] budget used by protocol
// code: 8·⌈log₂(n+1)⌉ + 80 bits, enough for a kind tag, three O(log n)-bit
// fields and one 64-bit shared-randomness seed.
func DefaultMsgBits(n int) int {
	lg := graph.Log2Ceil(n + 1)
	if lg < 1 {
		lg = 1
	}
	return 8*lg + 80
}

// WithCollisionDetection enables receiver-side CD: listeners can
// distinguish noise (>= 2 transmitting neighbors) from silence. The paper's
// algorithms do not need it (Local-Broadcast recovers the same power within
// polylog factors, §1.1), but the §5 lower bounds are stated to survive it,
// which the lowerbound package exercises.
func WithCollisionDetection() Option {
	return func(e *Engine) { e.cd = true }
}

// NewEngine builds an engine over graph g.
func NewEngine(g *graph.Graph, opts ...Option) *Engine {
	e := &Engine{}
	for _, o := range opts {
		o(e)
	}
	e.Reset(g)
	return e
}

// Reset re-targets the engine at g, zeroing all meters, the clock and the
// step scratch. It reuses the engine's allocations whenever g is no larger
// than any graph the engine has seen, so one engine can serve many trials of
// same-size instances without allocating; the trial harness relies on this.
// An engine after Reset(g) is indistinguishable from NewEngine(g) with the
// same options.
func (e *Engine) Reset(g *graph.Graph) {
	n := g.N()
	e.g = g
	if cap(e.cnt) < n {
		e.energy = make([]int64, n)
		e.listens = make([]int64, n)
		e.transmits = make([]int64, n)
		e.cnt = make([]int32, n)
		e.from = make([]int32, n)
	} else {
		e.energy = e.energy[:n]
		e.listens = e.listens[:n]
		e.transmits = e.transmits[:n]
		e.cnt = e.cnt[:n]
		e.from = e.from[:n]
		for i := 0; i < n; i++ {
			e.energy[i], e.listens[i], e.transmits[i] = 0, 0, 0
			e.cnt[i], e.from[i] = 0, 0
		}
	}
	e.touched = e.touched[:0]
	e.round = 0
	e.msgViolations = 0
	if !e.msgBitsSet {
		e.maxMsgBits = DefaultMsgBits(n)
	}
}

// Graph returns the underlying topology.
func (e *Engine) Graph() *graph.Graph { return e.g }

// N returns the number of devices.
func (e *Engine) N() int { return e.g.N() }

// Round returns the current global time.
func (e *Engine) Round() int64 { return e.round }

// SkipRounds advances the clock by k rounds in which every device idles.
func (e *Engine) SkipRounds(k int64) {
	if k < 0 {
		panic("radio: negative round skip")
	}
	e.round += k
}

// Energy returns the energy spent so far by device v.
func (e *Engine) Energy(v int32) int64 { return e.energy[v] }

// Listens returns the number of listen steps of device v.
func (e *Engine) Listens(v int32) int64 { return e.listens[v] }

// Transmits returns the number of transmit steps of device v.
func (e *Engine) Transmits(v int32) int64 { return e.transmits[v] }

// MaxEnergy returns the maximum per-device energy — the paper's energy cost
// of an algorithm.
func (e *Engine) MaxEnergy() int64 {
	var m int64
	for _, v := range e.energy {
		if v > m {
			m = v
		}
	}
	return m
}

// TotalEnergy returns the aggregate energy over all devices.
func (e *Engine) TotalEnergy() int64 {
	var s int64
	for _, v := range e.energy {
		s += v
	}
	return s
}

// EnergySnapshot copies the per-device energy vector.
func (e *Engine) EnergySnapshot() []int64 {
	out := make([]int64, len(e.energy))
	copy(out, e.energy)
	return out
}

// ResetMeters zeroes energy counters and the clock (topology unchanged).
func (e *Engine) ResetMeters() {
	for i := range e.energy {
		e.energy[i], e.listens[i], e.transmits[i] = 0, 0, 0
	}
	e.round = 0
	e.msgViolations = 0
}

// MsgViolations returns how many transmitted messages exceeded the RN[b]
// budget. Protocol tests assert this is zero.
func (e *Engine) MsgViolations() int64 { return e.msgViolations }

// Step executes one physical round. tx lists the transmitting devices with
// their messages; listeners lists the listening devices. All other devices
// idle. Results are written to out (which must have len(listeners)):
// out[i] corresponds to listeners[i] and has OK set iff exactly one neighbor
// of that listener transmitted. A device must not both transmit and listen
// in the same round, and must not appear twice in tx; both are programming
// errors that panic. Listeners must be duplicate-free (caller contract).
func (e *Engine) Step(tx []TX, listeners []int32, out []RX) {
	if len(out) != len(listeners) {
		panic(fmt.Sprintf("radio: out length %d != listeners length %d", len(out), len(listeners)))
	}
	// Mark transmissions into neighbor counters, recording every counter the
	// first time it is touched so teardown never re-walks a neighborhood.
	for i := range tx {
		t := &tx[i]
		if e.cnt[t.ID] == -1 {
			panic(fmt.Sprintf("radio: device %d transmits twice in round %d", t.ID, e.round))
		}
		if e.maxMsgBits > 0 && t.Msg.Bits() > e.maxMsgBits {
			e.msgViolations++
		}
		e.energy[t.ID]++
		e.transmits[t.ID]++
		for _, u := range e.g.Neighbors(t.ID) {
			if e.cnt[u] >= 0 {
				if e.cnt[u] == 0 {
					e.touched = append(e.touched, u)
				}
				e.cnt[u]++
				e.from[u] = int32(i)
			}
		}
		e.touched = append(e.touched, t.ID)
		e.cnt[t.ID] = -1 // transmitter marker; also catches transmit+listen
	}
	for i, v := range listeners {
		c := e.cnt[v]
		if c == -1 {
			panic(fmt.Sprintf("radio: device %d both transmits and listens in round %d", v, e.round))
		}
		e.energy[v]++
		e.listens[v]++
		switch {
		case c == 1:
			out[i] = RX{Msg: tx[e.from[v]].Msg, OK: true}
		case c >= 2 && e.cd:
			out[i] = RX{Noise: true} // collision detected
		default:
			out[i] = RX{} // silence, or collision without CD: no feedback
		}
	}
	// Reset scratch: exactly the counters recorded during the mark phase.
	for _, t := range e.touched {
		e.cnt[t] = 0
	}
	e.touched = e.touched[:0]
	e.round++
}
