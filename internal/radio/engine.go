// Package radio implements the RN[b] radio network model of the paper
// (§1.1): synchronized discrete timesteps on an unknown undirected graph
// where, each step, a device idles (free), listens (1 energy) or transmits
// (1 energy), and a listener receives a message iff exactly one of its
// neighbors transmits. There is no collision detection: a listener cannot
// distinguish silence from a collision.
//
// The package provides two front-ends over one physics core:
//
//   - Engine: a vectorized step API used by the protocol layers. It is
//     activity-proportional — the cost of a step is O(Σ deg(transmitters) +
//     #listeners), and rounds in which nobody is awake are skipped in O(1).
//     This mirrors the paper's central concern: sleeping radios are free.
//     One step executes on one of three interchangeable kernels, selected
//     per step by activity: a sequential CSR walk (the baseline), the same
//     walk split into k parallel shards for engines built WithShards(k)
//     (see StepParallel), and a packed-bitmap kernel for the dense regime —
//     coverage and collisions tracked as word-wide bit operations instead
//     of per-neighbor counters (see dense.go; threshold via WithDenseMin).
//     All three are byte-identical in every observable — outputs, meters,
//     clock, violation counter — at every shard count, so kernel choice is
//     purely a performance decision, which is how million-vertex instances
//     use every core inside a single trial.
//
//   - Sim/Device: a goroutine-per-device blocking API (Listen, Transmit,
//     Idle) on which free-form protocols can be written as ordinary
//     sequential Go code.
//
// Energy is metered per device exactly as the paper defines it: the number of
// timesteps spent listening or transmitting.
package radio

import (
	"fmt"
	"math/bits"
	"runtime"
	"sync"

	"repro/internal/graph"
)

// Msg is a radio message. The paper's algorithms need only a handful of
// small integer fields, so messages are fixed-shape rather than raw bytes;
// Bits reports the size charged against the RN[b] message budget.
type Msg struct {
	Kind uint8  // protocol-level tag
	A    uint64 // primary field (IDs, labels, distances)
	B    uint64 // secondary field
	C    uint64 // tertiary field (seeds)
	// Hdr is the transport header used by the cluster-graph simulation
	// (§3): each virtual level pushes its O(log n)-bit cluster ID so that
	// cast receivers can filter out messages from foreign clusters. Levels
	// stack by shifting, so the whole stack costs O(depth · log n) bits.
	Hdr uint64
}

// Bits returns the encoded size of m in bits: an 8-bit kind plus a varint-
// style charge for each field. This is the quantity checked against the
// RN[O(log n)] message-size budget.
func (m Msg) Bits() int {
	return 8 + uintBits(m.A) + uintBits(m.B) + uintBits(m.C) + uintBits(m.Hdr)
}

func uintBits(x uint64) int { return bits.Len64(x) }

// TX is a transmission request: device ID plus message.
type TX struct {
	ID  int32
	Msg Msg
}

// RX is a delivery result for a listener.
type RX struct {
	Msg Msg
	OK  bool // true iff exactly one neighbor transmitted
	// Noise is set only on engines with receiver-side collision detection
	// (WithCollisionDetection): it distinguishes two-or-more transmitters
	// (noise) from zero (silence). Without CD both cases read as
	// OK == false, Noise == false — the paper's default model (§1.1,
	// footnote 2). The §5 lower bounds hold even with CD.
	Noise bool
}

// Engine simulates the physics of one radio network. It is not safe for
// concurrent use; the Sim front-end serializes access.
type Engine struct {
	g     *graph.Graph
	round int64

	energy    []int64
	listens   []int64
	transmits []int64

	maxMsgBits    int
	msgBitsSet    bool // maxMsgBits was fixed by option; Reset keeps it
	msgViolations int64
	cd            bool

	// scratch for Step, sized n, reset between calls via touched list.
	cnt     []int32
	from    []int32
	touched []int32

	// Sharded execution state (see Step and StepParallel). shards is the
	// configured shard count; bounds caches the vertex ownership boundaries
	// for the current graph (recomputed lazily after Reset or SetShards);
	// shardScratch holds one touched list and violation counter per shard.
	shards       int
	bounds       []int32
	shardScratch []shardScratch

	// Persistent shard workers (see parallelShards): pool holds the parked
	// goroutines executing shards 1..k-1, phaseWG joins each phase, and
	// curTX/curListeners/curOut stage the step arguments for the workers —
	// passing them through a closure would allocate on every step.
	pool         *shardPool
	phaseWG      sync.WaitGroup
	curTX        []TX
	curListeners []int32
	curOut       []RX

	// Dense-kernel state (see dense.go): txbit/covered/collided are
	// ⌈n/64⌉-word bitmaps holding the transmitter set, the ≥1-coverage set
	// and the ≥2-coverage (collision) set; wordBounds caches the
	// word-aligned shard ownership for the current graph; denseMin is the
	// step-activity threshold from which the dense kernel is selected
	// (0 = default density rule, negative = disabled).
	txbit      []uint64
	covered    []uint64
	collided   []uint64
	wordBounds []int32
	denseMin   int
}

// shardScratch is the per-shard private state of one sharded step. Entries
// are written only by their owning shard goroutine during a step and read by
// the coordinator after the join, so no field needs atomics.
type shardScratch struct {
	touched    []int32
	violations int64
	panicked   any
}

// Option configures an Engine.
type Option func(*Engine)

// WithMaxMsgBits sets the RN[b] message budget in bits. Oversized messages
// are still delivered (so simulations proceed) but counted; tests assert the
// violation counter stays zero. Zero disables the check (RN[∞]).
func WithMaxMsgBits(b int) Option {
	return func(e *Engine) { e.maxMsgBits, e.msgBitsSet = b, true }
}

// DefaultMsgBits returns the default RN[O(log n)] budget used by protocol
// code: 8·⌈log₂(n+1)⌉ + 80 bits, enough for a kind tag, three O(log n)-bit
// fields and one 64-bit shared-randomness seed.
func DefaultMsgBits(n int) int {
	lg := graph.Log2Ceil(n + 1)
	if lg < 1 {
		lg = 1
	}
	return 8*lg + 80
}

// WithCollisionDetection enables receiver-side CD: listeners can
// distinguish noise (>= 2 transmitting neighbors) from silence. The paper's
// algorithms do not need it (Local-Broadcast recovers the same power within
// polylog factors, §1.1), but the §5 lower bounds are stated to survive it,
// which the lowerbound package exercises.
func WithCollisionDetection() Option {
	return func(e *Engine) { e.cd = true }
}

// WithShards configures the engine to execute sufficiently large steps as k
// parallel shards (see StepParallel). k <= 1 keeps every step sequential.
// Sharded and sequential execution are byte-identical — outputs, meters, the
// round clock and the message-violation counter never depend on the shard
// count — so the option is purely a performance knob.
func WithShards(k int) Option {
	return func(e *Engine) { e.shards = k }
}

// WithDenseMin sets the coverage threshold from which Step executes via
// the packed-bitmap dense kernel (see dense.go): a positive min selects it
// when a step's coverage work Σ deg(transmitters) reaches min, 0 keeps the
// default density rule (coverage ≥ n/denseStepMinDensityDiv), and a
// negative min disables the dense kernel entirely. Dense and CSR execution
// are byte-identical — outputs, meters, clock and violation counter never
// depend on the kernel — so the option is purely a performance knob.
func WithDenseMin(min int) Option {
	return func(e *Engine) { e.denseMin = min }
}

// NewEngine builds an engine over graph g.
func NewEngine(g *graph.Graph, opts ...Option) *Engine {
	e := &Engine{}
	for _, o := range opts {
		o(e)
	}
	e.Reset(g)
	return e
}

// Reset re-targets the engine at g, zeroing all meters, the clock and the
// step scratch. It reuses the engine's allocations whenever g is no larger
// than any graph the engine has seen, so one engine can serve many trials of
// same-size instances without allocating; the trial harness relies on this.
// An engine after Reset(g) is indistinguishable from NewEngine(g) with the
// same options.
func (e *Engine) Reset(g *graph.Graph) {
	n := g.N()
	e.g = g
	if cap(e.cnt) < n {
		e.energy = make([]int64, n)
		e.listens = make([]int64, n)
		e.transmits = make([]int64, n)
		e.cnt = make([]int32, n)
		e.from = make([]int32, n)
	} else {
		e.energy = e.energy[:n]
		e.listens = e.listens[:n]
		e.transmits = e.transmits[:n]
		e.cnt = e.cnt[:n]
		e.from = e.from[:n]
		clear(e.energy)
		clear(e.listens)
		clear(e.transmits)
		clear(e.cnt)
		clear(e.from)
	}
	// The bitmap scratch keeps an all-zero invariant between steps (dense
	// teardown restores it), but a mid-step panic leaves it dirty; clearing
	// the full capacity — ⌈n/64⌉ words per map, cheap — keeps Reset's
	// fresh-engine contract unconditional.
	clear(e.txbit[:cap(e.txbit)])
	clear(e.covered[:cap(e.covered)])
	clear(e.collided[:cap(e.collided)])
	e.touched = e.touched[:0]
	e.bounds = e.bounds[:0] // shard ownership is per-graph; recompute lazily
	e.wordBounds = e.wordBounds[:0]
	e.round = 0
	e.msgViolations = 0
	if !e.msgBitsSet {
		e.maxMsgBits = DefaultMsgBits(n)
	}
}

// SetShards reconfigures the shard count of an existing engine (the pooled
// trial contexts use it when switching between trial-parallel and
// intra-trial-parallel scheduling). Like WithShards, it never changes
// results.
func (e *Engine) SetShards(k int) {
	if k == e.shards {
		return
	}
	e.shards = k
	e.bounds = e.bounds[:0]
	e.wordBounds = e.wordBounds[:0]
}

// SetDenseMin reconfigures the dense-kernel coverage threshold of an
// existing engine (same semantics as WithDenseMin). Like SetShards, it
// never changes results.
func (e *Engine) SetDenseMin(min int) { e.denseMin = min }

// Shards returns the configured shard count (1 when sharding is off).
func (e *Engine) Shards() int {
	if e.shards < 1 {
		return 1
	}
	return e.shards
}

// Graph returns the underlying topology.
func (e *Engine) Graph() *graph.Graph { return e.g }

// N returns the number of devices.
func (e *Engine) N() int { return e.g.N() }

// Round returns the current global time.
func (e *Engine) Round() int64 { return e.round }

// SkipRounds advances the clock by k rounds in which every device idles.
func (e *Engine) SkipRounds(k int64) {
	if k < 0 {
		panic("radio: negative round skip")
	}
	e.round += k
}

// Energy returns the energy spent so far by device v.
func (e *Engine) Energy(v int32) int64 { return e.energy[v] }

// Listens returns the number of listen steps of device v.
func (e *Engine) Listens(v int32) int64 { return e.listens[v] }

// Transmits returns the number of transmit steps of device v.
func (e *Engine) Transmits(v int32) int64 { return e.transmits[v] }

// MaxEnergy returns the maximum per-device energy — the paper's energy cost
// of an algorithm.
func (e *Engine) MaxEnergy() int64 {
	var m int64
	for _, v := range e.energy {
		if v > m {
			m = v
		}
	}
	return m
}

// TotalEnergy returns the aggregate energy over all devices.
func (e *Engine) TotalEnergy() int64 {
	var s int64
	for _, v := range e.energy {
		s += v
	}
	return s
}

// EnergySnapshot copies the per-device energy vector.
func (e *Engine) EnergySnapshot() []int64 {
	out := make([]int64, len(e.energy))
	copy(out, e.energy)
	return out
}

// ResetMeters zeroes energy counters and the clock (topology unchanged).
func (e *Engine) ResetMeters() {
	clear(e.energy)
	clear(e.listens)
	clear(e.transmits)
	e.round = 0
	e.msgViolations = 0
}

// MsgViolations returns how many transmitted messages exceeded the RN[b]
// budget. Protocol tests assert this is zero.
func (e *Engine) MsgViolations() int64 { return e.msgViolations }

// shardStepMinWork is the activity threshold (Σ deg(transmitters) +
// #listeners) below which Step stays sequential even on a sharded engine:
// under it, the fixed cost of waking the shard goroutines exceeds the work
// being split. A var, not a const, so tests can force either path.
var shardStepMinWork = 1 << 16

// Step executes one physical round. tx lists the transmitting devices with
// their messages; listeners lists the listening devices. All other devices
// idle. Results are written to out (which must have len(listeners)):
// out[i] corresponds to listeners[i] and has OK set iff exactly one neighbor
// of that listener transmitted. A device must not both transmit and listen
// in the same round, and must not appear twice in tx; both are programming
// errors that panic. Listeners must be duplicate-free (caller contract).
//
// Step selects one of three byte-identical kernels. Steps whose coverage
// work (Σ deg(transmitters)) reaches the dense threshold (n/128 by
// default; see WithDenseMin) run on the packed-bitmap kernel; other steps
// on an engine configured with WithShards(k > 1) whose activity
// (coverage + #listeners) reaches shardStepMinWork execute the CSR walk
// as k parallel shards; everything below stays on the sequential CSR
// walk. A sufficiently dense step on a sharded engine runs the bitmap
// kernel itself sharded over word ranges. Results are byte-identical on
// every path (see StepParallel and dense.go).
func (e *Engine) Step(tx []TX, listeners []int32, out []RX) {
	if len(out) != len(listeners) {
		panic(fmt.Sprintf("radio: out length %d != listeners length %d", len(out), len(listeners)))
	}
	// The sequential body lives here, not behind a call: one bare step is
	// ~50ns and the sub-threshold path must not pay a function call for the
	// kernel features it is not using.
	work := e.stepWork(tx, listeners)
	if e.denseMin >= 0 && work-len(listeners) >= e.denseThreshold() {
		e.stepDense(tx, listeners, out, work)
		return
	}
	if e.shards > 1 && work >= shardStepMinWork {
		e.stepSharded(tx, listeners, out)
		return
	}
	// Mark transmissions into neighbor counters, recording every counter the
	// first time it is touched so teardown never re-walks a neighborhood.
	for i := range tx {
		t := &tx[i]
		if e.cnt[t.ID] == -1 {
			panic(fmt.Sprintf("radio: device %d transmits twice in round %d", t.ID, e.round))
		}
		if e.maxMsgBits > 0 && t.Msg.Bits() > e.maxMsgBits {
			e.msgViolations++
		}
		e.energy[t.ID]++
		e.transmits[t.ID]++
		for _, u := range e.g.Neighbors(t.ID) {
			if e.cnt[u] >= 0 {
				if e.cnt[u] == 0 {
					e.touched = append(e.touched, u)
				}
				e.cnt[u]++
				e.from[u] = int32(i)
			}
		}
		e.touched = append(e.touched, t.ID)
		e.cnt[t.ID] = -1 // transmitter marker; also catches transmit+listen
	}
	for i, v := range listeners {
		c := e.cnt[v]
		if c == -1 {
			panic(fmt.Sprintf("radio: device %d both transmits and listens in round %d", v, e.round))
		}
		e.energy[v]++
		e.listens[v]++
		switch {
		case c == 1:
			out[i] = RX{Msg: tx[e.from[v]].Msg, OK: true}
		case c >= 2 && e.cd:
			out[i] = RX{Noise: true} // collision detected
		default:
			out[i] = RX{} // silence, or collision without CD: no feedback
		}
	}
	// Reset scratch: exactly the counters recorded during the mark phase.
	for _, t := range e.touched {
		e.cnt[t] = 0
	}
	e.touched = e.touched[:0]
	e.round++
}

// StepParallel is Step with the sharding activity threshold bypassed: when
// the engine has more than one shard configured it always runs a sharded
// kernel — the packed-bitmap one if the step reaches the dense threshold,
// the CSR walk otherwise — and falls back to Step's dispatch when it does
// not. Outputs, energy/listen/transmit meters, the round clock and the
// message-violation counter are byte-identical to Step's at any shard count
// and on every kernel — pinned by the property tests in shard_test.go and
// dense_test.go — so callers choose between them on performance grounds
// only.
func (e *Engine) StepParallel(tx []TX, listeners []int32, out []RX) {
	if len(out) != len(listeners) {
		panic(fmt.Sprintf("radio: out length %d != listeners length %d", len(out), len(listeners)))
	}
	if e.shards > 1 {
		if e.denseMin >= 0 && e.stepWork(tx, listeners)-len(listeners) >= e.denseThreshold() {
			e.stepDenseSharded(tx, listeners, out)
			return
		}
		e.stepSharded(tx, listeners, out)
		return
	}
	e.Step(tx, listeners, out) // shards <= 1: Step's dispatch decides
}

// stepWork estimates the activity of one step — the quantity the model
// charges for: Σ deg(transmitters) + #listeners.
func (e *Engine) stepWork(tx []TX, listeners []int32) int {
	w := len(listeners)
	for i := range tx {
		w += e.g.Degree(tx[i].ID)
	}
	return w
}

// stepSharded executes one physical round as e.shards parallel shards, in
// three barrier-separated phases:
//
//   - Mark: vertex IDs are partitioned into contiguous ranges balanced by
//     CSR arc count (graph.ShardBounds). Shard s owns the IDs in
//     [bounds[s], bounds[s+1]) exclusively: it alone writes their cnt/from
//     counters and transmitter meters, so marking needs no atomics. Each
//     shard scans the tx slice in index order — exactly the sequential
//     order — and marks, per transmitter, only the sub-range of its sorted
//     adjacency list the shard owns (graph.NeighborsRange): per-shard mark
//     work is O(Σdeg/k + |tx|·(1 + log deg)).
//
//   - Listen: listeners are partitioned by position, |listeners|/k
//     contiguous slots per shard, so resolution is balanced and scan-free.
//     Listeners are duplicate-free (Step's caller contract), so position
//     ownership gives every listener's meters and out slot exactly one
//     writer; the phase only reads the counters the mark phase settled,
//     which is why the barrier sits between them.
//
//   - Teardown: each shard resets exactly the counters it recorded during
//     its mark phase, after every reader is done.
//
// Because ownership is exclusive within every phase and the mark scan order
// matches the sequential path, every counter, winner index, meter and
// delivery is byte-identical to stepSeq's.
//
// Programming-error panics (duplicate transmitter, transmit+listen) are
// recovered inside the shard, joined, and re-raised here — first shard wins
// — so they surface on the caller's goroutine just as in the sequential
// path. As with stepSeq, engine state after such a panic is unspecified.
func (e *Engine) stepSharded(tx []TX, listeners []int32, out []RX) {
	k := e.shards
	if len(e.bounds) != k+1 {
		e.bounds = e.g.ShardBounds(k, e.bounds)
	}
	e.growShardScratch(k)
	e.curTX, e.curListeners, e.curOut = tx, listeners, out
	e.parallelShards(k, phaseCSRMark)
	if !e.shardsPanicked(k) {
		e.parallelShards(k, phaseCSRListen)
	}
	e.parallelShards(k, phaseCSRTeardown)
	e.curTX, e.curListeners, e.curOut = nil, nil, nil
	e.joinShards(k)
}

// growShardScratch sizes the per-shard scratch for a k-shard step.
func (e *Engine) growShardScratch(k int) {
	if len(e.shardScratch) < k {
		e.shardScratch = append(e.shardScratch, make([]shardScratch, k-len(e.shardScratch))...)
	}
}

// joinShards folds the per-shard violation counters into the engine,
// re-raises the first captured panic on the caller's goroutine, and
// advances the clock. It is the common epilogue of both sharded kernels.
func (e *Engine) joinShards(k int) {
	var panicked any
	for s := 0; s < k; s++ {
		st := &e.shardScratch[s]
		e.msgViolations += st.violations
		st.violations = 0
		if st.panicked != nil && panicked == nil {
			panicked = st.panicked
		}
		st.panicked = nil
	}
	if panicked != nil {
		panic(panicked)
	}
	e.round++
}

// phaseCode names one barrier-separated phase of a sharded step. Phases are
// dispatched by code, not by closure: a closure handed to a worker
// goroutine would allocate on every step, and the sharded hot paths are
// pinned at zero allocations in steady state.
type phaseCode uint8

const (
	phaseCSRMark phaseCode = iota
	phaseCSRListen
	phaseCSRTeardown
	phaseDenseMark
	phaseDenseListen
	phaseDenseTeardown
)

// shardPool holds the parked worker goroutines of one engine: chans[i]
// feeds the worker that executes shard i+1 (shard 0 runs on the caller).
// The pool is a separate allocation referencing only its channels — never
// the engine — so an unreachable engine stays collectable and its runtime
// cleanup can close the channels, letting the workers exit instead of
// leaking.
type shardPool struct {
	chans []chan shardReq
}

// shardReq asks a parked worker to run one phase of one step. The engine
// pointer rides along in the request so idle workers hold no reference to
// their engine between steps.
type shardReq struct {
	e     *Engine
	code  phaseCode
	shard int
}

func shardWorker(ch chan shardReq) {
	for req := range ch {
		req.e.runShard(req.code, req.shard)
		req.e.phaseWG.Done()
	}
}

// ensureWorkers grows the persistent worker pool to serve k shards. Workers
// are spawned once and parked on per-shard channels between phases, so a
// steady-state sharded step costs 2(k-1) channel operations per phase and
// zero allocations or goroutine spawns. A shrunken shard count simply
// leaves the extra workers parked.
func (e *Engine) ensureWorkers(k int) {
	if e.pool == nil {
		e.pool = &shardPool{}
		runtime.AddCleanup(e, func(p *shardPool) {
			for _, ch := range p.chans {
				close(ch)
			}
		}, e.pool)
	}
	for len(e.pool.chans) < k-1 {
		ch := make(chan shardReq, 1)
		e.pool.chans = append(e.pool.chans, ch)
		go shardWorker(ch)
	}
}

// parallelShards runs one phase on every shard s in [0, k): shard 0 on the
// calling goroutine, shards 1..k-1 on the engine's persistent workers, and
// joins. The phase reads its step arguments from curTX/curListeners/curOut,
// staged by the caller; the channel send publishes them to the workers and
// the WaitGroup join publishes the workers' writes back.
func (e *Engine) parallelShards(k int, code phaseCode) {
	e.ensureWorkers(k)
	e.phaseWG.Add(k - 1)
	for s := 1; s < k; s++ {
		e.pool.chans[s-1] <- shardReq{e: e, code: code, shard: s}
	}
	e.runShard(code, 0)
	e.phaseWG.Wait()
}

// runShard executes one phase on one shard, capturing a panic (first one
// per shard wins) into the shard's scratch slot rather than crashing the
// process; stepSharded/stepDenseSharded re-raise it after the join.
func (e *Engine) runShard(code phaseCode, s int) {
	defer func() {
		if r := recover(); r != nil && e.shardScratch[s].panicked == nil {
			e.shardScratch[s].panicked = r
		}
	}()
	switch code {
	case phaseCSRMark:
		e.shardMark(s, e.curTX)
	case phaseCSRListen:
		e.shardListen(s, e.shards, e.curTX, e.curListeners, e.curOut)
	case phaseCSRTeardown:
		e.shardTeardown(s)
	case phaseDenseMark:
		e.denseShardMark(s, e.curTX)
	case phaseDenseListen:
		e.denseShardListen(s, e.shards, e.curTX, e.curListeners, e.curOut)
	case phaseDenseTeardown:
		e.denseShardTeardown(s)
	}
}

// shardsPanicked reports whether any shard has captured a panic — the
// signal to skip the listen phase, whose reads would be meaningless over a
// half-marked round.
func (e *Engine) shardsPanicked(k int) bool {
	for s := 0; s < k; s++ {
		if e.shardScratch[s].panicked != nil {
			return true
		}
	}
	return false
}

// shardMark is the mark phase of one shard: transmitter accounting for the
// IDs it owns and counter updates for the owned sub-range of every
// transmitter's adjacency.
func (e *Engine) shardMark(s int, tx []TX) {
	st := &e.shardScratch[s]
	lo, hi := e.bounds[s], e.bounds[s+1]
	touched := st.touched[:0]
	// The deferred store keeps the full list — the teardown phase walks it —
	// and survives a mid-mark panic, so teardown still resets what was
	// marked before the abort.
	defer func() { st.touched = touched }()
	for i := range tx {
		t := &tx[i]
		own := t.ID >= lo && t.ID < hi
		if own {
			if e.cnt[t.ID] == -1 {
				panic(fmt.Sprintf("radio: device %d transmits twice in round %d", t.ID, e.round))
			}
			if e.maxMsgBits > 0 && t.Msg.Bits() > e.maxMsgBits {
				st.violations++
			}
			e.energy[t.ID]++
			e.transmits[t.ID]++
		}
		for _, u := range e.g.NeighborsRange(t.ID, lo, hi) {
			if e.cnt[u] >= 0 {
				if e.cnt[u] == 0 {
					touched = append(touched, u)
				}
				e.cnt[u]++
				e.from[u] = int32(i)
			}
		}
		if own {
			touched = append(touched, t.ID)
			e.cnt[t.ID] = -1
		}
	}
}

// shardListen resolves the contiguous position range of listeners shard s
// owns, identically to the sequential listener loop.
func (e *Engine) shardListen(s, k int, tx []TX, listeners []int32, out []RX) {
	plo, phi := s*len(listeners)/k, (s+1)*len(listeners)/k
	for i := plo; i < phi; i++ {
		v := listeners[i]
		c := e.cnt[v]
		if c == -1 {
			panic(fmt.Sprintf("radio: device %d both transmits and listens in round %d", v, e.round))
		}
		e.energy[v]++
		e.listens[v]++
		switch {
		case c == 1:
			out[i] = RX{Msg: tx[e.from[v]].Msg, OK: true}
		case c >= 2 && e.cd:
			out[i] = RX{Noise: true}
		default:
			out[i] = RX{}
		}
	}
}

// shardTeardown resets exactly the counters shard s recorded while marking.
func (e *Engine) shardTeardown(s int) {
	st := &e.shardScratch[s]
	for _, t := range st.touched {
		e.cnt[t] = 0
	}
	st.touched = st.touched[:0]
}
