package radio

import (
	"sync"

	"repro/internal/rng"
)

// Sim runs one goroutine per device over an Engine, letting protocols be
// written as plain sequential Go. Devices interact with the channel through
// blocking calls on their Device handle; a coordinator resolves each round
// conservatively (it waits until every live device has committed its next
// action before delivering any messages), which makes runs deterministic for
// a fixed seed regardless of goroutine scheduling.
type Sim struct {
	eng  *Engine
	seed uint64
}

// NewSim wraps an engine for goroutine-per-device execution. seed derives
// every device's private randomness.
func NewSim(eng *Engine, seed uint64) *Sim {
	return &Sim{eng: eng, seed: seed}
}

// Engine returns the underlying physics engine (for meters).
func (s *Sim) Engine() *Engine { return s.eng }

type actKind uint8

const (
	actNone actKind = iota
	actListen
	actTransmit
	actHalt
)

type pending struct {
	kind  actKind
	round int64 // round at which the action occurs
	msg   Msg   // for transmit
	reply chan RX
}

// Device is the per-goroutine handle for one radio device.
type Device struct {
	id   int32
	sim  *Sim
	rnd  *rng.Source
	now  int64 // device-local clock
	req  chan<- reqMsg
	resp chan RX
}

type reqMsg struct {
	id int32
	p  pending
}

// ID returns the device's identifier (its vertex in the graph).
func (d *Device) ID() int32 { return d.id }

// N returns the number of devices in the network.
func (d *Device) N() int { return d.sim.eng.N() }

// Now returns the device's local clock (the round of its next action).
func (d *Device) Now() int64 { return d.now }

// Rand returns the device's private randomness source.
func (d *Device) Rand() *rng.Source { return d.rnd }

// Idle sleeps for k rounds at zero energy cost.
func (d *Device) Idle(k int64) {
	if k < 0 {
		panic("radio: negative idle")
	}
	d.now += k
}

// IdleUntil sleeps until the device-local clock reaches round r (no-op if
// already past).
func (d *Device) IdleUntil(r int64) {
	if r > d.now {
		d.now = r
	}
}

// Listen spends one round listening; it returns the received message if
// exactly one neighbor transmitted in that round.
func (d *Device) Listen() (Msg, bool) {
	d.req <- reqMsg{d.id, pending{kind: actListen, round: d.now, reply: d.resp}}
	rx := <-d.resp
	d.now++
	return rx.Msg, rx.OK
}

// Transmit spends one round transmitting m.
func (d *Device) Transmit(m Msg) {
	d.req <- reqMsg{d.id, pending{kind: actTransmit, round: d.now, msg: m, reply: d.resp}}
	<-d.resp
	d.now++
}

// Run executes body once per device, each in its own goroutine, and returns
// when all devices have halted (their body returned). It may be called again
// to run another protocol on the same network; meters accumulate.
func (s *Sim) Run(body func(d *Device)) {
	n := s.eng.N()
	req := make(chan reqMsg, n)
	var wg sync.WaitGroup
	wg.Add(n)
	for v := 0; v < n; v++ {
		d := &Device{
			id:   int32(v),
			sim:  s,
			rnd:  rng.New(rng.Derive(s.seed, uint64(v), 0xdef1ce)),
			now:  s.eng.Round(),
			req:  req,
			resp: make(chan RX, 1),
		}
		go func() {
			defer wg.Done()
			body(d)
			req <- reqMsg{d.id, pending{kind: actHalt, round: d.now}}
		}()
	}

	coordDone := make(chan struct{})
	go s.coordinate(n, req, coordDone)
	wg.Wait()
	close(req)
	<-coordDone
}

// simAction is one heap entry of the coordinator: a device and the round of
// its pending action. Entries order by (round, id), so popping all entries
// that share the minimum round yields the batch already in ID order — the
// determinism the old sort.Slice provided, without sorting.
type simAction struct {
	round int64
	id    int32
}

// actionHeap is a hand-rolled binary min-heap over (round, id). A device has
// at most one outstanding action, so keys are unique and the heap never
// holds more than n entries. It lives on reused backing storage: push/pop
// allocate nothing once the slice has grown to the device count.
type actionHeap []simAction

func (h actionHeap) less(i, j int) bool {
	return h[i].round < h[j].round || (h[i].round == h[j].round && h[i].id < h[j].id)
}

func (h *actionHeap) push(a simAction) {
	*h = append(*h, a)
	q := *h
	for i := len(q) - 1; i > 0; {
		p := (i - 1) / 2
		if !q.less(i, p) {
			break
		}
		q[i], q[p] = q[p], q[i]
		i = p
	}
}

func (h *actionHeap) pop() simAction {
	q := *h
	top := q[0]
	last := len(q) - 1
	q[0] = q[last]
	*h = q[:last]
	q = q[:last]
	for i := 0; ; {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < len(q) && q.less(l, m) {
			m = l
		}
		if r < len(q) && q.less(r, m) {
			m = r
		}
		if m == i {
			break
		}
		q[i], q[m] = q[m], q[i]
		i = m
	}
	return top
}

// coordinate implements the conservative round loop: collect one pending
// action from every live device, then resolve the earliest round. Pending
// actions live in an ID-indexed array and a (round, id) min-heap, so each
// round costs O(batch · log n) instead of the full-roster scans and per-round
// sort the map-based coordinator paid, and the batch/tx/listener slices are
// reused across rounds.
func (s *Sim) coordinate(live int, req <-chan reqMsg, done chan<- struct{}) {
	defer close(done)
	pend := make([]pending, s.eng.N()) // indexed by device ID; kind == actNone means empty
	var heap actionHeap
	var tx []TX
	var listeners []int32
	var out []RX
	var batch []int32
	waiting := 0
	for live > 0 {
		// Fill: block until every live device has an outstanding action.
		for waiting < live {
			r, ok := <-req
			if !ok {
				return
			}
			if r.p.kind == actHalt {
				live--
				continue
			}
			pend[r.id] = r.p
			heap.push(simAction{round: r.p.round, id: r.id})
			waiting++
		}
		if live == 0 {
			break
		}
		// Drain every action at the earliest round; (round, id) ordering
		// hands them over in ID order.
		minRound := heap[0].round
		batch, tx, listeners, out = batch[:0], tx[:0], listeners[:0], out[:0]
		for len(heap) > 0 && heap[0].round == minRound {
			id := heap.pop().id
			batch = append(batch, id)
			switch p := &pend[id]; p.kind {
			case actTransmit:
				tx = append(tx, TX{ID: id, Msg: p.msg})
			case actListen:
				listeners = append(listeners, id)
				out = append(out, RX{})
			}
		}
		if gap := minRound - s.eng.Round(); gap > 0 {
			s.eng.SkipRounds(gap)
		}
		s.eng.Step(tx, listeners, out)
		// Reply: transmitters get a zero RX, listeners their delivery.
		li := 0
		for _, id := range batch {
			p := pend[id]
			pend[id] = pending{}
			waiting--
			if p.kind == actListen {
				p.reply <- out[li]
				li++
			} else {
				p.reply <- RX{}
			}
		}
	}
}
