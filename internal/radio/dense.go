package radio

// dense.go is the packed-bitmap step kernel for the dense regime. The RN[b]
// model makes a radio step a set-intersection problem — a listener hears
// iff exactly one neighbor transmits — and when a large fraction of the
// network is awake, resolving it through per-neighbor int32 counters
// (engine.go's CSR walk) streams O(n) words of counter memory per step. The
// dense kernel replaces the counters with three ⌈n/64⌉-word bitmaps:
//
//	txbit     bit v set ⇔ v transmits this round
//	covered   bit v set ⇔ ≥ 1 neighbor of v transmits
//	collided  bit v set ⇔ ≥ 2 neighbors of v transmit
//
// Marking a transmitter's adjacency is word-batched: consecutive sorted
// neighbors sharing a 64-vertex word fold into one mask, applied with the
// collision-carry trick — bits of the mask already covered carry into
// collided (collided |= covered & mask; covered |= mask) — so coverage
// counting is two bit-ops per touched word instead of a read-modify-write
// per neighbor, and the whole coverage state of a million-vertex graph is
// 3 × 16 KiB of words instead of 4 MiB of counters. The winner index
// (from[v], the tx slot delivered to a singly-covered listener) is written
// only for mask bits still singly covered after the word update
// (mask &^ collided, walked with bits.TrailingZeros64): a bit that has
// collided can never be read back, so saturated rounds skip most winner
// writes entirely. Resolution then reads two bits plus — only for the
// singly-covered — one from[] slot, and teardown is three word-range
// clears, O(n/64) instead of a touched-list walk.
//
// Equivalence with the CSR kernels: a listener's observable outcome is a
// function of (c == 1, c ≥ 2, winner-if-c==1) where c counts transmitting
// neighbors — exactly (covered ∧ ¬collided, collided, from[v]). from[v] is
// read only when v is singly covered, in which case every kernel stores the
// index of the unique covering transmitter. Meters and the violation
// counter are per-device/additive, and the programming-error panics test
// the same predicates (transmitter marked twice; listener marked as
// transmitter), so the kernels agree on every observable byte — pinned by
// the property tests in dense_test.go.
//
// The sharded variant partitions the bitmaps by word: shard ownership
// boundaries are the CSR-arc-balanced ShardBounds rounded to 64-vertex
// multiples (graph.ShardBoundsAligned), so every bitmap word — and every
// vertex's meters and from[] slot — has exactly one writing shard and the
// three barrier-separated phases (mark, listen, teardown) need no atomics,
// mirroring the CSR sharded design. Each shard applies the tx list in
// index order over its owned word range, which is the sequential order, so
// results are byte-identical at every shard count.

import (
	"fmt"
	"math/bits"
)

// denseStepMinDensityDiv is the default coverage-density rule: the dense
// kernel is selected when a step's coverage work — Σ deg(transmitters),
// the arcs the mark phase walks — reaches n/denseStepMinDensityDiv.
// Coverage, not total activity, is the predictor because the kernel's win
// is concentrated in marking (word-wide ORs against ~n/8 bytes of bitmap
// versus counter read-modify-writes scattered over 4n bytes), while its
// per-listener resolution is marginally more expensive than the CSR
// counter read; a listener-heavy step with few transmitters is faster on
// CSR no matter how high its total activity. The divisor is calibrated
// from BenchmarkDenseStep on the million-vertex random tree (recorded in
// BENCH_pr6.json): dense wins every measured pattern with coverage ≥
// n/128 and loses the 1024-transmitter/10⁶-listener pattern at ≈ n/512,
// so n/128 stays comfortably on the winning side. A var, not a const, so
// tests can force either side; per-engine overrides go through
// WithDenseMin/SetDenseMin.
var denseStepMinDensityDiv = 128

// denseThreshold resolves the engine's dense-kernel coverage threshold
// (callers have already checked denseMin >= 0, i.e. the kernel is
// enabled). Never zero, so transmitter-free steps stay on the CSR path
// even on graphs smaller than the divisor.
func (e *Engine) denseThreshold() int {
	if e.denseMin > 0 {
		return e.denseMin
	}
	if th := e.g.N() / denseStepMinDensityDiv; th > 1 {
		return th
	}
	return 1
}

// denseWords sizes the bitmap scratch for the current graph and returns the
// word count. The bitmaps keep an all-zero invariant between steps (the
// kernel's teardown restores it, Reset re-establishes it), so growth is the
// only work here.
func (e *Engine) denseWords() int {
	words := (e.g.N() + 63) >> 6
	if cap(e.txbit) < words {
		e.txbit = make([]uint64, words)
		e.covered = make([]uint64, words)
		e.collided = make([]uint64, words)
	}
	e.txbit = e.txbit[:words]
	e.covered = e.covered[:words]
	e.collided = e.collided[:words]
	return words
}

// stepDense executes one round on the packed-bitmap kernel, sharded over
// word ranges when the engine is configured for it and the step carries
// enough activity to amortize the phase barriers.
func (e *Engine) stepDense(tx []TX, listeners []int32, out []RX, work int) {
	if e.shards > 1 && work >= shardStepMinWork {
		e.stepDenseSharded(tx, listeners, out)
		return
	}
	e.stepDenseSeq(tx, listeners, out)
}

// stepDenseSeq is the sequential bitmap kernel: transmitter accounting and
// word-batched coverage marking in tx order, two-bit resolution per
// listener, then three word-range clears.
func (e *Engine) stepDenseSeq(tx []TX, listeners []int32, out []RX) {
	e.denseWords()
	txbit := e.txbit
	for i := range tx {
		t := &tx[i]
		w, b := t.ID>>6, uint64(1)<<(t.ID&63)
		if txbit[w]&b != 0 {
			panic(fmt.Sprintf("radio: device %d transmits twice in round %d", t.ID, e.round))
		}
		txbit[w] |= b
		if e.maxMsgBits > 0 && t.Msg.Bits() > e.maxMsgBits {
			e.msgViolations++
		}
		e.energy[t.ID]++
		e.transmits[t.ID]++
		e.denseMark(e.g.Neighbors(t.ID), int32(i))
	}
	e.denseResolve(tx, listeners, out, 0, len(listeners))
	clear(e.txbit)
	clear(e.covered)
	clear(e.collided)
	e.round++
}

// denseMark ORs one transmitter's (sub-)adjacency into the coverage
// bitmaps. Consecutive sorted neighbors sharing a word fold into one mask;
// the carry trick routes re-covered bits into collided; winner indices are
// written only for bits still singly covered after the word update.
func (e *Engine) denseMark(adj []int32, i int32) {
	covered, collided := e.covered, e.collided
	for len(adj) > 0 {
		w := adj[0] >> 6
		mask := uint64(1) << (adj[0] & 63)
		j := 1
		for ; j < len(adj) && adj[j]>>6 == w; j++ {
			mask |= uint64(1) << (adj[j] & 63)
		}
		adj = adj[j:]
		collided[w] |= covered[w] & mask
		covered[w] |= mask
		if single := mask &^ collided[w]; single != 0 {
			base := w << 6
			for m := single; m != 0; m &= m - 1 {
				e.from[base+int32(bits.TrailingZeros64(m))] = i
			}
		}
	}
}

// denseResolve delivers to the listeners in positions [plo, phi): two bit
// reads decide silence / delivery / collision, and only a singly-covered
// listener touches the winner index. Identical in every observable to the
// CSR listener loop.
func (e *Engine) denseResolve(tx []TX, listeners []int32, out []RX, plo, phi int) {
	txbit, covered, collided := e.txbit, e.covered, e.collided
	for i := plo; i < phi; i++ {
		v := listeners[i]
		w, b := v>>6, uint64(1)<<(v&63)
		if txbit[w]&b != 0 {
			panic(fmt.Sprintf("radio: device %d both transmits and listens in round %d", v, e.round))
		}
		e.energy[v]++
		e.listens[v]++
		switch {
		case covered[w]&b != 0 && collided[w]&b == 0:
			out[i] = RX{Msg: tx[e.from[v]].Msg, OK: true}
		case collided[w]&b != 0 && e.cd:
			out[i] = RX{Noise: true}
		default:
			out[i] = RX{}
		}
	}
}

// stepDenseSharded executes one round on the bitmap kernel as e.shards
// parallel shards over word-aligned vertex ranges, in the same three
// barrier-separated phases as the CSR sharded step. Ownership is exclusive
// within every phase (one shard per bitmap word, one shard per listener
// position) and each shard scans tx in index order, so results are
// byte-identical to the sequential kernel's; panics are captured per shard
// and re-raised on the caller's goroutine by joinShards.
func (e *Engine) stepDenseSharded(tx []TX, listeners []int32, out []RX) {
	k := e.shards
	e.denseWords()
	if len(e.wordBounds) != k+1 {
		e.wordBounds = e.g.ShardBoundsAligned(k, 64, e.wordBounds)
	}
	e.growShardScratch(k)
	e.curTX, e.curListeners, e.curOut = tx, listeners, out
	e.parallelShards(k, phaseDenseMark)
	if !e.shardsPanicked(k) {
		e.parallelShards(k, phaseDenseListen)
	}
	e.parallelShards(k, phaseDenseTeardown)
	e.curTX, e.curListeners, e.curOut = nil, nil, nil
	e.joinShards(k)
}

// denseShardMark is the mark phase of one dense shard: transmitter
// accounting for the IDs it owns plus coverage marking for the owned
// sub-range of every transmitter's adjacency. The bounds are 64-aligned, so
// every txbit/covered/collided word and from[] slot it writes is owned.
func (e *Engine) denseShardMark(s int, tx []TX) {
	st := &e.shardScratch[s]
	lo, hi := e.wordBounds[s], e.wordBounds[s+1]
	txbit := e.txbit
	for i := range tx {
		t := &tx[i]
		if t.ID >= lo && t.ID < hi {
			w, b := t.ID>>6, uint64(1)<<(t.ID&63)
			if txbit[w]&b != 0 {
				panic(fmt.Sprintf("radio: device %d transmits twice in round %d", t.ID, e.round))
			}
			txbit[w] |= b
			if e.maxMsgBits > 0 && t.Msg.Bits() > e.maxMsgBits {
				st.violations++
			}
			e.energy[t.ID]++
			e.transmits[t.ID]++
		}
		e.denseMark(e.g.NeighborsRange(t.ID, lo, hi), int32(i))
	}
}

// denseShardListen resolves the contiguous position range of listeners
// shard s owns, identically to the CSR listen phase's partition.
func (e *Engine) denseShardListen(s, k int, tx []TX, listeners []int32, out []RX) {
	e.denseResolve(tx, listeners, out, s*len(listeners)/k, (s+1)*len(listeners)/k)
}

// denseShardTeardown clears the word range shard s owns in all three
// bitmaps. Bounds are 64-aligned except the final one (n), so the trailing
// partial word belongs to the last non-empty shard alone and the cleared
// ranges are disjoint. Unlike the CSR teardown there is no touched list:
// the owned range is cleared wholesale, which also restores the all-zero
// invariant after a mid-mark panic.
func (e *Engine) denseShardTeardown(s int) {
	lo, hi := e.wordBounds[s], e.wordBounds[s+1]
	if lo >= hi {
		return
	}
	wlo, whi := int(lo)>>6, (int(hi)+63)>>6
	clear(e.txbit[wlo:whi])
	clear(e.covered[wlo:whi])
	clear(e.collided[wlo:whi])
}
