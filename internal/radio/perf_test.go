package radio

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/rng"
)

// TestUintBitsMatchesLoop pins the math/bits implementation to the shift
// loop it replaced.
func TestUintBitsMatchesLoop(t *testing.T) {
	loop := func(x uint64) int {
		n := 0
		for x > 0 {
			n++
			x >>= 1
		}
		return n
	}
	cases := []uint64{0, 1, 2, 3, 4, 7, 8, 255, 256, 1<<32 - 1, 1 << 32, 1<<64 - 1}
	for x := uint64(0); x < 1<<12; x++ {
		cases = append(cases, x)
	}
	for _, x := range cases {
		if got, want := uintBits(x), loop(x); got != want {
			t.Fatalf("uintBits(%d) = %d, want %d", x, got, want)
		}
	}
}

// TestDefaultMsgBitsMatchesLoop pins DefaultMsgBits to its original
// definition: 8·lg + 80 with lg the smallest value ≥ 1 where 2^lg > n.
func TestDefaultMsgBitsMatchesLoop(t *testing.T) {
	loop := func(n int) int {
		lg := 1
		for 1<<lg <= n {
			lg++
		}
		return 8*lg + 80
	}
	for n := 0; n < 1<<14; n++ {
		if got, want := DefaultMsgBits(n), loop(n); got != want {
			t.Fatalf("DefaultMsgBits(%d) = %d, want %d", n, got, want)
		}
	}
}

// TestEngineResetMatchesFresh runs a protocol-shaped random workload on a
// fresh engine and on a reused engine after Reset, and requires identical
// deliveries and meters — the contract the pooled trial contexts rely on.
func TestEngineResetMatchesFresh(t *testing.T) {
	graphs := []*graph.Graph{graph.Cycle(64), graph.Grid(6, 6), graph.Star(40)}
	run := func(e *Engine, g *graph.Graph, seed uint64) ([]RX, int64, int64) {
		r := rng.New(seed)
		var all []RX
		for round := 0; round < 50; round++ {
			var tx []TX
			var listeners []int32
			for v := int32(0); v < int32(g.N()); v++ {
				switch r.Intn(4) {
				case 0:
					tx = append(tx, TX{ID: v, Msg: Msg{A: uint64(v)}})
				case 1:
					listeners = append(listeners, v)
				}
			}
			out := make([]RX, len(listeners))
			e.Step(tx, listeners, out)
			all = append(all, out...)
		}
		return all, e.MaxEnergy(), e.Round()
	}
	// One engine reused across all graphs (including a size change), compared
	// against a fresh engine per graph.
	reused := NewEngine(graphs[0])
	for gi, g := range graphs {
		seed := uint64(1000 + gi)
		fresh := NewEngine(g)
		wantRX, wantMax, wantRound := run(fresh, g, seed)
		reused.Reset(g)
		gotRX, gotMax, gotRound := run(reused, g, seed)
		if len(gotRX) != len(wantRX) {
			t.Fatalf("graph %d: %d deliveries, want %d", gi, len(gotRX), len(wantRX))
		}
		for i := range gotRX {
			if gotRX[i] != wantRX[i] {
				t.Fatalf("graph %d: delivery %d = %+v, want %+v", gi, i, gotRX[i], wantRX[i])
			}
		}
		if gotMax != wantMax || gotRound != wantRound {
			t.Fatalf("graph %d: meters (%d, %d), want (%d, %d)", gi, gotMax, gotRound, wantMax, wantRound)
		}
	}
}

// TestEngineResetKeepsOptions checks Reset preserves an explicit message
// budget but recomputes the default one for the new size.
func TestEngineResetKeepsOptions(t *testing.T) {
	e := NewEngine(graph.Cycle(16), WithMaxMsgBits(7))
	e.Reset(graph.Cycle(1024))
	if e.maxMsgBits != 7 {
		t.Fatalf("explicit budget lost: %d", e.maxMsgBits)
	}
	d := NewEngine(graph.Cycle(16))
	d.Reset(graph.Cycle(1024))
	if want := DefaultMsgBits(1024); d.maxMsgBits != want {
		t.Fatalf("default budget = %d, want %d", d.maxMsgBits, want)
	}
}

// TestEngineStepZeroAllocs is the steady-state allocation regression test:
// once the touched list has grown, Step must never allocate.
func TestEngineStepZeroAllocs(t *testing.T) {
	g := graph.Grid(32, 32)
	e := NewEngine(g)
	tx := []TX{{ID: 100, Msg: Msg{A: 1}}, {ID: 500, Msg: Msg{A: 2}}}
	listeners := []int32{101, 132, 68, 501}
	out := make([]RX, len(listeners))
	e.Step(tx, listeners, out) // warm the touched scratch
	allocs := testing.AllocsPerRun(200, func() {
		e.Step(tx, listeners, out)
	})
	if allocs != 0 {
		t.Fatalf("Engine.Step allocates %v per call in steady state, want 0", allocs)
	}
}

// stepZeroAllocsPattern is the shared workload for the kernel-specific
// steady-state pins: a quarter of the grid transmits, the rest listens, so
// both sharded phases and the bitmap word batching see real work.
func stepZeroAllocsPattern(g *graph.Graph) (tx []TX, listeners []int32, out []RX) {
	for v := int32(0); int(v) < g.N(); v++ {
		if v%4 == 0 {
			tx = append(tx, TX{ID: v, Msg: Msg{A: uint64(v)}})
		} else {
			listeners = append(listeners, v)
		}
	}
	return tx, listeners, make([]RX, len(listeners))
}

// TestDenseStepZeroAllocs pins the packed-bitmap kernel to zero steady-state
// allocations after the first step on a warm engine, at shard counts 1 and
// 4 — the sharded case also covering the persistent worker pool (waking the
// workers must not allocate).
func TestDenseStepZeroAllocs(t *testing.T) {
	defer func(old int) { shardStepMinWork = old }(shardStepMinWork)
	shardStepMinWork = 1
	g := graph.Grid(32, 32)
	tx, listeners, out := stepZeroAllocsPattern(g)
	for _, shards := range []int{1, 4} {
		e := NewEngine(g, WithDenseMin(1), WithShards(shards))
		e.Step(tx, listeners, out) // warm: bitmap scratch, shard scratch, workers
		allocs := testing.AllocsPerRun(200, func() {
			e.Step(tx, listeners, out)
		})
		if allocs != 0 {
			t.Fatalf("dense Step (shards=%d) allocates %v per call in steady state, want 0", shards, allocs)
		}
	}
}

// TestShardedStepZeroAllocs pins the sharded CSR kernel to zero steady-state
// allocations — a capability of the persistent phase-worker pool (the old
// per-phase goroutine spawn allocated on every step).
func TestShardedStepZeroAllocs(t *testing.T) {
	defer func(old int) { shardStepMinWork = old }(shardStepMinWork)
	shardStepMinWork = 1
	g := graph.Grid(32, 32)
	tx, listeners, out := stepZeroAllocsPattern(g)
	e := NewEngine(g, WithDenseMin(-1), WithShards(4))
	e.Step(tx, listeners, out) // warm: shard scratch and workers
	allocs := testing.AllocsPerRun(200, func() {
		e.Step(tx, listeners, out)
	})
	if allocs != 0 {
		t.Fatalf("sharded Step allocates %v per call in steady state, want 0", allocs)
	}
}
