package radio

import (
	"fmt"
	"testing"

	"repro/internal/graph"
	"repro/internal/rng"
)

// randomShardGraph builds a random test topology with deliberately awkward
// shape for shard ownership: a G(n,p)-style random core, a high-degree hub,
// and a tail of isolated (degree-0) vertices.
func randomShardGraph(n int, r *rng.Source) *graph.Graph {
	b := graph.NewBuilder(n)
	core := n - n/8 // last n/8 vertices stay isolated
	if core < 2 {
		core = n
	}
	for u := 0; u < core; u++ {
		for e := 0; e < 3; e++ {
			v := r.Intn(core)
			if v != u {
				b.AddEdge(int32(u), int32(v))
			}
		}
	}
	// Hub: vertex 0 is adjacent to every fourth core vertex, so one
	// adjacency list spans many shard ranges.
	for v := 1; v < core; v += 4 {
		b.AddEdge(0, int32(v))
	}
	return b.Graph()
}

// stepPattern draws one random, non-overlapping transmitter/listener split.
func stepPattern(n int, r *rng.Source) (tx []TX, listeners []int32) {
	for v := 0; v < n; v++ {
		switch r.Intn(5) {
		case 0:
			tx = append(tx, TX{ID: int32(v), Msg: Msg{Kind: 3, A: uint64(v), B: r.Uint64()}})
		case 1, 2:
			listeners = append(listeners, int32(v))
		}
	}
	return tx, listeners
}

// TestStepParallelMatchesSequential is the central byte-identity property
// test: over random graphs × random slot patterns, a sharded engine must
// produce exactly the sequential engine's deliveries, per-device meters,
// round clock and violation counter, at every shard count — including CD
// engines, tight message budgets, and k > n.
func TestStepParallelMatchesSequential(t *testing.T) {
	for _, n := range []int{1, 5, 33, 200} {
		for _, shards := range []int{2, 3, 7, 16, 200 + 5} {
			for _, cd := range []bool{false, true} {
				seed := uint64(n*1000 + shards*2 + 1)
				g := randomShardGraph(n, rng.New(seed))
				opts := []Option{WithMaxMsgBits(40)} // tight: some messages violate
				if cd {
					opts = append(opts, WithCollisionDetection())
				}
				seq := NewEngine(g, opts...)
				par := NewEngine(g, append(opts, WithShards(shards))...)
				r := rng.New(rng.Derive(seed, 0x51a7))
				for round := 0; round < 30; round++ {
					tx, listeners := stepPattern(n, r)
					outSeq := make([]RX, len(listeners))
					outPar := make([]RX, len(listeners))
					seq.Step(tx, listeners, outSeq)
					par.StepParallel(tx, listeners, outPar)
					for i := range outSeq {
						if outSeq[i] != outPar[i] {
							t.Fatalf("n=%d shards=%d cd=%v round %d: listener %d got %+v, sequential %+v",
								n, shards, cd, round, listeners[i], outPar[i], outSeq[i])
						}
					}
				}
				if seq.Round() != par.Round() || seq.MsgViolations() != par.MsgViolations() {
					t.Fatalf("n=%d shards=%d cd=%v: clock/violations (%d, %d) vs sequential (%d, %d)",
						n, shards, cd, par.Round(), par.MsgViolations(), seq.Round(), seq.MsgViolations())
				}
				for v := int32(0); int(v) < n; v++ {
					if seq.Energy(v) != par.Energy(v) || seq.Listens(v) != par.Listens(v) || seq.Transmits(v) != par.Transmits(v) {
						t.Fatalf("n=%d shards=%d cd=%v: device %d meters (%d,%d,%d) vs sequential (%d,%d,%d)",
							n, shards, cd, v,
							par.Energy(v), par.Listens(v), par.Transmits(v),
							seq.Energy(v), seq.Listens(v), seq.Transmits(v))
					}
				}
			}
		}
	}
}

// TestStepThresholdDispatchMatches forces Step's transparent dispatch (not
// StepParallel) down the sharded path by lowering the activity threshold,
// and checks byte-identity end to end — the configuration the harness's big
// instances actually run.
func TestStepThresholdDispatchMatches(t *testing.T) {
	defer func(old int) { shardStepMinWork = old }(shardStepMinWork)
	shardStepMinWork = 1

	n := 150
	g := randomShardGraph(n, rng.New(7))
	seq := NewEngine(g)
	par := NewEngine(g, WithShards(4))
	r := rng.New(99)
	for round := 0; round < 40; round++ {
		tx, listeners := stepPattern(n, r)
		outSeq := make([]RX, len(listeners))
		outPar := make([]RX, len(listeners))
		seq.Step(tx, listeners, outSeq)
		par.Step(tx, listeners, outPar)
		for i := range outSeq {
			if outSeq[i] != outPar[i] {
				t.Fatalf("round %d listener %d: %+v vs %+v", round, listeners[i], outPar[i], outSeq[i])
			}
		}
	}
	if seq.MaxEnergy() != par.MaxEnergy() || seq.TotalEnergy() != par.TotalEnergy() || seq.Round() != par.Round() {
		t.Fatalf("aggregate divergence: (%d,%d,%d) vs (%d,%d,%d)",
			par.MaxEnergy(), par.TotalEnergy(), par.Round(),
			seq.MaxEnergy(), seq.TotalEnergy(), seq.Round())
	}
}

// TestSetShardsMidRun switches an engine between sequential and sharded
// execution between rounds — the pooled-context reconfiguration path — and
// requires the trajectory to match an always-sequential twin.
func TestSetShardsMidRun(t *testing.T) {
	n := 80
	g := randomShardGraph(n, rng.New(21))
	seq := NewEngine(g)
	par := NewEngine(g)
	r := rng.New(rng.Derive(21, 2))
	for round := 0; round < 30; round++ {
		par.SetShards(1 + round%5) // 1, 2, 3, 4, 5, 1, ...
		tx, listeners := stepPattern(n, r)
		outSeq := make([]RX, len(listeners))
		outPar := make([]RX, len(listeners))
		seq.Step(tx, listeners, outSeq)
		par.StepParallel(tx, listeners, outPar)
		for i := range outSeq {
			if outSeq[i] != outPar[i] {
				t.Fatalf("round %d: %+v vs %+v", round, outPar[i], outSeq[i])
			}
		}
	}
	if par.Shards() != 5 {
		t.Fatalf("Shards() = %d, want 5", par.Shards())
	}
	for v := int32(0); int(v) < n; v++ {
		if seq.Energy(v) != par.Energy(v) {
			t.Fatalf("device %d energy %d, sequential %d", v, par.Energy(v), seq.Energy(v))
		}
	}
}

// TestShardedDoubleTransmitPanics pins the duplicate-transmitter programming
// error to a panic on the caller's goroutine under sharded execution.
func TestShardedDoubleTransmitPanics(t *testing.T) {
	e := NewEngine(graph.Path(64), WithShards(4))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate transmitter")
		}
	}()
	e.StepParallel([]TX{{ID: 5}, {ID: 5}}, nil, nil)
}

// TestShardedTransmitAndListenPanics pins the transmit+listen programming
// error under sharded execution, with the two roles owned by one shard.
func TestShardedTransmitAndListenPanics(t *testing.T) {
	e := NewEngine(graph.Path(64), WithShards(4))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on transmit+listen")
		}
	}()
	e.StepParallel([]TX{{ID: 5}}, []int32{5}, make([]RX, 1))
}

// TestShardedReset checks an engine reused across graphs via Reset
// recomputes its shard ownership for the new topology.
func TestShardedReset(t *testing.T) {
	e := NewEngine(graph.Star(32), WithShards(3))
	out := make([]RX, 1)
	e.StepParallel([]TX{{ID: 0, Msg: Msg{A: 9}}}, []int32{5}, out)
	if !out[0].OK || out[0].Msg.A != 9 {
		t.Fatalf("star delivery: %+v", out[0])
	}
	big := graph.Cycle(500)
	e.Reset(big)
	seq := NewEngine(big)
	r := rng.New(3)
	for round := 0; round < 10; round++ {
		tx, listeners := stepPattern(500, r)
		outSeq := make([]RX, len(listeners))
		outPar := make([]RX, len(listeners))
		seq.Step(tx, listeners, outSeq)
		e.StepParallel(tx, listeners, outPar)
		for i := range outSeq {
			if outSeq[i] != outPar[i] {
				t.Fatalf("round %d after Reset: %+v vs %+v", round, outPar[i], outSeq[i])
			}
		}
	}
}

// BenchmarkStepShardedSmall guards the dispatch overhead: a sharded engine
// on a sub-threshold step must stay on the sequential fast path.
func BenchmarkStepShardedSmall(b *testing.B) {
	g := graph.Grid(64, 64)
	for _, shards := range []int{1, 4} {
		e := NewEngine(g, WithShards(shards))
		tx := []TX{{ID: 2000, Msg: Msg{A: 1}}}
		listeners := []int32{2001, 2002, 2064}
		out := make([]RX, len(listeners))
		e.Step(tx, listeners, out)
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				e.Step(tx, listeners, out)
			}
		})
	}
}
