package radio

import (
	"testing"

	"repro/internal/graph"
)

func step(e *Engine, tx []TX, listeners []int32) []RX {
	out := make([]RX, len(listeners))
	e.Step(tx, listeners, out)
	return out
}

func TestSingleTransmitterDelivers(t *testing.T) {
	g := graph.Path(3) // 0-1-2
	e := NewEngine(g)
	out := step(e, []TX{{ID: 1, Msg: Msg{Kind: 7, A: 42}}}, []int32{0, 2})
	for i, rx := range out {
		if !rx.OK || rx.Msg.A != 42 || rx.Msg.Kind != 7 {
			t.Fatalf("listener %d: got %+v", i, rx)
		}
	}
}

func TestCollisionSilence(t *testing.T) {
	g := graph.Path(3) // 0 and 2 both neighbors of 1
	e := NewEngine(g)
	out := step(e, []TX{{ID: 0, Msg: Msg{A: 1}}, {ID: 2, Msg: Msg{A: 2}}}, []int32{1})
	if out[0].OK {
		t.Fatalf("collision delivered a message: %+v", out[0])
	}
}

func TestNoTransmitterSilence(t *testing.T) {
	e := NewEngine(graph.Cycle(4))
	out := step(e, nil, []int32{0, 1, 2, 3})
	for _, rx := range out {
		if rx.OK {
			t.Fatal("silence delivered a message")
		}
	}
}

func TestNonNeighborNotHeard(t *testing.T) {
	g := graph.Path(4) // 0-1-2-3
	e := NewEngine(g)
	out := step(e, []TX{{ID: 0, Msg: Msg{A: 9}}}, []int32{2, 3})
	if out[0].OK || out[1].OK {
		t.Fatal("message crossed more than one hop")
	}
}

func TestTwoDisjointTransmissions(t *testing.T) {
	g := graph.Path(6) // 0-1-2-3-4-5
	e := NewEngine(g)
	out := step(e, []TX{{ID: 0, Msg: Msg{A: 10}}, {ID: 5, Msg: Msg{A: 50}}}, []int32{1, 4})
	if !out[0].OK || out[0].Msg.A != 10 {
		t.Fatalf("listener 1: %+v", out[0])
	}
	if !out[1].OK || out[1].Msg.A != 50 {
		t.Fatalf("listener 4: %+v", out[1])
	}
}

func TestTransmitterHearsNothing(t *testing.T) {
	// A transmitter that is also adjacent to another transmitter does not
	// receive; transmitters get no feedback in this model, and marking them
	// must not corrupt neighbor counters.
	g := graph.Complete(3)
	e := NewEngine(g)
	out := step(e, []TX{{ID: 0, Msg: Msg{A: 1}}, {ID: 1, Msg: Msg{A: 2}}}, []int32{2})
	if out[0].OK {
		t.Fatal("listener 2 should see a collision")
	}
	// Next round: only 0 transmits; 2 should hear it cleanly.
	out = step(e, []TX{{ID: 0, Msg: Msg{A: 3}}}, []int32{2})
	if !out[0].OK || out[0].Msg.A != 3 {
		t.Fatalf("scratch state leaked across rounds: %+v", out[0])
	}
}

func TestEnergyAccounting(t *testing.T) {
	g := graph.Path(3)
	e := NewEngine(g)
	step(e, []TX{{ID: 1, Msg: Msg{}}}, []int32{0})
	step(e, []TX{{ID: 1, Msg: Msg{}}}, []int32{0, 2})
	if e.Energy(1) != 2 || e.Transmits(1) != 2 || e.Listens(1) != 0 {
		t.Fatalf("transmitter energy: E=%d T=%d L=%d", e.Energy(1), e.Transmits(1), e.Listens(1))
	}
	if e.Energy(0) != 2 || e.Listens(0) != 2 {
		t.Fatalf("listener 0 energy: %d", e.Energy(0))
	}
	if e.Energy(2) != 1 {
		t.Fatalf("listener 2 energy: %d", e.Energy(2))
	}
	if e.MaxEnergy() != 2 || e.TotalEnergy() != 5 {
		t.Fatalf("aggregate energy: max=%d total=%d", e.MaxEnergy(), e.TotalEnergy())
	}
}

func TestIdleIsFree(t *testing.T) {
	e := NewEngine(graph.Cycle(5))
	e.SkipRounds(1000)
	step(e, nil, nil)
	if e.Round() != 1001 {
		t.Fatalf("round = %d", e.Round())
	}
	if e.TotalEnergy() != 0 {
		t.Fatal("idle rounds cost energy")
	}
}

func TestClockAdvances(t *testing.T) {
	e := NewEngine(graph.Path(2))
	for i := 0; i < 5; i++ {
		step(e, nil, []int32{0})
	}
	if e.Round() != 5 {
		t.Fatalf("round = %d", e.Round())
	}
}

func TestResetMeters(t *testing.T) {
	e := NewEngine(graph.Path(2))
	step(e, []TX{{ID: 0, Msg: Msg{}}}, []int32{1})
	e.ResetMeters()
	if e.TotalEnergy() != 0 || e.Round() != 0 {
		t.Fatal("ResetMeters incomplete")
	}
}

func TestDoubleTransmitPanics(t *testing.T) {
	e := NewEngine(graph.Path(3))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate transmitter")
		}
	}()
	step(e, []TX{{ID: 0}, {ID: 0}}, nil)
}

func TestTransmitAndListenPanics(t *testing.T) {
	e := NewEngine(graph.Path(3))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on transmit+listen")
		}
	}()
	step(e, []TX{{ID: 0}}, []int32{0})
}

func TestMsgBitsAccounting(t *testing.T) {
	if b := (Msg{}).Bits(); b != 8 {
		t.Fatalf("empty msg bits = %d", b)
	}
	if b := (Msg{A: 1}).Bits(); b != 9 {
		t.Fatalf("1-bit msg = %d", b)
	}
	m := Msg{Kind: 1, A: 1 << 40, B: 3, C: 255}
	if b := m.Bits(); b != 8+41+2+8 {
		t.Fatalf("bits = %d", b)
	}
}

func TestMsgViolationCounter(t *testing.T) {
	e := NewEngine(graph.Path(2), WithMaxMsgBits(16))
	step(e, []TX{{ID: 0, Msg: Msg{A: ^uint64(0)}}}, []int32{1})
	if e.MsgViolations() != 1 {
		t.Fatalf("violations = %d", e.MsgViolations())
	}
	// RN[∞]: no limit.
	e2 := NewEngine(graph.Path(2), WithMaxMsgBits(0))
	step(e2, []TX{{ID: 0, Msg: Msg{A: ^uint64(0)}}}, []int32{1})
	if e2.MsgViolations() != 0 {
		t.Fatalf("RN[inf] violations = %d", e2.MsgViolations())
	}
}

func TestDefaultMsgBits(t *testing.T) {
	if b := DefaultMsgBits(1024); b != 8*11+80 {
		t.Fatalf("DefaultMsgBits(1024) = %d", b)
	}
	if DefaultMsgBits(1) >= DefaultMsgBits(1<<20) {
		t.Fatal("budget should grow with n")
	}
}

func TestManyListenersDenseGraph(t *testing.T) {
	n := 50
	g := graph.Complete(n)
	e := NewEngine(g)
	listeners := make([]int32, 0, n-1)
	for v := 1; v < n; v++ {
		listeners = append(listeners, int32(v))
	}
	out := step(e, []TX{{ID: 0, Msg: Msg{A: 5}}}, listeners)
	for i, rx := range out {
		if !rx.OK || rx.Msg.A != 5 {
			t.Fatalf("clique listener %d missed broadcast", i)
		}
	}
}

func TestEnergySnapshotIsolated(t *testing.T) {
	e := NewEngine(graph.Path(2))
	snap := e.EnergySnapshot()
	snap[0] = 999
	if e.Energy(0) != 0 {
		t.Fatal("snapshot aliases internal state")
	}
}

func BenchmarkStepSparse(b *testing.B) {
	g := graph.Grid(64, 64)
	e := NewEngine(g)
	tx := []TX{{ID: 2000, Msg: Msg{A: 1}}}
	listeners := []int32{2001, 2002, 2064}
	out := make([]RX, len(listeners))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step(tx, listeners, out)
	}
}

func TestCollisionDetection(t *testing.T) {
	g := graph.Star(4) // center 0; leaves 1,2,3
	e := NewEngine(g, WithCollisionDetection())
	// Two transmitters: noise.
	out := step(e, []TX{{ID: 1, Msg: Msg{A: 1}}, {ID: 2, Msg: Msg{A: 2}}}, []int32{0})
	if out[0].OK || !out[0].Noise {
		t.Fatalf("CD listener should detect noise: %+v", out[0])
	}
	// Zero transmitters: silence.
	out = step(e, nil, []int32{0})
	if out[0].OK || out[0].Noise {
		t.Fatalf("CD listener should read silence: %+v", out[0])
	}
	// One transmitter: clean delivery, no noise flag.
	out = step(e, []TX{{ID: 3, Msg: Msg{A: 3}}}, []int32{0})
	if !out[0].OK || out[0].Noise || out[0].Msg.A != 3 {
		t.Fatalf("CD delivery wrong: %+v", out[0])
	}
}

func TestNoCollisionDetectionByDefault(t *testing.T) {
	g := graph.Star(4)
	e := NewEngine(g)
	out := step(e, []TX{{ID: 1}, {ID: 2}}, []int32{0})
	if out[0].Noise {
		t.Fatal("noise reported without CD enabled")
	}
}
