package radio

import (
	"sync/atomic"
	"testing"

	"repro/internal/graph"
)

// TestSimDecayProtocol writes the Decay transmission schedule directly on
// the goroutine Device API: leaves of a star contend, the center listens,
// and w.h.p. one pass isolates a sender — the same physics the vectorized
// decay package exercises, reached through the other front-end.
func TestSimDecayProtocol(t *testing.T) {
	const leaves = 32
	const slots = 6
	const passes = 8
	misses := 0
	for trial := 0; trial < 20; trial++ {
		g := graph.Star(leaves + 1)
		eng := NewEngine(g)
		sim := NewSim(eng, uint64(trial))
		var heard atomic.Bool
		sim.Run(func(d *Device) {
			if d.ID() == 0 {
				// Center: listen through all slots until something arrives.
				for p := 0; p < passes; p++ {
					for s := 1; s <= slots; s++ {
						if _, ok := d.Listen(); ok {
							heard.Store(true)
							return
						}
					}
				}
				return
			}
			// Leaf: per pass, transmit in one decay-distributed slot.
			for p := 0; p < passes; p++ {
				slot := d.Rand().GeometricSlot(slots)
				d.Idle(int64(slot - 1))
				d.Transmit(Msg{A: uint64(d.ID())})
				d.Idle(int64(slots - slot))
			}
		})
		if !heard.Load() {
			misses++
		}
	}
	if misses > 1 {
		t.Fatalf("decay-on-Sim failed %d/20 trials", misses)
	}
}

// TestSimCollisionDetectionAPI: with CD enabled at the engine, the Sim API
// still reports only OK (noise is engine-level information the blocking API
// does not surface), and energy accounting is unchanged.
func TestSimCollisionDetectionAPI(t *testing.T) {
	g := graph.Star(3)
	eng := NewEngine(g, WithCollisionDetection())
	sim := NewSim(eng, 5)
	sim.Run(func(d *Device) {
		if d.ID() == 0 {
			d.Listen()
			return
		}
		d.Transmit(Msg{A: uint64(d.ID())})
	})
	if eng.Energy(0) != 1 || eng.Energy(1) != 1 {
		t.Fatal("energy accounting changed under CD")
	}
}
