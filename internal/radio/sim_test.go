package radio

import (
	"sync/atomic"
	"testing"

	"repro/internal/graph"
)

func TestSimPingAcrossEdge(t *testing.T) {
	e := NewEngine(graph.Path(2))
	sim := NewSim(e, 1)
	var got atomic.Int64
	sim.Run(func(d *Device) {
		if d.ID() == 0 {
			d.Transmit(Msg{A: 77})
		} else {
			m, ok := d.Listen()
			if ok {
				got.Store(int64(m.A))
			}
		}
	})
	if got.Load() != 77 {
		t.Fatalf("device 1 heard %d, want 77", got.Load())
	}
}

func TestSimCollision(t *testing.T) {
	e := NewEngine(graph.Star(3)) // 0 center; 1,2 leaves
	sim := NewSim(e, 2)
	var heard atomic.Bool
	sim.Run(func(d *Device) {
		switch d.ID() {
		case 0:
			if _, ok := d.Listen(); ok {
				heard.Store(true)
			}
		default:
			d.Transmit(Msg{A: uint64(d.ID())})
		}
	})
	if heard.Load() {
		t.Fatal("center heard through a collision")
	}
}

func TestSimIdleAlignment(t *testing.T) {
	// Device 1 idles 5 rounds then transmits; device 0 idles 5 then listens.
	// The conservative coordinator must line the two up at round 5.
	e := NewEngine(graph.Path(2))
	sim := NewSim(e, 3)
	var got atomic.Int64
	sim.Run(func(d *Device) {
		d.Idle(5)
		if d.ID() == 1 {
			d.Transmit(Msg{A: 9})
		} else if m, ok := d.Listen(); ok {
			got.Store(int64(m.A))
		}
	})
	if got.Load() != 9 {
		t.Fatal("idle-skewed transmit/listen failed to align")
	}
	if e.Round() != 6 {
		t.Fatalf("engine round = %d, want 6", e.Round())
	}
	if e.TotalEnergy() != 2 {
		t.Fatalf("energy = %d, want 2", e.TotalEnergy())
	}
}

func TestSimMisalignedRoundsDoNotDeliver(t *testing.T) {
	e := NewEngine(graph.Path(2))
	sim := NewSim(e, 4)
	var ok0 atomic.Bool
	sim.Run(func(d *Device) {
		if d.ID() == 1 {
			d.Idle(1)
			d.Transmit(Msg{A: 1}) // round 1
		} else {
			_, ok := d.Listen() // round 0: nobody transmits
			ok0.Store(ok)
		}
	})
	if ok0.Load() {
		t.Fatal("listener heard a transmission from a different round")
	}
}

func TestSimFloodReachesEveryone(t *testing.T) {
	// A synchronous flood on a path: vertex 0 starts with the token; each
	// round, exactly the newest holder transmits. Everyone should learn the
	// token in order.
	n := 16
	e := NewEngine(graph.Path(n))
	sim := NewSim(e, 5)
	when := make([]int64, n)
	sim.Run(func(d *Device) {
		if d.ID() == 0 {
			d.Transmit(Msg{A: 123})
			when[0] = 0
			return
		}
		for {
			m, ok := d.Listen()
			if ok && m.A == 123 {
				when[d.ID()] = d.Now() - 1
				d.Transmit(m)
				return
			}
		}
	})
	for v := 1; v < n; v++ {
		if when[v] != int64(v-1) {
			t.Fatalf("vertex %d got token at round %d, want %d", v, when[v], v-1)
		}
	}
}

func TestSimDeterminism(t *testing.T) {
	run := func() []int64 {
		e := NewEngine(graph.Cycle(8))
		sim := NewSim(e, 42)
		sim.Run(func(d *Device) {
			for i := 0; i < 10; i++ {
				if d.Rand().Bernoulli(0.5) {
					d.Transmit(Msg{A: uint64(d.ID())})
				} else {
					d.Listen()
				}
			}
		})
		return e.EnergySnapshot()
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic energy at device %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestSimRandDiffersAcrossDevices(t *testing.T) {
	e := NewEngine(graph.Path(4))
	sim := NewSim(e, 7)
	vals := make([]uint64, 4)
	sim.Run(func(d *Device) {
		vals[d.ID()] = d.Rand().Uint64()
	})
	seen := map[uint64]bool{}
	for _, v := range vals {
		if seen[v] {
			t.Fatal("two devices share identical private randomness")
		}
		seen[v] = true
	}
}

func TestSimSequentialRuns(t *testing.T) {
	e := NewEngine(graph.Path(2))
	sim := NewSim(e, 9)
	sim.Run(func(d *Device) {
		if d.ID() == 0 {
			d.Transmit(Msg{A: 1})
		} else {
			d.Listen()
		}
	})
	r1 := e.Round()
	sim.Run(func(d *Device) {
		if d.ID() == 1 {
			d.Transmit(Msg{A: 2})
		} else {
			d.Listen()
		}
	})
	if e.Round() != r1+1 {
		t.Fatalf("second run did not resume the clock: %d -> %d", r1, e.Round())
	}
	if e.Energy(0) != 2 || e.Energy(1) != 2 {
		t.Fatal("meters did not accumulate across runs")
	}
}

func TestActionHeapOrdering(t *testing.T) {
	// Pushing in adversarial order must pop in (round, id) order — the
	// property that hands the coordinator its batches pre-sorted by ID.
	var h actionHeap
	var want []simAction
	for round := int64(4); round >= 0; round-- {
		for id := int32(9); id >= 0; id-- {
			h.push(simAction{round: round, id: id})
		}
	}
	for round := int64(0); round <= 4; round++ {
		for id := int32(0); id <= 9; id++ {
			want = append(want, simAction{round: round, id: id})
		}
	}
	for i, w := range want {
		if got := h.pop(); got != w {
			t.Fatalf("pop %d = %+v, want %+v", i, got, w)
		}
	}
	if len(h) != 0 {
		t.Fatalf("%d entries left in heap", len(h))
	}
}

func TestSimHaltWithoutActing(t *testing.T) {
	// Devices that halt immediately must not wedge the coordinator.
	e := NewEngine(graph.Cycle(6))
	sim := NewSim(e, 11)
	sim.Run(func(d *Device) {
		if d.ID()%2 == 0 {
			return // halt instantly
		}
		d.Listen()
	})
	if e.TotalEnergy() != 3 {
		t.Fatalf("energy = %d, want 3", e.TotalEnergy())
	}
}

// BenchmarkSimCoordinator measures the coordinator round loop under a
// protocol-shaped load: every device alternates randomized transmit, listen
// and idle stretches, so rounds have skewed batches and the pending set
// churns — the access pattern examples/rawproto exhibits.
func BenchmarkSimCoordinator(b *testing.B) {
	g := graph.Cycle(256)
	e := NewEngine(g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim := NewSim(e, uint64(i+1))
		sim.Run(func(d *Device) {
			for op := 0; op < 16; op++ {
				switch d.Rand().Intn(4) {
				case 0:
					d.Transmit(Msg{A: uint64(d.ID())})
				case 1:
					d.Idle(int64(d.Rand().Intn(3)))
				default:
					d.Listen()
				}
			}
		})
	}
}
