package stats

import (
	"math"
	"sort"
)

// Stream accumulates count, mean, variance (Welford's algorithm), minimum and
// maximum of a sequence of observations in O(1) space. It is the building
// block the harness Aggregator folds per-trial metrics with: numerically
// stable for long runs and cheap enough to keep one per metric per cell.
//
// The zero value is ready to use.
type Stream struct {
	n        int
	mean, m2 float64
	min, max float64
}

// Add folds one observation into the stream.
func (s *Stream) Add(x float64) {
	if s.n == 0 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	s.n++
	delta := x - s.mean
	s.mean += delta / float64(s.n)
	s.m2 += delta * (x - s.mean)
}

// N returns the number of observations.
func (s *Stream) N() int { return s.n }

// Mean returns the running arithmetic mean (0 before any observation).
func (s *Stream) Mean() float64 { return s.mean }

// Var returns the population variance (0 with fewer than two observations).
func (s *Stream) Var() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n)
}

// Stddev returns the population standard deviation.
func (s *Stream) Stddev() float64 { return math.Sqrt(s.Var()) }

// Min returns the smallest observation (0 before any observation).
func (s *Stream) Min() float64 { return s.min }

// Max returns the largest observation (0 before any observation).
func (s *Stream) Max() float64 { return s.max }

// PSquare estimates a single quantile of a stream in O(1) space with the P²
// algorithm (Jain & Chlamtac, CACM 1985). Until five observations have
// arrived it falls back to the exact nearest-rank quantile of the buffered
// prefix, so small trial counts — the common case for per-cell aggregation —
// are exact. The estimate is deterministic in the observation order.
//
// Construct with NewPSquare.
type PSquare struct {
	q    float64
	n    int
	h    [5]float64 // marker heights
	pos  [5]float64 // marker positions (1-based)
	want [5]float64 // desired marker positions
	inc  [5]float64 // desired-position increments
}

// NewPSquare returns a streaming estimator for the q-quantile, q in [0, 1].
func NewPSquare(q float64) *PSquare {
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	p := &PSquare{q: q}
	p.inc = [5]float64{0, q / 2, q, (1 + q) / 2, 1}
	return p
}

// Add folds one observation into the estimator.
func (p *PSquare) Add(x float64) {
	if p.n < 5 {
		p.h[p.n] = x
		p.n++
		if p.n == 5 {
			sort.Float64s(p.h[:])
			for i := range p.pos {
				p.pos[i] = float64(i + 1)
			}
			p.want = [5]float64{1, 1 + 2*p.q, 1 + 4*p.q, 3 + 2*p.q, 5}
		}
		return
	}
	// Find the cell k containing x, extending the extremes if needed.
	var k int
	switch {
	case x < p.h[0]:
		p.h[0] = x
		k = 0
	case x >= p.h[4]:
		p.h[4] = x
		k = 3
	default:
		for k = 0; k < 3; k++ {
			if x < p.h[k+1] {
				break
			}
		}
	}
	for i := k + 1; i < 5; i++ {
		p.pos[i]++
	}
	for i := range p.want {
		p.want[i] += p.inc[i]
	}
	p.n++
	// Adjust the three interior markers toward their desired positions.
	for i := 1; i <= 3; i++ {
		d := p.want[i] - p.pos[i]
		if (d >= 1 && p.pos[i+1]-p.pos[i] > 1) || (d <= -1 && p.pos[i-1]-p.pos[i] < -1) {
			s := 1.0
			if d < 0 {
				s = -1.0
			}
			hn := p.parabolic(i, s)
			if !(p.h[i-1] < hn && hn < p.h[i+1]) {
				hn = p.linear(i, s)
			}
			p.h[i] = hn
			p.pos[i] += s
		}
	}
}

// parabolic is the P² piecewise-parabolic height prediction for marker i
// moved by d ∈ {−1, +1}.
func (p *PSquare) parabolic(i int, d float64) float64 {
	return p.h[i] + d/(p.pos[i+1]-p.pos[i-1])*
		((p.pos[i]-p.pos[i-1]+d)*(p.h[i+1]-p.h[i])/(p.pos[i+1]-p.pos[i])+
			(p.pos[i+1]-p.pos[i]-d)*(p.h[i]-p.h[i-1])/(p.pos[i]-p.pos[i-1]))
}

// linear is the fallback height prediction when the parabola overshoots.
func (p *PSquare) linear(i int, d float64) float64 {
	j := i + int(d)
	return p.h[i] + d*(p.h[j]-p.h[i])/(p.pos[j]-p.pos[i])
}

// N returns the number of observations.
func (p *PSquare) N() int { return p.n }

// Value returns the current quantile estimate (0 before any observation).
func (p *PSquare) Value() float64 {
	if p.n == 0 {
		return 0
	}
	if p.n < 5 {
		buf := append([]float64(nil), p.h[:p.n]...)
		return Quantile(buf, p.q)
	}
	// h[0] and h[4] track the running extremes exactly; the interior
	// estimate h[2] is meaningless at q = 0 or 1.
	if p.q == 0 {
		return p.h[0]
	}
	if p.q == 1 {
		return p.h[4]
	}
	return p.h[2]
}
