// Package stats provides the statistics and presentation toolkit used by
// the experiment harness and drivers: summary statistics, streaming
// accumulators (Stream for moments and extrema, PSquare for quantiles
// without retaining observations), log-log least-squares fits for the
// scaling exponents quoted next to the paper's asymptotic claims, aligned
// text tables, CSV output, and the ASCII chart used to render the Figure 3
// time-evolution series.
//
// Everything here is deterministic formatting and arithmetic: rendering a
// table or folding a stream is a pure function of its inputs, with no
// locale, time, or map-iteration dependence — the last link in the chain
// that makes experiment output and persisted artifacts byte-reproducible.
// The streaming accumulators exist so aggregation over large sweeps runs in
// O(1) memory per (cell, metric) regardless of trial count.
package stats
