package stats

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestStreamMatchesBatch(t *testing.T) {
	r := rng.New(1)
	var xs []float64
	var s Stream
	for i := 0; i < 1000; i++ {
		x := r.Float64()*100 - 20
		xs = append(xs, x)
		s.Add(x)
	}
	if s.N() != len(xs) {
		t.Fatalf("N = %d, want %d", s.N(), len(xs))
	}
	if got, want := s.Mean(), Mean(xs); math.Abs(got-want) > 1e-9 {
		t.Fatalf("Mean = %v, want %v", got, want)
	}
	if got, want := s.Max(), Max(xs); got != want {
		t.Fatalf("Max = %v, want %v", got, want)
	}
	mn := xs[0]
	var sq float64
	for _, x := range xs {
		if x < mn {
			mn = x
		}
		d := x - s.Mean()
		sq += d * d
	}
	if got := s.Min(); got != mn {
		t.Fatalf("Min = %v, want %v", got, mn)
	}
	if got, want := s.Var(), sq/float64(len(xs)); math.Abs(got-want) > 1e-6 {
		t.Fatalf("Var = %v, want %v", got, want)
	}
	if got := s.Stddev(); math.Abs(got-math.Sqrt(s.Var())) > 1e-12 {
		t.Fatalf("Stddev inconsistent with Var: %v", got)
	}
}

func TestStreamDegenerate(t *testing.T) {
	var s Stream
	if s.Mean() != 0 || s.Var() != 0 || s.Min() != 0 || s.Max() != 0 {
		t.Fatal("empty stream should report zeros")
	}
	s.Add(7)
	if s.Mean() != 7 || s.Var() != 0 || s.Min() != 7 || s.Max() != 7 {
		t.Fatalf("single-sample stream wrong: %+v", s)
	}
}

func TestPSquareExactBelowFive(t *testing.T) {
	p := NewPSquare(0.5)
	if p.Value() != 0 {
		t.Fatal("empty estimator should report 0")
	}
	for _, x := range []float64{9, 1, 5} {
		p.Add(x)
	}
	if got := p.Value(); got != 5 {
		t.Fatalf("median of {9,1,5} = %v, want 5", got)
	}
}

func TestPSquareApproximatesQuantiles(t *testing.T) {
	for _, q := range []float64{0.1, 0.5, 0.9} {
		r := rng.New(42)
		p := NewPSquare(q)
		var xs []float64
		for i := 0; i < 5000; i++ {
			x := r.Float64()
			xs = append(xs, x)
			p.Add(x)
		}
		exact := Quantile(xs, q)
		if math.Abs(p.Value()-exact) > 0.02 {
			t.Fatalf("q=%v: estimate %v vs exact %v", q, p.Value(), exact)
		}
	}
}

func TestPSquareDeterministic(t *testing.T) {
	run := func() float64 {
		r := rng.New(7)
		p := NewPSquare(0.9)
		for i := 0; i < 777; i++ {
			p.Add(r.Float64() * 50)
		}
		return p.Value()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("same input order gave %v and %v", a, b)
	}
}

func TestPSquareExtremes(t *testing.T) {
	// q=0 and q=1 should track min and max closely on sorted-ish input.
	lo, hi := NewPSquare(0), NewPSquare(1)
	r := rng.New(3)
	mn, mx := math.Inf(1), math.Inf(-1)
	for i := 0; i < 2000; i++ {
		x := r.Float64()*10 - 5
		lo.Add(x)
		hi.Add(x)
		mn = math.Min(mn, x)
		mx = math.Max(mx, x)
	}
	if lo.Value() != mn {
		t.Fatalf("q=0 estimate %v, min %v", lo.Value(), mn)
	}
	if hi.Value() != mx {
		t.Fatalf("q=1 estimate %v, max %v", hi.Value(), mx)
	}
}
