package stats

import (
	"math"
	"strings"
	"testing"
)

func TestMeanMaxQuantile(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	if Mean(xs) != 2.5 {
		t.Fatalf("mean = %v", Mean(xs))
	}
	if Max(xs) != 4 {
		t.Fatalf("max = %v", Max(xs))
	}
	if Quantile(xs, 0) != 1 || Quantile(xs, 1) != 4 {
		t.Fatal("quantile extremes wrong")
	}
	if Mean(nil) != 0 || Max(nil) != 0 || Quantile(nil, 0.5) != 0 {
		t.Fatal("empty-input defaults wrong")
	}
}

func TestI64s(t *testing.T) {
	out := I64s([]int64{1, 2, 3})
	if len(out) != 3 || out[2] != 3 {
		t.Fatalf("I64s = %v", out)
	}
}

func TestFitPowerLawExact(t *testing.T) {
	xs := []float64{1, 2, 4, 8, 16}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 3 * math.Pow(x, 1.5)
	}
	e, c := FitPowerLaw(xs, ys)
	if math.Abs(e-1.5) > 1e-9 || math.Abs(c-3) > 1e-9 {
		t.Fatalf("fit = (%v, %v), want (1.5, 3)", e, c)
	}
}

func TestFitPowerLawDegenerate(t *testing.T) {
	if e, _ := FitPowerLaw([]float64{1}, []float64{1}); !math.IsNaN(e) {
		t.Fatal("single point should not fit")
	}
	if e, _ := FitPowerLaw([]float64{2, 2}, []float64{1, 5}); !math.IsNaN(e) {
		t.Fatal("vertical data should not fit")
	}
	// Non-positive samples skipped.
	e, _ := FitPowerLaw([]float64{0, 1, 2, 4}, []float64{-1, 2, 4, 8})
	if math.Abs(e-1) > 1e-9 {
		t.Fatalf("fit with skipped points = %v", e)
	}
}

func TestTableRender(t *testing.T) {
	tb := NewTable("demo", "n", "energy")
	tb.AddRowf(64, 123.456)
	tb.AddRow("1024", "9")
	var b strings.Builder
	tb.Render(&b)
	out := b.String()
	if !strings.Contains(out, "## demo") || !strings.Contains(out, "| n ") {
		t.Fatalf("render missing pieces:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	width := len(lines[1])
	for _, l := range lines[1:] {
		if len(l) != width {
			t.Fatalf("unaligned table:\n%s", out)
		}
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("demo", "a", "b")
	tb.AddRow("1", "2")
	var b strings.Builder
	tb.CSV(&b)
	if b.String() != "a,b\n1,2\n" {
		t.Fatalf("csv = %q", b.String())
	}
}

func TestChart(t *testing.T) {
	s1 := Series{Name: "upper", Mark: '*', Points: []float64{10, 8, 6, 4, 2, 0}}
	s2 := Series{Name: "lower", Mark: '.', Points: []float64{5, 4, 3, 2, 1, 0}}
	out := Chart(24, 8, s1, s2)
	if !strings.Contains(out, "*") || !strings.Contains(out, ".") {
		t.Fatalf("chart missing series:\n%s", out)
	}
	if !strings.Contains(out, "upper") || !strings.Contains(out, "> stage") {
		t.Fatalf("chart missing legend:\n%s", out)
	}
	if Chart(10, 4) != "(empty chart)\n" {
		t.Fatal("empty chart not handled")
	}
}
