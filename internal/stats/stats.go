package stats

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Max returns the maximum (0 for empty input).
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Quantile returns the q-quantile (q in [0,1]) by nearest-rank on a copy.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	idx := int(q * float64(len(cp)-1))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(cp) {
		idx = len(cp) - 1
	}
	return cp[idx]
}

// I64s converts int64 samples for the float helpers.
func I64s(xs []int64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = float64(x)
	}
	return out
}

// FitPowerLaw fits y = c·x^e by least squares on (log x, log y) and returns
// the exponent e and coefficient c. Non-positive samples are skipped; it
// needs at least two usable points (else it returns NaNs).
func FitPowerLaw(xs, ys []float64) (exponent, coeff float64) {
	var lx, ly []float64
	for i := range xs {
		if i < len(ys) && xs[i] > 0 && ys[i] > 0 {
			lx = append(lx, math.Log(xs[i]))
			ly = append(ly, math.Log(ys[i]))
		}
	}
	if len(lx) < 2 {
		return math.NaN(), math.NaN()
	}
	mx, my := Mean(lx), Mean(ly)
	var num, den float64
	for i := range lx {
		num += (lx[i] - mx) * (ly[i] - my)
		den += (lx[i] - mx) * (lx[i] - mx)
	}
	if den == 0 {
		return math.NaN(), math.NaN()
	}
	e := num / den
	return e, math.Exp(my - e*mx)
}

// Table renders aligned experiment tables.
type Table struct {
	Title   string
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, headers: headers}
}

// AddRow appends one formatted row; cells beyond the header count are kept.
func (t *Table) AddRow(cells ...string) {
	t.rows = append(t.rows, cells)
}

// AddRowf appends a row of fmt.Sprint-formatted values.
func (t *Table) AddRowf(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3g", v)
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.rows = append(t.rows, row)
}

// Render writes the table with aligned columns.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "## %s\n", t.Title)
	}
	line := func(cells []string) {
		parts := make([]string, len(widths))
		for i := range widths {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, "| "+strings.Join(parts, " | ")+" |")
	}
	line(t.headers)
	sep := make([]string, len(widths))
	for i, wd := range widths {
		sep[i] = strings.Repeat("-", wd)
	}
	line(sep)
	for _, r := range t.rows {
		line(r)
	}
	fmt.Fprintln(w)
}

// CSV writes the table as comma-separated values.
func (t *Table) CSV(w io.Writer) {
	fmt.Fprintln(w, strings.Join(t.headers, ","))
	for _, r := range t.rows {
		fmt.Fprintln(w, strings.Join(r, ","))
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Series is one named line of an ASCII chart.
type Series struct {
	Name   string
	Points []float64 // y per x index; NaN skips a point
	Mark   byte
}

// Chart renders multiple series over a shared x axis as ASCII art (used for
// the Figure 3 reproduction). Height is the number of text rows.
func Chart(width, height int, series ...Series) string {
	if width < 8 {
		width = 8
	}
	if height < 4 {
		height = 4
	}
	maxY := 0.0
	maxX := 0
	for _, s := range series {
		if len(s.Points) > maxX {
			maxX = len(s.Points)
		}
		for _, y := range s.Points {
			if !math.IsNaN(y) && y > maxY {
				maxY = y
			}
		}
	}
	if maxX == 0 || maxY == 0 {
		return "(empty chart)\n"
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for _, s := range series {
		for x, y := range s.Points {
			if math.IsNaN(y) || y < 0 {
				continue
			}
			col := x * (width - 1) / maxX
			row := height - 1 - int(y/maxY*float64(height-1))
			if row >= 0 && row < height && col >= 0 && col < width {
				grid[row][col] = s.Mark
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "y-max = %.0f\n", maxY)
	for _, row := range grid {
		b.WriteString("|")
		b.Write(row)
		b.WriteString("\n")
	}
	b.WriteString("+" + strings.Repeat("-", width) + "> stage\n")
	for _, s := range series {
		fmt.Fprintf(&b, "  %c = %s\n", s.Mark, s.Name)
	}
	return b.String()
}
