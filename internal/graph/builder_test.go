package graph

import (
	"sort"
	"testing"

	"repro/internal/rng"
)

// referenceCSR builds the (offsets, neighbors) arrays of an edge list the
// slow, obviously-correct way: per-vertex comparison sort plus dedupe. The
// counting-sort fast path in Builder.Graph must match it exactly.
func referenceCSR(n int, edges [][2]int32) ([]int32, []int32) {
	adj := make([][]int32, n)
	for _, e := range edges {
		u, v := e[0], e[1]
		if u == v {
			continue
		}
		adj[u] = append(adj[u], v)
		adj[v] = append(adj[v], u)
	}
	offsets := make([]int32, n+1)
	var neighbors []int32
	for v := 0; v < n; v++ {
		lst := adj[v]
		sort.Slice(lst, func(i, j int) bool { return lst[i] < lst[j] })
		offsets[v] = int32(len(neighbors))
		for i, x := range lst {
			if i == 0 || x != lst[i-1] {
				neighbors = append(neighbors, x)
			}
		}
	}
	offsets[n] = int32(len(neighbors))
	return offsets, neighbors
}

func TestBuilderCountingSortMatchesReference(t *testing.T) {
	r := rng.New(42)
	for trial := 0; trial < 50; trial++ {
		n := 1 + r.Intn(60)
		m := r.Intn(4 * n)
		edges := make([][2]int32, 0, m)
		for i := 0; i < m; i++ {
			edges = append(edges, [2]int32{int32(r.Intn(n)), int32(r.Intn(n))})
		}
		// Inject duplicates and self-loops deliberately.
		if m > 0 {
			edges = append(edges, edges[0], [2]int32{edges[0][1], edges[0][0]})
		}
		edges = append(edges, [2]int32{0, 0})

		g := FromEdges(n, edges)
		wantOff, wantAdj := referenceCSR(n, edges)
		if len(g.offsets) != len(wantOff) {
			t.Fatalf("n=%d: offsets length %d, want %d", n, len(g.offsets), len(wantOff))
		}
		for v, o := range wantOff {
			if g.offsets[v] != o {
				t.Fatalf("n=%d: offsets[%d] = %d, want %d", n, v, g.offsets[v], o)
			}
		}
		if len(g.neighbors) != len(wantAdj) {
			t.Fatalf("n=%d: neighbors length %d, want %d", n, len(g.neighbors), len(wantAdj))
		}
		for i, x := range wantAdj {
			if g.neighbors[i] != x {
				t.Fatalf("n=%d: neighbors[%d] = %d, want %d", n, i, g.neighbors[i], x)
			}
		}
		// MaxDegree must match the densest row.
		maxDeg := 0
		for v := 0; v < n; v++ {
			if d := int(wantOff[v+1] - wantOff[v]); d > maxDeg {
				maxDeg = d
			}
		}
		if g.MaxDegree() != maxDeg {
			t.Fatalf("n=%d: MaxDegree = %d, want %d", n, g.MaxDegree(), maxDeg)
		}
	}
}

func TestBuilderHintCapacity(t *testing.T) {
	b := NewBuilderHint(5, 4)
	for v := int32(0); v < 4; v++ {
		b.AddEdge(v, v+1)
	}
	if cap(b.src) != 8 || len(b.src) != 8 {
		t.Fatalf("hint of 4 edges: len/cap(src) = %d/%d, want 8/8", len(b.src), cap(b.src))
	}
	g := b.Graph()
	if g.M() != 4 || g.N() != 5 {
		t.Fatalf("got n=%d m=%d, want n=5 m=4", g.N(), g.M())
	}
}

// TestLog2CeilMatchesLoop pins Log2Ceil to the shift-loop definitions it
// replaced across the repository.
func TestLog2CeilMatchesLoop(t *testing.T) {
	loop := func(n int) int {
		lg := 0
		for 1<<lg < n {
			lg++
		}
		return lg
	}
	for n := 0; n < 1<<14; n++ {
		if got, want := Log2Ceil(n), loop(n); got != want {
			t.Fatalf("Log2Ceil(%d) = %d, want %d", n, got, want)
		}
	}
	for _, n := range []int{1 << 20, 1<<20 + 1, 1<<30 - 1, 1 << 30} {
		if got, want := Log2Ceil(n), loop(n); got != want {
			t.Fatalf("Log2Ceil(%d) = %d, want %d", n, got, want)
		}
	}
}

// graphsEqual reports structural equality of two graphs.
func graphsEqual(a, b *Graph) bool {
	if a.N() != b.N() || a.M() != b.M() {
		return false
	}
	for v := int32(0); int(v) < a.N(); v++ {
		x, y := a.Neighbors(v), b.Neighbors(v)
		if len(x) != len(y) {
			return false
		}
		for i := range x {
			if x[i] != y[i] {
				return false
			}
		}
	}
	return true
}

// TestBuilderResetMatchesFresh pins the pooled-builder contract: a builder
// Reset and refilled — across size changes, in both directions — produces
// graphs identical to a fresh builder's.
func TestBuilderResetMatchesFresh(t *testing.T) {
	pooled := NewBuilder(0)
	for _, n := range []int{17, 64, 9, 128, 0, 33} {
		r := rng.New(uint64(n + 1))
		edges := make([][2]int32, 0, 2*n)
		for i := 0; i < 2*n; i++ {
			u, v := int32(r.Intn(n)), int32(r.Intn(n))
			edges = append(edges, [2]int32{u, v})
		}
		want := FromEdges(n, edges)
		pooled.Reset(n)
		for _, e := range edges {
			if e[0] != e[1] {
				pooled.AddEdge(e[0], e[1])
			}
		}
		if got := pooled.Graph(); !graphsEqual(got, want) {
			t.Fatalf("n=%d: pooled builder graph differs from fresh", n)
		}
	}
}

// TestNamedIntoMatchesNamed pins the pooled registry path to the fresh one
// for every family, seeded or not.
func TestNamedIntoMatchesNamed(t *testing.T) {
	b := NewBuilder(0)
	for _, fam := range FamilyNames() {
		for _, seed := range []uint64{1, 7} {
			want, ok1 := Named(fam, 200, seed)
			got, ok2 := NamedInto(b, fam, 200, seed)
			if !ok1 || !ok2 {
				t.Fatalf("family %q unknown", fam)
			}
			if !graphsEqual(got, want) {
				t.Fatalf("family %q seed %d: NamedInto differs from Named", fam, seed)
			}
		}
	}
	if _, ok := NamedInto(b, "no-such-family", 10, 1); ok {
		t.Fatal("unknown family accepted")
	}
}

// TestBuilderResetSteadyStateAllocs is the pooled-builder allocation pin: a
// warmed builder rebuilding a same-size seeded tree must allocate only what
// the immutable result itself owns (offsets + neighbors + the Graph header)
// plus the generator's rng — under 8 allocations, where a cold build pays
// the accumulation arrays and the three counting-sort scratch slices on top.
func TestBuilderResetSteadyStateAllocs(t *testing.T) {
	const n = 4096
	b := FromDegreeHint(n, 2)
	seed := uint64(0)
	if _, ok := NamedInto(b, "tree", n, seed); !ok { // warm the pools
		t.Fatal("tree family missing")
	}
	pooled := testing.AllocsPerRun(20, func() {
		seed++
		NamedInto(b, "tree", n, seed)
	})
	fresh := testing.AllocsPerRun(20, func() {
		seed++
		Named("tree", n, seed)
	})
	if pooled > 8 {
		t.Fatalf("pooled seeded build allocates %v per graph, want <= 8", pooled)
	}
	if pooled >= fresh {
		t.Fatalf("pooled build (%v allocs) should beat fresh build (%v allocs)", pooled, fresh)
	}
}
