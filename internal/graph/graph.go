// Package graph provides the static undirected graphs on which radio networks
// are simulated: a compact CSR (compressed sparse row) representation, a
// mutable builder, generators for the workload families used in the
// experiments, and sequential reference algorithms (BFS, diameter,
// degeneracy) against which the distributed algorithms are validated.
package graph

import (
	"fmt"
	"math/bits"
	"sort"

	"repro/internal/scratch"
)

// Log2Ceil returns ⌈log₂ n⌉ for n ≥ 1 (0 for n ≤ 1). It is the shared
// bit-length helper behind message budgets, Decay pass counts and subset
// lengths, replacing the hand-rolled shift loops that used to be scattered
// across packages.
func Log2Ceil(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len64(uint64(n - 1))
}

// Graph is an immutable simple undirected graph in CSR form. Vertices are
// 0..N()-1. Adjacency lists are sorted, self-loop free and duplicate free.
type Graph struct {
	offsets   []int32
	neighbors []int32
	maxDeg    int
}

// N returns the number of vertices.
func (g *Graph) N() int { return len(g.offsets) - 1 }

// M returns the number of undirected edges.
func (g *Graph) M() int { return len(g.neighbors) / 2 }

// Degree returns the degree of v.
func (g *Graph) Degree(v int32) int {
	return int(g.offsets[v+1] - g.offsets[v])
}

// MaxDegree returns the maximum degree over all vertices (0 for empty graphs).
func (g *Graph) MaxDegree() int { return g.maxDeg }

// Neighbors returns the sorted adjacency list of v. The returned slice aliases
// internal storage and must not be modified.
func (g *Graph) Neighbors(v int32) []int32 {
	return g.neighbors[g.offsets[v]:g.offsets[v+1]]
}

// HasEdge reports whether {u, v} is an edge.
func (g *Graph) HasEdge(u, v int32) bool {
	adj := g.Neighbors(u)
	i := sort.Search(len(adj), func(i int) bool { return adj[i] >= v })
	return i < len(adj) && adj[i] == v
}

// NeighborsRange returns the sub-slice of Neighbors(v) whose values lie in
// [lo, hi). Adjacency lists are sorted, so the sub-range is located with two
// binary searches in O(log deg(v)); the result aliases internal storage and
// must not be modified. It is the per-shard adjacency view behind the radio
// engine's sharded step: a shard owning the ID range [lo, hi) marks exactly
// the neighbors this slice holds.
func (g *Graph) NeighborsRange(v, lo, hi int32) []int32 {
	adj := g.neighbors[g.offsets[v]:g.offsets[v+1]]
	a := sort.Search(len(adj), func(i int) bool { return adj[i] >= lo })
	b := a + sort.Search(len(adj)-a, func(i int) bool { return adj[a+i] >= hi })
	return adj[a:b]
}

// ShardBounds appends to buf the k+1 boundaries of a partition of the vertex
// range into k contiguous shards: shard s owns IDs [bounds[s], bounds[s+1]),
// with bounds[0] = 0 and bounds[k] = N(). Shards are balanced by work, not
// by vertex count: the weight of vertex v is deg(v) + 1, so a shard's share
// of (arcs + vertices) is within one vertex of total/k even on skewed degree
// distributions. Boundaries are found by binary search on the monotone
// prefix weight offsets[v] + v. k > N() yields trailing empty shards; the
// partition is always exhaustive and disjoint.
func (g *Graph) ShardBounds(k int, buf []int32) []int32 {
	if k < 1 {
		panic("graph: shard count must be >= 1")
	}
	n := int32(g.N())
	buf = append(buf[:0], 0)
	total := int64(len(g.neighbors)) + int64(n)
	for s := 1; s < k; s++ {
		target := total * int64(s) / int64(k)
		v := int32(sort.Search(int(n), func(v int) bool {
			return int64(g.offsets[v])+int64(v) >= target
		}))
		if prev := buf[len(buf)-1]; v < prev {
			v = prev
		}
		buf = append(buf, v)
	}
	return append(buf, n)
}

// ShardBoundsAligned is ShardBounds with every interior boundary rounded
// down to a multiple of align, so fixed-size blocks of vertex IDs — the
// radio engine's 64-vertex bitmap words — never straddle two shards. The
// partition stays exhaustive, disjoint and monotone, and balance degrades
// by at most one block per boundary. The final boundary remains N() even
// when unaligned: the trailing partial block belongs to the last non-empty
// shard alone.
func (g *Graph) ShardBoundsAligned(k int, align int32, buf []int32) []int32 {
	if align < 1 {
		panic("graph: shard alignment must be >= 1")
	}
	buf = g.ShardBounds(k, buf)
	for i := 1; i < len(buf)-1; i++ {
		buf[i] -= buf[i] % align
	}
	return buf
}

// Edges calls fn once per undirected edge {u, v} with u < v.
func (g *Graph) Edges(fn func(u, v int32)) {
	for u := int32(0); u < int32(g.N()); u++ {
		for _, v := range g.Neighbors(u) {
			if u < v {
				fn(u, v)
			}
		}
	}
}

// Builder accumulates edges and produces a Graph. Duplicate edges and
// self-loops are silently dropped when Graph is called.
//
// Edges are stored as a flat directed-arc list (each undirected edge appears
// once per direction), so accumulation is two appends with no per-vertex
// slice headers, and finalization is a two-pass counting sort rather than a
// comparison sort per vertex.
// A Builder may be reused across graphs via Reset: the arc arrays and the
// finalization scratch persist, so a pooled builder that has reached its
// working size accumulates and finalizes follow-up graphs with only the two
// allocations the immutable result itself owns (offsets and neighbors). The
// trial harness pools one builder per worker for exactly this: seeded-family
// sweeps stop paying a cold build per trial.
type Builder struct {
	n   int
	src []int32
	dst []int32

	// finalization scratch, reused across Graph calls.
	pos    []int32
	tmpSrc []int32
	tmpDst []int32
}

// NewBuilder returns a Builder for an n-vertex graph.
func NewBuilder(n int) *Builder {
	if n < 0 {
		panic("graph: negative vertex count")
	}
	return &Builder{n: n}
}

// NewBuilderHint returns a Builder for an n-vertex graph pre-sized for about
// edges undirected edges, so accumulation never reallocates when the hint is
// an upper bound.
func NewBuilderHint(n, edges int) *Builder {
	b := NewBuilder(n)
	if edges > 0 {
		b.src = make([]int32, 0, 2*edges)
		b.dst = make([]int32, 0, 2*edges)
	}
	return b
}

// FromDegreeHint returns a Builder pre-sized for an expected average degree —
// the generators' path to accumulation without reallocation.
func FromDegreeHint(n, avgDeg int) *Builder {
	return NewBuilderHint(n, (n*avgDeg+1)/2)
}

// N returns the number of vertices.
func (b *Builder) N() int { return b.n }

// Reset re-targets the builder at an empty n-vertex graph, keeping every
// backing array (arc accumulation and finalization scratch) for reuse. A
// builder after Reset(n) behaves exactly like NewBuilder(n).
func (b *Builder) Reset(n int) {
	if n < 0 {
		panic("graph: negative vertex count")
	}
	b.n = n
	b.src = b.src[:0]
	b.dst = b.dst[:0]
}

// AddEdge adds the undirected edge {u, v}. Out-of-range endpoints panic;
// self-loops are ignored.
func (b *Builder) AddEdge(u, v int32) {
	if u < 0 || v < 0 || int(u) >= b.n || int(v) >= b.n {
		panic(fmt.Sprintf("graph: edge {%d,%d} out of range [0,%d)", u, v, b.n))
	}
	if u == v {
		return
	}
	b.src = append(b.src, u, v)
	b.dst = append(b.dst, v, u)
}

// Graph finalizes the builder into an immutable Graph: a counting sort by
// destination followed by a stable counting sort by source leaves the arc
// list grouped by source with each row sorted by destination, after which one
// linear pass drops adjacent duplicates. Total work is O(n + m) with no
// comparison sorting.
func (b *Builder) Graph() *Graph {
	n, m := b.n, len(b.src)
	pos := scratch.Grow(b.pos, n+1)
	b.pos = pos
	for v := range pos {
		pos[v] = 0
	}

	// Pass 1: counting sort the arcs by destination.
	for _, d := range b.dst {
		pos[d]++
	}
	var sum int32
	for v := 0; v <= n; v++ {
		c := pos[v]
		pos[v] = sum
		sum += c
	}
	tmpSrc := scratch.Grow(b.tmpSrc, m)
	tmpDst := scratch.Grow(b.tmpDst, m)
	b.tmpSrc, b.tmpDst = tmpSrc, tmpDst
	for i := 0; i < m; i++ {
		d := b.dst[i]
		j := pos[d]
		pos[d]++
		tmpSrc[j] = b.src[i]
		tmpDst[j] = d
	}

	// Pass 2: stable counting sort by source; rows come out sorted by
	// destination because pass 1 ordered the input.
	for v := range pos {
		pos[v] = 0
	}
	for _, s := range b.src {
		pos[s]++
	}
	sum = 0
	for v := 0; v <= n; v++ {
		c := pos[v]
		pos[v] = sum
		sum += c
	}
	neighbors := make([]int32, m)
	for i := 0; i < m; i++ {
		s := tmpSrc[i]
		neighbors[pos[s]] = tmpDst[i]
		pos[s]++
	}

	// Per-row dedupe in place. After pass 2, pos[v] is the end of row v.
	g := &Graph{offsets: make([]int32, n+1)}
	var w, start int32
	for v := 0; v < n; v++ {
		g.offsets[v] = w
		prev := int32(-1)
		for i := start; i < pos[v]; i++ {
			if x := neighbors[i]; x != prev {
				neighbors[w] = x
				prev = x
				w++
			}
		}
		start = pos[v]
		if d := int(w - g.offsets[v]); d > g.maxDeg {
			g.maxDeg = d
		}
	}
	g.offsets[n] = w
	g.neighbors = neighbors[:w]
	return g
}

// FromEdges builds a graph directly from an edge list.
func FromEdges(n int, edges [][2]int32) *Graph {
	b := NewBuilderHint(n, len(edges))
	for _, e := range edges {
		b.AddEdge(e[0], e[1])
	}
	return b.Graph()
}
