// Package graph provides the static undirected graphs on which radio networks
// are simulated: a compact CSR (compressed sparse row) representation, a
// mutable builder, generators for the workload families used in the
// experiments, and sequential reference algorithms (BFS, diameter,
// degeneracy) against which the distributed algorithms are validated.
package graph

import (
	"fmt"
	"sort"
)

// Graph is an immutable simple undirected graph in CSR form. Vertices are
// 0..N()-1. Adjacency lists are sorted, self-loop free and duplicate free.
type Graph struct {
	offsets   []int32
	neighbors []int32
	maxDeg    int
}

// N returns the number of vertices.
func (g *Graph) N() int { return len(g.offsets) - 1 }

// M returns the number of undirected edges.
func (g *Graph) M() int { return len(g.neighbors) / 2 }

// Degree returns the degree of v.
func (g *Graph) Degree(v int32) int {
	return int(g.offsets[v+1] - g.offsets[v])
}

// MaxDegree returns the maximum degree over all vertices (0 for empty graphs).
func (g *Graph) MaxDegree() int { return g.maxDeg }

// Neighbors returns the sorted adjacency list of v. The returned slice aliases
// internal storage and must not be modified.
func (g *Graph) Neighbors(v int32) []int32 {
	return g.neighbors[g.offsets[v]:g.offsets[v+1]]
}

// HasEdge reports whether {u, v} is an edge.
func (g *Graph) HasEdge(u, v int32) bool {
	adj := g.Neighbors(u)
	i := sort.Search(len(adj), func(i int) bool { return adj[i] >= v })
	return i < len(adj) && adj[i] == v
}

// Edges calls fn once per undirected edge {u, v} with u < v.
func (g *Graph) Edges(fn func(u, v int32)) {
	for u := int32(0); u < int32(g.N()); u++ {
		for _, v := range g.Neighbors(u) {
			if u < v {
				fn(u, v)
			}
		}
	}
}

// Builder accumulates edges and produces a Graph. Duplicate edges and
// self-loops are silently dropped when Graph is called.
type Builder struct {
	n   int
	adj [][]int32
}

// NewBuilder returns a Builder for an n-vertex graph.
func NewBuilder(n int) *Builder {
	if n < 0 {
		panic("graph: negative vertex count")
	}
	return &Builder{n: n, adj: make([][]int32, n)}
}

// N returns the number of vertices.
func (b *Builder) N() int { return b.n }

// AddEdge adds the undirected edge {u, v}. Out-of-range endpoints panic;
// self-loops are ignored.
func (b *Builder) AddEdge(u, v int32) {
	if u < 0 || v < 0 || int(u) >= b.n || int(v) >= b.n {
		panic(fmt.Sprintf("graph: edge {%d,%d} out of range [0,%d)", u, v, b.n))
	}
	if u == v {
		return
	}
	b.adj[u] = append(b.adj[u], v)
	b.adj[v] = append(b.adj[v], u)
}

// Graph finalizes the builder into an immutable Graph.
func (b *Builder) Graph() *Graph {
	offsets := make([]int32, b.n+1)
	total := 0
	for v := 0; v < b.n; v++ {
		lst := b.adj[v]
		sort.Slice(lst, func(i, j int) bool { return lst[i] < lst[j] })
		// Dedupe in place.
		w := 0
		for i, x := range lst {
			if i == 0 || x != lst[i-1] {
				lst[w] = x
				w++
			}
		}
		b.adj[v] = lst[:w]
		total += w
	}
	g := &Graph{
		offsets:   offsets,
		neighbors: make([]int32, 0, total),
	}
	for v := 0; v < b.n; v++ {
		g.offsets[v] = int32(len(g.neighbors))
		g.neighbors = append(g.neighbors, b.adj[v]...)
		if d := len(b.adj[v]); d > g.maxDeg {
			g.maxDeg = d
		}
	}
	g.offsets[b.n] = int32(len(g.neighbors))
	return g
}

// FromEdges builds a graph directly from an edge list.
func FromEdges(n int, edges [][2]int32) *Graph {
	b := NewBuilder(n)
	for _, e := range edges {
		b.AddEdge(e[0], e[1])
	}
	return b.Graph()
}
