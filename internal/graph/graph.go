// Package graph provides the static undirected graphs on which radio networks
// are simulated: a compact CSR (compressed sparse row) representation, a
// mutable builder, generators for the workload families used in the
// experiments, and sequential reference algorithms (BFS, diameter,
// degeneracy) against which the distributed algorithms are validated.
package graph

import (
	"fmt"
	"math/bits"
	"sort"
)

// Log2Ceil returns ⌈log₂ n⌉ for n ≥ 1 (0 for n ≤ 1). It is the shared
// bit-length helper behind message budgets, Decay pass counts and subset
// lengths, replacing the hand-rolled shift loops that used to be scattered
// across packages.
func Log2Ceil(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len64(uint64(n - 1))
}

// Graph is an immutable simple undirected graph in CSR form. Vertices are
// 0..N()-1. Adjacency lists are sorted, self-loop free and duplicate free.
type Graph struct {
	offsets   []int32
	neighbors []int32
	maxDeg    int
}

// N returns the number of vertices.
func (g *Graph) N() int { return len(g.offsets) - 1 }

// M returns the number of undirected edges.
func (g *Graph) M() int { return len(g.neighbors) / 2 }

// Degree returns the degree of v.
func (g *Graph) Degree(v int32) int {
	return int(g.offsets[v+1] - g.offsets[v])
}

// MaxDegree returns the maximum degree over all vertices (0 for empty graphs).
func (g *Graph) MaxDegree() int { return g.maxDeg }

// Neighbors returns the sorted adjacency list of v. The returned slice aliases
// internal storage and must not be modified.
func (g *Graph) Neighbors(v int32) []int32 {
	return g.neighbors[g.offsets[v]:g.offsets[v+1]]
}

// HasEdge reports whether {u, v} is an edge.
func (g *Graph) HasEdge(u, v int32) bool {
	adj := g.Neighbors(u)
	i := sort.Search(len(adj), func(i int) bool { return adj[i] >= v })
	return i < len(adj) && adj[i] == v
}

// Edges calls fn once per undirected edge {u, v} with u < v.
func (g *Graph) Edges(fn func(u, v int32)) {
	for u := int32(0); u < int32(g.N()); u++ {
		for _, v := range g.Neighbors(u) {
			if u < v {
				fn(u, v)
			}
		}
	}
}

// Builder accumulates edges and produces a Graph. Duplicate edges and
// self-loops are silently dropped when Graph is called.
//
// Edges are stored as a flat directed-arc list (each undirected edge appears
// once per direction), so accumulation is two appends with no per-vertex
// slice headers, and finalization is a two-pass counting sort rather than a
// comparison sort per vertex.
type Builder struct {
	n   int
	src []int32
	dst []int32
}

// NewBuilder returns a Builder for an n-vertex graph.
func NewBuilder(n int) *Builder {
	if n < 0 {
		panic("graph: negative vertex count")
	}
	return &Builder{n: n}
}

// NewBuilderHint returns a Builder for an n-vertex graph pre-sized for about
// edges undirected edges, so accumulation never reallocates when the hint is
// an upper bound.
func NewBuilderHint(n, edges int) *Builder {
	b := NewBuilder(n)
	if edges > 0 {
		b.src = make([]int32, 0, 2*edges)
		b.dst = make([]int32, 0, 2*edges)
	}
	return b
}

// FromDegreeHint returns a Builder pre-sized for an expected average degree —
// the generators' path to accumulation without reallocation.
func FromDegreeHint(n, avgDeg int) *Builder {
	return NewBuilderHint(n, (n*avgDeg+1)/2)
}

// N returns the number of vertices.
func (b *Builder) N() int { return b.n }

// AddEdge adds the undirected edge {u, v}. Out-of-range endpoints panic;
// self-loops are ignored.
func (b *Builder) AddEdge(u, v int32) {
	if u < 0 || v < 0 || int(u) >= b.n || int(v) >= b.n {
		panic(fmt.Sprintf("graph: edge {%d,%d} out of range [0,%d)", u, v, b.n))
	}
	if u == v {
		return
	}
	b.src = append(b.src, u, v)
	b.dst = append(b.dst, v, u)
}

// Graph finalizes the builder into an immutable Graph: a counting sort by
// destination followed by a stable counting sort by source leaves the arc
// list grouped by source with each row sorted by destination, after which one
// linear pass drops adjacent duplicates. Total work is O(n + m) with no
// comparison sorting.
func (b *Builder) Graph() *Graph {
	n, m := b.n, len(b.src)
	pos := make([]int32, n+1)

	// Pass 1: counting sort the arcs by destination.
	for _, d := range b.dst {
		pos[d]++
	}
	var sum int32
	for v := 0; v <= n; v++ {
		c := pos[v]
		pos[v] = sum
		sum += c
	}
	tmpSrc := make([]int32, m)
	tmpDst := make([]int32, m)
	for i := 0; i < m; i++ {
		d := b.dst[i]
		j := pos[d]
		pos[d]++
		tmpSrc[j] = b.src[i]
		tmpDst[j] = d
	}

	// Pass 2: stable counting sort by source; rows come out sorted by
	// destination because pass 1 ordered the input.
	for v := range pos {
		pos[v] = 0
	}
	for _, s := range b.src {
		pos[s]++
	}
	sum = 0
	for v := 0; v <= n; v++ {
		c := pos[v]
		pos[v] = sum
		sum += c
	}
	neighbors := make([]int32, m)
	for i := 0; i < m; i++ {
		s := tmpSrc[i]
		neighbors[pos[s]] = tmpDst[i]
		pos[s]++
	}

	// Per-row dedupe in place. After pass 2, pos[v] is the end of row v.
	g := &Graph{offsets: make([]int32, n+1)}
	var w, start int32
	for v := 0; v < n; v++ {
		g.offsets[v] = w
		prev := int32(-1)
		for i := start; i < pos[v]; i++ {
			if x := neighbors[i]; x != prev {
				neighbors[w] = x
				prev = x
				w++
			}
		}
		start = pos[v]
		if d := int(w - g.offsets[v]); d > g.maxDeg {
			g.maxDeg = d
		}
	}
	g.offsets[n] = w
	g.neighbors = neighbors[:w]
	return g
}

// FromEdges builds a graph directly from an edge list.
func FromEdges(n int, edges [][2]int32) *Graph {
	b := NewBuilderHint(n, len(edges))
	for _, e := range edges {
		b.AddEdge(e[0], e[1])
	}
	return b.Graph()
}
