package graph

// Unreachable marks vertices not reached by a BFS.
const Unreachable = int32(-1)

// BFS returns the hop distances from src to every vertex (Unreachable where
// no path exists). It is the sequential reference against which all radio
// BFS implementations are validated.
func BFS(g *Graph, src int32) []int32 {
	return MultiSourceBFS(g, []int32{src})
}

// MultiSourceBFS returns, for each vertex, the hop distance to the nearest
// source (Unreachable where no path exists). Duplicate sources are allowed.
func MultiSourceBFS(g *Graph, srcs []int32) []int32 {
	dist := make([]int32, g.N())
	for i := range dist {
		dist[i] = Unreachable
	}
	queue := make([]int32, 0, g.N())
	for _, s := range srcs {
		if dist[s] == Unreachable {
			dist[s] = 0
			queue = append(queue, s)
		}
	}
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		for _, v := range g.Neighbors(u) {
			if dist[v] == Unreachable {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// BFSTree returns distances and a parent array (parent[src] = src,
// parent = -1 where unreachable). Parents are the minimum-ID neighbor on a
// shortest path, making the tree deterministic.
func BFSTree(g *Graph, src int32) (dist, parent []int32) {
	dist = BFS(g, src)
	parent = make([]int32, g.N())
	for v := range parent {
		parent[v] = -1
	}
	parent[src] = src
	for v := int32(0); v < int32(g.N()); v++ {
		if dist[v] <= 0 {
			continue
		}
		for _, u := range g.Neighbors(v) {
			if dist[u] == dist[v]-1 {
				parent[v] = u
				break // neighbors are sorted, so this is the min-ID parent
			}
		}
	}
	return dist, parent
}

// Eccentricity returns the maximum finite distance from src, or Unreachable
// if some vertex is unreachable from src.
func Eccentricity(g *Graph, src int32) int32 {
	dist := BFS(g, src)
	ecc := int32(0)
	for _, d := range dist {
		if d == Unreachable {
			return Unreachable
		}
		if d > ecc {
			ecc = d
		}
	}
	return ecc
}

// Diameter computes the exact diameter by running a BFS from every vertex.
// It returns Unreachable for disconnected graphs. O(n·m); intended for the
// moderate sizes used in tests and experiments.
func Diameter(g *Graph) int32 {
	diam := int32(0)
	for v := int32(0); v < int32(g.N()); v++ {
		ecc := Eccentricity(g, v)
		if ecc == Unreachable {
			return Unreachable
		}
		if ecc > diam {
			diam = ecc
		}
	}
	return diam
}

// DoubleSweep returns a lower bound on the diameter using two BFS sweeps:
// the eccentricity of a farthest vertex from src. Exact on trees.
func DoubleSweep(g *Graph, src int32) int32 {
	dist := BFS(g, src)
	far := src
	for v := int32(0); v < int32(g.N()); v++ {
		if dist[v] != Unreachable && dist[v] > dist[far] {
			far = v
		}
	}
	return Eccentricity(g, far)
}

// IsConnected reports whether g is connected (true for the empty and
// single-vertex graphs).
func IsConnected(g *Graph) bool {
	if g.N() == 0 {
		return true
	}
	dist := BFS(g, 0)
	for _, d := range dist {
		if d == Unreachable {
			return false
		}
	}
	return true
}

// Components returns a component ID per vertex (IDs are 0..k-1 in order of
// discovery) and the number of components.
func Components(g *Graph) ([]int32, int) {
	comp := make([]int32, g.N())
	for i := range comp {
		comp[i] = -1
	}
	var queue []int32
	next := int32(0)
	for s := int32(0); s < int32(g.N()); s++ {
		if comp[s] != -1 {
			continue
		}
		comp[s] = next
		queue = append(queue[:0], s)
		for head := 0; head < len(queue); head++ {
			u := queue[head]
			for _, v := range g.Neighbors(u) {
				if comp[v] == -1 {
					comp[v] = next
					queue = append(queue, v)
				}
			}
		}
		next++
	}
	return comp, int(next)
}

// Degeneracy returns the degeneracy of g (the maximum, over all subgraphs,
// of the minimum degree), computed by the standard peeling algorithm.
// The arboricity of g lies in [⌈degeneracy/2⌉, degeneracy], which is how the
// O(log n)-arboricity claim of Theorem 5.2 is checked.
func Degeneracy(g *Graph) int {
	n := g.N()
	if n == 0 {
		return 0
	}
	deg := make([]int, n)
	maxDeg := 0
	for v := 0; v < n; v++ {
		deg[v] = g.Degree(int32(v))
		if deg[v] > maxDeg {
			maxDeg = deg[v]
		}
	}
	// Bucket queue over degrees.
	buckets := make([][]int32, maxDeg+1)
	for v := 0; v < n; v++ {
		buckets[deg[v]] = append(buckets[deg[v]], int32(v))
	}
	removed := make([]bool, n)
	degeneracy, cur := 0, 0
	for count := 0; count < n; count++ {
		if cur > 0 {
			cur-- // degrees drop by at most one per removal
		}
		var v int32 = -1
		for {
			for cur <= maxDeg && len(buckets[cur]) == 0 {
				cur++
			}
			if cur > maxDeg {
				break
			}
			b := buckets[cur]
			cand := b[len(b)-1]
			buckets[cur] = b[:len(b)-1]
			if !removed[cand] && deg[cand] == cur {
				v = cand
				break
			}
		}
		if v == -1 {
			break
		}
		if cur > degeneracy {
			degeneracy = cur
		}
		removed[v] = true
		for _, u := range g.Neighbors(v) {
			if !removed[u] {
				deg[u]--
				buckets[deg[u]] = append(buckets[deg[u]], u)
			}
		}
	}
	return degeneracy
}

// DistanceHistogram returns counts of distances from src: hist[d] = number of
// vertices at distance d. Unreachable vertices are not counted.
func DistanceHistogram(g *Graph, src int32) []int {
	dist := BFS(g, src)
	var maxD int32
	for _, d := range dist {
		if d > maxD {
			maxD = d
		}
	}
	hist := make([]int, maxD+1)
	for _, d := range dist {
		if d != Unreachable {
			hist[d]++
		}
	}
	return hist
}
