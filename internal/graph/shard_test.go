package graph

import (
	"testing"

	"repro/internal/rng"
)

// shardTestGraphs builds topologies that stress the partition math: skewed
// degrees (star), regular shapes, randomness, degree-0 vertices, and the
// empty graph.
func shardTestGraphs() map[string]*Graph {
	withIsolated := func(g *Graph, extra int) *Graph {
		b := NewBuilderHint(g.N()+extra, g.M())
		g.Edges(func(u, v int32) { b.AddEdge(u, v) })
		return b.Graph()
	}
	r := rng.New(5)
	return map[string]*Graph{
		"empty":         NewBuilder(0).Graph(),
		"singleton":     NewBuilder(1).Graph(),
		"star":          Star(300),
		"path":          Path(97),
		"complete":      Complete(40),
		"tree+isolated": withIsolated(RandomTree(200, r), 31),
		"gnp":           ConnectedGNP(150, 0.05, r),
	}
}

// TestShardBoundsPartition checks the ownership ranges are a partition of
// the vertex set for every shard count, including k = 1, k = n and k > n.
func TestShardBoundsPartition(t *testing.T) {
	for name, g := range shardTestGraphs() {
		n := int32(g.N())
		for _, k := range []int{1, 2, 3, 5, 16, g.N(), g.N() + 7} {
			if k < 1 {
				continue
			}
			bounds := g.ShardBounds(k, nil)
			if len(bounds) != k+1 {
				t.Fatalf("%s k=%d: %d boundaries, want %d", name, k, len(bounds), k+1)
			}
			if bounds[0] != 0 || bounds[k] != n {
				t.Fatalf("%s k=%d: bounds span [%d, %d], want [0, %d]", name, k, bounds[0], bounds[k], n)
			}
			for s := 0; s < k; s++ {
				if bounds[s] > bounds[s+1] {
					t.Fatalf("%s k=%d: boundary %d decreases: %v", name, k, s, bounds)
				}
			}
		}
	}
}

// TestShardCoverageExactlyOnce is the shard boundary property test: for
// every vertex, concatenating its per-shard adjacency sub-ranges over the
// partition must reproduce its full neighbor list exactly — every
// (transmitter, neighbor) pair visited exactly once, none twice, none
// skipped. This includes degree-0 vertices (all sub-ranges empty), edges
// whose endpoints share one shard, and empty shards from k > n.
func TestShardCoverageExactlyOnce(t *testing.T) {
	for name, g := range shardTestGraphs() {
		for _, k := range []int{1, 2, 3, 7, 16, g.N() + 3} {
			if k < 1 {
				continue
			}
			bounds := g.ShardBounds(k, nil)
			for v := int32(0); int(v) < g.N(); v++ {
				var got []int32
				for s := 0; s < k; s++ {
					got = append(got, g.NeighborsRange(v, bounds[s], bounds[s+1])...)
				}
				want := g.Neighbors(v)
				if len(got) != len(want) {
					t.Fatalf("%s k=%d v=%d: %d neighbors covered, want %d", name, k, v, len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("%s k=%d v=%d: covered neighbor %d = %d, want %d", name, k, v, i, got[i], want[i])
					}
				}
			}
		}
	}
}

// TestShardBoundsAligned checks the aligned variant keeps the partition
// properties — exhaustive, disjoint, monotone, k+1 boundaries — while every
// interior boundary is a multiple of align, and that it is exactly
// ShardBounds with interior boundaries rounded down.
func TestShardBoundsAligned(t *testing.T) {
	for name, g := range shardTestGraphs() {
		n := int32(g.N())
		for _, k := range []int{1, 2, 3, 5, 16, g.N(), g.N() + 7} {
			if k < 1 {
				continue
			}
			for _, align := range []int32{1, 8, 64} {
				got := g.ShardBoundsAligned(k, align, nil)
				want := g.ShardBounds(k, nil)
				if len(got) != k+1 {
					t.Fatalf("%s k=%d align=%d: %d boundaries, want %d", name, k, align, len(got), k+1)
				}
				if got[0] != 0 || got[k] != n {
					t.Fatalf("%s k=%d align=%d: bounds span [%d, %d], want [0, %d]", name, k, align, got[0], got[k], n)
				}
				for s := 0; s < k; s++ {
					if got[s] > got[s+1] {
						t.Fatalf("%s k=%d align=%d: boundary %d decreases: %v", name, k, align, s, got)
					}
				}
				for i := 1; i < k; i++ {
					if got[i]%align != 0 {
						t.Fatalf("%s k=%d align=%d: interior boundary %d = %d not aligned", name, k, align, i, got[i])
					}
					if exp := want[i] - want[i]%align; got[i] != exp {
						t.Fatalf("%s k=%d align=%d: boundary %d = %d, want ShardBounds %d rounded to %d", name, k, align, i, got[i], want[i], exp)
					}
				}
			}
		}
	}
}

// TestShardBoundsAlignedPanics pins the align validation.
func TestShardBoundsAlignedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ShardBoundsAligned(1, 0, nil) did not panic")
		}
	}()
	Path(4).ShardBoundsAligned(1, 0, nil)
}

// TestNeighborsRangeSlices pins NeighborsRange against a filter of the full
// list for arbitrary (not just boundary-aligned) ranges.
func TestNeighborsRangeSlices(t *testing.T) {
	g := ConnectedGNP(120, 0.08, rng.New(11))
	r := rng.New(12)
	for trial := 0; trial < 500; trial++ {
		v := int32(r.Intn(g.N()))
		a := int32(r.Intn(g.N() + 1))
		b := a + int32(r.Intn(g.N()+1-int(a)))
		var want []int32
		for _, u := range g.Neighbors(v) {
			if u >= a && u < b {
				want = append(want, u)
			}
		}
		got := g.NeighborsRange(v, a, b)
		if len(got) != len(want) {
			t.Fatalf("NeighborsRange(%d, %d, %d): %v, want %v", v, a, b, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("NeighborsRange(%d, %d, %d): %v, want %v", v, a, b, got, want)
			}
		}
	}
}

// TestShardBoundsBalance checks the arc-balancing property on a skewed
// graph: no shard owns more than total/k + the heaviest single vertex.
func TestShardBoundsBalance(t *testing.T) {
	g := Star(10000)
	k := 8
	bounds := g.ShardBounds(k, nil)
	total := int64(2*g.M() + g.N())
	limit := total/int64(k) + int64(g.MaxDegree()) + 1
	for s := 0; s < k; s++ {
		var w int64
		for v := bounds[s]; v < bounds[s+1]; v++ {
			w += int64(g.Degree(v)) + 1
		}
		if w > limit {
			t.Fatalf("shard %d weight %d exceeds %d (total %d, k %d)", s, w, limit, total, k)
		}
	}
}
