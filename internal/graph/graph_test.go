package graph

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestBuilderDedupAndSort(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 0) // duplicate reversed
	b.AddEdge(0, 1) // duplicate
	b.AddEdge(2, 2) // self-loop dropped
	b.AddEdge(3, 1)
	g := b.Graph()
	if g.M() != 2 {
		t.Fatalf("M = %d, want 2", g.M())
	}
	if got := g.Neighbors(1); len(got) != 2 || got[0] != 0 || got[1] != 3 {
		t.Fatalf("Neighbors(1) = %v, want [0 3]", got)
	}
	if g.Degree(2) != 0 {
		t.Fatalf("self-loop not dropped: deg(2) = %d", g.Degree(2))
	}
}

func TestBuilderPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range edge")
		}
	}()
	NewBuilder(2).AddEdge(0, 5)
}

func TestHasEdge(t *testing.T) {
	g := Path(5)
	for v := int32(0); v < 4; v++ {
		if !g.HasEdge(v, v+1) || !g.HasEdge(v+1, v) {
			t.Fatalf("missing path edge {%d,%d}", v, v+1)
		}
	}
	if g.HasEdge(0, 2) {
		t.Fatal("unexpected edge {0,2}")
	}
}

func TestEdgesIteration(t *testing.T) {
	g := Cycle(6)
	count := 0
	g.Edges(func(u, v int32) {
		if u >= v {
			t.Fatalf("Edges yielded u >= v: {%d,%d}", u, v)
		}
		count++
	})
	if count != 6 {
		t.Fatalf("cycle(6) edge count = %d", count)
	}
}

func TestMaxDegree(t *testing.T) {
	if d := Star(10).MaxDegree(); d != 9 {
		t.Fatalf("star max degree = %d", d)
	}
	if d := Path(10).MaxDegree(); d != 2 {
		t.Fatalf("path max degree = %d", d)
	}
	if d := NewBuilder(0).Graph().MaxDegree(); d != 0 {
		t.Fatalf("empty graph max degree = %d", d)
	}
}

func TestBFSPath(t *testing.T) {
	g := Path(7)
	dist := BFS(g, 0)
	for v := int32(0); v < 7; v++ {
		if dist[v] != v {
			t.Fatalf("dist[%d] = %d", v, dist[v])
		}
	}
}

func TestBFSDisconnected(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(2, 3)
	dist := BFS(b.Graph(), 0)
	if dist[2] != Unreachable || dist[3] != Unreachable {
		t.Fatalf("expected unreachable, got %v", dist)
	}
}

func TestMultiSourceBFS(t *testing.T) {
	g := Path(10)
	dist := MultiSourceBFS(g, []int32{0, 9})
	want := []int32{0, 1, 2, 3, 4, 4, 3, 2, 1, 0}
	for v, d := range dist {
		if d != want[v] {
			t.Fatalf("dist[%d] = %d, want %d", v, d, want[v])
		}
	}
}

func TestMultiSourceDuplicates(t *testing.T) {
	g := Cycle(8)
	a := MultiSourceBFS(g, []int32{3})
	b := MultiSourceBFS(g, []int32{3, 3, 3})
	for v := range a {
		if a[v] != b[v] {
			t.Fatal("duplicate sources changed distances")
		}
	}
}

func TestBFSTreeParents(t *testing.T) {
	g := Grid(4, 4)
	dist, parent := BFSTree(g, 0)
	for v := int32(1); v < int32(g.N()); v++ {
		p := parent[v]
		if p < 0 {
			t.Fatalf("vertex %d has no parent", v)
		}
		if dist[p] != dist[v]-1 {
			t.Fatalf("parent level mismatch at %d", v)
		}
		if !g.HasEdge(v, p) {
			t.Fatalf("parent of %d not adjacent", v)
		}
	}
	if parent[0] != 0 {
		t.Fatal("root parent should be itself")
	}
}

func TestDiameterKnownFamilies(t *testing.T) {
	cases := []struct {
		name string
		g    *Graph
		want int32
	}{
		{"path10", Path(10), 9},
		{"cycle10", Cycle(10), 5},
		{"cycle9", Cycle(9), 4},
		{"grid3x5", Grid(3, 5), 6},
		{"star8", Star(8), 2},
		{"complete6", Complete(6), 1},
		{"kminus", CompleteMinusEdge(6, 1, 4), 2},
		{"hypercube4", Hypercube(4), 4},
		{"single", Path(1), 0},
	}
	for _, c := range cases {
		if got := Diameter(c.g); got != c.want {
			t.Errorf("%s: diameter = %d, want %d", c.name, got, c.want)
		}
	}
}

func TestDiameterDisconnected(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge(0, 1)
	if Diameter(b.Graph()) != Unreachable {
		t.Fatal("disconnected diameter should be Unreachable")
	}
}

func TestDoubleSweepLowerBound(t *testing.T) {
	r := rng.New(7)
	for trial := 0; trial < 20; trial++ {
		g := ConnectedGNP(60, 0.06, r)
		diam := Diameter(g)
		ds := DoubleSweep(g, int32(r.Intn(60)))
		if ds > diam {
			t.Fatalf("double sweep %d exceeds diameter %d", ds, diam)
		}
		if ds < diam/2 {
			t.Fatalf("double sweep %d below diam/2 (diam=%d)", ds, diam)
		}
	}
}

func TestDoubleSweepExactOnTrees(t *testing.T) {
	r := rng.New(9)
	for trial := 0; trial < 20; trial++ {
		g := RandomTree(50, r)
		if ds, diam := DoubleSweep(g, int32(r.Intn(50))), Diameter(g); ds != diam {
			t.Fatalf("double sweep on tree = %d, diameter = %d", ds, diam)
		}
	}
}

func TestComponents(t *testing.T) {
	b := NewBuilder(6)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(4, 5)
	comp, k := Components(b.Graph())
	if k != 3 {
		t.Fatalf("components = %d, want 3", k)
	}
	if comp[0] != comp[2] || comp[0] == comp[3] || comp[4] != comp[5] {
		t.Fatalf("bad component labels %v", comp)
	}
}

func TestDegeneracy(t *testing.T) {
	cases := []struct {
		name string
		g    *Graph
		want int
	}{
		{"tree", BinaryTree(31), 1},
		{"cycle", Cycle(10), 2},
		{"complete5", Complete(5), 4},
		{"grid", Grid(5, 5), 2},
		{"empty", NewBuilder(3).Graph(), 0},
	}
	for _, c := range cases {
		if got := Degeneracy(c.g); got != c.want {
			t.Errorf("%s: degeneracy = %d, want %d", c.name, got, c.want)
		}
	}
}

func TestDistanceHistogram(t *testing.T) {
	hist := DistanceHistogram(Path(5), 0)
	want := []int{1, 1, 1, 1, 1}
	if len(hist) != len(want) {
		t.Fatalf("hist = %v", hist)
	}
	hist2 := DistanceHistogram(Star(5), 0)
	if hist2[0] != 1 || hist2[1] != 4 {
		t.Fatalf("star hist = %v", hist2)
	}
}

func TestGNPEdgeProbability(t *testing.T) {
	r := rng.New(11)
	const n, p = 300, 0.05
	total := 0
	const trials = 10
	for i := 0; i < trials; i++ {
		total += GNP(n, p, r).M()
	}
	want := p * float64(n) * float64(n-1) / 2
	got := float64(total) / trials
	if got < 0.85*want || got > 1.15*want {
		t.Fatalf("G(n,p) mean edges = %v, want ~%v", got, want)
	}
}

func TestGNPExtremes(t *testing.T) {
	r := rng.New(13)
	if g := GNP(20, 0, r); g.M() != 0 {
		t.Fatal("GNP(p=0) has edges")
	}
	if g := GNP(20, 1, r); g.M() != 190 {
		t.Fatalf("GNP(p=1) M = %d", g.M())
	}
}

func TestConnectedGNPIsConnected(t *testing.T) {
	r := rng.New(17)
	for trial := 0; trial < 10; trial++ {
		g := ConnectedGNP(100, 0.005, r) // far below connectivity threshold
		if !IsConnected(g) {
			t.Fatal("ConnectedGNP produced disconnected graph")
		}
	}
}

func TestRandomGeometricConnected(t *testing.T) {
	r := rng.New(19)
	for trial := 0; trial < 5; trial++ {
		g := RandomGeometric(200, 0.05, r, true) // radius small: stitching required
		if !IsConnected(g) {
			t.Fatal("RandomGeometric(connect=true) disconnected")
		}
	}
}

func TestRandomGeometricRadius(t *testing.T) {
	r := rng.New(23)
	g := RandomGeometric(300, 0.12, r, false)
	// With this density the graph should have a healthy number of edges.
	if g.M() < 100 {
		t.Fatalf("geometric graph suspiciously sparse: M = %d", g.M())
	}
}

func TestDRegular(t *testing.T) {
	r := rng.New(29)
	for _, d := range []int{2, 3, 4} {
		n := 30
		if n*d%2 != 0 {
			n++
		}
		g := DRegular(n, d, r)
		for v := int32(0); v < int32(g.N()); v++ {
			if g.Degree(v) != d {
				t.Fatalf("d-regular: deg(%d) = %d, want %d", v, g.Degree(v), d)
			}
		}
	}
}

func TestDRegularPanicsOnOddProduct(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	DRegular(5, 3, rng.New(1))
}

func TestRandomTreeIsTree(t *testing.T) {
	check := func(seed uint64, sz uint8) bool {
		n := int(sz%60) + 2
		g := RandomTree(n, rng.New(seed))
		return g.M() == n-1 && IsConnected(g)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestLollipop(t *testing.T) {
	g := Lollipop(5, 4)
	if g.N() != 9 {
		t.Fatalf("N = %d", g.N())
	}
	if !IsConnected(g) {
		t.Fatal("lollipop disconnected")
	}
	if Diameter(g) != 5 {
		t.Fatalf("lollipop diameter = %d, want 5", Diameter(g))
	}
}

func TestCaterpillar(t *testing.T) {
	g := Caterpillar(5, 3)
	if g.N() != 20 {
		t.Fatalf("N = %d", g.N())
	}
	if !IsConnected(g) {
		t.Fatal("caterpillar disconnected")
	}
	if Diameter(g) != 6 { // leg—spine(4 hops)—leg
		t.Fatalf("caterpillar diameter = %d", Diameter(g))
	}
}

func TestPathWithTrees(t *testing.T) {
	g := PathWithTrees(10, 3)
	if !IsConnected(g) {
		t.Fatal("disconnected")
	}
	// Diameter: tree depth 3 + bridge + path 9 + bridge + tree depth 3 = 17.
	if d := Diameter(g); d != 17 {
		t.Fatalf("diameter = %d, want 17", d)
	}
}

func TestTorusRegular(t *testing.T) {
	g := Torus(4, 5)
	for v := int32(0); v < int32(g.N()); v++ {
		if g.Degree(v) != 4 {
			t.Fatalf("torus degree(%d) = %d", v, g.Degree(v))
		}
	}
	if !IsConnected(g) {
		t.Fatal("torus disconnected")
	}
}

func TestNamedFamiliesConnected(t *testing.T) {
	for _, name := range FamilyNames() {
		g, ok := Named(name, 64, 5)
		if !ok {
			t.Fatalf("family %q not found", name)
		}
		if g.N() == 0 {
			t.Fatalf("family %q produced empty graph", name)
		}
		if !IsConnected(g) {
			t.Fatalf("family %q disconnected at n=64", name)
		}
	}
	if _, ok := Named("nope", 10, 1); ok {
		t.Fatal("unknown family should return ok=false")
	}
}

func TestNamedDeterministic(t *testing.T) {
	for _, name := range []string{"gnp", "geometric", "tree"} {
		a, _ := Named(name, 50, 99)
		b, _ := Named(name, 50, 99)
		if a.N() != b.N() || a.M() != b.M() {
			t.Fatalf("family %q not deterministic", name)
		}
		eq := true
		a.Edges(func(u, v int32) {
			if !b.HasEdge(u, v) {
				eq = false
			}
		})
		if !eq {
			t.Fatalf("family %q edge sets differ across identical seeds", name)
		}
	}
}

// Property: BFS distances obey the triangle-ish local condition — adjacent
// vertices' distances differ by at most 1 — and every non-source vertex has a
// neighbor one closer. This is the gradient property the paper's labelcast
// application relies on.
func TestBFSGradientProperty(t *testing.T) {
	check := func(seed uint64) bool {
		r := rng.New(seed)
		g := ConnectedGNP(40, 0.08, r)
		dist := BFS(g, 0)
		for v := int32(0); v < int32(g.N()); v++ {
			hasDown := dist[v] == 0
			for _, u := range g.Neighbors(v) {
				d := dist[u] - dist[v]
				if d < -1 || d > 1 {
					return false
				}
				if dist[u] == dist[v]-1 {
					hasDown = true
				}
			}
			if !hasDown {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestFromEdges(t *testing.T) {
	g := FromEdges(3, [][2]int32{{0, 1}, {1, 2}})
	if g.M() != 2 || !g.HasEdge(0, 1) || !g.HasEdge(1, 2) {
		t.Fatal("FromEdges mismatch")
	}
}

func BenchmarkBFSGrid(b *testing.B) {
	g := Grid(100, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BFS(g, 0)
	}
}
