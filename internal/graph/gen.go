package graph

import (
	"math"
	"sort"

	"repro/internal/rng"
)

// Path returns the n-vertex path 0—1—…—(n-1). Diameter n-1.
func Path(n int) *Graph {
	b := NewBuilderHint(n, n-1)
	for v := 0; v < n-1; v++ {
		b.AddEdge(int32(v), int32(v+1))
	}
	return b.Graph()
}

// Cycle returns the n-vertex cycle. Diameter ⌊n/2⌋ for n >= 3.
func Cycle(n int) *Graph {
	b := NewBuilderHint(n, n)
	for v := 0; v < n-1; v++ {
		b.AddEdge(int32(v), int32(v+1))
	}
	if n >= 3 {
		b.AddEdge(int32(n-1), 0)
	}
	return b.Graph()
}

// Grid returns the rows×cols grid graph. Diameter rows+cols-2.
func Grid(rows, cols int) *Graph {
	b := NewBuilderHint(rows*cols, 2*rows*cols)
	id := func(r, c int) int32 { return int32(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				b.AddEdge(id(r, c), id(r, c+1))
			}
			if r+1 < rows {
				b.AddEdge(id(r, c), id(r+1, c))
			}
		}
	}
	return b.Graph()
}

// Torus returns the rows×cols torus (grid with wraparound).
func Torus(rows, cols int) *Graph {
	b := NewBuilderHint(rows*cols, 2*rows*cols)
	id := func(r, c int) int32 { return int32(((r+rows)%rows)*cols + (c+cols)%cols) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			b.AddEdge(id(r, c), id(r, c+1))
			b.AddEdge(id(r, c), id(r+1, c))
		}
	}
	return b.Graph()
}

// Star returns the n-vertex star with center 0.
func Star(n int) *Graph {
	b := NewBuilderHint(n, n-1)
	for v := 1; v < n; v++ {
		b.AddEdge(0, int32(v))
	}
	return b.Graph()
}

// Complete returns K_n.
func Complete(n int) *Graph {
	b := NewBuilderHint(n, n*(n-1)/2)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			b.AddEdge(int32(u), int32(v))
		}
	}
	return b.Graph()
}

// CompleteMinusEdge returns K_n with the edge {u, v} removed — the diameter-2
// counterpart of K_n in the Theorem 5.1 lower bound.
func CompleteMinusEdge(n int, u, v int32) *Graph {
	b := NewBuilderHint(n, n*(n-1)/2)
	for x := int32(0); x < int32(n); x++ {
		for y := x + 1; y < int32(n); y++ {
			if (x == u && y == v) || (x == v && y == u) {
				continue
			}
			b.AddEdge(x, y)
		}
	}
	return b.Graph()
}

// BinaryTree returns the complete binary tree on n vertices (heap indexing).
func BinaryTree(n int) *Graph {
	b := NewBuilderHint(n, n-1)
	for v := 1; v < n; v++ {
		b.AddEdge(int32(v), int32((v-1)/2))
	}
	return b.Graph()
}

// RandomTree returns a uniform-attachment random tree: vertex v attaches to a
// uniformly random earlier vertex.
func RandomTree(n int, r *rng.Source) *Graph {
	return RandomTreeInto(NewBuilderHint(n, n-1), n, r)
}

// RandomTreeInto is RandomTree building through a caller-owned (typically
// pooled) builder; b is Reset to n first. Identical output to RandomTree.
func RandomTreeInto(b *Builder, n int, r *rng.Source) *Graph {
	b.Reset(n)
	for v := 1; v < n; v++ {
		b.AddEdge(int32(v), int32(r.Intn(v)))
	}
	return b.Graph()
}

// Hypercube returns the d-dimensional hypercube (2^d vertices).
func Hypercube(d int) *Graph {
	n := 1 << d
	b := FromDegreeHint(n, d)
	for v := 0; v < n; v++ {
		for bit := 0; bit < d; bit++ {
			u := v ^ (1 << bit)
			if v < u {
				b.AddEdge(int32(v), int32(u))
			}
		}
	}
	return b.Graph()
}

// GNP returns an Erdős–Rényi G(n, p) graph. It may be disconnected; use
// ConnectedGNP when connectivity is required.
func GNP(n int, p float64, r *rng.Source) *Graph {
	return GNPInto(NewBuilder(n), n, p, r)
}

// GNPInto is GNP building through a caller-owned builder (Reset to n first).
func GNPInto(b *Builder, n int, p float64, r *rng.Source) *Graph {
	b.Reset(n)
	if p >= 1 {
		return Complete(n)
	}
	if p <= 0 {
		return b.Graph()
	}
	// Geometric skipping for sparse p: iterate over present edges only.
	logq := math.Log(1 - p)
	u, v := int64(0), int64(0)
	nn := int64(n)
	for u < nn {
		skip := int64(math.Log(1-r.Float64())/logq) + 1
		v += skip
		for v >= nn && u < nn {
			u++
			v = v - nn + u + 1
		}
		if u < nn && v > u {
			b.AddEdge(int32(u), int32(v))
		}
	}
	return b.Graph()
}

// ConnectedGNP returns G(n, p) with a uniform random spanning tree's worth of
// extra edges added to guarantee connectivity (random-tree augmentation).
func ConnectedGNP(n int, p float64, r *rng.Source) *Graph {
	return ConnectedGNPInto(NewBuilder(n), n, p, r)
}

// ConnectedGNPInto is ConnectedGNP through a caller-owned builder. The
// finalized sample is independent storage, so the augmentation pass can
// Reset and refill the same builder.
func ConnectedGNPInto(b *Builder, n int, p float64, r *rng.Source) *Graph {
	g := GNPInto(b, n, p, r)
	if IsConnected(g) {
		return g
	}
	b.Reset(n)
	g.Edges(func(u, v int32) { b.AddEdge(u, v) })
	perm := r.Perm(n)
	for i := 1; i < n; i++ {
		b.AddEdge(int32(perm[i]), int32(perm[r.Intn(i)]))
	}
	return b.Graph()
}

// RandomGeometric returns a unit-disk graph: n points uniform in the unit
// square, vertices adjacent iff within distance radius. If connect is true,
// disconnected components are stitched together by adding the edge between
// the closest pair of points in different components (repeatedly), modelling
// sensors dropped over terrain with a few long-range relays.
func RandomGeometric(n int, radius float64, r *rng.Source, connect bool) *Graph {
	return RandomGeometricInto(NewBuilder(n), n, radius, r, connect)
}

// RandomGeometricInto is RandomGeometric through a caller-owned builder,
// which is Reset and refilled for every connectivity-stitching rebuild.
func RandomGeometricInto(b *Builder, n int, radius float64, r *rng.Source, connect bool) *Graph {
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		xs[i], ys[i] = r.Float64(), r.Float64()
	}
	b.Reset(n)
	// Cell grid for neighbor queries.
	cell := radius
	if cell <= 0 {
		cell = 1
	}
	cols := int(1/cell) + 1
	grid := make(map[int][]int32, n)
	key := func(x, y float64) int {
		return int(y/cell)*cols + int(x/cell)
	}
	for i := 0; i < n; i++ {
		k := key(xs[i], ys[i])
		grid[k] = append(grid[k], int32(i))
	}
	r2 := radius * radius
	for i := 0; i < n; i++ {
		cx, cy := int(xs[i]/cell), int(ys[i]/cell)
		for dy := -1; dy <= 1; dy++ {
			for dx := -1; dx <= 1; dx++ {
				for _, j := range grid[(cy+dy)*cols+(cx+dx)] {
					if j <= int32(i) {
						continue
					}
					ddx, ddy := xs[i]-xs[j], ys[i]-ys[j]
					if ddx*ddx+ddy*ddy <= r2 {
						b.AddEdge(int32(i), j)
					}
				}
			}
		}
	}
	g := b.Graph()
	if !connect {
		return g
	}
	for {
		comp, k := Components(g)
		if k <= 1 {
			return g
		}
		// Closest pair across the component containing 0 and the rest.
		best := -1.0
		var bu, bv int32
		for u := 0; u < n; u++ {
			if comp[u] != comp[0] {
				continue
			}
			for v := 0; v < n; v++ {
				if comp[v] == comp[0] {
					continue
				}
				ddx, ddy := xs[u]-xs[v], ys[u]-ys[v]
				d2 := ddx*ddx + ddy*ddy
				if best < 0 || d2 < best {
					best, bu, bv = d2, int32(u), int32(v)
				}
			}
		}
		b.Reset(n)
		g.Edges(func(u, v int32) { b.AddEdge(u, v) })
		b.AddEdge(bu, bv)
		g = b.Graph()
	}
}

// DRegular returns a random d-regular simple graph via the configuration
// model with restarts. n·d must be even and d < n.
func DRegular(n, d int, r *rng.Source) *Graph {
	if n*d%2 != 0 || d >= n {
		panic("graph: invalid d-regular parameters")
	}
	for attempt := 0; ; attempt++ {
		stubs := make([]int32, 0, n*d)
		for v := 0; v < n; v++ {
			for i := 0; i < d; i++ {
				stubs = append(stubs, int32(v))
			}
		}
		r.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
		ok := true
		seen := make(map[int64]bool, n*d/2)
		b := FromDegreeHint(n, d)
		for i := 0; i < len(stubs); i += 2 {
			u, v := stubs[i], stubs[i+1]
			if u == v {
				ok = false
				break
			}
			k := int64(min32(u, v))<<32 | int64(max32(u, v))
			if seen[k] {
				ok = false
				break
			}
			seen[k] = true
			b.AddEdge(u, v)
		}
		if ok {
			return b.Graph()
		}
		if attempt > 200 {
			panic("graph: d-regular generation failed to converge")
		}
	}
}

// Lollipop returns a clique of size k attached to a path of length tail —
// a classic high-eccentricity-contrast family for diameter experiments.
func Lollipop(k, tail int) *Graph {
	n := k + tail
	b := NewBuilderHint(n, k*(k-1)/2+tail)
	for u := 0; u < k; u++ {
		for v := u + 1; v < k; v++ {
			b.AddEdge(int32(u), int32(v))
		}
	}
	for v := k - 1; v < n-1; v++ {
		b.AddEdge(int32(v), int32(v+1))
	}
	return b.Graph()
}

// Caterpillar returns a spine path of length spine where every spine vertex
// carries legs pendant vertices.
func Caterpillar(spine, legs int) *Graph {
	n := spine * (1 + legs)
	b := NewBuilderHint(n, n-1)
	for s := 0; s < spine-1; s++ {
		b.AddEdge(int32(s), int32(s+1))
	}
	next := spine
	for s := 0; s < spine; s++ {
		for l := 0; l < legs; l++ {
			b.AddEdge(int32(s), int32(next))
			next++
		}
	}
	return b.Graph()
}

// PathWithTrees is the adversarial family for the 3/2-diameter approximation:
// a long central path with complete binary trees of height h hanging off both
// endpoints, so that eccentricity-based estimates are stressed.
func PathWithTrees(pathLen, h int) *Graph {
	treeN := (1 << (h + 1)) - 1
	n := pathLen + 2*treeN
	b := NewBuilderHint(n, n-1)
	for v := 0; v < pathLen-1; v++ {
		b.AddEdge(int32(v), int32(v+1))
	}
	attach := func(base int, root int32) {
		for i := 0; i < treeN; i++ {
			if i > 0 {
				b.AddEdge(int32(base+i), int32(base+(i-1)/2))
			}
		}
		b.AddEdge(root, int32(base))
	}
	attach(pathLen, 0)
	attach(pathLen+treeN, int32(pathLen-1))
	return b.Graph()
}

// Sorted copy helpers used by generators.
func min32(a, b int32) int32 {
	if a < b {
		return a
	}
	return b
}

func max32(a, b int32) int32 {
	if a > b {
		return a
	}
	return b
}

// family describes one entry of the workload-family registry: whether the
// topology depends on the generator seed, the constructor, and — for the
// seeded families the harness rebuilds every trial — the pooled-builder
// constructor NamedInto prefers.
type family struct {
	seeded bool
	build  func(n int, r *rng.Source) *Graph
	into   func(b *Builder, n int, r *rng.Source) *Graph
}

// families is the single registry behind Named, FamilyNames and
// FamilySeeded, so existence and seededness can never disagree. A family
// whose constructor draws from r MUST be registered seeded: the harness
// graph cache shares one instance of every unseeded family across trials.
// gnpP and geoRadius are the size-derived family parameters, shared by the
// fresh and pooled-builder registry constructors so the two paths can never
// drift.
func gnpP(n int) float64 { return 2 * math.Log(float64(n)) / float64(n) }

func geoRadius(n int) float64 {
	return 1.8 * math.Sqrt(math.Log(float64(n)+2)/(math.Pi*float64(n)))
}

var families = map[string]family{
	"path":  {false, func(n int, _ *rng.Source) *Graph { return Path(n) }, nil},
	"cycle": {false, func(n int, _ *rng.Source) *Graph { return Cycle(n) }, nil},
	"grid": {false, func(n int, _ *rng.Source) *Graph {
		side := int(math.Round(math.Sqrt(float64(n))))
		if side < 1 {
			side = 1
		}
		return Grid(side, side)
	}, nil},
	"torus": {false, func(n int, _ *rng.Source) *Graph {
		side := int(math.Round(math.Sqrt(float64(n))))
		if side < 2 {
			side = 2
		}
		return Torus(side, side)
	}, nil},
	"star":     {false, func(n int, _ *rng.Source) *Graph { return Star(n) }, nil},
	"complete": {false, func(n int, _ *rng.Source) *Graph { return Complete(n) }, nil},
	"tree":     {true, RandomTree, RandomTreeInto},
	"gnp": {true,
		func(n int, r *rng.Source) *Graph {
			return ConnectedGNP(n, gnpP(n), r)
		},
		func(b *Builder, n int, r *rng.Source) *Graph {
			return ConnectedGNPInto(b, n, gnpP(n), r)
		}},
	"geometric": {true,
		func(n int, r *rng.Source) *Graph {
			return RandomGeometric(n, geoRadius(n), r, true)
		},
		func(b *Builder, n int, r *rng.Source) *Graph {
			return RandomGeometricInto(b, n, geoRadius(n), r, true)
		}},
	"hypercube": {false, func(n int, _ *rng.Source) *Graph {
		d := 0
		for 1<<(d+1) <= n {
			d++
		}
		return Hypercube(d)
	}, nil},
	"lollipop":    {false, func(n int, _ *rng.Source) *Graph { return Lollipop(n/2, n-n/2) }, nil},
	"caterpillar": {false, func(n int, _ *rng.Source) *Graph { return Caterpillar(n/4, 3) }, nil},
}

// Named returns a standard test-family graph by name; used by the CLI and
// experiment harness. See FamilyNames for the accepted names.
func Named(name string, n int, seed uint64) (*Graph, bool) {
	return NamedInto(nil, name, n, seed)
}

// NamedInto is Named building through a caller-owned builder pool where the
// family supports it (the seeded families — the ones rebuilt per trial).
// Passing a nil builder, or naming a family without a pooled constructor,
// falls back to a fresh build. The resulting graph is always identical to
// Named's for the same (name, n, seed): the pooled path reuses only
// accumulation arrays, never randomness.
func NamedInto(b *Builder, name string, n int, seed uint64) (*Graph, bool) {
	f, ok := families[name]
	if !ok {
		return nil, false
	}
	r := rng.New(rng.Derive(seed, 0xfa111e5))
	if b != nil && f.into != nil {
		return f.into(b, n, r), true
	}
	return f.build(n, r), true
}

// FamilySeeded reports whether the named family's topology depends on the
// generator seed. Deterministic families (false) produce the same graph for
// every seed, so callers such as the harness graph cache may build them once
// and share the result across trials.
func FamilySeeded(name string) bool {
	return families[name].seeded
}

// FamilyNames lists the graph families accepted by Named, sorted.
func FamilyNames() []string {
	names := make([]string, 0, len(families))
	for name := range families {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
