package progress

import (
	"context"
	"testing"
)

// TestZeroHooksAreSafe pins the package's core promise: the zero Hooks
// value is fully disabled and always legal in a round loop.
func TestZeroHooksAreSafe(t *testing.T) {
	var h Hooks
	if err := h.Err(); err != nil {
		t.Fatalf("zero Hooks Err() = %v", err)
	}
	h.Start("phase")
	h.End("phase")
	h.Rounds("phase", 5)
}

// TestHooksErr: Err is nil without a context, nil before cancellation, and
// the context's error after.
func TestHooksErr(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	h := Hooks{Ctx: ctx}
	if err := h.Err(); err != nil {
		t.Fatalf("Err before cancel = %v", err)
	}
	cancel()
	if err := h.Err(); err != context.Canceled {
		t.Fatalf("Err after cancel = %v, want context.Canceled", err)
	}
}

// TestFuncsNilFieldsAreSafe: a partially (or entirely) empty Funcs skips
// its nil fields instead of panicking.
func TestFuncsNilFieldsAreSafe(t *testing.T) {
	var f Funcs
	f.PhaseStart("p")
	f.PhaseEnd("p")
	f.RoundBatch("p", 1)

	var ends []string
	partial := Funcs{OnPhaseEnd: func(p string) { ends = append(ends, p) }}
	partial.PhaseStart("p")
	partial.RoundBatch("p", 2)
	partial.PhaseEnd("p")
	if len(ends) != 1 || ends[0] != "p" {
		t.Fatalf("partial Funcs recorded %v", ends)
	}
}

// TestHooksForwarding: events pass through to the observer, and empty or
// negative round batches are swallowed before they reach it.
func TestHooksForwarding(t *testing.T) {
	var starts, ends []string
	var rounds int64
	h := Hooks{Obs: Funcs{
		OnPhaseStart: func(p string) { starts = append(starts, p) },
		OnPhaseEnd:   func(p string) { ends = append(ends, p) },
		OnRoundBatch: func(p string, n int64) { rounds += n },
	}}
	h.Start("a")
	h.Rounds("a", 3)
	h.Rounds("a", 0)
	h.Rounds("a", -2)
	h.End("a")
	if len(starts) != 1 || starts[0] != "a" || len(ends) != 1 || ends[0] != "a" {
		t.Fatalf("phase events: starts %v ends %v", starts, ends)
	}
	if rounds != 3 {
		t.Fatalf("forwarded %d rounds, want 3 (zero/negative batches must be dropped)", rounds)
	}
}

// TestLeaseFuncsNilFieldsAreSafe mirrors the Funcs contract for the
// distributed-sweep observer.
func TestLeaseFuncsNilFieldsAreSafe(t *testing.T) {
	var f LeaseFuncs
	f.LeaseGranted(1, 2, 0, 4)
	f.LeaseDone(1)
	f.LeaseRevoked(1, 2, "crash")
	f.WorkerStarted(1)
	f.WorkerExited(1, "shutdown")

	granted := 0
	partial := LeaseFuncs{OnLeaseGranted: func(lease, worker, start, end int) { granted++ }}
	partial.LeaseGranted(1, 1, 0, 8)
	partial.LeaseDone(1)
	if granted != 1 {
		t.Fatalf("partial LeaseFuncs recorded %d grants", granted)
	}
}
