// Package progress defines the cancellation and observation plumbing shared
// by every round loop in the simulator: Recursive-BFS stages (internal/core),
// the Decay BFS wavefront (internal/decay), and the duty-cycled dissemination
// slots (internal/labelcast).
//
// The two concerns travel together as a Hooks value because they have the
// same grain: a round loop checks for cancellation and reports progress at
// phase boundaries — once per stage, wavefront step, or slot batch — never
// per physical slot. The zero Hooks value disables both at the cost of a nil
// check, which is what keeps the zero-allocation hot paths allocation-free
// when no driver is watching.
package progress

import "context"

// Observer receives streaming progress events from algorithm round loops.
// Implementations must be cheap and, when one observer is shared by
// concurrent trials (e.g. a sweep-wide counter), safe for concurrent use.
type Observer interface {
	// PhaseStart announces that the named phase began.
	PhaseStart(phase string)
	// PhaseEnd announces that the named phase finished (or was canceled).
	PhaseEnd(phase string)
	// RoundBatch reports that the named phase advanced by rounds time units
	// (Local-Broadcast units or polling slots, per the phase's loop).
	RoundBatch(phase string, rounds int64)
}

// Hooks bundles the cancellation context and observer a driver threads
// through a round loop. The zero value is fully disabled and always legal.
type Hooks struct {
	// Ctx, when non-nil, is polled at phase boundaries; a canceled context
	// makes the loop return early with whatever partial result it has.
	Ctx context.Context
	// Obs, when non-nil, receives phase and round-batch events.
	Obs Observer
}

// Err returns the context's error, or nil when no context is attached.
func (h Hooks) Err() error {
	if h.Ctx == nil {
		return nil
	}
	return h.Ctx.Err()
}

// Start emits a PhaseStart event when an observer is attached.
func (h Hooks) Start(phase string) {
	if h.Obs != nil {
		h.Obs.PhaseStart(phase)
	}
}

// End emits a PhaseEnd event when an observer is attached.
func (h Hooks) End(phase string) {
	if h.Obs != nil {
		h.Obs.PhaseEnd(phase)
	}
}

// Rounds emits a RoundBatch event when an observer is attached and the batch
// is non-empty.
func (h Hooks) Rounds(phase string, n int64) {
	if h.Obs != nil && n > 0 {
		h.Obs.RoundBatch(phase, n)
	}
}

// Funcs adapts plain functions into an Observer; nil fields are skipped.
// It is the convenience implementation for tests and one-off drivers.
type Funcs struct {
	OnPhaseStart func(phase string)
	OnPhaseEnd   func(phase string)
	OnRoundBatch func(phase string, rounds int64)
}

// PhaseStart implements Observer.
func (f Funcs) PhaseStart(phase string) {
	if f.OnPhaseStart != nil {
		f.OnPhaseStart(phase)
	}
}

// PhaseEnd implements Observer.
func (f Funcs) PhaseEnd(phase string) {
	if f.OnPhaseEnd != nil {
		f.OnPhaseEnd(phase)
	}
}

// RoundBatch implements Observer.
func (f Funcs) RoundBatch(phase string, rounds int64) {
	if f.OnRoundBatch != nil {
		f.OnRoundBatch(phase, rounds)
	}
}
