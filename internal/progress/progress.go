// Package progress defines the cancellation and observation plumbing shared
// by every round loop in the simulator: Recursive-BFS stages (internal/core),
// the Decay BFS wavefront (internal/decay), and the duty-cycled dissemination
// slots (internal/labelcast).
//
// The two concerns travel together as a Hooks value because they have the
// same grain: a round loop checks for cancellation and reports progress at
// phase boundaries — once per stage, wavefront step, or slot batch — never
// per physical slot. The zero Hooks value disables both at the cost of a nil
// check, which is what keeps the zero-allocation hot paths allocation-free
// when no driver is watching.
package progress

import "context"

// Observer receives streaming progress events from algorithm round loops.
// Implementations must be cheap and, when one observer is shared by
// concurrent trials (e.g. a sweep-wide counter), safe for concurrent use.
type Observer interface {
	// PhaseStart announces that the named phase began.
	PhaseStart(phase string)
	// PhaseEnd announces that the named phase finished (or was canceled).
	PhaseEnd(phase string)
	// RoundBatch reports that the named phase advanced by rounds time units
	// (Local-Broadcast units or polling slots, per the phase's loop).
	RoundBatch(phase string, rounds int64)
}

// Hooks bundles the cancellation context and observer a driver threads
// through a round loop. The zero value is fully disabled and always legal.
type Hooks struct {
	// Ctx, when non-nil, is polled at phase boundaries; a canceled context
	// makes the loop return early with whatever partial result it has.
	Ctx context.Context
	// Obs, when non-nil, receives phase and round-batch events.
	Obs Observer
}

// Err returns the context's error, or nil when no context is attached.
func (h Hooks) Err() error {
	if h.Ctx == nil {
		return nil
	}
	return h.Ctx.Err()
}

// Start emits a PhaseStart event when an observer is attached.
func (h Hooks) Start(phase string) {
	if h.Obs != nil {
		h.Obs.PhaseStart(phase)
	}
}

// End emits a PhaseEnd event when an observer is attached.
func (h Hooks) End(phase string) {
	if h.Obs != nil {
		h.Obs.PhaseEnd(phase)
	}
}

// Rounds emits a RoundBatch event when an observer is attached and the batch
// is non-empty.
func (h Hooks) Rounds(phase string, n int64) {
	if h.Obs != nil && n > 0 {
		h.Obs.RoundBatch(phase, n)
	}
}

// Funcs adapts plain functions into an Observer; nil fields are skipped.
// It is the convenience implementation for tests and one-off drivers.
type Funcs struct {
	OnPhaseStart func(phase string)
	OnPhaseEnd   func(phase string)
	OnRoundBatch func(phase string, rounds int64)
}

// PhaseStart implements Observer.
func (f Funcs) PhaseStart(phase string) {
	if f.OnPhaseStart != nil {
		f.OnPhaseStart(phase)
	}
}

// PhaseEnd implements Observer.
func (f Funcs) PhaseEnd(phase string) {
	if f.OnPhaseEnd != nil {
		f.OnPhaseEnd(phase)
	}
}

// RoundBatch implements Observer.
func (f Funcs) RoundBatch(phase string, rounds int64) {
	if f.OnRoundBatch != nil {
		f.OnRoundBatch(phase, rounds)
	}
}

// LeaseObserver receives coordinator-level lifecycle events from a
// distributed sweep (internal/dist): lease grants (including re-leases and
// speculative duplicates), completions, revocations, and worker process
// churn. It is the distributed sibling of Observer — same contract:
// implementations must be cheap, and the coordinator invokes them from its
// single event loop, so they need not be safe for concurrent use.
type LeaseObserver interface {
	// LeaseGranted reports that lease was granted to worker incarnation
	// worker, covering slots [start, end) minus skipped already-done slots.
	LeaseGranted(lease, worker, start, end int)
	// LeaseDone reports that every slot of the lease is completed.
	LeaseDone(lease int)
	// LeaseRevoked reports that a grant ended without completing the lease
	// (worker exit, heartbeat loss); the remainder will be re-leased or run
	// in-process.
	LeaseRevoked(lease, worker int, reason string)
	// WorkerStarted reports that worker incarnation worker began serving.
	WorkerStarted(worker int)
	// WorkerExited reports that a worker process ended, with the reason
	// (clean shutdown, crash exit status, heartbeat timeout, ...).
	WorkerExited(worker int, reason string)
}

// LeaseFuncs adapts plain functions into a LeaseObserver; nil fields are
// skipped.
type LeaseFuncs struct {
	OnLeaseGranted func(lease, worker, start, end int)
	OnLeaseDone    func(lease int)
	OnLeaseRevoked func(lease, worker int, reason string)
	OnWorkerStart  func(worker int)
	OnWorkerExit   func(worker int, reason string)
}

// LeaseGranted implements LeaseObserver.
func (f LeaseFuncs) LeaseGranted(lease, worker, start, end int) {
	if f.OnLeaseGranted != nil {
		f.OnLeaseGranted(lease, worker, start, end)
	}
}

// LeaseDone implements LeaseObserver.
func (f LeaseFuncs) LeaseDone(lease int) {
	if f.OnLeaseDone != nil {
		f.OnLeaseDone(lease)
	}
}

// LeaseRevoked implements LeaseObserver.
func (f LeaseFuncs) LeaseRevoked(lease, worker int, reason string) {
	if f.OnLeaseRevoked != nil {
		f.OnLeaseRevoked(lease, worker, reason)
	}
}

// WorkerStarted implements LeaseObserver.
func (f LeaseFuncs) WorkerStarted(worker int) {
	if f.OnWorkerStart != nil {
		f.OnWorkerStart(worker)
	}
}

// WorkerExited implements LeaseObserver.
func (f LeaseFuncs) WorkerExited(worker int, reason string) {
	if f.OnWorkerExit != nil {
		f.OnWorkerExit(worker, reason)
	}
}
