// Package lbnet defines the abstraction at the heart of the paper's §3: a
// (possibly virtual) radio network on which algorithms are composed
// exclusively of collective Local-Broadcast calls. The clustering algorithm,
// the Up-cast/Down-cast primitives, Recursive-BFS and the diameter
// algorithms are all written once against the Net interface and run
// unchanged on:
//
//   - PhysNet — a physical RN[O(log n)] network, where each Local-Broadcast
//     executes the Decay protocol on the radio engine (Lemma 2.4), or
//   - UnitNet — the paper's own unit of measurement (§4.3: "We use a call to
//     Local-Broadcast as a unit of measurement of both time and energy"),
//     where one Local-Broadcast costs one time unit and one energy unit per
//     participant, with the Lemma 2.4 delivery guarantee taken as given, or
//   - vnet.VNet — a cluster graph simulated on top of either (Lemma 3.2).
//
// Calls carry sparse participant lists, so the cost of a Local-Broadcast is
// proportional to the number of participants — sleeping vertices are free,
// in the simulator exactly as in the model; UnitNet additionally takes an
// exact O(1) fast path for sender-only and receiver-only slots.
//
// Control flow above this interface is data-independent: the sequence and
// duration of collective calls depends only on globally known parameters,
// never on received data, so sleeping vertices stay synchronized for free.
//
// Allocation contract: steady-state Local-Broadcasts on either
// implementation allocate nothing once warm (PhysNet draws its buffers from
// decay.Scratch); AllocsPerRun regression tests pin this, which is what
// keeps large sweeps activity-bound rather than GC-bound.
package lbnet
