package lbnet

import (
	"testing"

	"repro/internal/decay"
	"repro/internal/graph"
	"repro/internal/radio"
)

func nets(t *testing.T, g *graph.Graph) map[string]Net {
	t.Helper()
	return map[string]Net{
		"unit": NewUnitNet(g, 0, 1),
		"phys": NewPhysNet(radio.NewEngine(g), decay.ParamsFor(g.N(), 8), 1),
	}
}

func oneLB(net Net, senders []radio.TX, receivers []int32) ([]radio.Msg, []bool) {
	got := make([]radio.Msg, len(receivers))
	ok := make([]bool, len(receivers))
	net.LocalBroadcast(senders, receivers, got, ok)
	return got, ok
}

func TestLocalBroadcastDelivery(t *testing.T) {
	g := graph.Path(4) // 0-1-2-3
	for name, net := range nets(t, g) {
		got, ok := oneLB(net, []radio.TX{{ID: 1, Msg: radio.Msg{A: 42}}}, []int32{0, 2, 3})
		if !ok[0] || !ok[1] || got[0].A != 42 || got[1].A != 42 {
			t.Errorf("%s: neighbors did not hear lone sender: ok=%v", name, ok)
		}
		if ok[2] {
			t.Errorf("%s: vertex 3 heard a non-neighbor", name)
		}
	}
}

func TestAsleepVerticesSpendNothing(t *testing.T) {
	g := graph.Star(5)
	for name, net := range nets(t, g) {
		oneLB(net, []radio.TX{{ID: 1}}, []int32{0})
		if net.LBEnergy(2) != 0 || net.LBEnergy(3) != 0 {
			t.Errorf("%s: asleep vertex charged energy", name)
		}
		if net.LBEnergy(0) != 1 || net.LBEnergy(1) != 1 {
			t.Errorf("%s: participants not charged one LB unit", name)
		}
	}
}

func TestClockAdvancesPerCallAndSkip(t *testing.T) {
	g := graph.Path(3)
	for name, net := range nets(t, g) {
		oneLB(net, nil, nil) // empty call still ticks
		net.SkipLB(10)
		if net.LBTime() != 11 {
			t.Errorf("%s: LBTime = %d, want 11", name, net.LBTime())
		}
	}
}

func TestPhysNetRoundsMatchLBUnits(t *testing.T) {
	g := graph.Path(3)
	p := decay.ParamsFor(3, 5)
	eng := radio.NewEngine(g)
	net := NewPhysNet(eng, p, 3)
	oneLB(net, []radio.TX{{ID: 0}}, []int32{1})
	net.SkipLB(4)
	if want := 5 * p.Duration(); eng.Round() != want {
		t.Fatalf("engine rounds = %d, want %d", eng.Round(), want)
	}
}

func TestUnitNetMinIDDelivery(t *testing.T) {
	g := graph.Star(4) // 0 center; leaves 1,2,3
	net := NewUnitNet(g, 0, 1)
	// Deliberately list senders out of ID order: min-ID must still win.
	senders := []radio.TX{
		{ID: 3, Msg: radio.Msg{A: 30}},
		{ID: 1, Msg: radio.Msg{A: 10}},
		{ID: 2, Msg: radio.Msg{A: 20}},
	}
	got, ok := oneLB(net, senders, []int32{0})
	if !ok[0] || got[0].A != 10 {
		t.Fatalf("min-ID delivery violated: got %+v ok=%v", got[0], ok[0])
	}
}

func TestUnitNetFailureInjection(t *testing.T) {
	g := graph.Path(2)
	net := NewUnitNet(g, 0.5, 9)
	fails := 0
	const trials = 2000
	for i := 0; i < trials; i++ {
		_, ok := oneLB(net, []radio.TX{{ID: 0}}, []int32{1})
		if !ok[0] {
			fails++
		}
	}
	if fails < trials/3 || fails > 2*trials/3 {
		t.Fatalf("failProb=0.5 produced %d/%d failures", fails, trials)
	}
}

func TestUnitNetScratchReset(t *testing.T) {
	g := graph.Path(3)
	net := NewUnitNet(g, 0, 1)
	oneLB(net, []radio.TX{{ID: 0, Msg: radio.Msg{A: 5}}}, []int32{1})
	// Second call with no senders: receiver must hear nothing.
	_, ok := oneLB(net, nil, []int32{1})
	if ok[0] {
		t.Fatal("stale sender counter leaked into next call")
	}
}

func TestPhysNetContendedDelivery(t *testing.T) {
	// All leaves of a star send; the center should hear w.h.p. thanks to
	// Decay, matching the UnitNet guarantee.
	g := graph.Star(20)
	misses := 0
	for trial := 0; trial < 50; trial++ {
		net := NewPhysNet(radio.NewEngine(g), decay.ParamsFor(20, 8), uint64(trial))
		senders := make([]radio.TX, 0, 19)
		for v := 1; v < 20; v++ {
			senders = append(senders, radio.TX{ID: int32(v), Msg: radio.Msg{A: uint64(v)}})
		}
		got, ok := oneLB(net, senders, []int32{0})
		if !ok[0] {
			misses++
		} else if got[0].A == 0 {
			t.Fatal("delivered message has no sender payload")
		}
	}
	if misses > 2 {
		t.Fatalf("contended PhysNet LB missed %d/50 times", misses)
	}
}

func TestMaxAndTotalLBEnergy(t *testing.T) {
	g := graph.Path(3)
	net := NewUnitNet(g, 0, 1)
	oneLB(net, []radio.TX{{ID: 0}}, []int32{1})
	oneLB(net, []radio.TX{{ID: 0}}, []int32{1})
	if MaxLBEnergy(net) != 2 {
		t.Fatalf("MaxLBEnergy = %d", MaxLBEnergy(net))
	}
	if TotalLBEnergy(net) != 4 {
		t.Fatalf("TotalLBEnergy = %d", TotalLBEnergy(net))
	}
}

func TestBadResultLengthsPanic(t *testing.T) {
	g := graph.Path(3)
	net := NewUnitNet(g, 0, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on short result slices")
		}
	}()
	net.LocalBroadcast(nil, []int32{0, 1}, make([]radio.Msg, 1), make([]bool, 1))
}

// TestCrossModelAgreement runs the same single-sender schedule on both nets
// and checks protocol-visible agreement (who hears).
func TestCrossModelAgreement(t *testing.T) {
	g := graph.Grid(4, 4)
	unit := NewUnitNet(g, 0, 5)
	phys := NewPhysNet(radio.NewEngine(g), decay.ParamsFor(16, 8), 5)
	for round := 0; round < 8; round++ {
		sender := int32(round)
		var receivers []int32
		for v := int32(0); v < 16; v++ {
			if v != sender {
				receivers = append(receivers, v)
			}
		}
		senders := []radio.TX{{ID: sender, Msg: radio.Msg{A: 7}}}
		_, okU := oneLB(unit, senders, receivers)
		_, okP := oneLB(phys, senders, receivers)
		for i := range receivers {
			if okU[i] != okP[i] {
				t.Fatalf("round %d vertex %d: unit ok=%v phys ok=%v (single sender should agree)", round, receivers[i], okU[i], okP[i])
			}
		}
	}
}

func BenchmarkUnitNetSparseLB(b *testing.B) {
	g := graph.Grid(64, 64)
	net := NewUnitNet(g, 0, 1)
	senders := []radio.TX{{ID: 2000, Msg: radio.Msg{A: 1}}}
	receivers := []int32{2001, 2064}
	got := make([]radio.Msg, 2)
	ok := make([]bool, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.LocalBroadcast(senders, receivers, got, ok)
	}
}
