package lbnet

import (
	"repro/internal/decay"
	"repro/internal/graph"
	"repro/internal/radio"
	"repro/internal/rng"
)

// Net is a radio network driven by collective Local-Broadcast calls.
type Net interface {
	// N returns the number of vertices at this level.
	N() int
	// GlobalN returns the physical network size n, the parameter in all
	// logarithmic factors and failure probabilities.
	GlobalN() int
	// LocalBroadcast performs one collective Local-Broadcast: every listed
	// sender transmits its message; every listed receiver listens. All other
	// vertices sleep. got[i], ok[i] report the delivery for receivers[i]:
	// with at least one sending neighbor, a receiver hears some neighbor's
	// message with probability at least 1-f. Senders and receivers must be
	// disjoint and duplicate-free. The call advances the clock by exactly
	// one LB unit regardless of participation.
	LocalBroadcast(senders []radio.TX, receivers []int32, got []radio.Msg, ok []bool)
	// SkipLB advances the clock by k LB units with every vertex asleep.
	SkipLB(k int64)
	// LBTime returns the number of LB units elapsed, including skipped ones.
	LBTime() int64
	// LBEnergy returns how many Local-Broadcasts vertex v has participated
	// in (as sender or receiver) — the paper's energy measure in LB units.
	LBEnergy(v int32) int64
	// Graph returns the reference topology of this level. It exists for
	// analysis and tests; algorithm code must not use it to communicate.
	Graph() *graph.Graph
}

// MaxLBEnergy returns the maximum per-vertex LB-unit energy on net.
func MaxLBEnergy(net Net) int64 {
	var m int64
	for v := int32(0); v < int32(net.N()); v++ {
		if e := net.LBEnergy(v); e > m {
			m = e
		}
	}
	return m
}

// TotalLBEnergy returns the aggregate LB-unit energy on net.
func TotalLBEnergy(net Net) int64 {
	var s int64
	for v := int32(0); v < int32(net.N()); v++ {
		s += net.LBEnergy(v)
	}
	return s
}

// meters is the shared accounting embedded by Net implementations.
type meters struct {
	lbTime int64
	energy []int64
}

func (m *meters) charge(senders []radio.TX, receivers []int32) {
	for i := range senders {
		m.energy[senders[i].ID]++
	}
	for _, v := range receivers {
		m.energy[v]++
	}
	m.lbTime++
}

// Delivery selects which sending neighbor a UnitNet receiver hears.
type Delivery uint8

const (
	// DeliverMinID delivers the minimum-ID sending neighbor: a legal,
	// adversarial, fully deterministic resolution of the Lemma 2.4
	// guarantee. It is the default.
	DeliverMinID Delivery = iota
	// DeliverRandom delivers a uniformly random sending neighbor, matching
	// the symmetry of the Decay protocol. Protocols that flood maxima need
	// this: under DeliverMinID a low-ID neighbor can permanently shadow the
	// informative one.
	DeliverRandom
)

// UnitNet is an abstract network with ideal Local-Broadcast semantics: a
// receiver with at least one sending neighbor hears the message of one of
// them (per the Delivery policy) with probability 1-failProb (default:
// always). It is fully deterministic for a fixed seed, fast, and is the
// cost model in which the paper states its headline bounds.
type UnitNet struct {
	meters
	g        *graph.Graph
	failProb float64
	rnd      *rng.Source
	policy   Delivery

	cnt     []int32
	from    []int32
	touched []int32
}

// NewUnitNet builds a UnitNet on g. failProb injects per-receiver delivery
// failures (0 for exact semantics); seed drives the failure and
// delivery-choice coin flips.
func NewUnitNet(g *graph.Graph, failProb float64, seed uint64) *UnitNet {
	n := g.N()
	u := &UnitNet{
		meters:   meters{energy: make([]int64, n)},
		g:        g,
		failProb: failProb,
		rnd:      rng.New(rng.Derive(seed, 0x0417)),
		cnt:      make([]int32, n),
		from:     make([]int32, n),
	}
	for i := range u.from {
		u.from[i] = -1
	}
	return u
}

// SetDelivery selects the delivery policy (default DeliverMinID).
func (u *UnitNet) SetDelivery(p Delivery) { u.policy = p }

// N implements Net.
func (u *UnitNet) N() int { return u.g.N() }

// GlobalN implements Net.
func (u *UnitNet) GlobalN() int { return u.g.N() }

// Graph implements Net.
func (u *UnitNet) Graph() *graph.Graph { return u.g }

// SkipLB implements Net.
func (u *UnitNet) SkipLB(k int64) {
	if k < 0 {
		panic("lbnet: negative skip")
	}
	u.lbTime += k
}

// LBTime implements Net.
func (u *UnitNet) LBTime() int64 { return u.lbTime }

// LBEnergy implements Net.
func (u *UnitNet) LBEnergy(v int32) int64 { return u.energy[v] }

// LocalBroadcast implements Net with ideal LB semantics. Delivery choice is
// the minimum-ID sending neighbor, a legal (adversarial) resolution of the
// Lemma 2.4 guarantee that keeps runs deterministic.
func (u *UnitNet) LocalBroadcast(senders []radio.TX, receivers []int32, got []radio.Msg, ok []bool) {
	if len(got) != len(receivers) || len(ok) != len(receivers) {
		panic("lbnet: result slices must match receivers length")
	}
	// Fast paths that change no observable state: with no senders every
	// receiver hears silence (the slow path's counters stay zero and no
	// randomness is consumed); with no receivers under the deterministic
	// MinID policy the neighbor marking is write-only (DeliverRandom is
	// excluded because its reservoir sampling draws from the shared stream
	// even when nobody listens). Cast schedules hit the latter constantly:
	// senders re-transmit in every subset slot after all listeners of a
	// stage have been served.
	if len(senders) == 0 || (len(receivers) == 0 && u.policy == DeliverMinID) {
		for i := range receivers {
			got[i], ok[i] = radio.Msg{}, false
		}
		u.charge(senders, receivers)
		return
	}
	cnt, from, touched := u.cnt, u.from, u.touched
	for i := range senders {
		s := senders[i].ID
		for _, v := range u.g.Neighbors(s) {
			if cnt[v] == 0 {
				touched = append(touched, v)
			}
			cnt[v]++
			switch {
			case from[v] == -1:
				from[v] = int32(i)
			case u.policy == DeliverMinID:
				if s < senders[from[v]].ID {
					from[v] = int32(i)
				}
			default: // DeliverRandom: reservoir-sample among senders
				if u.rnd.Intn(int(cnt[v])) == 0 {
					from[v] = int32(i)
				}
			}
		}
	}
	for i, v := range receivers {
		if cnt[v] >= 1 && (u.failProb <= 0 || !u.rnd.Bernoulli(u.failProb)) {
			got[i], ok[i] = senders[from[v]].Msg, true
		} else {
			got[i], ok[i] = radio.Msg{}, false
		}
	}
	for _, v := range touched {
		cnt[v] = 0
		from[v] = -1
	}
	u.touched = touched[:0]
	u.charge(senders, receivers)
}

// PhysNet adapts a radio engine into a Net: each collective Local-Broadcast
// runs one Decay Local-Broadcast (Lemma 2.4) on the physical channel, so
// both LB-unit meters (here) and physical round/energy meters (engine) are
// populated.
type PhysNet struct {
	meters
	eng     *radio.Engine
	p       decay.Params
	seed    uint64
	scratch decay.Scratch
}

// NewPhysNet wraps eng. p fixes the Local-Broadcast shape (and hence the
// LB-unit → rounds conversion factor p.Duration()).
func NewPhysNet(eng *radio.Engine, p decay.Params, seed uint64) *PhysNet {
	return &PhysNet{
		meters: meters{energy: make([]int64, eng.N())},
		eng:    eng,
		p:      p,
		seed:   seed,
	}
}

// N implements Net.
func (p *PhysNet) N() int { return p.eng.N() }

// GlobalN implements Net.
func (p *PhysNet) GlobalN() int { return p.eng.N() }

// Graph implements Net.
func (p *PhysNet) Graph() *graph.Graph { return p.eng.Graph() }

// Engine exposes the physical meters.
func (p *PhysNet) Engine() *radio.Engine { return p.eng }

// Params returns the Local-Broadcast shape.
func (p *PhysNet) Params() decay.Params { return p.p }

// SkipLB implements Net.
func (p *PhysNet) SkipLB(k int64) {
	if k < 0 {
		panic("lbnet: negative skip")
	}
	p.lbTime += k
	p.eng.SkipRounds(k * p.p.Duration())
}

// LBTime implements Net.
func (p *PhysNet) LBTime() int64 { return p.lbTime }

// LBEnergy implements Net.
func (p *PhysNet) LBEnergy(v int32) int64 { return p.energy[v] }

// LocalBroadcast implements Net by running the Decay protocol on reused
// scratch, so steady-state physical rounds allocate nothing.
func (p *PhysNet) LocalBroadcast(senders []radio.TX, receivers []int32, got []radio.Msg, ok []bool) {
	callSeed := rng.Derive(p.seed, uint64(p.lbTime), 0x1b)
	p.scratch.LocalBroadcast(p.eng, p.p, senders, receivers, callSeed, got, ok)
	p.charge(senders, receivers)
}
