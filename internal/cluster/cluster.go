package cluster

import (
	"container/heap"
	"math"
	"sort"

	"repro/internal/graph"
	"repro/internal/lbnet"
	"repro/internal/radio"
	"repro/internal/rng"
)

// MsgJoin is the message kind used during cluster growth.
const MsgJoin = 0x10

// Config fixes the clustering and cast-scheduling parameters for one level.
// All values are derived from (n, 1/β) by DefaultConfig using the paper's
// formulas with explicit multipliers (see DESIGN.md §6).
type Config struct {
	// InvBeta is 1/β (a positive integer, per the paper's convention).
	InvBeta int
	// TMax is the start-time window: clusters start at integer times in
	// [1, TMax] and growth runs for TMax Local-Broadcasts (Lemma 2.5 uses
	// 4·log(n)/β). It also bounds the cluster radius.
	TMax int
	// C is the contention bound: w.h.p. at most C clusters intersect any
	// closed neighborhood (Lemma 2.1 with ℓ = 1).
	C int
	// SubsetLen is ℓ, the slot-universe size of the shared-subset scheme
	// of Lemma 3.1 (each cluster includes each slot with probability 1/C).
	SubsetLen int
}

// DefaultConfig derives clustering parameters for an n-vertex network with
// the given 1/β.
func DefaultConfig(n, invBeta int) Config {
	if invBeta < 1 {
		invBeta = 1
	}
	lg := log2Ceil(n)
	beta := 1 / float64(invBeta)
	// Smallest j with (1 - e^(-2β))^j <= n^-3 (Lemma 2.1, ℓ = 1).
	q := 1 - math.Exp(-2*beta)
	c := 3
	if q > 0 && q < 1 {
		c = int(math.Ceil(3 * math.Log(float64(n+1)) / -math.Log(q)))
	}
	if c < 3 {
		c = 3
	}
	subset := int(math.Ceil(2 * math.E * float64(c) * math.Log(float64(n+1))))
	if subset < 8 {
		subset = 8
	}
	return Config{
		InvBeta:   invBeta,
		TMax:      2 * lg * invBeta,
		C:         c,
		SubsetLen: subset,
	}
}

func log2Ceil(n int) int {
	lg := 1
	for 1<<lg < n {
		lg++
	}
	return lg
}

// Clustering is the output of the MPX process on one level: a partition of
// the vertices into clusters with BFS-like layers inside each cluster and a
// per-cluster shared seed (disseminated inside the join messages) from which
// the Lemma 3.1 slot subsets are derived.
type Clustering struct {
	Cfg Config
	// ClusterOf maps each vertex to its dense cluster index.
	ClusterOf []int32
	// Layer maps each vertex to its layer: 0 at the center, and layer i
	// vertices joined from a layer i-1 neighbor in the same cluster.
	Layer []int32
	// Center maps each dense cluster index to its center vertex.
	Center []int32
	// Seed is the per-cluster shared randomness.
	Seed []uint64
	// Start records each vertex's rounded start time (analysis only).
	Start []int32
}

// NumClusters returns the number of clusters.
func (cl *Clustering) NumClusters() int { return len(cl.Center) }

// Radius returns the maximum layer (the deepest cluster's radius).
func (cl *Clustering) Radius() int32 {
	var r int32
	for _, l := range cl.Layer {
		if l > r {
			r = l
		}
	}
	return r
}

// Members returns the member lists of every cluster, each sorted by vertex.
func (cl *Clustering) Members() [][]int32 {
	out := make([][]int32, cl.NumClusters())
	for v, c := range cl.ClusterOf {
		out[c] = append(out[c], int32(v))
	}
	return out
}

// Subset returns the sorted slot indices of cluster c's shared subset
// S_C ⊆ [SubsetLen]: each slot is included independently with probability
// 1/C, derived deterministically from the cluster seed.
func (cl *Clustering) Subset(c int32) []int32 {
	var out []int32
	for j := 0; j < cl.Cfg.SubsetLen; j++ {
		if rng.Derive(cl.Seed[c], uint64(j), 0x5b5)%uint64(cl.Cfg.C) == 0 {
			out = append(out, int32(j))
		}
	}
	return out
}

// ClusterGraph returns the cluster graph G* = cluster(G, β): one vertex per
// cluster, with an edge between clusters containing adjacent members.
func (cl *Clustering) ClusterGraph(g *graph.Graph) *graph.Graph {
	b := graph.NewBuilder(cl.NumClusters())
	g.Edges(func(u, v int32) {
		cu, cv := cl.ClusterOf[u], cl.ClusterOf[v]
		if cu != cv {
			b.AddEdge(cu, cv)
		}
	})
	return b.Graph()
}

// StartTimes draws the rounded start times start_v = ⌈TMax - δ_v⌉ (clamped
// to [1, TMax]) with δ_v ~ Exponential(β), one independent draw per vertex.
func StartTimes(n int, cfg Config, seed uint64) []int32 {
	starts := make([]int32, n)
	beta := 1 / float64(cfg.InvBeta)
	for v := 0; v < n; v++ {
		r := rng.New(rng.Derive(seed, uint64(v), 0xde17a))
		s := int32(math.Ceil(float64(cfg.TMax) - r.Exp(beta)))
		if s < 1 {
			s = 1
		}
		if s > int32(cfg.TMax) {
			s = int32(cfg.TMax)
		}
		starts[v] = s
	}
	return starts
}

// Build runs the distributed MPX construction of Lemma 2.5 on net: TMax
// Local-Broadcasts in which every clustered vertex announces (cluster ID,
// layer, cluster seed) and every unclustered vertex listens, joining the
// cluster it hears. Unclustered vertices whose start time arrives become
// centers. The result is always a total partition: a vertex that never hears
// anything becomes its own cluster at its start time.
func Build(net lbnet.Net, cfg Config, seed uint64) *Clustering {
	return BuildWithStarts(net, cfg, StartTimes(net.N(), cfg, rng.Derive(seed, 0x57a27)), seed)
}

// BuildWithStarts is Build with externally supplied start times, enabling
// exact comparison against the centralized mirror.
func BuildWithStarts(net lbnet.Net, cfg Config, starts []int32, seed uint64) *Clustering {
	n := net.N()
	clusterOf := make([]int32, n) // center vertex ID during growth
	layer := make([]int32, n)
	seedOf := make([]uint64, n) // cluster seed as known to each member
	for v := range clusterOf {
		clusterOf[v] = -1
		layer[v] = -1
	}
	clustered := make([]int32, 0, n)
	unclustered := make([]int32, 0, n)
	senders := make([]radio.TX, 0, n)
	got := make([]radio.Msg, n)
	ok := make([]bool, n)

	for i := int32(1); i <= int32(cfg.TMax); i++ {
		// New centers: unclustered vertices whose start time has arrived.
		for v := int32(0); v < int32(n); v++ {
			if clusterOf[v] == -1 && starts[v] <= i {
				clusterOf[v] = v
				layer[v] = 0
				seedOf[v] = rng.Derive(seed, uint64(v), 0xc157e2)
			}
		}
		clustered, unclustered = clustered[:0], unclustered[:0]
		for v := int32(0); v < int32(n); v++ {
			if clusterOf[v] >= 0 {
				clustered = append(clustered, v)
			} else {
				unclustered = append(unclustered, v)
			}
		}
		if len(unclustered) == 0 {
			// Everyone is clustered; the remaining iterations are silent.
			net.SkipLB(int64(cfg.TMax) - int64(i) + 1)
			break
		}
		senders = senders[:0]
		for _, v := range clustered {
			senders = append(senders, radio.TX{ID: v, Msg: radio.Msg{
				Kind: MsgJoin,
				A:    uint64(clusterOf[v]),
				B:    uint64(layer[v]),
				C:    seedOf[v],
			}})
		}
		net.LocalBroadcast(senders, unclustered, got[:len(unclustered)], ok[:len(unclustered)])
		for j, v := range unclustered {
			if ok[j] && got[j].Kind == MsgJoin {
				clusterOf[v] = int32(got[j].A)
				layer[v] = int32(got[j].B) + 1
				seedOf[v] = got[j].C
			}
		}
	}
	return densify(cfg, clusterOf, layer, seedOf, starts)
}

// densify remaps center-vertex cluster IDs to dense indices sorted by center.
func densify(cfg Config, clusterOf, layer []int32, seedOf []uint64, starts []int32) *Clustering {
	n := len(clusterOf)
	centers := make([]int32, 0)
	for v := 0; v < n; v++ {
		if clusterOf[v] == int32(v) {
			centers = append(centers, int32(v))
		}
	}
	sort.Slice(centers, func(i, j int) bool { return centers[i] < centers[j] })
	dense := make(map[int32]int32, len(centers))
	seeds := make([]uint64, len(centers))
	for i, c := range centers {
		dense[c] = int32(i)
		seeds[i] = seedOf[c]
	}
	out := &Clustering{
		Cfg:       cfg,
		ClusterOf: make([]int32, n),
		Layer:     append([]int32(nil), layer...),
		Center:    centers,
		Seed:      seeds,
		Start:     append([]int32(nil), starts...),
	}
	for v := 0; v < n; v++ {
		out.ClusterOf[v] = dense[clusterOf[v]]
	}
	return out
}

// BuildRounded is the centralized mirror of BuildWithStarts under UnitNet
// semantics (delivery = minimum-ID clustered neighbor, no failures). Given
// identical start times it produces the identical clustering, which is how
// the distributed implementation is validated.
func BuildRounded(g *graph.Graph, cfg Config, starts []int32, seed uint64) *Clustering {
	n := g.N()
	clusterOf := make([]int32, n)
	layer := make([]int32, n)
	seedOf := make([]uint64, n)
	for v := range clusterOf {
		clusterOf[v] = -1
		layer[v] = -1
	}
	for i := int32(1); i <= int32(cfg.TMax); i++ {
		for v := int32(0); v < int32(n); v++ {
			if clusterOf[v] == -1 && starts[v] <= i {
				clusterOf[v] = v
				layer[v] = 0
				seedOf[v] = rng.Derive(seed, uint64(v), 0xc157e2)
			}
		}
		// Snapshot joins against the state at the start of the iteration.
		type join struct {
			v, from int32
		}
		var joins []join
		for v := int32(0); v < int32(n); v++ {
			if clusterOf[v] != -1 {
				continue
			}
			from := int32(-1)
			for _, u := range g.Neighbors(v) {
				if clusterOf[u] != -1 && layer[u] >= 0 && (from == -1 || u < from) {
					// Only vertices clustered before this iteration count;
					// same-iteration centers are senders too, so include them.
					from = u
				}
			}
			if from != -1 {
				joins = append(joins, join{v, from})
			}
		}
		for _, j := range joins {
			clusterOf[j.v] = clusterOf[j.from]
			layer[j.v] = layer[j.from] + 1
			seedOf[j.v] = seedOf[j.from]
		}
	}
	return densify(cfg, clusterOf, layer, seedOf, starts)
}

// IdealClustering is the fractional (non-rounded) MPX process: vertex v is
// assigned to the center u minimizing dist_G(u, v) - δ_u. It is the process
// Lemmas 2.1–2.3 are stated for, used to measure their constants.
type IdealClustering struct {
	ClusterOf []int32   // dense cluster index per vertex
	Center    []int32   // center vertex per cluster
	Delta     []float64 // δ per vertex
	Depth     []int32   // hop distance from the cluster center
}

type pqItem struct {
	key    float64
	tie    int32 // vertex id for deterministic tie-breaks
	v      int32
	center int32
	depth  int32
}

type pq []pqItem

func (p pq) Len() int { return len(p) }
func (p pq) Less(i, j int) bool {
	if p[i].key != p[j].key {
		return p[i].key < p[j].key
	}
	return p[i].tie < p[j].tie
}
func (p pq) Swap(i, j int) { p[i], p[j] = p[j], p[i] }
func (p *pq) Push(x any)   { *p = append(*p, x.(pqItem)) }
func (p *pq) Pop() any     { old := *p; x := old[len(old)-1]; *p = old[:len(old)-1]; return x }

// BuildIdeal runs the fractional MPX process with rate β = 1/invBeta.
func BuildIdeal(g *graph.Graph, invBeta int, seed uint64) *IdealClustering {
	n := g.N()
	beta := 1 / float64(invBeta)
	delta := make([]float64, n)
	for v := 0; v < n; v++ {
		delta[v] = rng.New(rng.Derive(seed, uint64(v), 0x1dea1)).Exp(beta)
	}
	owner := make([]int32, n)
	depth := make([]int32, n)
	best := make([]float64, n)
	settled := make([]bool, n)
	for v := range owner {
		owner[v] = -1
		best[v] = math.Inf(1)
	}
	h := make(pq, 0, n)
	for v := int32(0); v < int32(n); v++ {
		h = append(h, pqItem{key: -delta[v], tie: v, v: v, center: v, depth: 0})
	}
	heap.Init(&h)
	for h.Len() > 0 {
		it := heap.Pop(&h).(pqItem)
		if settled[it.v] {
			continue
		}
		settled[it.v] = true
		owner[it.v] = it.center
		depth[it.v] = it.depth
		for _, u := range g.Neighbors(it.v) {
			if settled[u] {
				continue
			}
			key := it.key + 1
			if key < best[u] {
				best[u] = key
				heap.Push(&h, pqItem{key: key, tie: u, v: u, center: it.center, depth: it.depth + 1})
			}
		}
	}
	// Densify.
	centers := make([]int32, 0)
	for v := int32(0); v < int32(n); v++ {
		if owner[v] == v {
			centers = append(centers, v)
		}
	}
	dense := make(map[int32]int32, len(centers))
	for i, c := range centers {
		dense[c] = int32(i)
	}
	out := &IdealClustering{
		ClusterOf: make([]int32, n),
		Center:    centers,
		Delta:     delta,
		Depth:     depth,
	}
	for v := 0; v < n; v++ {
		out.ClusterOf[v] = dense[owner[v]]
	}
	return out
}

// ClusterGraphOf builds the cluster graph for an arbitrary assignment.
func ClusterGraphOf(g *graph.Graph, clusterOf []int32, numClusters int) *graph.Graph {
	b := graph.NewBuilder(numClusters)
	g.Edges(func(u, v int32) {
		cu, cv := clusterOf[u], clusterOf[v]
		if cu != cv {
			b.AddEdge(cu, cv)
		}
	})
	return b.Graph()
}
