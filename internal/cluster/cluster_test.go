package cluster

import (
	"math"
	"testing"

	"repro/internal/graph"
	"repro/internal/lbnet"
	"repro/internal/rng"
)

func testGraphs(r *rng.Source) map[string]*graph.Graph {
	return map[string]*graph.Graph{
		"path":      graph.Path(100),
		"cycle":     graph.Cycle(90),
		"grid":      graph.Grid(10, 10),
		"gnp":       graph.ConnectedGNP(100, 0.05, r),
		"tree":      graph.BinaryTree(63),
		"geometric": graph.RandomGeometric(120, 0.15, r, true),
	}
}

func TestDefaultConfigShape(t *testing.T) {
	cfg := DefaultConfig(1024, 8)
	if cfg.TMax != 2*10*8 { // 2·⌈log₂ 1024⌉·invBeta
		t.Fatalf("TMax = %d", cfg.TMax)
	}
	if cfg.C < 3 {
		t.Fatalf("C = %d", cfg.C)
	}
	if cfg.SubsetLen < cfg.C {
		t.Fatalf("SubsetLen = %d < C = %d", cfg.SubsetLen, cfg.C)
	}
	// Larger β (smaller InvBeta) means more contention tolerance needed.
	if DefaultConfig(1024, 2).C < DefaultConfig(1024, 32).C {
		t.Fatal("contention bound should shrink as β shrinks")
	}
}

func TestStartTimesInRange(t *testing.T) {
	cfg := DefaultConfig(256, 4)
	starts := StartTimes(256, cfg, 7)
	for v, s := range starts {
		if s < 1 || s > int32(cfg.TMax) {
			t.Fatalf("start[%d] = %d outside [1, %d]", v, s, cfg.TMax)
		}
	}
	// Exponential concentration: most vertices should start near TMax.
	late := 0
	for _, s := range starts {
		if s > int32(cfg.TMax/2) {
			late++
		}
	}
	if late < 200 {
		t.Fatalf("only %d/256 start in the second half of the window", late)
	}
}

func TestBuildPartitionOnFamilies(t *testing.T) {
	r := rng.New(3)
	for name, g := range testGraphs(r) {
		cfg := DefaultConfig(g.N(), 4)
		net := lbnet.NewUnitNet(g, 0, 11)
		cl := Build(net, cfg, 11)
		if bad := IsPartition(g, cl); bad != 0 {
			t.Errorf("%s: %d partition violations", name, bad)
		}
		if bad := LayersConsistent(g, cl); bad != 0 {
			t.Errorf("%s: %d layer violations", name, bad)
		}
		if rad := cl.Radius(); rad > int32(cfg.TMax) {
			t.Errorf("%s: radius %d exceeds TMax %d", name, rad, cfg.TMax)
		}
	}
}

func TestBuildMatchesCentralizedMirror(t *testing.T) {
	r := rng.New(5)
	for name, g := range testGraphs(r) {
		cfg := DefaultConfig(g.N(), 4)
		starts := StartTimes(g.N(), cfg, 21)
		net := lbnet.NewUnitNet(g, 0, 33)
		dist := BuildWithStarts(net, cfg, starts, 33)
		mirror := BuildRounded(g, cfg, starts, 33)
		if dist.NumClusters() != mirror.NumClusters() {
			t.Fatalf("%s: cluster counts differ: %d vs %d", name, dist.NumClusters(), mirror.NumClusters())
		}
		for v := range dist.ClusterOf {
			if dist.ClusterOf[v] != mirror.ClusterOf[v] || dist.Layer[v] != mirror.Layer[v] {
				t.Fatalf("%s: vertex %d differs: cluster %d/%d layer %d/%d",
					name, v, dist.ClusterOf[v], mirror.ClusterOf[v], dist.Layer[v], mirror.Layer[v])
			}
		}
	}
}

func TestBuildDeterministic(t *testing.T) {
	g := graph.Grid(8, 8)
	cfg := DefaultConfig(64, 4)
	a := Build(lbnet.NewUnitNet(g, 0, 9), cfg, 9)
	b := Build(lbnet.NewUnitNet(g, 0, 9), cfg, 9)
	for v := range a.ClusterOf {
		if a.ClusterOf[v] != b.ClusterOf[v] {
			t.Fatal("clustering not deterministic")
		}
	}
}

func TestBuildSurvivesLBFailures(t *testing.T) {
	// Even with 20% LB failures the result must be a valid partition (joins
	// are only delayed, never corrupted).
	g := graph.Grid(9, 9)
	cfg := DefaultConfig(81, 4)
	net := lbnet.NewUnitNet(g, 0.2, 13)
	cl := Build(net, cfg, 13)
	if bad := IsPartition(g, cl); bad != 0 {
		t.Fatalf("%d partition violations under failure injection", bad)
	}
	if bad := LayersConsistent(g, cl); bad != 0 {
		t.Fatalf("%d layer violations under failure injection", bad)
	}
}

func TestClusterEnergyAndTime(t *testing.T) {
	// Lemma 2.5: clustering takes exactly TMax Local-Broadcast units
	// (possibly cut short when everyone is clustered) and every vertex
	// participates in at most TMax of them.
	g := graph.Grid(10, 10)
	cfg := DefaultConfig(100, 4)
	net := lbnet.NewUnitNet(g, 0, 17)
	Build(net, cfg, 17)
	if net.LBTime() != int64(cfg.TMax) {
		t.Fatalf("clustering time = %d LB units, want %d", net.LBTime(), cfg.TMax)
	}
	if e := lbnet.MaxLBEnergy(net); e > int64(cfg.TMax) {
		t.Fatalf("max energy %d exceeds TMax %d", e, cfg.TMax)
	}
}

func TestClusterGraphStructure(t *testing.T) {
	g := graph.Grid(12, 12)
	cfg := DefaultConfig(144, 4)
	cl := Build(lbnet.NewUnitNet(g, 0, 19), cfg, 19)
	cg := cl.ClusterGraph(g)
	if cg.N() != cl.NumClusters() {
		t.Fatalf("cluster graph has %d vertices, want %d", cg.N(), cl.NumClusters())
	}
	// The cluster graph of a connected graph is connected.
	if !graph.IsConnected(cg) {
		t.Fatal("cluster graph of connected graph is disconnected")
	}
	// No self-loops by construction.
	cg.Edges(func(u, v int32) {
		if u == v {
			t.Fatal("self-loop in cluster graph")
		}
	})
}

func TestSubsetDistribution(t *testing.T) {
	cfg := DefaultConfig(256, 8)
	cl := &Clustering{Cfg: cfg, Seed: make([]uint64, 200), Center: make([]int32, 200)}
	for c := range cl.Seed {
		cl.Seed[c] = rng.Derive(77, uint64(c))
	}
	total := 0
	for c := 0; c < 200; c++ {
		s := cl.Subset(int32(c))
		total += len(s)
		for i := 1; i < len(s); i++ {
			if s[i] <= s[i-1] {
				t.Fatal("subset not sorted/unique")
			}
		}
	}
	mean := float64(total) / 200
	want := float64(cfg.SubsetLen) / float64(cfg.C)
	if mean < 0.7*want || mean > 1.3*want {
		t.Fatalf("mean subset size %.1f, want ~%.1f", mean, want)
	}
}

// TestRadiusBound is Lemma 2.5's w.h.p. radius bound: all clusters have
// radius < TMax, and in fact concentrate well below it.
func TestRadiusBound(t *testing.T) {
	r := rng.New(23)
	for trial := 0; trial < 5; trial++ {
		g := graph.ConnectedGNP(200, 0.03, r)
		cfg := DefaultConfig(200, 4)
		cl := Build(lbnet.NewUnitNet(g, 0, uint64(trial)), cfg, uint64(trial))
		if rad := cl.Radius(); rad > int32(cfg.TMax) {
			t.Fatalf("radius %d > TMax %d", rad, cfg.TMax)
		}
	}
}

// TestCutFraction is the O(β) cut bound: on bounded-degree graphs the
// fraction of cut edges should scale roughly like β.
func TestCutFraction(t *testing.T) {
	g := graph.Cycle(4000)
	for _, invBeta := range []int{4, 16} {
		cfg := DefaultConfig(4000, invBeta)
		var total float64
		const trials = 3
		for trial := 0; trial < trials; trial++ {
			cl := Build(lbnet.NewUnitNet(g, 0, uint64(100+trial)), cfg, uint64(100+trial*7+invBeta))
			total += CutFraction(g, cl.ClusterOf)
		}
		mean := total / trials
		beta := 1 / float64(invBeta)
		if mean > 4*beta {
			t.Errorf("invBeta=%d: cut fraction %.4f far above O(β)=%.4f", invBeta, mean, beta)
		}
		if mean == 0 {
			t.Errorf("invBeta=%d: zero cut edges on a 4000-cycle is implausible", invBeta)
		}
	}
}

// TestBallClusterCountsLemma21 checks the Lemma 2.1 tail: the number of
// clusters intersecting Ball(v, ℓ) exceeds j with probability at most
// (1 - e^(-2ℓβ))^j, so the observed counts must be small.
func TestBallClusterCountsLemma21(t *testing.T) {
	g := graph.Grid(20, 20)
	invBeta := 4
	ideal := BuildIdeal(g, invBeta, 31)
	counts := BallClusterCounts(g, ideal.ClusterOf, 1)
	beta := 1 / float64(invBeta)
	q := 1 - math.Exp(-2*beta)
	// j such that q^j < 1/(100·n): essentially no vertex should exceed it.
	j := int(math.Ceil(math.Log(1.0/(100*400)) / math.Log(q)))
	for v, c := range counts {
		if c-1 > j { // count > j+1 clusters beyond own
			t.Fatalf("vertex %d sees %d clusters in Ball(v,1); Lemma 2.1 cutoff %d", v, c, j+1)
		}
	}
}

func TestBuildIdealPartition(t *testing.T) {
	r := rng.New(37)
	g := graph.ConnectedGNP(150, 0.04, r)
	ideal := BuildIdeal(g, 4, 41)
	if len(ideal.ClusterOf) != 150 {
		t.Fatal("wrong size")
	}
	for v, c := range ideal.ClusterOf {
		if c < 0 || int(c) >= len(ideal.Center) {
			t.Fatalf("vertex %d unassigned", v)
		}
	}
	// Every center belongs to its own cluster with depth 0.
	for c, center := range ideal.Center {
		if ideal.ClusterOf[center] != int32(c) || ideal.Depth[center] != 0 {
			t.Fatalf("center %d not in its own cluster", center)
		}
	}
}

// TestIdealDistancePreservation measures Lemma 2.2's upper bound: for any
// pair, dist_G*(Cl(u), Cl(v)) <= ⌈dist_G(u,v)·β⌉·C·log n w.h.p.
func TestIdealDistancePreservation(t *testing.T) {
	g := graph.Path(400)
	invBeta := 8
	ideal := BuildIdeal(g, invBeta, 43)
	cg := ClusterGraphOf(g, ideal.ClusterOf, len(ideal.Center))
	distStar := graph.BFS(cg, ideal.ClusterOf[0])
	lg := math.Log2(400)
	const bigC = 8
	for v := 0; v < 400; v += 7 {
		d := float64(v) // dist on a path
		ds := float64(distStar[ideal.ClusterOf[v]])
		upper := math.Ceil(d/float64(invBeta))*bigC*lg + bigC*lg
		if ds > upper {
			t.Fatalf("pair (0,%d): dist* = %v exceeds Lemma 2.2 upper %v", v, ds, upper)
		}
		lower := math.Floor(d / float64(invBeta) / (8 * lg))
		if ds < lower {
			t.Fatalf("pair (0,%d): dist* = %v below Lemma 2.2 lower %v", v, ds, lower)
		}
	}
}

func TestSubsetPropertyHolds(t *testing.T) {
	r := rng.New(47)
	g := graph.ConnectedGNP(200, 0.03, r)
	cfg := DefaultConfig(200, 4)
	cl := Build(lbnet.NewUnitNet(g, 0, 51), cfg, 51)
	if bad := SubsetProperty(g, cl); bad != 0 {
		t.Fatalf("property (2) fails at %d vertices", bad)
	}
}

func TestSingletonGraph(t *testing.T) {
	g := graph.Path(1)
	cfg := DefaultConfig(1, 2)
	cl := Build(lbnet.NewUnitNet(g, 0, 1), cfg, 1)
	if cl.NumClusters() != 1 || cl.Layer[0] != 0 {
		t.Fatalf("singleton clustering wrong: %+v", cl)
	}
}

func TestMembersSortedAndComplete(t *testing.T) {
	g := graph.Grid(7, 7)
	cfg := DefaultConfig(49, 4)
	cl := Build(lbnet.NewUnitNet(g, 0, 3), cfg, 3)
	seen := 0
	for c, mem := range cl.Members() {
		for i, v := range mem {
			if cl.ClusterOf[v] != int32(c) {
				t.Fatal("member list inconsistent")
			}
			if i > 0 && mem[i-1] >= v {
				t.Fatal("member list unsorted")
			}
			seen++
		}
	}
	if seen != 49 {
		t.Fatalf("members cover %d vertices, want 49", seen)
	}
}

func BenchmarkBuildUnitNet(b *testing.B) {
	g := graph.Grid(32, 32)
	cfg := DefaultConfig(1024, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Build(lbnet.NewUnitNet(g, 0, uint64(i)), cfg, uint64(i))
	}
}
