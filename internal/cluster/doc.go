// Package cluster implements the Miller–Peng–Xu graph clustering at the core
// of the paper's §2: every vertex draws δ_v ~ Exponential(β), a cluster
// starts growing from v at time -δ_v, and every vertex joins the first
// cluster to reach it. The paper's distributed variant (§2.2, Lemma 2.5)
// rounds start times to integers and grows clusters with one Local-Broadcast
// per time unit; it is implemented here against the lbnet.Net interface, so
// it runs on physical radio networks, on the LB-unit cost model, and on
// virtual cluster graphs (enabling the recursive construction of §4).
//
// Centralized mirrors (BuildRounded, BuildIdeal) reproduce the same process
// without communication, for cross-validation and for measuring the
// distance-preservation properties of Lemmas 2.1–2.3.
//
// Determinism contract: every random choice — the exponential start delays
// and the shared-subset draws — comes from the seed passed to Build (split
// through rng.Derive), never from global state, so a clustering is a pure
// function of (graph, config, seed). The experiment harness depends on this
// to keep multi-worker sweeps byte-reproducible.
package cluster
