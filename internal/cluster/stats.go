package cluster

import (
	"repro/internal/graph"
)

// CutFraction returns the fraction of edges of g whose endpoints lie in
// different clusters. Lemma 2.5's process cuts an O(β) fraction in
// expectation. Returns 0 for edgeless graphs.
func CutFraction(g *graph.Graph, clusterOf []int32) float64 {
	if g.M() == 0 {
		return 0
	}
	cut := 0
	g.Edges(func(u, v int32) {
		if clusterOf[u] != clusterOf[v] {
			cut++
		}
	})
	return float64(cut) / float64(g.M())
}

// BallClusterCounts returns, for every vertex v, the number of distinct
// clusters intersecting Ball_G(v, ℓ) — the quantity bounded by Lemma 2.1:
// P(count > j) <= (1 - e^(-2ℓβ))^j.
func BallClusterCounts(g *graph.Graph, clusterOf []int32, ell int) []int {
	n := g.N()
	out := make([]int, n)
	seen := make(map[int32]struct{}, 16)
	dist := make([]int32, n)
	queue := make([]int32, 0, n)
	for i := range dist {
		dist[i] = -1
	}
	for v := int32(0); v < int32(n); v++ {
		clear(seen)
		queue = append(queue[:0], v)
		dist[v] = 0
		seen[clusterOf[v]] = struct{}{}
		for head := 0; head < len(queue); head++ {
			u := queue[head]
			if int(dist[u]) >= ell {
				continue
			}
			for _, w := range g.Neighbors(u) {
				if dist[w] == -1 {
					dist[w] = dist[u] + 1
					seen[clusterOf[w]] = struct{}{}
					queue = append(queue, w)
				}
			}
		}
		out[v] = len(seen)
		for _, u := range queue {
			dist[u] = -1
		}
	}
	return out
}

// LayersConsistent verifies the defining property of the layer labels: the
// center has layer 0, and every layer-i > 0 vertex has a same-cluster
// neighbor at layer i-1. It returns the number of violating vertices.
func LayersConsistent(g *graph.Graph, cl *Clustering) int {
	bad := 0
	for v := int32(0); v < int32(g.N()); v++ {
		l := cl.Layer[v]
		if l == 0 {
			if cl.Center[cl.ClusterOf[v]] != v {
				bad++
			}
			continue
		}
		found := false
		for _, u := range g.Neighbors(v) {
			if cl.ClusterOf[u] == cl.ClusterOf[v] && cl.Layer[u] == l-1 {
				found = true
				break
			}
		}
		if !found {
			bad++
		}
	}
	return bad
}

// SubsetProperty counts the vertices v for which property (2) of Lemma 3.1
// fails: there is no slot j in S_Cl(v) avoided by every other cluster with a
// member in N(v) ∪ {v}. With the paper's parameters this should be zero
// w.h.p.
func SubsetProperty(g *graph.Graph, cl *Clustering) int {
	subsets := make([][]int32, cl.NumClusters())
	for c := range subsets {
		subsets[c] = cl.Subset(int32(c))
	}
	inSubset := func(c int32, j int32) bool {
		s := subsets[c]
		lo, hi := 0, len(s)
		for lo < hi {
			mid := (lo + hi) / 2
			if s[mid] < j {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return lo < len(s) && s[lo] == j
	}
	bad := 0
	var neigh []int32
	for v := int32(0); v < int32(g.N()); v++ {
		own := cl.ClusterOf[v]
		neigh = neigh[:0]
		for _, u := range g.Neighbors(v) {
			c := cl.ClusterOf[u]
			if c != own {
				neigh = append(neigh, c)
			}
		}
		good := false
		for _, j := range subsets[own] {
			conflict := false
			for _, c := range neigh {
				if inSubset(c, j) {
					conflict = true
					break
				}
			}
			if !conflict {
				good = true
				break
			}
		}
		if !good {
			bad++
		}
	}
	return bad
}

// IsPartition checks that every vertex has a cluster and a layer and that
// each cluster's members induce a connected subgraph containing the center.
// Returns the number of violations.
func IsPartition(g *graph.Graph, cl *Clustering) int {
	bad := 0
	n := g.N()
	for v := 0; v < n; v++ {
		if cl.ClusterOf[v] < 0 || int(cl.ClusterOf[v]) >= cl.NumClusters() || cl.Layer[v] < 0 {
			bad++
		}
	}
	// Connectivity within clusters: BFS from the center restricted to the
	// cluster must reach every member.
	members := cl.Members()
	mark := make([]bool, n)
	var queue []int32
	for c, mem := range members {
		if len(mem) == 0 {
			bad++
			continue
		}
		center := cl.Center[c]
		queue = append(queue[:0], center)
		mark[center] = true
		reached := 1
		for head := 0; head < len(queue); head++ {
			u := queue[head]
			for _, w := range g.Neighbors(u) {
				if !mark[w] && cl.ClusterOf[w] == int32(c) {
					mark[w] = true
					reached++
					queue = append(queue, w)
				}
			}
		}
		if reached != len(mem) {
			bad++
		}
		for _, u := range queue {
			mark[u] = false
		}
	}
	return bad
}
