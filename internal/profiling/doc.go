// Package profiling wires the standard -cpuprofile/-memprofile flags into
// the CLI drivers (`radiobfs sweep`, cmd/experiments), so performance work
// on the simulation hot path stays profile-driven: run a sweep or
// experiment with the flags and feed the output to `go tool pprof`.
//
// It exists as a package — rather than four lines per driver — so every
// driver stops profiles the same way: Start returns a stop function that
// flushes the CPU profile and captures the heap profile after a GC, and is
// safe to call when neither flag was given. Profiling never touches the
// simulation's randomness or output: stdout bytes are identical with and
// without it.
package profiling
