package profiling

import (
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling (when cpuPath is non-empty) and returns a stop
// function that ends it and writes a heap profile (when memPath is
// non-empty). Either path may be empty; the stop function is always safe to
// call exactly once.
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, err
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return err
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return err
			}
			defer f.Close()
			runtime.GC() // materialize final live-heap statistics
			if err := pprof.WriteHeapProfile(f); err != nil {
				return err
			}
		}
		return nil
	}, nil
}
