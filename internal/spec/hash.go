package spec

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"runtime/debug"
	"sync"
)

// CanonicalHash returns the hex SHA-256 of the file's canonical encoding:
// the encoding/json rendering of the parsed File, which has stable struct
// field order, sorted map keys (Params/Args), and no insignificant
// whitespace. Two spec documents that parse to the same File — regardless
// of formatting, field order in the source JSON, or which file they came
// from — therefore hash identically, and any semantic field change (a
// different trial count, parameter value, instance size, …) changes the
// hash. This is the spec half of the serving layer's content-addressed
// cache key (internal/serve); the other halves are the effective root seed
// and CodeVersion.
//
// The hash covers the document as written: the optional Seed field
// participates even though drivers may override it at run time, which is
// why cache keys combine the hash with the *effective* root seed rather
// than trusting the embedded one.
func (f *File) CanonicalHash() (string, error) {
	b, err := f.Encode()
	if err != nil {
		return "", fmt.Errorf("spec: canonical hash: %w", err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// codeVersion memoizes the build stamp; build info cannot change within a
// process.
var codeVersion = sync.OnceValue(func() string {
	return codeVersionFrom(debug.ReadBuildInfo())
})

// CodeVersion identifies the running build: the VCS revision (truncated to
// 12 hex characters, "+dirty" when the working tree was modified) when the
// toolchain stamped one, else the main module version (itself a
// VCS-derived pseudo-version on modern toolchains, which is why the
// revision takes priority — using both would state the same commit twice),
// else "dev" (tests, `go run` without VCS metadata). It is stamped into
// every manifest.json and into the serving layer's cache keys, so cached
// results never survive a code change: a new build hashes to new keys and
// recomputes.
//
// The stamp is a pure function of the build, never of time or host, so
// artifacts written by one binary remain byte-identical across runs,
// worker counts, and machines.
func CodeVersion() string {
	return codeVersion()
}

// codeVersionFrom derives the stamp from one build-info reading; split out
// so tests can exercise the fallback and assembly logic deterministically.
func codeVersionFrom(info *debug.BuildInfo, ok bool) string {
	if !ok || info == nil {
		return "dev"
	}
	revision, modified := "", false
	for _, kv := range info.Settings {
		switch kv.Key {
		case "vcs.revision":
			revision = kv.Value
		case "vcs.modified":
			modified = kv.Value == "true"
		}
	}
	if len(revision) > 12 {
		revision = revision[:12]
	}
	if revision != "" {
		if modified {
			revision += "+dirty"
		}
		return revision
	}
	if v := info.Main.Version; v != "" && v != "(devel)" {
		return v
	}
	return "dev"
}
