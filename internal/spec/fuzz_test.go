// Fuzzing for the spec parser lives in an external test package: the seed
// corpus is the embedded scenario library, and scenarios imports spec, so an
// internal test would be an import cycle.
package spec_test

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"repro/internal/spec"
	"repro/scenarios"
)

var updateFuzzCorpus = flag.Bool("update-fuzz-corpus", false, "rewrite the testdata/fuzz/FuzzParseSpec seed corpus from the embedded scenario library")

// degenerateSeeds are hand-picked non-scenario inputs: boundary shapes the
// fuzzer should start mutating from alongside the real spec files.
var degenerateSeeds = map[string][]byte{
	"seed_empty":        []byte(""),
	"seed_empty_object": []byte("{}"),
	"seed_not_json":     []byte("not json"),
	"seed_trailing":     []byte(`{"name":"x"} {"name":"y"}`),
	"seed_unknown_key":  []byte(`{"name":"x","mystery":1}`),
	"seed_bad_types":    []byte(`{"name":1,"seed":"nine","scenarios":{}}`),
	"seed_deep_partial": []byte(`{"name":"x","scenarios":[{"name":"s","algorithm":"recursive","instances":[{"family":`),
}

// TestWriteParseSpecCorpus regenerates the checked-in seed corpus (run with
// -update-fuzz-corpus after adding scenario files). Keeping the corpus in
// the repo lets `go test -fuzz` start from every real experiment spec and
// lets plain `go test` replay them as regression cases.
func TestWriteParseSpecCorpus(t *testing.T) {
	if !*updateFuzzCorpus {
		t.Skip("corpus regeneration runs only with -update-fuzz-corpus")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzParseSpec")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	entries := map[string][]byte{}
	for _, name := range scenarios.Names() {
		b, err := scenarios.FS.ReadFile(name)
		if err != nil {
			t.Fatal(err)
		}
		entries["seed_"+strings.TrimSuffix(name, ".json")] = b
	}
	for name, b := range degenerateSeeds {
		entries[name] = b
	}
	for name, data := range entries {
		content := "go test fuzz v1\n[]byte(" + strconv.Quote(string(data)) + ")\n"
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// FuzzParseSpec throws arbitrary bytes at the spec parser and holds the
// survivors to the package's contracts: parsing never panics, a parsed file
// validates without panicking, and the canonical encoding is a fixed point
// (Parse∘Encode is the identity on encoded forms) with a stable canonical
// hash — the properties the dist handshake and the serve cache key both
// stand on.
func FuzzParseSpec(f *testing.F) {
	for _, name := range scenarios.Names() {
		b, err := scenarios.FS.ReadFile(name)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
	}
	for _, b := range degenerateSeeds {
		f.Add(b)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		fl, err := spec.Parse(bytes.NewReader(data))
		if err != nil {
			return // rejected inputs just need to not panic
		}
		_ = fl.Validate() // either verdict is fine; panics are not
		raw, err := fl.Encode()
		if err != nil {
			t.Fatalf("parsed spec failed to encode: %v", err)
		}
		fl2, err := spec.Parse(bytes.NewReader(raw))
		if err != nil {
			t.Fatalf("canonical encoding does not re-parse: %v\nencoding: %s", err, raw)
		}
		raw2, err := fl2.Encode()
		if err != nil {
			t.Fatalf("re-encoding failed: %v", err)
		}
		if !bytes.Equal(raw, raw2) {
			t.Fatalf("canonical encoding is not a fixed point:\n%s\nvs\n%s", raw, raw2)
		}
		h1, err1 := fl.CanonicalHash()
		h2, err2 := fl2.CanonicalHash()
		if (err1 == nil) != (err2 == nil) || h1 != h2 {
			t.Fatalf("canonical hash unstable across the encode round trip: %q (%v) vs %q (%v)", h1, err1, h2, err2)
		}
	})
}

// TestParseSpecSeedCorpus replays every embedded scenario file through the
// fuzz target's property set under plain `go test`, so the contract holds
// in CI runs that never invoke the fuzzer.
func TestParseSpecSeedCorpus(t *testing.T) {
	for _, name := range scenarios.Names() {
		b, err := scenarios.FS.ReadFile(name)
		if err != nil {
			t.Fatal(err)
		}
		fl, err := spec.Parse(bytes.NewReader(b))
		if err != nil {
			t.Errorf("%s: embedded scenario does not parse: %v", name, err)
			continue
		}
		if err := fl.Validate(); err != nil {
			t.Errorf("%s: embedded scenario does not validate: %v", name, err)
		}
		raw, err := fl.Encode()
		if err != nil {
			t.Fatalf("%s: encode: %v", name, err)
		}
		fl2, err := spec.Parse(bytes.NewReader(raw))
		if err != nil {
			t.Fatalf("%s: canonical encoding does not re-parse: %v", name, err)
		}
		raw2, err := fl2.Encode()
		if err != nil || !bytes.Equal(raw, raw2) {
			t.Errorf("%s: canonical encoding is not a fixed point (%v)", name, err)
		}
	}
}
