package spec

import (
	"bytes"
	"encoding/json"
	"regexp"
	"runtime/debug"
	"sync"
	"testing"

	"repro/internal/harness"
)

// TestManifestRoundTrip executes a small spec, writes its manifest, and
// decodes it back: every field — including the code-version stamp — must
// survive the JSON round trip exactly.
func TestManifestRoundTrip(t *testing.T) {
	f := parseRunnable(t)
	out, err := ExecuteFile(f, 2, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := out.writeManifest(&buf); err != nil {
		t.Fatal(err)
	}
	var m Manifest
	dec := json.NewDecoder(bytes.NewReader(buf.Bytes()))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&m); err != nil {
		t.Fatalf("manifest does not decode strictly: %v\n%s", err, buf.String())
	}
	if m.Name != f.Name || m.RootSeed != f.RootSeed() {
		t.Errorf("manifest coordinates = (%s, %d), want (%s, %d)", m.Name, m.RootSeed, f.Name, f.RootSeed())
	}
	if m.CodeVersion != CodeVersion() {
		t.Errorf("manifest codeVersion = %q, want %q", m.CodeVersion, CodeVersion())
	}
	if m.CodeVersion == "" {
		t.Error("manifest codeVersion is empty; want at least the \"dev\" fallback")
	}
	if m.Trials != len(out.Results) || m.Errors != out.Errors() {
		t.Errorf("manifest counts = (%d, %d), want (%d, %d)", m.Trials, m.Errors, len(out.Results), out.Errors())
	}
	if len(m.Scenarios) != len(f.Scenarios) {
		t.Fatalf("manifest has %d scenarios, want %d", len(m.Scenarios), len(f.Scenarios))
	}

	// Re-encoding the decoded manifest must reproduce the written bytes —
	// the round trip is lossless in both directions.
	var re bytes.Buffer
	enc := json.NewEncoder(&re)
	enc.SetIndent("", "  ")
	if err := enc.Encode(&m); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(re.Bytes(), buf.Bytes()) {
		t.Errorf("manifest re-encode differs:\n%s\nvs\n%s", re.String(), buf.String())
	}
}

// TestCodeVersionFrom pins the stamp assembly: the VCS revision (with the
// dirty marker) wins over the module version — on modern toolchains the
// module version is itself a VCS pseudo-version, so combining the two
// would state the same commit twice — and "dev" is the fallback.
func TestCodeVersionFrom(t *testing.T) {
	bi := func(version string, settings ...debug.BuildSetting) *debug.BuildInfo {
		info := &debug.BuildInfo{Settings: settings}
		info.Main.Version = version
		return info
	}
	cases := []struct {
		name string
		info *debug.BuildInfo
		ok   bool
		want string
	}{
		{"no-build-info", nil, false, "dev"},
		{"empty", bi(""), true, "dev"},
		{"devel-no-vcs", bi("(devel)"), true, "dev"},
		{"module-version", bi("v1.2.3"), true, "v1.2.3"},
		{"revision", bi("(devel)", debug.BuildSetting{Key: "vcs.revision", Value: "0123456789abcdef0123"}), true, "0123456789ab"},
		{"revision-dirty", bi("", debug.BuildSetting{Key: "vcs.revision", Value: "0123456789abcdef0123"},
			debug.BuildSetting{Key: "vcs.modified", Value: "true"}), true, "0123456789ab+dirty"},
		{"version-and-revision", bi("v0.9.0", debug.BuildSetting{Key: "vcs.revision", Value: "feedfacecafe"}), true, "feedfacecafe"},
		{"pseudo-version-and-revision", bi("v0.0.0-20260807182203-492d40905821+dirty",
			debug.BuildSetting{Key: "vcs.revision", Value: "492d40905821aabbccdd"},
			debug.BuildSetting{Key: "vcs.modified", Value: "true"}), true, "492d40905821+dirty"},
	}
	for _, c := range cases {
		if got := codeVersionFrom(c.info, c.ok); got != c.want {
			t.Errorf("%s: codeVersionFrom = %q, want %q", c.name, got, c.want)
		}
	}
	// The process-wide stamp must be stable and non-empty.
	if v := CodeVersion(); v == "" || v != CodeVersion() {
		t.Errorf("CodeVersion() unstable or empty: %q then %q", v, CodeVersion())
	}
	if !regexp.MustCompile(`^[A-Za-z0-9.+-]+$`).MatchString(CodeVersion()) {
		t.Errorf("CodeVersion() %q has characters unsafe for cache-key material", CodeVersion())
	}
}

// TestOnTrialHookThroughExecuteFile verifies the Options.OnTrial plumbing:
// every trial is reported exactly once and the reported set equals the
// returned results.
func TestOnTrialHookThroughExecuteFile(t *testing.T) {
	f := parseRunnable(t)
	type key struct {
		scenario string
		family   string
		n        int
		index    int
	}
	var mu sync.Mutex
	seen := map[key]int{}
	got := 0
	onTrial := func(res harness.Result) {
		mu.Lock()
		defer mu.Unlock()
		seen[key{res.Scenario, res.Family, res.N, res.Index}]++
		got++
	}
	out, err := ExecuteFile(f, 4, 0, Options{OnTrial: onTrial})
	if err != nil {
		t.Fatal(err)
	}
	if got != len(out.Results) {
		t.Fatalf("OnTrial fired %d times for %d trials", got, len(out.Results))
	}
	for _, res := range out.Results {
		k := key{res.Scenario, res.Family, res.N, res.Index}
		if seen[k] != 1 {
			t.Errorf("trial %+v reported %d times", k, seen[k])
		}
	}
}
