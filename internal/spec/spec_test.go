package spec

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/harness"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestParseValidateRoundTrip pins the full feature surface: the exhaustive
// testdata spec parses, validates, survives a marshal → reparse round trip
// unchanged, and compiles to the golden harness-scenario shapes in both
// full and quick modes.
func TestParseValidateRoundTrip(t *testing.T) {
	f, err := ParseFile("testdata/full.json")
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	if got, want := f.RootSeed(), uint64(9); got != want {
		t.Fatalf("RootSeed = %d, want %d", got, want)
	}

	// Round trip: the parsed representation is lossless under the strict
	// decoder, so specs can be programmatically rewritten.
	blob, err := json.Marshal(f)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Parse(bytes.NewReader(blob))
	if err != nil {
		t.Fatalf("reparse after marshal: %v", err)
	}
	if !reflect.DeepEqual(f, back) {
		t.Fatalf("round trip changed the spec:\n before %+v\n after  %+v", f, back)
	}

	custom := map[string]CustomFunc{
		"demo/custom": func(sc *Scenario) (harness.TrialCtxFunc, error) {
			if sc.Args["x"] != 2 {
				t.Errorf("custom factory got args %v, want x=2", sc.Args)
			}
			return func(*harness.Context, harness.Trial) (harness.Metrics, error) {
				return harness.Metrics{"one": 1}, nil
			}, nil
		},
	}
	for _, mode := range []struct {
		name   string
		quick  bool
		golden string
	}{
		{"full", false, "testdata/full_compiled.golden"},
		{"quick", true, "testdata/full_compiled_quick.golden"},
	} {
		scs, err := Compile(f, Options{Quick: mode.quick, Custom: custom})
		if err != nil {
			t.Fatalf("%s compile: %v", mode.name, err)
		}
		got := compiledSummary(t, scs)
		if *update {
			if err := os.WriteFile(mode.golden, got, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		want, err := os.ReadFile(mode.golden)
		if err != nil {
			t.Fatalf("%v (run with -update to record)", err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s compile mismatch with %s:\n got %s\nwant %s", mode.name, mode.golden, got, want)
		}
	}
}

// compiledSummary renders the JSON-comparable projection of compiled
// scenarios (function fields excluded, custom presence as a flag).
func compiledSummary(t *testing.T, scs []*harness.Scenario) []byte {
	t.Helper()
	type row struct {
		Name      string             `json:"name"`
		Algo      string             `json:"algo,omitempty"`
		Custom    bool               `json:"custom,omitempty"`
		Cost      int                `json:"cost"`
		PinGraphs bool               `json:"pinGraphs,omitempty"`
		Trials    int                `json:"trials"`
		Period    int                `json:"period,omitempty"`
		Passes    int                `json:"passes,omitempty"`
		Params    string             `json:"params,omitempty"`
		Instances []harness.Instance `json:"instances"`
	}
	rows := make([]row, 0, len(scs))
	for _, sc := range scs {
		r := row{
			Name: sc.Name, Algo: string(sc.Algo), Custom: sc.RunCtx != nil,
			Cost: int(sc.Cost), PinGraphs: sc.PinGraphs, Trials: sc.TrialCount(),
			Period: sc.Period, Passes: sc.Passes, Instances: sc.Instances,
		}
		if sc.Params != nil {
			r.Params = sc.Params.String()
		}
		rows = append(rows, r)
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rows); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestRejections pins the validation error for every bad spec in
// testdata/bad: unknown algorithm / family / parameter names and the
// structural mistakes a hand-edited file is likely to make. Each message
// must mention the offending name so a failing `radiobfs run` is
// actionable.
func TestRejections(t *testing.T) {
	cases := map[string]string{
		"unknown_algo.json":        `unknown algorithm "quantum" (known: alarm, decay, diam2, diam32, poll, recursive, verify)`,
		"unknown_family.json":      `unknown graph family "moebius"`,
		"unknown_param.json":       `unknown param "gamma" (known: alpha, depth, invBeta, passes, period, w)`,
		"param_wrong_algo.json":    `param "period" is not read by algorithm "recursive"`,
		"passes_unit_cost.json":    `param "passes" needs cost "physical"`,
		"both_workloads.json":      `both algorithm "recursive" and custom workload "c/w" set`,
		"no_workload.json":         `needs an algorithm (one of: alarm, decay, diam2, diam32, poll, recursive, verify) or a custom workload`,
		"no_instances.json":        `no instances`,
		"dup_scenario.json":        `duplicate scenario name "a"`,
		"bad_cost.json":            `unknown cost model "free" (known: unit, physical)`,
		"unsafe_name.json":         `experiment name "../escape" is not filesystem-safe`,
		"args_on_registry.json":    `"args" is reserved for custom workloads`,
		"params_on_custom.json":    `custom workloads take free-form "args", not registry "params"`,
		"fractional_param.json":    `param period = 2.5, must be an integer`,
		"cost_on_custom.json":      `custom workloads build their own networks; "cost" ("physical") is not applied`,
		"pingraphs_on_custom.json": `"pinGraphs" only affects registry workloads`,
	}
	entries, err := os.ReadDir("testdata/bad")
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.Name() == "unknown_field.json" {
			continue // rejected at parse time, checked below
		}
		want, ok := cases[e.Name()]
		if !ok {
			t.Errorf("testdata/bad/%s has no expected message in this test", e.Name())
			continue
		}
		f, err := ParseFile(filepath.Join("testdata/bad", e.Name()))
		if err != nil {
			t.Errorf("%s: parse failed before validation: %v", e.Name(), err)
			continue
		}
		err = f.Validate()
		if err == nil {
			t.Errorf("%s: Validate accepted a bad spec", e.Name())
			continue
		}
		if !strings.Contains(err.Error(), want) {
			t.Errorf("%s: error %q does not contain %q", e.Name(), err, want)
		}
	}
	for name := range cases {
		if _, err := os.Stat(filepath.Join("testdata/bad", name)); err != nil {
			t.Errorf("expected rejection file missing: %v", err)
		}
	}

	// Typos in field names fail at parse time under the strict decoder.
	if _, err := ParseFile("testdata/bad/unknown_field.json"); err == nil ||
		!strings.Contains(err.Error(), "scenariosz") {
		t.Errorf("unknown_field.json: want a strict-decoding error naming the field, got %v", err)
	}
}

// TestCompileMissingCustom pins the CLI-facing error: a spec referencing a
// custom workload cannot compile without the driver that provides it.
func TestCompileMissingCustom(t *testing.T) {
	f, err := ParseFile("testdata/full.json")
	if err != nil {
		t.Fatal(err)
	}
	_, err = Compile(f, Options{})
	if err == nil || !strings.Contains(err.Error(), `custom workload "demo/custom" is not provided by this driver`) {
		t.Fatalf("want the missing-custom error, got %v", err)
	}
}
