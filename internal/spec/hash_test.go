package spec_test

// Property tests for the canonical spec hash, run over the whole embedded
// scenarios/ library (the external test package breaks the spec↔scenarios
// import cycle): hashing is invariant under Encode/decode round-trips and
// source-formatting changes, and sensitive to every semantic field.

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/harness"
	"repro/internal/spec"
	"repro/scenarios"
)

// TestCanonicalHashRoundTripsLibrary proves hash equality across
// Encode/decode round-trips, and across whitespace/indentation changes of
// the source document, for every checked-in spec file.
func TestCanonicalHashRoundTripsLibrary(t *testing.T) {
	for _, name := range scenarios.Names() {
		if !strings.HasSuffix(name, ".json") {
			continue
		}
		f, err := scenarios.Load(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		want, err := f.CanonicalHash()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(want) != 64 {
			t.Fatalf("%s: hash %q is not 64 hex chars", name, want)
		}

		// Encode → Parse → hash again.
		enc, err := f.Encode()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		back, err := spec.Parse(bytes.NewReader(enc))
		if err != nil {
			t.Fatalf("%s: reparse: %v", name, err)
		}
		got, err := back.CanonicalHash()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got != want {
			t.Errorf("%s: hash changed across Encode/decode: %s != %s", name, got, want)
		}

		// Reformat the document (indentation, key spacing) and hash once
		// more: formatting must not matter.
		var pretty bytes.Buffer
		if err := json.Indent(&pretty, enc, "  ", "\t"); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		reparsed, err := spec.Parse(&pretty)
		if err != nil {
			t.Fatalf("%s: reparse pretty: %v", name, err)
		}
		got, err = reparsed.CanonicalHash()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got != want {
			t.Errorf("%s: hash depends on source whitespace: %s != %s", name, got, want)
		}
	}
}

// TestCanonicalHashDetectsSemanticChanges mutates every semantic field of a
// representative spec, one at a time, and requires each mutation to change
// the hash (and distinct mutations to disagree with each other).
func TestCanonicalHashDetectsSemanticChanges(t *testing.T) {
	base := func() *spec.File {
		f, err := scenarios.Load("e1_recursive.json")
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	mutations := map[string]func(*spec.File){
		"name":            func(f *spec.File) { f.Name += "x" },
		"doc":             func(f *spec.File) { f.Doc += "." },
		"seed":            func(f *spec.File) { f.Seed++ },
		"columns":         func(f *spec.File) { f.Columns = append(f.Columns, "maxLB") },
		"scenario-name":   func(f *spec.File) { f.Scenarios[0].Name += "x" },
		"scenario-algo":   func(f *spec.File) { f.Scenarios[0].Algorithm = "decay" },
		"scenario-cost":   func(f *spec.File) { f.Scenarios[0].Cost = "physical" },
		"scenario-trials": func(f *spec.File) { f.Scenarios[0].Trials++ },
		"scenario-pin":    func(f *spec.File) { f.Scenarios[0].PinGraphs = !f.Scenarios[0].PinGraphs },
		"scenario-param":  func(f *spec.File) { f.Scenarios[0].Params = map[string]float64{"passes": 7} },
		"scenario-instance": func(f *spec.File) {
			f.Scenarios[0].Instances = append(f.Scenarios[0].Instances, harness.Instance{Family: "grid", N: 36})
		},
		"scenario-dropped": func(f *spec.File) { f.Scenarios = f.Scenarios[:1] },
	}
	ref, err := base().CanonicalHash()
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]string{"": ref}
	for label, mutate := range mutations {
		f := base()
		mutate(f)
		h, err := f.CanonicalHash()
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		if h == ref {
			t.Errorf("mutation %q did not change the canonical hash", label)
		}
		if prev, dup := seen[h]; dup {
			t.Errorf("mutations %q and %q collide: %s", label, prev, h)
		}
		seen[h] = label
	}
}

// TestCanonicalHashGridSensitivity exercises grid and quick-overlay fields,
// which e1 may not populate the same way.
func TestCanonicalHashGridSensitivity(t *testing.T) {
	const doc = `{
	  "name": "g",
	  "scenarios": [{
	    "name": "s", "algorithm": "recursive",
	    "grid": {"families": ["cycle"], "sizes": [32, 64], "maxDistFrac": 0.5},
	    "quick": {"trials": 1, "grid": {"families": ["cycle"], "sizes": [16]}}
	  }]
	}`
	parse := func() *spec.File {
		f, err := spec.Parse(strings.NewReader(doc))
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	ref, err := parse().CanonicalHash()
	if err != nil {
		t.Fatal(err)
	}
	for label, mutate := range map[string]func(*spec.File){
		"grid-size":        func(f *spec.File) { f.Scenarios[0].Grid.Sizes[1] = 128 },
		"grid-family":      func(f *spec.File) { f.Scenarios[0].Grid.Families = []string{"grid"} },
		"grid-maxdistfrac": func(f *spec.File) { f.Scenarios[0].Grid.MaxDistFrac = 0.25 },
		"quick-trials":     func(f *spec.File) { f.Scenarios[0].Quick.Trials = 2 },
		"quick-grid":       func(f *spec.File) { f.Scenarios[0].Quick.Grid.Sizes = []int{8} },
	} {
		f := parse()
		mutate(f)
		h, err := f.CanonicalHash()
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		if h == ref {
			t.Errorf("mutation %q did not change the canonical hash", label)
		}
	}
}
