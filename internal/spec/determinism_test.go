package spec

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro"
	"repro/internal/harness"
)

// runnableSpec is a small registry-only spec used by the determinism and
// artifact tests: two algorithms, a seeded family (fresh topology per
// trial), a parameter override, and a physical-cost scenario.
const runnableSpec = `{
  "name": "det",
  "doc": "determinism fixture",
  "seed": 5,
  "scenarios": [
    {
      "name": "det-recursive",
      "algorithm": "recursive",
      "trials": 3,
      "grid": {"families": ["cycle", "geometric"], "sizes": [48], "maxDistFrac": 0.5}
    },
    {
      "name": "det-decay-phys",
      "algorithm": "decay",
      "cost": "physical",
      "params": {"passes": 4},
      "trials": 2,
      "instances": [{"family": "grid", "n": 36}]
    }
  ]
}`

func parseRunnable(t *testing.T) *File {
	t.Helper()
	f, err := Parse(strings.NewReader(runnableSpec))
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	return f
}

// TestJSONLByteIdenticalAcrossWorkers pins the `radiobfs run` determinism
// contract: the per-trial JSONL artifact — the finest-grained output — is
// byte-identical at every worker count.
func TestJSONLByteIdenticalAcrossWorkers(t *testing.T) {
	f := parseRunnable(t)
	var want []byte
	for _, workers := range []int{1, 2, 7} {
		out, err := ExecuteFile(f, workers, 0, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if n := out.Errors(); n != 0 {
			t.Fatalf("workers=%d: %d trials failed: %+v", workers, n, out.Results)
		}
		var buf bytes.Buffer
		if err := harness.WriteTrialJSONL(&buf, out.Results); err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = buf.Bytes()
			continue
		}
		if !bytes.Equal(buf.Bytes(), want) {
			t.Fatalf("workers=%d: JSONL differs from workers=1 output", workers)
		}
	}
}

// TestSpecMatchesDirectHarnessPath pins the acceptance contract of the spec
// layer: executing a spec produces byte-identical aggregated CSV to
// hand-building the same harness scenarios and running them directly —
// the spec file adds declaration, never different numbers.
func TestSpecMatchesDirectHarnessPath(t *testing.T) {
	f := parseRunnable(t)
	out, err := ExecuteFile(f, 3, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var viaSpec bytes.Buffer
	harness.WriteCSV(&viaSpec, out.Summaries)

	// The same scenarios, written the way cmd/experiments PR-1 would have.
	direct := []*harness.Scenario{
		{
			Name:      "det-recursive",
			Algo:      harness.AlgoRecursive,
			Trials:    3,
			Instances: harness.Cross([]string{"cycle", "geometric"}, []int{48}, func(_ string, n int) int { return n / 2 }),
		},
		{
			Name:      "det-decay-phys",
			Algo:      harness.AlgoDecay,
			Cost:      repro.CostPhysical,
			Passes:    4,
			Trials:    2,
			Instances: []harness.Instance{{Family: "grid", N: 36}},
		},
	}
	runner := harness.Runner{Workers: 1, Root: f.RootSeed()}
	var viaHarness bytes.Buffer
	harness.WriteCSV(&viaHarness, harness.Aggregate(runner.Run(direct...)))

	if !bytes.Equal(viaSpec.Bytes(), viaHarness.Bytes()) {
		t.Fatalf("spec path and direct harness path disagree:\nspec:\n%s\nharness:\n%s", viaSpec.Bytes(), viaHarness.Bytes())
	}
}

// TestPinGraphsPairsScenarios proves the apples-to-apples contract: with
// "pinGraphs", two scenarios of one run see identical seeded-family
// topologies (equal per-trial ground-truth diameters), while by default
// each trial samples a fresh graph.
func TestPinGraphsPairsScenarios(t *testing.T) {
	build := func(pin bool) string {
		p := "false"
		if pin {
			p = "true"
		}
		return `{
  "name": "pair",
  "scenarios": [
    {"name": "pair-a", "algorithm": "diam2", "pinGraphs": ` + p + `, "trials": 3,
     "instances": [{"family": "geometric", "n": 48}]},
    {"name": "pair-b", "algorithm": "diam2", "pinGraphs": ` + p + `, "trials": 3,
     "instances": [{"family": "geometric", "n": 48}]}
  ]
}`
	}
	diams := func(src string) (a, b []float64) {
		f, err := Parse(strings.NewReader(src))
		if err != nil {
			t.Fatal(err)
		}
		out, err := ExecuteFile(f, 2, 0, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range out.Results {
			if r.Err != "" {
				t.Fatalf("trial failed: %s", r.Err)
			}
			if r.Scenario == "pair-a" {
				a = append(a, r.Metrics["diam"])
			} else {
				b = append(b, r.Metrics["diam"])
			}
		}
		return a, b
	}
	a, b := diams(build(true))
	for i := range a {
		if a[i] != b[i] || a[0] != a[i] {
			t.Fatalf("pinGraphs: topologies differ across scenarios/trials: a=%v b=%v", a, b)
		}
	}
	ua, _ := diams(build(false))
	same := true
	for i := 1; i < len(ua); i++ {
		if ua[i] != ua[0] {
			same = false
		}
	}
	if same {
		t.Log("unpinned geometric trials coincidentally share a diameter — weak but not wrong")
	}
}

// TestWriteArtifactsDeterministic executes the fixture twice at different
// worker counts and requires every persisted artifact file to be
// byte-identical — the property that makes checked-in result directories
// reviewable as diffs.
func TestWriteArtifactsDeterministic(t *testing.T) {
	f := parseRunnable(t)
	dirs := make([]string, 2)
	for i, workers := range []int{1, 4} {
		out, err := ExecuteFile(f, workers, 0, Options{})
		if err != nil {
			t.Fatal(err)
		}
		root := filepath.Join(t.TempDir(), "results")
		dir, err := out.WriteArtifacts(root)
		if err != nil {
			t.Fatal(err)
		}
		dirs[i] = dir
	}
	names := []string{TrialsArtifact, CSVArtifact, MarkdownArtifact, ManifestArtifact}
	for _, name := range names {
		a, err := os.ReadFile(filepath.Join(dirs[0], name))
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(filepath.Join(dirs[1], name))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Errorf("%s differs between workers=1 and workers=4 runs", name)
		}
		if len(a) == 0 {
			t.Errorf("%s is empty", name)
		}
	}
}
