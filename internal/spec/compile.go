package spec

import (
	"context"
	"fmt"

	"repro"
	"repro/internal/harness"
)

// CustomFunc builds the trial function for one scenario that names a custom
// workload; it receives the scenario so it can read its free-form Args. It
// is how cmd/experiments attaches its instrumented measurement code to the
// grids declared in the checked-in spec files.
type CustomFunc func(sc *Scenario) (harness.TrialCtxFunc, error)

// Options configures compilation.
type Options struct {
	// Quick applies each scenario's reduced-size overlay (CI-scale runs).
	Quick bool
	// Ctx, when non-nil, cancels compiled scenarios at phase boundaries.
	Ctx context.Context
	// Observer, when non-nil, streams progress events from every trial; it
	// must be safe for concurrent use.
	Observer repro.Observer
	// Custom supplies the named custom workloads the file may reference.
	// Compiling a spec whose Custom name has no entry here is an error —
	// `radiobfs run` passes none and therefore executes registry-only specs.
	Custom map[string]CustomFunc
	// ShardMinN overrides the Runner's big-instance threshold for
	// ExecuteFile (see harness.Runner.ShardMinN): 0 keeps the default,
	// negative disables intra-trial sharding. Results never depend on it.
	ShardMinN int
	// DenseMin overrides the engines' dense-kernel coverage threshold for
	// ExecuteFile (see harness.Runner.DenseMin): 0 keeps the engine
	// default, positive engages the packed-bitmap kernel from that
	// transmitter coverage, negative disables it. Results never depend on
	// it.
	DenseMin int
	// OnTrial, when non-nil, is invoked by ExecuteFile's runner after each
	// trial settles (see harness.Runner.OnTrial). Trials run concurrently,
	// so it must be safe for concurrent use; it observes results, never
	// changes them.
	OnTrial func(harness.Result)
}

// Compile lowers a validated file onto harness scenarios, in declaration
// order. It re-runs Validate first, so callers cannot compile a spec that
// would misname an algorithm, family, or parameter.
func Compile(f *File, opts Options) ([]*harness.Scenario, error) {
	if err := f.Validate(); err != nil {
		return nil, err
	}
	out := make([]*harness.Scenario, 0, len(f.Scenarios))
	for i := range f.Scenarios {
		sc, err := compileScenario(f, &f.Scenarios[i], opts)
		if err != nil {
			return nil, err
		}
		out = append(out, sc)
	}
	return out, nil
}

func compileScenario(f *File, sc *Scenario, opts Options) (*harness.Scenario, error) {
	hs := &harness.Scenario{
		Name:      sc.Name,
		Instances: sc.expandInstances(opts.Quick),
		Trials:    sc.trialCount(opts.Quick),
		Ctx:       opts.Ctx,
		Observer:  opts.Observer,
	}
	if sc.Custom != "" {
		build, ok := opts.Custom[sc.Custom]
		if !ok {
			return nil, fmt.Errorf("spec %s, scenario %s: custom workload %q is not provided by this driver — `radiobfs run` executes registry workloads only; custom workloads run through cmd/experiments", f.Name, sc.Name, sc.Custom)
		}
		run, err := build(sc)
		if err != nil {
			return nil, fmt.Errorf("spec %s, scenario %s: %w", f.Name, sc.Name, err)
		}
		hs.RunCtx = run
		return hs, nil
	}
	hs.Algo = harness.Algo(sc.Algorithm)
	hs.PinGraphs = sc.PinGraphs
	if sc.Cost == "physical" {
		hs.Cost = repro.CostPhysical
	}
	hs.Period = int(sc.Params["period"])
	hs.Passes = int(sc.Params["passes"])
	if p, ok := coreParams(sc.Params); ok {
		hs.Params = &p
	}
	return hs, nil
}

// expandInstances resolves the scenario's effective instance list: the
// quick overlay's workload graphs when asked for and declared (replacing
// the full-size set wholesale), else the full-size declaration, with the
// grid cross product appended and grid search radii derived from
// MaxDistFrac.
func (sc *Scenario) expandInstances(quick bool) []harness.Instance {
	insts, grid := sc.Instances, sc.Grid
	if quick && sc.Quick != nil && (len(sc.Quick.Instances) > 0 || sc.Quick.Grid != nil) {
		insts, grid = sc.Quick.Instances, sc.Quick.Grid
	}
	out := append([]harness.Instance(nil), insts...)
	if grid != nil {
		var maxDist func(string, int) int
		if grid.MaxDistFrac > 0 {
			frac := grid.MaxDistFrac
			maxDist = func(_ string, n int) int {
				d := int(float64(n) * frac)
				if d < 1 {
					d = 1
				}
				return d
			}
		}
		out = append(out, harness.Cross(grid.Families, grid.Sizes, maxDist)...)
	}
	return out
}

func (sc *Scenario) trialCount(quick bool) int {
	if quick && sc.Quick != nil && sc.Quick.Trials > 0 {
		return sc.Quick.Trials
	}
	return sc.Trials
}
