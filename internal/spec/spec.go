package spec

import (
	"encoding/json"
	"fmt"
	"io"
	"io/fs"
	"math"
	"os"
	"sort"
	"strings"

	"repro"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/harness"
)

// File is one parsed experiment-spec file: a named group of scenarios that
// execute together and persist into one artifact directory.
type File struct {
	// Name identifies the experiment and names its artifact directory; it
	// must be non-empty and filesystem-safe (letters, digits, ".", "_", "-").
	Name string `json:"name"`
	// Doc is a one-line description carried into the manifest.
	Doc string `json:"doc,omitempty"`
	// Seed is the root seed every trial seed derives from (0 = the default
	// root, 1). Drivers may override it (e.g. `radiobfs run -seed`).
	Seed uint64 `json:"seed,omitempty"`
	// Columns optionally restricts which metrics the aggregated CSV and
	// Markdown artifacts carry; empty means every reported metric.
	Columns []string `json:"columns,omitempty"`
	// Scenarios lists the workloads; at least one is required.
	Scenarios []Scenario `json:"scenarios"`
}

// Scenario declares one workload of a spec file. Exactly one of Algorithm
// and Custom must be set.
type Scenario struct {
	// Name labels the scenario in results and seeds its trials (see
	// harness.TrialFor); it must be unique within the file.
	Name string `json:"name"`
	// Algorithm names a registered repro.Algorithm (or alias).
	Algorithm string `json:"algorithm,omitempty"`
	// Custom names a workload the compiling driver supplies through
	// Options.Custom — measurement code that is not a registry entry (the
	// instrumented E-series trials of cmd/experiments). `radiobfs run`
	// rejects specs that use it.
	Custom string `json:"custom,omitempty"`
	// Params overrides registry parameters by name. Known keys: "period"
	// and "passes" (validated against the algorithm's ParamSpecs), and the
	// Recursive-BFS stack parameters "invBeta", "depth", "w", "alpha"
	// (validated by core.Params.Validate; giving any requires invBeta, w
	// and alpha). All values must be integers.
	Params map[string]float64 `json:"params,omitempty"`
	// Args is the free-form argument map of a custom workload (e.g. the
	// probe budget of E10); the driver's CustomFunc interprets it. Only
	// valid together with Custom.
	Args map[string]float64 `json:"args,omitempty"`
	// Cost selects the cost model: "unit" (default) or "physical". Custom
	// workloads build their own networks, so cost must be left empty there.
	Cost string `json:"cost,omitempty"`
	// PinGraphs derives seeded-family graphs from the root seed alone, so
	// every scenario and trial of the run uses identical topologies
	// (apples-to-apples pairings); by default each trial samples a fresh
	// topology. Registry workloads only.
	PinGraphs bool `json:"pinGraphs,omitempty"`
	// Trials is the number of independently-seeded repetitions per instance
	// (default 1).
	Trials int `json:"trials,omitempty"`
	// Instances lists explicit workload graphs; Grid appends a cross
	// product. At least one instance must result.
	Instances []harness.Instance `json:"instances,omitempty"`
	// Grid expands families × sizes into additional instances.
	Grid *Grid `json:"grid,omitempty"`
	// Quick is the reduced-size overlay applied when compiling with
	// Options.Quick (CI-scale runs).
	Quick *Overlay `json:"quick,omitempty"`
}

// Grid is a families × sizes instance cross product.
type Grid struct {
	Families []string `json:"families"`
	Sizes    []int    `json:"sizes"`
	// MaxDistFrac sets every instance's search radius to
	// max(1, ⌊n·MaxDistFrac⌋); 0 means the full graph.
	MaxDistFrac float64 `json:"maxDistFrac,omitempty"`
}

// Overlay is the quick-mode replacement set. A non-zero Trials replaces the
// scenario's trial count; when the overlay declares any workload graphs
// (Instances and/or Grid), they replace the scenario's full-size instance
// set wholesale — the quick grid is described completely, never merged with
// the full-size one.
type Overlay struct {
	Trials    int                `json:"trials,omitempty"`
	Instances []harness.Instance `json:"instances,omitempty"`
	Grid      *Grid              `json:"grid,omitempty"`
}

// RootSeed returns the file's effective root seed (1 when unset), the seed
// `radiobfs run` and ExecuteFile use unless overridden.
func (f *File) RootSeed() uint64 {
	if f.Seed == 0 {
		return 1
	}
	return f.Seed
}

// Encode renders the file back to JSON. Parse(Encode(f)) reproduces an
// identical File — every spec field round-trips through encoding/json and
// Parse's strictness only rejects fields Encode never emits — which is what
// lets the distributed coordinator (internal/dist) ship a parsed spec to
// worker processes and trust both sides to expand the identical trial list.
func (f *File) Encode() ([]byte, error) {
	return json.Marshal(f)
}

// Parse decodes one spec file. Decoding is strict: unknown fields are
// rejected, so typos in scenario files fail loudly instead of silently
// running a default.
func Parse(r io.Reader) (*File, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	f := new(File)
	if err := dec.Decode(f); err != nil {
		return nil, fmt.Errorf("spec: %w", err)
	}
	var extra json.RawMessage
	if err := dec.Decode(&extra); err != io.EOF {
		return nil, fmt.Errorf("spec: trailing data after the spec object")
	}
	return f, nil
}

// ParseFile reads and parses the spec file at path.
func ParseFile(path string) (*File, error) {
	r, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	f, err := Parse(r)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return f, nil
}

// ParseFS parses the named spec file from fsys (e.g. the embedded
// scenarios.FS library).
func ParseFS(fsys fs.FS, name string) (*File, error) {
	r, err := fsys.Open(name)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	f, err := Parse(r)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", name, err)
	}
	return f, nil
}

// registryParams are the Params keys understood for registry workloads.
// period and passes map onto harness.Scenario fields and are additionally
// checked against the algorithm's own ParamSpecs; the rest form the
// Recursive-BFS core.Params override.
var registryParams = []string{"alpha", "depth", "invBeta", "passes", "period", "w"}

// Validate checks the file against the live registries: algorithm names
// resolve through repro.Get, workload families of registry scenarios exist
// in graph.FamilyNames, parameter names and values are known and
// well-formed, and every scenario expands to at least one instance. Custom
// workloads skip family validation (their Family/N/MaxDist fields are
// labels the driver interprets, e.g. the constructed K_n−e and
// set-disjointness graphs of the §5 experiments).
func (f *File) Validate() error {
	if f.Name == "" {
		return fmt.Errorf("spec: missing experiment name")
	}
	if !safeName(f.Name) {
		return fmt.Errorf("spec: experiment name %q is not filesystem-safe (allowed: letters, digits, '.', '_', '-')", f.Name)
	}
	if len(f.Scenarios) == 0 {
		return fmt.Errorf("spec %s: no scenarios", f.Name)
	}
	for _, c := range f.Columns {
		if strings.TrimSpace(c) == "" {
			return fmt.Errorf("spec %s: empty column name", f.Name)
		}
	}
	seen := map[string]bool{}
	for i := range f.Scenarios {
		sc := &f.Scenarios[i]
		if sc.Name == "" {
			return fmt.Errorf("spec %s: scenario %d has no name", f.Name, i)
		}
		if seen[sc.Name] {
			return fmt.Errorf("spec %s: duplicate scenario name %q", f.Name, sc.Name)
		}
		seen[sc.Name] = true
		if err := f.validateScenario(sc); err != nil {
			return err
		}
	}
	return nil
}

func (f *File) validateScenario(sc *Scenario) error {
	where := fmt.Sprintf("spec %s, scenario %s", f.Name, sc.Name)
	switch {
	case sc.Algorithm != "" && sc.Custom != "":
		return fmt.Errorf("%s: both algorithm %q and custom workload %q set — pick one", where, sc.Algorithm, sc.Custom)
	case sc.Algorithm == "" && sc.Custom == "":
		return fmt.Errorf("%s: needs an algorithm (one of: %s) or a custom workload", where, strings.Join(repro.AlgorithmNames(), ", "))
	}
	if sc.Trials < 0 {
		return fmt.Errorf("%s: negative trial count %d", where, sc.Trials)
	}
	if sc.Custom != "" {
		if len(sc.Params) > 0 {
			return fmt.Errorf("%s: custom workloads take free-form \"args\", not registry \"params\"", where)
		}
		if sc.Cost != "" {
			return fmt.Errorf("%s: custom workloads build their own networks; \"cost\" (%q) is not applied — drop it", where, sc.Cost)
		}
		if sc.PinGraphs {
			return fmt.Errorf("%s: \"pinGraphs\" only affects registry workloads; custom workloads seed their own graphs", where)
		}
		return f.validateInstances(sc, where)
	}
	if len(sc.Args) > 0 {
		return fmt.Errorf("%s: \"args\" is reserved for custom workloads; registry algorithm %q takes \"params\"", where, sc.Algorithm)
	}
	alg, err := repro.Get(sc.Algorithm)
	if err != nil {
		return fmt.Errorf("%s: %w", where, err)
	}
	switch sc.Cost {
	case "", "unit", "physical":
	default:
		return fmt.Errorf("%s: unknown cost model %q (known: unit, physical)", where, sc.Cost)
	}
	if err := validateParams(sc, alg); err != nil {
		return fmt.Errorf("%s: %w", where, err)
	}
	return f.validateInstances(sc, where)
}

func (f *File) validateInstances(sc *Scenario, where string) error {
	check := func(insts []harness.Instance, grid *Grid) error {
		for _, inst := range insts {
			if inst.N < 1 {
				return fmt.Errorf("%s: instance size %d, must be >= 1", where, inst.N)
			}
			if inst.MaxDist < 0 {
				return fmt.Errorf("%s: negative maxDist %d", where, inst.MaxDist)
			}
			if sc.Algorithm != "" {
				if err := knownFamily(inst.Family); err != nil {
					return fmt.Errorf("%s: %w", where, err)
				}
			}
		}
		if grid != nil {
			if len(grid.Families) == 0 || len(grid.Sizes) == 0 {
				return fmt.Errorf("%s: grid needs at least one family and one size", where)
			}
			if grid.MaxDistFrac < 0 || grid.MaxDistFrac > 1 {
				return fmt.Errorf("%s: maxDistFrac %g outside [0, 1]", where, grid.MaxDistFrac)
			}
			for _, n := range grid.Sizes {
				if n < 1 {
					return fmt.Errorf("%s: grid size %d, must be >= 1", where, n)
				}
			}
			if sc.Algorithm != "" {
				for _, fam := range grid.Families {
					if err := knownFamily(fam); err != nil {
						return fmt.Errorf("%s: %w", where, err)
					}
				}
			}
		}
		if len(insts) == 0 && grid == nil {
			return fmt.Errorf("%s: no instances (give \"instances\", a \"grid\", or both)", where)
		}
		return nil
	}
	if err := check(sc.Instances, sc.Grid); err != nil {
		return err
	}
	if q := sc.Quick; q != nil {
		if q.Trials < 0 {
			return fmt.Errorf("%s: negative quick trial count %d", where, q.Trials)
		}
		if len(q.Instances) > 0 || q.Grid != nil {
			if err := check(q.Instances, q.Grid); err != nil {
				return err
			}
		}
	}
	return nil
}

// knownFamily rejects family names graph.Named would not accept.
func knownFamily(name string) error {
	names := graph.FamilyNames()
	for _, known := range names {
		if name == known {
			return nil
		}
	}
	return fmt.Errorf("unknown graph family %q (known: %s)", name, strings.Join(names, ", "))
}

// validateParams checks registry parameter names and values against the
// resolved algorithm and cost model.
func validateParams(sc *Scenario, alg repro.Algorithm) error {
	specParams := map[string]bool{}
	for _, p := range alg.Params() {
		specParams[p.Name] = true
	}
	for _, name := range sortedParamNames(sc.Params) {
		v := sc.Params[name]
		if v != math.Trunc(v) || math.IsInf(v, 0) || math.IsNaN(v) {
			return fmt.Errorf("param %s = %g, must be an integer", name, v)
		}
		switch name {
		case "period":
			if !specParams[name] {
				return fmt.Errorf("param %q is not read by algorithm %q (its params: %s)", name, alg.Name(), paramSpecNames(alg))
			}
			if v < 1 {
				return fmt.Errorf("param %s = %g, must be >= 1", name, v)
			}
		case "passes":
			// Decay repetitions matter to any algorithm whose Local-
			// Broadcasts run on the physical channel, not just the ones
			// whose ParamSpecs name the knob.
			if !specParams[name] && sc.Cost != "physical" {
				return fmt.Errorf("param \"passes\" needs cost \"physical\" or an algorithm that reads it (algorithm %q params: %s)", alg.Name(), paramSpecNames(alg))
			}
			if v < 1 {
				return fmt.Errorf("param %s = %g, must be >= 1", name, v)
			}
		case "invBeta", "depth", "w", "alpha":
			// Cross-field constraints are checked below once all are seen.
		default:
			return fmt.Errorf("unknown param %q (known: %s)", name, strings.Join(registryParams, ", "))
		}
	}
	if p, ok := coreParams(sc.Params); ok {
		if err := p.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// coreParams assembles a core.Params override from the spec params; ok is
// false when none of the stack parameters are present. Partial sets
// surface through core.Params.Validate (zero InvBeta/W/Alpha are invalid).
func coreParams(params map[string]float64) (core.Params, bool) {
	_, a := params["invBeta"]
	_, b := params["depth"]
	_, c := params["w"]
	_, d := params["alpha"]
	if !a && !b && !c && !d {
		return core.Params{}, false
	}
	return core.Params{
		InvBeta: int(params["invBeta"]),
		Depth:   int(params["depth"]),
		W:       int(params["w"]),
		Alpha:   int(params["alpha"]),
	}, true
}

func sortedParamNames(m map[string]float64) []string {
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

func paramSpecNames(alg repro.Algorithm) string {
	ps := alg.Params()
	if len(ps) == 0 {
		return "none"
	}
	names := make([]string, len(ps))
	for i, p := range ps {
		names[i] = p.Name
	}
	return strings.Join(names, ", ")
}

func safeName(s string) bool {
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '_', r == '-':
		default:
			return false
		}
	}
	return s != "" && s != "." && s != ".."
}
