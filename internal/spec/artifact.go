package spec

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/harness"
)

// Output is one executed spec file: the per-trial results in the Runner's
// canonical order and their aggregation, plus the coordinates (file, root
// seed) needed to reproduce or persist them.
type Output struct {
	File *File
	Root uint64
	// Quick records whether the scenarios' reduced-size overlays were
	// applied, so the manifest reflects the grid that actually ran.
	Quick     bool
	Results   []harness.Result
	Summaries []harness.Summary
}

// ExecuteFile compiles and runs a spec file on the pooled parallel runner.
// root overrides the file's seed policy when non-zero. The output — and
// every artifact written from it — is byte-identical at any worker count,
// because it inherits the harness's per-trial seed derivation.
func ExecuteFile(f *File, workers int, root uint64, opts Options) (*Output, error) {
	scs, err := Compile(f, opts)
	if err != nil {
		return nil, err
	}
	if root == 0 {
		root = f.RootSeed()
	}
	runner := harness.Runner{Workers: workers, Root: root, ShardMinN: opts.ShardMinN, DenseMin: opts.DenseMin, OnTrial: opts.OnTrial}
	results := runner.Run(scs...)
	return &Output{File: f, Root: root, Quick: opts.Quick, Results: results, Summaries: harness.Aggregate(results)}, nil
}

// Errors counts failed trials.
func (o *Output) Errors() int {
	n := 0
	for i := range o.Results {
		if o.Results[i].Err != "" {
			n++
		}
	}
	return n
}

// Artifact file names within an experiment's directory.
const (
	TrialsArtifact   = "trials.jsonl"
	CSVArtifact      = "aggregate.csv"
	MarkdownArtifact = "aggregate.md"
	ManifestArtifact = "manifest.json"
)

// Manifest describes one persisted experiment run. Every field is a pure
// function of the spec, the root seed, and the build (CodeVersion) — no
// timestamps, host names, or worker counts — so one binary re-running a
// spec rewrites the directory byte-identically, while a different build
// stamps itself visibly (and, in the serving layer's cache, keys itself
// into fresh entries instead of impersonating old ones).
type Manifest struct {
	Name        string             `json:"name"`
	Doc         string             `json:"doc,omitempty"`
	RootSeed    uint64             `json:"rootSeed"`
	CodeVersion string             `json:"codeVersion"`
	Scenarios   []ManifestScenario `json:"scenarios"`
	Trials      int                `json:"trials"`
	Errors      int                `json:"errors"`
	Columns     []string           `json:"columns,omitempty"`
	Artifacts   []string           `json:"artifacts"`
}

// ManifestScenario summarizes one scenario of the run.
type ManifestScenario struct {
	Name      string `json:"name"`
	Algorithm string `json:"algorithm,omitempty"`
	Custom    string `json:"custom,omitempty"`
	Cost      string `json:"cost,omitempty"`
	Instances int    `json:"instances"`
	Trials    int    `json:"trials"`
}

// WriteArtifacts persists the run under dir/<file name>/: per-trial JSONL,
// aggregated CSV and Markdown (restricted to File.Columns when set), and the
// manifest. It returns the experiment directory. Existing artifacts are
// overwritten — a deterministic run writes the same bytes anyway.
func (o *Output) WriteArtifacts(dir string) (string, error) {
	expDir := filepath.Join(dir, o.File.Name)
	if err := os.MkdirAll(expDir, 0o755); err != nil {
		return "", err
	}
	sums := harness.FilterMetrics(o.Summaries, o.File.Columns)
	writers := []struct {
		name  string
		write func(io.Writer) error
	}{
		{TrialsArtifact, func(w io.Writer) error { return harness.WriteTrialJSONL(w, o.Results) }},
		{CSVArtifact, func(w io.Writer) error { harness.WriteCSV(w, sums); return nil }},
		{MarkdownArtifact, func(w io.Writer) error { o.writeMarkdownDoc(w, sums); return nil }},
		{ManifestArtifact, o.writeManifest},
	}
	for _, art := range writers {
		if err := writeFileAtomicish(filepath.Join(expDir, art.name), art.write); err != nil {
			return "", err
		}
	}
	return expDir, nil
}

// writeMarkdownDoc renders the Markdown artifact: a header identifying the
// run, then one table per scenario.
func (o *Output) writeMarkdownDoc(w io.Writer, sums []harness.Summary) {
	fmt.Fprintf(w, "# %s\n\n", o.File.Name)
	if o.File.Doc != "" {
		fmt.Fprintf(w, "%s\n\n", o.File.Doc)
	}
	fmt.Fprintf(w, "Root seed %d; %d trials, %d errors. Regenerate with `radiobfs run` — output is byte-identical at any worker count.\n\n",
		o.Root, len(o.Results), o.Errors())
	harness.WriteMarkdown(w, sums)
}

func (o *Output) writeManifest(w io.Writer) error {
	m := Manifest{
		Name:        o.File.Name,
		Doc:         o.File.Doc,
		RootSeed:    o.Root,
		CodeVersion: CodeVersion(),
		Trials:      len(o.Results),
		Errors:      o.Errors(),
		Columns:     o.File.Columns,
		Artifacts: []string{
			TrialsArtifact, CSVArtifact, MarkdownArtifact, ManifestArtifact,
		},
	}
	for i := range o.File.Scenarios {
		sc := &o.File.Scenarios[i]
		trials := sc.trialCount(o.Quick)
		if trials < 1 {
			trials = 1 // the harness default (Scenario.TrialCount)
		}
		m.Scenarios = append(m.Scenarios, ManifestScenario{
			Name:      sc.Name,
			Algorithm: sc.Algorithm,
			Custom:    sc.Custom,
			Cost:      sc.Cost,
			Instances: len(sc.expandInstances(o.Quick)),
			Trials:    trials,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(&m)
}

// writeFileAtomicish writes through a buffered writer and reports close
// errors, so a partially written artifact cannot be mistaken for a result.
func writeFileAtomicish(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(f)
	if err := write(bw); err != nil {
		f.Close()
		return fmt.Errorf("%s: %w", path, err)
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return fmt.Errorf("%s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	return nil
}
