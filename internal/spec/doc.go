// Package spec is the declarative scenario layer over the experiment
// harness: it parses JSON experiment-spec files, validates them against the
// live registries (repro.Get for algorithms, graph.FamilyNames for workload
// families), and compiles them onto internal/harness scenarios, so that a
// topology × algorithm × cost-model combination is a checked-in data file
// instead of a hand-written Go driver.
//
// A spec file declares a named experiment: a root-seed policy, optional
// output columns, and a list of scenarios, each naming either a registered
// repro.Algorithm (with typed parameter overrides) or a custom workload to
// be supplied by the compiling driver. Instances come from explicit lists or
// family × size grids, with optional reduced-size "quick" overlays for
// CI-scale runs. The checked-in library lives in the scenarios/ directory at
// the repository root (embedded by the scenarios package) and is the single
// source of truth for the paper's experiment grids: cmd/experiments loads
// its E1–E14 grids from it, and `radiobfs run` executes any registry-only
// spec directly.
//
// Execution and persistence follow the harness's determinism contract:
// every trial's seed derives from (root, scenario, instance, index) alone,
// so an executed spec — and every artifact Output.WriteArtifacts persists
// (per-trial JSONL, aggregated CSV, a rendered Markdown table, a manifest) —
// is byte-identical at any worker count. No artifact contains a timestamp
// or any other machine-dependent value.
package spec
