package spec_test

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/spec"
	"repro/scenarios"
)

// TestEncodeRoundTripsLibrary pins the contract the distributed coordinator
// ships specs to worker processes on: for every checked-in scenario file,
// Parse(Encode(Parse(file))) is the identical File. A spec field that failed
// to round-trip would make a worker expand a different trial list than its
// coordinator — caught there only at runtime by the seed echo, caught here
// at test time.
func TestEncodeRoundTripsLibrary(t *testing.T) {
	names := scenarios.Names()
	if len(names) == 0 {
		t.Fatal("embedded scenario library is empty")
	}
	for _, name := range names {
		f, err := spec.ParseFS(scenarios.FS, name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		blob, err := f.Encode()
		if err != nil {
			t.Fatalf("%s: Encode: %v", name, err)
		}
		back, err := spec.Parse(bytes.NewReader(blob))
		if err != nil {
			t.Fatalf("%s: reparse of encoded spec: %v", name, err)
		}
		if !reflect.DeepEqual(f, back) {
			t.Errorf("%s: spec changed across Encode/Parse\nbefore: %+v\nafter:  %+v", name, f, back)
		}
	}
}
