package harness

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// This file holds the persistent result sinks used by the artifact pipeline
// (internal/spec, `radiobfs run`): per-trial JSONL records and a rendered
// Markdown table, alongside the CSV/JSON/text writers in aggregate.go. All
// sinks write bytes that are a pure function of their inputs — results
// arrive in the Runner's canonical order and map keys are emitted sorted —
// so persisted artifacts diff cleanly across machines and worker counts.

// WriteTrialJSONL writes one JSON object per executed trial, in results
// order (the Runner's canonical order). Each line carries the trial's full
// coordinates — scenario, family, n, maxDist, trial index, derived seed —
// plus its metrics, so any single line is enough to reproduce that trial in
// isolation with Execute.
func WriteTrialJSONL(w io.Writer, results []Result) error {
	for i := range results {
		b, err := json.Marshal(&results[i])
		if err != nil {
			return err
		}
		if _, err := w.Write(append(b, '\n')); err != nil {
			return err
		}
	}
	return nil
}

// WriteMarkdown renders the summaries as GitHub-flavored Markdown: one table
// per scenario, one row per (cell, metric), mirroring WriteTable's layout.
func WriteMarkdown(w io.Writer, sums []Summary) {
	current := ""
	for _, s := range sums {
		if s.Scenario != current {
			if current != "" {
				fmt.Fprintln(w)
			}
			current = s.Scenario
			fmt.Fprintf(w, "### %s\n\n", mdEscape(s.Scenario))
			fmt.Fprintln(w, "| family | n | maxDist | trials | errors | metric | mean | stddev | min | p50 | p90 | max |")
			fmt.Fprintln(w, "| --- | --- | --- | --- | --- | --- | --- | --- | --- | --- | --- | --- |")
		}
		if len(s.Metrics) == 0 {
			fmt.Fprintf(w, "| %s | %d | %d | %d | %d | - | - | - | - | - | - | - |\n",
				mdEscape(s.Family), s.N, s.MaxDist, s.Trials, s.Errors)
			continue
		}
		for _, name := range sortedAggNames(s.Metrics) {
			a := s.Metrics[name]
			fmt.Fprintf(w, "| %s | %d | %d | %d | %d | %s | %g | %g | %g | %g | %g | %g |\n",
				mdEscape(s.Family), s.N, s.MaxDist, s.Trials, s.Errors,
				mdEscape(name), a.Mean, a.Stddev, a.Min, a.P50, a.P90, a.Max)
		}
	}
	if current != "" {
		fmt.Fprintln(w)
	}
}

// mdEscape neutralizes the characters that would break a Markdown table cell.
func mdEscape(s string) string {
	s = strings.ReplaceAll(s, "|", `\|`)
	return strings.ReplaceAll(s, "\n", " ")
}

// FilterMetrics returns summaries restricted to the named metrics, in the
// given order of preference for presentation sinks that honor it (the
// aggregate maps stay name-keyed; CSV/Markdown render keys sorted). Cells
// lacking every named metric keep an empty metric map. An empty columns list
// returns the input unchanged.
func FilterMetrics(sums []Summary, columns []string) []Summary {
	if len(columns) == 0 {
		return sums
	}
	out := make([]Summary, len(sums))
	for i, s := range sums {
		f := s
		f.Metrics = make(map[string]Agg, len(columns))
		for _, name := range columns {
			if a, ok := s.Metrics[name]; ok {
				f.Metrics[name] = a
			}
		}
		out[i] = f
	}
	return out
}
