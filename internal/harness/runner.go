package harness

import (
	"runtime"
	"sync"
)

// Runner executes scenarios on a worker pool. The zero value runs every
// trial on GOMAXPROCS workers with root seed 0; set Root to reproduce a
// specific sweep and Workers to bound parallelism (1 = sequential).
//
// Because every trial derives its seed from its own coordinates (see
// TrialFor) and results are written to position-indexed slots, Run's output
// is byte-for-byte independent of Workers and of goroutine scheduling.
type Runner struct {
	// Workers bounds concurrent trials; <= 0 means runtime.GOMAXPROCS(0).
	Workers int
	// Root is the root seed every trial seed is derived from.
	Root uint64
}

// Run expands the scenarios into trials, executes them all, and returns the
// results in canonical order: scenarios in argument order, instances in
// declaration order, trial indices ascending.
func (r *Runner) Run(scenarios ...*Scenario) []Result {
	type job struct {
		slot int
		sc   *Scenario
		t    Trial
	}
	var jobs []job
	for _, sc := range scenarios {
		for _, t := range Expand(sc, r.Root) {
			jobs = append(jobs, job{slot: len(jobs), sc: sc, t: t})
		}
	}
	results := make([]Result, len(jobs))
	workers := r.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	// Deterministic-family graphs are built once up front and shared
	// read-only by every worker, so neither the construction work nor the
	// resident memory scales with the worker count.
	shared := sharedGraphs(scenarios...)
	if workers <= 1 {
		ctx := newContextShared(shared)
		for _, j := range jobs {
			results[j.slot] = ExecuteCtx(ctx, j.sc, j.t)
		}
		return results
	}
	ch := make(chan job)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// One Context per worker: trials executing on this goroutine
			// share its engine, scratch and graph cache. Results stay
			// byte-identical at any worker count because a trial's outcome
			// is a pure function of its Trial value (see the package doc's
			// worker-context contract).
			ctx := newContextShared(shared)
			for j := range ch {
				results[j.slot] = ExecuteCtx(ctx, j.sc, j.t)
			}
		}()
	}
	for _, j := range jobs {
		ch <- j
	}
	close(ch)
	wg.Wait()
	return results
}
