package harness

import (
	"runtime"
	"sync"
)

// DefaultShardMinN is the instance size at which the Runner switches a
// trial from competing trial-parallel to running alone with the radio
// engine sharded across the whole worker pool. Below it, trial-level
// parallelism dominates (many independent small trials keep every core
// busy); above it, a single trial's physics steps carry enough activity for
// intra-trial sharding to win, and running such trials concurrently would
// only thrash memory.
const DefaultShardMinN = 1 << 17

// Runner executes scenarios on a worker pool. The zero value runs every
// trial on GOMAXPROCS workers with root seed 0; set Root to reproduce a
// specific sweep and Workers to bound parallelism (1 = sequential).
//
// Because every trial derives its seed from its own coordinates (see
// TrialFor) and results are written to position-indexed slots, Run's output
// is byte-for-byte independent of Workers and of goroutine scheduling.
//
// Trials of big instances (Instance.N >= the shard threshold) are scheduled
// differently — one at a time, with the engine sharded across the pool (see
// radio.StepParallel) — but that changes only where the parallelism lives,
// never the bytes: sharded steps are proven identical to sequential ones,
// so aggregate output remains independent of Workers and ShardMinN alike.
type Runner struct {
	// Workers bounds concurrent trials; <= 0 means runtime.GOMAXPROCS(0).
	Workers int
	// Root is the root seed every trial seed is derived from.
	Root uint64
	// ShardMinN overrides the instance size from which trials run with
	// intra-trial sharding instead of trial parallelism: 0 selects
	// DefaultShardMinN, negative disables intra-trial sharding entirely.
	ShardMinN int
	// DenseMin overrides the engines' dense-kernel coverage threshold (see
	// radio.WithDenseMin): 0 keeps the engine default, positive is the
	// transmitter coverage (Σ deg) from which the packed-bitmap kernel
	// engages, negative disables it. Like ShardMinN this selects kernels,
	// never semantics — results are byte-identical at any setting.
	DenseMin int
	// OnTrial, when non-nil, is invoked once per trial the moment its
	// Result settles — from whichever worker goroutine ran it, so it must
	// be safe for concurrent use. Invocation order follows scheduling, not
	// slot order; the returned Result slice is unaffected (still canonical
	// slot order, byte-identical at any worker count). Drivers use it to
	// stream per-trial progress (e.g. the serving layer's trial-done SSE
	// events) without waiting for the whole sweep.
	OnTrial func(Result)
}

// shardMinN resolves the effective big-instance threshold (0 = disabled).
func (r *Runner) shardMinN() int {
	switch {
	case r.ShardMinN < 0:
		return 0
	case r.ShardMinN == 0:
		return DefaultShardMinN
	default:
		return r.ShardMinN
	}
}

// Run expands the scenarios into trials, executes them all, and returns the
// results in canonical order: scenarios in argument order, instances in
// declaration order, trial indices ascending (the same slot order ExpandAll
// reports, which is what lets a distributed run merge worker results back
// into this exact layout).
func (r *Runner) Run(scenarios ...*Scenario) []Result {
	jobs := r.ExpandAll(scenarios...)
	results := make([]Result, len(jobs))
	workers := r.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	// Deterministic-family graphs are built once up front and shared
	// read-only by every worker, so neither the construction work nor the
	// resident memory scales with the worker count.
	shared := sharedGraphs(scenarios...)
	if workers <= 1 {
		ctx := newContextShared(shared)
		ctx.SetDenseMin(r.DenseMin)
		for _, j := range jobs {
			results[j.Slot] = ExecuteCtx(ctx, j.Scenario, j.Trial)
			r.notify(results[j.Slot])
		}
		return results
	}
	// Big instances do not compete trial-parallel: each runs alone with its
	// physics steps sharded across the full pool, so one million-vertex
	// trial saturates the machine instead of serializing behind a worker.
	small := jobs
	if minN := r.shardMinN(); minN > 0 {
		small = small[:0]
		var big []TrialRef
		for _, j := range jobs {
			if j.Trial.N >= minN {
				big = append(big, j)
			} else {
				small = append(small, j)
			}
		}
		if len(big) > 0 {
			ctx := newContextShared(shared)
			ctx.SetShards(workers)
			ctx.SetDenseMin(r.DenseMin)
			for _, j := range big {
				results[j.Slot] = ExecuteCtx(ctx, j.Scenario, j.Trial)
				r.notify(results[j.Slot])
			}
		}
	}
	if len(small) == 0 {
		return results
	}
	if workers > len(small) {
		workers = len(small)
	}
	ch := make(chan TrialRef)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// One Context per worker: trials executing on this goroutine
			// share its engine, scratch and graph cache. Results stay
			// byte-identical at any worker count because a trial's outcome
			// is a pure function of its Trial value (see the package doc's
			// worker-context contract).
			ctx := newContextShared(shared)
			ctx.SetDenseMin(r.DenseMin)
			for j := range ch {
				results[j.Slot] = ExecuteCtx(ctx, j.Scenario, j.Trial)
				r.notify(results[j.Slot])
			}
		}()
	}
	for _, j := range small {
		ch <- j
	}
	close(ch)
	wg.Wait()
	return results
}

// notify delivers one settled result to the OnTrial hook, if any.
func (r *Runner) notify(res Result) {
	if r.OnTrial != nil {
		r.OnTrial(res)
	}
}
