package harness

import (
	"bytes"
	"strings"
	"testing"
)

func sinkFixture() []Result {
	return []Result{
		{Trial: Trial{Scenario: "s", Instance: Instance{Family: "cycle", N: 8, MaxDist: 4}, Index: 0, Seed: 1, GraphSeed: 7},
			Metrics: Metrics{"b": 2, "a": 1}},
		{Trial: Trial{Scenario: "s", Instance: Instance{Family: "cycle", N: 8, MaxDist: 4}, Index: 1, Seed: 2},
			Metrics: Metrics{"b": 4, "a": 3}},
		{Trial: Trial{Scenario: "t", Instance: Instance{Family: "pi|pe", N: 2, MaxDist: 1}, Index: 0, Seed: 3},
			Err: "boom"},
	}
}

func TestWriteTrialJSONL(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTrialJSONL(&buf, sinkFixture()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 3", len(lines))
	}
	// Map keys are emitted sorted, so the bytes are canonical.
	want := `{"scenario":"s","family":"cycle","n":8,"maxDist":4,"trial":0,"seed":1,"graphSeed":7,"metrics":{"a":1,"b":2}}`
	if lines[0] != want {
		t.Errorf("line 0:\n got %s\nwant %s", lines[0], want)
	}
	if !strings.Contains(lines[2], `"err":"boom"`) {
		t.Errorf("error trial not recorded: %s", lines[2])
	}
}

func TestWriteMarkdownAndFilter(t *testing.T) {
	sums := Aggregate(sinkFixture())
	var buf bytes.Buffer
	WriteMarkdown(&buf, sums)
	out := buf.String()
	for _, want := range []string{"### s", "### t", "| a | 2 |", `pi\|pe`} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown missing %q:\n%s", want, out)
		}
	}

	filtered := FilterMetrics(sums, []string{"a", "nope"})
	if len(filtered) != len(sums) {
		t.Fatalf("FilterMetrics dropped cells")
	}
	if _, ok := filtered[0].Metrics["b"]; ok {
		t.Error("metric b should be filtered out")
	}
	if _, ok := filtered[0].Metrics["a"]; !ok {
		t.Error("metric a should be kept")
	}
	if len(FilterMetrics(sums, nil)) != len(sums) {
		t.Error("nil columns must be a no-op")
	}
	// The original summaries must be untouched (copies, not mutation).
	if _, ok := sums[0].Metrics["b"]; !ok {
		t.Error("FilterMetrics mutated its input")
	}
}
