package harness

import (
	"repro"
	"repro/internal/decay"
	"repro/internal/graph"
	"repro/internal/radio"
)

// graphKey identifies one cached deterministic workload graph.
type graphKey struct {
	family string
	n      int
}

// Context is the per-worker trial state pool: a reusable radio engine, the
// Decay scratch buffers, a pooled graph builder for the seeded families
// rebuilt every trial, and a cache of deterministic workload graphs. The
// Runner creates one Context per worker and threads it through every trial
// that worker executes, so steady-state sweeps reuse their heavy allocations
// instead of rebuilding them per trial.
//
// A Context must never be shared between concurrently running trials; each
// worker owns exactly one. Everything a Context hands out is either
// immutable (cached graphs) or fully reset before reuse (the engine), so
// trial results are identical whether a Context is fresh or has served any
// number of prior trials — the worker-count determinism guarantee depends
// on this.
type Context struct {
	eng   *radio.Engine
	decay decay.Scratch
	// builder is the pooled graph builder seeded-family trials rebuild
	// their topology through: one pre-sized arc accumulator per worker,
	// Reset between trials, so steady-state seeded sweeps stop paying a
	// cold build per trial.
	builder *graph.Builder
	// shards is the engine shard count trials executed on this context use
	// (1 = sequential). The Runner sets it to the worker-pool size for
	// contexts that execute big instances one at a time.
	shards int
	// denseMin is the engine's dense-kernel threshold override (see
	// radio.WithDenseMin): 0 keeps the engine default, positive engages the
	// packed-bitmap kernel from that transmitter coverage, negative
	// disables it.
	denseMin int
	// shared is a read-only cache of deterministic-family graphs built
	// before worker fan-out, so one instance serves every worker; graphs
	// are immutable, so lock-free concurrent reads are safe. graphs is the
	// per-context overflow for families the Runner could not anticipate.
	shared map[graphKey]*graph.Graph
	graphs map[graphKey]*graph.Graph
}

// NewContext returns an empty trial context. Trials executed with it warm
// its pools lazily.
func NewContext() *Context {
	return &Context{graphs: make(map[graphKey]*graph.Graph)}
}

// newContextShared returns a context that consults the given pre-built
// graph cache before its private one. The map must not be written after
// being handed out.
func newContextShared(shared map[graphKey]*graph.Graph) *Context {
	c := NewContext()
	c.shared = shared
	return c
}

// sharedGraphs pre-builds the deterministic-family graphs of every instance
// in the scenarios that execute through worker contexts (built-ins and
// RunCtx workloads), for use with per-worker contexts: each distinct
// (family, n) is constructed exactly once and shared read-only across all
// workers, instead of once per worker. Unknown families are skipped — the
// executing trial reports the error itself.
func sharedGraphs(scenarios ...*Scenario) map[graphKey]*graph.Graph {
	shared := make(map[graphKey]*graph.Graph)
	for _, sc := range scenarios {
		if sc.Run != nil && sc.RunCtx == nil {
			continue // legacy custom workload: never touches a Context
		}
		for _, inst := range sc.Instances {
			k := graphKey{inst.Family, inst.N}
			if _, ok := shared[k]; ok || graph.FamilySeeded(inst.Family) {
				continue
			}
			if g, err := repro.NewGraph(inst.Family, inst.N, 0); err == nil {
				shared[k] = g
			}
		}
	}
	return shared
}

// Graph returns the named workload graph for (family, n, seed). Graphs of
// deterministic families — those for which graph.FamilySeeded is false — are
// served from the shared pre-built cache when possible, else built once per
// context and reused across its trials; both are safe because Graph values
// are immutable. Seeded families are always built fresh, since every trial
// draws a different topology.
func (c *Context) Graph(family string, n int, seed uint64) (*graph.Graph, error) {
	if graph.FamilySeeded(family) {
		if c.builder == nil {
			c.builder = graph.FromDegreeHint(n, 8)
		}
		// FamilySeeded and NamedInto consult the same registry, so a
		// seeded family always resolves.
		g, _ := graph.NamedInto(c.builder, family, n, seed)
		return g, nil
	}
	k := graphKey{family, n}
	if g, ok := c.shared[k]; ok {
		return g, nil
	}
	if g, ok := c.graphs[k]; ok {
		return g, nil
	}
	g, err := repro.NewGraph(family, n, seed)
	if err != nil {
		return nil, err
	}
	c.graphs[k] = g
	return g, nil
}

// SetShards fixes the engine shard count for trials executed on this
// context. Sharded and sequential execution are byte-identical (see
// radio.StepParallel), so this is scheduling policy, never semantics.
func (c *Context) SetShards(k int) {
	c.shards = k
	if c.eng != nil {
		c.eng.SetShards(k)
	}
}

// SetDenseMin fixes the engine dense-kernel threshold for trials executed
// on this context (see radio.WithDenseMin). Like SetShards this is purely
// kernel-selection policy: every kernel is byte-identical, so results never
// depend on it.
func (c *Context) SetDenseMin(min int) {
	c.denseMin = min
	if c.eng != nil {
		c.eng.SetDenseMin(min)
	}
}

// Engine returns the context's radio engine reset onto g: meters and clock
// zeroed, scratch reused. The returned engine is valid until the next
// Engine call on the same context.
func (c *Context) Engine(g *graph.Graph) *radio.Engine {
	if c.eng == nil {
		c.eng = radio.NewEngine(g, radio.WithShards(c.shards), radio.WithDenseMin(c.denseMin))
		return c.eng
	}
	c.eng.Reset(g)
	return c.eng
}

// DecayScratch returns the context's Decay buffer pool, for custom
// TrialCtxFuncs that run Decay primitives directly.
func (c *Context) DecayScratch() *decay.Scratch { return &c.decay }
