package harness

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"repro/internal/stats"
)

// Agg summarizes one metric over the trials of a cell.
type Agg struct {
	Count  int     `json:"count"`
	Mean   float64 `json:"mean"`
	Stddev float64 `json:"stddev"`
	Min    float64 `json:"min"`
	P50    float64 `json:"p50"`
	P90    float64 `json:"p90"`
	Max    float64 `json:"max"`
}

// Summary aggregates all trials of one (scenario, family, n, maxDist) cell.
type Summary struct {
	Scenario string         `json:"scenario"`
	Family   string         `json:"family"`
	N        int            `json:"n"`
	MaxDist  int            `json:"maxDist"`
	Trials   int            `json:"trials"`
	Errors   int            `json:"errors"`
	Metrics  map[string]Agg `json:"metrics"`
}

// cell accumulates one summary with streaming folds per metric.
type cell struct {
	sum Summary
	acc map[string]*metricAcc
}

type metricAcc struct {
	s   stats.Stream
	p50 *stats.PSquare
	p90 *stats.PSquare
}

// Aggregate folds results into per-cell summaries. Cells appear in order of
// first appearance in results; within a cell, metrics are folded in results
// order — both orders are canonical (see Runner.Run), so the aggregate is
// deterministic regardless of worker count. NaN and ±Inf observations are
// dropped.
func Aggregate(results []Result) []Summary {
	type key struct {
		sc, fam string
		n, md   int
	}
	cells := map[key]*cell{}
	var order []key
	for _, r := range results {
		k := key{r.Scenario, r.Family, r.N, r.MaxDist}
		c := cells[k]
		if c == nil {
			c = &cell{
				sum: Summary{Scenario: r.Scenario, Family: r.Family, N: r.N, MaxDist: r.MaxDist},
				acc: map[string]*metricAcc{},
			}
			cells[k] = c
			order = append(order, k)
		}
		c.sum.Trials++
		if r.Err != "" {
			c.sum.Errors++
		}
		// Map-iteration order is irrelevant here: each metric feeds its own
		// accumulator, so per-metric observations arrive in results order.
		for name, v := range r.Metrics {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			a := c.acc[name]
			if a == nil {
				a = &metricAcc{p50: stats.NewPSquare(0.5), p90: stats.NewPSquare(0.9)}
				c.acc[name] = a
			}
			a.s.Add(v)
			a.p50.Add(v)
			a.p90.Add(v)
		}
	}
	out := make([]Summary, 0, len(order))
	for _, k := range order {
		c := cells[k]
		c.sum.Metrics = map[string]Agg{}
		for name, a := range c.acc {
			c.sum.Metrics[name] = Agg{
				Count:  a.s.N(),
				Mean:   a.s.Mean(),
				Stddev: a.s.Stddev(),
				Min:    a.s.Min(),
				P50:    a.p50.Value(),
				P90:    a.p90.Value(),
				Max:    a.s.Max(),
			}
		}
		out = append(out, c.sum)
	}
	return out
}

// WriteTable renders one aligned text table per scenario, one row per
// (cell, metric).
func WriteTable(w io.Writer, sums []Summary) {
	var tbl *stats.Table
	current := ""
	flush := func() {
		if tbl != nil {
			tbl.Render(w)
		}
	}
	for _, s := range sums {
		if s.Scenario != current || tbl == nil {
			flush()
			current = s.Scenario
			tbl = stats.NewTable("sweep: "+s.Scenario,
				"family", "n", "maxDist", "trials", "errors", "metric", "mean", "stddev", "min", "p50", "p90", "max")
		}
		for _, name := range sortedAggNames(s.Metrics) {
			a := s.Metrics[name]
			tbl.AddRowf(s.Family, s.N, s.MaxDist, s.Trials, s.Errors, name,
				a.Mean, a.Stddev, a.Min, a.P50, a.P90, a.Max)
		}
		if len(s.Metrics) == 0 {
			tbl.AddRowf(s.Family, s.N, s.MaxDist, s.Trials, s.Errors, "-", "-", "-", "-", "-", "-", "-")
		}
	}
	flush()
}

func sortedAggNames(m map[string]Agg) []string {
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// WriteCSV writes one flat CSV row per (cell, metric).
func WriteCSV(w io.Writer, sums []Summary) {
	fmt.Fprintln(w, "scenario,family,n,maxDist,trials,errors,metric,count,mean,stddev,min,p50,p90,max")
	for _, s := range sums {
		for _, name := range sortedAggNames(s.Metrics) {
			a := s.Metrics[name]
			fmt.Fprintf(w, "%s,%s,%d,%d,%d,%d,%s,%d,%g,%g,%g,%g,%g,%g\n",
				csvEscape(s.Scenario), csvEscape(s.Family), s.N, s.MaxDist, s.Trials, s.Errors,
				csvEscape(name), a.Count, a.Mean, a.Stddev, a.Min, a.P50, a.P90, a.Max)
		}
	}
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

// WriteJSON writes the summaries as indented JSON. Map keys are emitted in
// sorted order by encoding/json, so the bytes are a pure function of the
// summaries.
func WriteJSON(w io.Writer, sums []Summary) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(sums)
}
