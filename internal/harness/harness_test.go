package harness

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro"
)

func TestCrossAndExpand(t *testing.T) {
	sc := &Scenario{
		Name: "x",
		Instances: Cross([]string{"cycle", "grid"}, []int{32, 64},
			func(_ string, n int) int { return n / 2 }),
		Trials: 3,
	}
	trials := Expand(sc, 1)
	if len(trials) != 2*2*3 {
		t.Fatalf("expanded %d trials, want 12", len(trials))
	}
	if trials[0].Family != "cycle" || trials[0].N != 32 || trials[0].MaxDist != 16 {
		t.Fatalf("unexpected first trial: %+v", trials[0])
	}
	seen := map[uint64]bool{}
	for _, tr := range trials {
		if seen[tr.Seed] {
			t.Fatalf("duplicate seed %d", tr.Seed)
		}
		seen[tr.Seed] = true
	}
}

func TestTrialSeedsStableUnderListChanges(t *testing.T) {
	// Seeds depend on trial coordinates, not list positions: extending the
	// instance list or trial count must not reseed existing trials.
	small := &Scenario{Name: "s", Instances: []Instance{{Family: "cycle", N: 64}}, Trials: 2}
	big := &Scenario{Name: "s", Instances: []Instance{{Family: "path", N: 32}, {Family: "cycle", N: 64}}, Trials: 5}
	a := TrialFor(small, small.Instances[0], 1, 9)
	b := TrialFor(big, big.Instances[1], 1, 9)
	if a.Seed != b.Seed {
		t.Fatalf("seed changed with list shape: %d vs %d", a.Seed, b.Seed)
	}
	if c := TrialFor(small, small.Instances[0], 1, 10); c.Seed == a.Seed {
		t.Fatal("root seed ignored")
	}
}

func TestBuiltinRecursive(t *testing.T) {
	sc := &Scenario{Name: "rec", Instances: []Instance{{Family: "cycle", N: 64}}, Algo: AlgoRecursive}
	res := Execute(sc, Expand(sc, 1)[0])
	if res.Err != "" {
		t.Fatal(res.Err)
	}
	if res.Metrics["mislabeled"] != 0 {
		t.Fatalf("mislabeled = %v", res.Metrics["mislabeled"])
	}
	if res.Metrics["maxLB"] <= 0 || res.Metrics["timeLB"] <= 0 {
		t.Fatalf("meters did not move: %v", res.Metrics)
	}
}

func TestBuiltinDecay(t *testing.T) {
	sc := &Scenario{Name: "dec", Instances: []Instance{{Family: "grid", N: 49}}, Algo: AlgoDecay}
	res := Execute(sc, Expand(sc, 1)[0])
	if res.Err != "" {
		t.Fatal(res.Err)
	}
	if res.Metrics["mislabeled"] != 0 || res.Metrics["physMax"] <= 0 {
		t.Fatalf("unexpected metrics: %v", res.Metrics)
	}
}

func TestBuiltinDiameterAndApplications(t *testing.T) {
	for _, algo := range []Algo{AlgoDiam2, AlgoDiam32} {
		sc := &Scenario{Name: string(algo), Instances: []Instance{{Family: "path", N: 40}}, Algo: algo}
		res := Execute(sc, Expand(sc, 1)[0])
		if res.Err != "" {
			t.Fatalf("%s: %s", algo, res.Err)
		}
		if res.Metrics["inBand"] != 1 {
			t.Fatalf("%s: estimate %v out of band (diam %v)", algo, res.Metrics["estimate"], res.Metrics["diam"])
		}
	}
	for _, algo := range []Algo{AlgoVerify, AlgoPoll, AlgoAlarm} {
		sc := &Scenario{Name: string(algo), Instances: []Instance{{Family: "grid", N: 36}}, Algo: algo}
		res := Execute(sc, Expand(sc, 1)[0])
		if res.Err != "" {
			t.Fatalf("%s: %s", algo, res.Err)
		}
	}
}

func TestBuiltinErrorsAreCaptured(t *testing.T) {
	sc := &Scenario{Name: "bad", Instances: []Instance{{Family: "bogus", N: 10}}, Algo: AlgoRecursive}
	res := Execute(sc, Expand(sc, 1)[0])
	if res.Err == "" {
		t.Fatal("unknown family did not error")
	}
	sc2 := &Scenario{Name: "bad2", Instances: []Instance{{Family: "cycle", N: 16}}, Algo: Algo("nope")}
	if res := Execute(sc2, Expand(sc2, 1)[0]); res.Err == "" {
		t.Fatal("unknown algorithm did not error")
	}
}

// dummyAlgo is a minimal external registry entry: the harness must be able
// to sweep it by name without any harness-side wiring.
type dummyAlgo struct{}

func (dummyAlgo) Name() string              { return "dummy-test" }
func (dummyAlgo) Doc() string               { return "test-only registry entry" }
func (dummyAlgo) Params() []repro.ParamSpec { return nil }
func (dummyAlgo) Run(_ context.Context, _ *repro.Network, _ repro.Request) (*repro.Result, error) {
	return &repro.Result{Algorithm: "dummy-test", Values: map[string]float64{"answer": 42}}, nil
}
func (dummyAlgo) Check(*repro.Network, repro.Request, *repro.Result) {}

// registerDummy guards the process-global registry: Register panics on
// duplicates, so re-running the test in one binary (-count=2) must not
// re-register.
var registerDummy sync.Once

// TestRegisteredAlgorithmIsSweepable is the registry contract end to end: an
// algorithm registered by an external package is immediately addressable as
// Scenario.Algo, with its Result.Values flowing into the metrics.
func TestRegisteredAlgorithmIsSweepable(t *testing.T) {
	registerDummy.Do(func() { repro.Register(dummyAlgo{}) })
	sc := &Scenario{Name: "reg", Instances: []Instance{{Family: "cycle", N: 16}}, Algo: "dummy-test"}
	res := Execute(sc, TrialFor(sc, sc.Instances[0], 0, 1))
	if res.Err != "" {
		t.Fatal(res.Err)
	}
	if res.Metrics["answer"] != 42 {
		t.Fatalf("registry metrics did not flow through: %v", res.Metrics)
	}
}

// TestScenarioContextCancel: a canceled Scenario.Ctx fails its trials with
// the context error instead of running them.
func TestScenarioContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sc := &Scenario{Name: "canceled", Instances: []Instance{{Family: "cycle", N: 64}}, Algo: AlgoRecursive, Ctx: ctx}
	res := Execute(sc, TrialFor(sc, sc.Instances[0], 0, 1))
	if !strings.Contains(res.Err, "context canceled") {
		t.Fatalf("canceled scenario reported %q", res.Err)
	}
}

func TestCustomRunAndAggregate(t *testing.T) {
	sc := &Scenario{
		Name:      "custom",
		Instances: []Instance{{Family: "any", N: 8}},
		Trials:    6,
		Run: func(tr Trial) (Metrics, error) {
			m := Metrics{"idx": float64(tr.Index)}
			if tr.Index%2 == 0 {
				m["evenOnly"] = 1 // omitted on odd trials
			}
			if tr.Index == 5 {
				return nil, fmt.Errorf("boom")
			}
			return m, nil
		},
	}
	r := Runner{Workers: 2, Root: 3}
	sums := Aggregate(r.Run(sc))
	if len(sums) != 1 {
		t.Fatalf("got %d summaries", len(sums))
	}
	s := sums[0]
	if s.Trials != 6 || s.Errors != 1 {
		t.Fatalf("trials/errors = %d/%d", s.Trials, s.Errors)
	}
	if got := s.Metrics["idx"].Count; got != 5 {
		t.Fatalf("idx count = %d, want 5 (error trial dropped)", got)
	}
	if got := s.Metrics["evenOnly"].Count; got != 3 {
		t.Fatalf("evenOnly count = %d, want 3 (omitted keys skipped)", got)
	}
	if s.Metrics["idx"].Min != 0 || s.Metrics["idx"].Max != 4 {
		t.Fatalf("idx range [%v, %v]", s.Metrics["idx"].Min, s.Metrics["idx"].Max)
	}
}

func TestWritersRender(t *testing.T) {
	sc := &Scenario{Name: "w", Instances: []Instance{{Family: "cycle", N: 32}}, Trials: 2, Algo: AlgoRecursive}
	r := Runner{Workers: 1, Root: 1}
	sums := Aggregate(r.Run(sc))
	var tbl, csv, js strings.Builder
	WriteTable(&tbl, sums)
	WriteCSV(&csv, sums)
	if err := WriteJSON(&js, sums); err != nil {
		t.Fatal(err)
	}
	for name, out := range map[string]string{"table": tbl.String(), "csv": csv.String(), "json": js.String()} {
		if !strings.Contains(out, "maxLB") || !strings.Contains(out, "cycle") {
			t.Fatalf("%s output missing expected content:\n%s", name, out)
		}
	}
}
