package harness

import (
	"strings"
	"testing"

	"repro"
)

// sweepScenarios is a representative multi-scenario workload: several
// algorithms, families, sizes, and trial counts, including a physical-cost
// scenario, so the determinism guarantee is exercised across every built-in
// code path the CLI sweep exposes.
func sweepScenarios() []*Scenario {
	return []*Scenario{
		{
			Name:      "rec",
			Instances: Cross([]string{"cycle", "grid"}, []int{48, 96}, func(_ string, n int) int { return n / 2 }),
			Trials:    3,
			Algo:      AlgoRecursive,
		},
		{
			Name:      "diam2",
			Instances: Cross([]string{"path"}, []int{40}, nil),
			Trials:    2,
			Algo:      AlgoDiam2,
		},
		{
			Name:      "poll",
			Instances: Cross([]string{"geometric"}, []int{64}, nil),
			Trials:    2,
			Algo:      AlgoPoll,
			Period:    8,
		},
		{
			Name:      "phys",
			Instances: Cross([]string{"cycle"}, []int{32}, nil),
			Trials:    2,
			Algo:      AlgoRecursive,
			Cost:      repro.CostPhysical,
		},
	}
}

func jsonFor(t *testing.T, workers int) string {
	t.Helper()
	r := Runner{Workers: workers, Root: 7}
	var b strings.Builder
	if err := WriteJSON(&b, Aggregate(r.Run(sweepScenarios()...))); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// TestRunnerDeterministicAcrossWorkerCounts is the harness's core contract:
// the same scenarios produce byte-identical aggregated JSON whether trials
// run sequentially or on eight workers, because seeds are derived per trial
// (never per worker) and results land in canonical order.
func TestRunnerDeterministicAcrossWorkerCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-worker sweep is not short")
	}
	sequential := jsonFor(t, 1)
	parallel := jsonFor(t, 8)
	if sequential != parallel {
		t.Fatalf("workers=1 and workers=8 diverged:\n--- workers=1 ---\n%s\n--- workers=8 ---\n%s", sequential, parallel)
	}
	again := jsonFor(t, 8)
	if parallel != again {
		t.Fatal("two workers=8 runs diverged")
	}
	if !strings.Contains(sequential, `"scenario": "rec"`) {
		t.Fatalf("summary JSON missing scenarios:\n%s", sequential)
	}
}
