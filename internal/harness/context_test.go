package harness

import (
	"strings"
	"testing"

	"repro/internal/graph"
)

// aggregateJSONFresh executes the sweep one trial at a time, each on a
// brand-new Context — the unpooled reference the pooled runner must match
// byte for byte.
func aggregateJSONFresh(t *testing.T, scenarios []*Scenario, root uint64) string {
	t.Helper()
	var results []Result
	for _, sc := range scenarios {
		for _, tr := range Expand(sc, root) {
			results = append(results, ExecuteCtx(NewContext(), sc, tr))
		}
	}
	var b strings.Builder
	if err := WriteJSON(&b, Aggregate(results)); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// TestPooledContextsMatchFreshPerTrial is the pooling contract: reusing
// engines, scratch and cached graphs across the trials of a worker must not
// change any aggregated number, at any worker count.
func TestPooledContextsMatchFreshPerTrial(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-scenario sweep is not short")
	}
	const root = 11
	fresh := aggregateJSONFresh(t, sweepScenarios(), root)
	for _, workers := range []int{1, 8} {
		r := Runner{Workers: workers, Root: root}
		var b strings.Builder
		if err := WriteJSON(&b, Aggregate(r.Run(sweepScenarios()...))); err != nil {
			t.Fatal(err)
		}
		if pooled := b.String(); pooled != fresh {
			t.Fatalf("workers=%d pooled output diverged from fresh-per-trial:\n--- fresh ---\n%s\n--- pooled ---\n%s", workers, fresh, pooled)
		}
	}
}

// TestContextGraphCaching checks the cache policy: deterministic families
// are built once and shared; seeded families are rebuilt per call.
func TestContextGraphCaching(t *testing.T) {
	ctx := NewContext()
	g1, err := ctx.Graph("cycle", 64, 123)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := ctx.Graph("cycle", 64, 456) // different seed, same topology
	if err != nil {
		t.Fatal(err)
	}
	if g1 != g2 {
		t.Fatal("deterministic family not cached across seeds")
	}
	r1, err := ctx.Graph("gnp", 64, 123)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := ctx.Graph("gnp", 64, 123)
	if err != nil {
		t.Fatal(err)
	}
	if r1 == r2 {
		t.Fatal("seeded family must not be cached")
	}
	if !graph.FamilySeeded("tree") || graph.FamilySeeded("grid") {
		t.Fatal("FamilySeeded misclassifies families")
	}
	if _, err := ctx.Graph("no-such-family", 8, 1); err == nil {
		t.Fatal("unknown family must error")
	}
}

// TestRunCtxWinsOverRun pins the documented precedence of the two custom
// workload hooks.
func TestRunCtxWinsOverRun(t *testing.T) {
	sc := &Scenario{
		Name:      "precedence",
		Instances: []Instance{{Family: "cycle", N: 8}},
		Run: func(Trial) (Metrics, error) {
			return Metrics{"which": 1}, nil
		},
		RunCtx: func(ctx *Context, _ Trial) (Metrics, error) {
			if ctx == nil {
				t.Fatal("nil context")
			}
			return Metrics{"which": 2}, nil
		},
	}
	res := Execute(sc, TrialFor(sc, sc.Instances[0], 0, 1))
	if res.Err != "" || res.Metrics["which"] != 2 {
		t.Fatalf("RunCtx did not win: %+v", res)
	}
}
