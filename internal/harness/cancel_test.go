package harness

import (
	"context"
	"reflect"
	"testing"
)

func cancelScenario(ctx context.Context) *Scenario {
	return &Scenario{
		Name:   "cancel",
		Algo:   AlgoRecursive,
		Trials: 3,
		Instances: []Instance{
			{Family: "cycle", N: 48, MaxDist: 12},
			{Family: "star", N: 40},
		},
		Ctx: ctx,
	}
}

// TestRunSettlesCanceledTrials: a sweep whose context is already canceled
// still returns one settled Result per expanded trial — correct Trial
// coordinates, a context error, no partial or missing entries — so callers
// can always tell exactly what did not run.
func TestRunSettlesCanceledTrials(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sc := cancelScenario(ctx)
	runner := Runner{Workers: 2, Root: 7}
	results := runner.Run(sc)
	refs := runner.ExpandAll(sc)
	if len(results) != len(refs) {
		t.Fatalf("%d results for %d trials", len(results), len(refs))
	}
	for i, r := range results {
		if r.Err == "" {
			t.Errorf("slot %d: canceled trial settled without an error", i)
		}
		if !reflect.DeepEqual(r.Trial, refs[i].Trial) {
			t.Errorf("slot %d: result trial %+v != expanded trial %+v", i, r.Trial, refs[i].Trial)
		}
	}
}

// TestRunRangeStopsBetweenTrials: canceling the range context after the
// first emitted trial stops the range at the next slot boundary — the error
// is the context's, exactly one complete result was emitted, and no partial
// trial ever reaches the caller.
func TestRunRangeStopsBetweenTrials(t *testing.T) {
	sc := cancelScenario(nil)
	runner := Runner{Root: 7}
	st := runner.Stream(sc)
	ctx, cancel := context.WithCancel(context.Background())
	var emitted []Result
	err := st.RunRange(ctx, 0, len(st.Trials()), nil, func(ref TrialRef, res Result) {
		emitted = append(emitted, res)
		cancel()
	})
	if err != context.Canceled {
		t.Fatalf("RunRange = %v, want context.Canceled", err)
	}
	if len(emitted) != 1 {
		t.Fatalf("emitted %d results after cancel-on-first, want 1", len(emitted))
	}
	if emitted[0].Err != "" || len(emitted[0].Metrics) == 0 {
		t.Errorf("the pre-cancel result must be complete and final: %+v", emitted[0])
	}

	// The pooled context survives a canceled range: the same Stream must
	// finish the remaining slots later with results identical to a fresh
	// full run — this is what lets the dist coordinator reuse its stream
	// after an interrupted in-process lease.
	var rest []Result
	if err := st.RunRange(context.Background(), 0, len(st.Trials()),
		func(slot int) bool { return slot == 0 },
		func(ref TrialRef, res Result) { rest = append(rest, res) }); err != nil {
		t.Fatalf("resumed range: %v", err)
	}
	full := runner.Run(sc)
	got := append([]Result{emitted[0]}, rest...)
	if !reflect.DeepEqual(got, full) {
		t.Errorf("canceled-then-resumed results differ from a fresh run\ngot:  %+v\nwant: %+v", got, full)
	}
}

// TestRunRangeRejectsBadBounds: out-of-range leases are loud errors, not
// silent truncations.
func TestRunRangeRejectsBadBounds(t *testing.T) {
	sc := cancelScenario(nil)
	runner := Runner{Root: 7}
	st := runner.Stream(sc)
	n := len(st.Trials())
	for _, r := range [][2]int{{-1, 2}, {0, n + 1}, {3, 2}} {
		if err := st.RunRange(context.Background(), r[0], r[1], nil, func(TrialRef, Result) {}); err == nil {
			t.Errorf("RunRange(%d, %d) succeeded on a %d-trial sweep", r[0], r[1], n)
		}
	}
}

// TestExpandAllMatchesRun: the canonical flat trial list is exactly the
// layout Runner.Run fills — the invariant the whole lease/slot scheme
// stands on.
func TestExpandAllMatchesRun(t *testing.T) {
	a := cancelScenario(nil)
	b := &Scenario{
		Name:      "second",
		Algo:      AlgoDiam2,
		Trials:    2,
		Instances: []Instance{{Family: "grid", N: 49}},
	}
	runner := Runner{Root: 3}
	refs := runner.ExpandAll(a, b)
	results := runner.Run(a, b)
	if len(refs) != len(results) {
		t.Fatalf("%d refs, %d results", len(refs), len(results))
	}
	for i := range refs {
		if refs[i].Slot != i {
			t.Errorf("ref %d carries slot %d", i, refs[i].Slot)
		}
		if !reflect.DeepEqual(refs[i].Trial, results[i].Trial) {
			t.Errorf("slot %d: ExpandAll trial %+v != Run trial %+v", i, refs[i].Trial, results[i].Trial)
		}
	}
}
