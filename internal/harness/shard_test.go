package harness

import (
	"reflect"
	"testing"
)

// shardPolicyScenarios mixes seeded and deterministic families around a size
// boundary, so a low ShardMinN splits the trial list into both scheduling
// classes.
func shardPolicyScenarios() []*Scenario {
	return []*Scenario{
		{
			Name:      "shard-policy-decay",
			Algo:      AlgoDecay,
			Cost:      0,
			Trials:    3,
			Passes:    4,
			Instances: []Instance{{Family: "tree", N: 96}, {Family: "grid", N: 256}, {Family: "tree", N: 300}},
		},
		{
			Name:      "shard-policy-recursive",
			Trials:    2,
			Instances: []Instance{{Family: "cycle", N: 128, MaxDist: 32}, {Family: "gnp", N: 200, MaxDist: 16}},
		},
	}
}

// TestShardSchedulingMatchesTrialParallel pins the Runner's scheduling
// policy to the determinism contract: routing big instances through the
// intra-trial sharded path (one at a time, engine sharded over the pool)
// must produce byte-identical results to plain sequential execution and to
// trial-parallel execution with sharding disabled.
func TestShardSchedulingMatchesTrialParallel(t *testing.T) {
	sequential := (&Runner{Workers: 1, Root: 5}).Run(shardPolicyScenarios()...)
	for _, r := range sequential {
		if r.Err != "" {
			t.Fatalf("trial %s/%s/n=%d failed: %s", r.Scenario, r.Family, r.N, r.Err)
		}
	}
	cases := []Runner{
		{Workers: 4, Root: 5},                 // default threshold: all trials small
		{Workers: 4, Root: 5, ShardMinN: 200}, // n=200,256,300 take the sharded path
		{Workers: 4, Root: 5, ShardMinN: 1},   // every trial takes the sharded path
		{Workers: 4, Root: 5, ShardMinN: -1},  // sharding disabled explicitly
		{Workers: 2, Root: 5, ShardMinN: 200},
		{Workers: 4, Root: 5, DenseMin: 1},               // every step on the dense bitmap kernel
		{Workers: 4, Root: 5, DenseMin: -1},              // dense kernel disabled explicitly
		{Workers: 4, Root: 5, ShardMinN: 1, DenseMin: 1}, // sharded dense kernel for every trial
		{Workers: 1, Root: 5, DenseMin: 1},               // sequential, dense forced
	}
	for _, runner := range cases {
		got := runner.Run(shardPolicyScenarios()...)
		if !reflect.DeepEqual(got, sequential) {
			t.Fatalf("Runner%+v results diverge from sequential execution", runner)
		}
	}
}

// TestShardSchedulingExecutesShardedSteps drives the sharded executor
// through the full harness stack, not just the scheduling bookkeeping: a
// star at n = 2¹⁷+1 is above DefaultShardMinN (so a Workers > 1 runner
// takes the intra-trial path with no overrides) and every Decay slot has
// ~n listeners — double the radio engine's 2¹⁶ step-activity threshold —
// so the physical steps genuinely dispatch to stepSharded over the pooled,
// Reset engine. Results must equal sequential execution exactly. This is
// the test the CI race job leans on for harness-level shard coverage; the
// small-instance tests above never cross the activity threshold.
func TestShardSchedulingExecutesShardedSteps(t *testing.T) {
	sc := func() *Scenario {
		return &Scenario{
			Name:      "shard-dispatch",
			Algo:      AlgoDecay,
			Passes:    2,
			Instances: []Instance{{Family: "star", N: 1<<17 + 1, MaxDist: 2}},
		}
	}
	want := (&Runner{Workers: 1, Root: 3}).Run(sc())
	if want[0].Err != "" {
		t.Fatalf("trial failed: %s", want[0].Err)
	}
	got := (&Runner{Workers: 4, Root: 3}).Run(sc())
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("sharded-step execution diverges from sequential: %+v vs %+v", got, want)
	}
}

// TestRunnerSingleBigTrialStaysSharded checks the pool-size bookkeeping: a
// run consisting of one big trial must not fall back to the one-worker
// sequential path (which would leave the engine unsharded), and still
// matches the sequential result.
func TestRunnerSingleBigTrialStaysSharded(t *testing.T) {
	sc := func() *Scenario {
		return &Scenario{
			Name:      "one-big",
			Algo:      AlgoDecay,
			Passes:    3,
			Instances: []Instance{{Family: "tree", N: 400, MaxDist: 40}},
		}
	}
	want := (&Runner{Workers: 1, Root: 9}).Run(sc())
	got := (&Runner{Workers: 4, Root: 9, ShardMinN: 100}).Run(sc())
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("single big trial diverges: %+v vs %+v", got, want)
	}
	if want[0].Err != "" {
		t.Fatalf("trial failed: %s", want[0].Err)
	}
}
