package harness

import (
	"context"
	"reflect"
	"strings"
	"sync"
	"testing"

	"repro/internal/progress"
)

// recordingObserver aggregates one scenario's progress events under a lock:
// per-phase start/end counts and cumulative rounds. Aggregates (not event
// order) are what concurrency must preserve — trials of one scenario race,
// but each trial's emissions are deterministic, so the multiset is too.
type recordingObserver struct {
	mu     sync.Mutex
	starts map[string]int
	ends   map[string]int
	rounds map[string]int64
}

func newRecordingObserver() *recordingObserver {
	return &recordingObserver{starts: map[string]int{}, ends: map[string]int{}, rounds: map[string]int64{}}
}

func (o *recordingObserver) PhaseStart(phase string) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.starts[phase]++
}

func (o *recordingObserver) PhaseEnd(phase string) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.ends[phase]++
}

func (o *recordingObserver) RoundBatch(phase string, rounds int64) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.rounds[phase] += rounds
}

// totals snapshots the aggregates for comparison.
func (o *recordingObserver) totals() (starts, ends map[string]int, rounds map[string]int64) {
	o.mu.Lock()
	defer o.mu.Unlock()
	starts, ends, rounds = map[string]int{}, map[string]int{}, map[string]int64{}
	for k, v := range o.starts {
		starts[k] = v
	}
	for k, v := range o.ends {
		ends[k] = v
	}
	for k, v := range o.rounds {
		rounds[k] = v
	}
	return starts, ends, rounds
}

// observerScenarios builds two scenarios with distinct workloads (and thus
// distinct phase vocabularies) whose observers can be told apart.
func observerScenarios(obsA, obsB *recordingObserver) (*Scenario, *Scenario) {
	a := &Scenario{
		Name:      "obs-a",
		Algo:      AlgoRecursive,
		Trials:    4,
		Instances: []Instance{{Family: "cycle", N: 48, MaxDist: 12}, {Family: "star", N: 40}},
	}
	b := &Scenario{
		Name:      "obs-b",
		Algo:      AlgoPoll,
		Trials:    4,
		Instances: []Instance{{Family: "grid", N: 49}},
	}
	if obsA != nil {
		a.Observer = obsA
	}
	if obsB != nil {
		b.Observer = obsB
	}
	return a, b
}

// TestConcurrentScenarioObserversDoNotInterleave: two scenarios sharing one
// pooled runner each carry their own observer; every event must reach the
// owning scenario's observer and no other. The proof compares each
// observer's aggregate event multiset from the concurrent run against a
// solo sequential run of its scenario alone — any cross-stream leak moves
// counts between the two.
func TestConcurrentScenarioObserversDoNotInterleave(t *testing.T) {
	soloA, soloB := newRecordingObserver(), newRecordingObserver()
	a1, _ := observerScenarios(soloA, nil)
	_, b1 := observerScenarios(nil, soloB)
	seq := Runner{Workers: 1, Root: 7}
	seq.Run(a1)
	seq.Run(b1)

	sharedA, sharedB := newRecordingObserver(), newRecordingObserver()
	a2, b2 := observerScenarios(sharedA, sharedB)
	runner := Runner{Workers: 4, Root: 7}
	results := runner.Run(a2, b2)
	for _, r := range results {
		if r.Err != "" {
			t.Fatalf("trial %s/%s/n=%d#%d failed: %s", r.Scenario, r.Family, r.N, r.Index, r.Err)
		}
	}

	for _, c := range []struct {
		name       string
		solo, conc *recordingObserver
	}{{"obs-a", soloA, sharedA}, {"obs-b", soloB, sharedB}} {
		ss, se, sr := c.solo.totals()
		cs, ce, cr := c.conc.totals()
		if !reflect.DeepEqual(ss, cs) || !reflect.DeepEqual(se, ce) || !reflect.DeepEqual(sr, cr) {
			t.Errorf("%s: concurrent aggregates diverge from solo run\nsolo: starts=%v ends=%v rounds=%v\nconc: starts=%v ends=%v rounds=%v",
				c.name, ss, se, sr, cs, ce, cr)
		}
		if len(cs) == 0 {
			t.Errorf("%s: observer saw no phases at all", c.name)
		}
	}

	// Observers are pure taps: results are byte-identical to an unobserved
	// run of the same scenarios.
	a3, b3 := observerScenarios(nil, nil)
	plainRunner := Runner{Workers: 4, Root: 7}
	plain := plainRunner.Run(a3, b3)
	if !reflect.DeepEqual(results, plain) {
		t.Error("attaching observers changed trial results")
	}
}

// TestObserverCancellationSettlesPhases: canceling mid-phase (triggered
// from inside a RoundBatch callback) still delivers every phase's End —
// round loops settle their meters on the way out — and the canceled trials
// report the context error.
func TestObserverCancellationSettlesPhases(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	rec := newRecordingObserver()
	var once sync.Once
	sc := &Scenario{
		Name:      "obs-cancel",
		Algo:      AlgoRecursive,
		Trials:    6,
		Instances: []Instance{{Family: "cycle", N: 64, MaxDist: 16}},
		Ctx:       ctx,
		Observer: chainObserver{rec, progress.Funcs{OnRoundBatch: func(string, int64) {
			once.Do(cancel)
		}}},
	}
	cancelRunner := Runner{Workers: 2, Root: 11}
	results := cancelRunner.Run(sc)

	canceled := 0
	for _, r := range results {
		if strings.Contains(r.Err, context.Canceled.Error()) {
			canceled++
		}
	}
	if canceled == 0 {
		t.Fatal("no trial reported the cancellation")
	}
	starts, ends, _ := rec.totals()
	if !reflect.DeepEqual(starts, ends) {
		t.Errorf("unsettled phases after cancellation: starts=%v ends=%v", starts, ends)
	}
	if len(starts) == 0 {
		t.Error("observer saw no phases before cancellation")
	}
}

// chainObserver fans one event stream out to two observers; the test uses
// it to record and to trigger cancellation from the same stream.
type chainObserver struct {
	a, b progress.Observer
}

func (c chainObserver) PhaseStart(p string) { c.a.PhaseStart(p); c.b.PhaseStart(p) }
func (c chainObserver) PhaseEnd(p string)   { c.a.PhaseEnd(p); c.b.PhaseEnd(p) }
func (c chainObserver) RoundBatch(p string, n int64) {
	c.a.RoundBatch(p, n)
	c.b.RoundBatch(p, n)
}

// TestOnTrialNotifiesEveryTrialOnce: the runner's OnTrial hook fires
// exactly once per expanded trial with the settled result, on the
// sequential, pooled, and big-instance (sharded) scheduling paths alike.
func TestOnTrialNotifiesEveryTrialOnce(t *testing.T) {
	for _, tc := range []struct {
		name      string
		workers   int
		shardMinN int
	}{
		{"sequential", 1, 0},
		{"pooled", 3, 0},
		{"pooled+sharded", 3, 45}, // grid n=49 takes the big-instance path
	} {
		t.Run(tc.name, func(t *testing.T) {
			var mu sync.Mutex
			seen := map[Trial]Result{}
			counts := map[Trial]int{}
			runner := Runner{Workers: tc.workers, Root: 5, ShardMinN: tc.shardMinN,
				OnTrial: func(res Result) {
					mu.Lock()
					defer mu.Unlock()
					seen[res.Trial] = res
					counts[res.Trial]++
				}}
			a, b := observerScenarios(nil, nil)
			results := runner.Run(a, b)
			if len(seen) != len(results) {
				t.Fatalf("OnTrial saw %d trials, run settled %d", len(seen), len(results))
			}
			for _, r := range results {
				if counts[r.Trial] != 1 {
					t.Errorf("trial %+v notified %d times", r.Trial, counts[r.Trial])
				}
				if !reflect.DeepEqual(seen[r.Trial], r) {
					t.Errorf("trial %+v: notified result differs from settled result", r.Trial)
				}
			}
		})
	}
}
