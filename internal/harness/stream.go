package harness

import (
	"context"
	"fmt"
	"runtime"
)

// This file holds the resumable trial-range execution layer used by the
// distributed sweep coordinator and its worker processes (internal/dist):
// the canonical flat trial list (ExpandAll), and a Stream that executes
// arbitrary slot sub-ranges of that list on one pooled worker context,
// handing each result to the caller the moment it settles. Range execution
// is what makes leases cheap to re-issue after a failure — any contiguous
// slot range, minus the slots already completed elsewhere, is a valid unit
// of work, and re-running a slot always reproduces the same Result because a
// trial's outcome is a pure function of its Trial value.

// TrialRef couples one expanded trial with its scenario and its global slot
// in the Runner's canonical order (scenarios in argument order, instances in
// declaration order, trial indices ascending). The slot is the coordinate
// distributed execution leases, dedups, and merges by: two processes that
// expand the same scenarios under the same root seed agree on every slot's
// Trial value.
type TrialRef struct {
	Slot     int
	Scenario *Scenario
	Trial    Trial
}

// ExpandAll lists every trial of the scenarios in the Runner's canonical
// order, each tagged with its global slot. Runner.Run executes exactly this
// list; Stream executes sub-ranges of it.
func (r *Runner) ExpandAll(scenarios ...*Scenario) []TrialRef {
	var refs []TrialRef
	for _, sc := range scenarios {
		for _, t := range Expand(sc, r.Root) {
			refs = append(refs, TrialRef{Slot: len(refs), Scenario: sc, Trial: t})
		}
	}
	return refs
}

// Stream executes slot ranges of one sweep's canonical trial list on a
// single pooled worker Context, reusing its engine, scratch, and graph cache
// across every range it runs. It is the execution core of a distributed
// sweep worker: the coordinator grants it ranges (leases) in any order, and
// each completed trial is streamed out through a callback immediately, so a
// crash between trials loses nothing that was already emitted.
//
// A Stream is single-threaded: ranges run sequentially on the owning
// goroutine. Results are byte-identical to Runner.Run's for the same slots,
// because both reduce to ExecuteCtx over identical Trial values (see the
// package doc's worker-context contract).
type Stream struct {
	refs []TrialRef
	ctx  *Context
	// minN is the instance size from which a trial's physics steps run
	// sharded across procs goroutines (0 = never). Kernel selection only —
	// sharded and sequential stepping are byte-identical.
	minN  int
	procs int
}

// Stream builds the canonical trial list for the scenarios and a pooled
// execution context honoring the Runner's DenseMin and ShardMinN policies
// (both select kernels, never bytes).
func (r *Runner) Stream(scenarios ...*Scenario) *Stream {
	ctx := newContextShared(sharedGraphs(scenarios...))
	ctx.SetDenseMin(r.DenseMin)
	return &Stream{
		refs:  r.ExpandAll(scenarios...),
		ctx:   ctx,
		minN:  r.shardMinN(),
		procs: runtime.GOMAXPROCS(0),
	}
}

// Trials returns the canonical trial list. The slice is shared — callers
// must treat it as read-only.
func (s *Stream) Trials() []TrialRef { return s.refs }

// RunRange executes the slots in [start, end), skipping any slot for which
// skip returns true (nil skips nothing), and hands each Result to emit as
// soon as the trial settles. Between trials it polls ctx and stops with
// ctx.Err() when canceled, so a canceled range never emits a partial trial —
// every emitted Result is complete and final. Emitted results are identical
// to what Runner.Run would have produced for the same slots.
func (s *Stream) RunRange(ctx context.Context, start, end int, skip func(slot int) bool, emit func(TrialRef, Result)) error {
	if start < 0 || end > len(s.refs) || start > end {
		return fmt.Errorf("harness: range [%d, %d) outside the %d-trial sweep", start, end, len(s.refs))
	}
	for i := start; i < end; i++ {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		if skip != nil && skip(i) {
			continue
		}
		ref := s.refs[i]
		// Big instances shard their physics steps across the process's
		// cores, exactly as the Runner schedules them; small ones run
		// sequentially. Both paths are proven byte-identical.
		if s.minN > 0 && ref.Trial.N >= s.minN {
			s.ctx.SetShards(s.procs)
		} else {
			s.ctx.SetShards(1)
		}
		emit(ref, ExecuteCtx(s.ctx, ref.Scenario, ref.Trial))
	}
	return nil
}
