// Package harness is the shared trial-runner subsystem behind the
// experiment tables (cmd/experiments), the benchmarks, and the radiobfs
// sweep CLI.
//
// The paper's claims — Theorem 4.1's sub-polynomial energy, the §5 diameter
// and lower-bound trade-offs — are statements about distributions over
// random seeds and graph families, so every quantitative result in this
// repository is some fold over many independent simulation trials. The
// harness makes that fold declarative:
//
//   - a Scenario names a workload: a list of graph Instances (family ×
//     size × search radius), a trial count per instance, a cost model, and
//     an algorithm — either a registered repro.Algorithm resolved by name
//     (Recursive-BFS, the Decay baseline, the §5 diameter approximations,
//     gradient verification, the §1 Poll/Alarm applications, plus anything
//     external packages Register) or a custom TrialFunc;
//   - a Runner expands scenarios into independent trials and executes them
//     on a worker pool. Every trial builds its own graph and network from a
//     seed derived with rng.Derive from (root, scenario, family, n,
//     maxDist, trial index), so results are bit-identical regardless of
//     worker count or scheduling. Small instances run trial-parallel (one
//     trial per worker); instances at or above Runner.ShardMinN instead run
//     one at a time with the radio engine's physics steps sharded across
//     the whole pool (radio.StepParallel — itself byte-identical to
//     sequential stepping), so a single million-vertex trial saturates the
//     machine too;
//   - Aggregate folds per-trial Metrics into per-cell summaries
//     (mean/stddev/min/quantiles/max via the streaming accumulators in
//     internal/stats) and writes text tables, CSV, or JSON.
//
// Custom TrialFuncs may capture experiment-local state through closures;
// when a scenario has more than one trial, such state must be written to
// per-trial slots (indexed by Trial.Index) or be otherwise race-free,
// because trials of one scenario run concurrently.
//
// # Worker contexts
//
// Every worker owns one Context — a pool of trial-invariant heavy state: a
// radio engine (reset between trials), Decay scratch buffers, and a cache
// of deterministic workload graphs. Built-in workloads draw from it
// automatically; custom workloads opt in by setting Scenario.RunCtx instead
// of Scenario.Run. The contract for RunCtx implementations:
//
//   - anything obtained from the Context (engine, scratch, cached graphs)
//     is valid only until the trial function returns — never retain it in
//     results or closures;
//   - cached graphs are shared and must be treated as immutable;
//   - all randomness must still derive from Trial.Seed, so that a trial's
//     outcome is a pure function of the Trial value — this is what keeps
//     aggregated output byte-identical at any worker count, pooled or not.
package harness

import (
	"context"
	"math"

	"repro"
	"repro/internal/core"
	"repro/internal/radio"
	"repro/internal/rng"
)

// Algo names a registered repro.Algorithm (or one of its aliases); the empty
// string selects Recursive-BFS. The harness has no algorithm knowledge of
// its own: any entry visible through repro.Get — including ones external
// packages Register — is a valid selector.
type Algo string

// Selectors for the built-in registry entries, kept as constants so
// scenarios are typo-checked at compile time.
const (
	// AlgoRecursive runs the paper's Recursive-BFS (§4, Theorem 4.1) and
	// verifies the labels against a reference BFS.
	AlgoRecursive Algo = "recursive"
	// AlgoDecay runs the everyone-awake Decay BFS baseline on the physical
	// radio channel (Θ(D log² n) energy).
	AlgoDecay Algo = "decay"
	// AlgoDiam2 runs the 2-approximate diameter of Theorem 5.3.
	AlgoDiam2 Algo = "diam2"
	// AlgoDiam32 runs the nearly-3/2-approximate diameter of Theorem 5.4.
	AlgoDiam32 Algo = "diam32"
	// AlgoVerify runs Recursive-BFS and then the O(1)-energy gradient
	// verification sweep over the resulting labels.
	AlgoVerify Algo = "verify"
	// AlgoPoll runs the §1 duty-cycled dissemination over reference BFS
	// labels with polling period Scenario.Period.
	AlgoPoll Algo = "poll"
	// AlgoAlarm runs the full §1 alarm round trip (gradient ascent to the
	// source, then dissemination) from the last vertex.
	AlgoAlarm Algo = "alarm"
)

// Instance is one workload graph: a named family at a given size, searched
// to MaxDist hops (0 means n). For scenarios with a custom Run the fields
// are labels carried into the Trial; built-in algorithms resolve Family via
// graph.Named.
type Instance struct {
	Family  string `json:"family"`
	N       int    `json:"n"`
	MaxDist int    `json:"maxDist,omitempty"`
}

// Cross builds the instance cross product families × sizes. maxDist may be
// nil, in which case every instance searches to its full size.
func Cross(families []string, sizes []int, maxDist func(family string, n int) int) []Instance {
	out := make([]Instance, 0, len(families)*len(sizes))
	for _, f := range families {
		for _, n := range sizes {
			md := 0
			if maxDist != nil {
				md = maxDist(f, n)
			}
			out = append(out, Instance{Family: f, N: n, MaxDist: md})
		}
	}
	return out
}

// Metrics is the flat numeric outcome of one trial. Keys are metric names;
// a trial may omit a key (the Aggregator then averages over the trials that
// reported it — useful for conditional measurements such as
// energy-when-heard).
type Metrics map[string]float64

// Trial identifies one unit of work: an instance of a scenario plus a trial
// index and the derived seeds that make it reproducible in isolation.
type Trial struct {
	Scenario string `json:"scenario"`
	Instance
	Index int    `json:"trial"`
	Seed  uint64 `json:"seed"`
	// GraphSeed is the seed registry workloads build their instance graph
	// from. By default it derives from Seed (independent topology per
	// trial); under Scenario.PinGraphs it derives from the root seed alone,
	// so every trial — across scenarios of the same run — samples the same
	// seeded-family graph and only the protocol randomness varies.
	GraphSeed uint64 `json:"graphSeed"`
}

// TrialFunc is a custom workload: it receives a fully-identified Trial and
// returns its metrics. It must derive all randomness from Trial.Seed.
type TrialFunc func(t Trial) (Metrics, error)

// TrialCtxFunc is the context-aware custom workload signature: it
// additionally receives the executing worker's Context pool. See the
// package documentation for the reuse contract.
type TrialCtxFunc func(ctx *Context, t Trial) (Metrics, error)

// Scenario declares a workload for the Runner. Zero values mean: one trial
// per instance, unit cost model, polling period 4, the paper's automatic
// Recursive-BFS parameters.
type Scenario struct {
	// Name labels the scenario in results and seeds its trials; two
	// scenarios with different names draw independent randomness even on
	// identical instances.
	Name string
	// Instances lists the workload graphs (see Cross for grids).
	Instances []Instance
	// Trials is the number of independently-seeded repetitions per
	// instance (default 1).
	Trials int
	// Algo names the registered repro.Algorithm to run ("" = Recursive-BFS);
	// ignored when Run is set.
	Algo Algo
	// Cost selects the cost model for registry workloads.
	Cost repro.CostModel
	// Period is the polling period for AlgoPoll/AlgoAlarm (default 4).
	Period int
	// Passes is the Decay repetition count for AlgoDecay (default ⌈log₂ n⌉).
	Passes int
	// PinGraphs derives every trial's GraphSeed from the root seed instead
	// of the trial seed: seeded-family graphs then depend only on (root,
	// family, n), so scenarios of one run form apples-to-apples pairings on
	// identical topologies and repeated trials sample only the protocol's
	// randomness. Deterministic families are unaffected.
	PinGraphs bool
	// Params overrides the Recursive-BFS parameters for registry workloads.
	Params *core.Params
	// Ctx, when non-nil, cancels the scenario: trials poll it at phase
	// boundaries and stop within one phase, reporting the context error.
	Ctx context.Context
	// Observer, when non-nil, streams progress events from every trial's
	// round loops. Trials of one scenario run concurrently, so it must be
	// safe for concurrent use.
	Observer repro.Observer
	// Run, when set, replaces the registry workload entirely.
	Run TrialFunc
	// RunCtx is the context-aware form of Run: it receives the worker's
	// Context pool. When both are set, RunCtx wins.
	RunCtx TrialCtxFunc
}

// TrialCount returns the effective trials-per-instance (minimum 1).
func (sc *Scenario) TrialCount() int {
	if sc.Trials < 1 {
		return 1
	}
	return sc.Trials
}

// strTag hashes a string into an rng.Derive tag (FNV-1a, 64-bit).
func strTag(s string) uint64 {
	h := uint64(0xcbf29ce484222325)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 0x100000001b3
	}
	return h
}

// TrialFor builds the trial for one (instance, index) pair of a scenario
// under the given root seed. The seed depends only on the scenario name,
// the instance coordinates, and the index — never on list positions or
// worker scheduling — so adding instances or trials leaves existing seeds
// unchanged.
func TrialFor(sc *Scenario, inst Instance, index int, root uint64) Trial {
	if inst.MaxDist <= 0 {
		inst.MaxDist = inst.N
	}
	seed := rng.Derive(root,
		strTag(sc.Name), strTag(inst.Family),
		uint64(inst.N), uint64(inst.MaxDist), uint64(index))
	gseed := rng.Derive(seed, 0x6ea9)
	if sc.PinGraphs {
		gseed = rng.Derive(root, 0x6ea9)
	}
	return Trial{Scenario: sc.Name, Instance: inst, Index: index, Seed: seed, GraphSeed: gseed}
}

// Expand lists every trial of a scenario in canonical order (instances in
// declaration order, trial indices ascending).
func Expand(sc *Scenario, root uint64) []Trial {
	out := make([]Trial, 0, len(sc.Instances)*sc.TrialCount())
	for _, inst := range sc.Instances {
		for i := 0; i < sc.TrialCount(); i++ {
			out = append(out, TrialFor(sc, inst, i, root))
		}
	}
	return out
}

// Result is the outcome of one executed trial.
type Result struct {
	Trial
	Metrics Metrics `json:"metrics,omitempty"`
	Err     string  `json:"err,omitempty"`
}

// Execute runs a single trial synchronously on a fresh Context. It never
// panics on workload errors: failures are reported through Result.Err so
// one bad trial cannot sink a sweep.
func Execute(sc *Scenario, t Trial) Result {
	return ExecuteCtx(NewContext(), sc, t)
}

// ExecuteCtx runs a single trial synchronously against the given worker
// Context, reusing its pooled engine, scratch and graph cache. Results are
// identical to Execute's for any context history.
func ExecuteCtx(ctx *Context, sc *Scenario, t Trial) Result {
	var m Metrics
	var err error
	switch {
	case sc.RunCtx != nil:
		m, err = sc.RunCtx(ctx, t)
	case sc.Run != nil:
		m, err = sc.Run(t)
	default:
		m, err = runBuiltin(ctx, sc, t)
	}
	res := Result{Trial: t, Metrics: m}
	if err != nil {
		res.Err = err.Error()
	}
	return res
}

// BoolMetric encodes a predicate as a 0/1 metric so aggregation yields
// rates (mean = success fraction, min = "held on every trial").
func BoolMetric(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// runBuiltin executes one registry workload: it resolves Scenario.Algo
// through repro.Get, builds the trial's network over pooled worker state,
// runs the algorithm with the scenario's context and observer, asks the
// entry for its ground-truth checks, and flattens the structured Result into
// Metrics. The harness itself carries no per-algorithm knowledge — a newly
// registered repro.Algorithm is immediately sweepable by name.
//
// Every trial derives its graph and network from the trial seed, so trials
// are independent samples of (graph, protocol randomness); heavy state
// (graphs of deterministic families, the radio engine, Decay scratch) is
// drawn from the worker's Context pool.
func runBuiltin(ctx *Context, sc *Scenario, t Trial) (Metrics, error) {
	name := string(sc.Algo)
	if name == "" {
		name = string(AlgoRecursive)
	}
	alg, err := repro.Get(name)
	if err != nil {
		return nil, err
	}
	gseed := t.GraphSeed
	if gseed == 0 {
		// Hand-built Trial (not from TrialFor): fall back to the historical
		// per-trial derivation.
		gseed = rng.Derive(t.Seed, 0x6ea9)
	}
	g, err := ctx.Graph(t.Family, t.N, gseed)
	if err != nil {
		return nil, err
	}
	// The engine is handed over lazily: unit-cost trials of engine-free
	// algorithms never pay the pooled engine's O(n) reset.
	opts := []repro.Option{
		repro.WithEngineProvider(func() *radio.Engine { return ctx.Engine(g) }),
		repro.WithDecayScratch(ctx.DecayScratch()),
	}
	if sc.Cost == repro.CostPhysical {
		opts = append(opts, repro.WithCostModel(repro.CostPhysical))
	}
	if sc.Params != nil {
		opts = append(opts, repro.WithParams(*sc.Params))
	}
	if sc.Passes > 0 {
		opts = append(opts, repro.WithDecayPasses(sc.Passes))
	}
	nw, err := repro.NewNetworkE(g, t.Seed, opts...)
	if err != nil {
		return nil, err
	}
	runCtx := sc.Ctx
	if runCtx == nil {
		runCtx = context.Background()
	}
	req := repro.Request{
		MaxDist:  t.MaxDist,
		Period:   sc.period(),
		Origin:   int32(g.N() - 1),
		Observer: sc.Observer,
	}
	res, err := alg.Run(runCtx, nw, req)
	if err != nil {
		return nil, err
	}
	alg.Check(nw, req, res)

	m := make(Metrics, len(res.Values)+6)
	for k, v := range res.Values {
		m[k] = v
	}
	// Cost metrics follow the meters the run actually moved: LB-unit meters
	// for anything that ran on the Net abstraction, physical-slot meters for
	// anything that touched the radio engine (CostPhysical runs and the
	// Decay baseline in either cost model).
	if res.Cost.LBTime > 0 {
		m["maxLB"] = float64(res.Cost.MaxLBEnergy)
		m["totalLB"] = float64(res.Cost.TotalLBEnergy)
		m["timeLB"] = float64(res.Cost.LBTime)
	}
	if res.Cost.PhysRounds > 0 {
		m["physMax"] = float64(res.Cost.MaxPhysEnergy)
		m["physRounds"] = float64(res.Cost.PhysRounds)
		m["msgViolations"] = float64(res.Cost.MsgViolations)
	}
	return m, nil
}

func (sc *Scenario) period() int {
	if sc.Period < 1 {
		return 4
	}
	return sc.Period
}

// Get returns a metric by name from a result, or NaN when absent (which the
// Aggregator and formatters treat as "not reported").
func (r *Result) Get(name string) float64 {
	if v, ok := r.Metrics[name]; ok {
		return v
	}
	return math.NaN()
}
