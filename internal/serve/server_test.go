package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/spec"
)

const tinySpec = `{
  "name": "srv",
  "seed": 9,
  "scenarios": [
    {"name": "srv-recursive", "algorithm": "recursive", "trials": 2,
     "instances": [{"family": "grid", "n": 16}]},
    {"name": "srv-poll", "algorithm": "poll", "params": {"period": 3},
     "instances": [{"family": "cycle", "n": 12}]}
  ]
}`

// newTestServer builds a Server over a temp store plus an httptest front
// end; mutate lets tests tighten admission knobs before startup.
func newTestServer(t *testing.T, mutate func(*Config)) (*Server, *httptest.Server) {
	t.Helper()
	cfg := Config{Store: filepath.Join(t.TempDir(), "store"), Workers: 2, Heartbeat: time.Hour}
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

// submit POSTs a spec document and decodes the response.
func submit(t *testing.T, ts *httptest.Server, doc, query string, hdr map[string]string) (int, JobStatus, string) {
	t.Helper()
	req, err := http.NewRequest("POST", ts.URL+"/v1/jobs"+query, strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var st JobStatus
	if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusAccepted {
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatalf("decode %s: %v", body, err)
		}
	}
	return resp.StatusCode, st, string(body)
}

// getStatus fetches one job's status.
func getStatus(t *testing.T, ts *httptest.Server, id string) JobStatus {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// waitTerminal polls a job until it settles.
func waitTerminal(t *testing.T, ts *httptest.Server, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		st := getStatus(t, ts, id)
		if st.State.Terminal() {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still %s after 30s", id, st.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

type sseEvent struct {
	id    int
	typ   string
	event Event
}

// readSSE consumes a job's event stream (optionally resuming after lastID)
// until the log closes, returning every event frame.
func readSSE(t *testing.T, ts *httptest.Server, id string, lastID int) []sseEvent {
	t.Helper()
	req, err := http.NewRequest("GET", ts.URL+"/v1/jobs/"+id+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	if lastID > 0 {
		req.Header.Set("Last-Event-ID", fmt.Sprint(lastID))
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events content-type %q", ct)
	}
	var out []sseEvent
	var cur sseEvent
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if cur.typ != "" {
				out = append(out, cur)
			}
			cur = sseEvent{}
		case strings.HasPrefix(line, "id: "):
			fmt.Sscanf(line, "id: %d", &cur.id)
		case strings.HasPrefix(line, "event: "):
			cur.typ = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &cur.event); err != nil {
				t.Fatalf("bad data line %q: %v", line, err)
			}
		}
	}
	return out
}

func getStats(t *testing.T, ts *httptest.Server) Stats {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// TestServeEndToEnd is the subsystem's acceptance test in miniature:
// submit → SSE narration → artifacts byte-identical to a direct run →
// resubmission is a cache hit without re-execution.
func TestServeEndToEnd(t *testing.T) {
	_, ts := newTestServer(t, nil)

	// Direct execution through the exact code path `radiobfs run` uses.
	f := parseSpec(t, tinySpec)
	out, err := spec.ExecuteFile(f, 3, 0, spec.Options{})
	if err != nil {
		t.Fatal(err)
	}
	directDir, err := out.WriteArtifacts(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}

	code, st, body := submit(t, ts, tinySpec, "", nil)
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d: %s", code, body)
	}
	if st.CacheHit || st.State.Terminal() {
		t.Fatalf("fresh submit reported %+v", st)
	}
	if st.Trials != 3 {
		t.Fatalf("expanded %d trials, want 3", st.Trials)
	}

	events := readSSE(t, ts, st.ID, 0)
	final := waitTerminal(t, ts, st.ID)
	if final.State != StateDone || final.Errors != 0 || final.Done != 3 {
		t.Fatalf("final status %+v", final)
	}
	if len(final.Artifacts) != 4 {
		t.Fatalf("artifacts %v", final.Artifacts)
	}

	// Event stream: contiguous ids, every event tagged with the job,
	// queued → started → 3 trials → complete(done).
	counts := map[string]int{}
	for i, e := range events {
		if e.id != i+1 {
			t.Fatalf("event %d has id %d", i, e.id)
		}
		if e.event.Job != st.ID {
			t.Fatalf("event %+v misfiled (job %s)", e, st.ID)
		}
		counts[e.typ]++
	}
	if counts["queued"] != 1 || counts["started"] != 1 || counts["trial"] != 3 || counts["complete"] != 1 {
		t.Fatalf("event counts %v", counts)
	}
	if last := events[len(events)-1]; last.typ != "complete" || last.event.State != string(StateDone) {
		t.Fatalf("last event %+v", last)
	}

	// Artifacts: byte-identical to the direct run.
	for i, name := range ArtifactNames() {
		want, err := os.ReadFile(filepath.Join(directDir, name))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Get(ts.URL + final.Artifacts[i])
		if err != nil {
			t.Fatal(err)
		}
		got, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s = %d", final.Artifacts[i], resp.StatusCode)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s: served bytes differ from `radiobfs run` bytes", name)
		}
	}

	// Resubmit: cache hit, no new execution, same key, fresh job id.
	code, hit, body := submit(t, ts, tinySpec, "", nil)
	if code != http.StatusOK {
		t.Fatalf("resubmit = %d: %s", code, body)
	}
	if !hit.CacheHit || hit.State != StateDone || hit.Key != st.Key || hit.ID == st.ID {
		t.Fatalf("resubmit status %+v (first %+v)", hit, st)
	}
	if len(hit.Artifacts) != 4 {
		t.Fatalf("cache-hit artifacts %v", hit.Artifacts)
	}
	// A cache-hit job's event stream replays a single complete event.
	hitEvents := readSSE(t, ts, hit.ID, 0)
	if len(hitEvents) != 1 || hitEvents[0].typ != "complete" || !hitEvents[0].event.CacheHit {
		t.Fatalf("cache-hit events %+v", hitEvents)
	}

	// A different seed is a different key and a real execution.
	code, reseeded, body := submit(t, ts, tinySpec, "?seed=77", nil)
	if code != http.StatusAccepted {
		t.Fatalf("reseeded submit = %d: %s", code, body)
	}
	if reseeded.Key == st.Key || reseeded.RootSeed != 77 {
		t.Fatalf("reseeded status %+v", reseeded)
	}
	waitTerminal(t, ts, reseeded.ID)

	stats := getStats(t, ts)
	if stats.Executions != 2 || stats.CacheHits != 1 {
		t.Fatalf("stats %+v; want 2 executions, 1 cache hit", stats)
	}
}

// TestSingleFlightCoalescing: concurrent duplicate submissions attach to
// the one running job, and exactly one execution happens.
func TestSingleFlightCoalescing(t *testing.T) {
	started := make(chan *Job, 1)
	release := make(chan struct{})
	s, ts := newTestServer(t, nil)
	s.beforeRun = func(j *Job) {
		started <- j
		<-release
	}
	code, first, body := submit(t, ts, tinySpec, "", nil)
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d: %s", code, body)
	}
	<-started // the job is now running and holding the gate

	code, dup, body := submit(t, ts, tinySpec, "", map[string]string{"X-Client-ID": "other-client"})
	if code != http.StatusOK {
		t.Fatalf("duplicate submit = %d: %s", code, body)
	}
	if !dup.Coalesced || dup.ID != first.ID || dup.CacheHit {
		t.Fatalf("duplicate did not coalesce: %+v (first %+v)", dup, first)
	}
	close(release)
	final := waitTerminal(t, ts, first.ID)
	if final.State != StateDone {
		t.Fatalf("final %+v", final)
	}
	stats := getStats(t, ts)
	if stats.Executions != 1 || stats.Coalesced != 1 {
		t.Fatalf("stats %+v; want exactly one execution and one coalesced attach", stats)
	}
}

// TestAdmissionControl: a full queue and a per-client cap both answer 429
// with Retry-After; a different client still gets in.
func TestAdmissionControl(t *testing.T) {
	started := make(chan *Job, 4)
	release := make(chan struct{})
	s, ts := newTestServer(t, func(c *Config) {
		c.Execs = 1
		c.QueueCap = 1
		c.MaxPerClient = 2
	})
	s.beforeRun = func(j *Job) {
		started <- j
		<-release
	}
	defer close(release)

	specN := func(seed int) string {
		return strings.Replace(tinySpec, `"seed": 9`, fmt.Sprintf(`"seed": %d`, seed), 1)
	}
	hdrA := map[string]string{"X-Client-ID": "client-a"}

	if code, _, body := submit(t, ts, specN(11), "", hdrA); code != http.StatusAccepted {
		t.Fatalf("job A = %d: %s", code, body)
	}
	<-started // A is running; the queue is empty again
	if code, _, body := submit(t, ts, specN(12), "", hdrA); code != http.StatusAccepted {
		t.Fatalf("job B = %d: %s", code, body)
	}
	// Client A is now at its cap (one running, one queued).
	req, _ := http.NewRequest("POST", ts.URL+"/v1/jobs", strings.NewReader(specN(13)))
	req.Header.Set("X-Client-ID", "client-a")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-cap submit = %d: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	if !strings.Contains(string(body), "client") {
		t.Errorf("unhelpful 429 body: %s", body)
	}

	// Another client hits the queue bound instead: B occupies the one slot.
	code, _, body2 := submit(t, ts, specN(14), "", map[string]string{"X-Client-ID": "client-b"})
	if code != http.StatusTooManyRequests {
		t.Fatalf("queue-full submit = %d: %s", code, body2)
	}
	if !strings.Contains(body2, "queue") {
		t.Errorf("unhelpful queue-full body: %s", body2)
	}
	if st := getStats(t, ts); st.Rejected != 2 {
		t.Fatalf("stats %+v; want 2 rejections", st)
	}
}

// TestCancel: canceling a queued job settles it instantly; canceling a
// running job settles at the next boundary; neither writes to the cache.
func TestCancel(t *testing.T) {
	started := make(chan *Job, 2)
	release := make(chan struct{})
	s, ts := newTestServer(t, func(c *Config) { c.Execs = 1 })
	s.beforeRun = func(j *Job) {
		started <- j
		select {
		case <-release:
		case <-j.ctx.Done():
		}
	}
	defer close(release)

	code, running, body := submit(t, ts, tinySpec, "", nil)
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d: %s", code, body)
	}
	<-started
	code, queued, body := submit(t, ts, tinySpec, "?seed=21", nil)
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d: %s", code, body)
	}

	// Cancel the queued job: immediate terminal state.
	req, _ := http.NewRequest("DELETE", ts.URL+"/v1/jobs/"+queued.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel queued = %d", resp.StatusCode)
	}
	if st := getStatus(t, ts, queued.ID); st.State != StateCanceled {
		t.Fatalf("queued job state %s after cancel", st.State)
	}

	// Cancel the running job while it holds the gate.
	req, _ = http.NewRequest("DELETE", ts.URL+"/v1/jobs/"+running.ID, nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel running = %d", resp.StatusCode)
	}
	final := waitTerminal(t, ts, running.ID)
	if final.State != StateCanceled {
		t.Fatalf("running job settled %s", final.State)
	}
	events := readSSE(t, ts, running.ID, 0)
	if last := events[len(events)-1]; last.typ != "complete" || last.event.State != string(StateCanceled) {
		t.Fatalf("last event %+v", last)
	}
	// Nothing reached the cache; the artifact endpoint 404s.
	resp, err = http.Get(ts.URL + "/v1/artifacts/" + running.Key + "/" + spec.ManifestArtifact)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("canceled job's artifacts served: %d", resp.StatusCode)
	}
	// DELETE on a terminal job is an idempotent no-op.
	req, _ = http.NewRequest("DELETE", ts.URL+"/v1/jobs/"+running.ID, nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("re-cancel = %d", resp.StatusCode)
	}
}

// TestSSEResume: a reconnect with Last-Event-ID replays only later events.
func TestSSEResume(t *testing.T) {
	_, ts := newTestServer(t, nil)
	code, st, body := submit(t, ts, tinySpec, "", nil)
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d: %s", code, body)
	}
	waitTerminal(t, ts, st.ID)
	all := readSSE(t, ts, st.ID, 0)
	if len(all) < 3 {
		t.Fatalf("only %d events", len(all))
	}
	cut := all[1].id
	resumed := readSSE(t, ts, st.ID, cut)
	if len(resumed) != len(all)-2 {
		t.Fatalf("resume after id %d replayed %d events, want %d", cut, len(resumed), len(all)-2)
	}
	for i, e := range resumed {
		if e.id != all[i+2].id || e.typ != all[i+2].typ {
			t.Fatalf("resumed[%d] = %+v, want %+v", i, e, all[i+2])
		}
	}
}

// TestSSEHeartbeat: an idle stream carries comment heartbeats.
func TestSSEHeartbeat(t *testing.T) {
	started := make(chan *Job, 1)
	release := make(chan struct{})
	s, ts := newTestServer(t, func(c *Config) { c.Heartbeat = 10 * time.Millisecond })
	s.beforeRun = func(j *Job) {
		started <- j
		<-release
	}
	code, st, body := submit(t, ts, tinySpec, "", nil)
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d: %s", code, body)
	}
	<-started
	resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	br := bufio.NewReader(resp.Body)
	sawHeartbeat := false
	deadline := time.Now().Add(5 * time.Second)
	for !sawHeartbeat && time.Now().Before(deadline) {
		line, err := br.ReadString('\n')
		if err != nil {
			t.Fatalf("stream ended early: %v", err)
		}
		if strings.HasPrefix(line, ":") {
			sawHeartbeat = true
		}
	}
	if !sawHeartbeat {
		t.Fatal("no heartbeat on an idle stream")
	}
	close(release)
	waitTerminal(t, ts, st.ID)
}

// TestSubmitRejections: malformed JSON, unknown algorithms (with the
// registry's actionable message), and custom workloads are all 400s.
func TestSubmitRejections(t *testing.T) {
	_, ts := newTestServer(t, nil)
	cases := []struct {
		name, doc, want string
	}{
		{"malformed", `{"name": "x", `, "spec"},
		{"unknown-field", `{"name": "x", "bogus": 1, "scenarios": []}`, "bogus"},
		{"unknown-algo", `{"name": "x", "scenarios": [{"name": "s", "algorithm": "nope", "instances": [{"family": "grid", "n": 4}]}]}`, "unknown algorithm"},
		{"custom-workload", `{"name": "x", "scenarios": [{"name": "s", "custom": "e10", "instances": [{"family": "grid", "n": 4}]}]}`, "custom"},
		{"bad-family", `{"name": "x", "scenarios": [{"name": "s", "algorithm": "recursive", "instances": [{"family": "moebius", "n": 4}]}]}`, "unknown graph family"},
	}
	for _, c := range cases {
		code, _, body := submit(t, ts, c.doc, "", nil)
		if code != http.StatusBadRequest {
			t.Errorf("%s: code %d (%s)", c.name, code, body)
			continue
		}
		if !strings.Contains(body, c.want) {
			t.Errorf("%s: body %q lacks %q", c.name, body, c.want)
		}
	}
	// Unknown job / artifact routes 404 cleanly.
	for _, path := range []string{"/v1/jobs/zzz", "/v1/jobs/zzz/events", "/v1/artifacts/" + strings.Repeat("a", 64) + "/manifest.json"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s = %d, want 404", path, resp.StatusCode)
		}
	}
	// Traversal-shaped artifact fetches never succeed.
	resp, err := http.Get(ts.URL + "/v1/artifacts/..%2f..%2fetc/passwd")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Error("traversal-shaped artifact path served")
	}
}

// TestServerCloseSettlesJobs: Close cancels queued and running jobs and
// returns once the executors settle.
func TestServerCloseSettlesJobs(t *testing.T) {
	started := make(chan *Job, 1)
	release := make(chan struct{})
	s, ts := newTestServer(t, func(c *Config) { c.Execs = 1 })
	s.beforeRun = func(j *Job) {
		started <- j
		<-release
	}
	code, running, body := submit(t, ts, tinySpec, "", nil)
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d: %s", code, body)
	}
	<-started
	code, queued, body := submit(t, ts, tinySpec, "?seed=31", nil)
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d: %s", code, body)
	}
	close(release)
	s.Close() // cancels base context; executors drain
	for _, id := range []string{running.ID, queued.ID} {
		j := s.jobByID(id)
		if j == nil {
			t.Fatalf("job %s pruned during Close", id)
		}
		state, _, _, _, _, _ := j.snapshot()
		if !state.Terminal() {
			t.Errorf("job %s left %s after Close", id, state)
		}
	}
	s.Close() // idempotent
}
