package serve

import (
	"fmt"
	"sync"
	"testing"
)

// TestLogAppendAfterResume pins the cursor contract: After(0) replays
// everything retained, After(id) only what follows, and IDs are contiguous
// from 1.
func TestLogAppendAfterResume(t *testing.T) {
	l := NewLog(16)
	for i := 0; i < 5; i++ {
		if id := l.Append(Event{Type: "trial", Job: "j1"}); id != i+1 {
			t.Fatalf("append %d assigned id %d", i, id)
		}
	}
	batch, next, _, open := l.After(0)
	if len(batch) != 5 || next != 5 || !open {
		t.Fatalf("After(0) = %d events, next %d, open %v", len(batch), next, open)
	}
	batch, next, _, _ = l.After(3)
	if len(batch) != 2 || batch[0].ID != 4 || next != 5 {
		t.Fatalf("After(3) = %+v next %d", batch, next)
	}
	batch, next, wait, open := l.After(5)
	if len(batch) != 0 || next != 5 || wait == nil || !open {
		t.Fatalf("After(5) should be empty+waiting, got %d events, open %v", len(batch), open)
	}
	// An append must wake the waiter.
	done := make(chan struct{})
	go func() {
		<-wait
		close(done)
	}()
	l.Append(Event{Type: "trial"})
	<-done
}

// TestLogRingOverflow: when more than cap events accumulate, the oldest
// fall off and a stale cursor resumes from the oldest retained event.
func TestLogRingOverflow(t *testing.T) {
	l := NewLog(4)
	for i := 0; i < 10; i++ {
		l.Append(Event{Type: "trial", Trial: fmt.Sprintf("t%d", i)})
	}
	batch, next, _, _ := l.After(0)
	if len(batch) != 4 {
		t.Fatalf("retained %d events, want 4", len(batch))
	}
	if batch[0].ID != 7 || batch[3].ID != 10 || next != 10 {
		t.Fatalf("retained window [%d, %d], next %d; want [7, 10], 10", batch[0].ID, batch[3].ID, next)
	}
	// A cursor inside the window resumes exactly.
	batch, _, _, _ = l.After(8)
	if len(batch) != 2 || batch[0].ID != 9 {
		t.Fatalf("After(8) = %+v", batch)
	}
}

// TestLogClose: closing wakes waiters, ends the stream after the drain, and
// makes further appends no-ops.
func TestLogClose(t *testing.T) {
	l := NewLog(8)
	l.Append(Event{Type: "queued"})
	_, _, wait, open := l.After(1)
	if !open {
		t.Fatal("log closed prematurely")
	}
	l.Close()
	<-wait // Close must wake waiters
	batch, _, _, open := l.After(1)
	if open || len(batch) != 0 {
		t.Fatalf("after Close: open=%v batch=%d", open, len(batch))
	}
	if id := l.Append(Event{Type: "trial"}); id != 0 {
		t.Fatalf("append on closed log returned id %d", id)
	}
	l.Close() // idempotent
}

// TestLogConcurrentAppendersAndReaders hammers the log from both sides
// under -race: every reader observes strictly increasing contiguous IDs.
func TestLogConcurrentAppendersAndReaders(t *testing.T) {
	l := NewLog(1 << 12)
	const writers, events = 4, 200
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < events; i++ {
				l.Append(Event{Type: "trial"})
			}
		}()
	}
	var readers sync.WaitGroup
	for rdr := 0; rdr < 3; rdr++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			cursor, last := 0, 0
			for {
				batch, next, wait, open := l.After(cursor)
				for _, e := range batch {
					if e.ID != last+1 {
						t.Errorf("reader saw id %d after %d", e.ID, last)
						return
					}
					last = e.ID
				}
				cursor = next
				if !open {
					return
				}
				<-wait
			}
		}()
	}
	wg.Wait()
	l.Close()
	readers.Wait()
	if batch, _, _, _ := l.After(0); len(batch) != writers*events {
		t.Fatalf("retained %d events, want %d", len(batch), writers*events)
	}
}

// TestJobObserverCoalescesRounds: round batches below the threshold emit
// nothing; crossing it emits a cumulative rounds event.
func TestJobObserverCoalescesRounds(t *testing.T) {
	l := NewLog(64)
	o := newJobObserver(l, "j1", 100)
	for i := 0; i < 9; i++ {
		o.RoundBatch("phase", 10)
	}
	if batch, _, _, _ := l.After(0); len(batch) != 0 {
		t.Fatalf("sub-threshold rounds emitted %d events", len(batch))
	}
	o.RoundBatch("phase", 10) // cumulative 100 crosses the threshold
	batch, _, _, _ := l.After(0)
	if len(batch) != 1 || batch[0].Type != "rounds" || batch[0].Rounds != 100 {
		t.Fatalf("threshold crossing emitted %+v", batch)
	}
	o.RoundBatch("phase", 250) // crosses again in one batch
	batch, _, _, _ = l.After(1)
	if len(batch) != 1 || batch[0].Rounds != 350 {
		t.Fatalf("second crossing emitted %+v", batch)
	}
	// Phase events pass through untouched.
	o.PhaseStart("bfs")
	o.PhaseEnd("bfs")
	batch, _, _, _ = l.After(2)
	if len(batch) != 2 || batch[0].State != "start" || batch[1].State != "end" || batch[0].Phase != "bfs" {
		t.Fatalf("phase events = %+v", batch)
	}
}
