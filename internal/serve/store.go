package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"

	"repro/internal/spec"
)

// CacheKey derives the content address of a job's artifacts: hex SHA-256
// over the code version, the spec's canonical hash, the effective root
// seed, and the quick flag — exactly the inputs the artifact bytes are a
// pure function of. Two processes built from the same code derive the same
// key for the same submission, which is what lets a cache survive server
// restarts; a new build derives fresh keys, which is what keeps stale
// results from outliving the code that produced them.
func CacheKey(f *spec.File, root uint64, quick bool) (string, error) {
	ch, err := f.CanonicalHash()
	if err != nil {
		return "", err
	}
	h := sha256.New()
	fmt.Fprintf(h, "radiobfs-job-v1\nversion=%s\nspec=%s\nseed=%d\nquick=%t\n",
		spec.CodeVersion(), ch, root, quick)
	return hex.EncodeToString(h.Sum(nil)), nil
}

// Store is the content-addressed artifact cache: one directory per key
// holding the four artifact files `radiobfs run` writes (trials.jsonl,
// aggregate.csv, aggregate.md, manifest.json). Entries are committed by
// staging a complete directory and renaming it into place, so a key is
// either fully present or absent — a crashed commit leaves only staging
// litter under tmp/, never a half-filled cache entry.
type Store struct {
	root  string
	stage atomic.Int64
}

// ArtifactNames lists the files every cache entry holds, in the order
// clients fetch them.
func ArtifactNames() []string {
	return []string{spec.TrialsArtifact, spec.CSVArtifact, spec.MarkdownArtifact, spec.ManifestArtifact}
}

// OpenStore opens (creating if needed) the store rooted at dir and clears
// stale staging litter from prior runs.
func OpenStore(dir string) (*Store, error) {
	if err := os.MkdirAll(filepath.Join(dir, "tmp"), 0o755); err != nil {
		return nil, fmt.Errorf("serve: store: %w", err)
	}
	// Staging directories are worthless across restarts; completed entries
	// (already renamed into place) are untouched.
	entries, err := os.ReadDir(filepath.Join(dir, "tmp"))
	if err == nil {
		for _, e := range entries {
			os.RemoveAll(filepath.Join(dir, "tmp", e.Name()))
		}
	}
	return &Store{root: dir}, nil
}

// validKey reports whether key looks like a CacheKey product — 64 lowercase
// hex characters — which is also what makes it path-safe.
func validKey(key string) bool {
	if len(key) != 64 {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// dir returns the entry directory for key.
func (s *Store) dir(key string) string {
	return filepath.Join(s.root, key)
}

// Has reports whether a complete entry exists for key (the manifest, the
// last file written before commit, is the witness).
func (s *Store) Has(key string) bool {
	if !validKey(key) {
		return false
	}
	_, err := os.Stat(filepath.Join(s.dir(key), spec.ManifestArtifact))
	return err == nil
}

// Commit persists an executed spec's artifacts under key. The artifacts are
// written to a staging directory first (through spec.Output.WriteArtifacts,
// the same writer `radiobfs run` uses — byte identity by construction) and
// renamed into place. Losing a commit race to an identical entry is
// success: deterministic execution means the bytes already there are the
// bytes we carried.
func (s *Store) Commit(key string, out *spec.Output) error {
	if !validKey(key) {
		return fmt.Errorf("serve: store: invalid key %q", key)
	}
	stage := filepath.Join(s.root, "tmp", fmt.Sprintf("stage-%d-%d", os.Getpid(), s.stage.Add(1)))
	defer os.RemoveAll(stage)
	dir, err := out.WriteArtifacts(stage)
	if err != nil {
		return fmt.Errorf("serve: store: %w", err)
	}
	if s.Has(key) {
		return nil
	}
	if err := os.Rename(dir, s.dir(key)); err != nil {
		if s.Has(key) {
			return nil // lost the race to an identical commit
		}
		return fmt.Errorf("serve: store: %w", err)
	}
	return nil
}

// Open opens one artifact file of an entry. name must be one of
// ArtifactNames and key a valid cache key, which together make the joined
// path traversal-proof.
func (s *Store) Open(key, name string) (*os.File, error) {
	if !validKey(key) {
		return nil, fmt.Errorf("serve: store: invalid key %q", key)
	}
	ok := false
	for _, n := range ArtifactNames() {
		if name == n {
			ok = true
			break
		}
	}
	if !ok {
		return nil, fmt.Errorf("serve: store: unknown artifact %q", name)
	}
	return os.Open(filepath.Join(s.dir(key), name))
}
