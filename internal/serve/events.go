package serve

import (
	"sync"
	"sync/atomic"

	"repro/internal/progress"
)

// Event is one progress record of a job, rendered as the `data:` payload of
// an SSE frame. IDs are per-job, contiguous, and start at 1; the SSE `id:`
// field carries them so clients resume with Last-Event-ID after a dropped
// connection.
type Event struct {
	// ID is the per-job sequence number (also the SSE event id).
	ID int `json:"-"`
	// Type is the event kind: queued, started, phase, rounds, trial,
	// complete.
	Type string `json:"type"`
	// Job is the owning job's id; every event of a stream carries it, so a
	// client multiplexing several jobs never misfiles an event.
	Job string `json:"job"`
	// Phase names the algorithm phase for phase/rounds events.
	Phase string `json:"phase,omitempty"`
	// State qualifies the event: "start"/"end" for phase events, the
	// terminal job state ("done", "failed", "canceled") for complete
	// events.
	State string `json:"state,omitempty"`
	// Rounds is the job-cumulative round count for rounds events.
	Rounds int64 `json:"rounds,omitempty"`
	// Trial labels the settled trial for trial events
	// ("scenario/family/n=N#index").
	Trial string `json:"trial,omitempty"`
	// Done/Total track settled trials out of the job's expansion.
	Done  int `json:"done,omitempty"`
	Total int `json:"total,omitempty"`
	// Err carries the trial or job error, when any.
	Err string `json:"error,omitempty"`
	// CacheHit marks complete events of jobs served from the result cache.
	CacheHit bool `json:"cacheHit,omitempty"`
}

// Log is a per-job append-only event log with bounded retention and
// broadcast wake-ups. Appends assign contiguous IDs; readers poll After,
// which replays retained events past a cursor and hands back a channel that
// closes on the next append (or on Close), so an SSE handler can wait
// without busy-looping. When more than cap events accumulate, the oldest
// fall off — a resuming client whose Last-Event-ID predates the window
// simply continues from the oldest retained event, which is the standard
// SSE contract (the stream is progress narration, not the result; the
// result is the artifact store).
type Log struct {
	mu     sync.Mutex
	cap    int
	base   int // ID of events[0] (IDs start at 1)
	events []Event
	wake   chan struct{}
	closed bool
}

// NewLog builds a log retaining at most cap events (cap < 1 selects 1).
func NewLog(cap int) *Log {
	if cap < 1 {
		cap = 1
	}
	return &Log{cap: cap, base: 1, wake: make(chan struct{})}
}

// Append assigns the event its ID, retains it, and wakes every waiting
// reader. Appending to a closed log is a no-op returning 0 (late observer
// callbacks may race a cancellation's Close; dropping narration there is
// harmless).
func (l *Log) Append(e Event) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0
	}
	e.ID = l.base + len(l.events)
	l.events = append(l.events, e)
	if len(l.events) > l.cap {
		drop := len(l.events) - l.cap
		l.base += drop
		l.events = append(l.events[:0], l.events[drop:]...)
	}
	close(l.wake)
	l.wake = make(chan struct{})
	return e.ID
}

// Close marks the log complete: After stops handing out wake channels and
// reports open=false once the reader has drained everything. Idempotent.
func (l *Log) Close() {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return
	}
	l.closed = true
	close(l.wake)
}

// After returns a copy of the retained events with ID > after, the cursor
// to pass next time, and the log's state: open=false means the log is
// closed and the batch is final. When the batch is empty and the log is
// still open, wait is a channel that closes on the next Append or Close.
func (l *Log) After(after int) (batch []Event, next int, wait <-chan struct{}, open bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	first := after + 1
	if first < l.base {
		first = l.base
	}
	idx := first - l.base
	if idx < len(l.events) {
		batch = append(batch, l.events[idx:]...)
		next = batch[len(batch)-1].ID
	} else {
		next = after
	}
	if l.closed {
		return batch, next, nil, false
	}
	return batch, next, l.wake, true
}

// jobObserver adapts internal/progress events into the job's log. One
// observer is shared by every concurrent trial of its job — and only by
// them — so streams of co-scheduled jobs can never interleave: the
// scenario-level Observer plumbing is job-scoped by construction
// (spec.Options.Observer threads it into this job's compiled scenarios
// alone; see the harness concurrent-observer tests).
//
// Phase events pass through; round batches are coalesced into a cumulative
// counter flushed at most once per `every` rounds, so a million-round job
// narrates dozens of events, not millions.
type jobObserver struct {
	log   *Log
	job   string
	every int64
	total atomic.Int64
	last  atomic.Int64 // cumulative count at the last emitted rounds event
}

var _ progress.Observer = (*jobObserver)(nil)

func newJobObserver(log *Log, job string, every int64) *jobObserver {
	if every < 1 {
		every = 1 << 16
	}
	return &jobObserver{log: log, job: job, every: every}
}

// PhaseStart implements progress.Observer.
func (o *jobObserver) PhaseStart(phase string) {
	o.log.Append(Event{Type: "phase", Job: o.job, Phase: phase, State: "start"})
}

// PhaseEnd implements progress.Observer.
func (o *jobObserver) PhaseEnd(phase string) {
	o.log.Append(Event{Type: "phase", Job: o.job, Phase: phase, State: "end"})
}

// RoundBatch implements progress.Observer.
func (o *jobObserver) RoundBatch(phase string, rounds int64) {
	t := o.total.Add(rounds)
	last := o.last.Load()
	// Only one of the racing trials wins the CAS per threshold crossing, so
	// the stream sees monotonically increasing cumulative counts.
	if t-last >= o.every && o.last.CompareAndSwap(last, t) {
		o.log.Append(Event{Type: "rounds", Job: o.job, Phase: phase, Rounds: t})
	}
}
