package serve

import (
	"context"
	"sync"

	"repro/internal/spec"
)

// State is a job's lifecycle position. Transitions are strictly forward:
// queued → running → {done, failed, canceled}, except that a queued job may
// jump straight to canceled (canceled while waiting) and a cache-hit job is
// born done.
type State string

const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// Job is one accepted submission. The spec, root seed, quick flag, and
// cache key are immutable after admission; the mutable progress fields are
// guarded by mu. The event log narrates the lifecycle to SSE subscribers
// and is closed exactly once, when the job reaches a terminal state.
type Job struct {
	ID    string
	Key   string
	Spec  string // spec file name (the artifact directory name radiobfs run would use)
	Root  uint64
	Quick bool

	client string
	file   *spec.File
	ctx    context.Context
	cancel context.CancelFunc
	log    *Log

	mu       sync.Mutex
	state    State
	total    int // expanded trial count
	done     int // settled trials
	errors   int // settled trials that reported an error
	err      string
	cacheHit bool
}

// snapshot returns the mutable fields under the job's lock.
func (j *Job) snapshot() (state State, total, done, errs int, errText string, cacheHit bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state, j.total, j.done, j.errors, j.err, j.cacheHit
}

// JobStatus is the JSON shape of a job in every HTTP response.
type JobStatus struct {
	ID    string `json:"id"`
	Key   string `json:"key"`
	Spec  string `json:"spec"`
	State State  `json:"state"`
	// CacheHit is true when the submission was answered from the result
	// cache without executing any trials.
	CacheHit bool `json:"cacheHit"`
	// Coalesced is true on responses that attached a duplicate submission
	// to an already-admitted in-flight job (single-flight).
	Coalesced bool   `json:"coalesced,omitempty"`
	RootSeed  uint64 `json:"rootSeed"`
	Quick     bool   `json:"quick,omitempty"`
	Trials    int    `json:"trials"`
	Done      int    `json:"done"`
	Errors    int    `json:"errors"`
	Error     string `json:"error,omitempty"`
	// Events is the SSE stream path for this job.
	Events string `json:"events"`
	// Artifacts lists the fetch paths of the four artifact files; populated
	// once the job is done (immediately for cache hits).
	Artifacts []string `json:"artifacts,omitempty"`
}

// status renders the job's current JobStatus.
func (j *Job) status() JobStatus {
	state, total, done, errs, errText, cacheHit := j.snapshot()
	st := JobStatus{
		ID:       j.ID,
		Key:      j.Key,
		Spec:     j.Spec,
		State:    state,
		CacheHit: cacheHit,
		RootSeed: j.Root,
		Quick:    j.Quick,
		Trials:   total,
		Done:     done,
		Errors:   errs,
		Error:    errText,
		Events:   "/v1/jobs/" + j.ID + "/events",
	}
	if state == StateDone {
		for _, name := range ArtifactNames() {
			st.Artifacts = append(st.Artifacts, "/v1/artifacts/"+j.Key+"/"+name)
		}
	}
	return st
}
