package serve

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/spec"
)

const storeSpec = `{
  "name": "store-fixture",
  "seed": 3,
  "scenarios": [
    {"name": "s1", "algorithm": "recursive", "trials": 2,
     "instances": [{"family": "grid", "n": 16}]}
  ]
}`

func parseSpec(t *testing.T, doc string) *spec.File {
	t.Helper()
	f, err := spec.Parse(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	return f
}

// TestCacheKeyStability: the key is stable across reparses and distinct
// under seed/quick changes.
func TestCacheKeyStability(t *testing.T) {
	f := parseSpec(t, storeSpec)
	k1, err := CacheKey(f, 3, false)
	if err != nil {
		t.Fatal(err)
	}
	if !validKey(k1) {
		t.Fatalf("CacheKey %q is not 64 lowercase hex chars", k1)
	}
	// Reparse with different formatting: same key.
	f2 := parseSpec(t, "  \n"+storeSpec)
	if k2, _ := CacheKey(f2, 3, false); k2 != k1 {
		t.Errorf("key differs across reparse: %s vs %s", k2, k1)
	}
	if kSeed, _ := CacheKey(f, 4, false); kSeed == k1 {
		t.Error("key ignores the root seed")
	}
	if kQuick, _ := CacheKey(f, 3, true); kQuick == k1 {
		t.Error("key ignores the quick flag")
	}
	f3 := parseSpec(t, storeSpec)
	f3.Scenarios[0].Trials++
	if kSpec, _ := CacheKey(f3, 3, false); kSpec == k1 {
		t.Error("key ignores spec content")
	}
}

// TestStoreCommitGet executes a spec, commits it, and reads the artifacts
// back byte-identical to a direct WriteArtifacts of the same Output.
func TestStoreCommitGet(t *testing.T) {
	f := parseSpec(t, storeSpec)
	out, err := spec.ExecuteFile(f, 2, 0, spec.Options{})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	st, err := OpenStore(filepath.Join(dir, "store"))
	if err != nil {
		t.Fatal(err)
	}
	key, err := CacheKey(f, f.RootSeed(), false)
	if err != nil {
		t.Fatal(err)
	}
	if st.Has(key) {
		t.Fatal("Has before Commit")
	}
	if err := st.Commit(key, out); err != nil {
		t.Fatal(err)
	}
	if !st.Has(key) {
		t.Fatal("no entry after Commit")
	}
	// Re-committing is a no-op success (identical bytes already present).
	if err := st.Commit(key, out); err != nil {
		t.Fatalf("second Commit: %v", err)
	}

	refDir, err := out.WriteArtifacts(filepath.Join(dir, "direct"))
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range ArtifactNames() {
		want, err := os.ReadFile(filepath.Join(refDir, name))
		if err != nil {
			t.Fatal(err)
		}
		r, err := st.Open(key, name)
		if err != nil {
			t.Fatal(err)
		}
		got, err := io.ReadAll(r)
		r.Close()
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(want) {
			t.Errorf("%s: cached bytes differ from direct WriteArtifacts", name)
		}
	}
	// Staging area left clean.
	entries, err := os.ReadDir(filepath.Join(dir, "store", "tmp"))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Errorf("staging litter after commits: %d entries", len(entries))
	}
}

// TestStoreRejectsBadKeysAndNames: traversal-shaped keys and artifact names
// never reach the filesystem.
func TestStoreRejectsBadKeysAndNames(t *testing.T) {
	st, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	badKeys := []string{"", "..", "../../etc/passwd", strings.Repeat("z", 64), strings.Repeat("A", 64), strings.Repeat("a", 63)}
	for _, k := range badKeys {
		if st.Has(k) {
			t.Errorf("Has(%q) = true", k)
		}
		if _, err := st.Open(k, spec.ManifestArtifact); err == nil {
			t.Errorf("Open(%q) succeeded", k)
		}
		if err := st.Commit(k, &spec.Output{}); err == nil {
			t.Errorf("Commit(%q) succeeded", k)
		}
	}
	good := strings.Repeat("a", 64)
	for _, name := range []string{"", "..", "../x", "manifest.json/..", "other.txt"} {
		if _, err := st.Open(good, name); err == nil {
			t.Errorf("Open(key, %q) succeeded", name)
		}
	}
}
