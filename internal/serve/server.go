package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/harness"
	"repro/internal/journal"
	"repro/internal/spec"
)

// Config sizes the server. The zero value is usable: defaults are applied
// by New.
type Config struct {
	// Store is the content-addressed artifact cache directory.
	Store string
	// Workers bounds concurrent trials inside one job (harness.Runner
	// semantics: 0 = GOMAXPROCS, 1 = sequential). Output bytes never
	// depend on it.
	Workers int
	// Execs is the number of jobs executing concurrently on the shared
	// runner (default 1: jobs serialize, each using the whole trial pool).
	Execs int
	// QueueCap bounds the pending-job queue; a full queue answers 429
	// (default 64).
	QueueCap int
	// MaxPerClient caps one client's jobs in flight — queued or running;
	// exceeding it answers 429 (default 8). Clients identify themselves
	// with the X-Client-ID header and default to their remote host.
	MaxPerClient int
	// RetryAfter is the seconds value of the Retry-After header on 429
	// responses (default 1).
	RetryAfter int
	// Heartbeat is the SSE keep-alive comment interval (default 15s).
	Heartbeat time.Duration
	// EventLogCap bounds each job's retained event window (default 4096).
	EventLogCap int
	// RoundsPerEvent coalesces round-batch observer callbacks: one SSE
	// rounds event per this many cumulative rounds (default 65536).
	RoundsPerEvent int64
	// MaxSpecBytes bounds the request body of a submission (default 1 MiB).
	MaxSpecBytes int64
	// JobHistory bounds retained terminal job records (default 1024); the
	// artifact cache is unaffected by pruning.
	JobHistory int
	// ShardMinN / DenseMin pass through to the harness runner (kernel
	// selection only; never output bytes).
	ShardMinN int
	DenseMin  int
	// Execute, when non-nil, replaces spec.ExecuteFile as the job execution
	// engine — the seam `radiobfs serve -dist-listen` uses to run jobs
	// across remote workers. It must honor opts (Ctx, Observer, OnTrial)
	// and produce bytes identical to spec.ExecuteFile's.
	Execute func(f *spec.File, root uint64, opts spec.Options) (*spec.Output, error)
	// Log, when non-nil, receives one line per admission and completion.
	Log io.Writer
}

func (c *Config) applyDefaults() {
	if c.Execs < 1 {
		c.Execs = 1
	}
	if c.QueueCap < 1 {
		c.QueueCap = 64
	}
	if c.MaxPerClient < 1 {
		c.MaxPerClient = 8
	}
	if c.RetryAfter < 1 {
		c.RetryAfter = 1
	}
	if c.Heartbeat <= 0 {
		c.Heartbeat = 15 * time.Second
	}
	if c.EventLogCap < 1 {
		c.EventLogCap = 4096
	}
	if c.RoundsPerEvent < 1 {
		c.RoundsPerEvent = 1 << 16
	}
	if c.MaxSpecBytes < 1 {
		c.MaxSpecBytes = 1 << 20
	}
	if c.JobHistory < 1 {
		c.JobHistory = 1024
	}
	if c.Log == nil {
		c.Log = io.Discard
	}
}

// Server is the simulation service: admission control in front of a
// bounded queue, a fixed pool of job executors over the shared harness
// runner, per-job SSE event logs, and the content-addressed result cache.
// Create with New, expose with Handler, stop with Close.
type Server struct {
	cfg   Config
	store *Store

	baseCtx    context.Context
	cancelBase context.CancelFunc
	queue      chan *Job
	wg         sync.WaitGroup

	mu        sync.Mutex
	closed    bool
	nextID    int
	jobs      map[string]*Job
	order     []string        // job ids in admission order, for pruning
	inflight  map[string]*Job // cache key → active (queued/running) job
	perClient map[string]int

	// jn is the durable job journal at the store root; jnMu serializes its
	// appends (the admission path and the executors both write).
	jn   *journal.Journal
	jnMu sync.Mutex

	executions      atomic.Int64 // jobs that actually executed trials
	cacheHits       atomic.Int64
	coalesced       atomic.Int64
	rejected        atomic.Int64
	recovered       atomic.Int64 // journaled jobs requeued at startup
	recoveredCached atomic.Int64 // journaled jobs satisfied from the cache at startup

	// beforeRun, when non-nil, runs on the executor goroutine after a job
	// enters the running state and before any trial executes. Tests use it
	// to hold jobs open deterministically.
	beforeRun func(*Job)
}

// New opens the store, recovers the job journal — requeueing every job a
// previous process accepted but never finished — and starts the executor
// pool.
func New(cfg Config) (*Server, error) {
	cfg.applyDefaults()
	store, err := OpenStore(cfg.Store)
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:        cfg,
		store:      store,
		baseCtx:    ctx,
		cancelBase: cancel,
		jobs:       map[string]*Job{},
		inflight:   map[string]*Job{},
		perClient:  map[string]int{},
	}
	requeue, err := s.openJobsJournal()
	if err != nil {
		cancel()
		return nil, err
	}
	// Recovered jobs must all fit regardless of the configured queue bound —
	// they were admitted once already.
	s.queue = make(chan *Job, cfg.QueueCap+len(requeue))
	for _, j := range requeue {
		s.queue <- j
	}
	for i := 0; i < cfg.Execs; i++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			for j := range s.queue {
				s.runJob(j)
			}
		}()
	}
	return s, nil
}

// Close stops admission, cancels every live job, and waits for the
// executors to settle. Queued jobs finish canceled; running jobs settle at
// their next phase boundary. Idempotent.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	close(s.queue)
	s.mu.Unlock()
	s.cancelBase()
	s.wg.Wait()
	s.jnMu.Lock()
	s.jn.Close()
	s.jnMu.Unlock()
}

// Handler returns the HTTP API. The routes are REST/JSON with one SSE
// stream; the method set is deliberately small and handler-thin so a gRPC
// front end can wrap the same Server operations.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /v1/artifacts/{key}/{name}", s.handleArtifact)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok\n")
	})
	return mux
}

// clientID resolves the submitting client for per-client admission caps.
func clientID(r *http.Request) string {
	if id := strings.TrimSpace(r.Header.Get("X-Client-ID")); id != "" {
		if len(id) > 100 {
			id = id[:100]
		}
		return id
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// overload answers 429 with a Retry-After hint — the admission-control
// refusal clients are expected to back off on.
func (s *Server) overload(w http.ResponseWriter, format string, args ...any) {
	s.rejected.Add(1)
	w.Header().Set("Retry-After", strconv.Itoa(s.cfg.RetryAfter))
	httpError(w, http.StatusTooManyRequests, format, args...)
}

// handleSubmit admits one spec: parse → validate/compile (reusing the
// registries' actionable error messages verbatim) → cache lookup →
// single-flight attach → admission-controlled enqueue.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	f, err := spec.Parse(http.MaxBytesReader(w, r.Body, s.cfg.MaxSpecBytes))
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	q := r.URL.Query()
	quick := false
	if v := q.Get("quick"); v != "" {
		quick, err = strconv.ParseBool(v)
		if err != nil {
			httpError(w, http.StatusBadRequest, "quick=%q is not a boolean", v)
			return
		}
	}
	root := f.RootSeed()
	if v := q.Get("seed"); v != "" {
		seed, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			httpError(w, http.StatusBadRequest, "seed=%q is not a uint64", v)
			return
		}
		if seed != 0 {
			root = seed
		}
	}
	// Compile validates against the live registries and — with no Custom
	// table — rejects custom-workload specs with the same actionable
	// message `radiobfs run` prints.
	scs, err := spec.Compile(f, spec.Options{Quick: quick})
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	total := 0
	for _, sc := range scs {
		total += len(sc.Instances) * sc.TrialCount()
	}
	key, err := CacheKey(f, root, quick)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	client := clientID(r)

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		httpError(w, http.StatusServiceUnavailable, "server is shutting down")
		return
	}
	if s.store.Has(key) {
		job := s.registerLocked(f, key, root, quick, client, total)
		job.state = StateDone
		job.cacheHit = true
		job.done = total
		s.cacheHits.Add(1)
		s.mu.Unlock()
		job.log.Append(Event{Type: "complete", Job: job.ID, State: string(StateDone), Done: total, Total: total, CacheHit: true})
		job.log.Close()
		fmt.Fprintf(s.cfg.Log, "serve: job %s spec %s: cache hit (%s)\n", job.ID, job.Spec, short(key))
		writeJSON(w, http.StatusOK, job.status())
		return
	}
	if active := s.inflight[key]; active != nil {
		s.coalesced.Add(1)
		s.mu.Unlock()
		st := active.status()
		st.Coalesced = true
		fmt.Fprintf(s.cfg.Log, "serve: spec %s coalesced onto job %s (%s)\n", f.Name, active.ID, short(key))
		writeJSON(w, http.StatusOK, st)
		return
	}
	if n := s.perClient[client]; n >= s.cfg.MaxPerClient {
		s.mu.Unlock()
		s.overload(w, "client %q has %d jobs in flight (cap %d) — retry after they settle", client, n, s.cfg.MaxPerClient)
		return
	}
	if len(s.queue) >= s.cfg.QueueCap {
		s.mu.Unlock()
		s.overload(w, "job queue is full (%d pending) — retry later", s.cfg.QueueCap)
		return
	}
	job := s.registerLocked(f, key, root, quick, client, total)
	job.state = StateQueued
	// Journal the admission — durably — before the client hears 202: an
	// accepted job must survive this process.
	if err := s.journalSubmit(job); err != nil {
		delete(s.jobs, job.ID)
		s.order = s.order[:len(s.order)-1]
		s.mu.Unlock()
		job.cancel()
		httpError(w, http.StatusInternalServerError, "recording job: %v", err)
		return
	}
	s.inflight[key] = job
	s.perClient[client]++
	job.log.Append(Event{Type: "queued", Job: job.ID, Total: total})
	select {
	case s.queue <- job:
	default:
		// The capacity check above makes this unreachable in practice, but
		// never block the admission path on the queue.
		delete(s.inflight, key)
		s.perClient[client]--
		s.mu.Unlock()
		s.overload(w, "job queue is full (%d pending) — retry later", s.cfg.QueueCap)
		return
	}
	s.mu.Unlock()
	fmt.Fprintf(s.cfg.Log, "serve: job %s queued: spec %s, %d trials, seed %d, key %s\n", job.ID, job.Spec, total, root, short(key))
	writeJSON(w, http.StatusAccepted, job.status())
}

// registerLocked allocates and indexes a job record; the caller holds s.mu
// and finishes initializing the state fields.
func (s *Server) registerLocked(f *spec.File, key string, root uint64, quick bool, client string, total int) *Job {
	s.nextID++
	ctx, cancel := context.WithCancel(s.baseCtx)
	job := &Job{
		ID:     fmt.Sprintf("j%d", s.nextID),
		Key:    key,
		Spec:   f.Name,
		Root:   root,
		Quick:  quick,
		client: client,
		file:   f,
		ctx:    ctx,
		cancel: cancel,
		log:    NewLog(s.cfg.EventLogCap),
		total:  total,
	}
	s.jobs[job.ID] = job
	s.order = append(s.order, job.ID)
	s.pruneLocked()
	return job
}

// pruneLocked drops the oldest terminal job records beyond the history cap.
// Active jobs are never pruned; cache entries outlive their job records.
func (s *Server) pruneLocked() {
	excess := len(s.jobs) - s.cfg.JobHistory
	if excess <= 0 {
		return
	}
	kept := s.order[:0]
	for _, id := range s.order {
		j := s.jobs[id]
		if excess > 0 && j != nil {
			if st, _, _, _, _, _ := j.snapshot(); st.Terminal() {
				delete(s.jobs, id)
				excess--
				continue
			}
		}
		kept = append(kept, id)
	}
	s.order = kept
}

// runJob executes one admitted job on the shared runner: progress flows
// into the job's event log through a job-scoped observer and the per-trial
// hook, artifacts commit to the content-addressed store, and cancellation
// (DELETE, shutdown) settles at the next phase boundary without writing
// anything.
func (s *Server) runJob(j *Job) {
	j.mu.Lock()
	if j.state != StateQueued {
		j.mu.Unlock()
		return
	}
	if j.ctx.Err() != nil {
		j.mu.Unlock()
		s.finish(j, StateCanceled, "canceled while queued")
		return
	}
	j.state = StateRunning
	j.mu.Unlock()
	s.journalState(j, StateRunning, "")
	j.log.Append(Event{Type: "started", Job: j.ID, Total: j.total})
	if hook := s.beforeRun; hook != nil {
		hook(j)
	}
	if j.ctx.Err() != nil {
		s.finish(j, StateCanceled, "canceled")
		return
	}
	s.executions.Add(1)
	onTrial := func(res harness.Result) {
		j.mu.Lock()
		j.done++
		if res.Err != "" {
			j.errors++
		}
		done := j.done
		j.mu.Unlock()
		j.log.Append(Event{
			Type:  "trial",
			Job:   j.ID,
			Trial: fmt.Sprintf("%s/%s/n=%d#%d", res.Scenario, res.Family, res.N, res.Index),
			Done:  done,
			Total: j.total,
			Err:   res.Err,
		})
	}
	opts := spec.Options{
		Quick:     j.Quick,
		Ctx:       j.ctx,
		Observer:  newJobObserver(j.log, j.ID, s.cfg.RoundsPerEvent),
		OnTrial:   onTrial,
		ShardMinN: s.cfg.ShardMinN,
		DenseMin:  s.cfg.DenseMin,
	}
	execute := s.cfg.Execute
	if execute == nil {
		execute = func(f *spec.File, root uint64, opts spec.Options) (*spec.Output, error) {
			return spec.ExecuteFile(f, s.cfg.Workers, root, opts)
		}
	}
	out, err := execute(j.file, j.Root, opts)
	switch {
	case j.ctx.Err() != nil:
		// Canceled mid-run: trials settled at phase boundaries; partial
		// output must never reach the cache.
		s.finish(j, StateCanceled, "canceled")
	case err != nil:
		s.finish(j, StateFailed, err.Error())
	default:
		if err := s.store.Commit(j.Key, out); err != nil {
			s.finish(j, StateFailed, err.Error())
			return
		}
		s.finish(j, StateDone, "")
	}
}

// finish moves a job to a terminal state exactly once: records the outcome,
// emits the complete event, closes the log, and releases the job's
// admission slots (single-flight entry, per-client count).
func (s *Server) finish(j *Job, state State, errText string) {
	j.mu.Lock()
	if j.state.Terminal() {
		j.mu.Unlock()
		return
	}
	j.state = state
	if state != StateDone {
		j.err = errText
	}
	done, total := j.done, j.total
	j.mu.Unlock()
	j.cancel()
	s.journalState(j, state, errText)
	j.log.Append(Event{Type: "complete", Job: j.ID, State: string(state), Done: done, Total: total, Err: errText})
	j.log.Close()
	s.mu.Lock()
	if s.inflight[j.Key] == j {
		delete(s.inflight, j.Key)
	}
	if n := s.perClient[j.client]; n > 1 {
		s.perClient[j.client] = n - 1
	} else {
		delete(s.perClient, j.client)
	}
	s.mu.Unlock()
	fmt.Fprintf(s.cfg.Log, "serve: job %s spec %s: %s (%d/%d trials)\n", j.ID, j.Spec, state, done, total)
}

// jobByID resolves a job record.
func (s *Server) jobByID(id string) *Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	j := s.jobByID(r.PathValue("id"))
	if j == nil {
		httpError(w, http.StatusNotFound, "no such job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, j.status())
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	out := make([]JobStatus, 0, len(s.order))
	jobs := make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		if j := s.jobs[id]; j != nil {
			jobs = append(jobs, j)
		}
	}
	s.mu.Unlock()
	for _, j := range jobs {
		out = append(out, j.status())
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": out})
}

// handleCancel implements DELETE /v1/jobs/{id}: queued jobs finish
// immediately; running jobs get their context canceled and settle at the
// next phase boundary. Terminal jobs are a no-op (idempotent).
func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j := s.jobByID(r.PathValue("id"))
	if j == nil {
		httpError(w, http.StatusNotFound, "no such job %q", r.PathValue("id"))
		return
	}
	j.mu.Lock()
	state := j.state
	j.mu.Unlock()
	switch {
	case state.Terminal():
		writeJSON(w, http.StatusOK, j.status())
	case state == StateQueued:
		j.cancel()
		s.finish(j, StateCanceled, "canceled by client")
		writeJSON(w, http.StatusOK, j.status())
	default:
		j.cancel()
		writeJSON(w, http.StatusAccepted, j.status())
	}
}

// handleEvents streams the job's event log as Server-Sent Events: retained
// events after the client's Last-Event-ID replay first, then live appends,
// with comment heartbeats while idle. The stream ends when the job's log
// closes (terminal state) or the client disconnects.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j := s.jobByID(r.PathValue("id"))
	if j == nil {
		httpError(w, http.StatusNotFound, "no such job %q", r.PathValue("id"))
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusInternalServerError, "response writer cannot stream")
		return
	}
	cursor := 0
	lastID := r.Header.Get("Last-Event-ID")
	if lastID == "" {
		lastID = r.URL.Query().Get("lastEventID")
	}
	if lastID != "" {
		n, err := strconv.Atoi(lastID)
		if err != nil || n < 0 {
			httpError(w, http.StatusBadRequest, "Last-Event-ID %q is not an event id", lastID)
			return
		}
		cursor = n
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	fl.Flush()
	ticker := time.NewTicker(s.cfg.Heartbeat)
	defer ticker.Stop()
	for {
		batch, next, wait, open := j.log.After(cursor)
		cursor = next
		for _, e := range batch {
			data, err := json.Marshal(e)
			if err != nil {
				continue
			}
			fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", e.ID, e.Type, data)
		}
		if len(batch) > 0 {
			fl.Flush()
		}
		if !open {
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-wait:
		case <-ticker.C:
			io.WriteString(w, ": hb\n\n")
			fl.Flush()
		}
	}
}

// handleArtifact serves one cached artifact file, byte-identical to what
// `radiobfs run` writes for the same (spec, seed). Keys and names are
// validated against the cache-key alphabet and the fixed artifact set, so
// the path join cannot traverse.
func (s *Server) handleArtifact(w http.ResponseWriter, r *http.Request) {
	key, name := r.PathValue("key"), r.PathValue("name")
	f, err := s.store.Open(key, name)
	if err != nil {
		httpError(w, http.StatusNotFound, "no artifact %s/%s", key, name)
		return
	}
	defer f.Close()
	w.Header().Set("Content-Type", "application/octet-stream")
	io.Copy(w, f)
}

// Stats is the server-wide counter snapshot served at /v1/stats. The
// executions counter is the observable proof of caching: submitting the
// same spec twice moves cacheHits, not executions.
type Stats struct {
	Executions int64 `json:"executions"`
	CacheHits  int64 `json:"cacheHits"`
	Coalesced  int64 `json:"coalesced"`
	Rejected   int64 `json:"rejected"`
	// Recovered counts journaled jobs this process requeued at startup;
	// RecoveredCached counts journaled jobs it finished directly because
	// their artifacts were already committed before the crash.
	Recovered       int64 `json:"recovered"`
	RecoveredCached int64 `json:"recoveredCached"`
	Queued          int   `json:"queued"`
	Running         int   `json:"running"`
	Done            int   `json:"done"`
	Failed          int   `json:"failed"`
	Canceled        int   `json:"canceled"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	st := Stats{
		Executions:      s.executions.Load(),
		CacheHits:       s.cacheHits.Load(),
		Coalesced:       s.coalesced.Load(),
		Rejected:        s.rejected.Load(),
		Recovered:       s.recovered.Load(),
		RecoveredCached: s.recoveredCached.Load(),
	}
	s.mu.Lock()
	jobs := make([]*Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	s.mu.Unlock()
	for _, j := range jobs {
		state, _, _, _, _, _ := j.snapshot()
		switch state {
		case StateQueued:
			st.Queued++
		case StateRunning:
			st.Running++
		case StateDone:
			st.Done++
		case StateFailed:
			st.Failed++
		case StateCanceled:
			st.Canceled++
		}
	}
	writeJSON(w, http.StatusOK, st)
}

// short abbreviates a cache key for log lines.
func short(key string) string {
	if len(key) > 12 {
		return key[:12]
	}
	return key
}
