package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"repro/internal/journal"
	"repro/internal/spec"
)

// The job journal makes accepted work durable: every job the server admits
// is appended (and fsynced) to an append-only journal in the store root
// BEFORE the 202 goes out, and every state transition is appended as it
// happens. A serve process that crashes — or is killed — therefore never
// loses a job a client was told "accepted": the next process to open the
// same store replays the journal, requeues every job that had not reached a
// terminal state (with its original ID), and answers cached keys directly.
// Graceful shutdown is different on purpose: Close cancels live jobs to
// "canceled", a terminal state, so only genuinely interrupted work is
// redone.
//
// On startup the journal is compacted: the surviving (requeued) jobs'
// submit records are rewritten to a fresh file which atomically replaces
// the old one, so the journal stays proportional to in-flight work rather
// than growing with server history.

// jobsJournalFile is the journal's name inside the store root. Cache-entry
// directories are 64-hex-character keys, so the name cannot collide.
const jobsJournalFile = "jobs.journal"

// jobsJournalFormat versions the journal's record shapes.
const jobsJournalFormat = "radiobfs-serve-jobs/v1"

// jobsHeader is the journal's identity frame.
type jobsHeader struct {
	Format string `json:"format"`
}

// jobRecord is one journal entry: a job admission (op "submit", carrying
// everything needed to re-create and re-run the job after a crash) or a
// state transition (op "state").
type jobRecord struct {
	Op    string `json:"op"` // "submit" | "state"
	ID    string `json:"id"`
	State State  `json:"state,omitempty"`
	Err   string `json:"error,omitempty"`
	// Submit fields: the full spec document plus the admission parameters.
	SpecDoc json.RawMessage `json:"specDoc,omitempty"`
	Root    uint64          `json:"root,omitempty"`
	Quick   bool            `json:"quick,omitempty"`
	Key     string          `json:"key,omitempty"`
	Client  string          `json:"client,omitempty"`
}

// journalSubmit durably records one admitted job. It must succeed before
// the client hears "accepted": an acknowledged-then-lost job is exactly the
// failure mode the journal exists to close.
func (s *Server) journalSubmit(j *Job) error {
	raw, err := j.file.Encode()
	if err != nil {
		return err
	}
	rec, err := json.Marshal(jobRecord{Op: "submit", ID: j.ID, SpecDoc: raw,
		Root: j.Root, Quick: j.Quick, Key: j.Key, Client: j.client})
	if err != nil {
		return err
	}
	s.jnMu.Lock()
	defer s.jnMu.Unlock()
	if err := s.jn.Append(rec); err != nil {
		return err
	}
	return s.jn.Sync()
}

// journalState appends one state transition. Transition records are
// best-effort narration on top of the durable submit record: a failed
// append degrades recovery precision (the job re-runs when it might not
// have needed to), never correctness, so the job proceeds and the failure
// is logged.
func (s *Server) journalState(j *Job, state State, errText string) {
	rec, err := json.Marshal(jobRecord{Op: "state", ID: j.ID, State: state, Err: errText})
	if err == nil {
		s.jnMu.Lock()
		err = s.jn.Append(rec)
		s.jnMu.Unlock()
	}
	if err != nil {
		fmt.Fprintf(s.cfg.Log, "serve: warning: journaling job %s state %s: %v\n", j.ID, state, err)
	}
}

// openJobsJournal opens (or creates) the store's job journal and returns
// the recovered jobs to requeue, in their original admission order. The
// caller enqueues them once the executor pool exists. Recovered jobs whose
// cache key is already present are finished as done on the spot — the
// artifacts the client wants exist, so re-executing would be waste.
func (s *Server) openJobsJournal() ([]*Job, error) {
	path := filepath.Join(s.cfg.Store, jobsJournalFile)
	header, err := json.Marshal(jobsHeader{Format: jobsJournalFormat})
	if err != nil {
		return nil, err
	}
	if _, err := os.Stat(path); os.IsNotExist(err) {
		s.jn, err = journal.Create(path, header, journal.Options{})
		return nil, err
	}

	// Replay pass: reconstruct each journaled job's latest known state.
	var order []string
	submits := map[string]jobRecord{}
	last := map[string]State{}
	jn, err := journal.Recover(path,
		func(h []byte) error { return checkJobsHeader(path, h) },
		func(b []byte) error {
			var r jobRecord
			if err := json.Unmarshal(b, &r); err != nil {
				return fmt.Errorf("serve: job journal %s: undecodable record: %w", path, err)
			}
			switch r.Op {
			case "submit":
				if _, ok := submits[r.ID]; !ok {
					submits[r.ID] = r
					order = append(order, r.ID)
					last[r.ID] = StateQueued
				}
			case "state":
				if _, ok := submits[r.ID]; ok {
					last[r.ID] = r.State
				}
			default:
				return fmt.Errorf("serve: job journal %s: unknown record op %q", path, r.Op)
			}
			return nil
		},
		journal.Options{})
	if err != nil {
		return nil, err
	}
	jn.Close()

	// Job IDs must keep counting past everything the journal has seen, so a
	// recovered job and a fresh admission can never collide.
	for _, id := range order {
		if n, err := strconv.Atoi(strings.TrimPrefix(id, "j")); err == nil && n > s.nextID {
			s.nextID = n
		}
	}

	var requeue []*Job
	var cached int
	for _, id := range order {
		if last[id].Terminal() {
			continue
		}
		rec := submits[id]
		job, err := s.recoverJob(rec)
		if err != nil {
			// The spec no longer parses or compiles under this binary; the
			// job cannot be re-run, and inventing a failure record for a
			// client that may never return is noise. Drop it, loudly.
			fmt.Fprintf(s.cfg.Log, "serve: warning: dropping journaled job %s: %v\n", id, err)
			continue
		}
		if s.store.Has(rec.Key) {
			// Executed and committed before the crash reached the journal.
			job.state = StateDone
			job.done = job.total
			job.cacheHit = true
			job.log.Append(Event{Type: "complete", Job: job.ID, State: string(StateDone), Done: job.total, Total: job.total, CacheHit: true})
			job.log.Close()
			s.recoveredCached.Add(1)
			cached++
			fmt.Fprintf(s.cfg.Log, "serve: recovered job %s spec %s: already cached (%s)\n", job.ID, job.Spec, short(job.Key))
			continue
		}
		if s.inflight[job.Key] != nil {
			// Two unfinished journaled jobs with one key: single-flight
			// would have coalesced the second at admission, so treat the
			// duplicate the same way and let the first carry the work.
			fmt.Fprintf(s.cfg.Log, "serve: recovered job %s coalesces onto %s (%s)\n", job.ID, s.inflight[job.Key].ID, short(job.Key))
			job.cancel()
			continue
		}
		job.state = StateQueued
		s.inflight[job.Key] = job
		s.perClient[job.client]++
		job.log.Append(Event{Type: "queued", Job: job.ID, Total: job.total})
		s.recovered.Add(1)
		requeue = append(requeue, job)
		fmt.Fprintf(s.cfg.Log, "serve: recovered job %s spec %s: requeued (%d trials, key %s)\n", job.ID, job.Spec, job.total, short(job.Key))
	}
	if n := len(requeue) + cached; n > 0 {
		fmt.Fprintf(s.cfg.Log, "serve: job journal: recovered %d unfinished jobs (%d requeued, %d already cached)\n", n, len(requeue), cached)
	}

	// Compact: rewrite only the surviving submit records, then atomically
	// replace the old journal. Their fresh state transitions re-append as
	// the requeued jobs re-execute.
	tmp := path + ".compact"
	os.Remove(tmp)
	njn, err := journal.Create(tmp, header, journal.Options{})
	if err != nil {
		return nil, err
	}
	for _, job := range requeue {
		rec := submits[job.ID]
		b, err := json.Marshal(rec)
		if err == nil {
			err = njn.Append(b)
		}
		if err != nil {
			njn.Close()
			return nil, fmt.Errorf("serve: compacting job journal: %w", err)
		}
	}
	if err := njn.Sync(); err != nil {
		njn.Close()
		return nil, err
	}
	if err := os.Rename(tmp, path); err != nil {
		njn.Close()
		return nil, fmt.Errorf("serve: compacting job journal: %w", err)
	}
	s.jn = njn
	return requeue, nil
}

// checkJobsHeader refuses a journal whose identity frame is not ours.
func checkJobsHeader(path string, header []byte) error {
	var h jobsHeader
	if err := json.Unmarshal(header, &h); err != nil {
		return &journal.CorruptError{Path: path, Offset: 0, Reason: "undecodable identity header: " + err.Error()}
	}
	if h.Format != jobsJournalFormat {
		return fmt.Errorf("serve: job journal %s has format %q, this build expects %q — move the file aside to discard it", path, h.Format, jobsJournalFormat)
	}
	return nil
}

// recoverJob rebuilds a Job from its journaled submit record: the spec
// re-parses and re-compiles under the current binary (registries can change
// across builds), and the job keeps its original ID.
func (s *Server) recoverJob(rec jobRecord) (*Job, error) {
	f, err := spec.Parse(bytes.NewReader(rec.SpecDoc))
	if err != nil {
		return nil, err
	}
	scs, err := spec.Compile(f, spec.Options{Quick: rec.Quick})
	if err != nil {
		return nil, err
	}
	total := 0
	for _, sc := range scs {
		total += len(sc.Instances) * sc.TrialCount()
	}
	ctx, cancel := context.WithCancel(s.baseCtx)
	job := &Job{
		ID:     rec.ID,
		Key:    rec.Key,
		Spec:   f.Name,
		Root:   rec.Root,
		Quick:  rec.Quick,
		client: rec.Client,
		file:   f,
		ctx:    ctx,
		cancel: cancel,
		log:    NewLog(s.cfg.EventLogCap),
		total:  total,
	}
	s.jobs[job.ID] = job
	s.order = append(s.order, job.ID)
	return job, nil
}
