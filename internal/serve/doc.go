// Package serve is the simulation-as-a-service layer: a long-lived HTTP/JSON
// server (`radiobfs serve`) that accepts declarative experiment specs
// (internal/spec) from many concurrent clients, schedules them on a shared
// pooled runner with admission control, streams per-job progress over
// Server-Sent Events, and persists artifacts in a content-addressed result
// cache.
//
// The design leans entirely on the determinism contract built up by the
// lower layers: a spec's artifacts are a pure function of (canonical spec,
// root seed, code version) — byte-identical at any worker count, kernel
// selection, or scheduling — so a completed result is cacheable forever
// under that key. Identical submissions are cache hits served without
// recomputation; concurrent identical submissions coalesce onto one running
// job (single-flight); and the artifact files a client fetches are the same
// bytes `radiobfs run` would have written locally, which CI enforces with a
// byte-level diff.
//
// The four moving parts:
//
//   - Store (store.go): a content-addressed artifact directory keyed by
//     hex SHA-256 of (code version, canonical spec hash, effective root
//     seed, quick flag). Commits are staged and renamed into place, so a
//     key is either absent or complete.
//   - Log (events.go): a per-job, ring-buffered, fan-out event log. SSE
//     handlers replay retained events after the client's Last-Event-ID and
//     then follow live appends; progress events are sourced from
//     internal/progress observers and the harness's per-trial hook.
//   - Job journal (journal.go): an internal/journal record log in the
//     store root that makes accepted work durable. Every admission is
//     journaled (and fsynced) before the 202 response; state transitions
//     append as they happen; a restarted server replays the journal and
//     requeues — under their original IDs — the jobs a crashed process
//     accepted but never finished, answering already-committed keys from
//     the cache. /v1/stats reports the recovery counters.
//   - Server (server.go): admission control (bounded queue, per-client
//     in-flight caps, 429 + Retry-After on overload), a fixed pool of job
//     executors over the shared harness runner, per-job cancellation wired
//     through context, and the thin HTTP handler layer (kept separable so
//     a gRPC front end can reuse the same Server methods).
//
// The handler layer speaks plain net/http and JSON; see DESIGN.md's
// "Serving layer" section for the event schema and the byte-identity
// argument, and README.md for a curl + SSE quickstart.
package serve
