package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/journal"
	"repro/internal/spec"
)

// TestJournalRequeuesUnfinishedJobs is the serve half of the durability
// tentpole: a job the server said 202 to survives the server. The "crash"
// is an executor goroutine that dies (runtime.Goexit) after the job enters
// running — the journal then holds an admission with no terminal state, and
// a second server over the same store must requeue it under its original ID
// and run it to completion.
func TestJournalRequeuesUnfinishedJobs(t *testing.T) {
	store := filepath.Join(t.TempDir(), "store")
	crashed := make(chan struct{})
	s1, err := New(Config{Store: store, Workers: 2, Heartbeat: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	s1.beforeRun = func(*Job) {
		close(crashed)
		runtime.Goexit() // the executor dies mid-job; no terminal record is journaled
	}
	ts1 := httptest.NewServer(s1.Handler())
	code, st, body := submit(t, ts1, tinySpec, "", nil)
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d: %s", code, body)
	}
	<-crashed
	ts1.Close() // s1 is deliberately never Closed: Close would journal a clean cancel

	s2, err := New(Config{Store: store, Workers: 2, Heartbeat: time.Hour})
	if err != nil {
		t.Fatalf("restart over journaled store: %v", err)
	}
	ts2 := httptest.NewServer(s2.Handler())
	t.Cleanup(func() { ts2.Close(); s2.Close() })

	final := waitTerminal(t, ts2, st.ID)
	if final.State != StateDone {
		t.Fatalf("recovered job %s finished %s (%s)", st.ID, final.State, final.Error)
	}
	if final.ID != st.ID {
		t.Errorf("recovered job changed ID: %s != %s", final.ID, st.ID)
	}
	stats := getStats(t, ts2)
	if stats.Recovered != 1 || stats.Executions != 1 {
		t.Errorf("stats after recovery = %+v; want recovered 1, executions 1", stats)
	}
	// The recovered job's artifacts are served like any other completed job's.
	resp, err := http.Get(ts2.URL + "/v1/artifacts/" + final.Key + "/" + spec.ManifestArtifact)
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("artifact fetch after recovery: %v, %v", err, resp)
	}
	resp.Body.Close()
	// And a re-submission of the same spec is now a cache hit, not a rerun.
	code, st2, _ := submit(t, ts2, tinySpec, "", nil)
	if code != http.StatusOK || !st2.CacheHit {
		t.Errorf("resubmission after recovery: code %d, cacheHit %v; want 200 cache hit", code, st2.CacheHit)
	}
}

// TestJournalRecoversCachedJobAsDone: a crash in the window between the
// artifact commit and the terminal journal record leaves an "unfinished"
// job whose results already exist. Recovery must answer it from the cache
// instead of re-executing.
func TestJournalRecoversCachedJobAsDone(t *testing.T) {
	store := filepath.Join(t.TempDir(), "store")
	s1, err := New(Config{Store: store, Workers: 2, Heartbeat: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(s1.Handler())
	code, st, body := submit(t, ts1, tinySpec, "", nil)
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d: %s", code, body)
	}
	waitTerminal(t, ts1, st.ID)
	ts1.Close()
	s1.Close()

	// Forge the crash residue: an admission record for the same spec with no
	// terminal state, appended straight to the journal.
	f, err := spec.Parse(strings.NewReader(tinySpec))
	if err != nil {
		t.Fatal(err)
	}
	raw, err := f.Encode()
	if err != nil {
		t.Fatal(err)
	}
	rec, err := json.Marshal(jobRecord{Op: "submit", ID: "j99", SpecDoc: raw,
		Root: st.RootSeed, Key: st.Key, Client: "forger"})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(store, jobsJournalFile)
	jn, err := journal.Recover(path, nil, nil, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := jn.Append(rec); err != nil {
		t.Fatal(err)
	}
	jn.Close()

	s2, err := New(Config{Store: store, Workers: 2, Heartbeat: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(s2.Handler())
	t.Cleanup(func() { ts2.Close(); s2.Close() })
	got := getStatus(t, ts2, "j99")
	if got.State != StateDone || !got.CacheHit {
		t.Fatalf("forged job recovered as %+v; want done from cache", got)
	}
	stats := getStats(t, ts2)
	if stats.RecoveredCached != 1 || stats.Executions != 0 {
		t.Errorf("stats = %+v; want recoveredCached 1, executions 0", stats)
	}
	// IDs keep counting past everything the journal has seen: the next
	// admission must not collide with the forged j99.
	code, st3, body := submit(t, ts2, strings.Replace(tinySpec, `"seed": 9`, `"seed": 10`, 1), "", nil)
	if code != http.StatusAccepted {
		t.Fatalf("fresh submit = %d: %s", code, body)
	}
	if st3.ID != "j100" {
		t.Errorf("post-recovery ID = %s; want j100", st3.ID)
	}
}

// TestJournalCorruptionRefusal: interior damage in the job journal is a
// typed startup error, not a silent loss of accepted work.
func TestJournalCorruptionRefusal(t *testing.T) {
	store := filepath.Join(t.TempDir(), "store")
	s1, err := New(Config{Store: store, Workers: 2, Heartbeat: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	s1.Close()
	path := filepath.Join(store, jobsJournalFile)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)-1] ^= 0xff // damage the header frame: no identity, no recovery
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := New(Config{Store: store, Workers: 2, Heartbeat: time.Hour}); !journal.IsCorrupt(err) {
		t.Fatalf("New over corrupt journal: err = %v, want journal corruption", err)
	}
}

// TestJournalCompaction: terminal jobs do not accumulate in the journal —
// each restart rewrites it down to the surviving admissions.
func TestJournalCompaction(t *testing.T) {
	store := filepath.Join(t.TempDir(), "store")
	s1, err := New(Config{Store: store, Workers: 2, Heartbeat: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(s1.Handler())
	code, st, body := submit(t, ts1, tinySpec, "", nil)
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d: %s", code, body)
	}
	waitTerminal(t, ts1, st.ID)
	ts1.Close()
	s1.Close()

	s2, err := New(Config{Store: store, Workers: 2, Heartbeat: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	s2.Close()
	records := 0
	jn, err := journal.Recover(filepath.Join(store, jobsJournalFile), nil,
		func([]byte) error { records++; return nil }, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	jn.Close()
	if records != 0 {
		t.Errorf("journal holds %d records after a restart with no unfinished jobs; want 0", records)
	}
}
