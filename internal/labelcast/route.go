package labelcast

import (
	"repro/internal/lbnet"
	"repro/internal/progress"
	"repro/internal/radio"
	"repro/internal/scratch"
)

// MsgUp is the payload kind routed toward the source.
const MsgUp = 0x51

// RouteResult summarizes one gradient routing toward the source.
type RouteResult struct {
	// Reached reports whether the label-0 vertex received the message.
	Reached bool
	// Slots is the number of polling slots consumed.
	Slots int64
	// Hops is the number of layer transitions the message made.
	Hops int
}

// ToSource routes a message from origin to the label-0 vertex along strictly
// decreasing labels — the other half of the paper's §1 application: any
// sensor can raise an alarm, which climbs the BFS gradient to the base
// station (then Broadcast disseminates it). The schedule piggybacks on the
// same polling pattern as Broadcast: the label-i vertices wake at slots
// ≡ i (mod period), so a holder with label ℓ transmits when layer ℓ-1 is
// awake. Each holder offers the message for retries frames. O(1)
// transmissions per on-path vertex; listening is the polling duty cycle.
func (s *Scratch) ToSource(net lbnet.Net, labels []int32, origin int32, period, retries int, maxSlots int64) RouteResult {
	return s.ToSourceHooked(progress.Hooks{}, net, labels, origin, period, retries, maxSlots)
}

// ToSourceHooked is ToSource with cancellation and progress observation: the
// slot loop polls h.Err every slot — a canceled context stops the ascent with
// all meters settled — and reports simulated slots in batches under
// PhaseAscend.
func (s *Scratch) ToSourceHooked(h progress.Hooks, net lbnet.Net, labels []int32, origin int32, period, retries int, maxSlots int64) RouteResult {
	h.Start(PhaseAscend)
	defer h.End(PhaseAscend)
	if period < 1 {
		period = 1
	}
	if retries < 1 {
		retries = 1
	}
	n := net.N()
	var res RouteResult
	if labels[origin] < 0 {
		return res
	}
	if labels[origin] == 0 {
		res.Reached = true
		return res
	}
	holder := scratch.Grow(s.has, n)
	offers := scratch.Grow(s.offers, n) // remaining frames a holder transmits in
	s.has, s.offers = holder, offers
	for i := 0; i < n; i++ {
		holder[i], offers[i] = false, 0
	}
	holder[origin] = true
	offers[origin] = retries
	bestLabel := labels[origin]
	senders := s.senders[:0]
	receivers := s.receivers[:0]
	got := scratch.Grow(s.got, n)
	ok := scratch.Grow(s.ok, n)
	s.got, s.ok = got, ok
	pending := int64(0)
	defer func() { h.Rounds(PhaseAscend, pending) }()
	for t := int64(1); t <= maxSlots; t++ {
		if h.Err() != nil {
			break // canceled: meters settled, message not delivered
		}
		if pending++; pending == roundsBatch {
			h.Rounds(PhaseAscend, pending)
			pending = 0
		}
		res.Slots++
		residue := int32(t % int64(period))
		senders, receivers = senders[:0], receivers[:0]
		for v := int32(0); v < int32(n); v++ {
			l := labels[v]
			if l < 0 {
				continue
			}
			switch {
			case holder[v] && offers[v] > 0 && l > 0 && (int64(l-1))%int64(period) == int64(residue):
				senders = append(senders, radio.TX{ID: v, Msg: radio.Msg{Kind: MsgUp, A: uint64(l)}})
			case !holder[v] && int64(l)%int64(period) == int64(residue):
				// The polling wake: every awake vertex listens; only a
				// label ℓ-1 vertex accepts a label-ℓ upward message.
				receivers = append(receivers, v)
			}
		}
		if len(senders) == 0 && len(receivers) == 0 {
			net.SkipLB(1)
			continue
		}
		net.LocalBroadcast(senders, receivers, got[:len(receivers)], ok[:len(receivers)])
		for i := range senders {
			v := senders[i].ID
			if offers[v] > 0 {
				offers[v]--
			}
		}
		for j, v := range receivers {
			if !ok[j] || got[j].Kind != MsgUp {
				continue
			}
			if int32(got[j].A) != labels[v]+1 {
				continue // foreign layer; polling listener ignores it
			}
			if !holder[v] {
				holder[v] = true
				offers[v] = retries
				if labels[v] < bestLabel {
					bestLabel = labels[v]
					res.Hops++
				}
				if labels[v] == 0 {
					res.Reached = true
					s.senders, s.receivers = senders, receivers
					return res
				}
			}
		}
	}
	s.senders, s.receivers = senders, receivers
	return res
}

// ToSource is the scratch-free convenience wrapper around Scratch.ToSource.
func ToSource(net lbnet.Net, labels []int32, origin int32, period, retries int, maxSlots int64) RouteResult {
	var s Scratch
	return s.ToSource(net, labels, origin, period, retries, maxSlots)
}
