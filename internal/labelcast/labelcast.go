// Package labelcast implements the paper's motivating application (§1): once
// a BFS labeling exists, a network of battery-powered sensors disseminates
// messages with a duty-cycled polling schedule. With polling period P, the
// node labeled i wakes only at slots congruent to i (mod P): it listens for
// messages arriving from layer i-1 and forwards them when layer i+1 wakes.
// Latency grows by an additive O(P) while steady-state listening energy
// drops by a factor of P — the trade-off quantified by experiment E14.
package labelcast

import (
	"repro/internal/lbnet"
	"repro/internal/progress"
	"repro/internal/radio"
	"repro/internal/scratch"
)

// MsgData is the payload kind flooded by Broadcast.
const MsgData = 0x50

// Progress phase names emitted by the hooked dissemination loops.
const (
	// PhaseBroadcast frames one polled Broadcast; round batches count
	// polling slots.
	PhaseBroadcast = "labelcast/broadcast"
	// PhaseAscend frames one ToSource gradient ascent; round batches count
	// polling slots.
	PhaseAscend = "labelcast/ascend"
)

// roundsBatch is how many polling slots accumulate before a RoundBatch event
// is emitted: coarse enough that an attached observer costs one call per
// batch, fine enough that progress still streams during long disseminations.
const roundsBatch = 64

// Result summarizes one polled broadcast.
type Result struct {
	// DeliveredAll reports whether every labeled vertex got the message.
	DeliveredAll bool
	// Delivered counts vertices that got the message.
	Delivered int
	// MaxLatency is the number of slots from injection to the last
	// delivery (only meaningful when DeliveredAll).
	MaxLatency int64
	// Slots is the total number of slots simulated.
	Slots int64
	// IdleListens counts listen slots in which nothing was delivered — the
	// polling overhead a node pays for staying reachable.
	IdleListens int64
}

// Scratch owns the reusable per-call buffers of Broadcast and ToSource so
// repeated dissemination runs (e.g. pooled harness trials) allocate nothing
// in steady state. A zero Scratch is ready to use; it is not safe for
// concurrent use.
type Scratch struct {
	has       []bool
	offers    []int
	senders   []radio.TX
	receivers []int32
	got       []radio.Msg
	ok        []bool
}

// Broadcast floods one message from the label-0 vertex under polling period
// period: in slot t, holders with label ℓ ≡ t-1 (mod period) transmit and
// non-holders with label i ≡ t (mod period) listen. Unlabeled vertices
// (negative label) sleep throughout. The simulation stops when everyone has
// the message or maxSlots elapse.
func (s *Scratch) Broadcast(net lbnet.Net, labels []int32, period int, maxSlots int64) Result {
	return s.BroadcastHooked(progress.Hooks{}, net, labels, period, maxSlots)
}

// BroadcastHooked is Broadcast with cancellation and progress observation:
// the slot loop polls h.Err every slot — a canceled context stops the
// dissemination with all meters settled and the partial delivery recorded in
// the Result — and reports simulated slots in batches under PhaseBroadcast.
func (s *Scratch) BroadcastHooked(h progress.Hooks, net lbnet.Net, labels []int32, period int, maxSlots int64) Result {
	h.Start(PhaseBroadcast)
	defer h.End(PhaseBroadcast)
	if period < 1 {
		period = 1
	}
	n := net.N()
	has := scratch.Grow(s.has, n)
	s.has = has
	for i := range has {
		has[i] = false
	}
	labeled := 0
	for v := 0; v < n; v++ {
		if labels[v] == 0 {
			has[v] = true
		}
		if labels[v] >= 0 {
			labeled++
		}
	}
	var res Result
	senders := s.senders[:0]
	receivers := s.receivers[:0]
	got := scratch.Grow(s.got, n)
	ok := scratch.Grow(s.ok, n)
	s.got, s.ok = got, ok
	delivered := 0
	for v := 0; v < n; v++ {
		if has[v] {
			delivered++
		}
	}
	pending := int64(0)
	for t := int64(1); t <= maxSlots; t++ {
		if h.Err() != nil {
			break // canceled: partial delivery, meters settled
		}
		if pending++; pending == roundsBatch {
			h.Rounds(PhaseBroadcast, pending)
			pending = 0
		}
		residue := int32(t % int64(period))
		senders, receivers = senders[:0], receivers[:0]
		for v := int32(0); v < int32(n); v++ {
			l := labels[v]
			if l < 0 {
				continue
			}
			switch {
			case has[v] && (int64(l)+1)%int64(period) == int64(residue):
				senders = append(senders, radio.TX{ID: v, Msg: radio.Msg{Kind: MsgData, A: uint64(l)}})
			case !has[v] && int64(l)%int64(period) == int64(residue):
				receivers = append(receivers, v)
			}
		}
		if len(senders) == 0 && len(receivers) == 0 {
			net.SkipLB(1)
			res.Slots++
			continue
		}
		net.LocalBroadcast(senders, receivers, got[:len(receivers)], ok[:len(receivers)])
		res.Slots++
		for j, v := range receivers {
			if ok[j] && got[j].Kind == MsgData {
				has[v] = true
				delivered++
				res.MaxLatency = t
			} else {
				res.IdleListens++
			}
		}
		if delivered == labeled {
			break
		}
	}
	h.Rounds(PhaseBroadcast, pending)
	s.senders, s.receivers = senders, receivers
	res.Delivered = delivered
	res.DeliveredAll = delivered == labeled
	return res
}

// Broadcast is the scratch-free convenience wrapper: it allocates fresh
// buffers per call. Repeated runs should hold a Scratch instead.
func Broadcast(net lbnet.Net, labels []int32, period int, maxSlots int64) Result {
	var s Scratch
	return s.Broadcast(net, labels, period, maxSlots)
}

// SteadyStateListens returns the polling energy a node spends per horizon
// slots while idle (no traffic): one listen every period slots. It is the
// analytic counterpart displayed next to measured results in E14.
func SteadyStateListens(horizon int64, period int) int64 {
	if period < 1 {
		period = 1
	}
	return horizon / int64(period)
}
