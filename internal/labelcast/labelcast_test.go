package labelcast

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/lbnet"
)

func TestBroadcastDeliversOnPath(t *testing.T) {
	g := graph.Path(30)
	labels := graph.BFS(g, 0)
	for _, period := range []int{1, 2, 4, 8} {
		net := lbnet.NewUnitNet(g, 0, uint64(period))
		res := Broadcast(net, labels, period, 10000)
		if !res.DeliveredAll {
			t.Fatalf("period %d: delivered %d/%d", period, res.Delivered, g.N())
		}
	}
}

func TestBroadcastDeliversOnFamilies(t *testing.T) {
	for _, g := range []*graph.Graph{graph.Grid(8, 8), graph.Star(40), graph.BinaryTree(63)} {
		labels := graph.BFS(g, 0)
		net := lbnet.NewUnitNet(g, 0, 3)
		res := Broadcast(net, labels, 4, 10000)
		if !res.DeliveredAll {
			t.Fatalf("n=%d: delivered %d", g.N(), res.Delivered)
		}
	}
}

// TestLatencyEnergyTradeoff is the paper's opening claim: latency grows by
// about a factor related to P while per-node listening drops accordingly.
func TestLatencyEnergyTradeoff(t *testing.T) {
	g := graph.Path(64)
	labels := graph.BFS(g, 0)

	lat := map[int]int64{}
	maxEnergy := map[int]int64{}
	for _, period := range []int{1, 8} {
		net := lbnet.NewUnitNet(g, 0, 7)
		res := Broadcast(net, labels, period, 100000)
		if !res.DeliveredAll {
			t.Fatalf("period %d: not delivered", period)
		}
		lat[period] = res.MaxLatency
		maxEnergy[period] = lbnet.MaxLBEnergy(net)
	}
	// With consecutive labels the message advances one layer per slot in
	// both cases once started, so latency is comparable; but with P = 8 a
	// node only wakes every 8th slot, so its energy cannot exceed
	// latency/8 + O(1), versus up to the full latency for P = 1.
	if lat[8] > lat[1]+8 {
		t.Fatalf("latency: P=8 %d vs P=1 %d; gap exceeds one period", lat[8], lat[1])
	}
	if maxEnergy[8] > maxEnergy[1] {
		t.Fatalf("energy did not drop with duty cycling: P=8 %d vs P=1 %d", maxEnergy[8], maxEnergy[1])
	}
}

func TestUnlabeledVerticesSleep(t *testing.T) {
	g := graph.Path(20)
	labels := graph.BFS(g, 0)
	labels[19] = -1 // pretend unlabeled
	net := lbnet.NewUnitNet(g, 0, 9)
	res := Broadcast(net, labels, 2, 5000)
	if !res.DeliveredAll {
		t.Fatal("labeled part not fully delivered")
	}
	if net.LBEnergy(19) != 0 {
		t.Fatal("unlabeled vertex spent energy")
	}
}

func TestSteadyStateListens(t *testing.T) {
	if SteadyStateListens(1000, 10) != 100 {
		t.Fatal("wrong idle listen count")
	}
	if SteadyStateListens(1000, 0) != 1000 {
		t.Fatal("period clamp failed")
	}
}

func TestBroadcastStalls(t *testing.T) {
	// A gap in the labeling (no vertex labeled 5) stalls the flood at the
	// gap; the result must report partial delivery rather than hang.
	g := graph.Path(20)
	labels := graph.BFS(g, 0)
	for v := range labels {
		if labels[v] >= 5 {
			labels[v] += 3 // introduce a gap: labels jump 4 -> 8
		}
	}
	net := lbnet.NewUnitNet(g, 0, 11)
	res := Broadcast(net, labels, 4, 2000)
	if res.DeliveredAll {
		t.Fatal("delivery across a label gap should fail")
	}
	if res.Delivered < 5 {
		t.Fatalf("prefix before the gap not delivered: %d", res.Delivered)
	}
}

func TestToSourceOnPath(t *testing.T) {
	g := graph.Path(40)
	labels := graph.BFS(g, 0)
	for _, period := range []int{1, 4, 8} {
		net := lbnet.NewUnitNet(g, 0, uint64(period))
		res := ToSource(net, labels, 39, period, 3, 20000)
		if !res.Reached {
			t.Fatalf("period %d: alarm never reached the source (slots=%d hops=%d)", period, res.Slots, res.Hops)
		}
		if res.Hops != 39 {
			t.Fatalf("period %d: hops = %d, want 39", period, res.Hops)
		}
	}
}

func TestToSourceFromSourceTrivial(t *testing.T) {
	g := graph.Grid(5, 5)
	labels := graph.BFS(g, 0)
	net := lbnet.NewUnitNet(g, 0, 3)
	res := ToSource(net, labels, 0, 4, 3, 100)
	if !res.Reached || res.Slots != 0 {
		t.Fatalf("origin == source should be immediate: %+v", res)
	}
}

func TestToSourceEnergyProfile(t *testing.T) {
	// On-path vertices transmit at most `retries` times; off-path vertices
	// only pay polling listens.
	g := graph.Grid(10, 10)
	labels := graph.BFS(g, 0)
	net := lbnet.NewUnitNet(g, 0, 5)
	res := ToSource(net, labels, 99, 4, 2, 20000)
	if !res.Reached {
		t.Fatal("not delivered")
	}
	if e := lbnet.MaxLBEnergy(net); e > res.Slots/4+3 {
		t.Fatalf("max energy %d exceeds polling duty cycle bound %d", e, res.Slots/4+3)
	}
}

func TestToSourceUnreachableOrigin(t *testing.T) {
	g := graph.Path(10)
	labels := graph.BFS(g, 0)
	labels[9] = -1
	net := lbnet.NewUnitNet(g, 0, 7)
	if res := ToSource(net, labels, 9, 2, 3, 1000); res.Reached {
		t.Fatal("unlabeled origin should not route")
	}
}

func TestRoundTripAlarm(t *testing.T) {
	// The complete §1 story: alarm goes up the gradient, then is broadcast
	// back down to every sensor.
	g := graph.Grid(8, 8)
	labels := graph.BFS(g, 0)
	net := lbnet.NewUnitNet(g, 0, 9)
	up := ToSource(net, labels, 63, 4, 3, 20000)
	if !up.Reached {
		t.Fatal("alarm lost on the way up")
	}
	down := Broadcast(net, labels, 4, 20000)
	if !down.DeliveredAll {
		t.Fatal("alarm lost on the way down")
	}
}
