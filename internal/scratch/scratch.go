package scratch

// Grow returns s[:n], reallocating only when capacity is insufficient. It is
// the resize primitive behind every pooled buffer: steady-state callers that
// have reached their working size get their old backing array back, so hot
// loops stop allocating once warm.
func Grow[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}
