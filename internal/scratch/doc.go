// Package scratch holds the tiny helpers shared by the reusable-buffer
// ("scratch") types across the simulation packages (decay.Scratch,
// labelcast.Scratch, the vnet cast buffers).
//
// It exists for the zero-allocation contract of the simulation hot path:
// Grow hands back a buffer's old backing array whenever capacity allows, so
// a scratch-carrying loop that has reached its working size stops
// allocating entirely — the property the AllocsPerRun regression tests and
// the committed benchmark baseline pin. Scratch types built on it belong to
// one worker at a time (see the harness worker-context contract); they hold
// no state that outlives a call, so reuse can never change results.
package scratch
