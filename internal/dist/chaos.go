package dist

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/rng"
)

// ChaosExitCode is the exit status of a chaos-killed worker, distinct from
// ordinary failures so logs attribute the crash correctly.
const ChaosExitCode = 3

// chaosTag salts the chaos seed's Derive stream so chaos draws never
// collide with trial seeds derived from the same root.
const chaosTag = 0xc4a05

// ChaosSpec is the deterministic fault-injection schedule for worker
// processes, parsed from
// `-chaos seed=S,killafter=K,stall=P,disconnect=D,delay=MS,corrupt=P,coordkill=K`.
// The zero value injects nothing.
//
// Each worker incarnation i draws its fault plan from (Seed, i) alone — not
// from timing, pids, or scheduling — so a chaos run's failure pattern is
// reproducible and every incarnation's fate is known up front: with
// probability StallPct percent it stalls (stops heartbeating and hangs),
// otherwise, when KillAfter > 0, it crashes with ChaosExitCode, otherwise,
// when Disconnect > 0, it severs its transport (remote workers drop the
// socket and redial; pipe workers exit, which looks identical to the
// coordinator), otherwise, with probability CorruptPct percent, it corrupts
// one result frame in flight and then severs its transport — exercising the
// codec's CRC32 check from a real worker process. Every terminal fault
// fires after the incarnation completes
// a seeded number of trials in [1, max(1, span)]. Faulting only after at
// least one completed trial keeps chaos sweeps live: every incarnation
// makes progress, so the coordinator's checkpointing converges no matter
// how hostile the schedule. Independently, DelayMS > 0 injects a seeded
// per-trial result latency in [0, DelayMS] milliseconds — a slow link, not
// a failure — which exercises the latency-aware lease policy without ever
// changing bytes.
type ChaosSpec struct {
	Seed       uint64 `json:"seed,omitempty"`
	KillAfter  int    `json:"killAfter,omitempty"`
	StallPct   int    `json:"stallPct,omitempty"`
	Disconnect int    `json:"disconnect,omitempty"`
	DelayMS    int    `json:"delayMS,omitempty"`
	// CorruptPct is the percent chance an incarnation corrupts one result
	// frame in flight (then severs its transport), exercising the CRC32
	// frame check end to end.
	CorruptPct int `json:"corruptPct,omitempty"`
	// CoordKill is coordinator-side chaos: SIGKILL the coordinator process
	// itself after this many trials have been checkpointed to the run
	// journal. It requires -checkpoint and is ignored by workers.
	CoordKill int `json:"coordKill,omitempty"`
}

// Enabled reports whether the spec injects any fault (worker- or
// coordinator-side).
func (c ChaosSpec) Enabled() bool {
	return c.KillAfter > 0 || c.StallPct > 0 || c.Disconnect > 0 || c.DelayMS > 0 || c.CorruptPct > 0 || c.CoordKill > 0
}

// String renders the spec in the flag syntax ParseChaos accepts.
func (c ChaosSpec) String() string {
	if !c.Enabled() {
		return ""
	}
	parts := []string{fmt.Sprintf("seed=%d", c.Seed)}
	if c.KillAfter > 0 {
		parts = append(parts, fmt.Sprintf("killafter=%d", c.KillAfter))
	}
	if c.StallPct > 0 {
		parts = append(parts, fmt.Sprintf("stall=%d", c.StallPct))
	}
	if c.Disconnect > 0 {
		parts = append(parts, fmt.Sprintf("disconnect=%d", c.Disconnect))
	}
	if c.DelayMS > 0 {
		parts = append(parts, fmt.Sprintf("delay=%d", c.DelayMS))
	}
	if c.CorruptPct > 0 {
		parts = append(parts, fmt.Sprintf("corrupt=%d", c.CorruptPct))
	}
	if c.CoordKill > 0 {
		parts = append(parts, fmt.Sprintf("coordkill=%d", c.CoordKill))
	}
	return strings.Join(parts, ",")
}

// ParseChaos parses a `seed=S,killafter=K,stall=P,disconnect=D,delay=MS`
// flag value. All keys are optional; an empty string disables chaos
// entirely.
func ParseChaos(s string) (ChaosSpec, error) {
	var c ChaosSpec
	if strings.TrimSpace(s) == "" {
		return c, nil
	}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		key, val, ok := strings.Cut(part, "=")
		if !ok {
			return c, fmt.Errorf("dist: chaos term %q is not key=value (known keys: seed, killafter, stall, disconnect, delay, corrupt, coordkill)", part)
		}
		switch key {
		case "seed":
			u, err := strconv.ParseUint(val, 10, 64)
			if err != nil {
				return c, fmt.Errorf("dist: chaos seed %q: %w", val, err)
			}
			c.Seed = u
		case "killafter":
			k, err := strconv.Atoi(val)
			if err != nil || k < 0 {
				return c, fmt.Errorf("dist: chaos killafter %q must be a non-negative integer", val)
			}
			c.KillAfter = k
		case "stall":
			p, err := strconv.Atoi(val)
			if err != nil || p < 0 || p > 100 {
				return c, fmt.Errorf("dist: chaos stall %q must be a percentage in [0, 100]", val)
			}
			c.StallPct = p
		case "disconnect":
			d, err := strconv.Atoi(val)
			if err != nil || d < 0 {
				return c, fmt.Errorf("dist: chaos disconnect %q must be a non-negative integer", val)
			}
			c.Disconnect = d
		case "delay":
			ms, err := strconv.Atoi(val)
			if err != nil || ms < 0 {
				return c, fmt.Errorf("dist: chaos delay %q must be a non-negative millisecond count", val)
			}
			c.DelayMS = ms
		case "corrupt":
			p, err := strconv.Atoi(val)
			if err != nil || p < 0 || p > 100 {
				return c, fmt.Errorf("dist: chaos corrupt %q must be a percentage in [0, 100]", val)
			}
			c.CorruptPct = p
		case "coordkill":
			k, err := strconv.Atoi(val)
			if err != nil || k < 0 {
				return c, fmt.Errorf("dist: chaos coordkill %q must be a non-negative integer", val)
			}
			c.CoordKill = k
		default:
			return c, fmt.Errorf("dist: unknown chaos key %q (known: seed, killafter, stall, disconnect, delay, corrupt, coordkill)", key)
		}
	}
	return c, nil
}

// FaultKind is what a worker incarnation does at its fault boundary.
type FaultKind int

const (
	// FaultNone lets the incarnation run to completion.
	FaultNone FaultKind = iota
	// FaultKill exits the process with ChaosExitCode.
	FaultKill
	// FaultStall stops heartbeats and hangs until killed, the injected
	// straggler the coordinator must detect by heartbeat loss.
	FaultStall
	// FaultDisconnect severs the worker's transport: a remote worker
	// closes its socket and redials as a fresh incarnation; a pipe worker
	// exits (to the coordinator, an identical signal).
	FaultDisconnect
	// FaultCorrupt flips bytes in one result frame after the CRC was
	// computed — the coordinator's reader sees a typed checksum failure —
	// then severs the transport like FaultDisconnect (there is no way to
	// resynchronize a stream past a lying body).
	FaultCorrupt
)

// Fault is one incarnation's planned failure: Kind fires once the
// incarnation has completed After trials (across all its leases). Delay,
// independently, is the incarnation's injected per-result link latency.
type Fault struct {
	Kind  FaultKind
	After int
	Delay time.Duration
}

// Plan derives the fault for worker incarnation number inc. It is a pure
// function of (c, inc). The terminal fault kinds are prioritized stall >
// kill > disconnect > corrupt, and the draws for the original kinds come
// first (corrupt's draw is appended last), so a chaos seed from before
// disconnect/delay/corrupt existed still produces the identical plan.
func (c ChaosSpec) Plan(inc int) Fault {
	if !c.Enabled() {
		return Fault{}
	}
	r := rng.New(rng.Derive(c.Seed, chaosTag, uint64(inc)))
	span := c.KillAfter
	if span < 1 {
		span = 1
	}
	after := 1 + r.Intn(span)
	var f Fault
	if c.StallPct > 0 && r.Intn(100) < c.StallPct {
		f = Fault{Kind: FaultStall, After: after}
	} else if c.KillAfter > 0 {
		f = Fault{Kind: FaultKill, After: after}
	} else if c.Disconnect > 0 {
		f = Fault{Kind: FaultDisconnect, After: 1 + r.Intn(c.Disconnect)}
	}
	if c.DelayMS > 0 {
		f.Delay = time.Duration(r.Intn(c.DelayMS+1)) * time.Millisecond
	}
	if c.CorruptPct > 0 && f.Kind == FaultNone && r.Intn(100) < c.CorruptPct {
		f.Kind = FaultCorrupt
		f.After = after
	}
	return f
}
