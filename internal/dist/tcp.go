package dist

import (
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// The TCP transport: the coordinator listens, remote workers dial in
// (`radiobfs work -connect host:port -token T`), and each connection passes
// the challenge/auth handshake (handshake.go) before it is parked for the
// coordinator to attach. Frames, leases, heartbeats, checkpointing, and the
// degradation ladder are byte-for-byte the pipe protocol's — only the
// carrier and the trust boundary change.

// ListenConfig tunes a TCP transport.
type ListenConfig struct {
	// Token is the shared secret workers must prove knowledge of; it is
	// required — an unauthenticated listener would execute whatever a
	// stray process submits.
	Token string
	// Version overrides the build's (protocol, code) versions in the
	// handshake; zero value = this build. Tests inject skews here.
	Version VersionInfo
	// HandshakeTimeout bounds a connection's challenge/auth exchange so a
	// dialed-but-silent peer cannot hold a handshake goroutine forever
	// (default 10s).
	HandshakeTimeout time.Duration
	// Log receives one line per accepted or rejected worker (default:
	// discard). Successful handshakes log the negotiated versions.
	Log io.Writer
}

// TCPTransport accepts, authenticates, and parks remote worker
// connections. It implements Transport; Spawn always reports "pending"
// because only a remote operator can start workers.
type TCPTransport struct {
	ln    net.Listener
	cfg   ListenConfig
	conns chan Conn
	// mu/closed order parking against Close: once closed is set no
	// handshake goroutine may park, so Close's drain leaves nothing behind.
	mu     sync.Mutex
	closed bool
	once   sync.Once
}

// Listen starts a TCP transport on addr (host:port; port 0 picks an
// ephemeral port, readable from Addr). The transport survives any number of
// Execute runs — a serve daemon can advertise one listener and let the same
// remote fleet drain successive jobs — and is released with Close.
func Listen(addr string, cfg ListenConfig) (*TCPTransport, error) {
	if cfg.Token == "" {
		return nil, fmt.Errorf("dist: a TCP listener requires a shared -token; refusing to accept unauthenticated workers")
	}
	if cfg.HandshakeTimeout <= 0 {
		cfg.HandshakeTimeout = 10 * time.Second
	}
	if cfg.Log == nil {
		cfg.Log = io.Discard
	}
	cfg.Version = cfg.Version.orBuild()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("dist: listen %s: %w", addr, err)
	}
	t := &TCPTransport{
		ln:    ln,
		cfg:   cfg,
		conns: make(chan Conn, 16),
	}
	go t.acceptLoop()
	return t, nil
}

// Addr is the bound listen address (the actual port when addr used :0).
func (t *TCPTransport) Addr() net.Addr { return t.ln.Addr() }

// Spawn implements Transport: a listener cannot start remote workers, so
// it reports pending; connections arrive on Accepts.
func (t *TCPTransport) Spawn() (Conn, error) { return nil, nil }

// Accepts implements Transport.
func (t *TCPTransport) Accepts() <-chan Conn { return t.conns }

// Close stops accepting and closes parked connections. Connections already
// attached to a coordinator are untouched.
func (t *TCPTransport) Close() error {
	var err error
	t.once.Do(func() {
		t.mu.Lock()
		t.closed = true
		t.mu.Unlock()
		err = t.ln.Close()
		// No handshake goroutine can park after closed is set, so this
		// drain leaves the channel empty for good.
		for {
			select {
			case c := <-t.conns:
				c.Kill()
			default:
				return
			}
		}
	})
	return err
}

// acceptLoop authenticates each inbound connection on its own goroutine so
// one slow handshake never blocks the next worker.
func (t *TCPTransport) acceptLoop() {
	for {
		c, err := t.ln.Accept()
		if err != nil {
			return // listener closed
		}
		go t.handshake(c)
	}
}

// handshake runs the server side of the challenge/auth exchange and parks
// the connection for the coordinator, or logs the typed rejection and
// closes it.
func (t *TCPTransport) handshake(c net.Conn) {
	peer := c.RemoteAddr().String()
	_ = c.SetDeadline(time.Now().Add(t.cfg.HandshakeTimeout))
	fr, fw := NewFrameReader(c), NewFrameWriter(c)
	nonce, err := newNonce()
	if err == nil {
		var v VersionInfo
		v, err = serverHandshake(fr, fw, t.cfg.Token, nonce, t.cfg.Version)
		if err == nil {
			_ = c.SetDeadline(time.Time{})
			fmt.Fprintf(t.cfg.Log, "dist: worker authenticated from %s (proto v%d, code %s)\n", peer, v.Proto, v.Code)
			conn := &tcpConn{c: c, fr: fr, fw: fw, peer: peer}
			t.mu.Lock()
			if t.closed {
				t.mu.Unlock()
				c.Close()
				return
			}
			select {
			case t.conns <- conn:
				t.mu.Unlock()
			default:
				// Park backlog full: drop the connection; the worker's
				// redial loop tries again once a slot drains.
				t.mu.Unlock()
				c.Close()
			}
			return
		}
	}
	fmt.Fprintf(t.cfg.Log, "dist: rejected worker from %s: %v\n", peer, err)
	c.Close()
}

// tcpConn is one authenticated remote worker connection.
type tcpConn struct {
	c    net.Conn
	fr   *FrameReader
	fw   *FrameWriter
	peer string
}

func (c *tcpConn) Write(m *Message) error { return c.fw.Write(m) }

func (c *tcpConn) Read() (*Message, error) { return c.fr.Read() }

// Kill closes the socket; the remote process survives and may reconnect as
// a fresh incarnation — exactly the behavior the revocation ladder wants.
func (c *tcpConn) Kill() { _ = c.c.Close() }

// Wait has nothing to reap for a socket; the peer's exit status is its own
// machine's business.
func (c *tcpConn) Wait() error {
	_ = c.c.Close()
	return nil
}

func (c *tcpConn) Peer() string { return c.peer }
