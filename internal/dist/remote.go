package dist

import (
	"errors"
	"fmt"
	"io"
	"net"
	"time"
)

// RemoteWorker is the dialing half of the TCP transport: `radiobfs work
// -connect host:port -token T`. It dials the coordinator, passes the
// challenge/auth handshake, and serves leases exactly like a pipe worker;
// when the connection drops it redials with capped exponential backoff and
// rejoins as a fresh incarnation (the coordinator already revoked and
// re-queued whatever it was holding, and the acked-slot checkpoint makes
// the rejoin loss-free).
type RemoteWorker struct {
	// Addr is the coordinator's listen address (host:port).
	Addr string
	// Token is the shared secret proven during the handshake.
	Token string
	// Persist keeps the worker alive after a coordinator finishes its run
	// (clean shutdown frame): it redials and waits for the next run — the
	// mode for draining successive jobs from a serve daemon's advertised
	// listener. Without it, a clean shutdown ends the worker.
	Persist bool
	// Retries bounds consecutive failed connection attempts (dial errors,
	// dropped handshakes) before the worker gives up (default 10). A
	// typed handshake rejection is terminal immediately — retrying cannot
	// fix a wrong token or a version skew.
	Retries int
	// BackoffBase/BackoffMax shape the capped exponential redial backoff
	// (defaults 100ms / 5s), reset by any successfully served connection.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// Log receives connection lifecycle lines (default: discard).
	Log io.Writer
	// Version overrides the build's handshake versions; zero = this
	// build. Tests inject skews here.
	Version VersionInfo
}

func (rw RemoteWorker) withDefaults() RemoteWorker {
	if rw.Retries <= 0 {
		rw.Retries = 10
	}
	if rw.BackoffBase <= 0 {
		rw.BackoffBase = 100 * time.Millisecond
	}
	if rw.BackoffMax <= 0 {
		rw.BackoffMax = 5 * time.Second
	}
	if rw.Log == nil {
		rw.Log = io.Discard
	}
	return rw
}

// Run serves the coordinator until a clean shutdown (nil; or the next run
// under Persist), a terminal handshake rejection (*RejectedError), or the
// retry budget is exhausted.
func (rw RemoteWorker) Run() error {
	rw = rw.withDefaults()
	fails := 0
	served := false
	backoff := func() time.Duration {
		d := rw.BackoffBase
		for i := 1; i < fails; i++ {
			d *= 2
			if d >= rw.BackoffMax {
				return rw.BackoffMax
			}
		}
		return d
	}
	for {
		err := rw.serveOnce()
		switch {
		case err == nil:
			fails = 0
			served = true
			if !rw.Persist {
				return nil
			}
			fmt.Fprintf(rw.Log, "dist worker: run complete; reconnecting to %s for the next one\n", rw.Addr)
		case err == errChaosDisconnect:
			// The fault plan severed the socket on purpose; rejoin
			// immediately as a fresh incarnation.
			fails = 0
			served = true
			fmt.Fprintf(rw.Log, "dist worker: chaos disconnect; redialing %s\n", rw.Addr)
		default:
			var rej *RejectedError
			if errors.As(err, &rej) {
				return err
			}
			if served && !rw.Persist {
				// A one-shot worker exists to serve one coordinator; once it
				// has served and the coordinator is unreachable, the run is
				// over — exit clean rather than burn retries against a
				// listener that is gone.
				fmt.Fprintf(rw.Log, "dist worker: %v; coordinator gone, treating the run as complete\n", err)
				return nil
			}
			fails++
			if fails > rw.Retries {
				return fmt.Errorf("dist worker: giving up on %s after %d consecutive failures: %w", rw.Addr, fails-1, err)
			}
			d := backoff()
			fmt.Fprintf(rw.Log, "dist worker: %v; redialing %s in %v (%d/%d)\n", err, rw.Addr, d, fails, rw.Retries)
			time.Sleep(d)
		}
	}
}

// serveOnce runs one connection lifecycle: dial, handshake, serve leases.
// nil means the coordinator ended the run cleanly (shutdown frame, or EOF
// after the run — a closed parked connection).
func (rw RemoteWorker) serveOnce() error {
	c, err := net.Dial("tcp", rw.Addr)
	if err != nil {
		return err
	}
	defer c.Close()
	fr, fw := NewFrameReader(c), NewFrameWriter(c)
	m, v, err := clientHandshake(fr, fw, rw.Token, rw.Version)
	if err == errParkedEOF {
		fmt.Fprintf(rw.Log, "dist worker: %v\n", err)
		return nil
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(rw.Log, "dist worker: authenticated to %s (proto v%d, code %s)\n", rw.Addr, v.Proto, v.Code)
	// The frame after the handshake arrives when the coordinator attaches
	// this connection to a worker slot: normally the hello, or shutdown if
	// the run ended while we were parked.
	switch m.Kind {
	case KindHello:
		if m.Hello == nil {
			return fmt.Errorf("dist worker: hello frame without a payload")
		}
	case KindShutdown:
		return nil
	default:
		return fmt.Errorf("dist worker: post-handshake frame is %q, want hello", m.Kind)
	}
	err = serveHello(fr, fw, m.Hello, true)
	if err == errShutdown || err == io.EOF {
		return nil
	}
	return err
}
