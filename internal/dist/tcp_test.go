package dist

import (
	"bytes"
	"os"
	"os/exec"
	"strings"
	"testing"
	"time"

	"repro/internal/spec"
)

// startRemoteWorkers launches n real worker processes (this test binary in
// dist-remote-worker mode) dialing addr with token, and returns a wait
// function collecting their exits.
func startRemoteWorkers(t *testing.T, n int, addr, token string) func() []error {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatalf("os.Executable: %v", err)
	}
	cmds := make([]*exec.Cmd, n)
	for i := range cmds {
		cmd := exec.Command(exe, "dist-remote-worker", addr, token)
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatalf("starting remote worker %d: %v", i, err)
		}
		cmds[i] = cmd
	}
	t.Cleanup(func() {
		for _, cmd := range cmds {
			if cmd.ProcessState == nil {
				_ = cmd.Process.Kill()
				_ = cmd.Wait()
			}
		}
	})
	return func() []error {
		errs := make([]error, n)
		for i, cmd := range cmds {
			errs[i] = cmd.Wait()
		}
		return errs
	}
}

// tcpExecute runs the spec over a loopback TCP transport with nw remote
// worker processes and returns the artifacts plus the coordinator log.
func tcpExecute(t *testing.T, f *spec.File, nw int, cfg Config) ([]byte, *syncBuffer) {
	t.Helper()
	var log syncBuffer
	tr, err := Listen("127.0.0.1:0", ListenConfig{Token: "s3cret", Log: &log})
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer tr.Close()
	wait := startRemoteWorkers(t, nw, tr.Addr().String(), "s3cret")
	cfg.Transport = tr
	cfg.Log = &log
	out, err := Execute(f, 0, spec.Options{}, cfg)
	if err != nil {
		t.Fatalf("Execute over TCP: %v\nlog: %s", err, log.Bytes())
	}
	// Shutdown frames ended the attached workers; closing the transport
	// releases any chaos-disconnected worker that redialed after the run
	// finished and is parked awaiting an attach that will never come.
	tr.Close()
	for i, werr := range wait() {
		if werr != nil {
			t.Errorf("remote worker %d exit: %v\nlog: %s", i, werr, log.Bytes())
		}
	}
	return artifactBytes(t, out), &log
}

// TestTCPExecuteMatchesInProcess: a sweep over real remote worker processes
// on the loopback TCP transport produces artifacts byte-identical to the
// in-process runner's.
func TestTCPExecuteMatchesInProcess(t *testing.T) {
	f := testFile()
	want := baseline(t, f)
	got, log := tcpExecute(t, f, 3, Config{Workers: 3})
	if !bytes.Equal(got, want) {
		t.Errorf("TCP artifacts differ from in-process run\nlog: %s", log.Bytes())
	}
	if !strings.Contains(log.String(), "worker authenticated from") {
		t.Errorf("coordinator log missing authentication lines: %s", log.String())
	}
}

// TestTCPChaosByteIdentity is the transport-level property test: across
// chaos seeds injecting mid-lease disconnects (workers drop the socket and
// redial as fresh incarnations) and per-trial link latency, the merged
// artifacts never change by a byte. Kill/stall chaos is exercised over the
// pipe transport, where the coordinator can respawn the process; over TCP a
// killed worker is simply gone, so the deterministic TCP chaos kinds are
// disconnect and delay.
func TestTCPChaosByteIdentity(t *testing.T) {
	f := testFile()
	want := baseline(t, f)
	for seed := uint64(1); seed <= 3; seed++ {
		got, log := tcpExecute(t, f, 3, Config{
			Workers:          3,
			LeaseSize:        3,
			Chaos:            ChaosSpec{Seed: seed, Disconnect: 3, DelayMS: 3},
			Heartbeat:        20 * time.Millisecond,
			HeartbeatTimeout: 500 * time.Millisecond,
			BackoffBase:      time.Millisecond,
		})
		if !bytes.Equal(got, want) {
			t.Errorf("chaos seed %d: TCP artifacts differ from unfaulted run\nlog: %s", seed, log.Bytes())
		}
	}
}

// TestTCPLatencyIsNotFailure: delay chaos slows every result without
// stopping heartbeats, so a latency-saturated worker must keep its leases —
// zero revocations — while the policy (unit-tested in policy_test.go)
// shrinks its grants; and the bytes never move.
func TestTCPLatencyIsNotFailure(t *testing.T) {
	f := testFile()
	rec := &leaseRecorder{}
	got, log := tcpExecute(t, f, 2, Config{
		Workers:          2,
		LeaseTarget:      100 * time.Millisecond,
		Chaos:            ChaosSpec{Seed: 7, DelayMS: 40},
		Heartbeat:        20 * time.Millisecond,
		HeartbeatTimeout: 2 * time.Second,
		Observer:         rec,
	})
	if !bytes.Equal(got, baseline(t, f)) {
		t.Errorf("latency-chaos artifacts differ from unfaulted run\nlog: %s", log.Bytes())
	}
	rec.mu.Lock()
	defer rec.mu.Unlock()
	if rec.revoked != 0 {
		t.Errorf("injected latency caused %d revocations (%q); a slow link must not read as a dead worker\nlog: %s",
			rec.revoked, rec.revokeRe, log.Bytes())
	}
}

// TestTCPWrongTokenRejected: a worker with the wrong token must be turned
// away with the typed badToken rejection and exit non-zero — while the run,
// served by correctly-authenticated workers, completes unaffected.
func TestTCPWrongTokenRejected(t *testing.T) {
	f := testFile()
	want := baseline(t, f)
	var log syncBuffer
	tr, err := Listen("127.0.0.1:0", ListenConfig{Token: "s3cret", Log: &log})
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer tr.Close()

	exe, err := os.Executable()
	if err != nil {
		t.Fatalf("os.Executable: %v", err)
	}
	var evilErr bytes.Buffer
	evil := exec.Command(exe, "dist-remote-worker", tr.Addr().String(), "wrong-token")
	evil.Stderr = &evilErr
	if err := evil.Start(); err != nil {
		t.Fatalf("starting wrong-token worker: %v", err)
	}

	wait := startRemoteWorkers(t, 2, tr.Addr().String(), "s3cret")
	out, err := Execute(f, 0, spec.Options{}, Config{Workers: 2, Transport: tr, Log: &log})
	if err != nil {
		t.Fatalf("Execute: %v\nlog: %s", err, log.Bytes())
	}
	if got := artifactBytes(t, out); !bytes.Equal(got, want) {
		t.Errorf("artifacts differ despite the rejected intruder\nlog: %s", log.Bytes())
	}
	for i, werr := range wait() {
		if werr != nil {
			t.Errorf("authenticated worker %d exit: %v", i, werr)
		}
	}
	evilWait := evil.Wait()
	if evilWait == nil {
		t.Error("wrong-token worker exited zero, want a rejection failure")
	}
	if !strings.Contains(evilErr.String(), "handshake rejected (badToken)") {
		t.Errorf("wrong-token worker stderr missing the typed rejection: %s", evilErr.String())
	}
	waitForLog(t, &log, "rejected worker from")
}

// TestTCPConnectWaitFallsBackInProcess: a listening coordinator nobody
// dials must not hang — after ConnectWait it finishes the sweep in-process
// with identical bytes and a warning.
func TestTCPConnectWaitFallsBackInProcess(t *testing.T) {
	f := testFile()
	want := baseline(t, f)
	var log syncBuffer
	tr, err := Listen("127.0.0.1:0", ListenConfig{Token: "s3cret", Log: &log})
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer tr.Close()
	start := time.Now()
	out, err := Execute(f, 0, spec.Options{}, Config{
		Workers:     2,
		Transport:   tr,
		ConnectWait: 300 * time.Millisecond,
		Log:         &log,
	})
	if err != nil {
		t.Fatalf("Execute: %v\nlog: %s", err, log.Bytes())
	}
	if got := artifactBytes(t, out); !bytes.Equal(got, want) {
		t.Error("fallback artifacts differ from in-process run")
	}
	if !strings.Contains(log.String(), "no remote worker connected") {
		t.Errorf("missing connect-wait warning; log: %s", log.String())
	}
	if waited := time.Since(start); waited < 300*time.Millisecond {
		t.Errorf("fell back after %v, before ConnectWait elapsed", waited)
	}
}
