package dist

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/harness"
	"repro/internal/spec"
)

// defaultHeartbeatMS is the worker heartbeat interval when the hello frame
// does not set one.
const defaultHeartbeatMS = 500

// Sentinel outcomes of one served connection.
var (
	// errShutdown: the coordinator ended the run cleanly.
	errShutdown = errors.New("dist worker: coordinator shutdown")
	// errChaosDisconnect: the incarnation's fault plan severed the
	// connection; a remote worker reconnects as a fresh incarnation.
	errChaosDisconnect = errors.New("dist worker: chaos disconnect")
	// errParkedEOF: an authenticated connection closed while parked, before
	// the coordinator attached it — the run ended without needing this
	// worker.
	errParkedEOF = errors.New("dist worker: connection closed while parked — the run ended before this worker was attached")
)

// ServeWorker runs the worker half of the protocol over (in, out) —
// normally the process's stdin/stdout under `radiobfs work`. It reads the
// hello, compiles the spec against the worker's own embedded registries,
// expands the identical canonical trial list the coordinator holds, and
// then serves leases until shutdown or EOF, streaming every result frame
// the moment its trial settles.
//
// Chaos faults are honored here: once the incarnation has completed its
// seeded number of trials, a kill plan exits the process with ChaosExitCode
// and a stall plan silences the heartbeat and hangs — after the triggering
// trial's result frame is already flushed, so injected failures never lose
// completed work. A disconnect plan severs the transport: over pipes that
// is indistinguishable from a kill, so it exits with ChaosExitCode too;
// remote workers instead drop the socket and redial (see RemoteWorker). A
// corrupt plan flips bytes in one result frame after its CRC32 was computed
// — the coordinator's reader reports a typed checksum failure — and then
// severs the transport the same way a disconnect does.
func ServeWorker(in io.Reader, out io.Writer) error {
	fr := NewFrameReader(in)
	fw := NewFrameWriter(out)
	m, err := fr.Read()
	if err != nil {
		return fmt.Errorf("dist worker: reading hello: %w", err)
	}
	if m.Kind != KindHello || m.Hello == nil {
		return fmt.Errorf("dist worker: first frame is %q, want hello", m.Kind)
	}
	err = serveHello(fr, fw, m.Hello, false)
	if err == errShutdown || err == io.EOF || err == errChaosDisconnect {
		// errChaosDisconnect is unreachable over pipes (serveHello exits),
		// but mapping it keeps the contract obvious.
		return nil
	}
	return err
}

// serveHello is the shared post-hello worker loop: compile, ready,
// heartbeat, then serve leases until the connection ends. remote selects
// how a chaos disconnect manifests (severed socket vs process exit).
func serveHello(fr *FrameReader, fw *FrameWriter, h *Hello, remote bool) error {
	f, err := spec.Parse(bytes.NewReader(h.Spec))
	if err != nil {
		return fmt.Errorf("dist worker: %w", err)
	}
	scs, err := spec.Compile(f, spec.Options{Quick: h.Quick})
	if err != nil {
		return fmt.Errorf("dist worker: %w", err)
	}
	root := h.Root
	if root == 0 {
		root = f.RootSeed()
	}
	runner := harness.Runner{Root: root, ShardMinN: h.ShardMinN, DenseMin: h.DenseMin}
	st := runner.Stream(scs...)
	total := len(st.Trials())
	fault := h.Chaos.Plan(h.Worker)
	if err := fw.Write(&Message{Kind: KindReady}); err != nil {
		return err
	}

	// Heartbeats ride a timer goroutine sharing the frame writer's lock
	// with the result stream; stopHB silences it exactly once (the stall
	// fault and the normal return paths both go through it).
	hbStop := make(chan struct{})
	stopped := false
	stopHB := func() {
		if !stopped {
			stopped = true
			close(hbStop)
		}
	}
	defer stopHB()
	interval := time.Duration(h.HeartbeatMS) * time.Millisecond
	if interval <= 0 {
		interval = defaultHeartbeatMS * time.Millisecond
	}
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				// A failed write means the coordinator is gone; the main
				// loop notices on its next read.
				_ = fw.Write(&Message{Kind: KindHeartbeat})
			case <-hbStop:
				return
			}
		}
	}()

	completed := 0
	disconnected := false
	for {
		m, err := fr.Read()
		if err == io.EOF {
			return io.EOF // coordinator closed the connection
		}
		if err != nil {
			return fmt.Errorf("dist worker: %w", err)
		}
		switch m.Kind {
		case KindLease:
			l := m.Lease
			if l == nil || l.Start < 0 || l.End > total || l.Start > l.End {
				return fmt.Errorf("dist worker: bad lease frame %+v over %d trials", m.Lease, total)
			}
			skip := make(map[int]bool, len(l.Skip))
			for _, s := range l.Skip {
				skip[s] = true
			}
			// A disconnect fault must unwind cleanly through the trial
			// stream (unlike kill/stall, the process lives on), so it
			// cancels this context between trials.
			ctx, cancel := context.WithCancel(context.Background())
			var writeErr error
			err := st.RunRange(ctx, l.Start, l.End,
				func(slot int) bool { return skip[slot] },
				func(ref harness.TrialRef, res harness.Result) {
					if writeErr != nil || disconnected {
						return
					}
					if fault.Delay > 0 {
						// Injected link latency: results arrive late, the
						// coordinator's EWMA sees a slower link, but the
						// heartbeat goroutine keeps the lease alive and the
						// bytes never change.
						time.Sleep(fault.Delay)
					}
					// A corrupt fault damages the frame AFTER the planned
					// number of good ones — never the first — so every
					// incarnation still lands completed work and chaos
					// sweeps converge even at corrupt=100.
					corrupting := fault.Kind == FaultCorrupt && completed >= fault.After
					if corrupting {
						fw.CorruptNext()
					}
					writeErr = fw.Write(&Message{
						Kind:     KindResult,
						LeaseID:  l.ID,
						Slot:     ref.Slot,
						Seed:     ref.Trial.Seed,
						Metrics:  res.Metrics,
						TrialErr: res.Err,
					})
					completed++
					if corrupting {
						// The stream cannot resynchronize past a lying body,
						// so a corrupting worker severs like a disconnect:
						// pipes exit, remote drops the socket and redials.
						if !remote {
							os.Exit(ChaosExitCode)
						}
						disconnected = true
						cancel()
						return
					}
					if fault.Kind != FaultNone && completed >= fault.After {
						switch fault.Kind {
						case FaultKill:
							os.Exit(ChaosExitCode)
						case FaultStall:
							// Wedge silently: heartbeats stop but the process
							// stays alive until the coordinator's liveness
							// check kills it. A timer loop, not `select {}` —
							// with every goroutine blocked the runtime would
							// call it a deadlock and crash, turning the
							// injected stall into a plain kill.
							stopHB()
							for {
								time.Sleep(time.Hour)
							}
						case FaultDisconnect:
							if !remote {
								// Over pipes a severed transport and a dead
								// process look identical to the coordinator.
								os.Exit(ChaosExitCode)
							}
							disconnected = true
							cancel()
						}
					}
				})
			cancel()
			if disconnected {
				return errChaosDisconnect
			}
			if err != nil {
				return fmt.Errorf("dist worker: lease %d: %w", l.ID, err)
			}
			if writeErr != nil {
				return fmt.Errorf("dist worker: lease %d: %w", l.ID, writeErr)
			}
			if err := fw.Write(&Message{Kind: KindLeaseDone, LeaseID: l.ID}); err != nil {
				return err
			}
		case KindShutdown:
			return errShutdown
		default:
			return fmt.Errorf("dist worker: unexpected %q frame", m.Kind)
		}
	}
}
