package dist

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/harness"
	"repro/internal/journal"
	"repro/internal/spec"
)

// checkpointConfig is the shared fast-failure-detection config for resume
// tests.
func checkpointConfig(t *testing.T, dir string, log *bytes.Buffer) Config {
	t.Helper()
	return Config{
		Workers:          3,
		LeaseSize:        3,
		Command:          workerCommand(t, "dist-worker"),
		Heartbeat:        20 * time.Millisecond,
		HeartbeatTimeout: 200 * time.Millisecond,
		BackoffBase:      time.Millisecond,
		CheckpointDir:    dir,
		Log:              log,
	}
}

// TestResumeByteIdentity is the tentpole property: interrupt a checkpointed
// run mid-sweep, rerun against the same directory, and the final artifacts
// are byte-identical to an uninterrupted run — with the completed prefix
// replayed from the journal, not re-executed.
func TestResumeByteIdentity(t *testing.T) {
	f := testFile()
	want := baseline(t, f)
	dir := t.TempDir()

	// First run: cancel once 5 trials have settled. The error is the
	// context's; the journal keeps what was acked before the cut.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var settled atomic.Int64
	var log1 bytes.Buffer
	_, err := Execute(f, 0, spec.Options{
		Ctx: ctx,
		OnTrial: func(harness.Result) {
			if settled.Add(1) == 5 {
				cancel()
			}
		},
	}, checkpointConfig(t, dir, &log1))
	if err == nil {
		t.Fatalf("interrupted run returned no error (log: %s)", log1.Bytes())
	}
	if settled.Load() < 5 {
		t.Fatalf("only %d trials settled before interruption", settled.Load())
	}

	// Second run: must refuse to redo journaled work and still produce the
	// uninterrupted bytes.
	var resumed atomic.Int64
	var log2 bytes.Buffer
	out, err := Execute(f, 0, spec.Options{
		OnTrial: func(harness.Result) { resumed.Add(1) },
	}, checkpointConfig(t, dir, &log2))
	if err != nil {
		t.Fatalf("resumed run: %v\nlog: %s", err, log2.Bytes())
	}
	if got := artifactBytes(t, out); !bytes.Equal(got, want) {
		t.Errorf("resumed artifacts differ from uninterrupted run\ngot:\n%s\nwant:\n%s", got, want)
	}
	if !bytes.Contains(log2.Bytes(), []byte("resumed")) {
		t.Errorf("resume log missing the replay line: %s", log2.Bytes())
	}
	// Replayed slots must not re-fire OnTrial — they already fired before
	// the crash, and the serve layer's SSE stream would double-report.
	runner := harness.Runner{}
	total := int64(len(runner.ExpandAll(mustCompile(t, f)...)))
	if resumed.Load() >= total {
		t.Errorf("resume re-settled %d of %d trials; journaled slots should be replayed, not re-run", resumed.Load(), total)
	}
}

func mustCompile(t *testing.T, f *spec.File) []*harness.Scenario {
	t.Helper()
	scs, err := spec.Compile(f, spec.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return scs
}

// TestResumeCompletedRun: rerunning a finished checkpoint replays
// everything, spawns no worker, re-executes nothing, and produces the same
// bytes.
func TestResumeCompletedRun(t *testing.T) {
	f := testFile()
	want := baseline(t, f)
	dir := t.TempDir()
	var log1 bytes.Buffer
	if _, err := Execute(f, 0, spec.Options{}, checkpointConfig(t, dir, &log1)); err != nil {
		t.Fatalf("first run: %v\nlog: %s", err, log1.Bytes())
	}

	var rerun atomic.Int64
	var log2 bytes.Buffer
	out, err := Execute(f, 0, spec.Options{
		OnTrial: func(harness.Result) { rerun.Add(1) },
	}, checkpointConfig(t, dir, &log2))
	if err != nil {
		t.Fatalf("second run: %v\nlog: %s", err, log2.Bytes())
	}
	if got := artifactBytes(t, out); !bytes.Equal(got, want) {
		t.Errorf("replayed artifacts differ from original run")
	}
	if n := rerun.Load(); n != 0 {
		t.Errorf("completed checkpoint re-ran %d trials; want 0", n)
	}
	if !bytes.Contains(log2.Bytes(), []byte("already holds all")) {
		t.Errorf("second run log missing the nothing-to-re-run line: %s", log2.Bytes())
	}
}

// TestCheckpointIdentityRefusal: a checkpoint directory from a different
// run — different seed, spec, or mode — is a typed refusal, not a silent
// merge of foreign results.
func TestCheckpointIdentityRefusal(t *testing.T) {
	f := testFile()
	dir := t.TempDir()
	var log bytes.Buffer
	if _, err := Execute(f, 0, spec.Options{}, checkpointConfig(t, dir, &log)); err != nil {
		t.Fatalf("seeding run: %v\nlog: %s", err, log.Bytes())
	}

	// Different root seed.
	_, err := Execute(f, 99999, spec.Options{}, checkpointConfig(t, dir, &log))
	var mm *CheckpointMismatchError
	if !errors.As(err, &mm) {
		t.Fatalf("foreign root: err = %v, want *CheckpointMismatchError", err)
	}
	if mm.Field != "root seed" {
		t.Errorf("mismatch field = %q, want root seed", mm.Field)
	}

	// Different spec document.
	f2 := testFile()
	f2.Scenarios[0].Trials++
	if _, err := Execute(f2, 0, spec.Options{}, checkpointConfig(t, dir, &log)); !errors.As(err, &mm) {
		t.Fatalf("foreign spec: err = %v, want *CheckpointMismatchError", err)
	}

	// Quick mode flipped.
	if _, err := Execute(f, 0, spec.Options{Quick: true}, checkpointConfig(t, dir, &log)); !errors.As(err, &mm) {
		t.Fatalf("quick flip: err = %v, want *CheckpointMismatchError", err)
	}

	// The refusals must leave the journal untouched: the original run still
	// resumes cleanly.
	out, err := Execute(f, 0, spec.Options{}, checkpointConfig(t, dir, &log))
	if err != nil {
		t.Fatalf("original identity after refusals: %v", err)
	}
	if got := artifactBytes(t, out); !bytes.Equal(got, baseline(t, f)) {
		t.Errorf("artifacts drifted after refused resumes")
	}
}

// TestCheckpointTornTailAndCorruption: a torn tail (the crash residue) is
// healed silently; interior damage is the typed journal error.
func TestCheckpointTornTailAndCorruption(t *testing.T) {
	f := testFile()
	want := baseline(t, f)
	dir := t.TempDir()
	var log bytes.Buffer
	if _, err := Execute(f, 0, spec.Options{}, checkpointConfig(t, dir, &log)); err != nil {
		t.Fatalf("seeding run: %v\nlog: %s", err, log.Bytes())
	}
	path := filepath.Join(dir, "run.journal")
	intact, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Torn tail: a partial frame appended by a crash mid-write. The resume
	// truncates it, re-runs the slots it would have covered, and the bytes
	// do not change.
	if err := os.WriteFile(path, append(append([]byte(nil), intact...), 0x00, 0x00, 0x00, 0x09, 0xab), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := Execute(f, 0, spec.Options{}, checkpointConfig(t, dir, &log))
	if err != nil {
		t.Fatalf("resume over torn tail: %v\nlog: %s", err, log.Bytes())
	}
	if got := artifactBytes(t, out); !bytes.Equal(got, want) {
		t.Errorf("torn-tail resume changed artifacts")
	}

	// Interior damage: flip a payload byte of the first record (the second
	// frame — the header is the first) with a dozen intact records after it.
	// Flipping a blind mid-file offset would be flaky: hitting a length byte
	// can make the frame overshoot EOF, which is legitimately torn-tail
	// territory, not corruption.
	mut := append([]byte(nil), intact...)
	headerLen := binary.BigEndian.Uint32(mut[0:4])
	rec1 := 8 + int(headerLen) // offset of the first record frame
	mut[rec1+8] ^= 0xff        // first payload byte: CRC now fails, extent intact
	if err := os.WriteFile(path, mut, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Execute(f, 0, spec.Options{}, checkpointConfig(t, dir, &log)); !journal.IsCorrupt(err) {
		t.Fatalf("interior damage: err = %v, want journal corruption error", err)
	}
}

// TestCheckpointedChaosByteIdentity: the durability layer composes with
// worker chaos — crashes, stalls, and corrupted frames all land on the
// journal path and the artifacts still never change by a byte.
func TestCheckpointedChaosByteIdentity(t *testing.T) {
	f := testFile()
	want := baseline(t, f)
	for _, chaos := range []ChaosSpec{
		{Seed: 2, KillAfter: 2, StallPct: 20},
		{Seed: 4, CorruptPct: 100},
	} {
		var log bytes.Buffer
		cfg := checkpointConfig(t, t.TempDir(), &log)
		cfg.Chaos = chaos
		out, err := Execute(f, 0, spec.Options{}, cfg)
		if err != nil {
			t.Fatalf("chaos %v: %v\nlog: %s", chaos, err, log.Bytes())
		}
		if got := artifactBytes(t, out); !bytes.Equal(got, want) {
			t.Errorf("chaos %v: artifacts differ from unfaulted run\nlog: %s", chaos, log.Bytes())
		}
	}
}

// TestCorruptChaosByteIdentity: every incarnation corrupts a result frame
// in flight (corrupt=100) and the coordinator — detecting each via the
// CRC32 typed error, revoking, respawning — still merges the exact bytes,
// without any checkpoint configured.
func TestCorruptChaosByteIdentity(t *testing.T) {
	f := testFile()
	want := baseline(t, f)
	for seed := uint64(1); seed <= 3; seed++ {
		var log bytes.Buffer
		out, err := Execute(f, 0, spec.Options{}, Config{
			Workers:          3,
			LeaseSize:        3,
			Command:          workerCommand(t, "dist-worker"),
			Chaos:            ChaosSpec{Seed: seed, CorruptPct: 100},
			Heartbeat:        20 * time.Millisecond,
			HeartbeatTimeout: 200 * time.Millisecond,
			BackoffBase:      time.Millisecond,
			Log:              &log,
		})
		if err != nil {
			t.Fatalf("corrupt chaos seed %d: %v\nlog: %s", seed, err, log.Bytes())
		}
		if got := artifactBytes(t, out); !bytes.Equal(got, want) {
			t.Errorf("corrupt chaos seed %d: artifacts differ from clean run\nlog: %s", seed, log.Bytes())
		}
	}
}
