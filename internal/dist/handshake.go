package dist

import (
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"

	"repro/internal/spec"
)

// The socket handshake. Pipe workers are fork/exec'd from the coordinator's
// own binary, so identity and compatibility are guaranteed by construction;
// a worker dialing in over TCP could be anyone running anything, so before
// the hello frame crosses the wire both sides prove two things:
//
//	challenge  (coordinator → worker): fresh nonce + coordinator versions
//	auth       (worker → coordinator): HMAC-SHA256(token, nonce) + worker versions
//	hello | reject (coordinator → worker)
//
// Authentication: the worker MACs the connection's nonce under the shared
// token. The nonce is random per connection and never reused, so a captured
// auth frame replayed on a fresh connection echoes a stale nonce and is
// rejected as a replay without ever consulting the MAC.
//
// Version negotiation: both sides exchange ProtoVersion and
// spec.CodeVersion and require exact equality. A protocol skew would
// misparse frames; a code skew could expand a different trial list and
// silently corrupt merged artifacts — each is a typed, actionable
// rejection. The coordinator's per-result seed-echo check (coord.go)
// remains the runtime backstop for binaries that lie about their version.

// VersionInfo is one side's (protocol, code) version pair. The zero value
// means "this build": ProtoVersion and spec.CodeVersion().
type VersionInfo struct {
	Proto int
	Code  string
}

// orBuild resolves the zero value to the running build's versions.
func (v VersionInfo) orBuild() VersionInfo {
	if v.Proto == 0 {
		v.Proto = ProtoVersion
	}
	if v.Code == "" {
		v.Code = spec.CodeVersion()
	}
	return v
}

// newNonce returns a fresh hex-encoded 16-byte challenge nonce.
func newNonce() (string, error) {
	var b [16]byte
	if _, err := io.ReadFull(rand.Reader, b[:]); err != nil {
		return "", fmt.Errorf("dist: challenge nonce: %w", err)
	}
	return hex.EncodeToString(b[:]), nil
}

// authMAC computes hex(HMAC-SHA256(token, nonce)).
func authMAC(token, nonce string) string {
	h := hmac.New(sha256.New, []byte(token))
	h.Write([]byte(nonce))
	return hex.EncodeToString(h.Sum(nil))
}

// serverHandshake runs the coordinator side over a fresh worker connection:
// it issues the challenge, verifies the auth response, and either returns
// the worker's negotiated versions or writes a typed reject frame and
// returns a *RejectedError describing it. Verification order — replay,
// token, protocol, code — keeps each failure's message specific to its
// actual cause.
func serverHandshake(fr *FrameReader, fw *FrameWriter, token, nonce string, v VersionInfo) (VersionInfo, error) {
	v = v.orBuild()
	if err := fw.Write(&Message{Kind: KindChallenge, Challenge: &Challenge{Nonce: nonce, Proto: v.Proto, Code: v.Code}}); err != nil {
		return VersionInfo{}, err
	}
	m, err := fr.Read()
	if err != nil {
		return VersionInfo{}, fmt.Errorf("dist: reading auth response: %w", err)
	}
	if m.Kind != KindAuth || m.Auth == nil {
		return VersionInfo{}, reject(fw, RejectBadToken,
			fmt.Sprintf("first worker frame is %q, want auth — is this a radiobfs worker?", m.Kind))
	}
	a := m.Auth
	if a.Nonce != nonce {
		return VersionInfo{}, reject(fw, RejectReplay,
			"auth echoed a stale challenge nonce — replayed hello; each connection must answer the nonce it was just issued")
	}
	if !hmac.Equal([]byte(a.MAC), []byte(authMAC(token, nonce))) {
		return VersionInfo{}, reject(fw, RejectBadToken,
			"HMAC does not verify — start the worker with the coordinator's exact -token value")
	}
	if a.Proto != v.Proto {
		return VersionInfo{}, reject(fw, RejectProtoVersion,
			fmt.Sprintf("worker speaks frame protocol v%d, coordinator v%d — rebuild both sides from the same commit", a.Proto, v.Proto))
	}
	if a.Code != v.Code {
		return VersionInfo{}, reject(fw, RejectCodeVersion,
			fmt.Sprintf("worker built at %s, coordinator at %s — trial expansion could diverge; deploy identical binaries", a.Code, v.Code))
	}
	return VersionInfo{Proto: a.Proto, Code: a.Code}, nil
}

// reject writes the typed rejection frame and returns the matching error.
// The write is best-effort: the worker may already be gone.
func reject(fw *FrameWriter, code RejectCode, msg string) error {
	_ = fw.Write(&Message{Kind: KindReject, Reject: &Reject{Code: code, Message: msg}})
	return &RejectedError{Code: code, Message: msg}
}

// clientHandshake runs the worker side: it answers the coordinator's
// challenge with the token MAC and this build's versions, then waits for
// the verdict. The next frame after a successful handshake is the hello,
// which is returned to the caller; a reject frame surfaces as a
// *RejectedError.
func clientHandshake(fr *FrameReader, fw *FrameWriter, token string, v VersionInfo) (*Message, VersionInfo, error) {
	v = v.orBuild()
	m, err := fr.Read()
	if err != nil {
		return nil, VersionInfo{}, fmt.Errorf("dist worker: reading challenge: %w", err)
	}
	if m.Kind != KindChallenge || m.Challenge == nil {
		return nil, VersionInfo{}, fmt.Errorf("dist worker: first frame is %q, want challenge — is this a radiobfs coordinator?", m.Kind)
	}
	ch := m.Challenge
	if err := fw.Write(&Message{Kind: KindAuth, Auth: &Auth{
		Nonce: ch.Nonce,
		MAC:   authMAC(token, ch.Nonce),
		Proto: v.Proto,
		Code:  v.Code,
	}}); err != nil {
		return nil, VersionInfo{}, err
	}
	m, err = fr.Read()
	if err == io.EOF {
		// Authenticated, parked, then closed without a verdict: the run ended
		// (or the transport shut down) before the coordinator attached this
		// connection. Distinct from a mid-handshake failure so the worker can
		// treat it as a clean end rather than a retryable error.
		return nil, VersionInfo{}, errParkedEOF
	}
	if err != nil {
		return nil, VersionInfo{}, fmt.Errorf("dist worker: reading handshake verdict: %w", err)
	}
	if m.Kind == KindReject && m.Reject != nil {
		return nil, VersionInfo{}, &RejectedError{Code: m.Reject.Code, Message: m.Reject.Message}
	}
	return m, VersionInfo{Proto: ch.Proto, Code: ch.Code}, nil
}
