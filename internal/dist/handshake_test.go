package dist

import (
	"bytes"
	"errors"
	"flag"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncBuffer is a mutex-guarded log sink: the TCP transport writes its log
// from per-connection handshake goroutines, so tests sharing one buffer
// between the transport and their own assertions must serialize access.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

func (s *syncBuffer) Bytes() []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]byte(nil), s.b.Bytes()...)
}

// waitForLog polls until the log contains substr; transport log lines land
// asynchronously with respect to the client seeing its verdict frame.
func waitForLog(t *testing.T, log *syncBuffer, substr string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !strings.Contains(log.String(), substr) {
		if time.Now().After(deadline) {
			t.Fatalf("log never contained %q:\n%s", substr, log.String())
		}
		time.Sleep(2 * time.Millisecond)
	}
}

var updateHandshake = flag.Bool("update-handshake", false, "rewrite testdata/handshake goldens from the live rejection messages")

// testVersion pins both handshake sides to fixed versions so rejection
// messages are deterministic regardless of how the test binary was built.
var testVersion = VersionInfo{Proto: ProtoVersion, Code: "testbuild"}

// listenTest starts a token-guarded TCP transport with pinned versions.
func listenTest(t *testing.T, log *syncBuffer) *TCPTransport {
	t.Helper()
	tr, err := Listen("127.0.0.1:0", ListenConfig{Token: "s3cret", Version: testVersion, Log: log})
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	t.Cleanup(func() { tr.Close() })
	return tr
}

// dialHandshake runs the worker side of the handshake against addr and
// returns its outcome.
func dialHandshake(t *testing.T, addr, token string, v VersionInfo) (*Message, VersionInfo, error) {
	t.Helper()
	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial %s: %v", addr, err)
	}
	defer c.Close()
	_ = c.SetDeadline(time.Now().Add(5 * time.Second))
	return clientHandshake(NewFrameReader(c), NewFrameWriter(c), token, v)
}

// checkGolden pins got against testdata/handshake/<name>.golden. Rejection
// messages are operator-facing diagnostics; the goldens keep them from
// silently regressing into something vague.
func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", "handshake", name+".golden")
	if *updateHandshake {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got+"\n"), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden (run with -update-handshake to create it): %v", err)
	}
	if got+"\n" != string(want) {
		t.Errorf("%s drifted from its golden:\ngot:  %s\nwant: %s", name, got, strings.TrimSuffix(string(want), "\n"))
	}
}

// TestHandshakeRejections drives the full TCP handshake into each typed
// rejection: the client must surface a *RejectedError with the right code,
// the message must match its golden, and the transport must log the
// rejection without ever parking the connection.
func TestHandshakeRejections(t *testing.T) {
	cases := []struct {
		name    string
		token   string
		version VersionInfo
		want    RejectCode
	}{
		{"wrong_token", "not-the-token", testVersion, RejectBadToken},
		{"stale_proto", "s3cret", VersionInfo{Proto: ProtoVersion - 1, Code: "testbuild"}, RejectProtoVersion},
		{"stale_code", "s3cret", VersionInfo{Proto: ProtoVersion, Code: "oldbuild"}, RejectCodeVersion},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var log syncBuffer
			tr := listenTest(t, &log)
			_, _, err := dialHandshake(t, tr.Addr().String(), tc.token, tc.version)
			var rej *RejectedError
			if !errors.As(err, &rej) {
				t.Fatalf("handshake error = %v, want *RejectedError", err)
			}
			if rej.Code != tc.want {
				t.Fatalf("reject code = %q, want %q", rej.Code, tc.want)
			}
			checkGolden(t, tc.name, rej.Error())
			select {
			case <-tr.Accepts():
				t.Fatal("rejected connection was parked for the coordinator")
			default:
			}
			waitForLog(t, &log, "rejected worker from")
		})
	}
}

// TestHandshakeReplayRejected: an auth frame that echoes a nonce other than
// the one this connection was just issued — a captured handshake replayed —
// must be rejected before the MAC is even consulted.
func TestHandshakeReplayRejected(t *testing.T) {
	var log syncBuffer
	tr := listenTest(t, &log)
	c, err := net.Dial("tcp", tr.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()
	_ = c.SetDeadline(time.Now().Add(5 * time.Second))
	fr, fw := NewFrameReader(c), NewFrameWriter(c)
	m, err := fr.Read()
	if err != nil || m.Kind != KindChallenge || m.Challenge == nil {
		t.Fatalf("challenge frame = %+v, %v", m, err)
	}
	// Replay a recorded auth: valid MAC, but over a stale nonce.
	stale := "00112233445566778899aabbccddeeff"
	if err := fw.Write(&Message{Kind: KindAuth, Auth: &Auth{
		Nonce: stale,
		MAC:   authMAC("s3cret", stale),
		Proto: testVersion.Proto,
		Code:  testVersion.Code,
	}}); err != nil {
		t.Fatalf("writing replayed auth: %v", err)
	}
	m, err = fr.Read()
	if err != nil || m.Kind != KindReject || m.Reject == nil {
		t.Fatalf("verdict frame = %+v, %v, want reject", m, err)
	}
	if m.Reject.Code != RejectReplay {
		t.Fatalf("reject code = %q, want %q", m.Reject.Code, RejectReplay)
	}
	rej := &RejectedError{Code: m.Reject.Code, Message: m.Reject.Message}
	checkGolden(t, "replayed_hello", rej.Error())
}

// TestHandshakeGarbageRejected: a peer that is not a radiobfs worker at all
// (its first frame is not auth) gets a typed rejection, not a hang or a
// parse panic.
func TestHandshakeGarbageRejected(t *testing.T) {
	var log syncBuffer
	tr := listenTest(t, &log)
	c, err := net.Dial("tcp", tr.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()
	_ = c.SetDeadline(time.Now().Add(5 * time.Second))
	fr, fw := NewFrameReader(c), NewFrameWriter(c)
	if _, err := fr.Read(); err != nil {
		t.Fatalf("challenge: %v", err)
	}
	if err := fw.Write(&Message{Kind: KindHeartbeat}); err != nil {
		t.Fatalf("writing bogus frame: %v", err)
	}
	m, err := fr.Read()
	if err != nil || m.Kind != KindReject || m.Reject == nil {
		t.Fatalf("verdict frame = %+v, %v, want reject", m, err)
	}
	if m.Reject.Code != RejectBadToken {
		t.Fatalf("reject code = %q, want %q", m.Reject.Code, RejectBadToken)
	}
	checkGolden(t, "not_a_worker", (&RejectedError{Code: m.Reject.Code, Message: m.Reject.Message}).Error())
}

// TestHandshakeSuccess: matching token and versions authenticate; the
// transport parks the connection, logs the negotiated versions, and the
// worker's next frame is whatever the coordinator sends after attaching
// (here: an immediate shutdown).
func TestHandshakeSuccess(t *testing.T) {
	var log syncBuffer
	tr := listenTest(t, &log)
	type outcome struct {
		m   *Message
		v   VersionInfo
		err error
	}
	res := make(chan outcome, 1)
	go func() {
		m, v, err := dialHandshake(t, tr.Addr().String(), "s3cret", testVersion)
		res <- outcome{m, v, err}
	}()
	var conn Conn
	select {
	case conn = <-tr.Accepts():
	case <-time.After(5 * time.Second):
		t.Fatal("authenticated connection never parked")
	}
	if err := conn.Write(&Message{Kind: KindShutdown}); err != nil {
		t.Fatalf("writing shutdown: %v", err)
	}
	o := <-res
	if o.err != nil {
		t.Fatalf("client handshake: %v", o.err)
	}
	if o.m.Kind != KindShutdown {
		t.Fatalf("post-handshake frame = %q, want shutdown", o.m.Kind)
	}
	if o.v != testVersion {
		t.Fatalf("negotiated versions = %+v, want %+v", o.v, testVersion)
	}
	if !strings.Contains(log.String(), "worker authenticated from") ||
		!strings.Contains(log.String(), fmt.Sprintf("proto v%d, code testbuild", ProtoVersion)) {
		t.Errorf("transport log missing the negotiated-versions line: %s", log.String())
	}
	conn.Kill()
}
