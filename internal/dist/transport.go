package dist

import (
	"fmt"
	"io"
	"os"
	"os/exec"
)

// Transport abstracts how the coordinator obtains worker connections, so
// the lease protocol, checkpointing, and failure ladder are written once
// against Conn and run unchanged over fork/exec'd pipe workers and remote
// TCP workers.
type Transport interface {
	// Spawn synchronously starts the next worker and returns its
	// connection. Listener transports cannot start remote processes; they
	// return (nil, nil) and deliver connections on Accepts as remote
	// workers dial in and pass the handshake.
	Spawn() (Conn, error)
	// Accepts is the channel asynchronously established connections arrive
	// on, or nil for synchronous transports.
	Accepts() <-chan Conn
	// Close releases the transport (stops listening, closes parked
	// connections). It does not touch connections already handed out.
	Close() error
}

// Conn is one worker connection: the coordinator's framed, killable view of
// a single worker incarnation, whatever carries the bytes.
type Conn interface {
	// Write sends one frame to the worker. Safe for concurrent use.
	Write(m *Message) error
	// Read returns the worker's next frame. One dedicated goroutine per
	// connection; a terminal error means the worker is gone.
	Read() (*Message, error)
	// Kill terminates the worker abruptly (process kill, socket close);
	// the reader observes the death as a read error.
	Kill()
	// Wait reaps the connection after Read has returned a terminal error
	// and reports how the worker ended: a process exit error, or nil when
	// there is nothing to reap (sockets).
	Wait() error
	// Peer identifies the worker for logs ("pid 1234", "10.0.0.7:51132").
	Peer() string
}

// procTransport fork/execs worker processes and speaks frames over their
// stdin/stdout — the PR 7 transport, now behind the Transport seam.
type procTransport struct {
	command []string
}

// NewProcTransport returns the fork/exec transport. The command is the
// worker argv, typically `<this binary> work`.
func NewProcTransport(command []string) Transport {
	return &procTransport{command: command}
}

func (p *procTransport) Spawn() (Conn, error) {
	cmd := exec.Command(p.command[0], p.command[1:]...)
	cmd.Stderr = os.Stderr
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return nil, err
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	return &procConn{cmd: cmd, fw: NewFrameWriter(stdin), fr: NewFrameReader(stdout)}, nil
}

func (p *procTransport) Accepts() <-chan Conn { return nil }

func (p *procTransport) Close() error { return nil }

// procConn is one worker process behind its stdin/stdout pipes.
type procConn struct {
	cmd *exec.Cmd
	fw  *FrameWriter
	fr  *FrameReader
}

func (c *procConn) Write(m *Message) error { return c.fw.Write(m) }

func (c *procConn) Read() (*Message, error) { return c.fr.Read() }

func (c *procConn) Kill() {
	if c.cmd.Process != nil {
		_ = c.cmd.Process.Kill()
	}
}

func (c *procConn) Wait() error { return c.cmd.Wait() }

func (c *procConn) Peer() string {
	if c.cmd.Process != nil {
		return fmt.Sprintf("pid %d", c.cmd.Process.Pid)
	}
	return "unstarted process"
}

// readLoop is the shared per-connection reader goroutine body: it forwards
// frames to the coordinator's event stream and, when the stream ends, reaps
// the worker and reports the exit. A clean close between frames (io.EOF
// with a clean reap) is a nil-error exit. A connection abandoned mid-frame
// — deliver refusing because the run is over — is killed and reaped right
// here: without that, a worker that outlives its run would linger as an
// orphan (or, once dead, an unreaped zombie) for the rest of the
// coordinator process, accumulating across a multi-spec `run` invocation.
func readLoop(conn Conn, deliver func(m *Message, err error) bool) {
	for {
		m, err := conn.Read()
		if err != nil {
			werr := conn.Wait()
			if werr != nil && err == io.EOF {
				err = werr
			}
			if err == io.EOF {
				err = nil // clean exit
			}
			deliver(nil, err)
			return
		}
		if !deliver(m, nil) {
			conn.Kill()
			_ = conn.Wait()
			return
		}
	}
}
