package dist

import (
	"bytes"
	"fmt"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/harness"
	"repro/internal/progress"
	"repro/internal/spec"
)

// TestMain doubles as the worker binary: the coordinator under test spawns
// this same test executable with a mode argument, so the end-to-end tests
// exercise real fork/exec, pipes, kills, and reaping without building
// cmd/radiobfs.
func TestMain(m *testing.M) {
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "dist-worker":
			if err := ServeWorker(os.Stdin, os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			os.Exit(0)
		case "dist-flaky-worker":
			// Accepts the hello, claims readiness, then dies without doing
			// any work: the pure no-progress failure mode.
			fr := NewFrameReader(os.Stdin)
			fw := NewFrameWriter(os.Stdout)
			if _, err := fr.Read(); err != nil {
				os.Exit(1)
			}
			_ = fw.Write(&Message{Kind: KindReady})
			_, _ = fr.Read() // wait for the lease so the failure revokes one
			os.Exit(1)
		case "dist-remote-worker":
			// TCP worker: dials os.Args[2] with token os.Args[3] and serves
			// until the coordinator's clean shutdown, like `radiobfs work
			// -connect addr -token T`.
			if len(os.Args) < 4 {
				fmt.Fprintln(os.Stderr, "dist-remote-worker needs addr and token")
				os.Exit(2)
			}
			err := RemoteWorker{
				Addr:        os.Args[2],
				Token:       os.Args[3],
				Retries:     3,
				BackoffBase: time.Millisecond,
				BackoffMax:  50 * time.Millisecond,
				Log:         os.Stderr,
			}.Run()
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			os.Exit(0)
		case "dist-evil-worker":
			// Reports a result whose seed does not match the coordinator's
			// trial list — the version-skew signal Execute must refuse.
			fr := NewFrameReader(os.Stdin)
			fw := NewFrameWriter(os.Stdout)
			if _, err := fr.Read(); err != nil {
				os.Exit(1)
			}
			_ = fw.Write(&Message{Kind: KindReady})
			m, err := fr.Read()
			if err != nil || m.Kind != KindLease {
				os.Exit(1)
			}
			_ = fw.Write(&Message{Kind: KindResult, LeaseID: m.Lease.ID,
				Slot: m.Lease.Start, Seed: 12345, Metrics: map[string]float64{"ok": 1}})
			_, _ = fr.Read()
			os.Exit(0)
		}
	}
	os.Exit(m.Run())
}

func workerCommand(t *testing.T, mode string) []string {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatalf("os.Executable: %v", err)
	}
	return []string{exe, mode}
}

// testFile is a small but multi-scenario spec: 14 trials across two
// scenarios and two instance shapes, enough slots for leases, re-leases, and
// speculative duplication to all occur.
func testFile() *spec.File {
	return &spec.File{
		Name: "disttest",
		Seed: 5,
		Scenarios: []spec.Scenario{
			{
				Name:      "ring",
				Algorithm: "recursive",
				Trials:    4,
				Instances: []harness.Instance{
					{Family: "cycle", N: 48, MaxDist: 12},
					{Family: "grid", N: 49, MaxDist: 8},
				},
			},
			{
				Name:      "diam",
				Algorithm: "diam2",
				Trials:    6,
				Instances: []harness.Instance{{Family: "star", N: 40}},
			},
		},
	}
}

// artifactBytes renders the full artifact surface of an Output — trial
// JSONL, aggregate CSV — so tests compare exactly what `radiobfs run`
// persists.
func artifactBytes(t *testing.T, out *spec.Output) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := harness.WriteTrialJSONL(&buf, out.Results); err != nil {
		t.Fatalf("trial JSONL: %v", err)
	}
	harness.WriteCSV(&buf, out.Summaries)
	return buf.Bytes()
}

// baseline runs the spec on the ordinary in-process runner.
func baseline(t *testing.T, f *spec.File) []byte {
	t.Helper()
	out, err := spec.ExecuteFile(f, 0, 0, spec.Options{})
	if err != nil {
		t.Fatalf("in-process baseline: %v", err)
	}
	return artifactBytes(t, out)
}

func TestExecuteMatchesInProcess(t *testing.T) {
	f := testFile()
	want := baseline(t, f)
	for _, workers := range []int{1, 3} {
		var log bytes.Buffer
		out, err := Execute(f, 0, spec.Options{}, Config{
			Workers: workers,
			Command: workerCommand(t, "dist-worker"),
			Log:     &log,
		})
		if err != nil {
			t.Fatalf("workers=%d: %v\nlog: %s", workers, err, log.Bytes())
		}
		if got := artifactBytes(t, out); !bytes.Equal(got, want) {
			t.Errorf("workers=%d: distributed artifacts differ from in-process run\ngot:\n%s\nwant:\n%s", workers, got, want)
		}
	}
}

// TestChaosByteIdentity is the property test: across chaos seeds — each a
// different deterministic schedule of worker crashes and stalls — the merged
// artifacts never change by a byte.
func TestChaosByteIdentity(t *testing.T) {
	f := testFile()
	want := baseline(t, f)
	for seed := uint64(1); seed <= 5; seed++ {
		var log bytes.Buffer
		out, err := Execute(f, 0, spec.Options{}, Config{
			Workers:          3,
			LeaseSize:        3,
			Command:          workerCommand(t, "dist-worker"),
			Chaos:            ChaosSpec{Seed: seed, KillAfter: 2, StallPct: 20},
			Heartbeat:        20 * time.Millisecond,
			HeartbeatTimeout: 200 * time.Millisecond,
			BackoffBase:      time.Millisecond,
			Log:              &log,
		})
		if err != nil {
			t.Fatalf("chaos seed %d: %v\nlog: %s", seed, err, log.Bytes())
		}
		if got := artifactBytes(t, out); !bytes.Equal(got, want) {
			t.Errorf("chaos seed %d: artifacts differ from unfaulted run\nlog: %s", seed, log.Bytes())
		}
	}
}

// leaseRecorder counts lease lifecycle events (the coordinator emits them
// from its single event loop, but record defensively anyway).
type leaseRecorder struct {
	mu       sync.Mutex
	granted  map[int]int // lease id → grant count
	revoked  int
	exited   int
	started  int
	done     int
	revokeRe []string
}

func (r *leaseRecorder) LeaseGranted(lease, worker, start, end int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.granted == nil {
		r.granted = map[int]int{}
	}
	r.granted[lease]++
}
func (r *leaseRecorder) LeaseDone(lease int) { r.mu.Lock(); r.done++; r.mu.Unlock() }
func (r *leaseRecorder) LeaseRevoked(lease, worker int, reason string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.revoked++
	r.revokeRe = append(r.revokeRe, reason)
}
func (r *leaseRecorder) WorkerStarted(worker int) { r.mu.Lock(); r.started++; r.mu.Unlock() }
func (r *leaseRecorder) WorkerExited(worker int, reason string) {
	r.mu.Lock()
	r.exited++
	r.mu.Unlock()
}

var _ progress.LeaseObserver = (*leaseRecorder)(nil)

// TestStallRevocationAndReLease forces every incarnation to stall mid-lease:
// the coordinator must detect each by heartbeat loss, revoke and re-lease
// the remainder, and still merge byte-identical artifacts. Completed trials
// of a revoked lease must not rerun — the re-lease carries them as skips —
// which the grant/ack arithmetic below checks.
func TestStallRevocationAndReLease(t *testing.T) {
	f := testFile()
	want := baseline(t, f)
	rec := &leaseRecorder{}
	var log bytes.Buffer
	out, err := Execute(f, 0, spec.Options{}, Config{
		Workers:          2,
		LeaseSize:        7,
		Command:          workerCommand(t, "dist-worker"),
		Chaos:            ChaosSpec{Seed: 3, KillAfter: 2, StallPct: 100},
		Heartbeat:        15 * time.Millisecond,
		HeartbeatTimeout: 150 * time.Millisecond,
		BackoffBase:      time.Millisecond,
		Log:              &log,
		Observer:         rec,
	})
	if err != nil {
		t.Fatalf("Execute: %v\nlog: %s", err, log.Bytes())
	}
	if got := artifactBytes(t, out); !bytes.Equal(got, want) {
		t.Errorf("artifacts differ from unfaulted run\nlog: %s", log.Bytes())
	}
	rec.mu.Lock()
	defer rec.mu.Unlock()
	if rec.revoked == 0 {
		t.Errorf("100%% stall chaos produced no lease revocations\nlog: %s", log.Bytes())
	}
	hb := 0
	for _, reason := range rec.revokeRe {
		if strings.Contains(reason, "heartbeat") {
			hb++
		}
	}
	if hb == 0 {
		t.Errorf("no revocation mentioned a heartbeat timeout: %q", rec.revokeRe)
	}
	regranted := 0
	for _, n := range rec.granted {
		if n > 1 {
			regranted++
		}
	}
	if regranted == 0 {
		t.Errorf("stalled leases were never re-granted; grants = %v", rec.granted)
	}
}

// TestSpeculativeDuplication pins one worker in a stall while the other
// finishes everything else: the idle survivor must receive a speculative
// duplicate grant of the straggling lease, and the first-writer-wins merge
// must keep the artifacts clean.
func TestSpeculativeDuplication(t *testing.T) {
	f := testFile()
	want := baseline(t, f)
	// Plan is a pure function of (seed, incarnation), so pick a chaos seed
	// where incarnation 0 stalls after its first trial and the next few run
	// clean: worker 0 wedges mid-lease while worker 1 finishes its own lease,
	// goes idle, and must hedge the straggler with a speculative duplicate.
	var chaos ChaosSpec
	for s := uint64(1); ; s++ {
		c := ChaosSpec{Seed: s, StallPct: 10}
		if c.Plan(0).Kind == FaultStall &&
			c.Plan(1).Kind == FaultNone && c.Plan(2).Kind == FaultNone && c.Plan(3).Kind == FaultNone {
			chaos = c
			break
		}
	}
	rec := &leaseRecorder{}
	var log bytes.Buffer
	out, err := Execute(f, 0, spec.Options{}, Config{
		Workers:   2,
		LeaseSize: 7, // two leases: one stalls, one finishes and hedges
		Command:   workerCommand(t, "dist-worker"),
		Chaos:     chaos,
		Heartbeat: 15 * time.Millisecond,
		// Generous timeout: the hedge should finish the sweep well before
		// the stalled worker is even revoked.
		HeartbeatTimeout: 2 * time.Second,
		BackoffBase:      time.Millisecond,
		Log:              &log,
		Observer:         rec,
	})
	if err != nil {
		t.Fatalf("Execute: %v\nlog: %s", err, log.Bytes())
	}
	if got := artifactBytes(t, out); !bytes.Equal(got, want) {
		t.Errorf("artifacts differ from unfaulted run\nlog: %s", log.Bytes())
	}
	rec.mu.Lock()
	defer rec.mu.Unlock()
	dup := 0
	for _, n := range rec.granted {
		if n > 1 {
			dup++
		}
	}
	if dup == 0 {
		t.Errorf("straggling lease was never speculatively duplicated; grants = %v\nlog: %s", rec.granted, log.Bytes())
	}
}

// TestNoSpawnFallsBackInProcess: when no worker can be spawned at all, the
// sweep must still complete in-process with identical bytes and a warning.
func TestNoSpawnFallsBackInProcess(t *testing.T) {
	f := testFile()
	want := baseline(t, f)
	var log bytes.Buffer
	out, err := Execute(f, 0, spec.Options{}, Config{
		Workers: 3,
		Command: []string{"/nonexistent/radiobfs-worker-binary"},
		Log:     &log,
	})
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if got := artifactBytes(t, out); !bytes.Equal(got, want) {
		t.Error("fallback artifacts differ from in-process run")
	}
	if !strings.Contains(log.String(), "no worker process could be spawned") {
		t.Errorf("missing degradation warning; log: %s", log.String())
	}
}

// TestFlakyWorkersExhaustRetryBudget: workers that join and die without ever
// completing a trial must burn the retry budget and hand their leases to the
// coordinator's own in-process lane — the sweep completes, bytes intact.
func TestFlakyWorkersExhaustRetryBudget(t *testing.T) {
	f := testFile()
	want := baseline(t, f)
	var log bytes.Buffer
	out, err := Execute(f, 0, spec.Options{}, Config{
		Workers:     2,
		RetryBudget: 2,
		BackoffBase: time.Millisecond,
		BackoffMax:  2 * time.Millisecond,
		Command:     workerCommand(t, "dist-flaky-worker"),
		Log:         &log,
	})
	if err != nil {
		t.Fatalf("Execute: %v\nlog: %s", err, log.Bytes())
	}
	if got := artifactBytes(t, out); !bytes.Equal(got, want) {
		t.Error("retry-exhausted artifacts differ from in-process run")
	}
	if !strings.Contains(log.String(), "in-process") {
		t.Errorf("expected an in-process takeover warning; log: %s", log.String())
	}
}

// TestSeedSkewRejected: a worker whose trial expansion disagrees with the
// coordinator's (wrong seed echo) must abort the run, not merge bad data.
func TestSeedSkewRejected(t *testing.T) {
	f := testFile()
	var log bytes.Buffer
	_, err := Execute(f, 0, spec.Options{}, Config{
		Workers: 1,
		Command: workerCommand(t, "dist-evil-worker"),
		Log:     &log,
	})
	if err == nil || !strings.Contains(err.Error(), "disagrees") {
		t.Fatalf("Execute = %v, want seed-skew error", err)
	}
}

// TestCustomWorkloadRejected: custom workloads cannot cross a process
// boundary, so dist must refuse them up front.
func TestCustomWorkloadRejected(t *testing.T) {
	f := testFile()
	opts := spec.Options{Custom: map[string]spec.CustomFunc{"x": nil}}
	if _, err := Execute(f, 0, opts, Config{}); err == nil || !strings.Contains(err.Error(), "custom") {
		t.Fatalf("Execute = %v, want custom-workload rejection", err)
	}
}
