// Package dist executes a compiled scenario spec across multiple worker
// processes under a lease-based coordinator, producing output byte-identical
// to the single-process `radiobfs run` path — including under injected
// worker crashes, stalls, and duplicated work.
//
// # Why leases, and why the bytes cannot change
//
// Every trial of a sweep derives its seed from its own coordinates (see
// harness.TrialFor), never from scheduling, so a trial's Result is a pure
// function of its global slot in the canonical trial order
// (harness.Runner.ExpandAll). Distribution is therefore "only" a
// coordination problem: partition the slot space [0, T) into leases —
// contiguous slot ranges — hand them to workers, and merge the streamed
// results back into the position-indexed layout Runner.Run would have
// produced. Re-executing a slot (after a crash, or speculatively on a
// duplicated lease) reproduces the identical Result, so the coordinator
// resolves races by first-writer-wins on the slot index and the merged
// artifacts stay byte-identical to an unfaulted in-process run.
//
// # Lease lifecycle and failure model
//
// A lease is granted to a worker together with the set of slots in its
// range that are already completed (the skip list). Workers stream one
// result frame per trial the moment it settles, so a worker crash mid-lease
// loses no completed trials: the coordinator has already checkpointed every
// acked slot. Liveness is heartbeat-based — workers emit heartbeat frames on
// a timer, and results double as heartbeats; a worker silent past the
// heartbeat timeout is killed and its leases are revoked. A revoked or
// orphaned lease is narrowed to its remaining slots and re-queued; grants
// that end without acking a single new slot count against the lease's retry
// budget, and a lease that exhausts the budget is executed in-process by the
// coordinator itself, which also happens wholesale when no worker process
// can be spawned at all (graceful degradation, with a warning). Worker
// respawns back off exponentially with a cap, resetting on progress. When
// every lease is granted and a worker goes idle, the coordinator
// speculatively duplicates the most-behind outstanding lease (straggler
// hedging); duplicate results are deduplicated by slot.
//
// # Protocol and transports
//
// Coordinator and workers speak length-prefixed JSON frames (see proto.go):
// hello → ready, then lease → result* → leaseDone, interleaved with
// heartbeats, until shutdown. The carrier is a Transport: the default
// fork/exec pipe transport spawns `radiobfs work` children over
// stdin/stdout, and the TCP transport (Listen / RemoteWorker) accepts
// remote workers started by hand with `radiobfs work -connect host:port
// -token T`. The frame codec, lease protocol, checkpointing, and the
// degradation ladder are identical on both; only the trust boundary and the
// failure semantics of "kill" change (a socket can be closed, but a remote
// process cannot be respawned — its slot refills when a worker redials).
//
// # Worker authentication and version negotiation
//
// Pipe workers are fork/exec'd from the coordinator's own binary, so
// identity and compatibility hold by construction. A TCP worker could be
// anyone running anything, so before the hello crosses the wire the
// connection passes a challenge/auth handshake (handshake.go): the
// coordinator issues a fresh random nonce, the worker returns
// HMAC-SHA256(token, nonce) plus its frame-protocol version and
// spec.CodeVersion, and the coordinator verifies replay (stale nonce), MAC,
// and exact version equality in that order. Each failure is a typed reject
// frame (RejectedError) naming what to fix; the per-result seed-echo check
// remains the runtime backstop against binaries that lie. A successful
// handshake logs the negotiated versions.
//
// # Latency-aware lease sizing
//
// Grant size adapts per worker incarnation (LeasePolicy): the coordinator
// folds the gaps between a worker's result frames into an EWMA of its
// per-trial round trip and sizes the next grant — a bundle of consecutive
// fixed-size leases — to a constant target wall time, clamped to
// [floor, ceiling]. Fast streamers on high-latency links earn big bundles
// (latency shifts arrivals without spreading them), while genuinely slow
// workers shrink toward single leases so revocation and straggler hedging
// stay fine-grained. Grant sizing is pure scheduling: results merge by
// slot, so the bytes cannot depend on it. Pinning Config.LeaseSize disables
// the policy (every grant is exactly one lease).
//
// # Deterministic fault injection
//
// ChaosSpec ("seed=S,killafter=K,stall=P,disconnect=D,delay=MS") makes
// worker incarnations crash (os.Exit), stall (stop heartbeating and hang),
// or disconnect (drop the transport; remote workers redial as fresh
// incarnations) after a seeded number of completed trials, and injects a
// seeded per-trial result latency. The fault schedule is a pure function of
// (chaos seed, worker incarnation number), so every failure path — crash
// re-lease, heartbeat-timeout revocation, reconnect, straggler duplication,
// backoff, policy shrink — is exercised deterministically in tests and CI,
// with the merged artifacts byte-diffed against an unfaulted
// single-process run.
package dist
