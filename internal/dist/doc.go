// Package dist executes a compiled scenario spec across multiple worker
// processes under a lease-based coordinator, producing output byte-identical
// to the single-process `radiobfs run` path — including under injected
// worker crashes, stalls, and duplicated work.
//
// # Why leases, and why the bytes cannot change
//
// Every trial of a sweep derives its seed from its own coordinates (see
// harness.TrialFor), never from scheduling, so a trial's Result is a pure
// function of its global slot in the canonical trial order
// (harness.Runner.ExpandAll). Distribution is therefore "only" a
// coordination problem: partition the slot space [0, T) into leases —
// contiguous slot ranges — hand them to workers, and merge the streamed
// results back into the position-indexed layout Runner.Run would have
// produced. Re-executing a slot (after a crash, or speculatively on a
// duplicated lease) reproduces the identical Result, so the coordinator
// resolves races by first-writer-wins on the slot index and the merged
// artifacts stay byte-identical to an unfaulted in-process run.
//
// # Lease lifecycle and failure model
//
// A lease is granted to a worker together with the set of slots in its
// range that are already completed (the skip list). Workers stream one
// result frame per trial the moment it settles, so a worker crash mid-lease
// loses no completed trials: the coordinator has already checkpointed every
// acked slot. Liveness is heartbeat-based — workers emit heartbeat frames on
// a timer, and results double as heartbeats; a worker silent past the
// heartbeat timeout is killed and its leases are revoked. A revoked or
// orphaned lease is narrowed to its remaining slots and re-queued; grants
// that end without acking a single new slot count against the lease's retry
// budget, and a lease that exhausts the budget is executed in-process by the
// coordinator itself, which also happens wholesale when no worker process
// can be spawned at all (graceful degradation, with a warning). Worker
// respawns back off exponentially with a cap, resetting on progress. When
// every lease is granted and a worker goes idle, the coordinator
// speculatively duplicates the most-behind outstanding lease (straggler
// hedging); duplicate results are deduplicated by slot.
//
// # Protocol
//
// Coordinator and workers speak length-prefixed JSON frames over the
// worker's stdin/stdout (see proto.go): hello → ready, then lease → result*
// → leaseDone, interleaved with heartbeats, until shutdown. Workers are
// fork/exec'd instances of the same binary (`radiobfs work`), so the
// coordinator and every worker compile the identical embedded registries
// and expand the identical trial list from the spec bytes shipped in the
// hello frame.
//
// # Deterministic fault injection
//
// ChaosSpec ("seed=S,killafter=K,stall=P") makes worker incarnations crash
// (os.Exit) or stall (stop heartbeating and hang) after a seeded number of
// completed trials. The fault schedule is a pure function of (chaos seed,
// worker incarnation number), so every failure path — crash re-lease,
// heartbeat-timeout revocation, straggler duplication, backoff — is
// exercised deterministically in tests and CI, with the merged artifacts
// byte-diffed against an unfaulted single-process run.
package dist
