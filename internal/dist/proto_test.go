package dist

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"hash/crc32"
	"io"
	"strings"
	"sync"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	fw := NewFrameWriter(&buf)
	msgs := []*Message{
		{Kind: KindHello, Hello: &Hello{
			Worker: 7, Spec: json.RawMessage(`{"name":"x","scenarios":[]}`),
			Quick: true, Root: 42, ShardMinN: -1, DenseMin: 9,
			HeartbeatMS: 250, Chaos: ChaosSpec{Seed: 3, KillAfter: 2, StallPct: 25},
		}},
		{Kind: KindLease, Lease: &Lease{ID: 2, Start: 10, End: 20, Skip: []int{11, 13}}},
		{Kind: KindResult, LeaseID: 2, Slot: 12, Seed: 0xdeadbeefcafe,
			Metrics: map[string]float64{"ok": 1, "maxLB": 17.5}, TrialErr: "boom"},
		{Kind: KindLeaseDone, LeaseID: 2},
		{Kind: KindHeartbeat},
		{Kind: KindShutdown},
	}
	for _, m := range msgs {
		if err := fw.Write(m); err != nil {
			t.Fatalf("write %s: %v", m.Kind, err)
		}
	}
	fr := NewFrameReader(&buf)
	for i, want := range msgs {
		got, err := fr.Read()
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		wb, _ := json.Marshal(want)
		gb, _ := json.Marshal(got)
		if !bytes.Equal(wb, gb) {
			t.Errorf("frame %d: got %s, want %s", i, gb, wb)
		}
	}
	if _, err := fr.Read(); err != io.EOF {
		t.Fatalf("after last frame: err = %v, want io.EOF", err)
	}
}

func TestFrameReaderTruncation(t *testing.T) {
	var buf bytes.Buffer
	fw := NewFrameWriter(&buf)
	if err := fw.Write(&Message{Kind: KindHeartbeat}); err != nil {
		t.Fatal(err)
	}
	whole := buf.Bytes()

	// Mid-prefix and mid-body truncations are loud errors, never io.EOF.
	for _, cut := range []int{1, 3, len(whole) - 1} {
		fr := NewFrameReader(bytes.NewReader(whole[:cut]))
		if _, err := fr.Read(); err == nil || err == io.EOF {
			t.Errorf("cut at %d: err = %v, want truncation error", cut, err)
		}
	}
}

func TestFrameReaderRejectsOversizeAndJunk(t *testing.T) {
	var huge [frameHeader]byte
	binary.BigEndian.PutUint32(huge[0:4], MaxFrame+1)
	if _, err := NewFrameReader(bytes.NewReader(huge[:])).Read(); err == nil || !strings.Contains(err.Error(), "exceeds") {
		t.Errorf("oversize frame: err = %v, want limit error", err)
	}

	frame := func(body string) []byte {
		var b bytes.Buffer
		var prefix [frameHeader]byte
		binary.BigEndian.PutUint32(prefix[0:4], uint32(len(body)))
		binary.BigEndian.PutUint32(prefix[4:8], crc32.ChecksumIEEE([]byte(body)))
		b.Write(prefix[:])
		b.WriteString(body)
		return b.Bytes()
	}
	if _, err := NewFrameReader(bytes.NewReader(frame("not json"))).Read(); err == nil {
		t.Error("junk body: want parse error")
	}
	if _, err := NewFrameReader(bytes.NewReader(frame(`{"slot":3}`))).Read(); err == nil || !strings.Contains(err.Error(), "kind") {
		t.Errorf("kindless frame: err = %v, want kind error", err)
	}
}

// TestFrameReaderDetectsCorruption: a body that does not match its CRC is
// the typed integrity error, both from a raw bit-flip and from the writer's
// chaos corruption hook.
func TestFrameReaderDetectsCorruption(t *testing.T) {
	var buf bytes.Buffer
	fw := NewFrameWriter(&buf)
	if err := fw.Write(&Message{Kind: KindResult, LeaseID: 1, Slot: 3, Seed: 42, Metrics: map[string]float64{"rounds": 17}}); err != nil {
		t.Fatal(err)
	}
	wire := append([]byte(nil), buf.Bytes()...)
	for _, pos := range []int{frameHeader, frameHeader + 5, len(wire) - 1} {
		mut := append([]byte(nil), wire...)
		mut[pos] ^= 0x01
		_, err := NewFrameReader(bytes.NewReader(mut)).Read()
		var ce *FrameCorruptError
		if !errors.As(err, &ce) {
			t.Fatalf("flip at %d: err = %v, want *FrameCorruptError", pos, err)
		}
	}

	// The chaos hook corrupts exactly one frame; the next is intact again.
	buf.Reset()
	fw = NewFrameWriter(&buf)
	fw.CorruptNext()
	if err := fw.Write(&Message{Kind: KindHeartbeat}); err != nil {
		t.Fatal(err)
	}
	if err := fw.Write(&Message{Kind: KindShutdown}); err != nil {
		t.Fatal(err)
	}
	fr := NewFrameReader(&buf)
	_, err := fr.Read()
	var ce *FrameCorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("corrupted frame: err = %v, want *FrameCorruptError", err)
	}
	// The reader consumed the full corrupted frame, so the stream is still
	// aligned; the follow-up frame decodes (real peers drop the connection
	// instead, but alignment is what makes the test deterministic).
	m, err := fr.Read()
	if err != nil || m.Kind != KindShutdown {
		t.Fatalf("frame after corruption: %v, %v (want shutdown)", m, err)
	}
}

// TestFrameWriterConcurrent exercises the writer under the race detector the
// way a worker does: heartbeats and results interleaving on one pipe.
func TestFrameWriterConcurrent(t *testing.T) {
	var buf bytes.Buffer
	fw := NewFrameWriter(&buf)
	var wg sync.WaitGroup
	const perG, gs = 50, 4
	for g := 0; g < gs; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				if err := fw.Write(&Message{Kind: KindResult, Slot: g*perG + i}); err != nil {
					t.Errorf("write: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	fr := NewFrameReader(&buf)
	seen := map[int]bool{}
	for i := 0; i < perG*gs; i++ {
		m, err := fr.Read()
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if seen[m.Slot] {
			t.Fatalf("slot %d read twice", m.Slot)
		}
		seen[m.Slot] = true
	}
}
