package dist

// The coordinator's lease table: a uniform partition of the sweep's global
// slot space [0, total) into contiguous ranges, plus the acked-slot
// checkpoint that makes re-leasing loss-free. Completed slots are recorded
// the moment their result frame arrives, so a revoked lease re-issues only
// its remainder, and duplicated grants resolve by first-writer-wins on the
// slot index — re-executing a slot reproduces the identical Result, so the
// winner is irrelevant to the bytes.

// leaseState tracks one lease through its grant/revoke/complete lifecycle.
type leaseState struct {
	id         int
	start, end int // global slots [start, end)
	// grants counts outstanding grants; holders lists the worker slots
	// currently serving it (≥ 2 during speculative duplication).
	grants  int
	holders []int
	// retries counts consecutive grants that ended without acking a single
	// new slot; it resets whenever a revocation finds fresh progress. A
	// lease whose retries exceed the budget is executed in-process.
	retries int
	// remainingAtGrant snapshots the unacked count at the latest grant, the
	// reference point for the progress test above.
	remainingAtGrant int
	done             bool
}

// table is the lease table plus the acked-slot checkpoint.
type table struct {
	leases []*leaseState
	size   int // slots per lease (last lease may be shorter)
	acked  []bool
	ackedN int
}

// defaultLeaseSize targets roughly four leases per worker so re-lease and
// straggler-duplication granularity stays fine without drowning the
// protocol in tiny grants.
func defaultLeaseSize(total, workers int) int {
	if workers < 1 {
		workers = 1
	}
	size := total / (workers * 4)
	if size < 1 {
		size = 1
	}
	return size
}

// newTable partitions [0, total) into ⌈total/size⌉ contiguous leases.
func newTable(total, size int) *table {
	if size < 1 {
		size = 1
	}
	t := &table{size: size, acked: make([]bool, total)}
	for start := 0; start < total; start += size {
		end := start + size
		if end > total {
			end = total
		}
		t.leases = append(t.leases, &leaseState{id: len(t.leases), start: start, end: end})
	}
	return t
}

// total returns the slot count.
func (t *table) total() int { return len(t.acked) }

// allDone reports whether every slot is acked.
func (t *table) allDone() bool { return t.ackedN == len(t.acked) }

// ack checkpoints a completed slot; it returns false when the slot was
// already acked (a duplicate to drop).
func (t *table) ack(slot int) bool {
	if t.acked[slot] {
		return false
	}
	t.acked[slot] = true
	t.ackedN++
	return true
}

// leaseOf maps a slot to its owning lease.
func (t *table) leaseOf(slot int) *leaseState {
	return t.leases[slot/t.size]
}

// remaining counts the lease's unacked slots.
func (t *table) remaining(l *leaseState) int {
	n := 0
	for s := l.start; s < l.end; s++ {
		if !t.acked[s] {
			n++
		}
	}
	return n
}

// skipList lists the lease's already-acked slots, for the grant frame.
func (t *table) skipList(l *leaseState) []int {
	var skip []int
	for s := l.start; s < l.end; s++ {
		if t.acked[s] {
			skip = append(skip, s)
		}
	}
	return skip
}

// grant records that worker w now holds the lease.
func (t *table) grant(l *leaseState, w int) {
	l.grants++
	l.holders = append(l.holders, w)
	l.remainingAtGrant = t.remaining(l)
}

// release records that worker w's grant ended (completion, exit, or
// revocation) and updates the retry counter: a grant that made no progress
// counts against the budget, one that did resets it.
func (t *table) release(l *leaseState, w int) {
	l.grants--
	for i, h := range l.holders {
		if h == w {
			l.holders = append(l.holders[:i], l.holders[i+1:]...)
			break
		}
	}
	if l.done {
		return
	}
	if rem := t.remaining(l); rem >= l.remainingAtGrant {
		l.retries++
	} else {
		l.retries = 0
	}
}

// heldBy reports whether worker w currently holds the lease.
func (l *leaseState) heldBy(w int) bool {
	for _, h := range l.holders {
		if h == w {
			return true
		}
	}
	return false
}

// pending returns the lowest-id lease that is incomplete and currently
// granted to nobody, or nil.
func (t *table) pending() *leaseState {
	for _, l := range t.leases {
		if !l.done && l.grants == 0 && t.remaining(l) > 0 {
			return l
		}
	}
	return nil
}

// maxGrants caps speculative duplication: at most two workers chew on one
// lease, the original holder plus one hedge.
const maxGrants = 2

// straggler picks the lease to speculatively duplicate for an idle worker w:
// among incomplete leases already granted elsewhere (but not to w, and not
// yet at the duplication cap), the one with the most remaining work, ties to
// the lowest id. Returns nil when nothing qualifies.
func (t *table) straggler(w int) *leaseState {
	var best *leaseState
	bestRem := 0
	for _, l := range t.leases {
		if l.done || l.grants == 0 || l.grants >= maxGrants || l.heldBy(w) {
			continue
		}
		if rem := t.remaining(l); rem > bestRem {
			best, bestRem = l, rem
		}
	}
	return best
}
