package dist

import (
	"testing"
	"time"
)

func TestParseChaos(t *testing.T) {
	good := []struct {
		in   string
		want ChaosSpec
	}{
		{"", ChaosSpec{}},
		{"  ", ChaosSpec{}},
		{"seed=7", ChaosSpec{Seed: 7}},
		{"seed=7,killafter=2", ChaosSpec{Seed: 7, KillAfter: 2}},
		{"seed=7,killafter=2,stall=25", ChaosSpec{Seed: 7, KillAfter: 2, StallPct: 25}},
		{" stall=100 , seed=1 ", ChaosSpec{Seed: 1, StallPct: 100}},
		{"seed=3,disconnect=2", ChaosSpec{Seed: 3, Disconnect: 2}},
		{"seed=3,delay=15", ChaosSpec{Seed: 3, DelayMS: 15}},
		{"seed=3,disconnect=2,delay=15", ChaosSpec{Seed: 3, Disconnect: 2, DelayMS: 15}},
		{"seed=3,corrupt=40", ChaosSpec{Seed: 3, CorruptPct: 40}},
		{"seed=3,coordkill=5", ChaosSpec{Seed: 3, CoordKill: 5}},
		{"seed=3,killafter=2,corrupt=100,coordkill=3", ChaosSpec{Seed: 3, KillAfter: 2, CorruptPct: 100, CoordKill: 3}},
	}
	for _, tc := range good {
		got, err := ParseChaos(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseChaos(%q) = %+v, %v; want %+v", tc.in, got, err, tc.want)
		}
	}
	bad := []string{"seed", "seed=x", "killafter=-1", "stall=101", "stall=-2", "pct=5", "seed=7;stall=2", "disconnect=-1", "disconnect=x", "delay=-5", "delay=x", "corrupt=101", "corrupt=-1", "corrupt=x", "coordkill=-1", "coordkill=x"}
	for _, in := range bad {
		if _, err := ParseChaos(in); err == nil {
			t.Errorf("ParseChaos(%q): want error", in)
		}
	}
}

func TestChaosStringRoundTrips(t *testing.T) {
	for _, c := range []ChaosSpec{
		{},
		{Seed: 7, KillAfter: 2},
		{Seed: 0, StallPct: 100},
		{Seed: 9, KillAfter: 5, StallPct: 25},
		{Seed: 4, Disconnect: 3},
		{Seed: 4, DelayMS: 20},
		{Seed: 4, KillAfter: 2, StallPct: 10, Disconnect: 3, DelayMS: 20},
		{Seed: 4, CorruptPct: 30},
		{Seed: 4, CoordKill: 6},
		{Seed: 4, KillAfter: 2, CorruptPct: 30, CoordKill: 6},
	} {
		back, err := ParseChaos(c.String())
		if err != nil || back != c {
			t.Errorf("ParseChaos(%q) = %+v, %v; want %+v", c.String(), back, err, c)
		}
	}
}

func TestChaosPlan(t *testing.T) {
	if f := (ChaosSpec{}).Plan(3); f.Kind != FaultNone {
		t.Errorf("disabled spec planned %+v", f)
	}

	c := ChaosSpec{Seed: 11, KillAfter: 4, StallPct: 30}
	kills, stalls := 0, 0
	for inc := 0; inc < 200; inc++ {
		f := c.Plan(inc)
		if f != c.Plan(inc) {
			t.Fatalf("incarnation %d: plan is not deterministic", inc)
		}
		switch f.Kind {
		case FaultKill:
			kills++
		case FaultStall:
			stalls++
		default:
			t.Fatalf("incarnation %d: no fault planned under killafter+stall", inc)
		}
		// The progress guarantee: every incarnation completes at least one
		// trial before faulting, so chaos sweeps always converge.
		if f.After < 1 || f.After > c.KillAfter {
			t.Fatalf("incarnation %d: After = %d outside [1, %d]", inc, f.After, c.KillAfter)
		}
	}
	if kills == 0 || stalls == 0 {
		t.Errorf("200 incarnations: %d kills, %d stalls; want a mix", kills, stalls)
	}

	// stall=100 stalls every incarnation; stall=0 kills every one.
	for inc := 0; inc < 50; inc++ {
		if f := (ChaosSpec{Seed: 5, KillAfter: 1, StallPct: 100}).Plan(inc); f.Kind != FaultStall {
			t.Fatalf("stall=100, incarnation %d: %+v", inc, f)
		}
		if f := (ChaosSpec{Seed: 5, KillAfter: 3}).Plan(inc); f.Kind != FaultKill {
			t.Fatalf("stall=0, incarnation %d: %+v", inc, f)
		}
		// Pure stall chaos (no killafter) must still fault after >= 1 trial.
		if f := (ChaosSpec{Seed: 5, StallPct: 100}).Plan(inc); f.Kind != FaultStall || f.After != 1 {
			t.Fatalf("pure stall, incarnation %d: %+v", inc, f)
		}
	}
}

// TestChaosPlanDisconnectAndDelay: the new fault kinds are pure functions
// of (seed, incarnation) like the originals — and adding them must not
// perturb the plans a pre-existing seed produced, because published chaos
// runs are reproduced by their seed.
func TestChaosPlanDisconnectAndDelay(t *testing.T) {
	c := ChaosSpec{Seed: 13, Disconnect: 4}
	for inc := 0; inc < 100; inc++ {
		f := c.Plan(inc)
		if f != c.Plan(inc) {
			t.Fatalf("incarnation %d: disconnect plan not deterministic", inc)
		}
		if f.Kind != FaultDisconnect {
			t.Fatalf("incarnation %d: kind = %v, want disconnect", inc, f.Kind)
		}
		if f.After < 1 || f.After > c.Disconnect {
			t.Fatalf("incarnation %d: After = %d outside [1, %d]", inc, f.After, c.Disconnect)
		}
	}

	// Delay alone is not a terminal fault: the incarnation runs to
	// completion, just slowly, with a seeded per-trial latency in [0, DelayMS].
	d := ChaosSpec{Seed: 13, DelayMS: 25}
	varied := false
	for inc := 0; inc < 100; inc++ {
		f := d.Plan(inc)
		if f.Kind != FaultNone {
			t.Fatalf("incarnation %d: delay-only plan has terminal fault %v", inc, f.Kind)
		}
		if f.Delay < 0 || f.Delay > 25*time.Millisecond {
			t.Fatalf("incarnation %d: Delay = %v outside [0, 25ms]", inc, f.Delay)
		}
		if f.Delay != d.Plan(0).Delay {
			varied = true
		}
	}
	if !varied {
		t.Error("100 incarnations drew identical delays; want seeded variation")
	}

	// Kill/stall outrank disconnect, and their draws come first: a seed from
	// before disconnect existed plans the same kills and stalls with or
	// without the new knobs.
	old := ChaosSpec{Seed: 11, KillAfter: 4, StallPct: 30}
	ext := ChaosSpec{Seed: 11, KillAfter: 4, StallPct: 30, Disconnect: 5, DelayMS: 10}
	for inc := 0; inc < 100; inc++ {
		fo, fe := old.Plan(inc), ext.Plan(inc)
		if fo.Kind != fe.Kind || fo.After != fe.After {
			t.Fatalf("incarnation %d: adding disconnect/delay changed the plan: %+v vs %+v", inc, fo, fe)
		}
	}
}

// TestChaosPlanCorrupt: the corrupt fault is a pure function of (seed,
// incarnation), always leaves room for completed work before it fires, and
// its draw comes last so pre-existing seeds plan identically.
func TestChaosPlanCorrupt(t *testing.T) {
	c := ChaosSpec{Seed: 17, CorruptPct: 100}
	for inc := 0; inc < 100; inc++ {
		f := c.Plan(inc)
		if f != c.Plan(inc) {
			t.Fatalf("incarnation %d: corrupt plan not deterministic", inc)
		}
		if f.Kind != FaultCorrupt {
			t.Fatalf("corrupt=100, incarnation %d: kind = %v, want corrupt", inc, f.Kind)
		}
		// The worker corrupts the frame AFTER its planned good trials, so
		// After >= 1 guarantees progress even at corrupt=100.
		if f.After < 1 {
			t.Fatalf("incarnation %d: After = %d, want >= 1", inc, f.After)
		}
	}

	// Partial probability draws a mix of corrupt and none.
	mixed := ChaosSpec{Seed: 17, CorruptPct: 40}
	corrupts, nones := 0, 0
	for inc := 0; inc < 200; inc++ {
		switch mixed.Plan(inc).Kind {
		case FaultCorrupt:
			corrupts++
		case FaultNone:
			nones++
		default:
			t.Fatalf("incarnation %d: unexpected kind under corrupt-only chaos", inc)
		}
	}
	if corrupts == 0 || nones == 0 {
		t.Errorf("200 incarnations at corrupt=40: %d corrupt, %d none; want a mix", corrupts, nones)
	}

	// Terminal kinds outrank corrupt, and corrupt's draw is appended last:
	// adding it (or coordkill, which draws nothing worker-side) must not
	// perturb the plans an existing seed produced.
	old := ChaosSpec{Seed: 11, KillAfter: 4, StallPct: 30, Disconnect: 5, DelayMS: 10}
	ext := ChaosSpec{Seed: 11, KillAfter: 4, StallPct: 30, Disconnect: 5, DelayMS: 10, CorruptPct: 80, CoordKill: 3}
	for inc := 0; inc < 100; inc++ {
		fo, fe := old.Plan(inc), ext.Plan(inc)
		if fo != fe {
			t.Fatalf("incarnation %d: adding corrupt/coordkill changed the plan: %+v vs %+v", inc, fo, fe)
		}
	}

	// coordkill alone is coordinator-side only: workers draw no fault.
	ck := ChaosSpec{Seed: 17, CoordKill: 2}
	for inc := 0; inc < 50; inc++ {
		if f := ck.Plan(inc); f.Kind != FaultNone || f.Delay != 0 {
			t.Fatalf("coordkill-only plan for incarnation %d = %+v, want none", inc, f)
		}
	}
}
