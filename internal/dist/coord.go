package dist

import (
	"fmt"
	"io"
	"os"
	"os/exec"
	"runtime"
	"time"

	"repro/internal/harness"
	"repro/internal/progress"
	"repro/internal/spec"
)

// Config tunes the coordinator. The zero value is usable: GOMAXPROCS worker
// processes, automatic lease sizing, production-scale heartbeat and backoff
// parameters, no chaos, and `<this binary> work` as the worker command.
type Config struct {
	// Workers is the number of worker processes (<= 0 = GOMAXPROCS),
	// capped at the lease count.
	Workers int
	// LeaseSize is the number of trial slots per lease (<= 0 = automatic:
	// about four leases per worker).
	LeaseSize int
	// Heartbeat is the interval workers emit liveness frames at
	// (default 500ms).
	Heartbeat time.Duration
	// HeartbeatTimeout is the silence after which a worker is declared dead,
	// killed, and its leases revoked (default 3s). Results count as
	// heartbeats, so only a truly wedged worker trips it.
	HeartbeatTimeout time.Duration
	// RetryBudget bounds consecutive no-progress grants of one lease and
	// consecutive failed (re)spawns of one worker slot before the
	// coordinator stops trusting processes and runs the work in-process
	// (default 8).
	RetryBudget int
	// BackoffBase/BackoffMax shape the capped exponential backoff between
	// respawns of a failed worker slot (defaults 100ms / 5s). Backoff
	// resets whenever the slot acks a trial.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// Chaos is the deterministic fault-injection schedule shipped to
	// workers (zero value = none).
	Chaos ChaosSpec
	// Command is the worker argv (default: this binary with the single
	// argument "work").
	Command []string
	// Log receives warnings and the end-of-run coordination summary
	// (default: discard). It is written only from the coordinator's event
	// loop.
	Log io.Writer
	// Observer, when non-nil, receives lease lifecycle events.
	Observer progress.LeaseObserver
}

func (cfg Config) withDefaults() Config {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.Heartbeat <= 0 {
		cfg.Heartbeat = 500 * time.Millisecond
	}
	if cfg.HeartbeatTimeout <= 0 {
		cfg.HeartbeatTimeout = 3 * time.Second
	}
	if cfg.HeartbeatTimeout < 2*cfg.Heartbeat {
		cfg.HeartbeatTimeout = 2 * cfg.Heartbeat
	}
	if cfg.RetryBudget <= 0 {
		cfg.RetryBudget = 8
	}
	if cfg.BackoffBase <= 0 {
		cfg.BackoffBase = 100 * time.Millisecond
	}
	if cfg.BackoffMax <= 0 {
		cfg.BackoffMax = 5 * time.Second
	}
	if len(cfg.Command) == 0 {
		exe, err := os.Executable()
		if err != nil {
			exe = os.Args[0]
		}
		cfg.Command = []string{exe, "work"}
	}
	if cfg.Log == nil {
		cfg.Log = io.Discard
	}
	if cfg.Observer == nil {
		cfg.Observer = progress.LeaseFuncs{}
	}
	return cfg
}

// workerProc is one worker slot: a position in the fleet that successive
// process incarnations occupy.
type workerProc struct {
	slot int
	inc  int // incarnation number of the current/last process
	cmd  *exec.Cmd
	fw   *FrameWriter

	live      bool
	readySeen bool
	lastSeen  time.Time
	leases    []*leaseState
	// fails counts consecutive spawn failures / exits without an ack;
	// it drives backoff and the give-up decision, and resets on progress.
	fails     int
	nextSpawn time.Time
	gaveUp    bool
	killedFor string // set when the coordinator killed the process
}

// event is one item on the coordinator's single event stream: a frame from
// a worker, or (msg == nil) its exit.
type event struct {
	w   *workerProc
	msg *Message
	err error
}

type coordinator struct {
	cfg     Config
	file    *spec.File
	opts    spec.Options
	root    uint64
	raw     []byte
	scs     []*harness.Scenario
	runner  harness.Runner
	refs    []harness.TrialRef
	results []harness.Result
	tbl     *table
	events  chan event
	done    chan struct{}
	workers []*workerProc
	incs    int
	stream  *harness.Stream // lazy; in-process execution of poisoned leases
	fatal   error

	stats struct {
		spawns, releases, duplicates, dupResults, inproc int
	}
}

// Execute runs the spec file across worker processes and returns an Output
// byte-for-byte equal to spec.ExecuteFile's for the same (file, root, opts):
// per-trial results in canonical slot order, merged by first-writer-wins on
// the slot index. root == 0 selects the file's own seed policy. Specs that
// reference custom workloads cannot cross a process boundary and are
// rejected. When no worker process can be spawned at all, Execute degrades
// to in-process execution with a warning instead of failing.
func Execute(f *spec.File, root uint64, opts spec.Options, cfg Config) (*spec.Output, error) {
	cfg = cfg.withDefaults()
	if len(opts.Custom) > 0 {
		return nil, fmt.Errorf("dist: custom workloads cannot cross process boundaries — run them in-process")
	}
	scs, err := spec.Compile(f, opts)
	if err != nil {
		return nil, err
	}
	if root == 0 {
		root = f.RootSeed()
	}
	raw, err := f.Encode()
	if err != nil {
		return nil, err
	}
	c := &coordinator{
		cfg:    cfg,
		file:   f,
		opts:   opts,
		root:   root,
		raw:    raw,
		scs:    scs,
		runner: harness.Runner{Workers: cfg.Workers, Root: root, ShardMinN: opts.ShardMinN, DenseMin: opts.DenseMin},
	}
	c.refs = c.runner.ExpandAll(scs...)
	c.results = make([]harness.Result, len(c.refs))
	size := cfg.LeaseSize
	if size <= 0 {
		size = defaultLeaseSize(len(c.refs), cfg.Workers)
	}
	c.tbl = newTable(len(c.refs), size)
	c.events = make(chan event, 64)
	c.done = make(chan struct{})
	defer close(c.done)

	if len(c.refs) > 0 {
		if err := c.run(); err != nil {
			return nil, err
		}
	}
	return &spec.Output{
		File:      f,
		Root:      root,
		Quick:     opts.Quick,
		Results:   c.results,
		Summaries: harness.Aggregate(c.results),
	}, nil
}

// run spawns the fleet and drives the event loop to completion.
func (c *coordinator) run() error {
	fleet := c.cfg.Workers
	if fleet > len(c.tbl.leases) {
		fleet = len(c.tbl.leases)
	}
	c.workers = make([]*workerProc, fleet)
	started := 0
	for slot := 0; slot < fleet; slot++ {
		c.workers[slot] = &workerProc{slot: slot}
		if c.spawn(c.workers[slot]) {
			started++
		}
	}
	if started == 0 {
		// No worker process could be spawned at all: degrade gracefully to
		// the in-process parallel runner — identical bytes, no coordination.
		fmt.Fprintf(c.cfg.Log, "dist: warning: no worker process could be spawned (%q); running %d trials in-process\n",
			c.cfg.Command[0], len(c.refs))
		c.results = c.runner.Run(c.scs...)
		for i := range c.results {
			c.tbl.ack(i)
		}
		return nil
	}
	err := c.loop()
	c.shutdownAll()
	if err == nil {
		fmt.Fprintf(c.cfg.Log, "dist: %d trials over %d leases on %d worker slots: %d spawns, %d re-leases, %d speculative grants, %d duplicate results dropped, %d leases finished in-process\n",
			len(c.refs), len(c.tbl.leases), len(c.workers),
			c.stats.spawns, c.stats.releases, c.stats.duplicates, c.stats.dupResults, c.stats.inproc)
	}
	return err
}

// loop is the single-threaded coordination core: every state change —
// frames, exits, liveness, respawns, give-up — happens here.
func (c *coordinator) loop() error {
	tick := c.cfg.HeartbeatTimeout / 4
	if tick < 5*time.Millisecond {
		tick = 5 * time.Millisecond
	}
	if tick > 250*time.Millisecond {
		tick = 250 * time.Millisecond
	}
	ticker := time.NewTicker(tick)
	defer ticker.Stop()
	var ctxDone <-chan struct{}
	if c.opts.Ctx != nil {
		ctxDone = c.opts.Ctx.Done()
	}
	for !c.tbl.allDone() && c.fatal == nil {
		select {
		case ev := <-c.events:
			if ev.msg != nil {
				c.handleMsg(ev.w, ev.msg)
			} else {
				c.handleExit(ev.w, ev.err)
			}
		case <-ticker.C:
			now := time.Now()
			c.checkLiveness(now)
			c.respawnDue(now)
			c.assignIdle()
			c.maybeRunInProcess()
		case <-ctxDone:
			return c.opts.Ctx.Err()
		}
	}
	return c.fatal
}

func (c *coordinator) handleMsg(w *workerProc, m *Message) {
	w.lastSeen = time.Now()
	switch m.Kind {
	case KindReady:
		w.readySeen = true
		c.cfg.Observer.WorkerStarted(w.inc)
		c.assign(w)
	case KindHeartbeat:
		// lastSeen already advanced.
	case KindResult:
		if m.Slot < 0 || m.Slot >= c.tbl.total() {
			c.fatal = fmt.Errorf("dist: worker %d reported slot %d outside [0, %d)", w.inc, m.Slot, c.tbl.total())
			return
		}
		if want := c.refs[m.Slot].Trial.Seed; m.Seed != want {
			// The worker expanded a different trial list — a spec or binary
			// skew no amount of retrying fixes. Results are already suspect.
			c.fatal = fmt.Errorf("dist: worker %d disagrees on slot %d's trial seed (%d != %d) — coordinator and worker are not running the same spec/binary", w.inc, m.Slot, m.Seed, want)
			return
		}
		if c.tbl.ack(m.Slot) {
			c.results[m.Slot] = harness.Result{Trial: c.refs[m.Slot].Trial, Metrics: m.Metrics, Err: m.TrialErr}
			w.fails = 0
			if l := c.tbl.leaseOf(m.Slot); !l.done && c.tbl.remaining(l) == 0 {
				l.done = true
				c.cfg.Observer.LeaseDone(l.id)
			}
		} else {
			c.stats.dupResults++
		}
	case KindLeaseDone:
		if m.LeaseID < 0 || m.LeaseID >= len(c.tbl.leases) {
			c.fatal = fmt.Errorf("dist: worker %d finished unknown lease %d", w.inc, m.LeaseID)
			return
		}
		l := c.tbl.leases[m.LeaseID]
		if l.heldBy(w.slot) {
			c.tbl.release(l, w.slot)
			w.leases = removeLease(w.leases, l)
		}
		if !l.done && c.tbl.remaining(l) == 0 {
			l.done = true
			c.cfg.Observer.LeaseDone(l.id)
		}
		c.assign(w)
	default:
		c.fatal = fmt.Errorf("dist: unexpected %q frame from worker %d", m.Kind, w.inc)
	}
}

// handleExit revokes a dead worker's leases and schedules its respawn.
func (c *coordinator) handleExit(w *workerProc, err error) {
	if !w.live {
		return
	}
	w.live = false
	w.readySeen = false
	reason := "exit"
	if w.killedFor != "" {
		reason = w.killedFor
	} else if err != nil {
		reason = err.Error()
	}
	c.cfg.Observer.WorkerExited(w.inc, reason)
	progressed := false
	for _, l := range w.leases {
		before := l.retries
		c.tbl.release(l, w.slot)
		if !l.done {
			c.stats.releases++
			c.cfg.Observer.LeaseRevoked(l.id, w.inc, reason)
			if l.retries == 0 && before >= 0 {
				progressed = true
			}
			if l.retries > c.cfg.RetryBudget {
				c.runLeaseInProcess(l)
			}
		}
	}
	w.leases = w.leases[:0]
	if progressed {
		w.fails = 0
	} else {
		w.fails++
	}
	if c.tbl.allDone() {
		return
	}
	if w.fails > c.cfg.RetryBudget {
		if !w.gaveUp {
			w.gaveUp = true
			fmt.Fprintf(c.cfg.Log, "dist: warning: worker slot %d failed %d times without progress; not respawning it\n", w.slot, w.fails)
		}
		return
	}
	w.nextSpawn = time.Now().Add(c.backoff(w.fails))
}

// backoff is the capped exponential respawn delay after fails consecutive
// no-progress failures.
func (c *coordinator) backoff(fails int) time.Duration {
	d := c.cfg.BackoffBase
	for i := 1; i < fails; i++ {
		d *= 2
		if d >= c.cfg.BackoffMax {
			return c.cfg.BackoffMax
		}
	}
	if d > c.cfg.BackoffMax {
		d = c.cfg.BackoffMax
	}
	return d
}

// assign hands an idle worker its next unit of work: the lowest pending
// lease, else a speculative duplicate of the most-behind outstanding lease
// (straggler hedging near the end of the sweep).
func (c *coordinator) assign(w *workerProc) {
	if !w.live || !w.readySeen || len(w.leases) > 0 {
		return
	}
	l := c.tbl.pending()
	speculative := false
	if l == nil {
		l = c.tbl.straggler(w.slot)
		speculative = l != nil
	}
	if l == nil {
		return // idle; shutdown arrives once the sweep completes
	}
	skip := c.tbl.skipList(l)
	if err := w.fw.Write(&Message{Kind: KindLease, Lease: &Lease{ID: l.id, Start: l.start, End: l.end, Skip: skip}}); err != nil {
		// The pipe is gone; the reader goroutine delivers the exit event.
		c.kill(w, "lease write failed: "+err.Error())
		return
	}
	c.tbl.grant(l, w.slot)
	w.leases = append(w.leases, l)
	if speculative {
		c.stats.duplicates++
	}
	c.cfg.Observer.LeaseGranted(l.id, w.inc, l.start, l.end)
}

// assignIdle offers work to every idle live worker. A lease released by a
// dead peer must not wait for one of the survivors to produce a
// ready/leaseDone event — they may all be idle already.
func (c *coordinator) assignIdle() {
	for _, w := range c.workers {
		c.assign(w)
	}
}

// checkLiveness kills workers silent past the heartbeat timeout.
func (c *coordinator) checkLiveness(now time.Time) {
	for _, w := range c.workers {
		if w.live && now.Sub(w.lastSeen) > c.cfg.HeartbeatTimeout {
			c.kill(w, "heartbeat timeout")
		}
	}
}

// respawnDue restarts dead worker slots whose backoff has elapsed, as long
// as unfinished leases remain.
func (c *coordinator) respawnDue(now time.Time) {
	if c.tbl.allDone() {
		return
	}
	for _, w := range c.workers {
		if !w.live && !w.gaveUp && !now.Before(w.nextSpawn) {
			c.spawn(w)
		}
	}
}

// maybeRunInProcess is the last line of the degradation ladder: when every
// worker slot has given up and leases remain, the coordinator finishes them
// itself so the sweep still completes with correct bytes.
func (c *coordinator) maybeRunInProcess() {
	if c.tbl.allDone() || c.fatal != nil {
		return
	}
	for _, w := range c.workers {
		if w.live || !w.gaveUp {
			return
		}
	}
	fmt.Fprintf(c.cfg.Log, "dist: warning: all %d worker slots gave up; finishing the sweep in-process\n", len(c.workers))
	for _, l := range c.tbl.leases {
		if !l.done {
			c.runLeaseInProcess(l)
			if c.fatal != nil {
				return
			}
		}
	}
}

// runLeaseInProcess executes a lease's remaining slots on the coordinator's
// own pooled stream — the fallback for poisoned leases and spawn-starved
// runs. Acked slots are skipped and newly settled ones checkpointed exactly
// as worker results are, so mixing in-process and worker execution cannot
// change bytes.
func (c *coordinator) runLeaseInProcess(l *leaseState) {
	if l.done || c.fatal != nil {
		return
	}
	c.stats.inproc++
	fmt.Fprintf(c.cfg.Log, "dist: warning: lease %d [%d, %d) exhausted its retry budget; running its remaining %d trials in-process\n",
		l.id, l.start, l.end, c.tbl.remaining(l))
	if c.stream == nil {
		c.stream = c.runner.Stream(c.scs...)
	}
	err := c.stream.RunRange(c.opts.Ctx, l.start, l.end,
		func(slot int) bool { return c.tbl.acked[slot] },
		func(ref harness.TrialRef, res harness.Result) {
			if c.tbl.ack(ref.Slot) {
				c.results[ref.Slot] = res
			}
		})
	if err != nil {
		c.fatal = err
		return
	}
	if !l.done && c.tbl.remaining(l) == 0 {
		l.done = true
		c.cfg.Observer.LeaseDone(l.id)
	}
}

// spawn starts the next incarnation on a worker slot; false on failure
// (backoff already scheduled).
func (c *coordinator) spawn(w *workerProc) bool {
	inc := c.incs
	c.incs++
	cmd := exec.Command(c.cfg.Command[0], c.cfg.Command[1:]...)
	cmd.Stderr = os.Stderr
	stdin, err := cmd.StdinPipe()
	if err == nil {
		var stdout io.ReadCloser
		stdout, err = cmd.StdoutPipe()
		if err == nil {
			err = cmd.Start()
			if err == nil {
				c.stats.spawns++
				w.inc = inc
				w.cmd = cmd
				w.fw = NewFrameWriter(stdin)
				w.live = true
				w.readySeen = false
				w.killedFor = ""
				w.lastSeen = time.Now()
				if werr := w.fw.Write(&Message{Kind: KindHello, Hello: &Hello{
					Worker:      inc,
					Spec:        c.raw,
					Quick:       c.opts.Quick,
					Root:        c.root,
					ShardMinN:   c.opts.ShardMinN,
					DenseMin:    c.opts.DenseMin,
					HeartbeatMS: int(c.cfg.Heartbeat / time.Millisecond),
					Chaos:       c.cfg.Chaos,
				}}); werr != nil {
					c.kill(w, "hello write failed: "+werr.Error())
				}
				go c.read(w, stdout)
				return true
			}
		}
	}
	fmt.Fprintf(c.cfg.Log, "dist: warning: spawning worker %d (%q): %v\n", inc, c.cfg.Command[0], err)
	w.fails++
	if w.fails > c.cfg.RetryBudget {
		w.gaveUp = true
	} else {
		w.nextSpawn = time.Now().Add(c.backoff(w.fails))
	}
	return false
}

// read is the per-process reader goroutine: it forwards frames to the event
// loop and, when the stream ends, reaps the process and reports the exit.
func (c *coordinator) read(w *workerProc, stdout io.Reader) {
	fr := NewFrameReader(stdout)
	for {
		m, err := fr.Read()
		if err != nil {
			werr := w.cmd.Wait()
			if werr != nil && err == io.EOF {
				err = werr
			}
			if err == io.EOF {
				err = nil // clean exit
			}
			select {
			case c.events <- event{w: w, err: err}:
			case <-c.done:
			}
			return
		}
		select {
		case c.events <- event{w: w, msg: m}:
		case <-c.done:
			return
		}
	}
}

// kill terminates a worker process; bookkeeping happens when its reader
// goroutine reports the exit.
func (c *coordinator) kill(w *workerProc, reason string) {
	if w.killedFor == "" {
		w.killedFor = reason
	}
	if w.cmd != nil && w.cmd.Process != nil {
		_ = w.cmd.Process.Kill()
	}
}

// shutdownAll asks live workers to exit and kills whatever lingers.
func (c *coordinator) shutdownAll() {
	for _, w := range c.workers {
		if w != nil && w.live {
			_ = w.fw.Write(&Message{Kind: KindShutdown})
		}
	}
	// Clean workers exit on the shutdown frame within milliseconds; anything
	// slower is wedged and gets killed — every result is already streamed
	// and checkpointed, so there is nothing to flush. A kill on an
	// already-exited process is a no-op, and the reader goroutines reap
	// every child via cmd.Wait.
	const grace = 250 * time.Millisecond
	deadline := time.After(grace)
	live := func() int {
		n := 0
		for _, w := range c.workers {
			if w != nil && w.live {
				n++
			}
		}
		return n
	}
	for live() > 0 {
		select {
		case ev := <-c.events:
			if ev.msg == nil {
				c.handleExit(ev.w, ev.err)
			}
		case <-deadline:
			for _, w := range c.workers {
				if w != nil && w.live {
					c.kill(w, "shutdown deadline")
				}
			}
			deadline = time.After(grace)
			// One more drain round; if they still will not die we abandon
			// them to the reader goroutines, which reap on c.done.
			for live() > 0 {
				select {
				case ev := <-c.events:
					if ev.msg == nil {
						c.handleExit(ev.w, ev.err)
					}
				case <-deadline:
					return
				}
			}
			return
		}
	}
}

func removeLease(ls []*leaseState, l *leaseState) []*leaseState {
	for i, x := range ls {
		if x == l {
			return append(ls[:i], ls[i+1:]...)
		}
	}
	return ls
}
