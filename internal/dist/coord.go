package dist

import (
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"repro/internal/harness"
	"repro/internal/journal"
	"repro/internal/progress"
	"repro/internal/spec"
)

// Config tunes the coordinator. The zero value is usable: GOMAXPROCS worker
// processes over the fork/exec pipe transport, automatic latency-aware
// lease sizing, production-scale heartbeat and backoff parameters, no
// chaos, and `<this binary> work` as the worker command.
type Config struct {
	// Workers is the number of worker slots (<= 0 = GOMAXPROCS), capped at
	// the lease count. On the pipe transport each slot is a spawned
	// process; on a listener transport each slot is filled by a remote
	// worker as it dials in.
	Workers int
	// Transport supplies worker connections (default: fork/exec of
	// Command over stdin/stdout pipes). A TCPTransport from Listen accepts
	// authenticated remote workers instead. The coordinator never closes
	// the transport — the owner does, which is what lets a serve daemon
	// share one listener across successive runs.
	Transport Transport
	// ConnectWait, on listener transports, bounds how long the
	// coordinator waits with zero live workers (at start, or after every
	// worker disconnected) before degrading to in-process execution
	// (default 60s).
	ConnectWait time.Duration
	// LeaseSize is the number of trial slots per lease (<= 0 = automatic:
	// about four leases per worker). Setting it pins grants to exactly one
	// lease and disables latency-aware sizing.
	LeaseSize int
	// LeaseTarget is the wall time one grant should aim for under the
	// latency-aware policy (default 2s); LeaseCeil caps a single grant's
	// slot count (default 4 leases' worth). See LeasePolicy.
	LeaseTarget time.Duration
	LeaseCeil   int
	// Heartbeat is the interval workers emit liveness frames at
	// (default 500ms).
	Heartbeat time.Duration
	// HeartbeatTimeout is the silence after which a worker is declared dead,
	// killed, and its leases revoked (default 3s). Results count as
	// heartbeats, so only a truly wedged worker trips it.
	HeartbeatTimeout time.Duration
	// RetryBudget bounds consecutive no-progress grants of one lease and
	// consecutive failed (re)spawns of one worker slot before the
	// coordinator stops trusting processes and runs the work in-process
	// (default 8).
	RetryBudget int
	// BackoffBase/BackoffMax shape the capped exponential backoff between
	// respawns of a failed worker slot (defaults 100ms / 5s). Backoff
	// resets whenever the slot acks a trial.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// Chaos is the deterministic fault-injection schedule shipped to
	// workers (zero value = none).
	Chaos ChaosSpec
	// CheckpointDir, when set, makes the run durable: every acked trial is
	// journaled there before the in-memory ack, and a rerun against the
	// same directory resumes — replaying completed trials, re-leasing only
	// the rest — after verifying the journal belongs to this exact run.
	CheckpointDir string
	// CheckpointSync batches the journal's fsyncs (0 = sync every append;
	// see journal.Options.SyncInterval).
	CheckpointSync time.Duration
	// Command is the worker argv for the default pipe transport (default:
	// this binary with the single argument "work"). Ignored when
	// Transport is set.
	Command []string
	// Log receives warnings and the end-of-run coordination summary
	// (default: discard). It is written only from the coordinator's event
	// loop.
	Log io.Writer
	// Observer, when non-nil, receives lease lifecycle events.
	Observer progress.LeaseObserver
}

func (cfg Config) withDefaults() Config {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.ConnectWait <= 0 {
		cfg.ConnectWait = 60 * time.Second
	}
	if cfg.LeaseTarget <= 0 {
		cfg.LeaseTarget = 2 * time.Second
	}
	if cfg.Heartbeat <= 0 {
		cfg.Heartbeat = 500 * time.Millisecond
	}
	if cfg.HeartbeatTimeout <= 0 {
		cfg.HeartbeatTimeout = 3 * time.Second
	}
	if cfg.HeartbeatTimeout < 2*cfg.Heartbeat {
		cfg.HeartbeatTimeout = 2 * cfg.Heartbeat
	}
	if cfg.RetryBudget <= 0 {
		cfg.RetryBudget = 8
	}
	if cfg.BackoffBase <= 0 {
		cfg.BackoffBase = 100 * time.Millisecond
	}
	if cfg.BackoffMax <= 0 {
		cfg.BackoffMax = 5 * time.Second
	}
	if cfg.Transport == nil {
		if len(cfg.Command) == 0 {
			exe, err := os.Executable()
			if err != nil {
				exe = os.Args[0]
			}
			cfg.Command = []string{exe, "work"}
		}
		cfg.Transport = NewProcTransport(cfg.Command)
	}
	if cfg.Log == nil {
		cfg.Log = io.Discard
	}
	if cfg.Observer == nil {
		cfg.Observer = progress.LeaseFuncs{}
	}
	return cfg
}

// workerProc is one worker slot: a position in the fleet that successive
// worker incarnations occupy — process respawns over pipes, reconnecting
// remote workers over sockets.
type workerProc struct {
	slot int
	inc  int // incarnation number of the current/last worker
	conn Conn

	live      bool
	readySeen bool
	lastSeen  time.Time
	leases    []*leaseState
	// policy sizes this incarnation's grants from its measured per-trial
	// round trip; it resets on attach so a fresh link earns its own trust.
	policy LeasePolicy
	// lastMark anchors the next round-trip sample: the latest grant or
	// result on an outstanding grant.
	lastMark time.Time
	// fails counts consecutive spawn failures / exits without an ack;
	// it drives backoff and the give-up decision, and resets on progress.
	fails     int
	nextSpawn time.Time
	gaveUp    bool
	killedFor string // set when the coordinator killed the worker
}

// event is one item on the coordinator's single event stream: a frame from
// a worker, or (msg == nil) its exit.
type event struct {
	w   *workerProc
	msg *Message
	err error
}

type coordinator struct {
	cfg     Config
	file    *spec.File
	opts    spec.Options
	root    uint64
	raw     []byte
	scs     []*harness.Scenario
	runner  harness.Runner
	refs    []harness.TrialRef
	results []harness.Result
	tbl     *table
	events  chan event
	done    chan struct{}
	workers []*workerProc
	incs    int
	// async is set for listener transports: slots fill from Accepts
	// instead of Spawn, and ConnectWait bounds the worker drought.
	async bool
	// lastAlive is the latest moment at least one worker was attached (or
	// the run start); the ConnectWait clock measures from it.
	lastAlive time.Time
	stream    *harness.Stream // lazy; in-process execution of poisoned leases
	fatal     error
	// jn is the durability journal (nil without -checkpoint); replayed
	// counts slots restored from it, ckptAppends records appended through
	// this process (the coordkill chaos trigger).
	jn          *journal.Journal
	replayed    int
	ckptAppends int

	stats struct {
		spawns, releases, duplicates, dupResults, inproc int
	}
}

// Execute runs the spec file across workers and returns an Output
// byte-for-byte equal to spec.ExecuteFile's for the same (file, root, opts):
// per-trial results in canonical slot order, merged by first-writer-wins on
// the slot index. root == 0 selects the file's own seed policy. Specs that
// reference custom workloads cannot cross a process boundary and are
// rejected. When no worker can be obtained at all — spawning fails on the
// pipe transport, or no remote worker connects within ConnectWait on a
// listener transport — Execute degrades to in-process execution with a
// warning instead of failing.
func Execute(f *spec.File, root uint64, opts spec.Options, cfg Config) (*spec.Output, error) {
	cfg = cfg.withDefaults()
	if len(opts.Custom) > 0 {
		return nil, fmt.Errorf("dist: custom workloads cannot cross process boundaries — run them in-process")
	}
	scs, err := spec.Compile(f, opts)
	if err != nil {
		return nil, err
	}
	if root == 0 {
		root = f.RootSeed()
	}
	raw, err := f.Encode()
	if err != nil {
		return nil, err
	}
	c := &coordinator{
		cfg:  cfg,
		file: f,
		opts: opts,
		root: root,
		raw:  raw,
		scs:  scs,
		// OnTrial on the runner covers the wholesale in-process fallback
		// (Runner.Run fires it); the coordinator fires it by hand for
		// worker results and per-lease fallbacks, once per fresh ack.
		runner: harness.Runner{Workers: cfg.Workers, Root: root, ShardMinN: opts.ShardMinN, DenseMin: opts.DenseMin, OnTrial: opts.OnTrial},
		async:  cfg.Transport.Accepts() != nil,
	}
	c.refs = c.runner.ExpandAll(scs...)
	c.results = make([]harness.Result, len(c.refs))
	size := cfg.LeaseSize
	if size <= 0 {
		size = defaultLeaseSize(len(c.refs), cfg.Workers)
	}
	c.tbl = newTable(len(c.refs), size)
	c.events = make(chan event, 64)
	c.done = make(chan struct{})
	defer close(c.done)

	if cfg.CheckpointDir != "" && len(c.refs) > 0 {
		if err := c.openCheckpoint(); err != nil {
			return nil, err
		}
		defer c.jn.Close()
	}
	if len(c.refs) > 0 {
		if err := c.run(); err != nil {
			return nil, err
		}
		// The run completed: make the journal's tail durable before the
		// caller writes artifacts, so a post-run crash cannot strand a
		// checkpoint behind the outputs derived from it.
		if c.jn != nil {
			if err := c.jn.Sync(); err != nil {
				return nil, err
			}
		}
	}
	return &spec.Output{
		File:      f,
		Root:      root,
		Quick:     opts.Quick,
		Results:   c.results,
		Summaries: harness.Aggregate(c.results),
	}, nil
}

// newPolicy builds one incarnation's grant-sizing policy. A pinned
// LeaseSize disables latency-aware sizing: every grant is exactly one
// lease, the PR 7 behavior tests rely on.
func (c *coordinator) newPolicy() LeasePolicy {
	floor := c.tbl.size
	ceil := c.cfg.LeaseCeil
	if c.cfg.LeaseSize > 0 {
		ceil = floor
	} else if ceil <= 0 {
		ceil = 4 * floor
	}
	return LeasePolicy{Floor: floor, Ceil: ceil, Target: c.cfg.LeaseTarget}.withDefaults()
}

// run populates the fleet and drives the event loop to completion.
func (c *coordinator) run() error {
	if c.tbl.allDone() {
		// Every slot was replayed from the checkpoint; there is nothing to
		// lease, so no worker is spawned at all.
		fmt.Fprintf(c.cfg.Log, "dist: checkpoint already holds all %d trials; nothing to re-run\n", len(c.refs))
		return nil
	}
	fleet := c.cfg.Workers
	if fleet > len(c.tbl.leases) {
		fleet = len(c.tbl.leases)
	}
	c.workers = make([]*workerProc, fleet)
	c.lastAlive = time.Now()
	started := 0
	for slot := 0; slot < fleet; slot++ {
		c.workers[slot] = &workerProc{slot: slot}
		if !c.async && c.spawn(c.workers[slot]) {
			started++
		}
	}
	if !c.async && started == 0 {
		// No worker process could be spawned at all: degrade gracefully to
		// the in-process parallel runner — identical bytes, no coordination.
		// Trials already replayed from a checkpoint are recomputed (the
		// pooled runner has no skip list) but keep their journaled results;
		// determinism makes the two identical anyway.
		fmt.Fprintf(c.cfg.Log, "dist: warning: no worker process could be spawned (%q); running %d trials in-process\n",
			c.cfg.Command[0], len(c.refs))
		for i, res := range c.runner.Run(c.scs...) {
			if c.tbl.acked[i] {
				continue
			}
			if !c.checkpointAppend(i, res.Metrics, res.Err) {
				return c.fatal
			}
			c.tbl.ack(i)
			c.results[i] = res
		}
		return nil
	}
	err := c.loop()
	c.shutdownAll()
	if err == nil {
		fmt.Fprintf(c.cfg.Log, "dist: %d trials over %d leases on %d worker slots: %d spawns, %d re-leases, %d speculative grants, %d duplicate results dropped, %d leases finished in-process\n",
			len(c.refs), len(c.tbl.leases), len(c.workers),
			c.stats.spawns, c.stats.releases, c.stats.duplicates, c.stats.dupResults, c.stats.inproc)
	}
	return err
}

// loop is the single-threaded coordination core: every state change —
// frames, exits, attaches, liveness, respawns, give-up — happens here.
func (c *coordinator) loop() error {
	tick := c.cfg.HeartbeatTimeout / 4
	if tick < 5*time.Millisecond {
		tick = 5 * time.Millisecond
	}
	if tick > 250*time.Millisecond {
		tick = 250 * time.Millisecond
	}
	ticker := time.NewTicker(tick)
	defer ticker.Stop()
	var ctxDone <-chan struct{}
	if c.opts.Ctx != nil {
		ctxDone = c.opts.Ctx.Done()
	}
	for !c.tbl.allDone() && c.fatal == nil {
		// Accept a parked remote connection only while a slot can take it;
		// a nil channel blocks forever, disabling the case.
		var acceptCh <-chan Conn
		if c.async && c.freeSlot() != nil {
			acceptCh = c.cfg.Transport.Accepts()
		}
		select {
		case ev := <-c.events:
			if ev.msg != nil {
				c.handleMsg(ev.w, ev.msg)
			} else {
				c.handleExit(ev.w, ev.err)
			}
		case conn := <-acceptCh:
			c.attach(c.freeSlot(), conn)
		case <-ticker.C:
			now := time.Now()
			c.checkLiveness(now)
			c.respawnDue(now)
			c.checkConnectWait(now)
			c.assignIdle()
			c.maybeRunInProcess()
		case <-ctxDone:
			return c.opts.Ctx.Err()
		}
	}
	return c.fatal
}

// freeSlot returns a slot a fresh remote connection may occupy, or nil.
func (c *coordinator) freeSlot() *workerProc {
	for _, w := range c.workers {
		if !w.live && !w.gaveUp {
			return w
		}
	}
	return nil
}

// anyLive reports whether any worker is currently attached.
func (c *coordinator) anyLive() bool {
	for _, w := range c.workers {
		if w.live {
			return true
		}
	}
	return false
}

// checkConnectWait is the listener transport's drought detector: with zero
// live workers for ConnectWait — nobody ever dialed in, or everyone
// disconnected and nobody came back — the remaining slots give up, and
// maybeRunInProcess finishes the sweep locally.
func (c *coordinator) checkConnectWait(now time.Time) {
	if !c.async || c.tbl.allDone() {
		return
	}
	if c.anyLive() {
		c.lastAlive = now
		return
	}
	if now.Sub(c.lastAlive) <= c.cfg.ConnectWait {
		return
	}
	gave := false
	for _, w := range c.workers {
		if !w.gaveUp {
			w.gaveUp = true
			gave = true
		}
	}
	if gave {
		fmt.Fprintf(c.cfg.Log, "dist: warning: no remote worker connected for %v; finishing the sweep in-process\n", c.cfg.ConnectWait)
	}
}

func (c *coordinator) handleMsg(w *workerProc, m *Message) {
	now := time.Now()
	w.lastSeen = now
	switch m.Kind {
	case KindReady:
		w.readySeen = true
		c.cfg.Observer.WorkerStarted(w.inc)
		c.assign(w)
	case KindHeartbeat:
		// lastSeen already advanced.
	case KindResult:
		if m.Slot < 0 || m.Slot >= c.tbl.total() {
			c.fatal = fmt.Errorf("dist: worker %d reported slot %d outside [0, %d)", w.inc, m.Slot, c.tbl.total())
			return
		}
		if want := c.refs[m.Slot].Trial.Seed; m.Seed != want {
			// The worker expanded a different trial list — a spec or binary
			// skew no amount of retrying fixes. Results are already suspect.
			c.fatal = fmt.Errorf("dist: worker %d disagrees on slot %d's trial seed (%d != %d) — coordinator and worker are not running the same spec/binary", w.inc, m.Slot, m.Seed, want)
			return
		}
		// One per-trial round-trip sample for the lease policy: the first
		// result of a grant measures grant→result (link round trip
		// included), the rest inter-result gaps.
		if !w.lastMark.IsZero() {
			w.policy.Observe(now.Sub(w.lastMark))
		}
		w.lastMark = now
		if c.tbl.acked[m.Slot] {
			c.stats.dupResults++
			return
		}
		// Journal first, ack second: the bitmap must never lead the
		// durable record, or a crash between the two un-completes a trial
		// the journal promised was done.
		if !c.checkpointAppend(m.Slot, m.Metrics, m.TrialErr) {
			return
		}
		c.tbl.ack(m.Slot)
		c.results[m.Slot] = harness.Result{Trial: c.refs[m.Slot].Trial, Metrics: m.Metrics, Err: m.TrialErr}
		w.fails = 0
		c.notifyTrial(m.Slot)
		if l := c.tbl.leaseOf(m.Slot); !l.done && c.tbl.remaining(l) == 0 {
			l.done = true
			c.cfg.Observer.LeaseDone(l.id)
		}
	case KindLeaseDone:
		if m.LeaseID < 0 || m.LeaseID >= len(c.tbl.leases) {
			c.fatal = fmt.Errorf("dist: worker %d finished unknown lease %d", w.inc, m.LeaseID)
			return
		}
		l := c.tbl.leases[m.LeaseID]
		if l.heldBy(w.slot) {
			c.tbl.release(l, w.slot)
			w.leases = removeLease(w.leases, l)
		}
		if !l.done && c.tbl.remaining(l) == 0 {
			l.done = true
			c.cfg.Observer.LeaseDone(l.id)
		}
		c.assign(w)
	default:
		c.fatal = fmt.Errorf("dist: unexpected %q frame from worker %d", m.Kind, w.inc)
	}
}

// notifyTrial forwards one freshly acked slot's result to the OnTrial
// hook, so progress streaming (the serve layer's SSE trial events) works
// under distributed execution too. Ack-gating keeps it exactly-once per
// slot; arrival order is scheduling-dependent, exactly as it is for the
// pooled in-process runner.
func (c *coordinator) notifyTrial(slot int) {
	if c.opts.OnTrial != nil {
		c.opts.OnTrial(c.results[slot])
	}
}

// handleExit revokes a dead worker's leases and schedules its respawn.
func (c *coordinator) handleExit(w *workerProc, err error) {
	if !w.live {
		return
	}
	w.live = false
	w.readySeen = false
	w.conn = nil
	w.lastMark = time.Time{}
	c.lastAlive = time.Now()
	reason := "exit"
	if w.killedFor != "" {
		reason = w.killedFor
	} else if err != nil {
		reason = err.Error()
	}
	c.cfg.Observer.WorkerExited(w.inc, reason)
	progressed := false
	for _, l := range w.leases {
		before := l.retries
		c.tbl.release(l, w.slot)
		if !l.done {
			c.stats.releases++
			c.cfg.Observer.LeaseRevoked(l.id, w.inc, reason)
			if l.retries == 0 && before >= 0 {
				progressed = true
			}
			if l.retries > c.cfg.RetryBudget {
				c.runLeaseInProcess(l)
			}
		}
	}
	w.leases = w.leases[:0]
	if progressed {
		w.fails = 0
	} else {
		w.fails++
	}
	if c.tbl.allDone() {
		return
	}
	if w.fails > c.cfg.RetryBudget {
		if !w.gaveUp {
			w.gaveUp = true
			fmt.Fprintf(c.cfg.Log, "dist: warning: worker slot %d failed %d times without progress; not respawning it\n", w.slot, w.fails)
		}
		return
	}
	w.nextSpawn = time.Now().Add(c.backoff(w.fails))
}

// backoff is the capped exponential respawn delay after fails consecutive
// no-progress failures.
func (c *coordinator) backoff(fails int) time.Duration {
	d := c.cfg.BackoffBase
	for i := 1; i < fails; i++ {
		d *= 2
		if d >= c.cfg.BackoffMax {
			return c.cfg.BackoffMax
		}
	}
	if d > c.cfg.BackoffMax {
		d = c.cfg.BackoffMax
	}
	return d
}

// assign hands an idle worker its next unit of work: a bundle of pending
// leases sized by its latency policy (the lowest pending leases, granted
// back to back so the worker streams through them without another round
// trip), else a speculative duplicate of the most-behind outstanding lease
// (straggler hedging near the end of the sweep).
func (c *coordinator) assign(w *workerProc) {
	if !w.live || !w.readySeen || len(w.leases) > 0 {
		return
	}
	want := w.policy.Slots()
	granted := 0
	for granted < want {
		l := c.tbl.pending()
		if l == nil {
			break
		}
		if !c.grantTo(w, l, false) {
			return
		}
		granted += c.tbl.remaining(l)
	}
	if granted > 0 {
		w.lastMark = time.Now()
		return
	}
	if l := c.tbl.straggler(w.slot); l != nil {
		if c.grantTo(w, l, true) {
			w.lastMark = time.Now()
		}
	}
	// Otherwise idle; shutdown arrives once the sweep completes.
}

// grantTo writes one lease grant; false means the connection died (the
// reader goroutine delivers the exit event).
func (c *coordinator) grantTo(w *workerProc, l *leaseState, speculative bool) bool {
	skip := c.tbl.skipList(l)
	if err := w.conn.Write(&Message{Kind: KindLease, Lease: &Lease{ID: l.id, Start: l.start, End: l.end, Skip: skip}}); err != nil {
		c.kill(w, "lease write failed: "+err.Error())
		return false
	}
	c.tbl.grant(l, w.slot)
	w.leases = append(w.leases, l)
	if speculative {
		c.stats.duplicates++
	}
	c.cfg.Observer.LeaseGranted(l.id, w.inc, l.start, l.end)
	return true
}

// assignIdle offers work to every idle live worker. A lease released by a
// dead peer must not wait for one of the survivors to produce a
// ready/leaseDone event — they may all be idle already.
func (c *coordinator) assignIdle() {
	for _, w := range c.workers {
		c.assign(w)
	}
}

// checkLiveness kills workers silent past the heartbeat timeout.
func (c *coordinator) checkLiveness(now time.Time) {
	for _, w := range c.workers {
		if w.live && now.Sub(w.lastSeen) > c.cfg.HeartbeatTimeout {
			c.kill(w, "heartbeat timeout")
		}
	}
}

// respawnDue restarts dead worker slots whose backoff has elapsed, as long
// as unfinished leases remain. Listener transports cannot respawn remote
// processes; their slots refill from Accepts instead.
func (c *coordinator) respawnDue(now time.Time) {
	if c.async || c.tbl.allDone() {
		return
	}
	for _, w := range c.workers {
		if !w.live && !w.gaveUp && !now.Before(w.nextSpawn) {
			c.spawn(w)
		}
	}
}

// maybeRunInProcess is the last line of the degradation ladder: when every
// worker slot has given up and leases remain, the coordinator finishes them
// itself so the sweep still completes with correct bytes.
func (c *coordinator) maybeRunInProcess() {
	if c.tbl.allDone() || c.fatal != nil {
		return
	}
	for _, w := range c.workers {
		if w.live || !w.gaveUp {
			return
		}
	}
	fmt.Fprintf(c.cfg.Log, "dist: warning: all %d worker slots gave up; finishing the sweep in-process\n", len(c.workers))
	for _, l := range c.tbl.leases {
		if !l.done {
			c.runLeaseInProcess(l)
			if c.fatal != nil {
				return
			}
		}
	}
}

// runLeaseInProcess executes a lease's remaining slots on the coordinator's
// own pooled stream — the fallback for poisoned leases and worker-starved
// runs. Acked slots are skipped and newly settled ones checkpointed exactly
// as worker results are, so mixing in-process and worker execution cannot
// change bytes.
func (c *coordinator) runLeaseInProcess(l *leaseState) {
	if l.done || c.fatal != nil {
		return
	}
	c.stats.inproc++
	fmt.Fprintf(c.cfg.Log, "dist: warning: lease %d [%d, %d) exhausted its retry budget; running its remaining %d trials in-process\n",
		l.id, l.start, l.end, c.tbl.remaining(l))
	if c.stream == nil {
		c.stream = c.runner.Stream(c.scs...)
	}
	err := c.stream.RunRange(c.opts.Ctx, l.start, l.end,
		func(slot int) bool { return c.tbl.acked[slot] },
		func(ref harness.TrialRef, res harness.Result) {
			if c.tbl.acked[ref.Slot] || c.fatal != nil {
				return
			}
			if !c.checkpointAppend(ref.Slot, res.Metrics, res.Err) {
				return
			}
			c.tbl.ack(ref.Slot)
			c.results[ref.Slot] = res
			c.notifyTrial(ref.Slot)
		})
	if err != nil {
		c.fatal = err
		return
	}
	if !l.done && c.tbl.remaining(l) == 0 {
		l.done = true
		c.cfg.Observer.LeaseDone(l.id)
	}
}

// spawn starts the next incarnation on a worker slot over a synchronous
// transport; false on failure (backoff already scheduled).
func (c *coordinator) spawn(w *workerProc) bool {
	conn, err := c.cfg.Transport.Spawn()
	if err == nil && conn != nil {
		c.attach(w, conn)
		return true
	}
	fmt.Fprintf(c.cfg.Log, "dist: warning: spawning worker %d (%q): %v\n", c.incs, c.cfg.Command[0], err)
	w.fails++
	if w.fails > c.cfg.RetryBudget {
		w.gaveUp = true
	} else {
		w.nextSpawn = time.Now().Add(c.backoff(w.fails))
	}
	return false
}

// attach binds a live connection to a worker slot as a fresh incarnation:
// hello goes out, the reader goroutine starts, and the slot's lease policy
// resets so the new link earns its own grant size.
func (c *coordinator) attach(w *workerProc, conn Conn) {
	inc := c.incs
	c.incs++
	c.stats.spawns++
	w.inc = inc
	w.conn = conn
	w.live = true
	w.readySeen = false
	w.killedFor = ""
	w.lastSeen = time.Now()
	w.lastMark = time.Time{}
	w.policy = c.newPolicy()
	c.lastAlive = w.lastSeen
	if werr := conn.Write(&Message{Kind: KindHello, Hello: &Hello{
		Worker:      inc,
		Spec:        c.raw,
		Quick:       c.opts.Quick,
		Root:        c.root,
		ShardMinN:   c.opts.ShardMinN,
		DenseMin:    c.opts.DenseMin,
		HeartbeatMS: int(c.cfg.Heartbeat / time.Millisecond),
		Chaos:       c.cfg.Chaos,
	}}); werr != nil {
		c.kill(w, "hello write failed: "+werr.Error())
	}
	go c.read(w, conn)
}

// read is the per-connection reader goroutine: it forwards frames to the
// event loop and, when the stream ends, reaps the worker and reports the
// exit.
func (c *coordinator) read(w *workerProc, conn Conn) {
	readLoop(conn, func(m *Message, err error) bool {
		if m != nil {
			select {
			case c.events <- event{w: w, msg: m}:
				return true
			case <-c.done:
				return false
			}
		}
		select {
		case c.events <- event{w: w, err: err}:
		case <-c.done:
		}
		return false
	})
}

// kill terminates a worker abruptly; bookkeeping happens when its reader
// goroutine reports the death.
func (c *coordinator) kill(w *workerProc, reason string) {
	if w.killedFor == "" {
		w.killedFor = reason
	}
	if w.conn != nil {
		w.conn.Kill()
	}
}

// shutdownAll asks live workers to exit and kills whatever lingers. On an
// interrupted run (SIGINT/SIGTERM cancelled the context) there is no point
// being polite — a worker mid-trial will not read the shutdown frame until
// the trial finishes, which on a large scenario is exactly the window that
// leaves orphans behind the operator's ^C — so every live worker is killed
// outright and reaped before Execute returns.
func (c *coordinator) shutdownAll() {
	interrupted := c.opts.Ctx != nil && c.opts.Ctx.Err() != nil
	for _, w := range c.workers {
		if w != nil && w.live {
			if interrupted {
				c.kill(w, "run interrupted")
			} else {
				_ = w.conn.Write(&Message{Kind: KindShutdown})
			}
		}
	}
	// Clean workers exit on the shutdown frame within milliseconds; anything
	// slower is wedged and gets killed — every result is already streamed
	// and checkpointed, so there is nothing to flush. A kill on an
	// already-dead worker is a no-op, and the reader goroutines reap every
	// connection via Conn.Wait.
	const grace = 250 * time.Millisecond
	deadline := time.After(grace)
	live := func() int {
		n := 0
		for _, w := range c.workers {
			if w != nil && w.live {
				n++
			}
		}
		return n
	}
	for live() > 0 {
		select {
		case ev := <-c.events:
			if ev.msg == nil {
				c.handleExit(ev.w, ev.err)
			}
		case <-deadline:
			for _, w := range c.workers {
				if w != nil && w.live {
					c.kill(w, "shutdown deadline")
				}
			}
			deadline = time.After(grace)
			// One more drain round; if they still will not die we abandon
			// them to the reader goroutines, which reap on c.done.
			for live() > 0 {
				select {
				case ev := <-c.events:
					if ev.msg == nil {
						c.handleExit(ev.w, ev.err)
					}
				case <-deadline:
					return
				}
			}
			return
		}
	}
}

func removeLease(ls []*leaseState, l *leaseState) []*leaseState {
	for i, x := range ls {
		if x == l {
			return append(ls[:i], ls[i+1:]...)
		}
	}
	return ls
}
