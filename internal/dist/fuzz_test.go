package dist

import (
	"bytes"
	"encoding/binary"
	"flag"
	"os"
	"path/filepath"
	"strconv"
	"testing"
)

var updateFuzzCorpus = flag.Bool("update-fuzz-corpus", false, "rewrite the testdata/fuzz/FuzzReadFrame seed corpus from the live codec")

// TestWriteFuzzCorpus regenerates the checked-in seed corpus (run with
// -update-fuzz-corpus after changing the frame codec). Keeping the corpus in
// the repo lets `go test -fuzz` start from interesting inputs and lets plain
// `go test` replay them as regression cases.
func TestWriteFuzzCorpus(t *testing.T) {
	if !*updateFuzzCorpus {
		t.Skip("corpus regeneration runs only with -update-fuzz-corpus")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzReadFrame")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	entries := map[string][]byte{
		"seed_ready":        frameBytes(t, &Message{Kind: KindReady}),
		"seed_challenge":    frameBytes(t, &Message{Kind: KindChallenge, Challenge: &Challenge{Nonce: "00ff", Proto: ProtoVersion, Code: "dev"}}),
		"seed_lease":        frameBytes(t, &Message{Kind: KindLease, Lease: &Lease{ID: 1, Start: 0, End: 7, Skip: []int{2, 3}}}),
		"seed_result":       frameBytes(t, &Message{Kind: KindResult, LeaseID: 1, Slot: 3, Seed: 42, Metrics: map[string]float64{"rounds": 17}}),
		"seed_two_frames":   append(frameBytes(t, &Message{Kind: KindHeartbeat}), frameBytes(t, &Message{Kind: KindShutdown})...),
		"seed_bad_crc":      corruptFrameBytes(t, &Message{Kind: KindReady}),
		"seed_short_prefix": {0x00, 0x00},
		"seed_short_body":   {0x00, 0x00, 0x00, 0x10, 0x00, 0x00, 0x00, 0x00, '{'},
		"seed_oversize":     {0xff, 0xff, 0xff, 0xff, 0x00, 0x00, 0x00, 0x00},
		"seed_empty_body":   {0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00},
		"seed_not_json":     {0x00, 0x00, 0x00, 0x04, 0x00, 0x00, 0x00, 0x00, 'a', 'b', 'c', 'd'},
	}
	for name, data := range entries {
		content := "go test fuzz v1\n[]byte(" + strconv.Quote(string(data)) + ")\n"
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// frameBytes encodes m through the real writer, so seeds stay valid if the
// codec evolves.
func frameBytes(tb testing.TB, m *Message) []byte {
	tb.Helper()
	var buf bytes.Buffer
	if err := NewFrameWriter(&buf).Write(m); err != nil {
		tb.Fatalf("encoding seed frame: %v", err)
	}
	return buf.Bytes()
}

// corruptFrameBytes encodes m with its body flipped after the CRC was
// computed — the exact wire image a `-chaos corrupt` worker emits.
func corruptFrameBytes(tb testing.TB, m *Message) []byte {
	tb.Helper()
	var buf bytes.Buffer
	fw := NewFrameWriter(&buf)
	fw.CorruptNext()
	if err := fw.Write(m); err != nil {
		tb.Fatalf("encoding corrupt seed frame: %v", err)
	}
	return buf.Bytes()
}

// FuzzReadFrame hammers the frame decoder with arbitrary byte streams: the
// listener hands it raw network input before authentication completes, so it
// must fail cleanly — typed error or EOF, never a panic, never a frame
// fabricated from garbage, never an allocation driven by a hostile length
// prefix (the MaxFrame check refuses oversize claims before allocating).
func FuzzReadFrame(f *testing.F) {
	// Valid single frames of each shape the wire carries.
	f.Add(frameBytes(f, &Message{Kind: KindReady}))
	f.Add(frameBytes(f, &Message{Kind: KindChallenge, Challenge: &Challenge{Nonce: "00ff", Proto: ProtoVersion, Code: "dev"}}))
	f.Add(frameBytes(f, &Message{Kind: KindLease, Lease: &Lease{ID: 1, Start: 0, End: 7, Skip: []int{2, 3}}}))
	f.Add(frameBytes(f, &Message{Kind: KindResult, LeaseID: 1, Slot: 3, Seed: 42, Metrics: map[string]float64{"rounds": 17}}))
	// Two frames back to back: the reader must consume exactly one per call.
	f.Add(append(frameBytes(f, &Message{Kind: KindHeartbeat}), frameBytes(f, &Message{Kind: KindShutdown})...))
	// A frame corrupted in flight: body flipped after the CRC was computed.
	f.Add(corruptFrameBytes(f, &Message{Kind: KindReady}))
	// Truncated header, truncated body, oversize claim, empty frame,
	// valid length + zero CRC over non-JSON bytes.
	f.Add([]byte{0x00, 0x00})
	f.Add([]byte{0x00, 0x00, 0x00, 0x10, 0x00, 0x00, 0x00, 0x00, '{'})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0x00, 0x00, 0x00, 0x00})
	f.Add([]byte{0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00})
	f.Add([]byte{0x00, 0x00, 0x00, 0x04, 0x00, 0x00, 0x00, 0x00, 'a', 'b', 'c', 'd'})

	f.Fuzz(func(t *testing.T, data []byte) {
		fr := NewFrameReader(bytes.NewReader(data))
		consumed := 0
		for {
			m, err := fr.Read()
			if err != nil {
				// Any error is acceptable; looping further would only re-read
				// a poisoned buffered stream.
				return
			}
			if m == nil {
				t.Fatal("Read returned nil message with nil error")
			}
			// A successfully decoded frame implies the stream really carried
			// a length-prefixed, checksummed body within bounds; check the
			// header honestly describes a body we had.
			if consumed+frameHeader > len(data) {
				t.Fatalf("frame decoded beyond input: consumed %d of %d", consumed, len(data))
			}
			n := int(binary.BigEndian.Uint32(data[consumed : consumed+4]))
			if n > MaxFrame {
				t.Fatalf("decoded a frame whose prefix claims %d bytes > MaxFrame", n)
			}
			if consumed+frameHeader+n > len(data) {
				t.Fatalf("decoded a frame longer than the remaining input (%d+%d of %d)", consumed+frameHeader, n, len(data))
			}
			consumed += frameHeader + n
		}
	})
}

// TestReadFrameSeedCorpus replays the checked-in corpus under ordinary
// `go test` so the regression inputs run in CI even without -fuzz.
func TestReadFrameSeedCorpus(t *testing.T) {
	cases := [][]byte{
		frameBytes(t, &Message{Kind: KindReady}),
		corruptFrameBytes(t, &Message{Kind: KindReady}),
		{0x00, 0x00},
		{0xff, 0xff, 0xff, 0xff, 0x00, 0x00, 0x00, 0x00},
		{0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00},
		{0x00, 0x00, 0x00, 0x04, 0x00, 0x00, 0x00, 0x00, 'a', 'b', 'c', 'd'},
	}
	for i, data := range cases {
		fr := NewFrameReader(bytes.NewReader(data))
		for {
			if _, err := fr.Read(); err != nil {
				break
			}
		}
		_ = i // each case must simply terminate without panicking
	}
}
