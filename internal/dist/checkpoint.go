package dist

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/harness"
	"repro/internal/journal"
	"repro/internal/spec"
)

// Durable checkpointing for the coordinator: with Config.CheckpointDir set,
// every acked trial is appended to an on-disk journal BEFORE the in-memory
// bitmap ack, so a coordinator that dies — OOM, node reboot, SIGKILL —
// loses at most the unsynced tail of its progress, never the run. A restart
// against the same directory replays the journal, verifies it belongs to
// the identical run (spec hash, code version, root seed, quick mode, trial
// count — a mismatch is a typed refusal in the same style as the handshake
// rejects), rebuilds the ack bitmap, and re-leases only the unacked slots.
//
// The byte-identity argument from the lease table extends verbatim: a
// trial's Result is a pure function of its Trial value, the journal record
// preserves the exact metrics the trial settled with (float64s survive the
// JSON round trip byte-for-byte via Go's shortest-representation encoding,
// the same property the worker result frames already rely on), and merged
// results live in canonical slot order — so a resumed run's artifacts are
// indistinguishable from an uninterrupted one's.

// checkpointFile is the journal's name inside CheckpointDir.
const checkpointFile = "run.journal"

// checkpointFormat versions the journal payloads themselves, independent of
// the frame protocol.
const checkpointFormat = "radiobfs-dist-checkpoint/v1"

// checkpointIdentity is the journal's header frame: everything that must
// match before replaying a single record, because results from a different
// spec, binary, seed, or trial expansion would silently poison the merge.
type checkpointIdentity struct {
	Format   string `json:"format"`
	SpecHash string `json:"specHash"`
	Code     string `json:"code"`
	Root     uint64 `json:"root"`
	Quick    bool   `json:"quick,omitempty"`
	Trials   int    `json:"trials"`
}

// checkpointRecord is one acked slot: the same fields a worker's result
// frame carries, which is what makes replay equivalent to re-receiving it.
type checkpointRecord struct {
	Slot     int                `json:"slot"`
	Seed     uint64             `json:"seed"`
	Metrics  map[string]float64 `json:"metrics,omitempty"`
	TrialErr string             `json:"trialErr,omitempty"`
}

// CheckpointMismatchError is the typed refusal for a checkpoint directory
// that belongs to a different run. Like a handshake rejection, it is
// terminal and operator-facing: retrying cannot help until the inputs match
// or the checkpoint moves aside.
type CheckpointMismatchError struct {
	Path  string // journal file refused
	Field string // which identity field disagreed
	Want  string // this run's value
	Got   string // the journal's value
}

func (e *CheckpointMismatchError) Error() string {
	return fmt.Sprintf("dist: checkpoint %s was written by a different run (%s: journal has %s, this run has %s) — resume with the original spec, binary, and seed, or point -checkpoint at a fresh directory",
		e.Path, e.Field, e.Got, e.Want)
}

// openCheckpoint creates or resumes the run journal in cfg.CheckpointDir.
// On resume it verifies identity, replays every surviving record into the
// ack bitmap and result slice, and marks fully-replayed leases done so the
// scheduler re-leases only unacked slots.
func (c *coordinator) openCheckpoint() error {
	dir := c.cfg.CheckpointDir
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("dist: checkpoint: %w", err)
	}
	hash, err := c.file.CanonicalHash()
	if err != nil {
		return err
	}
	id := checkpointIdentity{
		Format:   checkpointFormat,
		SpecHash: hash,
		Code:     spec.CodeVersion(),
		Root:     c.root,
		Quick:    c.opts.Quick,
		Trials:   len(c.refs),
	}
	path := filepath.Join(dir, checkpointFile)
	opts := journal.Options{SyncInterval: c.cfg.CheckpointSync}
	if _, err := os.Stat(path); os.IsNotExist(err) {
		header, err := json.Marshal(id)
		if err != nil {
			return fmt.Errorf("dist: checkpoint: %w", err)
		}
		c.jn, err = journal.Create(path, header, opts)
		if err != nil {
			return err
		}
		return nil
	}
	c.jn, err = journal.Recover(path,
		func(header []byte) error { return checkIdentity(path, header, id) },
		func(rec []byte) error { return c.replayRecord(path, rec) },
		opts)
	if err != nil {
		return err
	}
	for _, l := range c.tbl.leases {
		if !l.done && c.tbl.remaining(l) == 0 {
			l.done = true
		}
	}
	if c.replayed > 0 {
		fmt.Fprintf(c.cfg.Log, "dist: checkpoint %s: resumed %d of %d trials; re-leasing the remaining %d\n",
			path, c.replayed, len(c.refs), len(c.refs)-c.replayed)
	}
	return nil
}

// checkIdentity compares the journal's header against this run's identity,
// field by field, so the refusal names exactly what diverged.
func checkIdentity(path string, header []byte, want checkpointIdentity) error {
	var got checkpointIdentity
	if err := json.Unmarshal(header, &got); err != nil {
		return &journal.CorruptError{Path: path, Offset: 0, Reason: "undecodable identity header: " + err.Error()}
	}
	mismatch := func(field, w, g string) error {
		return &CheckpointMismatchError{Path: path, Field: field, Want: w, Got: g}
	}
	switch {
	case got.Format != want.Format:
		return mismatch("format", want.Format, got.Format)
	case got.SpecHash != want.SpecHash:
		return mismatch("spec hash", want.SpecHash, got.SpecHash)
	case got.Code != want.Code:
		return mismatch("code version", want.Code, got.Code)
	case got.Root != want.Root:
		return mismatch("root seed", fmt.Sprint(want.Root), fmt.Sprint(got.Root))
	case got.Quick != want.Quick:
		return mismatch("quick mode", fmt.Sprint(want.Quick), fmt.Sprint(got.Quick))
	case got.Trials != want.Trials:
		return mismatch("trial count", fmt.Sprint(want.Trials), fmt.Sprint(got.Trials))
	}
	return nil
}

// replayRecord applies one journaled ack during recovery.
func (c *coordinator) replayRecord(path string, rec []byte) error {
	var r checkpointRecord
	if err := json.Unmarshal(rec, &r); err != nil {
		return fmt.Errorf("dist: checkpoint %s: undecodable record: %w", path, err)
	}
	if r.Slot < 0 || r.Slot >= len(c.refs) {
		return fmt.Errorf("dist: checkpoint %s: record for slot %d outside [0, %d)", path, r.Slot, len(c.refs))
	}
	if want := c.refs[r.Slot].Trial.Seed; r.Seed != want {
		// The identity header matched but a record's trial seed does not:
		// the journal and this run disagree on the expansion itself.
		return &CheckpointMismatchError{Path: path, Field: fmt.Sprintf("slot %d trial seed", r.Slot),
			Want: fmt.Sprint(want), Got: fmt.Sprint(r.Seed)}
	}
	if c.tbl.ack(r.Slot) {
		c.results[r.Slot] = harness.Result{Trial: c.refs[r.Slot].Trial, Metrics: r.Metrics, Err: r.TrialErr}
		c.replayed++
	}
	return nil
}

// checkpointAppend journals one freshly settled slot BEFORE the caller acks
// it in memory — the ordering that makes the bitmap a subset of the journal
// and therefore makes crashes lossless. Returns false (with c.fatal set)
// when the journal write fails: continuing without durability would let a
// later crash silently shed completed trials the operator believes are
// safe. With no journal configured it is a no-op.
//
// This is also where coordinator-side chaos lives: after CoordKill
// checkpointed trials, the journal is synced and the process SIGKILLs
// itself — the hardest crash there is, straight through the resume path.
func (c *coordinator) checkpointAppend(slot int, metrics map[string]float64, trialErr string) bool {
	if c.jn == nil {
		return true
	}
	rec, err := json.Marshal(checkpointRecord{Slot: slot, Seed: c.refs[slot].Trial.Seed, Metrics: metrics, TrialErr: trialErr})
	if err != nil {
		c.fatal = fmt.Errorf("dist: checkpoint: %w", err)
		return false
	}
	if err := c.jn.Append(rec); err != nil {
		c.fatal = fmt.Errorf("dist: checkpoint: %w", err)
		return false
	}
	c.ckptAppends++
	if k := c.cfg.Chaos.CoordKill; k > 0 && c.ckptAppends >= k {
		_ = c.jn.Sync()
		fmt.Fprintf(c.cfg.Log, "dist: chaos: coordkill firing after %d checkpointed trials\n", c.ckptAppends)
		if p, err := os.FindProcess(os.Getpid()); err == nil {
			_ = p.Kill() // SIGKILL: no deferred cleanup, no Close — the real crash
		}
	}
	return true
}
