package dist

import (
	"testing"
	"time"
)

// TestPolicyFloorWithoutObservations: a fresh incarnation has earned no
// trust, so its first grant is the floor.
func TestPolicyFloorWithoutObservations(t *testing.T) {
	p := LeasePolicy{Floor: 3, Ceil: 12, Target: 2 * time.Second}.withDefaults()
	if got := p.Slots(); got != 3 {
		t.Fatalf("Slots() with no observations = %d, want Floor 3", got)
	}
}

// TestPolicyBounds: no per-trial time, however extreme, pushes a grant
// outside [Floor, Ceil].
func TestPolicyBounds(t *testing.T) {
	p := LeasePolicy{Floor: 3, Ceil: 12, Target: 2 * time.Second}.withDefaults()
	// Microsecond trials: Target/ewma is enormous; the ceiling must hold.
	for i := 0; i < 20; i++ {
		p.Observe(time.Microsecond)
	}
	if got := p.Slots(); got != 12 {
		t.Fatalf("Slots() after fast trials = %d, want Ceil 12", got)
	}
	// Ten-second trials: Target/ewma rounds to zero; the floor must hold.
	q := LeasePolicy{Floor: 3, Ceil: 12, Target: 2 * time.Second}.withDefaults()
	for i := 0; i < 20; i++ {
		q.Observe(10 * time.Second)
	}
	if got := q.Slots(); got != 3 {
		t.Fatalf("Slots() after slow trials = %d, want Floor 3", got)
	}
}

// TestPolicyShrinksUnderLatencySpike: a worker that was streaming results
// quickly earns ceiling-size grants; when its per-trial time spikes, the
// next grants must shrink so revocation and straggler hedging stay
// fine-grained.
func TestPolicyShrinksUnderLatencySpike(t *testing.T) {
	p := LeasePolicy{Floor: 2, Ceil: 16, Target: time.Second}.withDefaults()
	for i := 0; i < 10; i++ {
		p.Observe(10 * time.Millisecond)
	}
	before := p.Slots()
	if before != 16 {
		t.Fatalf("Slots() before the spike = %d, want Ceil 16", before)
	}
	for i := 0; i < 10; i++ {
		p.Observe(2 * time.Second)
	}
	after := p.Slots()
	if after >= before {
		t.Fatalf("Slots() did not shrink under the spike: %d → %d", before, after)
	}
	if after != 2 {
		t.Fatalf("Slots() after a sustained spike = %d, want Floor 2", after)
	}
}

// TestPolicyRecovers: the EWMA forgets — once the spike passes, grants grow
// back toward the ceiling.
func TestPolicyRecovers(t *testing.T) {
	p := LeasePolicy{Floor: 2, Ceil: 16, Target: time.Second}.withDefaults()
	p.Observe(2 * time.Second)
	if got := p.Slots(); got != 2 {
		t.Fatalf("Slots() while slow = %d, want Floor 2", got)
	}
	for i := 0; i < 30; i++ {
		p.Observe(time.Millisecond)
	}
	if got := p.Slots(); got != 16 {
		t.Fatalf("Slots() after recovery = %d, want Ceil 16", got)
	}
}

// TestPolicyIgnoresNonPositiveSamples: clock weirdness must not poison the
// estimate.
func TestPolicyIgnoresNonPositiveSamples(t *testing.T) {
	p := LeasePolicy{Floor: 1, Ceil: 8, Target: time.Second}.withDefaults()
	p.Observe(100 * time.Millisecond)
	want := p.PerTrial()
	p.Observe(0)
	p.Observe(-time.Second)
	if got := p.PerTrial(); got != want {
		t.Fatalf("non-positive samples moved the estimate: %v → %v", want, got)
	}
}

// TestStragglerCapSurvivesBundling: bundle-granting sizes a grant as several
// consecutive leases, but a speculative duplicate must still respect the
// per-lease two-grant cap — the original holder plus at most one hedge.
func TestStragglerCapSurvivesBundling(t *testing.T) {
	tbl := newTable(12, 4) // 3 leases of 4 slots
	// Worker 0 bundles all three leases (a ceiling-size grant).
	for {
		l := tbl.pending()
		if l == nil {
			break
		}
		tbl.grant(l, 0)
	}
	// Idle worker 1 hedges the most-behind lease.
	l1 := tbl.straggler(1)
	if l1 == nil {
		t.Fatal("no straggler offered to worker 1")
	}
	tbl.grant(l1, 1)
	if l1.grants != 2 {
		t.Fatalf("hedged lease has %d grants, want 2", l1.grants)
	}
	// Worker 2 may hedge a different lease, never the one already at cap.
	if l2 := tbl.straggler(2); l2 == l1 {
		t.Fatal("straggler offered a lease already at the two-grant cap")
	}
	// With every lease at cap, no further hedges exist.
	for _, l := range tbl.leases {
		for l.grants < maxGrants {
			tbl.grant(l, 1)
		}
	}
	if l := tbl.straggler(3); l != nil {
		t.Fatalf("straggler offered lease %d despite every lease being at cap", l.id)
	}
}
