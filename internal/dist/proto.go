package dist

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"sync"
)

// The wire protocol between the coordinator and a worker process: JSON
// messages framed by a 4-byte big-endian length prefix and a 4-byte
// big-endian IEEE CRC32 of the body, exchanged over the worker's stdin
// (coordinator → worker) and stdout (worker → coordinator). Framing keeps
// the stream self-synchronizing — a crashed worker can at worst truncate
// the final frame, which the reader surfaces as an error instead of a
// half-parsed message — and the checksum turns a corrupted-in-flight frame
// into a typed *FrameCorruptError rather than a JSON parse guess (or,
// worse, a frame that parses to the wrong values).

// MaxFrame bounds a single frame. Result frames carry one trial's metrics
// and hello frames one spec file; both are far below this.
const MaxFrame = 16 << 20

// frameHeader is the per-frame overhead: length prefix plus body CRC32.
const frameHeader = 8

// ProtoVersion is the version of this frame protocol, negotiated during the
// socket handshake. Bump it whenever a frame's meaning changes
// incompatibly (v3 added the CRC32 body checksum to every frame); the
// stdin/stdout pipe transport needs no negotiation because the coordinator
// fork/execs its own binary.
const ProtoVersion = 3

// Kind discriminates protocol messages.
type Kind string

// Coordinator → worker kinds.
const (
	// KindChallenge opens the socket handshake: a fresh nonce plus the
	// coordinator's protocol and code versions.
	KindChallenge Kind = "challenge"
	// KindReject ends a failed socket handshake with a typed reason.
	KindReject Kind = "reject"
	// KindHello is the first post-handshake frame (the first frame outright
	// on the pipe transport): the spec, execution options, and the worker's
	// incarnation number.
	KindHello Kind = "hello"
	// KindLease grants a slot range to the worker.
	KindLease Kind = "lease"
	// KindShutdown asks the worker to exit cleanly.
	KindShutdown Kind = "shutdown"
)

// Worker → coordinator kinds.
const (
	// KindAuth answers a challenge: the HMAC over the nonce plus the
	// worker's own versions.
	KindAuth Kind = "auth"
	// KindReady acknowledges the hello: the spec compiled and the worker is
	// accepting leases.
	KindReady Kind = "ready"
	// KindResult reports one settled trial of the current lease.
	KindResult Kind = "result"
	// KindLeaseDone reports that every non-skipped slot of a lease was
	// executed and its results streamed.
	KindLeaseDone Kind = "leaseDone"
	// KindHeartbeat is the liveness signal workers emit on a timer.
	KindHeartbeat Kind = "heartbeat"
)

// Hello carries everything a worker needs to reconstruct the coordinator's
// exact trial list: the spec bytes, the resolved root seed, and the kernel
// policy knobs (which never change result bytes).
type Hello struct {
	// Worker is the incarnation number of this worker process, unique
	// across respawns; it keys the deterministic chaos fault plan.
	Worker int `json:"worker"`
	// Spec is the JSON-encoded spec.File (registry workloads only).
	Spec json.RawMessage `json:"spec"`
	// Quick applies the spec's reduced-size overlays, exactly as compiled
	// by the coordinator.
	Quick bool `json:"quick,omitempty"`
	// Root is the resolved root seed (never 0).
	Root uint64 `json:"root"`
	// ShardMinN / DenseMin mirror harness.Runner's kernel-policy fields.
	ShardMinN int `json:"shardMinN,omitempty"`
	DenseMin  int `json:"denseMin,omitempty"`
	// HeartbeatMS is the interval between worker heartbeat frames.
	HeartbeatMS int `json:"heartbeatMS,omitempty"`
	// Chaos is the fault-injection schedule (zero value = none).
	Chaos ChaosSpec `json:"chaos,omitempty"`
}

// Challenge is the coordinator's opening handshake frame on a socket
// transport: a single-use random nonce the worker must MAC with the shared
// token, plus the coordinator's versions so an out-of-date worker can print
// an actionable error even before the coordinator rejects it.
type Challenge struct {
	// Nonce is hex-encoded random bytes, fresh per connection; the auth
	// response must MAC exactly this value, which is what defeats replayed
	// hellos.
	Nonce string `json:"nonce"`
	// Proto / Code are the coordinator's ProtoVersion and spec.CodeVersion.
	Proto int    `json:"proto"`
	Code  string `json:"code"`
}

// Auth is the worker's handshake response: the challenge nonce echoed back,
// the HMAC-SHA256 of that nonce under the shared token, and the worker's
// own versions for negotiation.
type Auth struct {
	Nonce string `json:"nonce"`
	// MAC is hex(HMAC-SHA256(token, nonce)).
	MAC   string `json:"mac"`
	Proto int    `json:"proto"`
	Code  string `json:"code"`
}

// Reject is a typed handshake rejection; the connection closes after it.
type Reject struct {
	Code    RejectCode `json:"code"`
	Message string     `json:"message"`
}

// RejectCode classifies why a handshake was refused.
type RejectCode string

const (
	// RejectBadToken: the HMAC does not verify under the coordinator's
	// token.
	RejectBadToken RejectCode = "badToken"
	// RejectReplay: the auth echoed a nonce other than the one this
	// connection was issued — a replayed hello from an earlier session.
	RejectReplay RejectCode = "replayedHello"
	// RejectProtoVersion: the worker speaks a different frame protocol.
	RejectProtoVersion RejectCode = "protoVersion"
	// RejectCodeVersion: the worker was built from different code; its
	// trial expansion could silently diverge, so it is refused up front
	// (the seed-echo skew check remains the runtime backstop).
	RejectCodeVersion RejectCode = "codeVersion"
)

// RejectedError is the typed error a worker surfaces when the coordinator
// refuses its handshake. It is terminal: reconnecting cannot help until the
// operator fixes the token or deploys matching binaries.
type RejectedError struct {
	Code    RejectCode
	Message string
}

func (e *RejectedError) Error() string {
	return fmt.Sprintf("dist: handshake rejected (%s): %s", e.Code, e.Message)
}

// Lease is one granted unit of work: the slots in [Start, End) minus Skip.
type Lease struct {
	ID    int `json:"id"`
	Start int `json:"start"`
	End   int `json:"end"`
	// Skip lists slots within the range that are already completed
	// elsewhere (re-leases and speculative duplicates carry them).
	Skip []int `json:"skip,omitempty"`
}

// Message is the frame envelope. Kind selects which fields are meaningful.
type Message struct {
	Kind      Kind       `json:"kind"`
	Hello     *Hello     `json:"hello,omitempty"`
	Lease     *Lease     `json:"lease,omitempty"`
	Challenge *Challenge `json:"challenge,omitempty"`
	Auth      *Auth      `json:"auth,omitempty"`
	Reject    *Reject    `json:"reject,omitempty"`

	// Result / leaseDone fields.
	LeaseID int `json:"leaseID,omitempty"`
	// Slot is the trial's global index in the canonical order.
	Slot int `json:"slot,omitempty"`
	// Seed echoes the trial's derived seed so the coordinator can verify
	// both processes expanded the identical trial list.
	Seed     uint64             `json:"seed,omitempty"`
	Metrics  map[string]float64 `json:"metrics,omitempty"`
	TrialErr string             `json:"trialErr,omitempty"`
}

// FrameCorruptError reports a frame whose body failed its CRC32 check: the
// bytes that arrived are not the bytes the peer framed. It is a transport
// integrity failure, not a protocol disagreement — the receiver should drop
// the connection (the stream offers no way to resynchronize past a lying
// body) and let the usual revoke/respawn machinery take over.
type FrameCorruptError struct {
	Stored   uint32 // checksum carried by the frame
	Computed uint32 // checksum of the body as received
}

func (e *FrameCorruptError) Error() string {
	return fmt.Sprintf("dist: frame body failed CRC32 (stored %08x, computed %08x): corrupted in flight", e.Stored, e.Computed)
}

// FrameWriter writes length-prefixed, CRC32-framed messages. It is safe for
// concurrent use — a worker's heartbeat timer and its result stream share
// one writer — and flushes after every frame so a subsequent crash cannot
// swallow an emitted result.
type FrameWriter struct {
	mu      sync.Mutex
	bw      *bufio.Writer
	corrupt bool
}

// NewFrameWriter wraps w for frame output.
func NewFrameWriter(w io.Writer) *FrameWriter {
	return &FrameWriter{bw: bufio.NewWriter(w)}
}

// CorruptNext makes the next Write emit a frame whose body is flipped after
// the checksum was computed, so the receiver sees a CRC failure. Chaos-only:
// this is how `-chaos corrupt=P` simulates in-flight damage without a real
// flaky link.
func (fw *FrameWriter) CorruptNext() {
	fw.mu.Lock()
	fw.corrupt = true
	fw.mu.Unlock()
}

// Write marshals, frames, and flushes one message.
func (fw *FrameWriter) Write(m *Message) error {
	body, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("dist: marshal %s frame: %w", m.Kind, err)
	}
	if len(body) > MaxFrame {
		return fmt.Errorf("dist: %s frame of %d bytes exceeds the %d-byte limit", m.Kind, len(body), MaxFrame)
	}
	var prefix [frameHeader]byte
	binary.BigEndian.PutUint32(prefix[0:4], uint32(len(body)))
	binary.BigEndian.PutUint32(prefix[4:8], crc32.ChecksumIEEE(body))
	fw.mu.Lock()
	defer fw.mu.Unlock()
	if fw.corrupt && len(body) > 0 {
		fw.corrupt = false
		body = append([]byte(nil), body...)
		body[0] ^= 0xff
	}
	if _, err := fw.bw.Write(prefix[:]); err != nil {
		return err
	}
	if _, err := fw.bw.Write(body); err != nil {
		return err
	}
	return fw.bw.Flush()
}

// FrameReader reads length-prefixed frames. It is not safe for concurrent
// use; each peer dedicates one goroutine to its read side.
type FrameReader struct {
	br *bufio.Reader
}

// NewFrameReader wraps r for frame input.
func NewFrameReader(r io.Reader) *FrameReader {
	return &FrameReader{br: bufio.NewReader(r)}
}

// Read returns the next message. io.EOF (clean close between frames) passes
// through unchanged; a stream truncated mid-frame reports ErrUnexpectedEOF,
// and a body whose CRC32 does not verify reports a *FrameCorruptError.
func (fr *FrameReader) Read() (*Message, error) {
	var prefix [frameHeader]byte
	if _, err := io.ReadFull(fr.br, prefix[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return nil, fmt.Errorf("dist: stream truncated mid-prefix: %w", err)
		}
		return nil, err
	}
	n := binary.BigEndian.Uint32(prefix[0:4])
	if n > MaxFrame {
		return nil, fmt.Errorf("dist: incoming frame of %d bytes exceeds the %d-byte limit", n, MaxFrame)
	}
	want := binary.BigEndian.Uint32(prefix[4:8])
	body := make([]byte, n)
	if _, err := io.ReadFull(fr.br, body); err != nil {
		return nil, fmt.Errorf("dist: stream truncated mid-frame: %w", err)
	}
	if got := crc32.ChecksumIEEE(body); got != want {
		return nil, &FrameCorruptError{Stored: want, Computed: got}
	}
	m := new(Message)
	if err := json.Unmarshal(body, m); err != nil {
		return nil, fmt.Errorf("dist: bad frame: %w", err)
	}
	if m.Kind == "" {
		return nil, fmt.Errorf("dist: frame without a kind")
	}
	return m, nil
}
