package dist

import "time"

// LeasePolicy sizes lease grants from an EWMA of a worker's per-trial
// round-trip time, measured at the coordinator from result-frame arrivals
// (the first sample of a grant spans grant→first-result, so it includes the
// link's round trip; later samples are inter-result gaps).
//
// The policy targets a constant grant wall time: a worker whose trials
// stream back quickly is granted up to Ceil slots at once — on a
// high-latency link that is exactly what amortizes the grant round trip,
// because latency shifts result arrivals without spreading them, so the
// EWMA stays low and the link still earns full-size grants — while a worker
// whose per-trial time balloons (a straggler, an overloaded host, an
// injected latency spike on every trial) sees its next grants shrink toward
// Floor, keeping revocation and speculative duplication fine-grained.
// Grant sizing is pure scheduling: it never changes result bytes, because
// results merge by slot no matter which grant carried them.
type LeasePolicy struct {
	// Floor/Ceil bound a grant's slot count, Floor ≤ Ceil. A policy with
	// no observations yet grants Floor (start conservative, earn trust).
	Floor, Ceil int
	// Target is the desired grant wall time (default 2s).
	Target time.Duration
	// Alpha is the EWMA smoothing factor in (0, 1]; higher reacts faster
	// (default 0.4).
	Alpha float64

	// ewma is the smoothed per-trial round trip in seconds; 0 = no data.
	ewma float64
}

// withDefaults fills unset tuning fields.
func (p LeasePolicy) withDefaults() LeasePolicy {
	if p.Floor < 1 {
		p.Floor = 1
	}
	if p.Ceil < p.Floor {
		p.Ceil = p.Floor
	}
	if p.Target <= 0 {
		p.Target = 2 * time.Second
	}
	if p.Alpha <= 0 || p.Alpha > 1 {
		p.Alpha = 0.4
	}
	return p
}

// Observe folds one per-trial round-trip sample into the EWMA.
// Non-positive samples (clock weirdness) are ignored.
func (p *LeasePolicy) Observe(d time.Duration) {
	if d <= 0 {
		return
	}
	s := d.Seconds()
	if p.ewma == 0 {
		p.ewma = s
		return
	}
	p.ewma = p.Alpha*s + (1-p.Alpha)*p.ewma
}

// PerTrial is the current EWMA estimate (0 = no observations yet).
func (p *LeasePolicy) PerTrial() time.Duration {
	return time.Duration(p.ewma * float64(time.Second))
}

// Slots is the number of slots the next grant should carry:
// clamp(Floor, Ceil, Target/ewma).
func (p *LeasePolicy) Slots() int {
	if p.ewma <= 0 {
		return p.Floor
	}
	n := int(p.Target.Seconds() / p.ewma)
	if n < p.Floor {
		return p.Floor
	}
	if n > p.Ceil {
		return p.Ceil
	}
	return n
}
