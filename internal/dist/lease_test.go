package dist

import "testing"

func TestTablePartition(t *testing.T) {
	tbl := newTable(10, 4)
	if len(tbl.leases) != 3 {
		t.Fatalf("10 slots at size 4: %d leases, want 3", len(tbl.leases))
	}
	bounds := [][2]int{{0, 4}, {4, 8}, {8, 10}}
	for i, l := range tbl.leases {
		if l.id != i || l.start != bounds[i][0] || l.end != bounds[i][1] {
			t.Errorf("lease %d: [%d, %d), want %v", l.id, l.start, l.end, bounds[i])
		}
	}
	for s := 0; s < 10; s++ {
		want := s / 4
		if tbl.leaseOf(s).id != want {
			t.Errorf("leaseOf(%d) = %d, want %d", s, tbl.leaseOf(s).id, want)
		}
	}
	if defaultLeaseSize(100, 4) != 6 { // ~4 leases per worker
		t.Errorf("defaultLeaseSize(100, 4) = %d, want 6", defaultLeaseSize(100, 4))
	}
	if defaultLeaseSize(3, 8) != 1 {
		t.Errorf("defaultLeaseSize(3, 8) = %d, want 1", defaultLeaseSize(3, 8))
	}
}

func TestTableAckAndSkip(t *testing.T) {
	tbl := newTable(6, 3)
	if !tbl.ack(2) || tbl.ack(2) {
		t.Fatal("first ack must succeed, duplicate must not")
	}
	l := tbl.leases[0]
	if rem := tbl.remaining(l); rem != 2 {
		t.Errorf("remaining = %d, want 2", rem)
	}
	if skip := tbl.skipList(l); len(skip) != 1 || skip[0] != 2 {
		t.Errorf("skipList = %v, want [2]", skip)
	}
	tbl.ack(0)
	tbl.ack(1)
	tbl.ack(3)
	tbl.ack(4)
	if tbl.allDone() {
		t.Fatal("allDone with slot 5 unacked")
	}
	tbl.ack(5)
	if !tbl.allDone() {
		t.Fatal("allDone after every ack")
	}
}

func TestLeaseRetryAccounting(t *testing.T) {
	tbl := newTable(4, 4)
	l := tbl.leases[0]

	// A grant that ends with no new acks counts against the budget.
	tbl.grant(l, 0)
	tbl.release(l, 0)
	if l.retries != 1 {
		t.Fatalf("no-progress release: retries = %d, want 1", l.retries)
	}
	// A grant that acked something resets the counter.
	tbl.grant(l, 1)
	tbl.ack(0)
	tbl.release(l, 1)
	if l.retries != 0 {
		t.Fatalf("progressing release: retries = %d, want 0", l.retries)
	}
	if l.grants != 0 || len(l.holders) != 0 {
		t.Fatalf("after releases: grants=%d holders=%v", l.grants, l.holders)
	}
}

func TestPendingAndStraggler(t *testing.T) {
	tbl := newTable(9, 3) // leases 0,1,2
	if p := tbl.pending(); p == nil || p.id != 0 {
		t.Fatalf("pending = %v, want lease 0", p)
	}
	tbl.grant(tbl.leases[0], 0)
	tbl.grant(tbl.leases[1], 1)
	tbl.grant(tbl.leases[2], 2)
	if p := tbl.pending(); p != nil {
		t.Fatalf("pending = lease %d with everything granted", p.id)
	}

	// Worker 0 finishes lease 0 and goes idle: it must duplicate the
	// most-behind lease it does not already hold.
	tbl.ack(0)
	tbl.ack(1)
	tbl.ack(2)
	tbl.leases[0].done = true
	tbl.release(tbl.leases[0], 0)
	tbl.ack(3) // lease 1 is one trial ahead of lease 2
	s := tbl.straggler(0)
	if s == nil || s.id != 2 {
		t.Fatalf("straggler = %v, want lease 2 (most remaining)", s)
	}
	// The duplication cap: once two workers hold lease 2, nobody else joins.
	tbl.grant(s, 0)
	if again := tbl.straggler(3); again == nil || again.id != 1 {
		t.Fatalf("straggler with lease 2 at cap = %v, want lease 1", again)
	}
	tbl.grant(tbl.leases[1], 3)
	if again := tbl.straggler(4); again != nil {
		t.Fatalf("straggler with every lease at cap = lease %d, want none", again.id)
	}
	// A holder never duplicates its own lease.
	if own := tbl.straggler(2); own != nil && own.heldBy(2) {
		t.Fatalf("worker 2 offered its own lease %d", own.id)
	}
}
