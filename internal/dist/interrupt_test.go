package dist

import (
	"bytes"
	"context"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"repro/internal/harness"
	"repro/internal/spec"
)

// recordingTransport wraps another transport and records the pid of every
// worker process it spawns, so tests can assert on the processes' fate after
// the coordinator returns.
type recordingTransport struct {
	inner Transport
	mu    sync.Mutex
	pids  []int
}

func (r *recordingTransport) Spawn() (Conn, error) {
	conn, err := r.inner.Spawn()
	if conn != nil {
		if rest, ok := strings.CutPrefix(conn.Peer(), "pid "); ok {
			if pid, perr := strconv.Atoi(rest); perr == nil {
				r.mu.Lock()
				r.pids = append(r.pids, pid)
				r.mu.Unlock()
			}
		}
	}
	return conn, err
}

func (r *recordingTransport) Accepts() <-chan Conn { return r.inner.Accepts() }
func (r *recordingTransport) Close() error         { return r.inner.Close() }

func (r *recordingTransport) allPids() []int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]int(nil), r.pids...)
}

// TestInterruptKillsWorkers: SIGINT/SIGTERM mid-run (modelled by cancelling
// the context) must not leave worker processes behind — not as running
// orphans, and not as unreaped zombies. Stall chaos wedges every worker after
// its first trial, and the heartbeat timeout is set far beyond the test's
// horizon, so the only thing that can make these processes disappear is the
// interrupt path in shutdownAll.
func TestInterruptKillsWorkers(t *testing.T) {
	f := testFile()
	tr := &recordingTransport{inner: NewProcTransport(workerCommand(t, "dist-worker"))}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var settled atomic.Int64
	var log bytes.Buffer
	_, err := Execute(f, 0, spec.Options{
		Ctx: ctx,
		OnTrial: func(harness.Result) {
			if settled.Add(1) == 3 {
				cancel()
			}
		},
	}, Config{
		Workers:          3,
		LeaseSize:        3,
		Transport:        tr,
		Chaos:            ChaosSpec{Seed: 9, StallPct: 100},
		Heartbeat:        20 * time.Millisecond,
		HeartbeatTimeout: 5 * time.Minute, // liveness must not be what kills them
		BackoffBase:      time.Millisecond,
		Log:              &log,
	})
	if err == nil {
		t.Fatalf("interrupted run returned no error (log: %s)", log.Bytes())
	}
	pids := tr.allPids()
	if len(pids) == 0 {
		t.Fatal("transport spawned no workers")
	}

	// Every spawned worker must be gone — killed AND reaped. kill(pid, 0)
	// succeeds for zombies too (they exist until waited on), so polling it to
	// ESRCH asserts both halves. Reaping happens on the per-connection reader
	// goroutines, so give it a bounded moment.
	deadline := time.Now().Add(5 * time.Second)
	for _, pid := range pids {
		for {
			if err := syscall.Kill(pid, 0); err == syscall.ESRCH {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("worker pid %d still exists after interrupt (orphan or unreaped zombie); spawned %v\nlog: %s", pid, pids, log.Bytes())
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
}
