package decay

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/radio"
	"repro/internal/rng"
)

func TestLocalBroadcastSingleSender(t *testing.T) {
	g := graph.Star(10)
	e := radio.NewEngine(g)
	p := ParamsFor(10, 3)
	senders := []radio.TX{{ID: 0, Msg: radio.Msg{A: 99}}}
	receivers := []int32{1, 2, 3, 4, 5, 6, 7, 8, 9}
	got := make([]radio.Msg, len(receivers))
	ok := make([]bool, len(receivers))
	LocalBroadcast(e, p, senders, receivers, 7, got, ok)
	for i := range receivers {
		if !ok[i] || got[i].A != 99 {
			t.Fatalf("receiver %d did not hear the lone sender", receivers[i])
		}
	}
}

// TestLocalBroadcastContention is the heart of Lemma 2.4: with many senders
// adjacent to one receiver, the receiver should still hear w.h.p.
func TestLocalBroadcastContention(t *testing.T) {
	for _, deg := range []int{2, 8, 64, 255} {
		n := deg + 1
		g := graph.Star(n) // center 0 listens, all leaves send
		p := ParamsFor(n, 4)
		fails := 0
		const trials = 200
		for trial := 0; trial < trials; trial++ {
			e := radio.NewEngine(g)
			senders := make([]radio.TX, 0, deg)
			for v := 1; v <= deg; v++ {
				senders = append(senders, radio.TX{ID: int32(v), Msg: radio.Msg{A: uint64(v)}})
			}
			got := make([]radio.Msg, 1)
			ok := make([]bool, 1)
			LocalBroadcast(e, p, senders, []int32{0}, rng.Derive(11, uint64(trial), uint64(deg)), got, ok)
			if !ok[0] {
				fails++
			}
		}
		if fails > trials/20 {
			t.Fatalf("deg=%d: %d/%d Local-Broadcasts failed", deg, fails, trials)
		}
	}
}

func TestLocalBroadcastNoSenderNeighbors(t *testing.T) {
	g := graph.Path(4) // 0-1-2-3; sender 0, receiver 3 (not adjacent)
	e := radio.NewEngine(g)
	p := ParamsFor(4, 3)
	got := make([]radio.Msg, 1)
	ok := make([]bool, 1)
	LocalBroadcast(e, p, []radio.TX{{ID: 0, Msg: radio.Msg{A: 1}}}, []int32{3}, 5, got, ok)
	if ok[0] {
		t.Fatal("receiver with no sender-neighbor heard a message")
	}
	// Such a receiver pays full freight: Slots×Passes listens.
	if e.Energy(3) != p.Duration() {
		t.Fatalf("no-neighbor receiver energy = %d, want %d", e.Energy(3), p.Duration())
	}
}

func TestLocalBroadcastFixedDuration(t *testing.T) {
	g := graph.Path(4)
	p := ParamsFor(4, 3)
	for _, scenario := range []struct {
		senders   []radio.TX
		receivers []int32
	}{
		{nil, nil},
		{[]radio.TX{{ID: 0}}, nil},
		{nil, []int32{2}},
		{[]radio.TX{{ID: 0}}, []int32{1, 2}},
	} {
		e := radio.NewEngine(g)
		got := make([]radio.Msg, len(scenario.receivers))
		ok := make([]bool, len(scenario.receivers))
		LocalBroadcast(e, p, scenario.senders, scenario.receivers, 3, got, ok)
		if e.Round() != p.Duration() {
			t.Fatalf("duration %d != %d for %+v", e.Round(), p.Duration(), scenario)
		}
	}
}

func TestSenderEnergyIsPasses(t *testing.T) {
	g := graph.Path(2)
	e := radio.NewEngine(g)
	p := ParamsFor(2, 5)
	got := make([]radio.Msg, 1)
	ok := make([]bool, 1)
	LocalBroadcast(e, p, []radio.TX{{ID: 0, Msg: radio.Msg{A: 2}}}, []int32{1}, 9, got, ok)
	if e.Energy(0) != int64(p.Passes) {
		t.Fatalf("sender energy = %d, want %d (one transmission per pass)", e.Energy(0), p.Passes)
	}
}

// TestHearingReceiverStopsListening checks the Lemma 2.4 energy optimization:
// a receiver that hears early stops listening.
func TestHearingReceiverStopsListening(t *testing.T) {
	g := graph.Path(2)
	e := radio.NewEngine(g)
	p := ParamsFor(2, 6)
	got := make([]radio.Msg, 1)
	ok := make([]bool, 1)
	LocalBroadcast(e, p, []radio.TX{{ID: 0, Msg: radio.Msg{A: 2}}}, []int32{1}, 13, got, ok)
	if !ok[0] {
		t.Fatal("lone-neighbor receiver failed to hear")
	}
	if e.Energy(1) >= p.Duration() {
		t.Fatalf("hearing receiver listened for the whole call: %d rounds", e.Energy(1))
	}
}

func TestLocalBroadcastDeterminism(t *testing.T) {
	g := graph.Complete(12)
	p := ParamsFor(12, 3)
	run := func() ([]bool, int64) {
		e := radio.NewEngine(g)
		var senders []radio.TX
		for v := 0; v < 6; v++ {
			senders = append(senders, radio.TX{ID: int32(v), Msg: radio.Msg{A: uint64(v)}})
		}
		receivers := []int32{6, 7, 8, 9, 10, 11}
		got := make([]radio.Msg, len(receivers))
		ok := make([]bool, len(receivers))
		LocalBroadcast(e, p, senders, receivers, 21, got, ok)
		return ok, e.TotalEnergy()
	}
	ok1, e1 := run()
	ok2, e2 := run()
	if e1 != e2 {
		t.Fatalf("energy differs: %d vs %d", e1, e2)
	}
	for i := range ok1 {
		if ok1[i] != ok2[i] {
			t.Fatal("delivery pattern differs across identical seeds")
		}
	}
}

func TestBFSMatchesReferenceOnFamilies(t *testing.T) {
	families := []struct {
		name string
		g    *graph.Graph
	}{
		{"path", graph.Path(40)},
		{"cycle", graph.Cycle(33)},
		{"grid", graph.Grid(6, 7)},
		{"star", graph.Star(30)},
		{"tree", graph.BinaryTree(31)},
		{"complete", graph.Complete(20)},
		{"hypercube", graph.Hypercube(5)},
	}
	for _, fam := range families {
		e := radio.NewEngine(fam.g)
		p := ParamsFor(fam.g.N(), 4)
		res := BFS(e, p, []int32{0}, fam.g.N(), rng.Derive(31, uint64(fam.g.N())))
		if bad := ReferenceAgainst(fam.g, []int32{0}, res.Dist, fam.g.N()); bad != 0 {
			t.Errorf("%s: %d vertices mislabeled", fam.name, bad)
		}
	}
}

func TestBFSRandomGraphsManySeeds(t *testing.T) {
	r := rng.New(77)
	for trial := 0; trial < 8; trial++ {
		g := graph.ConnectedGNP(80, 0.05, r)
		e := radio.NewEngine(g)
		// w.h.p. correctness needs Θ(log n) passes (Lemma 2.4 with
		// f = 1/poly(n)); 4 passes would fail ~1% of deliveries.
		p := ParamsFor(80, 10)
		res := BFS(e, p, []int32{0}, 80, rng.Derive(100, uint64(trial)))
		if bad := ReferenceAgainst(g, []int32{0}, res.Dist, 80); bad != 0 {
			t.Fatalf("trial %d: %d mislabeled", trial, bad)
		}
	}
}

func TestBFSMultiSource(t *testing.T) {
	g := graph.Path(30)
	e := radio.NewEngine(g)
	p := ParamsFor(30, 4)
	srcs := []int32{0, 29}
	res := BFS(e, p, srcs, 30, 5)
	if bad := ReferenceAgainst(g, srcs, res.Dist, 30); bad != 0 {
		t.Fatalf("%d mislabeled", bad)
	}
}

func TestBFSMaxDistCutoff(t *testing.T) {
	g := graph.Path(20)
	e := radio.NewEngine(g)
	p := ParamsFor(20, 4)
	res := BFS(e, p, []int32{0}, 5, 9)
	for v := int32(0); v < 20; v++ {
		want := v
		if v > 5 {
			want = -1
		}
		if res.Dist[v] != want {
			t.Fatalf("dist[%d] = %d, want %d", v, res.Dist[v], want)
		}
	}
}

// TestBFSEnergyShape verifies the baseline's defining property: per-vertex
// energy grows linearly with the distance at which a vertex is labeled,
// because everyone listens until labeled.
func TestBFSEnergyShape(t *testing.T) {
	g := graph.Path(64)
	e := radio.NewEngine(g)
	p := ParamsFor(64, 3)
	BFS(e, p, []int32{0}, 64, 3)
	// Vertex 60 must spend far more than vertex 2.
	if e.Energy(60) < 5*e.Energy(2) {
		t.Fatalf("energy not distance-proportional: E(60)=%d E(2)=%d", e.Energy(60), e.Energy(2))
	}
	// And the energy of the farthest vertex should be ~ D * duration.
	upper := int64(64) * p.Duration()
	if e.Energy(63) > upper {
		t.Fatalf("E(63)=%d exceeds D·duration=%d", e.Energy(63), upper)
	}
}

func TestBroadcastInforms(t *testing.T) {
	g := graph.Grid(8, 8)
	e := radio.NewEngine(g)
	p := ParamsFor(64, 4)
	informed := Broadcast(e, p, 0, radio.Msg{A: 1}, 64, 15)
	for v, inf := range informed {
		if !inf {
			t.Fatalf("vertex %d not informed", v)
		}
	}
}

func TestParamsFor(t *testing.T) {
	p := ParamsFor(1024, 4)
	if p.Slots != 11 {
		t.Fatalf("slots = %d, want 11", p.Slots)
	}
	if p.Passes != 4 {
		t.Fatalf("passes = %d", p.Passes)
	}
	if q := ParamsFor(2, 0); q.Passes != 1 {
		t.Fatalf("passes clamp failed: %d", q.Passes)
	}
	if p.Duration() != 44 {
		t.Fatalf("duration = %d", p.Duration())
	}
}

func TestMessageBudgetRespected(t *testing.T) {
	g := graph.Path(40)
	e := radio.NewEngine(g) // default RN[O(log n)] budget
	p := ParamsFor(40, 4)
	BFS(e, p, []int32{0}, 40, 3)
	if e.MsgViolations() != 0 {
		t.Fatalf("BFS violated RN[O(log n)] budget %d times", e.MsgViolations())
	}
}

func BenchmarkLocalBroadcastStar(b *testing.B) {
	g := graph.Star(256)
	p := ParamsFor(256, 4)
	senders := make([]radio.TX, 0, 255)
	for v := 1; v < 256; v++ {
		senders = append(senders, radio.TX{ID: int32(v), Msg: radio.Msg{A: uint64(v)}})
	}
	got := make([]radio.Msg, 1)
	ok := make([]bool, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := radio.NewEngine(g)
		LocalBroadcast(e, p, senders, []int32{0}, uint64(i), got, ok)
	}
}

// TestSenseDifferentiatesBusyFromQuiet is footnote 2 of the paper: without
// hardware CD, a Decay-scheduled call distinguishes zero transmitters from
// two-or-more w.h.p.
func TestSenseDifferentiatesBusyFromQuiet(t *testing.T) {
	g := graph.Star(34) // center 0, 33 leaves
	p := ParamsFor(34, 8)
	misses := 0
	for trial := 0; trial < 50; trial++ {
		e := radio.NewEngine(g)
		// All leaves transmit: a guaranteed collision every slot if naive,
		// but Decay isolates someone w.h.p.
		senders := make([]int32, 0, 33)
		for v := int32(1); v < 34; v++ {
			senders = append(senders, v)
		}
		busy := Sense(e, p, senders, []int32{0}, rng.Derive(91, uint64(trial)))
		if !busy[0] {
			misses++
		}
		// Quiet channel: no senders at all.
		quiet := Sense(e, p, nil, []int32{0}, rng.Derive(92, uint64(trial)))
		if quiet[0] {
			t.Fatal("silence sensed as busy")
		}
	}
	if misses > 2 {
		t.Fatalf("busy channel missed %d/50 times", misses)
	}
}
