// Package decay implements the Decay protocol of Bar-Yehuda, Goldreich and
// Itai, in the form the paper uses it: the Local-Broadcast primitive of
// Lemma 2.4. Given disjoint sender and receiver sets S and R, after one
// Local-Broadcast every receiver with at least one sender-neighbor has, with
// probability 1 - f, received some message from one such neighbor.
//
// Costs (Lemma 2.4): O(log Δ · log f⁻¹) time; senders spend O(log f⁻¹)
// energy; receivers that hear a message spend O(log Δ) energy in
// expectation; receivers that hear nothing spend O(log Δ · log f⁻¹).
//
// The package also provides the classic everyone-awake Decay BFS baseline
// (O(D log² n) time and — crucially for the paper — Θ(D log² n) energy per
// vertex), the comparator for the energy-efficient Recursive-BFS.
package decay

import (
	"repro/internal/graph"
	"repro/internal/progress"
	"repro/internal/radio"
	"repro/internal/rng"
	"repro/internal/scratch"
)

// PhaseBFS is the progress phase name of the Decay BFS wavefront loop; each
// round batch is one wavefront step (p.Duration() physical rounds).
const PhaseBFS = "decay-bfs"

// Params fixes the shape of one Local-Broadcast: Passes repetitions of
// Slots decay steps. Every Local-Broadcast with the same Params takes
// exactly Duration() rounds, which is what keeps sleeping devices
// synchronized with active ones.
type Params struct {
	Slots  int // slots per pass: ⌈log₂ Δ⌉ + 1, with Δ ≤ n-1
	Passes int // repetitions: Θ(log f⁻¹)
}

// ParamsFor returns Local-Broadcast parameters for an n-device network with
// the given number of passes. Slots is ⌈log₂ n⌉ + 1 so that any neighborhood
// size is covered.
func ParamsFor(n, passes int) Params {
	slots := 1
	for 1<<slots < n {
		slots++
	}
	if passes < 1 {
		passes = 1
	}
	return Params{Slots: slots + 1, Passes: passes}
}

// Duration returns the fixed number of physical rounds per Local-Broadcast.
func (p Params) Duration() int64 {
	return int64(p.Slots) * int64(p.Passes)
}

// Scratch owns the reusable buffers behind the Decay primitives. A zero
// Scratch is ready to use; buffers grow to the largest call seen and are
// then reused, so steady-state Local-Broadcast rounds allocate nothing.
// A Scratch is not safe for concurrent use; the trial harness keeps one per
// worker.
type Scratch struct {
	active []int32
	idx    []int
	slotOf []int
	tx     []radio.TX
	out    []radio.RX
	rnd    rng.Source

	// BFS state.
	dist      []int32
	frontier  []int32
	unlabeled []int32
	got       []radio.Msg
	ok        []bool
	senders   []radio.TX
}

// LocalBroadcast runs one Local-Broadcast on the engine. senders carry their
// messages; receivers[i]'s result is written to got[i], ok[i]. A receiver
// stops listening as soon as it hears a message (the energy optimization of
// Lemma 2.4); senders transmit once per pass in a decay-distributed slot.
// callSeed must be fresh per call (derive it from a root seed and a call
// counter). got and ok must have len(receivers).
func (s *Scratch) LocalBroadcast(e *radio.Engine, p Params, senders []radio.TX, receivers []int32, callSeed uint64, got []radio.Msg, ok []bool) {
	if len(got) != len(receivers) || len(ok) != len(receivers) {
		panic("decay: result slices must match receivers length")
	}
	for i := range ok {
		ok[i] = false
		got[i] = radio.Msg{}
	}
	if len(senders) == 0 && len(receivers) == 0 {
		e.SkipRounds(p.Duration())
		return
	}
	// active receivers, tracked by index into receivers.
	active := scratch.Grow(s.active, len(receivers))
	idx := scratch.Grow(s.idx, len(receivers)) // idx[j] = original position of active[j]
	s.active, s.idx = active, idx
	for i, r := range receivers {
		active[i] = r
		idx[i] = i
	}
	slotOf := scratch.Grow(s.slotOf, len(senders))
	s.slotOf = slotOf
	tx := s.tx
	out := scratch.Grow(s.out, len(receivers))
	s.out = out
	for pass := 0; pass < p.Passes; pass++ {
		// Each sender independently picks its decay slot for this pass.
		for i := range senders {
			s.rnd.Reseed(rng.Derive(callSeed, uint64(pass), uint64(senders[i].ID)))
			slotOf[i] = s.rnd.GeometricSlot(p.Slots)
		}
		for slot := 1; slot <= p.Slots; slot++ {
			tx = tx[:0]
			for i := range senders {
				if slotOf[i] == slot {
					tx = append(tx, senders[i])
				}
			}
			if len(tx) == 0 && len(active) == 0 {
				e.SkipRounds(1)
				continue
			}
			e.Step(tx, active, out[:len(active)])
			// Retire receivers that heard something.
			w := 0
			for j := range active {
				if out[j].OK {
					got[idx[j]] = out[j].Msg
					ok[idx[j]] = true
				} else {
					active[w], idx[w] = active[j], idx[j]
					w++
				}
			}
			active, idx = active[:w], idx[:w]
		}
	}
	s.tx = tx
}

// LocalBroadcast is the scratch-free convenience wrapper: it allocates fresh
// buffers per call. Hot loops should hold a Scratch instead.
func LocalBroadcast(e *radio.Engine, p Params, senders []radio.TX, receivers []int32, callSeed uint64, got []radio.Msg, ok []bool) {
	var s Scratch
	s.LocalBroadcast(e, p, senders, receivers, callSeed, got, ok)
}

// BFSResult carries the outcome of a Decay BFS run.
type BFSResult struct {
	Dist     []int32 // hop distance from the source set, -1 where not reached
	Rounds   int64   // physical rounds consumed
	LBCalls  int64   // Local-Broadcast invocations
	MaxDepth int32   // largest assigned label
}

// BFS runs the classic Decay BFS from srcs: in wavefront step k every vertex
// labeled k-1 is a sender and every unlabeled vertex listens. Every vertex
// stays awake until labeled, which is exactly why this baseline costs
// Θ(D log² n) energy per vertex. The search stops after maxDist wavefront
// steps or when a step labels nothing.
//
// The returned Dist slice aliases the Scratch and is valid until the next
// BFS call on the same Scratch; copy it to retain it longer.
func (s *Scratch) BFS(e *radio.Engine, p Params, srcs []int32, maxDist int, seed uint64) BFSResult {
	return s.BFSHooked(progress.Hooks{}, e, p, srcs, maxDist, seed)
}

// BFSHooked is BFS with cancellation and progress observation: the wavefront
// loop polls h.Err before every step — a canceled context stops the search
// within one wavefront step and returns the labels assigned so far, with all
// meters settled — and reports each completed step as a round batch of
// p.Duration() physical rounds under PhaseBFS.
func (s *Scratch) BFSHooked(h progress.Hooks, e *radio.Engine, p Params, srcs []int32, maxDist int, seed uint64) BFSResult {
	h.Start(PhaseBFS)
	defer h.End(PhaseBFS)
	n := e.N()
	start := e.Round()
	dist := scratch.Grow(s.dist, n)
	s.dist = dist
	for i := range dist {
		dist[i] = -1
	}
	for _, v := range srcs {
		dist[v] = 0
	}
	var res BFSResult
	frontier := append(s.frontier[:0], srcs...)
	unlabeled := s.unlabeled[:0]
	for v := int32(0); v < int32(n); v++ {
		if dist[v] == -1 {
			unlabeled = append(unlabeled, v)
		}
	}
	got := scratch.Grow(s.got, n)
	ok := scratch.Grow(s.ok, n)
	s.got, s.ok = got, ok
	senders := s.senders[:0]
	for k := int32(1); int(k) <= maxDist && len(frontier) > 0 && len(unlabeled) > 0; k++ {
		if h.Err() != nil {
			break // canceled: partial labels, meters settled
		}
		senders = senders[:0]
		for _, v := range frontier {
			senders = append(senders, radio.TX{ID: v, Msg: radio.Msg{Kind: 1, A: uint64(k - 1)}})
		}
		s.LocalBroadcast(e, p, senders, unlabeled, rng.Derive(seed, uint64(k)), got[:len(unlabeled)], ok[:len(unlabeled)])
		res.LBCalls++
		h.Rounds(PhaseBFS, p.Duration())
		frontier = frontier[:0]
		w := 0
		for j, v := range unlabeled {
			if ok[j] {
				dist[v] = k
				frontier = append(frontier, v)
				if k > res.MaxDepth {
					res.MaxDepth = k
				}
			} else {
				unlabeled[w] = v
				w++
			}
		}
		unlabeled = unlabeled[:w]
	}
	s.frontier, s.unlabeled, s.senders = frontier, unlabeled, senders
	res.Dist = dist
	res.Rounds = e.Round() - start
	return res
}

// BFS is the scratch-free convenience wrapper around Scratch.BFS; its Dist
// result is freshly allocated and safe to retain.
func BFS(e *radio.Engine, p Params, srcs []int32, maxDist int, seed uint64) BFSResult {
	var s Scratch
	return s.BFS(e, p, srcs, maxDist, seed)
}

// Broadcast floods a message from src until it has (w.h.p.) reached every
// vertex or maxDepth wavefront steps elapse. Vertices transmit only in the
// step after they first receive, so the schedule matches BFS layers. It
// returns which vertices received the message.
func Broadcast(e *radio.Engine, p Params, src int32, msg radio.Msg, maxDepth int, seed uint64) []bool {
	res := BFS(e, p, []int32{src}, maxDepth, rng.Derive(seed, 0xb70adca57))
	_ = msg // payload identical at every hop; labels stand in for delivery
	informed := make([]bool, e.N())
	for v, d := range res.Dist {
		informed[v] = d >= 0
	}
	return informed
}

// ReferenceAgainst reports how many labels in dist disagree with a
// sequential BFS from srcs on g (label -1 compared against unreachable or
// distance > maxDist). Used by tests; the registry's decay entry performs
// the same check through core.VerifyAgainstReference.
func ReferenceAgainst(g *graph.Graph, srcs []int32, dist []int32, maxDist int) int {
	ref := graph.MultiSourceBFS(g, srcs)
	bad := 0
	for v := range ref {
		want := ref[v]
		if want == graph.Unreachable || int(want) > maxDist {
			want = -1
		}
		if dist[v] != want {
			bad++
		}
	}
	return bad
}

// Sense implements the paper's footnote 2: even without hardware collision
// detection, Local-Broadcast lets each receiver differentiate "no
// transmitter in N(v)" from "at least one" in polylog(n) rounds w.h.p. —
// senders run the Decay schedule and a receiver declares the channel busy
// iff it hears any message during the call. busy[i] reports the verdict for
// receivers[i]. This is why the paper can assume the weakest (no-CD) model
// at only polylog cost.
func Sense(e *radio.Engine, p Params, senders []int32, receivers []int32, callSeed uint64) []bool {
	tx := make([]radio.TX, len(senders))
	for i, s := range senders {
		tx[i] = radio.TX{ID: s, Msg: radio.Msg{Kind: 0x5e}}
	}
	got := make([]radio.Msg, len(receivers))
	ok := make([]bool, len(receivers))
	LocalBroadcast(e, p, tx, receivers, callSeed, got, ok)
	return ok
}
