// Package decay implements the Decay protocol of Bar-Yehuda, Goldreich and
// Itai, in the form the paper uses it: the Local-Broadcast primitive of
// Lemma 2.4. Given disjoint sender and receiver sets S and R, after one
// Local-Broadcast every receiver with at least one sender-neighbor has, with
// probability 1 - f, received some message from one such neighbor.
//
// Costs (Lemma 2.4): O(log Δ · log f⁻¹) time; senders spend O(log f⁻¹)
// energy; receivers that hear a message spend O(log Δ) energy in
// expectation; receivers that hear nothing spend O(log Δ · log f⁻¹).
//
// The package also provides the classic everyone-awake Decay BFS baseline
// (O(D log² n) time and — crucially for the paper — Θ(D log² n) energy per
// vertex), the comparator for the energy-efficient Recursive-BFS.
package decay

import (
	"repro/internal/graph"
	"repro/internal/radio"
	"repro/internal/rng"
)

// Params fixes the shape of one Local-Broadcast: Passes repetitions of
// Slots decay steps. Every Local-Broadcast with the same Params takes
// exactly Duration() rounds, which is what keeps sleeping devices
// synchronized with active ones.
type Params struct {
	Slots  int // slots per pass: ⌈log₂ Δ⌉ + 1, with Δ ≤ n-1
	Passes int // repetitions: Θ(log f⁻¹)
}

// ParamsFor returns Local-Broadcast parameters for an n-device network with
// the given number of passes. Slots is ⌈log₂ n⌉ + 1 so that any neighborhood
// size is covered.
func ParamsFor(n, passes int) Params {
	slots := 1
	for 1<<slots < n {
		slots++
	}
	if passes < 1 {
		passes = 1
	}
	return Params{Slots: slots + 1, Passes: passes}
}

// Duration returns the fixed number of physical rounds per Local-Broadcast.
func (p Params) Duration() int64 {
	return int64(p.Slots) * int64(p.Passes)
}

// LocalBroadcast runs one Local-Broadcast on the engine. senders carry their
// messages; receivers[i]'s result is written to got[i], ok[i]. A receiver
// stops listening as soon as it hears a message (the energy optimization of
// Lemma 2.4); senders transmit once per pass in a decay-distributed slot.
// callSeed must be fresh per call (derive it from a root seed and a call
// counter). got and ok must have len(receivers).
func LocalBroadcast(e *radio.Engine, p Params, senders []radio.TX, receivers []int32, callSeed uint64, got []radio.Msg, ok []bool) {
	if len(got) != len(receivers) || len(ok) != len(receivers) {
		panic("decay: result slices must match receivers length")
	}
	for i := range ok {
		ok[i] = false
		got[i] = radio.Msg{}
	}
	if len(senders) == 0 && len(receivers) == 0 {
		e.SkipRounds(p.Duration())
		return
	}
	// active receivers, tracked by index into receivers.
	active := make([]int32, len(receivers))
	idx := make([]int, len(receivers)) // idx[j] = original position of active[j]
	for i, r := range receivers {
		active[i] = r
		idx[i] = i
	}
	slotOf := make([]int, len(senders))
	var tx []radio.TX
	out := make([]radio.RX, len(receivers))
	for pass := 0; pass < p.Passes; pass++ {
		// Each sender independently picks its decay slot for this pass.
		for i := range senders {
			r := rng.New(rng.Derive(callSeed, uint64(pass), uint64(senders[i].ID)))
			slotOf[i] = r.GeometricSlot(p.Slots)
		}
		for slot := 1; slot <= p.Slots; slot++ {
			tx = tx[:0]
			for i := range senders {
				if slotOf[i] == slot {
					tx = append(tx, senders[i])
				}
			}
			if len(tx) == 0 && len(active) == 0 {
				e.SkipRounds(1)
				continue
			}
			e.Step(tx, active, out[:len(active)])
			// Retire receivers that heard something.
			w := 0
			for j := range active {
				if out[j].OK {
					got[idx[j]] = out[j].Msg
					ok[idx[j]] = true
				} else {
					active[w], idx[w] = active[j], idx[j]
					w++
				}
			}
			active, idx = active[:w], idx[:w]
		}
	}
}

// BFSResult carries the outcome of a Decay BFS run.
type BFSResult struct {
	Dist     []int32 // hop distance from the source set, -1 where not reached
	Rounds   int64   // physical rounds consumed
	LBCalls  int64   // Local-Broadcast invocations
	MaxDepth int32   // largest assigned label
}

// BFS runs the classic Decay BFS from srcs: in wavefront step k every vertex
// labeled k-1 is a sender and every unlabeled vertex listens. Every vertex
// stays awake until labeled, which is exactly why this baseline costs
// Θ(D log² n) energy per vertex. The search stops after maxDist wavefront
// steps or when a step labels nothing.
func BFS(e *radio.Engine, p Params, srcs []int32, maxDist int, seed uint64) BFSResult {
	n := e.N()
	start := e.Round()
	dist := make([]int32, n)
	for i := range dist {
		dist[i] = -1
	}
	for _, s := range srcs {
		dist[s] = 0
	}
	var res BFSResult
	frontier := append([]int32(nil), srcs...)
	unlabeled := make([]int32, 0, n)
	for v := int32(0); v < int32(n); v++ {
		if dist[v] == -1 {
			unlabeled = append(unlabeled, v)
		}
	}
	got := make([]radio.Msg, n)
	ok := make([]bool, n)
	senders := make([]radio.TX, 0, n)
	for k := int32(1); int(k) <= maxDist && len(frontier) > 0 && len(unlabeled) > 0; k++ {
		senders = senders[:0]
		for _, v := range frontier {
			senders = append(senders, radio.TX{ID: v, Msg: radio.Msg{Kind: 1, A: uint64(k - 1)}})
		}
		LocalBroadcast(e, p, senders, unlabeled, rng.Derive(seed, uint64(k)), got[:len(unlabeled)], ok[:len(unlabeled)])
		res.LBCalls++
		frontier = frontier[:0]
		w := 0
		for j, v := range unlabeled {
			if ok[j] {
				dist[v] = k
				frontier = append(frontier, v)
				if k > res.MaxDepth {
					res.MaxDepth = k
				}
			} else {
				unlabeled[w] = v
				w++
			}
		}
		unlabeled = unlabeled[:w]
	}
	res.Dist = dist
	res.Rounds = e.Round() - start
	return res
}

// Broadcast floods a message from src until it has (w.h.p.) reached every
// vertex or maxDepth wavefront steps elapse. Vertices transmit only in the
// step after they first receive, so the schedule matches BFS layers. It
// returns which vertices received the message.
func Broadcast(e *radio.Engine, p Params, src int32, msg radio.Msg, maxDepth int, seed uint64) []bool {
	res := BFS(e, p, []int32{src}, maxDepth, rng.Derive(seed, 0xb70adca57))
	_ = msg // payload identical at every hop; labels stand in for delivery
	informed := make([]bool, e.N())
	for v, d := range res.Dist {
		informed[v] = d >= 0
	}
	return informed
}

// ReferenceAgainst reports how many labels in dist disagree with a
// sequential BFS from srcs on g (label -1 compared against unreachable or
// distance > maxDist). Used by tests and the experiment harness.
func ReferenceAgainst(g *graph.Graph, srcs []int32, dist []int32, maxDist int) int {
	ref := graph.MultiSourceBFS(g, srcs)
	bad := 0
	for v := range ref {
		want := ref[v]
		if want == graph.Unreachable || int(want) > maxDist {
			want = -1
		}
		if dist[v] != want {
			bad++
		}
	}
	return bad
}

// Sense implements the paper's footnote 2: even without hardware collision
// detection, Local-Broadcast lets each receiver differentiate "no
// transmitter in N(v)" from "at least one" in polylog(n) rounds w.h.p. —
// senders run the Decay schedule and a receiver declares the channel busy
// iff it hears any message during the call. busy[i] reports the verdict for
// receivers[i]. This is why the paper can assume the weakest (no-CD) model
// at only polylog cost.
func Sense(e *radio.Engine, p Params, senders []int32, receivers []int32, callSeed uint64) []bool {
	tx := make([]radio.TX, len(senders))
	for i, s := range senders {
		tx[i] = radio.TX{ID: s, Msg: radio.Msg{Kind: 0x5e}}
	}
	got := make([]radio.Msg, len(receivers))
	ok := make([]bool, len(receivers))
	LocalBroadcast(e, p, tx, receivers, callSeed, got, ok)
	return ok
}
