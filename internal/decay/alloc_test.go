package decay

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/radio"
	"repro/internal/rng"
)

// TestLocalBroadcastScratchZeroAllocs asserts the Decay rounds allocate
// nothing once a Scratch has been warmed — the property that keeps large
// physical-cost sweeps activity-bound instead of GC-bound.
func TestLocalBroadcastScratchZeroAllocs(t *testing.T) {
	g := graph.Star(65)
	e := radio.NewEngine(g)
	p := ParamsFor(g.N(), 4)
	senders := make([]radio.TX, 0, 64)
	for v := 1; v <= 64; v++ {
		senders = append(senders, radio.TX{ID: int32(v), Msg: radio.Msg{A: uint64(v)}})
	}
	receivers := []int32{0}
	got := make([]radio.Msg, 1)
	ok := make([]bool, 1)
	var s Scratch
	s.LocalBroadcast(e, p, senders, receivers, rng.Derive(1, 0), got, ok) // warm
	call := uint64(1)
	allocs := testing.AllocsPerRun(50, func() {
		call++
		s.LocalBroadcast(e, p, senders, receivers, rng.Derive(1, call), got, ok)
	})
	if allocs != 0 {
		t.Fatalf("Scratch.LocalBroadcast allocates %v per call in steady state, want 0", allocs)
	}
}

// TestScratchBFSMatchesFresh pins the pooled path to the one-shot path: the
// same seeds must label identically whether the scratch is fresh or reused,
// including across graphs of different sizes.
func TestScratchBFSMatchesFresh(t *testing.T) {
	var s Scratch
	for i, g := range []*graph.Graph{graph.Cycle(96), graph.Grid(7, 7), graph.Path(33)} {
		seed := uint64(100 + i)
		p := ParamsFor(g.N(), 6)
		eFresh := radio.NewEngine(g)
		want := BFS(eFresh, p, []int32{0}, g.N(), seed)
		ePooled := radio.NewEngine(g)
		got := s.BFS(ePooled, p, []int32{0}, g.N(), seed)
		if len(got.Dist) != len(want.Dist) {
			t.Fatalf("graph %d: dist length %d, want %d", i, len(got.Dist), len(want.Dist))
		}
		for v := range want.Dist {
			if got.Dist[v] != want.Dist[v] {
				t.Fatalf("graph %d: dist[%d] = %d, want %d", i, v, got.Dist[v], want.Dist[v])
			}
		}
		if got.Rounds != want.Rounds || got.LBCalls != want.LBCalls || got.MaxDepth != want.MaxDepth {
			t.Fatalf("graph %d: result %+v, want %+v", i, got, want)
		}
	}
}
