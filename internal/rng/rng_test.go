package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("distinct seeds produced %d identical outputs in 100 draws", same)
	}
}

func TestDeriveIndependence(t *testing.T) {
	seen := make(map[uint64]bool)
	for i := uint64(0); i < 1000; i++ {
		s := Derive(7, i)
		if seen[s] {
			t.Fatalf("Derive collision at tag %d", i)
		}
		seen[s] = true
	}
	if Derive(7, 1, 2) == Derive(7, 2, 1) {
		t.Fatal("Derive should be order-sensitive in its tags")
	}
	if Derive(7, 1) == Derive(8, 1) {
		t.Fatal("Derive should depend on the base seed")
	}
}

func TestZeroSeedUsable(t *testing.T) {
	r := New(0)
	var x uint64
	for i := 0; i < 10; i++ {
		x |= r.Uint64()
	}
	if x == 0 {
		t.Fatal("zero seed produced all-zero stream")
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	const trials = 200000
	var sum float64
	for i := 0; i < trials; i++ {
		sum += r.Float64()
	}
	mean := sum / trials
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestIntnRange(t *testing.T) {
	r := New(5)
	counts := make([]int, 10)
	for i := 0; i < 100000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
		counts[v]++
	}
	for v, c := range counts {
		if c < 8000 || c > 12000 {
			t.Fatalf("Intn(10) value %d drawn %d times out of 100000; grossly non-uniform", v, c)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) should panic")
		}
	}()
	New(1).Intn(0)
}

func TestBernoulliEdgeCases(t *testing.T) {
	r := New(9)
	for i := 0; i < 100; i++ {
		if r.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !r.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
		if r.Bernoulli(-0.5) {
			t.Fatal("Bernoulli(-0.5) returned true")
		}
		if !r.Bernoulli(1.5) {
			t.Fatal("Bernoulli(1.5) returned false")
		}
	}
}

func TestBernoulliRate(t *testing.T) {
	r := New(13)
	const trials = 100000
	hits := 0
	for i := 0; i < trials; i++ {
		if r.Bernoulli(0.3) {
			hits++
		}
	}
	rate := float64(hits) / trials
	if math.Abs(rate-0.3) > 0.01 {
		t.Fatalf("Bernoulli(0.3) empirical rate %v", rate)
	}
}

func TestExpMean(t *testing.T) {
	for _, beta := range []float64{0.125, 0.5, 1, 4} {
		r := New(17)
		const trials = 200000
		var sum float64
		for i := 0; i < trials; i++ {
			sum += r.Exp(beta)
		}
		mean := sum / trials
		want := 1 / beta
		if math.Abs(mean-want) > 0.05*want {
			t.Fatalf("Exp(%v) mean = %v, want ~%v", beta, mean, want)
		}
	}
}

func TestExpNonNegative(t *testing.T) {
	r := New(19)
	for i := 0; i < 10000; i++ {
		if v := r.Exp(2); v < 0 || math.IsInf(v, 0) || math.IsNaN(v) {
			t.Fatalf("Exp produced invalid variate %v", v)
		}
	}
}

func TestExpPanicsOnBadRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Exp(0) should panic")
		}
	}()
	New(1).Exp(0)
}

// TestExpMemoryless spot-checks the memoryless property used by Lemma 2.1:
// P(X > a+b | X > a) should approximate P(X > b).
func TestExpMemoryless(t *testing.T) {
	r := New(23)
	const beta, a, b = 1.0, 0.7, 1.1
	var exceedA, exceedAB, exceedB, total float64
	const trials = 400000
	for i := 0; i < trials; i++ {
		x := r.Exp(beta)
		total++
		if x > a {
			exceedA++
			if x > a+b {
				exceedAB++
			}
		}
		if x > b {
			exceedB++
		}
	}
	cond := exceedAB / exceedA
	uncond := exceedB / total
	if math.Abs(cond-uncond) > 0.02 {
		t.Fatalf("memoryless violated: P(X>a+b|X>a)=%v vs P(X>b)=%v", cond, uncond)
	}
}

func TestGeometricSlotDistribution(t *testing.T) {
	r := New(29)
	const max = 10
	const trials = 200000
	counts := make([]int, max+1)
	for i := 0; i < trials; i++ {
		s := r.GeometricSlot(max)
		if s < 1 || s > max {
			t.Fatalf("slot %d out of [1,%d]", s, max)
		}
		counts[s]++
	}
	// P(t) = 2^-t for t < max; require the Decay property P(X_u = t) >= 2^-t
	// to hold empirically within tolerance.
	for tt := 1; tt < max; tt++ {
		want := math.Pow(2, -float64(tt))
		got := float64(counts[tt]) / trials
		if got < want*0.9-0.002 {
			t.Fatalf("P(slot=%d) = %v, want >= ~%v", tt, got, want)
		}
	}
}

func TestGeometricSlotEdge(t *testing.T) {
	r := New(31)
	for i := 0; i < 100; i++ {
		if s := r.GeometricSlot(1); s != 1 {
			t.Fatalf("GeometricSlot(1) = %d", s)
		}
		if s := r.GeometricSlot(0); s != 1 {
			t.Fatalf("GeometricSlot(0) = %d", s)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	check := func(seed uint64, n uint8) bool {
		p := New(seed).Perm(int(n))
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= int(n) || seen[v] {
				return false
			}
			seen[v] = true
		}
		return len(p) == int(n)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShufflePreservesMultiset(t *testing.T) {
	r := New(37)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, x := range xs {
		sum += x
	}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	got := 0
	for _, x := range xs {
		got += x
	}
	if got != sum {
		t.Fatalf("Shuffle changed element multiset: sum %d -> %d", sum, got)
	}
}

func TestRankNonNegative(t *testing.T) {
	r := New(41)
	for i := 0; i < 1000; i++ {
		if r.Rank() < 0 {
			t.Fatal("Rank returned negative value")
		}
	}
}

func TestReseedResets(t *testing.T) {
	r := New(100)
	first := make([]uint64, 16)
	for i := range first {
		first[i] = r.Uint64()
	}
	r.Reseed(100)
	for i := range first {
		if got := r.Uint64(); got != first[i] {
			t.Fatalf("Reseed did not reset stream at %d", i)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= r.Uint64()
	}
	_ = sink
}

func BenchmarkExp(b *testing.B) {
	r := New(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += r.Exp(0.25)
	}
	_ = sink
}
