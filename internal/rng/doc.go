// Package rng provides a small, fast, deterministic pseudo-random number
// generator with support for the distributions used throughout the radio
// network simulator: uniform integers, Bernoulli trials, truncated
// geometrics, and the Exponential(β) variates that drive Miller–Peng–Xu
// clustering (§2 of the paper).
//
// Devices in the RN model (§1.1) have private randomness only (no shared
// coins), so the package is built around cheap stream splitting: Derive
// hashes a base seed together with a list of tags (device ID, call counter,
// ...) into an independent stream seed. All algorithms in this repository
// obtain their randomness exclusively through this package, which makes
// every simulation fully reproducible from a single root seed.
//
// Derive is also the spine of the repository-wide determinism contract: the
// experiment harness derives every trial's seed from (root seed, scenario
// name, instance coordinates, trial index) — never from list positions or
// scheduling — so sweeps, spec runs, and their persisted artifacts are
// byte-identical at any worker count. Sources are plain values with no
// locks or global state; a Source must not be shared across goroutines.
package rng
