package rng

import "math"

// golden is the 64-bit golden-ratio constant used by splitmix64.
const golden = 0x9e3779b97f4a7c15

// mix is the splitmix64 finalizer: a bijective mixing function with good
// avalanche behaviour. It is the basis for both seeding and stream splitting.
func mix(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Derive combines a base seed with a sequence of tags into a new seed that is
// statistically independent of the base and of any Derive call with a
// different tag sequence. It is the stream-splitting primitive used to give
// every device, every protocol phase, and every Local-Broadcast call its own
// private randomness.
func Derive(seed uint64, tags ...uint64) uint64 {
	h := mix(seed + golden)
	for _, t := range tags {
		h = mix(h ^ mix(t+golden))
	}
	return h
}

// Source is a deterministic PRNG implementing xoshiro256++. The zero value is
// not usable; construct with New.
type Source struct {
	s0, s1, s2, s3 uint64
}

// New returns a Source seeded from seed via splitmix64 expansion.
func New(seed uint64) *Source {
	var r Source
	r.Reseed(seed)
	return &r
}

// Reseed resets the source to the stream determined by seed.
func (r *Source) Reseed(seed uint64) {
	z := seed
	next := func() uint64 {
		z += golden
		return mix(z)
	}
	r.s0, r.s1, r.s2, r.s3 = next(), next(), next(), next()
	if r.s0|r.s1|r.s2|r.s3 == 0 {
		r.s0 = golden // all-zero state is a fixed point of xoshiro
	}
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 pseudo-random bits.
func (r *Source) Uint64() uint64 {
	result := rotl(r.s0+r.s3, 23) + r.s0
	t := r.s1 << 17
	r.s2 ^= r.s0
	r.s3 ^= r.s1
	r.s1 ^= r.s2
	r.s0 ^= r.s3
	r.s2 ^= t
	r.s3 = rotl(r.s3, 45)
	return result
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0, mirroring
// math/rand; all in-repo callers pass validated positive bounds.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with non-positive n")
	}
	return int(r.Uint64() % uint64(n)) // modulo bias is negligible for n << 2^64
}

// Int63 returns a uniform non-negative int64.
func (r *Source) Int63() int64 {
	return int64(r.Uint64() >> 1)
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Source) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bernoulli returns true with probability p (clamped to [0, 1]).
func (r *Source) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Exp returns an Exponential random variate with rate beta (mean 1/beta),
// matching the δ_v ~ Exponential(β) draws of the MPX clustering algorithm.
// It panics if beta <= 0.
func (r *Source) Exp(beta float64) float64 {
	if beta <= 0 {
		panic("rng: Exp called with non-positive rate")
	}
	u := r.Float64()
	// 1-u is in (0, 1], so the logarithm is finite.
	return -math.Log(1-u) / beta
}

// GeometricSlot returns a slot t >= 1 with P(t = k) = 2^-k for k < max and
// all remaining mass on max. This is the Decay transmission-slot
// distribution of Lemma 2.4: P(X_u = t) >= 2^-t.
func (r *Source) GeometricSlot(max int) int {
	if max <= 1 {
		return 1
	}
	t := 1
	for t < max && r.Uint64()&1 == 1 {
		t++
	}
	return t
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle pseudo-randomly permutes the n elements addressed by swap.
func (r *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Rank returns a 63-bit random rank used for leader-election lotteries; the
// top bit is cleared so ranks compose with signed comparisons.
func (r *Source) Rank() int64 {
	return r.Int63()
}
