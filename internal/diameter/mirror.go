package diameter

import (
	"math"

	"repro/internal/graph"
	"repro/internal/rng"
)

// MirrorThreeHalves runs the Theorem 5.4 algorithm centrally (sequential
// BFS instead of radio BFS) so that the ⌊2·diam/3⌋ <= D′ <= diam guarantee
// can be validated on graphs far larger than the radio simulation reaches.
// The sampling and selection rules match ThreeHalvesApprox exactly.
func MirrorThreeHalves(g *graph.Graph, seed uint64) Result {
	n := g.N()
	res := Result{Leader: 0}
	best := int32(0)
	track := func(dist []int32) {
		for _, d := range dist {
			if d > best {
				best = d
			}
		}
	}

	p := math.Log(float64(n)+1) / math.Sqrt(float64(n))
	minToS := make([]int32, n)
	for v := range minToS {
		minToS[v] = int32(n + 1)
	}
	for v := 0; v < n; v++ {
		if !rng.New(rng.Derive(seed, uint64(v), 0x5a111)).Bernoulli(p) {
			continue
		}
		res.SampleSize++
		res.BFSRuns++
		dist := graph.BFS(g, int32(v))
		track(dist)
		for u := 0; u < n; u++ {
			if dist[u] >= 0 && dist[u] < minToS[u] {
				minToS[u] = dist[u]
			}
		}
	}
	// v*: maximum distance to S, ties toward larger key (dist·n + id), as in
	// the radio version's FindMax over composite keys.
	vStar := int32(0)
	bestKey := int64(-1)
	for v := 0; v < n; v++ {
		key := int64(minToS[v])*int64(n) + int64(v)
		if key > bestKey {
			bestKey, vStar = key, int32(v)
		}
	}
	distStar := graph.BFS(g, vStar)
	res.BFSRuns++
	track(distStar)

	// R: √n closest to v* by (distance, ID).
	type pair struct {
		d int64
		v int32
	}
	var cands []pair
	for v := 0; v < n; v++ {
		if distStar[v] >= 0 {
			cands = append(cands, pair{int64(distStar[v])*int64(n) + int64(v), int32(v)})
		}
	}
	// Selection sort of the √n smallest (n is moderate here).
	rSize := int(math.Ceil(math.Sqrt(float64(n))))
	for picked := 0; picked < rSize && picked < len(cands); picked++ {
		minAt := picked
		for j := picked + 1; j < len(cands); j++ {
			if cands[j].d < cands[minAt].d {
				minAt = j
			}
		}
		cands[picked], cands[minAt] = cands[minAt], cands[picked]
		res.RSize++
		res.BFSRuns++
		track(graph.BFS(g, cands[picked].v))
	}
	res.Estimate = best
	return res
}
