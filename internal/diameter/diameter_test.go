package diameter

import (
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/lbnet"
	"repro/internal/radio"
	"repro/internal/rng"
)

func quickStack(t *testing.T, g *graph.Graph, seed uint64) (*core.Stack, *lbnet.UnitNet) {
	t.Helper()
	base := lbnet.NewUnitNet(g, 0, seed)
	p := core.Params{InvBeta: 4, Depth: 1, W: 24, Alpha: 4}
	if g.N() < 32 {
		p.Depth = 0
		p.InvBeta = 1
	}
	st, err := core.BuildStack(base, p, seed)
	if err != nil {
		t.Fatal(err)
	}
	return st, base
}

func TestTreeLayers(t *testing.T) {
	labels := graph.BFS(graph.Path(10), 0)
	tr := NewTree(labels)
	if tr.Height != 9 || tr.Root() != 0 {
		t.Fatalf("height=%d root=%d", tr.Height, tr.Root())
	}
	for l, vs := range tr.byLayer {
		if len(vs) != 1 || vs[0] != int32(l) {
			t.Fatalf("layer %d = %v", l, vs)
		}
	}
}

func TestConvergecastAndBroadcast(t *testing.T) {
	g := graph.Grid(6, 6)
	labels := graph.BFS(g, 0)
	tr := NewTree(labels)
	net := lbnet.NewUnitNet(g, 0, 3)
	n := g.N()
	has := make([]bool, n)
	msg := make([]radio.Msg, n)
	// Flag only the farthest vertex; its bit must reach the root.
	far := int32(0)
	for v := int32(0); v < int32(n); v++ {
		if labels[v] > labels[far] {
			far = v
		}
	}
	has[far] = true
	msg[far] = radio.Msg{Kind: MsgSweepFlag, A: 99}
	okRoot, m := convergecast(net, tr, has, msg)
	if !okRoot || m.A != 99 {
		t.Fatalf("convergecast lost the flag: ok=%v m=%+v", okRoot, m)
	}
	// Broadcast must reach everyone (checked via energy: all layers listen).
	has2 := make([]bool, n)
	msg2 := make([]radio.Msg, n)
	broadcast(net, tr, radio.Msg{Kind: MsgSweepBcast, A: 7}, has2, msg2)
	for v := 0; v < n; v++ {
		if !has2[v] || msg2[v].A != 7 {
			t.Fatalf("vertex %d missed broadcast", v)
		}
	}
}

func TestConvergecastNoFlags(t *testing.T) {
	g := graph.Path(20)
	tr := NewTree(graph.BFS(g, 0))
	net := lbnet.NewUnitNet(g, 0, 5)
	okRoot, _ := convergecast(net, tr, make([]bool, 20), make([]radio.Msg, 20))
	if okRoot {
		t.Fatal("root flagged with no flags in the network")
	}
}

func TestFindMinBasics(t *testing.T) {
	g := graph.Grid(5, 8)
	tr := NewTree(graph.BFS(g, 0))
	net := lbnet.NewUnitNet(g, 0, 7)
	keys := make([]int64, g.N())
	for v := range keys {
		keys[v] = int64((v*7)%40) + 5
	}
	keys[17] = 2 // unique minimum
	got, m, found := FindMin(net, tr, 100, func(v int32) int64 { return keys[v] },
		func(v int32) radio.Msg { return radio.Msg{A: uint64(v)} })
	if !found || got != 2 || m.A != 17 {
		t.Fatalf("FindMin = (%d, %+v, %v), want (2, 17, true)", got, m, found)
	}
}

func TestFindMinAllAbsent(t *testing.T) {
	g := graph.Path(10)
	tr := NewTree(graph.BFS(g, 0))
	net := lbnet.NewUnitNet(g, 0, 9)
	if _, _, found := FindMin(net, tr, 50, func(int32) int64 { return KeyInf }, nil); found {
		t.Fatal("FindMin found a key where none participates")
	}
}

func TestFindMaxBasics(t *testing.T) {
	g := graph.Cycle(30)
	tr := NewTree(graph.BFS(g, 0))
	net := lbnet.NewUnitNet(g, 0, 11)
	got, m, found := FindMax(net, tr, 1000, func(v int32) int64 { return int64(v * 3) },
		func(v int32) radio.Msg { return radio.Msg{A: uint64(v)} })
	if !found || got != 87 || m.A != 29 {
		t.Fatalf("FindMax = (%d, %+v, %v), want (87, v=29)", got, m, found)
	}
}

func TestFindMinEnergyLogarithmic(t *testing.T) {
	g := graph.Path(100)
	tr := NewTree(graph.BFS(g, 0))
	net := lbnet.NewUnitNet(g, 0, 13)
	FindMin(net, tr, 1<<20, func(v int32) int64 { return int64(v) }, nil)
	// ~21 binary-search iterations, each costing every vertex O(1): allow
	// 4 participations per iteration plus the payload relay.
	budget := int64(4*21 + 8)
	if e := lbnet.MaxLBEnergy(net); e > budget {
		t.Fatalf("FindMin energy %d exceeds O(log K) budget %d", e, budget)
	}
}

func TestDesignatedLeader(t *testing.T) {
	l := Designated()
	if l.ID != 0 || !l.Agreed {
		t.Fatalf("designated leader = %+v", l)
	}
}

func TestMaxRankFloodAgreement(t *testing.T) {
	r := rng.New(17)
	for trial := 0; trial < 5; trial++ {
		g := graph.ConnectedGNP(60, 0.08, r)
		net := lbnet.NewUnitNet(g, 0, uint64(trial))
		net.SetDelivery(lbnet.DeliverRandom)
		diam := int(graph.Diameter(g))
		lead := MaxRankFlood(net, 4*diam+80, 2, uint64(trial))
		if !lead.Agreed {
			t.Fatalf("trial %d: vertices disagree on the leader", trial)
		}
	}
}

func TestMaxRankFloodOnPath(t *testing.T) {
	// The pathological case for min-ID delivery; random delivery must
	// propagate the maximum from wherever it lands.
	g := graph.Path(40)
	net := lbnet.NewUnitNet(g, 0, 21)
	net.SetDelivery(lbnet.DeliverRandom)
	lead := MaxRankFlood(net, 260, 2, 21)
	if !lead.Agreed {
		t.Fatal("max-rank flood failed on a path")
	}
}

func TestTwoApproxBounds(t *testing.T) {
	r := rng.New(23)
	cases := []*graph.Graph{
		graph.Path(60),
		graph.Cycle(50),
		graph.Grid(7, 7),
		graph.Star(40),
		graph.ConnectedGNP(64, 0.06, r),
		graph.Lollipop(20, 20),
	}
	for i, g := range cases {
		st, _ := quickStack(t, g, uint64(i+1))
		diam := graph.Diameter(g)
		res := TwoApprox(st, Designated(), g.N())
		if int32(res.Estimate) > diam || int32(res.Estimate) < diam/2 {
			t.Errorf("case %d: 2-approx %d outside [%d, %d]", i, res.Estimate, diam/2, diam)
		}
	}
}

func TestTwoApproxEnergyShape(t *testing.T) {
	g := graph.Cycle(128)
	st, base := quickStack(t, g, 31)
	TwoApprox(st, Designated(), 128)
	// At laptop scale the absolute energy is dominated by the polylog cast
	// constants (see DESIGN.md §4); the asymptotic claim is measured by the
	// E12 experiment. Here we check two structural facts: the run finishes
	// within a generous budget, and sleeping works — the median vertex pays
	// far less than the busiest one.
	if e := lbnet.MaxLBEnergy(base); e > 50000 {
		t.Fatalf("2-approx energy %d beyond any reasonable budget", e)
	}
	// On a cycle every vertex is symmetric, so spreads are small; just
	// check the meters moved and are spread over all vertices.
	if lbnet.TotalLBEnergy(base) <= lbnet.MaxLBEnergy(base) {
		t.Fatal("energy concentrated on a single vertex")
	}
}

func TestThreeHalvesRadioBounds(t *testing.T) {
	r := rng.New(29)
	cases := []*graph.Graph{
		graph.Path(48),
		graph.PathWithTrees(20, 2),
		graph.ConnectedGNP(48, 0.08, r),
	}
	for i, g := range cases {
		st, _ := quickStack(t, g, uint64(i+50))
		diam := graph.Diameter(g)
		res := ThreeHalvesApprox(st, Designated(), g.N(), uint64(i+50))
		lo := diam * 2 / 3
		if res.Estimate > diam || int32(res.Estimate) < lo {
			t.Errorf("case %d: 3/2-approx %d outside [%d, %d] (diam %d)", i, res.Estimate, lo, diam, diam)
		}
		if res.SampleSize == 0 {
			t.Errorf("case %d: empty sample S", i)
		}
		if res.RSize == 0 {
			t.Errorf("case %d: empty R", i)
		}
	}
}

func TestMirrorThreeHalvesBounds(t *testing.T) {
	r := rng.New(37)
	cases := []*graph.Graph{
		graph.Path(500),
		graph.Cycle(700),
		graph.Grid(25, 25),
		graph.PathWithTrees(200, 4),
		graph.ConnectedGNP(600, 0.008, r),
		graph.Lollipop(100, 300),
		graph.RandomGeometric(500, 0.08, r, true),
	}
	for i, g := range cases {
		diam := graph.Diameter(g)
		for seed := uint64(0); seed < 3; seed++ {
			res := MirrorThreeHalves(g, seed)
			lo := diam * 2 / 3
			if res.Estimate > diam || res.Estimate < lo {
				t.Errorf("case %d seed %d: estimate %d outside [%d, %d]", i, seed, res.Estimate, lo, diam)
			}
		}
	}
}

// TestMirrorAgreesWithRadio: on a small graph the radio implementation and
// the centralized mirror follow the same sampling rules, so their estimates
// both respect the band (they need not be equal — tie-breaking inside
// FindMin depends on the schedule — but usually are).
func TestMirrorAgreesWithRadio(t *testing.T) {
	g := graph.Path(40)
	st, _ := quickStack(t, g, 61)
	radioRes := ThreeHalvesApprox(st, Designated(), 40, 61)
	mirrorRes := MirrorThreeHalves(g, 61)
	if radioRes.SampleSize != mirrorRes.SampleSize {
		t.Fatalf("sample sizes differ: radio %d mirror %d", radioRes.SampleSize, mirrorRes.SampleSize)
	}
	diam := graph.Diameter(g)
	for _, est := range []int32{radioRes.Estimate, mirrorRes.Estimate} {
		if est > diam || est < diam*2/3 {
			t.Fatalf("estimate %d outside band (diam %d)", est, diam)
		}
	}
}
