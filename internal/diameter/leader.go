package diameter

import (
	"repro/internal/lbnet"
	"repro/internal/radio"
	"repro/internal/rng"
)

// MsgRank carries a leader-election rank.
const MsgRank = 0x48

// Leader is the outcome of a leader election.
type Leader struct {
	// ID is the elected vertex.
	ID int32
	// Agreed reports whether every vertex ended with the same belief — the
	// w.h.p. event the election relies on.
	Agreed bool
}

// Designated returns the zero-cost "leader election" in which device 0 is
// the leader by convention (e.g. devices flashed with distinct roles).
// The paper's Theorems 5.3/5.4 use the LeaderElection of [Chang et al.
// PODC'18] as a black box; this is the default substitute recorded in
// DESIGN.md.
func Designated() Leader { return Leader{ID: 0, Agreed: true} }

// MaxRankFlood elects a leader distributedly: every vertex draws a 62-bit
// rank and the maximum (rank, ID) pair is flooded for `rounds`
// Local-Broadcasts. A vertex whose belief improved within the last `repeat`
// calls is *eligible* to transmit and does so with probability 1/2 on a
// private coin (mixing senders with listeners — without it, the symmetric
// all-fresh start would have everyone transmit into deaf air); otherwise it
// listens. With rounds comfortably above the diameter every vertex
// converges on the global maximum w.h.p. Expected transmissions per vertex
// are O(repeat · log n) (belief improvements are record values among random
// ranks); listening dominates at O(rounds).
func MaxRankFlood(net lbnet.Net, rounds int, repeat int, seed uint64) Leader {
	n := net.N()
	if repeat < 1 {
		repeat = 1
	}
	rank := make([]int64, n)
	bestRank := make([]int64, n)
	bestID := make([]int32, n)
	lastImprove := make([]int, n)
	coins := make([]*rng.Source, n)
	for v := 0; v < n; v++ {
		src := rng.New(rng.Derive(seed, uint64(v), 0x1eade2))
		rank[v] = src.Rank() >> 1
		bestRank[v] = rank[v]
		bestID[v] = int32(v)
		lastImprove[v] = 0
		coins[v] = src
	}
	// The retransmission window must be Θ(log n): on a path, a single hop
	// where the receiver misses every transmission kills the flood, so each
	// improvement is offered for window rounds to push the per-hop failure
	// probability to 1/poly(n).
	lg := 1
	for 1<<lg < n {
		lg++
	}
	window := 2 * repeat * lg
	var senders []radio.TX
	var receivers []int32
	got := make([]radio.Msg, n)
	ok := make([]bool, n)
	for t := 0; t < rounds; t++ {
		senders, receivers = senders[:0], receivers[:0]
		for v := int32(0); v < int32(n); v++ {
			if t-lastImprove[v] < window && coins[v].Bernoulli(0.5) {
				senders = append(senders, radio.TX{ID: v, Msg: radio.Msg{
					Kind: MsgRank, A: uint64(bestRank[v]), B: uint64(bestID[v]),
				}})
			} else {
				receivers = append(receivers, v)
			}
		}
		net.LocalBroadcast(senders, receivers, got[:len(receivers)], ok[:len(receivers)])
		for j, v := range receivers {
			if !ok[j] || got[j].Kind != MsgRank {
				continue
			}
			r, id := int64(got[j].A), int32(got[j].B)
			if r > bestRank[v] || (r == bestRank[v] && id > bestID[v]) {
				bestRank[v], bestID[v] = r, id
				lastImprove[v] = t + 1
			}
		}
	}
	out := Leader{ID: bestID[0], Agreed: true}
	for v := 1; v < n; v++ {
		if bestID[v] != out.ID {
			out.Agreed = false
		}
		if bestRank[v] > bestRank[out.ID] {
			out.ID = bestID[v] // report the true maximum's owner
		}
	}
	return out
}
