// Package diameter implements the paper's §5.1 upper bounds: the
// 2-approximation of Theorem 5.3 (leader election + BFS + Find Maximum) and
// the nearly-3/2-approximation of Theorem 5.4 (the Holzer–Peleg–Roditty–
// Wattenhofer / Roditty–Vassilevska-Williams sampling algorithm implemented
// on top of the energy-efficient BFS), together with the Find Minimum /
// Find Maximum primitives they rely on: binary search driven by layered
// convergecast and broadcast sweeps over a BFS-tree gradient, costing O(1)
// energy per vertex per sweep.
package diameter

import (
	"repro/internal/lbnet"
	"repro/internal/radio"
)

// Message kinds for the sweep protocols.
const (
	// MsgSweepFlag relays an existence bit toward the root.
	MsgSweepFlag = 0x40
	// MsgSweepBcast relays a value from the root to everyone.
	MsgSweepBcast = 0x41
)

// Tree is a BFS-gradient labeling used to schedule sweeps: Labels[v] is the
// hop distance from the root, Height the largest label. Unreachable
// vertices (negative label) never participate.
type Tree struct {
	Labels  []int32
	Height  int32
	byLayer [][]int32
	root    int32
}

// NewTree wraps BFS labels into a sweep schedule.
func NewTree(labels []int32) Tree {
	var h int32
	for _, l := range labels {
		if l > h {
			h = l
		}
	}
	tr := Tree{Labels: labels, Height: h, root: -1}
	tr.byLayer = make([][]int32, h+1)
	for v, l := range labels {
		if l >= 0 {
			tr.byLayer[l] = append(tr.byLayer[l], int32(v))
		}
		if l == 0 && tr.root < 0 {
			tr.root = int32(v)
		}
	}
	return tr
}

// Root returns the tree root (label-0 vertex), or -1 if none.
func (tr Tree) Root() int32 { return tr.root }

// convergecast floods an existence bit (with an optional payload) from all
// flagged vertices to the root: in stage k (descending from Height to 1) the
// flagged layer-k vertices transmit and unflagged layer-(k-1) vertices
// listen. It returns whether the root ended up flagged and the message it
// holds. Each vertex participates in at most 2 of the Height
// Local-Broadcasts, so a sweep costs O(1) energy per vertex.
func convergecast(net lbnet.Net, tr Tree, has []bool, msg []radio.Msg) (bool, radio.Msg) {
	var senders []radio.TX
	var receivers []int32
	n := net.N()
	got := make([]radio.Msg, n)
	ok := make([]bool, n)
	for k := tr.Height; k >= 1; k-- {
		senders, receivers = senders[:0], receivers[:0]
		for _, v := range tr.byLayer[k] {
			if has[v] {
				senders = append(senders, radio.TX{ID: v, Msg: msg[v]})
			}
		}
		for _, v := range tr.byLayer[k-1] {
			if !has[v] {
				receivers = append(receivers, v)
			}
		}
		if len(senders) == 0 {
			net.SkipLB(1)
			continue
		}
		net.LocalBroadcast(senders, receivers, got[:len(receivers)], ok[:len(receivers)])
		for j, v := range receivers {
			if ok[j] {
				has[v] = true
				msg[v] = got[j]
			}
		}
	}
	if tr.root < 0 {
		return false, radio.Msg{}
	}
	return has[tr.root], msg[tr.root]
}

// broadcast floods m from the root to every vertex along ascending layers.
func broadcast(net lbnet.Net, tr Tree, m radio.Msg, has []bool, msg []radio.Msg) {
	for i := range has {
		has[i] = false
	}
	if tr.root >= 0 {
		has[tr.root] = true
		msg[tr.root] = m
	}
	var senders []radio.TX
	var receivers []int32
	n := net.N()
	got := make([]radio.Msg, n)
	ok := make([]bool, n)
	for k := int32(1); k <= tr.Height; k++ {
		senders, receivers = senders[:0], receivers[:0]
		for _, v := range tr.byLayer[k-1] {
			if has[v] {
				senders = append(senders, radio.TX{ID: v, Msg: msg[v]})
			}
		}
		receivers = append(receivers, tr.byLayer[k]...)
		if len(senders) == 0 {
			net.SkipLB(1)
			continue
		}
		net.LocalBroadcast(senders, receivers, got[:len(receivers)], ok[:len(receivers)])
		for j, v := range receivers {
			if ok[j] {
				has[v] = true
				msg[v] = got[j]
			}
		}
	}
}

// KeyInf is the sentinel for vertices not participating in a Find query.
const KeyInf = int64(1) << 50

// FindMin locates the minimum of key(v) over participating vertices by
// binary search over [0, maxKey]: O(log maxKey) convergecast/broadcast sweep
// pairs, hence O(log maxKey) energy per vertex and O(Height · log maxKey)
// Local-Broadcast time. It returns the minimum key and the payload of the
// unique holder (callers make keys unique by embedding vertex IDs; ties
// deliver an arbitrary holder's payload). found is false when every key is
// KeyInf (or exceeds maxKey).
func FindMin(net lbnet.Net, tr Tree, maxKey int64, key func(int32) int64, payload func(int32) radio.Msg) (minKey int64, holder radio.Msg, found bool) {
	n := net.N()
	has := make([]bool, n)
	msg := make([]radio.Msg, n)
	flagMsg := radio.Msg{Kind: MsgSweepFlag, A: 1}
	lo, hi := int64(0), maxKey+1
	for lo < hi {
		mid := lo + (hi-lo)/2
		for v := int32(0); v < int32(n); v++ {
			has[v] = key(v) <= mid
			msg[v] = flagMsg
		}
		exists, _ := convergecast(net, tr, has, msg)
		bit := uint64(0)
		if exists {
			bit = 1
		}
		broadcast(net, tr, radio.Msg{Kind: MsgSweepBcast, A: bit}, has, msg)
		if exists {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	if lo > maxKey {
		return 0, radio.Msg{}, false
	}
	// Relay the holder's payload to the root, then share it with everyone.
	for v := int32(0); v < int32(n); v++ {
		has[v] = key(v) == lo
		if has[v] && payload != nil {
			msg[v] = payload(v)
		} else {
			msg[v] = flagMsg
		}
	}
	_, m := convergecast(net, tr, has, msg)
	broadcast(net, tr, m, has, msg)
	return lo, m, true
}

// FindMax is FindMin on reflected keys: it returns the maximum key (among
// keys in [0, maxKey]) and the holder's payload.
func FindMax(net lbnet.Net, tr Tree, maxKey int64, key func(int32) int64, payload func(int32) radio.Msg) (int64, radio.Msg, bool) {
	refl := func(v int32) int64 {
		k := key(v)
		if k < 0 || k > maxKey {
			return KeyInf
		}
		return maxKey - k
	}
	r, m, found := FindMin(net, tr, maxKey, refl, payload)
	if !found {
		return 0, radio.Msg{}, false
	}
	return maxKey - r, m, true
}
