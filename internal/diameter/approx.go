package diameter

import (
	"math"

	"repro/internal/core"
	"repro/internal/radio"
	"repro/internal/rng"
)

// Result carries a diameter approximation and the work behind it.
type Result struct {
	// Estimate is D′, the returned approximation.
	Estimate int32
	// BFSRuns counts the breadth-first searches performed.
	BFSRuns int
	// SampleSize is |S| (Theorem 5.4 only).
	SampleSize int
	// RSize is |R| (Theorem 5.4 only).
	RSize int
	// Leader is the BFS-tree root used for the sweeps.
	Leader int32
}

// TwoApprox is Theorem 5.3: elect a leader v₀, BFS from it, and Find Maximum
// over the labels. The estimate D′ = ecc(v₀) satisfies
// diam/2 <= D′ <= diam. maxD bounds the search radius (use n).
func TwoApprox(st *core.Stack, lead Leader, maxD int) Result {
	dist := st.BFS([]int32{lead.ID}, maxD)
	tr := NewTree(dist)
	ecc, _, okFound := FindMax(st.Base, tr, int64(maxD), func(v int32) int64 {
		if dist[v] < 0 {
			return KeyInf
		}
		return int64(dist[v])
	}, nil)
	if !okFound {
		ecc = 0
	}
	return Result{Estimate: int32(ecc), BFSRuns: 1, Leader: lead.ID}
}

// ThreeHalvesApprox is Theorem 5.4, after [19, 38]: sample S with
// probability log(n)/√n, BFS from every s ∈ S, let v* maximize the distance
// to S, BFS from v*, take R = the √n vertices closest to v*, BFS from each,
// and return the largest BFS label seen. The estimate satisfies
// ⌊2·diam/3⌋ <= D′ <= diam. It uses O~(√n) Find Minimum / Find Maximum
// calls and BFS runs, for n^(1/2+o(1)) energy per vertex.
func ThreeHalvesApprox(st *core.Stack, lead Leader, maxD int, seed uint64) Result {
	base := st.Base
	n := base.N()
	res := Result{Leader: lead.ID}

	// Backbone BFS tree for all sweeps.
	distL := st.BFS([]int32{lead.ID}, maxD)
	res.BFSRuns++
	tr := NewTree(distL)
	best := int64(0)
	track := func(dist []int32) {
		ecc, _, found := FindMax(base, tr, int64(maxD), func(v int32) int64 {
			if dist[v] < 0 {
				return KeyInf
			}
			return int64(dist[v])
		}, nil)
		if found && ecc > best {
			best = ecc
		}
	}
	track(distL)

	// Sample S: private coins with p = ln(n)/√n.
	p := math.Log(float64(n)+1) / math.Sqrt(float64(n))
	inS := make([]bool, n)
	for v := 0; v < n; v++ {
		inS[v] = rng.New(rng.Derive(seed, uint64(v), 0x5a111)).Bernoulli(p)
	}
	// Enumerate S by repeated Find Minimum over IDs, then BFS from each
	// member; every vertex tracks its distance to the nearest member.
	done := make([]bool, n)
	minToS := make([]int32, n)
	for v := range minToS {
		minToS[v] = int32(maxD + 1)
	}
	for st.Hooks.Err() == nil {
		id, _, found := FindMin(base, tr, int64(n), func(v int32) int64 {
			if inS[v] && !done[v] {
				return int64(v)
			}
			return KeyInf
		}, nil)
		if !found {
			break
		}
		s := int32(id)
		done[s] = true
		res.SampleSize++
		dist := st.BFS([]int32{s}, maxD)
		res.BFSRuns++
		track(dist)
		for v := 0; v < n; v++ {
			if dist[v] >= 0 && dist[v] < minToS[v] {
				minToS[v] = dist[v]
			}
		}
	}

	// v* maximizes the distance to S (ties by vertex ID).
	_, m, found := FindMax(base, tr, int64(maxD+2)*int64(n), func(v int32) int64 {
		return int64(minToS[v])*int64(n) + int64(v)
	}, func(v int32) radio.Msg {
		return radio.Msg{A: uint64(v)}
	})
	if !found {
		res.Estimate = int32(best)
		return res
	}
	vStar := int32(m.A)
	distStar := st.BFS([]int32{vStar}, maxD)
	res.BFSRuns++
	track(distStar)

	// R: the √n vertices closest to v*, by repeated Find Minimum on
	// (distance, ID).
	rSize := int(math.Ceil(math.Sqrt(float64(n))))
	for v := range done {
		done[v] = false
	}
	for picked := 0; picked < rSize && st.Hooks.Err() == nil; picked++ {
		_, m, found := FindMin(base, tr, int64(maxD+2)*int64(n), func(v int32) int64 {
			if done[v] || distStar[v] < 0 {
				return KeyInf
			}
			return int64(distStar[v])*int64(n) + int64(v)
		}, func(v int32) radio.Msg {
			return radio.Msg{A: uint64(v)}
		})
		if !found {
			break
		}
		r := int32(m.A)
		done[r] = true
		res.RSize++
		dist := st.BFS([]int32{r}, maxD)
		res.BFSRuns++
		track(dist)
	}
	res.Estimate = int32(best)
	return res
}
