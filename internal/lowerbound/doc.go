// Package lowerbound builds the executable content of the paper's §5
// hardness results. Lower bounds cannot be "run", but their witness objects
// and counting identities can be checked mechanically:
//
//   - Theorem 5.1 (distinguishing K_n from K_n−e costs Ω(n) energy): the
//     good-timestep accounting |X_good| <= 2·(total energy) is verified on
//     real engine transcripts, and the success probability of natural
//     budgeted probing protocols is measured as a function of their energy,
//     exhibiting the linear energy/success trade-off behind the bound.
//
//   - Theorem 5.2 ((3/2−ε)-approximation is hard even on sparse graphs):
//     the set-disjointness graph G(S_A, S_B) is constructed, its
//     diameter-2 ⟺ disjoint property and O(log n) arboricity are verified,
//     and the two-party communication accounting of the reduction (bits =
//     Σ_τ |Z(τ)|·O(log k)) is computed for protocol transcripts.
//
// Experiment E10 samples the hidden missing edge and the probes' coins from
// per-trial seeds (scenarios/e10_lowerbound.json), so the measured
// energy/success curves are reproducible like every other table; the
// constructions themselves are deterministic in their inputs.
package lowerbound
