package lowerbound

import (
	"repro/internal/graph"
	"repro/internal/radio"
	"repro/internal/rng"
)

// GoodPairStats is the Theorem 5.1 accounting for one protocol transcript.
type GoodPairStats struct {
	// GoodPairs is |X_good|: unordered pairs {u, v} for which some timestep
	// was good (1 or 2 transmitters, one of the pair transmitting and the
	// other listening).
	GoodPairs int
	// TotalEnergy is the aggregate energy of the transcript.
	TotalEnergy int64
	// Rounds is the transcript length.
	Rounds int
}

// BoundHolds reports the proof's identity |X_good| <= 2·TotalEnergy.
func (s GoodPairStats) BoundHolds() bool {
	return int64(s.GoodPairs) <= 2*s.TotalEnergy
}

// Recorder accumulates the good-pair accounting while a protocol runs.
// Feed it every round's transmitter and listener sets.
type Recorder struct {
	n     int
	good  map[int64]struct{}
	stats GoodPairStats
}

// NewRecorder returns a Recorder for an n-vertex network.
func NewRecorder(n int) *Recorder {
	return &Recorder{n: n, good: make(map[int64]struct{})}
}

func (r *Recorder) pairKey(u, v int32) int64 {
	if u > v {
		u, v = v, u
	}
	return int64(u)*int64(r.n) + int64(v)
}

// Observe records one timestep.
func (r *Recorder) Observe(tx []int32, listeners []int32) {
	r.stats.Rounds++
	r.stats.TotalEnergy += int64(len(tx)) + int64(len(listeners))
	if len(tx) == 0 || len(tx) > 2 {
		return // not good for any pair
	}
	for _, t := range tx {
		for _, l := range listeners {
			if t != l {
				r.good[r.pairKey(t, l)] = struct{}{}
			}
		}
	}
}

// Stats returns the accounting so far.
func (r *Recorder) Stats() GoodPairStats {
	s := r.stats
	s.GoodPairs = len(r.good)
	return s
}

// ProbeResult is the outcome of a distinguishing protocol run.
type ProbeResult struct {
	// Detected reports whether some vertex observed evidence of the missing
	// edge (silence in a slot where its partner transmitted alone).
	Detected bool
	// Stats is the good-pair accounting of the run.
	Stats GoodPairStats
	// MaxEnergy is the per-vertex energy cost of the protocol.
	MaxEnergy int64
}

// RoundRobinProbe is the natural Θ(n)-energy protocol that distinguishes
// K_n from K_n−e deterministically: in slot t, vertex t announces itself and
// everyone else listens. On K_n every listener hears every slot; on K_n−e
// the endpoints of e observe silence in each other's slots.
func RoundRobinProbe(g *graph.Graph) ProbeResult {
	n := g.N()
	eng := radio.NewEngine(g)
	rec := NewRecorder(n)
	listeners := make([]int32, 0, n-1)
	out := make([]radio.RX, n-1)
	detected := false
	for t := int32(0); t < int32(n); t++ {
		listeners = listeners[:0]
		for v := int32(0); v < int32(n); v++ {
			if v != t {
				listeners = append(listeners, v)
			}
		}
		tx := []radio.TX{{ID: t, Msg: radio.Msg{A: uint64(t)}}}
		eng.Step(tx, listeners, out[:len(listeners)])
		rec.Observe([]int32{t}, listeners)
		for _, rx := range out[:len(listeners)] {
			if !rx.OK {
				detected = true // a clique listener must hear the lone transmitter
			}
		}
	}
	return ProbeResult{Detected: detected, Stats: rec.Stats(), MaxEnergy: eng.MaxEnergy()}
}

// BudgetedProbe runs the same round-robin schedule but gives every vertex a
// listening budget of only `budget` slots, sampled privately at random. On
// K_n−e the missing edge is detected only if an endpoint happens to sample
// its partner's slot, so the success probability scales like
// 1−(1−budget/n)² ≈ 2·budget/n — the energy/success trade-off of
// Theorem 5.1.
func BudgetedProbe(g *graph.Graph, budget int, seed uint64) ProbeResult {
	n := g.N()
	eng := radio.NewEngine(g)
	rec := NewRecorder(n)
	if budget > n-1 {
		budget = n - 1
	}
	// Each vertex samples `budget` distinct slots (not its own).
	listenAt := make([][]int32, n) // slot -> listeners
	for v := 0; v < n; v++ {
		r := rng.New(rng.Derive(seed, uint64(v), 0xb7d6e7))
		perm := r.Perm(n - 1)
		for i := 0; i < budget; i++ {
			slot := perm[i]
			if slot >= v {
				slot++ // skip own slot
			}
			listenAt[slot] = append(listenAt[slot], int32(v))
		}
	}
	detected := false
	var out []radio.RX
	for t := int32(0); t < int32(n); t++ {
		listeners := listenAt[t]
		if cap(out) < len(listeners) {
			out = make([]radio.RX, len(listeners))
		}
		tx := []radio.TX{{ID: t, Msg: radio.Msg{A: uint64(t)}}}
		eng.Step(tx, listeners, out[:len(listeners)])
		rec.Observe([]int32{t}, listeners)
		for _, rx := range out[:len(listeners)] {
			if !rx.OK {
				detected = true
			}
		}
	}
	return ProbeResult{Detected: detected, Stats: rec.Stats(), MaxEnergy: eng.MaxEnergy()}
}

// DisjointnessGraph is the Theorem 5.2 lower-bound construction for an
// instance (S_A, S_B) of set-disjointness over {0, ..., 2^ℓ - 1}.
type DisjointnessGraph struct {
	G *graph.Graph
	// Index layout.
	VA, VB, VC, VD []int32
	UStar, VStar   int32
	// Ell is ℓ = log₂(k), the bit width.
	Ell int
}

// BuildDisjointness constructs G(S_A, S_B): u_i connects to w_j for
// j ∈ Ones(a_i) and x_j for j ∈ Zeros(a_i); v_i symmetric with roles of
// ones/zeros swapped; u* spans V_A ∪ V_C ∪ V_D and v* spans V_B ∪ V_C ∪ V_D.
// diam(G) = 2 iff S_A ∩ S_B = ∅, and 3 otherwise.
func BuildDisjointness(sa, sb []uint64, ell int) *DisjointnessGraph {
	alpha, beta := len(sa), len(sb)
	n := alpha + beta + 2*ell + 2
	b := graph.NewBuilder(n)
	d := &DisjointnessGraph{Ell: ell}
	next := int32(0)
	take := func(k int) []int32 {
		out := make([]int32, k)
		for i := range out {
			out[i] = next
			next++
		}
		return out
	}
	d.VA, d.VB, d.VC, d.VD = take(alpha), take(beta), take(ell), take(ell)
	d.UStar = next
	d.VStar = next + 1

	for i, a := range sa {
		for j := 0; j < ell; j++ {
			if a&(1<<j) != 0 {
				b.AddEdge(d.VA[i], d.VC[j])
			} else {
				b.AddEdge(d.VA[i], d.VD[j])
			}
		}
	}
	for i, bv := range sb {
		for j := 0; j < ell; j++ {
			if bv&(1<<j) == 0 {
				b.AddEdge(d.VB[i], d.VC[j])
			} else {
				b.AddEdge(d.VB[i], d.VD[j])
			}
		}
	}
	for _, u := range d.VA {
		b.AddEdge(d.UStar, u)
	}
	for _, v := range d.VB {
		b.AddEdge(d.VStar, v)
	}
	for j := 0; j < ell; j++ {
		b.AddEdge(d.UStar, d.VC[j])
		b.AddEdge(d.UStar, d.VD[j])
		b.AddEdge(d.VStar, d.VC[j])
		b.AddEdge(d.VStar, d.VD[j])
	}
	d.G = b.Graph()
	return d
}

// Disjoint reports whether two sets (as sorted-or-not slices) intersect.
func Disjoint(sa, sb []uint64) bool {
	seen := make(map[uint64]struct{}, len(sa))
	for _, a := range sa {
		seen[a] = struct{}{}
	}
	for _, b := range sb {
		if _, hit := seen[b]; hit {
			return false
		}
	}
	return true
}

// ReductionBits accounts the two-party simulation cost of a transcript in
// the modified model M′: each round costs O(|Z(τ)|·log k) bits, where Z(τ)
// is the set of listening vertices among V_C ∪ V_D ∪ {u*, v*}. The closure
// over rounds is Σ|Z(τ)|·(2·log k + 4) bits (each player sends one of
// {"0", ">=2", (id, msg)} per listener).
func (d *DisjointnessGraph) ReductionBits(listenersPerRound [][]int32) int64 {
	special := make(map[int32]struct{}, 2*d.Ell+2)
	for _, w := range d.VC {
		special[w] = struct{}{}
	}
	for _, x := range d.VD {
		special[x] = struct{}{}
	}
	special[d.UStar] = struct{}{}
	special[d.VStar] = struct{}{}
	perListener := int64(2*d.Ell + 4)
	var bits int64
	for _, ls := range listenersPerRound {
		for _, l := range ls {
			if _, hit := special[l]; hit {
				bits += perListener
			}
		}
	}
	return bits
}
