package lowerbound

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/rng"
)

func TestRoundRobinDistinguishes(t *testing.T) {
	n := 40
	onKn := RoundRobinProbe(graph.Complete(n))
	if onKn.Detected {
		t.Fatal("false positive on K_n")
	}
	onKnMinus := RoundRobinProbe(graph.CompleteMinusEdge(n, 3, 17))
	if !onKnMinus.Detected {
		t.Fatal("missed the removed edge on K_n - e")
	}
	// Θ(n) energy: every vertex listens in n-1 slots and transmits once.
	if onKn.MaxEnergy != int64(n) {
		t.Fatalf("round-robin max energy = %d, want %d", onKn.MaxEnergy, n)
	}
}

func TestGoodPairBoundOnTranscripts(t *testing.T) {
	// The |X_good| <= 2·energy identity must hold for every protocol.
	for _, res := range []ProbeResult{
		RoundRobinProbe(graph.Complete(30)),
		BudgetedProbe(graph.Complete(30), 5, 7),
		BudgetedProbe(graph.CompleteMinusEdge(30, 0, 1), 3, 9),
	} {
		if !res.Stats.BoundHolds() {
			t.Fatalf("good-pair bound violated: %d pairs vs energy %d",
				res.Stats.GoodPairs, res.Stats.TotalEnergy)
		}
	}
}

func TestRoundRobinCoversAllPairs(t *testing.T) {
	// With full budgets the round-robin transcript makes every pair good,
	// saturating the counting bound up to the factor 2.
	n := 25
	res := RoundRobinProbe(graph.Complete(n))
	want := n * (n - 1) / 2
	if res.Stats.GoodPairs != want {
		t.Fatalf("good pairs = %d, want all %d", res.Stats.GoodPairs, want)
	}
}

// TestBudgetedSuccessScaling measures the Theorem 5.1 trade-off: detection
// probability grows linearly with the per-vertex energy budget.
func TestBudgetedSuccessScaling(t *testing.T) {
	n := 48
	r := rng.New(11)
	success := func(budget int) float64 {
		hits := 0
		const trials = 60
		for trial := 0; trial < trials; trial++ {
			u := int32(r.Intn(n))
			v := int32(r.Intn(n))
			for v == u {
				v = int32(r.Intn(n))
			}
			res := BudgetedProbe(graph.CompleteMinusEdge(n, u, v), budget, rng.Derive(13, uint64(trial), uint64(budget)))
			if res.Detected {
				hits++
			}
		}
		return float64(hits) / trials
	}
	low := success(2)
	high := success(24)
	if high <= low {
		t.Fatalf("success did not grow with budget: %.2f -> %.2f", low, high)
	}
	// budget 24 of 47 slots: expected ~1-(1-24/47)^2 ≈ 0.76.
	if high < 0.5 {
		t.Fatalf("high-budget success %.2f too low", high)
	}
	// budget 2 of 47: expected ~2*2/47 ≈ 0.085.
	if low > 0.35 {
		t.Fatalf("low-budget success %.2f too high", low)
	}
}

func TestBudgetedProbeNeverFalsePositive(t *testing.T) {
	for _, budget := range []int{1, 5, 20} {
		res := BudgetedProbe(graph.Complete(32), budget, uint64(budget))
		if res.Detected {
			t.Fatalf("budget %d: false positive on K_n", budget)
		}
		if res.MaxEnergy > int64(budget)+1 {
			t.Fatalf("budget %d: max energy %d exceeds budget+1", budget, res.MaxEnergy)
		}
	}
}

func TestDisjointnessDiameterExhaustive(t *testing.T) {
	// All non-empty subsets of {0..7} (ℓ = 3): diam = 2 iff disjoint else 3.
	const ell = 3
	for maskA := uint(1); maskA < 256; maskA += 17 { // stride to keep runtime sane
		for maskB := uint(1); maskB < 256; maskB += 13 {
			var sa, sb []uint64
			for b := uint(0); b < 8; b++ {
				if maskA&(1<<b) != 0 {
					sa = append(sa, uint64(b))
				}
				if maskB&(1<<b) != 0 {
					sb = append(sb, uint64(b))
				}
			}
			d := BuildDisjointness(sa, sb, ell)
			diam := graph.Diameter(d.G)
			want := int32(3)
			if Disjoint(sa, sb) {
				want = 2
			}
			if diam != want {
				t.Fatalf("S_A=%v S_B=%v: diam = %d, want %d", sa, sb, diam, want)
			}
		}
	}
}

func TestDisjointnessDiameterRandomLarge(t *testing.T) {
	r := rng.New(17)
	const ell = 7 // universe {0..127}
	for trial := 0; trial < 20; trial++ {
		var sa, sb []uint64
		for x := uint64(0); x < 128; x++ {
			if r.Bernoulli(0.3) {
				sa = append(sa, x)
			}
			if r.Bernoulli(0.3) {
				sb = append(sb, x)
			}
		}
		if len(sa) == 0 || len(sb) == 0 {
			continue
		}
		d := BuildDisjointness(sa, sb, ell)
		diam := graph.Diameter(d.G)
		want := int32(3)
		if Disjoint(sa, sb) {
			want = 2
		}
		if diam != want {
			t.Fatalf("trial %d: diam = %d, want %d", trial, diam, want)
		}
	}
}

func TestDisjointnessSparsity(t *testing.T) {
	// Arboricity (bounded by degeneracy) must be O(log k) = O(ℓ).
	r := rng.New(23)
	const ell = 8
	var sa, sb []uint64
	for x := uint64(0); x < 256; x++ {
		if r.Bernoulli(0.5) {
			sa = append(sa, x)
		}
		if r.Bernoulli(0.5) {
			sb = append(sb, x)
		}
	}
	d := BuildDisjointness(sa, sb, ell)
	if deg := graph.Degeneracy(d.G); deg > 4*ell {
		t.Fatalf("degeneracy %d is not O(ℓ = %d)", deg, ell)
	}
	n := d.G.N()
	if n != len(sa)+len(sb)+2*ell+2 {
		t.Fatalf("vertex count %d wrong", n)
	}
}

func TestReductionBitsAccounting(t *testing.T) {
	d := BuildDisjointness([]uint64{1, 2}, []uint64{4, 5}, 3)
	// Two rounds: first only u* listens; second a V_A vertex (not charged)
	// and one V_C vertex.
	rounds := [][]int32{
		{d.UStar},
		{d.VA[0], d.VC[1]},
	}
	got := d.ReductionBits(rounds)
	want := int64(2) * (2*3 + 4) // two special listeners charged
	if got != want {
		t.Fatalf("reduction bits = %d, want %d", got, want)
	}
}

func TestDisjointEmptyIntersection(t *testing.T) {
	if !Disjoint([]uint64{1, 2}, []uint64{3, 4}) {
		t.Fatal("disjoint sets reported intersecting")
	}
	if Disjoint([]uint64{1, 2}, []uint64{2, 9}) {
		t.Fatal("intersecting sets reported disjoint")
	}
}
