package journal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// writeJournal builds a journal with the given header and records and
// returns its raw bytes plus the end offset of every record's frame.
func writeJournal(t *testing.T, dir string, header []byte, records [][]byte) (path string, raw []byte, frameEnds []int64) {
	t.Helper()
	path = filepath.Join(dir, "j")
	j, err := Create(path, header, Options{})
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	for _, rec := range records {
		if err := j.Append(rec); err != nil {
			t.Fatalf("Append: %v", err)
		}
		info, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		frameEnds = append(frameEnds, info.Size())
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	raw, err = os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return path, raw, frameEnds
}

func testRecords(n int) [][]byte {
	recs := make([][]byte, n)
	for i := range recs {
		recs[i] = []byte(fmt.Sprintf(`{"slot":%d,"metrics":{"rounds":%d.5}}`, i, i*7))
	}
	return recs
}

func recover2(t *testing.T, path string) (header []byte, recs [][]byte, err error) {
	t.Helper()
	var j *Journal
	j, err = Recover(path,
		func(h []byte) error { header = append([]byte(nil), h...); return nil },
		func(r []byte) error { recs = append(recs, append([]byte(nil), r...)); return nil },
		Options{})
	if j != nil {
		j.Close()
	}
	return header, recs, err
}

func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	header := []byte(`{"run":"alpha","trials":14}`)
	records := testRecords(9)
	path, _, _ := writeJournal(t, dir, header, records)

	gotHeader, gotRecs, err := recover2(t, path)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if !bytes.Equal(gotHeader, header) {
		t.Errorf("header = %q, want %q", gotHeader, header)
	}
	if len(gotRecs) != len(records) {
		t.Fatalf("replayed %d records, want %d", len(gotRecs), len(records))
	}
	for i := range records {
		if !bytes.Equal(gotRecs[i], records[i]) {
			t.Errorf("record %d = %q, want %q", i, gotRecs[i], records[i])
		}
	}
}

// TestTruncationAtEveryOffset is the torn-write property test: truncating
// the journal at every byte offset either recovers cleanly to a prefix of
// the record stream or reports the typed corruption error — never a panic,
// and never a recovery that silently drops a record whose frame was fully
// on disk.
func TestTruncationAtEveryOffset(t *testing.T) {
	dir := t.TempDir()
	header := []byte(`{"run":"torn","trials":6}`)
	records := testRecords(6)
	_, raw, frameEnds := writeJournal(t, dir, header, records)
	headerEnd := frameEnds[0] - (frameEnds[1] - frameEnds[0]) // records are equal-sized? not necessarily
	// Recompute the header frame end directly: first record frame starts
	// where the header frame ends, and frameEnds[0] is the END of record 0.
	// headerEnd = frameEnds[0] - len(frame(records[0])).
	headerEnd = frameEnds[0] - int64(frameOverhead+len(records[0]))

	for cut := int64(0); cut <= int64(len(raw)); cut++ {
		path := filepath.Join(dir, "cut")
		if err := os.WriteFile(path, raw[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		_, recs, err := recover2(t, path)
		if cut < headerEnd {
			// The header itself is torn: identity is unknowable, so the
			// typed error — never a guessed recovery — is the only outcome.
			var ce *CorruptError
			if !errors.As(err, &ce) {
				t.Fatalf("cut=%d (inside header): err = %v, want *CorruptError", cut, err)
			}
			continue
		}
		if err != nil {
			t.Fatalf("cut=%d: unexpected error %v", cut, err)
		}
		// Every record whose frame is fully within the cut must replay.
		wantN := 0
		for i, end := range frameEnds {
			if end <= cut {
				wantN = i + 1
			}
		}
		if len(recs) != wantN {
			t.Fatalf("cut=%d: replayed %d records, want %d", cut, len(recs), wantN)
		}
		for i := 0; i < wantN; i++ {
			if !bytes.Equal(recs[i], records[i]) {
				t.Fatalf("cut=%d: record %d = %q, want %q", cut, i, recs[i], records[i])
			}
		}
		// Recovery truncated the torn tail: the file must now recover
		// idempotently to the same prefix and accept appends.
		j, err := Recover(path, nil, nil, Options{})
		if err != nil {
			t.Fatalf("cut=%d: second recovery: %v", cut, err)
		}
		if err := j.Append([]byte("appended-after-recovery")); err != nil {
			t.Fatalf("cut=%d: append after recovery: %v", cut, err)
		}
		j.Close()
		_, recs2, err := recover2(t, path)
		if err != nil {
			t.Fatalf("cut=%d: recovery after append: %v", cut, err)
		}
		if len(recs2) != wantN+1 || !bytes.Equal(recs2[wantN], []byte("appended-after-recovery")) {
			t.Fatalf("cut=%d: post-append replay has %d records, want %d ending in the appended one", cut, len(recs2), wantN+1)
		}
	}
}

// TestInteriorCorruption flips one byte in every non-tail position of a
// record's payload and asserts the typed error: interior damage must never
// be healed by truncation, because that would drop the intact records
// following it.
func TestInteriorCorruption(t *testing.T) {
	dir := t.TempDir()
	records := testRecords(4)
	_, raw, frameEnds := writeJournal(t, dir, []byte("hdr"), records)

	// Corrupt one payload byte of record 1 (records 2 and 3 follow intact).
	start := frameEnds[0] + frameOverhead
	for _, pos := range []int64{start, start + 3, frameEnds[1] - 1} {
		mut := append([]byte(nil), raw...)
		mut[pos] ^= 0xff
		path := filepath.Join(dir, "mut")
		if err := os.WriteFile(path, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		_, _, err := recover2(t, path)
		var ce *CorruptError
		if !errors.As(err, &ce) {
			t.Fatalf("flip at %d: err = %v, want *CorruptError", pos, err)
		}
		if !IsCorrupt(err) {
			t.Errorf("IsCorrupt(%v) = false", err)
		}
	}
}

// TestTornFinalFrameCRC: a final frame of full length with a failing CRC is
// a torn tail (partially flushed pages), healed by truncation.
func TestTornFinalFrameCRC(t *testing.T) {
	dir := t.TempDir()
	records := testRecords(3)
	path, raw, _ := writeJournal(t, dir, []byte("hdr"), records)
	mut := append([]byte(nil), raw...)
	mut[len(mut)-1] ^= 0xff
	if err := os.WriteFile(path, mut, 0o644); err != nil {
		t.Fatal(err)
	}
	_, recs, err := recover2(t, path)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if len(recs) != 2 {
		t.Fatalf("replayed %d records, want 2 (torn final record truncated)", len(recs))
	}
}

// TestIdentityVetoLeavesFileUntouched: a check rejection must abort
// recovery before any truncation, preserving the evidence.
func TestIdentityVetoLeavesFileUntouched(t *testing.T) {
	dir := t.TempDir()
	path, raw, _ := writeJournal(t, dir, []byte(`{"run":"other"}`), testRecords(2))
	// Tear the tail too, so truncation would be observable if it happened.
	torn := append(raw, 0x01, 0x02)
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}
	wantErr := errors.New("identity mismatch")
	_, err := Recover(path, func(h []byte) error { return wantErr }, nil, Options{})
	if !errors.Is(err, wantErr) {
		t.Fatalf("Recover err = %v, want the check error", err)
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(after, torn) {
		t.Errorf("refused recovery modified the file (%d bytes → %d)", len(torn), len(after))
	}
}

func TestCreateRefusesExisting(t *testing.T) {
	dir := t.TempDir()
	path, _, _ := writeJournal(t, dir, []byte("hdr"), nil)
	if _, err := Create(path, []byte("hdr2"), Options{}); err == nil {
		t.Fatal("Create over an existing journal succeeded; want refusal")
	}
}

func TestOversizeRecordRefused(t *testing.T) {
	dir := t.TempDir()
	j, err := Create(filepath.Join(dir, "j"), []byte("hdr"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if err := j.Append(make([]byte, MaxRecord+1)); err == nil {
		t.Fatal("oversize Append succeeded; want refusal")
	}
}

// TestSyncPolicies exercises the three fsync modes; durability itself is
// not assertable in-process, so this pins that every mode keeps records
// readable and counts appends.
func TestSyncPolicies(t *testing.T) {
	for _, opts := range []Options{{SyncInterval: 0}, {SyncInterval: 50 * 1e6}, {SyncInterval: -1}} {
		dir := t.TempDir()
		path := filepath.Join(dir, "j")
		j, err := Create(path, []byte("hdr"), opts)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 5; i++ {
			if err := j.Append([]byte{byte(i)}); err != nil {
				t.Fatal(err)
			}
		}
		if got := j.Appended(); got != 5 {
			t.Errorf("Appended = %d, want 5", got)
		}
		if err := j.Close(); err != nil {
			t.Fatal(err)
		}
		_, recs, err := recover2(t, path)
		if err != nil || len(recs) != 5 {
			t.Fatalf("opts %+v: recovered %d records, err %v", opts, len(recs), err)
		}
	}
}

// TestEmptyAndGarbageFiles: a zero-byte file and pure garbage both fail
// with the typed error, never a panic.
func TestEmptyAndGarbageFiles(t *testing.T) {
	dir := t.TempDir()
	for i, content := range [][]byte{{}, {0x00}, []byte("not a journal at all"), {0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0, 'x'}} {
		path := filepath.Join(dir, fmt.Sprintf("g%d", i))
		if err := os.WriteFile(path, content, 0o644); err != nil {
			t.Fatal(err)
		}
		_, _, err := recover2(t, path)
		var ce *CorruptError
		if !errors.As(err, &ce) {
			t.Fatalf("case %d: err = %v, want *CorruptError", i, err)
		}
	}
}
