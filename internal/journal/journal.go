// Package journal is the durability layer behind crash recovery: an
// append-only record log whose readers survive the writer dying mid-write.
//
// Both control planes that can lose state to a crash sit on it — the
// distributed-sweep coordinator checkpoints acked trial results into one
// (internal/dist, `radiobfs run -dist -checkpoint`), and the serve daemon
// records accepted jobs and their state transitions in another
// (internal/serve). The package itself knows nothing about either: records
// are opaque byte payloads, and the first record of every file is a
// caller-supplied header that identifies what the journal belongs to, so a
// recovering process can refuse a journal written by a different run before
// replaying a single record.
//
// # Format
//
// A journal file is a sequence of frames. Each frame is
//
//	4 bytes  big-endian payload length n
//	4 bytes  big-endian IEEE CRC32 of the payload
//	n bytes  payload
//
// The first frame is the header; every later frame is one record, in append
// order. The CRC is what makes recovery honest: a process killed mid-append
// leaves a torn final frame — a short prefix, a short payload, or a full
// extent of partially-flushed garbage — and the checksum distinguishes "the
// tail of this file is an interrupted write" (expected after any crash;
// truncated away, never fatal) from "bytes in the middle of this file
// changed" (bit rot or foreign writes; a typed CorruptError, because
// silently dropping the records after the damage would un-complete work the
// caller already acknowledged).
//
// # Durability
//
// Append writes the frame straight to the file — no user-space buffering,
// so an appended record survives a process kill the moment the syscall
// returns — and batches fsyncs on a configurable interval (Options.
// SyncInterval) so sustained append streams pay one disk flush per interval
// rather than one per record. Only records appended before the last
// completed Sync are guaranteed to survive a machine-level crash; callers
// that need a hard durability point (a checkpoint boundary, a job accepted
// response) call Sync explicitly.
package journal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"time"
)

// MaxRecord bounds one record's payload. Journal records are small (one
// trial result, one job transition); a length prefix claiming more than
// this is damage, not data.
const MaxRecord = 16 << 20

// frameOverhead is the per-record framing cost: length prefix plus CRC.
const frameOverhead = 8

// CorruptError reports damage in the interior of a journal: a record whose
// bytes are all present but whose checksum (or framing) does not verify,
// with intact data following it. It is deliberately distinct from a torn
// tail — which Recover heals by truncation — because truncating past
// interior damage would silently drop every intact record after it.
type CorruptError struct {
	Path   string
	Offset int64  // file offset of the damaged frame
	Reason string // what failed to verify
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("journal: %s: corrupt record at byte %d: %s", e.Path, e.Offset, e.Reason)
}

// Options tunes a journal's durability policy.
type Options struct {
	// SyncInterval batches fsyncs: an Append flushes the file to disk only
	// when at least this much time has passed since the previous flush.
	// 0 syncs on every append (maximum durability); negative disables
	// automatic syncs entirely (Sync and Close still flush).
	SyncInterval time.Duration
}

// Journal is an open, append-ready record log. Not safe for concurrent use;
// both owners (the coordinator's event loop, the serve admission path)
// serialize access by construction.
type Journal struct {
	f        *os.File
	path     string
	opts     Options
	appended int
	lastSync time.Time
	synced   bool // no appends since the last sync
}

// Create creates a fresh journal at path, stamped with header as its first
// frame and synced to disk before returning, so the journal's identity is
// durable before any record is. It fails if the file already exists —
// distinguishing "new run" from "resume" is the caller's decision, made
// with os.Stat, not something to paper over here.
func Create(path string, header []byte, opts Options) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: create: %w", err)
	}
	j := &Journal{f: f, path: path, opts: opts, lastSync: time.Now(), synced: true}
	if err := j.writeFrame(header); err != nil {
		f.Close()
		os.Remove(path)
		return nil, err
	}
	if err := j.Sync(); err != nil {
		f.Close()
		os.Remove(path)
		return nil, err
	}
	return j, nil
}

// Recover opens an existing journal for appending, replaying what survived.
//
// The header frame is read first and passed to check before anything else
// happens — identity verification must veto a foreign journal while the
// file is still untouched, so a refused recovery leaves the evidence
// intact. Then every intact record is streamed to replay in append order.
// A torn tail — any malformed frame whose claimed extent reaches the end of
// the file, including a trailing frame with a failing CRC — is the expected
// residue of a crash mid-append: it is truncated away and recovery
// succeeds with the intact prefix. Malformed frames with intact data beyond
// them are interior damage and surface as a *CorruptError instead.
//
// check and replay may be nil. Errors returned by either abort recovery
// verbatim (the file is left as found, apart from tail truncation already
// performed before replay began — truncation happens only after the full
// scan succeeds, so a replay error never costs data).
func Recover(path string, check func(header []byte) error, replay func(rec []byte) error, opts Options) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: recover: %w", err)
	}
	j := &Journal{f: f, path: path, opts: opts, lastSync: time.Now(), synced: true}

	info, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("journal: recover: %w", err)
	}
	size := info.Size()

	// Scan pass: establish the intact extent (and collect records) before
	// mutating anything, so identity refusal and interior corruption leave
	// the file byte-for-byte as found.
	header, records, goodEnd, err := scan(f, j.path, size)
	if err != nil {
		f.Close()
		return nil, err
	}
	if check != nil {
		if err := check(header); err != nil {
			f.Close()
			return nil, err
		}
	}
	if replay != nil {
		for _, rec := range records {
			if err := replay(rec); err != nil {
				f.Close()
				return nil, err
			}
		}
	}
	if goodEnd < size {
		if err := f.Truncate(goodEnd); err != nil {
			f.Close()
			return nil, fmt.Errorf("journal: truncating torn tail: %w", err)
		}
	}
	if _, err := f.Seek(goodEnd, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("journal: recover: %w", err)
	}
	j.appended = len(records)
	return j, nil
}

// scan walks the frames of an open journal file and returns the header, the
// intact records, and the byte offset where intact data ends. Damage at the
// tail ends the scan silently; damage with intact-looking data after it is
// a *CorruptError; a file whose header frame itself is damaged has no
// usable identity and is corrupt however the damage happened.
func scan(f *os.File, path string, size int64) (header []byte, records [][]byte, goodEnd int64, err error) {
	r := io.NewSectionReader(f, 0, size)
	var offset int64
	var prefix [frameOverhead]byte
	first := true
	for {
		if _, err := io.ReadFull(r, prefix[:]); err != nil {
			if err == io.EOF && !first {
				return header, records, offset, nil // clean end at a frame boundary
			}
			if first {
				// No intact header: an empty or prefix-torn file cannot prove
				// what run it belongs to, so recovery must not guess.
				return nil, nil, 0, &CorruptError{Path: path, Offset: 0, Reason: "header frame missing or torn — this is not a recoverable journal"}
			}
			return header, records, offset, nil // torn prefix at the tail
		}
		n := int64(binary.BigEndian.Uint32(prefix[0:4]))
		want := binary.BigEndian.Uint32(prefix[4:8])
		frameEnd := offset + frameOverhead + n
		switch {
		case n > MaxRecord:
			// A garbage length. If its claimed extent stays inside the file,
			// real data follows the damage; otherwise it is a torn tail.
			if frameEnd <= size {
				return nil, nil, 0, &CorruptError{Path: path, Offset: offset, Reason: fmt.Sprintf("record claims %d bytes (limit %d)", n, MaxRecord)}
			}
			if first {
				return nil, nil, 0, &CorruptError{Path: path, Offset: 0, Reason: "header frame missing or torn — this is not a recoverable journal"}
			}
			return header, records, offset, nil
		case frameEnd > size:
			// Torn payload at the tail.
			if first {
				return nil, nil, 0, &CorruptError{Path: path, Offset: 0, Reason: "header frame missing or torn — this is not a recoverable journal"}
			}
			return header, records, offset, nil
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(r, payload); err != nil {
			return nil, nil, 0, fmt.Errorf("journal: %s: read: %w", path, err)
		}
		if got := crc32.ChecksumIEEE(payload); got != want {
			// A full-extent frame with a failing checksum: interior damage if
			// anything follows, a partially-flushed torn tail if it is last.
			if frameEnd < size {
				return nil, nil, 0, &CorruptError{Path: path, Offset: offset, Reason: fmt.Sprintf("CRC mismatch (stored %08x, computed %08x)", want, got)}
			}
			if first {
				return nil, nil, 0, &CorruptError{Path: path, Offset: 0, Reason: "header frame missing or torn — this is not a recoverable journal"}
			}
			return header, records, offset, nil
		}
		if first {
			header = payload
			first = false
		} else {
			records = append(records, payload)
		}
		offset = frameEnd
	}
}

// Append writes one record frame. The write goes straight to the file (a
// process kill after Append returns cannot lose the record), and the fsync
// policy decides whether this append also flushes to disk.
func (j *Journal) Append(rec []byte) error {
	if err := j.writeFrame(rec); err != nil {
		return err
	}
	j.appended++
	if j.opts.SyncInterval == 0 || (j.opts.SyncInterval > 0 && time.Since(j.lastSync) >= j.opts.SyncInterval) {
		return j.Sync()
	}
	return nil
}

// writeFrame assembles and writes one frame in a single syscall, so a
// concurrent kill can tear a frame but never interleave two.
func (j *Journal) writeFrame(payload []byte) error {
	if len(payload) > MaxRecord {
		return fmt.Errorf("journal: record of %d bytes exceeds the %d-byte limit", len(payload), MaxRecord)
	}
	frame := make([]byte, frameOverhead+len(payload))
	binary.BigEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
	copy(frame[frameOverhead:], payload)
	if _, err := j.f.Write(frame); err != nil {
		return fmt.Errorf("journal: append: %w", err)
	}
	j.synced = false
	return nil
}

// Sync flushes appended records to disk. Records appended before a
// completed Sync survive machine crashes, not just process kills.
func (j *Journal) Sync() error {
	if j.synced {
		j.lastSync = time.Now()
		return nil
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("journal: sync: %w", err)
	}
	j.lastSync = time.Now()
	j.synced = true
	return nil
}

// Appended returns the record count: replayed records plus records appended
// through this handle (the header does not count).
func (j *Journal) Appended() int { return j.appended }

// Path returns the journal's file path.
func (j *Journal) Path() string { return j.path }

// Close syncs and closes the journal.
func (j *Journal) Close() error {
	if j.f == nil {
		return nil
	}
	serr := j.Sync()
	cerr := j.f.Close()
	j.f = nil
	if serr != nil {
		return serr
	}
	return cerr
}

// IsCorrupt reports whether err is (or wraps) a journal corruption error.
func IsCorrupt(err error) bool {
	var ce *CorruptError
	return errors.As(err, &ce)
}
