package vnet

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/graph"
	"repro/internal/lbnet"
	"repro/internal/radio"
)

// buildVNet assembles a small grid-backed virtual network for the
// allocation regression tests.
func buildAllocVNet(t testing.TB) (*VNet, *graph.Graph) {
	t.Helper()
	g, ok := graph.Named("grid", 144, 1)
	if !ok {
		t.Fatal("grid family missing")
	}
	base := lbnet.NewUnitNet(g, 0, 1)
	cl := cluster.Build(base, cluster.DefaultConfig(g.N(), 4), 1)
	return New(base, cl), g
}

// TestDowncastUpcastZeroAllocs asserts the steady-state cast paths —
// Downcast and Upcast over VNet-owned scratch — allocate nothing once the
// scratch slices have reached their working size.
func TestDowncastUpcastZeroAllocs(t *testing.T) {
	vn, g := buildAllocVNet(t)
	nc := vn.N()
	part := make([]bool, nc)
	has := make([]bool, nc)
	msgs := make([]radio.Msg, nc)
	for c := 0; c < nc; c++ {
		part[c], has[c] = true, true
		msgs[c] = radio.Msg{Kind: MsgCast, A: uint64(c)}
	}
	memberGot := make([]radio.Msg, g.N())
	memberOk := make([]bool, g.N())
	clusterGot := make([]radio.Msg, nc)
	clusterOk := make([]bool, nc)

	// Warm every scratch slice to its working size.
	vn.Downcast(part, has, msgs, memberGot, memberOk)
	vn.Upcast(part, memberOk, memberGot, clusterGot, clusterOk)

	if allocs := testing.AllocsPerRun(20, func() {
		vn.Downcast(part, has, msgs, memberGot, memberOk)
	}); allocs != 0 {
		t.Fatalf("Downcast allocates %v per call in steady state, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(20, func() {
		vn.Upcast(part, memberOk, memberGot, clusterGot, clusterOk)
	}); allocs != 0 {
		t.Fatalf("Upcast allocates %v per call in steady state, want 0", allocs)
	}
}

// TestVirtualLocalBroadcastZeroAllocs asserts the simulated Local-Broadcast
// (Lemma 3.2: three casts plus one parent LB) allocates nothing in steady
// state after the first call has sized the scratch.
func TestVirtualLocalBroadcastZeroAllocs(t *testing.T) {
	vn, _ := buildAllocVNet(t)
	if vn.N() < 2 {
		t.Skip("degenerate clustering")
	}
	senders := []radio.TX{{ID: 0, Msg: radio.Msg{Kind: MsgCast, A: 7}}}
	receivers := []int32{1}
	got := make([]radio.Msg, 1)
	ok := make([]bool, 1)
	vn.LocalBroadcast(senders, receivers, got, ok) // warm scratch
	if allocs := testing.AllocsPerRun(20, func() {
		vn.LocalBroadcast(senders, receivers, got, ok)
	}); allocs != 0 {
		t.Fatalf("virtual LocalBroadcast allocates %v per call in steady state, want 0", allocs)
	}
}
