package vnet

import (
	"testing"
	"testing/quick"

	"repro/internal/cluster"
	"repro/internal/graph"
	"repro/internal/lbnet"
	"repro/internal/radio"
	"repro/internal/rng"
)

// TestPropertyDowncastPartialParticipation fuzzes the participating cluster
// set: exactly the members of participating clusters (with a message) must
// receive, and no one else.
func TestPropertyDowncastPartialParticipation(t *testing.T) {
	check := func(seed uint64, mask uint16) bool {
		r := rng.New(seed)
		g := graph.ConnectedGNP(80, 0.05, r)
		base := lbnet.NewUnitNet(g, 0, seed)
		cl := cluster.Build(base, cluster.DefaultConfig(80, 4), seed)
		vn := New(base, cl)
		nc := vn.N()
		part := make([]bool, nc)
		has := make([]bool, nc)
		msgs := make([]radio.Msg, nc)
		for c := 0; c < nc; c++ {
			part[c] = mask&(1<<(c%16)) != 0
			has[c] = part[c]
			msgs[c] = radio.Msg{A: uint64(c) + 1}
		}
		memberGot := make([]radio.Msg, 80)
		memberOk := make([]bool, 80)
		vn.Downcast(part, has, msgs, memberGot, memberOk)
		for u := 0; u < 80; u++ {
			c := cl.ClusterOf[u]
			if part[c] {
				if !memberOk[u] || memberGot[u].A != uint64(c)+1 {
					return false
				}
			} else if memberOk[u] {
				return false
			}
		}
		return vn.CastFailures() == 0
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyUpcastSelectsAMember fuzzes which members hold messages: a
// participating cluster's center must receive one of its own members'
// messages iff at least one member holds one.
func TestPropertyUpcastSelectsAMember(t *testing.T) {
	check := func(seed uint64, holders uint32) bool {
		r := rng.New(seed)
		g := graph.ConnectedGNP(60, 0.06, r)
		base := lbnet.NewUnitNet(g, 0, seed)
		cl := cluster.Build(base, cluster.DefaultConfig(60, 4), seed)
		vn := New(base, cl)
		nc := vn.N()
		part := make([]bool, nc)
		for c := range part {
			part[c] = true
		}
		memberHas := make([]bool, 60)
		memberMsg := make([]radio.Msg, 60)
		hasAny := make([]bool, nc)
		for u := 0; u < 60; u++ {
			if holders&(1<<(u%32)) != 0 {
				memberHas[u] = true
				memberMsg[u] = radio.Msg{A: uint64(u) + 1}
				hasAny[cl.ClusterOf[u]] = true
			}
		}
		clusterGot := make([]radio.Msg, nc)
		clusterOk := make([]bool, nc)
		vn.Upcast(part, memberHas, memberMsg, clusterGot, clusterOk)
		for c := 0; c < nc; c++ {
			if clusterOk[c] != hasAny[c] {
				return false
			}
			if clusterOk[c] {
				src := int32(clusterGot[c].A - 1)
				if cl.ClusterOf[src] != int32(c) || !memberHas[src] {
					return false
				}
			}
		}
		return vn.CastFailures() == 0
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyVirtualLBAdjacency fuzzes sender/receiver cluster splits: a
// receiving cluster hears iff it is G*-adjacent to some sending cluster.
func TestPropertyVirtualLBAdjacency(t *testing.T) {
	check := func(seed uint64, mask uint16) bool {
		r := rng.New(seed)
		g := graph.ConnectedGNP(70, 0.05, r)
		base := lbnet.NewUnitNet(g, 0, seed)
		cl := cluster.Build(base, cluster.DefaultConfig(70, 4), seed)
		vn := New(base, cl)
		nc := vn.N()
		if nc < 2 {
			return true
		}
		cg := vn.Graph()
		var senders []radio.TX
		var receivers []int32
		sending := make([]bool, nc)
		for c := int32(0); c < int32(nc); c++ {
			if mask&(1<<(int(c)%16)) != 0 {
				senders = append(senders, radio.TX{ID: c, Msg: radio.Msg{A: uint64(c) + 1}})
				sending[c] = true
			} else {
				receivers = append(receivers, c)
			}
		}
		if len(senders) == 0 || len(receivers) == 0 {
			return true
		}
		got := make([]radio.Msg, len(receivers))
		ok := make([]bool, len(receivers))
		vn.LocalBroadcast(senders, receivers, got, ok)
		for i, c := range receivers {
			adj := false
			for _, nb := range cg.Neighbors(c) {
				if sending[nb] {
					adj = true
					break
				}
			}
			if adj != ok[i] {
				return false
			}
			if ok[i] && !sending[int32(got[i].A-1)] {
				return false // payload must come from a sending cluster
			}
		}
		return vn.CastFailures() == 0
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
