package vnet

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/decay"
	"repro/internal/graph"
	"repro/internal/lbnet"
	"repro/internal/radio"
	"repro/internal/rng"
)

// buildVNet clusters g on a UnitNet and returns the virtual level.
func buildVNet(t *testing.T, g *graph.Graph, invBeta int, seed uint64) (*VNet, lbnet.Net) {
	t.Helper()
	base := lbnet.NewUnitNet(g, 0, seed)
	cfg := cluster.DefaultConfig(g.N(), invBeta)
	cl := cluster.Build(base, cfg, seed)
	return New(base, cl), base
}

func TestDowncastReachesAllMembers(t *testing.T) {
	r := rng.New(3)
	for trial := 0; trial < 5; trial++ {
		g := graph.ConnectedGNP(120, 0.04, r)
		vn, _ := buildVNet(t, g, 4, uint64(trial+1))
		nc := vn.N()
		part := make([]bool, nc)
		has := make([]bool, nc)
		msgs := make([]radio.Msg, nc)
		for c := 0; c < nc; c++ {
			part[c], has[c] = true, true
			msgs[c] = radio.Msg{Kind: 5, A: uint64(c) + 100}
		}
		memberGot := make([]radio.Msg, g.N())
		memberOk := make([]bool, g.N())
		vn.Downcast(part, has, msgs, memberGot, memberOk)
		for u := 0; u < g.N(); u++ {
			c := vn.Clustering().ClusterOf[u]
			if !memberOk[u] || memberGot[u].A != uint64(c)+100 {
				t.Fatalf("trial %d: member %d of cluster %d missed downcast (ok=%v got=%+v)",
					trial, u, c, memberOk[u], memberGot[u])
			}
		}
		if vn.CastFailures() != 0 {
			t.Fatalf("cast failures: %d", vn.CastFailures())
		}
	}
}

func TestDowncastOnlyParticipants(t *testing.T) {
	g := graph.Grid(10, 10)
	vn, base := buildVNet(t, g, 4, 7)
	nc := vn.N()
	if nc < 2 {
		t.Skip("degenerate clustering")
	}
	part := make([]bool, nc)
	has := make([]bool, nc)
	msgs := make([]radio.Msg, nc)
	part[0], has[0] = true, true
	msgs[0] = radio.Msg{A: 42}
	memberGot := make([]radio.Msg, g.N())
	memberOk := make([]bool, g.N())
	energyBefore := make([]int64, g.N())
	for u := int32(0); u < int32(g.N()); u++ {
		energyBefore[u] = base.LBEnergy(u)
	}
	vn.Downcast(part, has, msgs, memberGot, memberOk)
	for u := int32(0); u < int32(g.N()); u++ {
		c := vn.Clustering().ClusterOf[u]
		if c == 0 {
			if !memberOk[u] || memberGot[u].A != 42 {
				t.Fatalf("cluster-0 member %d missed downcast", u)
			}
			continue
		}
		if memberOk[u] {
			t.Fatalf("non-participating member %d received a downcast", u)
		}
		if base.LBEnergy(u) != energyBefore[u] {
			t.Fatalf("non-participating member %d spent energy", u)
		}
	}
}

func TestUpcastDeliversToCenter(t *testing.T) {
	r := rng.New(11)
	g := graph.ConnectedGNP(120, 0.04, r)
	vn, _ := buildVNet(t, g, 4, 13)
	cl := vn.Clustering()
	nc := vn.N()
	part := make([]bool, nc)
	for c := range part {
		part[c] = true
	}
	// Every member holds a message naming its own vertex.
	memberHas := make([]bool, g.N())
	memberMsg := make([]radio.Msg, g.N())
	for u := 0; u < g.N(); u++ {
		memberHas[u] = true
		memberMsg[u] = radio.Msg{A: uint64(u) + 1}
	}
	clusterGot := make([]radio.Msg, nc)
	clusterOk := make([]bool, nc)
	vn.Upcast(part, memberHas, memberMsg, clusterGot, clusterOk)
	for c := 0; c < nc; c++ {
		if !clusterOk[c] {
			t.Fatalf("cluster %d center received nothing", c)
		}
		// The delivered message must come from a member of this cluster.
		src := int32(clusterGot[c].A - 1)
		if cl.ClusterOf[src] != int32(c) {
			t.Fatalf("cluster %d received message from foreign vertex %d", c, src)
		}
	}
	if vn.CastFailures() != 0 {
		t.Fatalf("cast failures: %d", vn.CastFailures())
	}
}

func TestUpcastSingleHolder(t *testing.T) {
	g := graph.Path(60)
	vn, _ := buildVNet(t, g, 4, 17)
	cl := vn.Clustering()
	nc := vn.N()
	// Pick the deepest member of the largest cluster as the lone holder.
	members := cl.Members()
	big, bigLen := 0, 0
	for c, mem := range members {
		if len(mem) > bigLen {
			big, bigLen = c, len(mem)
		}
	}
	var holder int32 = -1
	for _, u := range members[big] {
		if holder == -1 || cl.Layer[u] > cl.Layer[holder] {
			holder = u
		}
	}
	part := make([]bool, nc)
	part[big] = true
	memberHas := make([]bool, g.N())
	memberMsg := make([]radio.Msg, g.N())
	memberHas[holder] = true
	memberMsg[holder] = radio.Msg{A: 777}
	clusterGot := make([]radio.Msg, nc)
	clusterOk := make([]bool, nc)
	vn.Upcast(part, memberHas, memberMsg, clusterGot, clusterOk)
	if !clusterOk[big] || clusterGot[big].A != 777 {
		t.Fatalf("lone deep holder's message did not reach the center: ok=%v", clusterOk[big])
	}
}

func TestCastFixedDuration(t *testing.T) {
	g := graph.Grid(8, 8)
	vn, base := buildVNet(t, g, 4, 19)
	nc := vn.N()
	before := base.LBTime()
	vn.Downcast(make([]bool, nc), make([]bool, nc), make([]radio.Msg, nc),
		make([]radio.Msg, g.N()), make([]bool, g.N()))
	if got := base.LBTime() - before; got != vn.CastLBs() {
		t.Fatalf("empty downcast consumed %d parent LBs, want %d", got, vn.CastLBs())
	}
	// A fully-participating downcast must consume exactly the same time.
	part := make([]bool, nc)
	has := make([]bool, nc)
	for c := range part {
		part[c], has[c] = true, true
	}
	before = base.LBTime()
	vn.Downcast(part, has, make([]radio.Msg, nc), make([]radio.Msg, g.N()), make([]bool, g.N()))
	if got := base.LBTime() - before; got != vn.CastLBs() {
		t.Fatalf("full downcast consumed %d parent LBs, want %d", got, vn.CastLBs())
	}
}

func TestVirtualLocalBroadcastMatchesClusterGraph(t *testing.T) {
	r := rng.New(23)
	for trial := 0; trial < 5; trial++ {
		g := graph.ConnectedGNP(100, 0.05, r)
		vn, _ := buildVNet(t, g, 4, uint64(trial+40))
		cg := vn.Graph()
		nc := vn.N()
		if nc < 3 {
			continue
		}
		// Cluster 0 sends; everyone else receives.
		senders := []radio.TX{{ID: 0, Msg: radio.Msg{Kind: 3, A: 999}}}
		var receivers []int32
		for c := int32(1); c < int32(nc); c++ {
			receivers = append(receivers, c)
		}
		got := make([]radio.Msg, len(receivers))
		ok := make([]bool, len(receivers))
		vn.LocalBroadcast(senders, receivers, got, ok)
		for i, c := range receivers {
			adjacent := cg.HasEdge(0, c)
			if adjacent && !ok[i] {
				t.Fatalf("trial %d: cluster %d adjacent to sender heard nothing", trial, c)
			}
			if !adjacent && ok[i] {
				t.Fatalf("trial %d: cluster %d not adjacent to sender heard %+v", trial, c, got[i])
			}
			if ok[i] && got[i].A != 999 {
				t.Fatalf("trial %d: wrong payload %+v", trial, got[i])
			}
		}
		if vn.CastFailures() != 0 {
			t.Fatalf("trial %d: %d cast failures", trial, vn.CastFailures())
		}
	}
}

func TestVirtualLBTiming(t *testing.T) {
	g := graph.Grid(8, 8)
	vn, base := buildVNet(t, g, 4, 29)
	if vn.N() < 2 {
		t.Skip("degenerate clustering")
	}
	before := base.LBTime()
	got := make([]radio.Msg, 1)
	ok := make([]bool, 1)
	vn.LocalBroadcast([]radio.TX{{ID: 0, Msg: radio.Msg{A: 1}}}, []int32{1}, got, ok)
	if used := base.LBTime() - before; used != vn.VLBCost() {
		t.Fatalf("virtual LB consumed %d parent LB units, want %d", used, vn.VLBCost())
	}
	before = base.LBTime()
	vn.SkipLB(3)
	if used := base.LBTime() - before; used != 3*vn.VLBCost() {
		t.Fatalf("SkipLB(3) consumed %d parent LB units, want %d", used, 3*vn.VLBCost())
	}
}

// TestCastEnergyLemma31 is the energy half of Lemma 3.1: each vertex
// participates in O(|S_C|) = O(log n) parent Local-Broadcasts per cast.
func TestCastEnergyLemma31(t *testing.T) {
	r := rng.New(31)
	g := graph.ConnectedGNP(200, 0.03, r)
	base := lbnet.NewUnitNet(g, 0, 37)
	cfg := cluster.DefaultConfig(200, 4)
	cl := cluster.Build(base, cfg, 37)
	vn := New(base, cl)
	pre := make([]int64, g.N())
	for u := int32(0); u < int32(g.N()); u++ {
		pre[u] = base.LBEnergy(u)
	}
	nc := vn.N()
	part := make([]bool, nc)
	has := make([]bool, nc)
	msgs := make([]radio.Msg, nc)
	for c := range part {
		part[c], has[c] = true, true
	}
	vn.Downcast(part, has, msgs, make([]radio.Msg, g.N()), make([]bool, g.N()))
	// Per-vertex budget: one listen per own subset slot plus one send per
	// slot in the next stage — 2|S_C| + slack. |S_C| concentrates around
	// SubsetLen/C.
	budget := int64(4*cfg.SubsetLen/cfg.C + 16)
	for u := int32(0); u < int32(g.N()); u++ {
		if spent := base.LBEnergy(u) - pre[u]; spent > budget {
			t.Fatalf("vertex %d spent %d parent LBs in one downcast (budget %d)", u, spent, budget)
		}
	}
}

// TestTwoLevelStack builds a VNet on a VNet — the recursion of §4 — and
// checks that casts and virtual LBs still behave.
func TestTwoLevelStack(t *testing.T) {
	g := graph.Grid(16, 16)
	base := lbnet.NewUnitNet(g, 0, 41)
	cfg1 := cluster.DefaultConfig(256, 4)
	cl1 := cluster.Build(base, cfg1, 41)
	v1 := New(base, cl1)
	cfg2 := cluster.DefaultConfig(256, 4)
	cl2 := cluster.Build(v1, cfg2, 43)
	v2 := New(v1, cl2)

	if v2.GlobalN() != 256 {
		t.Fatalf("GlobalN through two levels = %d", v2.GlobalN())
	}
	if bad := cluster.IsPartition(v1.Graph(), cl2); bad != 0 {
		t.Fatalf("level-2 clustering invalid: %d violations", bad)
	}
	nc2 := v2.N()
	if nc2 < 2 {
		t.Skip("level-2 clustering degenerate")
	}
	// Virtual LB on the second level: cluster-graph semantics must hold.
	cg2 := v2.Graph()
	senders := []radio.TX{{ID: 0, Msg: radio.Msg{A: 123}}}
	var receivers []int32
	for c := int32(1); c < int32(nc2); c++ {
		receivers = append(receivers, c)
	}
	got := make([]radio.Msg, len(receivers))
	ok := make([]bool, len(receivers))
	v2.LocalBroadcast(senders, receivers, got, ok)
	for i, c := range receivers {
		if cg2.HasEdge(0, c) != ok[i] {
			t.Fatalf("level-2 LB mismatch at cluster %d: adjacent=%v heard=%v", c, cg2.HasEdge(0, c), ok[i])
		}
	}
	if v1.CastFailures() != 0 || v2.CastFailures() != 0 {
		t.Fatalf("cast failures: level1=%d level2=%d", v1.CastFailures(), v2.CastFailures())
	}
}

// TestVirtualLBOnPhysNet runs the full stack down to radio physics.
func TestVirtualLBOnPhysNet(t *testing.T) {
	g := graph.Grid(6, 6)
	eng := radio.NewEngine(g)
	base := lbnet.NewPhysNet(eng, decay.ParamsFor(36, 8), 47)
	cfg := cluster.DefaultConfig(36, 4)
	cl := cluster.Build(base, cfg, 47)
	vn := New(base, cl)
	nc := vn.N()
	if nc < 2 {
		t.Skip("degenerate clustering")
	}
	cg := vn.Graph()
	senders := []radio.TX{{ID: 0, Msg: radio.Msg{A: 55}}}
	var receivers []int32
	for c := int32(1); c < int32(nc); c++ {
		receivers = append(receivers, c)
	}
	got := make([]radio.Msg, len(receivers))
	ok := make([]bool, len(receivers))
	vn.LocalBroadcast(senders, receivers, got, ok)
	heardAdjacent := 0
	for i, c := range receivers {
		if ok[i] && !cg.HasEdge(0, c) {
			t.Fatalf("non-adjacent cluster %d heard on phys stack", c)
		}
		if ok[i] {
			heardAdjacent++
		}
	}
	// w.h.p. all adjacent clusters hear; require at least one (the graph is
	// connected so cluster 0 has neighbors).
	if heardAdjacent == 0 {
		t.Fatal("no adjacent cluster heard the virtual LB on the phys stack")
	}
	if eng.MsgViolations() != 0 {
		t.Fatalf("message budget violated %d times", eng.MsgViolations())
	}
}

func TestWrapUnwrapRoundTrip(t *testing.T) {
	g := graph.Grid(5, 5)
	vn, _ := buildVNet(t, g, 2, 53)
	m := radio.Msg{Kind: 9, A: 1, B: 2, C: 3, Hdr: 5}
	for c := int32(0); c < int32(vn.N()); c++ {
		w := vn.wrap(m, c)
		u, mine := vn.unwrap(w, c)
		if !mine || u != m {
			t.Fatalf("wrap/unwrap(%d) mangled message: %+v -> %+v", c, m, u)
		}
		if _, other := vn.unwrap(w, c+1); other {
			t.Fatalf("message for cluster %d accepted by %d", c, c+1)
		}
	}
}

func TestSenderReceiverOverlapPanics(t *testing.T) {
	g := graph.Grid(5, 5)
	vn, _ := buildVNet(t, g, 2, 59)
	if vn.N() < 1 {
		t.Skip("no clusters")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for overlapping sender/receiver cluster")
		}
	}()
	got := make([]radio.Msg, 1)
	ok := make([]bool, 1)
	vn.LocalBroadcast([]radio.TX{{ID: 0}}, []int32{0}, got, ok)
}
